// Micro-benchmarks (google-benchmark): per-report perturbation cost and
// server-side aggregation/estimation cost of every mechanism. These bound
// the client CPU cost and the aggregator's per-user work.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/square_wave.h"
#include "fo/grr.h"
#include "fo/hrr.h"
#include "fo/olh.h"
#include "fo/oue.h"
#include "kernels/kernels.h"
#include "mean/pm.h"
#include "mean/sr.h"

namespace {

using namespace numdist;

void BM_SquareWavePerturb(benchmark::State& state) {
  const SquareWave sw = SquareWave::Make(1.0).ValueOrDie();
  Rng rng(1);
  double v = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw.Perturb(v, rng));
    v += 0.001;
    if (v > 1.0) v = 0.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SquareWavePerturb);

void BM_DiscreteSquareWavePerturb(benchmark::State& state) {
  const DiscreteSquareWave dsw =
      DiscreteSquareWave::Make(1.0, 1024).ValueOrDie();
  Rng rng(2);
  uint32_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsw.Perturb(v, rng));
    v = (v + 1) & 1023;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiscreteSquareWavePerturb);

void BM_GrrPerturb(benchmark::State& state) {
  const Grr grr = Grr::Make(1.0, static_cast<size_t>(state.range(0)))
                      .ValueOrDie();
  Rng rng(3);
  uint32_t v = 0;
  const uint32_t d = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(grr.Perturb(v, rng));
    v = (v + 1) % d;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GrrPerturb)->Arg(16)->Arg(1024);

void BM_OlhPerturb(benchmark::State& state) {
  const Olh olh = Olh::Make(1.0, 1024).ValueOrDie();
  Rng rng(4);
  uint32_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(olh.Perturb(v, rng));
    v = (v + 1) & 1023;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OlhPerturb);

void BM_HrrPerturb(benchmark::State& state) {
  const Hrr hrr = Hrr::Make(1.0, 1024).ValueOrDie();
  Rng rng(5);
  uint32_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hrr.Perturb(v, rng));
    v = (v + 1) & 1023;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HrrPerturb);

void BM_PmPerturb(benchmark::State& state) {
  const PiecewiseMechanism pm = PiecewiseMechanism::Make(1.0).ValueOrDie();
  Rng rng(6);
  double v = -1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pm.Perturb(v, rng));
    v += 0.001;
    if (v > 1.0) v = -1.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PmPerturb);

void BM_SrPerturb(benchmark::State& state) {
  const StochasticRounding sr = StochasticRounding::Make(1.0).ValueOrDie();
  Rng rng(7);
  double v = -1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sr.Perturb(v, rng));
    v += 0.001;
    if (v > 1.0) v = -1.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SrPerturb);

void BM_OlhAggregate(benchmark::State& state) {
  // Server-side support counting: the O(n * d) hot loop.
  const size_t d = static_cast<size_t>(state.range(0));
  const size_t n = 2000;
  const Olh olh = Olh::Make(1.0, d).ValueOrDie();
  Rng rng(8);
  std::vector<OlhReport> reports;
  reports.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    reports.push_back(
        olh.Perturb(static_cast<uint32_t>(rng.UniformInt(d)), rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(olh.Estimate(reports));
  }
  state.SetItemsProcessed(state.iterations() * n * d);
}
BENCHMARK(BM_OlhAggregate)->Arg(64)->Arg(256);

// OLH server absorb throughput (reports folded per second). The sequential
// variant hashes one report at a time against the whole domain; the batch
// variant is the blocked sweep the protocol layer uses.
std::vector<OlhReport> MakeOlhReports(const Olh& olh, size_t n) {
  Rng rng(9);
  std::vector<OlhReport> reports;
  reports.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    reports.push_back(olh.Perturb(
        static_cast<uint32_t>(rng.UniformInt(olh.domain())), rng));
  }
  return reports;
}

void BM_OlhAbsorbSequential(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const size_t n = 4000;
  const Olh olh = Olh::Make(1.0, d).ValueOrDie();
  const std::vector<OlhReport> reports = MakeOlhReports(olh, n);
  FoSketch sketch = olh.MakeSketch();
  for (auto _ : state) {
    for (const OlhReport& rep : reports) olh.Absorb(rep, &sketch);
    benchmark::DoNotOptimize(sketch.counts.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_OlhAbsorbSequential)->Arg(256)->Arg(1024);

void BM_OlhAbsorbBatch(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const size_t n = 4000;
  const Olh olh = Olh::Make(1.0, d).ValueOrDie();
  const std::vector<OlhReport> reports = MakeOlhReports(olh, n);
  FoSketch sketch = olh.MakeSketch();
  for (auto _ : state) {
    olh.AbsorbBatch(reports, &sketch);
    benchmark::DoNotOptimize(sketch.counts.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_OlhAbsorbBatch)->Arg(256)->Arg(1024);

void BM_SwTransitionMatrix(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const SquareWave sw = SquareWave::Make(1.0).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw.TransitionMatrix(d, d));
  }
  state.SetItemsProcessed(state.iterations() * d * d);
}
BENCHMARK(BM_SwTransitionMatrix)->Arg(256)->Arg(1024);

// ---- Bulk encode throughput (the client-side hot path the protocol layer
// drives: one PerturbBatch per shard). items_per_second = reports/s;
// compare against the per-report BM_*Perturb rows above.

std::vector<uint32_t> CyclicValues(size_t n, uint32_t d) {
  std::vector<uint32_t> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = static_cast<uint32_t>(i % d);
  return values;
}

void BM_GrrEncodeBatch(benchmark::State& state) {
  const uint32_t d = static_cast<uint32_t>(state.range(0));
  const Grr grr = Grr::Make(1.0, d).ValueOrDie();
  const size_t n = 8192;
  const std::vector<uint32_t> values = CyclicValues(n, d);
  std::vector<uint32_t> out(n);
  Rng rng(10);
  for (auto _ : state) {
    grr.PerturbBatch(values, rng, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GrrEncodeBatch)->Arg(16)->Arg(1024);

void BM_OlhEncodeBatch(benchmark::State& state) {
  const Olh olh = Olh::Make(1.0, 1024).ValueOrDie();
  const size_t n = 8192;
  const std::vector<uint32_t> values = CyclicValues(n, 1024);
  std::vector<FoReport> out(n);
  Rng rng(11);
  for (auto _ : state) {
    olh.PerturbBatch(values, rng, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_OlhEncodeBatch);

void BM_OueEncodeBatch(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Oue oue = Oue::Make(1.0, d).ValueOrDie();
  const size_t n = 2048;
  const std::vector<uint32_t> values = CyclicValues(n, static_cast<uint32_t>(d));
  std::vector<uint8_t> bits;
  Rng rng(12);
  for (auto _ : state) {
    bits.clear();
    oue.PerturbBatch(values, rng, &bits);
    benchmark::DoNotOptimize(bits.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_OueEncodeBatch)->Arg(64);

void BM_HrrEncodeBatch(benchmark::State& state) {
  const Hrr hrr = Hrr::Make(1.0, 1024).ValueOrDie();
  const size_t n = 8192;
  const std::vector<uint32_t> values = CyclicValues(n, 1024);
  std::vector<HrrReport> out(n);
  Rng rng(13);
  for (auto _ : state) {
    hrr.PerturbBatch(values, rng, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HrrEncodeBatch);

void BM_SwEncodeBatch(benchmark::State& state) {
  const SquareWave sw = SquareWave::Make(1.0).ValueOrDie();
  const size_t n = 8192;
  std::vector<double> values(n);
  for (size_t i = 0; i < n; ++i) {
    values[i] = static_cast<double>(i) / static_cast<double>(n - 1);
  }
  std::vector<double> out(n);
  Rng rng(14);
  for (auto _ : state) {
    sw.PerturbBatch(values, rng, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SwEncodeBatch);

void BM_DswEncodeBatch(benchmark::State& state) {
  const DiscreteSquareWave dsw = DiscreteSquareWave::Make(1.0, 1024)
                                     .ValueOrDie();
  const size_t n = 8192;
  const std::vector<uint32_t> values = CyclicValues(n, 1024);
  std::vector<uint32_t> out(n);
  Rng rng(15);
  for (auto _ : state) {
    dsw.PerturbBatch(values, rng, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DswEncodeBatch);

// ---- AVX-512 kernel tier on the bulk encode path ----
//
// The same bulk-encode bodies as above under forced kAvx512 dispatch
// (clamped down the fallback ladder on machines without it; the avx512
// counter records what actually ran). Registered in the CI --require
// list, so the ENC_AVX512_ names are load-bearing. Forcing is reset to
// the machine's best tier afterwards, which on every ladder equals the
// default resolution, so neighbouring benches are unaffected.

void ENC_AVX512_SwEncodeBatch(benchmark::State& state) {
  const SquareWave sw = SquareWave::Make(1.0).ValueOrDie();
  const size_t n = 8192;
  std::vector<double> values(n);
  for (size_t i = 0; i < n; ++i) {
    values[i] = static_cast<double>(i) / static_cast<double>(n - 1);
  }
  std::vector<double> out(n);
  Rng rng(14);
  kernels::ForceIsaForTest(kernels::Isa::kAvx512);
  for (auto _ : state) {
    sw.PerturbBatch(values, rng, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["avx512"] = kernels::Avx512Available() ? 1.0 : 0.0;
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(ENC_AVX512_SwEncodeBatch);

void ENC_AVX512_GrrEncodeBatch(benchmark::State& state) {
  const uint32_t d = static_cast<uint32_t>(state.range(0));
  const Grr grr = Grr::Make(1.0, d).ValueOrDie();
  const size_t n = 8192;
  const std::vector<uint32_t> values = CyclicValues(n, d);
  std::vector<uint32_t> out(n);
  Rng rng(10);
  kernels::ForceIsaForTest(kernels::Isa::kAvx512);
  for (auto _ : state) {
    grr.PerturbBatch(values, rng, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["avx512"] = kernels::Avx512Available() ? 1.0 : 0.0;
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(ENC_AVX512_GrrEncodeBatch)->Arg(1024);

// ---- Bulk RNG generation (items = draws/s) and discrete sampling
// (alias table vs linear weight scan).

void BM_RngFillUniform(benchmark::State& state) {
  Rng rng(16);
  std::vector<double> buf(8192);
  for (auto _ : state) {
    rng.FillUniform(buf.data(), buf.size());
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() * buf.size());
}
BENCHMARK(BM_RngFillUniform);

void BM_RngFillBernoulli(benchmark::State& state) {
  Rng rng(17);
  std::vector<uint8_t> buf(8192);
  for (auto _ : state) {
    rng.FillBernoulli(buf.data(), buf.size(), 0.25);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() * buf.size());
}
BENCHMARK(BM_RngFillBernoulli);

std::vector<double> SamplerWeights(size_t d) {
  std::vector<double> weights(d);
  for (size_t i = 0; i < d; ++i) {
    weights[i] = 1.0 + static_cast<double>((i * 37) % 11);
  }
  return weights;
}

void BM_DiscreteLinear(benchmark::State& state) {
  const std::vector<double> weights =
      SamplerWeights(static_cast<size_t>(state.range(0)));
  Rng rng(18);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Discrete(weights));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiscreteLinear)->Arg(16)->Arg(256);

void BM_DiscreteAlias(benchmark::State& state) {
  const DiscreteSampler sampler(
      SamplerWeights(static_cast<size_t>(state.range(0))));
  Rng rng(19);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiscreteAlias)->Arg(16)->Arg(256);

}  // namespace
