// Micro-benchmarks (google-benchmark): per-report perturbation cost and
// server-side aggregation/estimation cost of every mechanism. These bound
// the client CPU cost and the aggregator's per-user work.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/square_wave.h"
#include "fo/grr.h"
#include "fo/hrr.h"
#include "fo/olh.h"
#include "mean/pm.h"
#include "mean/sr.h"

namespace {

using namespace numdist;

void BM_SquareWavePerturb(benchmark::State& state) {
  const SquareWave sw = SquareWave::Make(1.0).ValueOrDie();
  Rng rng(1);
  double v = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw.Perturb(v, rng));
    v += 0.001;
    if (v > 1.0) v = 0.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SquareWavePerturb);

void BM_DiscreteSquareWavePerturb(benchmark::State& state) {
  const DiscreteSquareWave dsw =
      DiscreteSquareWave::Make(1.0, 1024).ValueOrDie();
  Rng rng(2);
  uint32_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsw.Perturb(v, rng));
    v = (v + 1) & 1023;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiscreteSquareWavePerturb);

void BM_GrrPerturb(benchmark::State& state) {
  const Grr grr = Grr::Make(1.0, static_cast<size_t>(state.range(0)))
                      .ValueOrDie();
  Rng rng(3);
  uint32_t v = 0;
  const uint32_t d = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(grr.Perturb(v, rng));
    v = (v + 1) % d;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GrrPerturb)->Arg(16)->Arg(1024);

void BM_OlhPerturb(benchmark::State& state) {
  const Olh olh = Olh::Make(1.0, 1024).ValueOrDie();
  Rng rng(4);
  uint32_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(olh.Perturb(v, rng));
    v = (v + 1) & 1023;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OlhPerturb);

void BM_HrrPerturb(benchmark::State& state) {
  const Hrr hrr = Hrr::Make(1.0, 1024).ValueOrDie();
  Rng rng(5);
  uint32_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hrr.Perturb(v, rng));
    v = (v + 1) & 1023;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HrrPerturb);

void BM_PmPerturb(benchmark::State& state) {
  const PiecewiseMechanism pm = PiecewiseMechanism::Make(1.0).ValueOrDie();
  Rng rng(6);
  double v = -1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pm.Perturb(v, rng));
    v += 0.001;
    if (v > 1.0) v = -1.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PmPerturb);

void BM_SrPerturb(benchmark::State& state) {
  const StochasticRounding sr = StochasticRounding::Make(1.0).ValueOrDie();
  Rng rng(7);
  double v = -1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sr.Perturb(v, rng));
    v += 0.001;
    if (v > 1.0) v = -1.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SrPerturb);

void BM_OlhAggregate(benchmark::State& state) {
  // Server-side support counting: the O(n * d) hot loop.
  const size_t d = static_cast<size_t>(state.range(0));
  const size_t n = 2000;
  const Olh olh = Olh::Make(1.0, d).ValueOrDie();
  Rng rng(8);
  std::vector<OlhReport> reports;
  reports.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    reports.push_back(
        olh.Perturb(static_cast<uint32_t>(rng.UniformInt(d)), rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(olh.Estimate(reports));
  }
  state.SetItemsProcessed(state.iterations() * n * d);
}
BENCHMARK(BM_OlhAggregate)->Arg(64)->Arg(256);

// OLH server absorb throughput (reports folded per second). The sequential
// variant hashes one report at a time against the whole domain; the batch
// variant is the blocked sweep the protocol layer uses.
std::vector<OlhReport> MakeOlhReports(const Olh& olh, size_t n) {
  Rng rng(9);
  std::vector<OlhReport> reports;
  reports.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    reports.push_back(olh.Perturb(
        static_cast<uint32_t>(rng.UniformInt(olh.domain())), rng));
  }
  return reports;
}

void BM_OlhAbsorbSequential(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const size_t n = 4000;
  const Olh olh = Olh::Make(1.0, d).ValueOrDie();
  const std::vector<OlhReport> reports = MakeOlhReports(olh, n);
  FoSketch sketch = olh.MakeSketch();
  for (auto _ : state) {
    for (const OlhReport& rep : reports) olh.Absorb(rep, &sketch);
    benchmark::DoNotOptimize(sketch.counts.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_OlhAbsorbSequential)->Arg(256)->Arg(1024);

void BM_OlhAbsorbBatch(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const size_t n = 4000;
  const Olh olh = Olh::Make(1.0, d).ValueOrDie();
  const std::vector<OlhReport> reports = MakeOlhReports(olh, n);
  FoSketch sketch = olh.MakeSketch();
  for (auto _ : state) {
    olh.AbsorbBatch(reports, &sketch);
    benchmark::DoNotOptimize(sketch.counts.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_OlhAbsorbBatch)->Arg(256)->Arg(1024);

void BM_SwTransitionMatrix(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const SquareWave sw = SquareWave::Make(1.0).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw.TransitionMatrix(d, d));
  }
  state.SetItemsProcessed(state.iterations() * d * d);
}
BENCHMARK(BM_SwTransitionMatrix)->Arg(256)->Arg(1024);

}  // namespace
