// Ablation: which part of the paper's design carries the utility?
//
//  (a) SW reconstruction: EMS vs plain EM vs smoothing-only vs raw
//      (truncated observed frequencies) — shows EM is load-bearing and
//      smoothing stabilizes it (§5.5).
//  (b) HH post-processing: raw tree vs constrained inference (Hay) vs
//      ADMM (non-negativity + normalization) — shows each added constraint
//      pays (§4.3).
//  (c) Norm-Sub vs Norm-Cut for CFO binning cleanup (§4.1).
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/histogram.h"
#include "core/ems.h"
#include "core/square_wave.h"
#include "eval/table.h"
#include "fo/adaptive.h"
#include "hierarchy/admm.h"
#include "hierarchy/constrained.h"
#include "hierarchy/hh.h"
#include "metrics/distance.h"
#include "postprocess/norm_sub.h"
#include "postprocess/norm_variants.h"

using namespace numdist;

int main(int argc, char** argv) {
  bench::BenchFlags flags = bench::ParseFlags(argc, argv);
  if (flags.datasets.size() == 4) flags.datasets = {"beta", "income"};
  const size_t trials = bench::TrialsFor(flags);

  for (DatasetId id : bench::DatasetsFor(flags)) {
    const DatasetSpec& spec = GetDatasetSpec(id);
    const size_t d = bench::GranularityFor(flags, id);
    Rng rng(flags.seed);
    const std::vector<double> values =
        GenerateDataset(id, bench::UsersFor(flags), rng);
    const std::vector<double> truth = hist::FromSamples(values, d);

    printf("=== Ablations on %s (n=%zu, d=%zu, trials=%zu) ===\n\n",
           spec.name.c_str(), values.size(), d, trials);

    // ---------------- (a) SW reconstruction ablation ----------------
    printf("--- (a) SW reconstruction: W1 by post-processing ---\n");
    TablePrinter sw_table([&] {
      std::vector<std::string> headers = {"post-processing"};
      for (double eps : flags.epsilons) {
        headers.push_back("eps=" + FormatG(eps, 3));
      }
      return headers;
    }());
    std::vector<std::vector<double>> sw_rows(4,
                                             std::vector<double>(
                                                 flags.epsilons.size(), 0.0));
    for (size_t e = 0; e < flags.epsilons.size(); ++e) {
      const double eps = flags.epsilons[e];
      fprintf(stderr, "[ablation-a] %s eps=%.2f ...\n", spec.name.c_str(),
              eps);
      for (size_t t = 0; t < trials; ++t) {
        const SquareWave sw = SquareWave::Make(eps).ValueOrDie();
        Rng trial_rng(SplitMix64(flags.seed ^ (31ULL * (t + 1))));
        std::vector<double> reports;
        reports.reserve(values.size());
        for (double v : values) reports.push_back(sw.Perturb(v, trial_rng));
        const std::vector<uint64_t> counts = sw.BucketizeReports(reports, d);
        const Matrix m = sw.TransitionMatrix(d, d);

        const EmResult ems = EstimateEms(m, counts).ValueOrDie();
        sw_rows[0][e] += WassersteinDistance(truth, ems.estimate) / trials;

        EmOptions em_opts;
        em_opts.tol = 1e-3 * std::exp(eps);
        const EmResult em = EstimateEm(m, counts, em_opts).ValueOrDie();
        sw_rows[1][e] += WassersteinDistance(truth, em.estimate) / trials;

        const std::vector<double> smooth_only =
            SmoothingOnlyEstimate(counts, d);
        sw_rows[2][e] += WassersteinDistance(truth, smooth_only) / trials;

        // Raw: observed output frequencies folded onto the input domain.
        const std::vector<double> raw = SmoothingOnlyEstimate(counts, d, 0);
        sw_rows[3][e] += WassersteinDistance(truth, raw) / trials;
      }
    }
    const char* sw_names[] = {"EMS (paper)", "EM", "smoothing-only",
                              "raw observed"};
    for (int r = 0; r < 4; ++r) {
      std::vector<std::string> row = {sw_names[r]};
      for (double v : sw_rows[r]) row.push_back(FormatSci(v));
      sw_table.AddRow(std::move(row));
    }
    sw_table.Print(std::cout);
    printf("\n");

    // ---------------- (b) HH post-processing ablation ----------------
    printf("--- (b) HH tree post-processing: leaf-level W1 ---\n");
    const size_t hh_d = 256;  // beta=4 tree wants a power of 4
    const std::vector<double> hh_truth = hist::FromSamples(values, hh_d);
    TablePrinter hh_table([&] {
      std::vector<std::string> headers = {"post-processing"};
      for (double eps : flags.epsilons) {
        headers.push_back("eps=" + FormatG(eps, 3));
      }
      return headers;
    }());
    std::vector<std::vector<double>> hh_rows(3,
                                             std::vector<double>(
                                                 flags.epsilons.size(), 0.0));
    for (size_t e = 0; e < flags.epsilons.size(); ++e) {
      const double eps = flags.epsilons[e];
      fprintf(stderr, "[ablation-b] %s eps=%.2f ...\n", spec.name.c_str(),
              eps);
      const HhProtocol hh = HhProtocol::Make(eps, hh_d, 4).ValueOrDie();
      std::vector<uint32_t> leaves;
      leaves.reserve(values.size());
      for (double v : values) {
        leaves.push_back(static_cast<uint32_t>(hist::BucketOf(v, hh_d)));
      }
      for (size_t t = 0; t < trials; ++t) {
        Rng trial_rng(SplitMix64(flags.seed ^ (57ULL * (t + 1))));
        const std::vector<double> nodes =
            hh.CollectNodeEstimates(leaves, trial_rng);
        const size_t off = hh.tree().LevelOffset(hh.tree().height());

        // Raw leaves, cleaned up by Norm-Sub only.
        const std::vector<double> raw_leaves =
            NormSub(std::vector<double>(nodes.begin() + off, nodes.end()));
        hh_rows[0][e] += WassersteinDistance(hh_truth, raw_leaves) / trials;

        // Constrained inference, then Norm-Sub on the leaves.
        const std::vector<double> ci =
            ConstrainedInference(hh.tree(), nodes, /*fix_root=*/true);
        const std::vector<double> ci_leaves =
            NormSub(std::vector<double>(ci.begin() + off, ci.end()));
        hh_rows[1][e] += WassersteinDistance(hh_truth, ci_leaves) / trials;

        // Full ADMM.
        const AdmmResult admm = HhAdmm(hh.tree(), nodes).ValueOrDie();
        hh_rows[2][e] +=
            WassersteinDistance(hh_truth, admm.distribution) / trials;
      }
    }
    const char* hh_names[] = {"leaves + NormSub", "Hay CI + NormSub",
                              "ADMM (paper)"};
    for (int r = 0; r < 3; ++r) {
      std::vector<std::string> row = {hh_names[r]};
      for (double v : hh_rows[r]) row.push_back(FormatSci(v));
      hh_table.AddRow(std::move(row));
    }
    hh_table.Print(std::cout);
    printf("\n");

    // -------- (c) CFO binning cleanup: the §7 post-processing family -----
    printf("--- (c) CFO binning cleanup: W1 by post-processor ---\n");
    const size_t bins = 32;
    TablePrinter ns_table([&] {
      std::vector<std::string> headers = {"cleanup"};
      for (double eps : flags.epsilons) {
        headers.push_back("eps=" + FormatG(eps, 3));
      }
      return headers;
    }());
    std::vector<std::vector<double>> ns_rows(4,
                                             std::vector<double>(
                                                 flags.epsilons.size(), 0.0));
    for (size_t e = 0; e < flags.epsilons.size(); ++e) {
      const double eps = flags.epsilons[e];
      const AdaptiveFo fo = AdaptiveFo::Make(eps, bins).ValueOrDie();
      std::vector<uint32_t> binned;
      binned.reserve(values.size());
      for (double v : values) {
        binned.push_back(static_cast<uint32_t>(hist::BucketOf(v, bins)));
      }
      const std::vector<double> bin_truth = hist::FromSamples(values, bins);
      for (size_t t = 0; t < trials; ++t) {
        Rng trial_rng(SplitMix64(flags.seed ^ (91ULL * (t + 1))));
        const std::vector<double> noisy = fo.Run(binned, trial_rng);
        ns_rows[0][e] +=
            WassersteinDistance(bin_truth, NormSub(noisy)) / trials;
        ns_rows[1][e] +=
            WassersteinDistance(bin_truth, NormCut(noisy)) / trials;
        ns_rows[2][e] +=
            WassersteinDistance(bin_truth, NormShift(noisy)) / trials;
        ns_rows[3][e] +=
            WassersteinDistance(bin_truth, BasePos(noisy)) / trials;
      }
    }
    const char* ns_names[] = {"NormSub (paper)", "NormCut/NormMul",
                              "Norm (shift only)", "Base-Pos (clamp only)"};
    for (int r = 0; r < 4; ++r) {
      std::vector<std::string> row = {ns_names[r]};
      for (double v : ns_rows[r]) row.push_back(FormatSci(v));
      ns_table.AddRow(std::move(row));
    }
    ns_table.Print(std::cout);
    printf("\n");
  }
  return 0;
}
