// Table 2: which method supports which utility metric, plus a one-epsilon
// summary run showing every supported (method, metric) value side by side.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "eval/table.h"
#include "mean/moments.h"

using namespace numdist;

int main(int argc, char** argv) {
  bench::BenchFlags flags = bench::ParseFlags(argc, argv);
  if (flags.epsilons.size() > 1) flags.epsilons = {1.0};
  const double eps = flags.epsilons[0];

  printf("=== Table 2: methods and evaluated metrics ===\n\n");
  TablePrinter coverage({"method", "W1+KS", "RangeQuery", "Mean+Var",
                         "Quantile"});
  coverage.AddRow({"SW-EMS / SW-EM (this paper)", "x", "x", "x", "x"});
  coverage.AddRow({"HH-ADMM (this paper)", "x", "x", "x", "x"});
  coverage.AddRow({"CFO binning", "x", "x", "x", "x"});
  coverage.AddRow({"HH / HaarHRR [18]", "", "x", "", ""});
  coverage.AddRow({"PM [30] / SR [9]", "", "", "x", ""});
  coverage.Print(std::cout);

  printf("\n=== summary run at eps=%.2f ===\n", eps);
  printf("(n=%zu, trials=%zu)\n\n", bench::UsersFor(flags),
         bench::TrialsFor(flags));
  const auto methods = MakeStandardSuite();
  const auto points = bench::RunStandardSweep(flags, methods);

  for (const auto& dataset : flags.datasets) {
    printf("--- %s ---\n", dataset.c_str());
    TablePrinter table({"method", "W1", "KS", "range(0.1)", "range(0.4)",
                        "mean", "variance", "quantile"});
    for (const auto& p : points) {
      if (p.dataset != dataset) continue;
      table.AddRow({p.method, FormatSci(p.agg.mean.wasserstein),
                    FormatSci(p.agg.mean.ks), FormatSci(p.agg.mean.range_small),
                    FormatSci(p.agg.mean.range_large),
                    FormatSci(p.agg.mean.mean_err),
                    FormatSci(p.agg.mean.variance_err),
                    FormatSci(p.agg.mean.quantile_err)});
    }
    if (flags.csv) {
      table.PrintCsv(std::cout);
    } else {
      table.Print(std::cout);
    }
    printf("\n");
  }
  return 0;
}
