// Shared scaffolding for the per-figure bench binaries: flag parsing and the
// quick/full scale presets.
//
// Default scale ("quick") finishes the whole suite in minutes on a laptop:
// fewer users, 256-bucket histograms, few trials. --full switches to the
// paper's granularities (256/1024 buckets), larger n and more trials; the
// qualitative shapes are already stable at quick scale because every
// estimator's noise term scales identically in n.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/datasets.h"
#include "eval/method.h"
#include "eval/runner.h"

namespace numdist {
namespace bench {

struct BenchFlags {
  size_t n = 0;          // users; 0 -> scale preset
  size_t trials = 0;     // 0 -> scale preset
  size_t threads = 0;    // shard workers per trial; 0 -> hardware concurrency
  std::vector<double> epsilons = {0.5, 1.0, 1.5, 2.0, 2.5};
  std::vector<std::string> datasets = {"beta", "taxi", "income", "retirement"};
  bool csv = false;      // machine-readable output only
  bool full = false;     // paper-scale granularity and trials
  uint64_t seed = 2026;
};

inline void PrintUsage(const char* binary) {
  fprintf(stderr,
          "usage: %s [--n=N] [--trials=T] [--threads=W]\n"
          "          [--epsilons=0.5,1.0,...] [--datasets=beta,taxi,...]\n"
          "          [--seed=S] [--csv] [--full]\n",
          binary);
}

inline std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

inline BenchFlags ParseFlags(int argc, char** argv) {
  BenchFlags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      const size_t len = strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value("--n=")) {
      flags.n = static_cast<size_t>(atoll(v));
    } else if (const char* v = value("--trials=")) {
      flags.trials = static_cast<size_t>(atoll(v));
    } else if (const char* v = value("--threads=")) {
      flags.threads = static_cast<size_t>(atoll(v));
    } else if (const char* v = value("--seed=")) {
      flags.seed = static_cast<uint64_t>(atoll(v));
    } else if (const char* v = value("--epsilons=")) {
      flags.epsilons.clear();
      for (const std::string& tok : SplitCsv(v)) {
        flags.epsilons.push_back(atof(tok.c_str()));
      }
    } else if (const char* v = value("--datasets=")) {
      flags.datasets = SplitCsv(v);
    } else if (arg == "--csv") {
      flags.csv = true;
    } else if (arg == "--full") {
      flags.full = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      exit(0);
    } else {
      fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      PrintUsage(argv[0]);
      exit(2);
    }
  }
  return flags;
}

/// Users per experiment at the current scale.
inline size_t UsersFor(const BenchFlags& flags) {
  if (flags.n > 0) return flags.n;
  return flags.full ? 200000 : 40000;
}

/// Trials per (method, epsilon) point at the current scale.
inline size_t TrialsFor(const BenchFlags& flags) {
  if (flags.trials > 0) return flags.trials;
  return flags.full ? 10 : 3;
}

/// Histogram granularity: paper values under --full (256 for Beta, 1024
/// otherwise), 256 everywhere at quick scale.
inline size_t GranularityFor(const BenchFlags& flags, DatasetId id) {
  if (flags.full) return GetDatasetSpec(id).default_buckets;
  return 256;
}

/// Resolves the --datasets flag to ids (exits on unknown names).
inline std::vector<DatasetId> DatasetsFor(const BenchFlags& flags) {
  std::vector<DatasetId> ids;
  for (const std::string& name : flags.datasets) {
    DatasetId id;
    if (!ParseDatasetId(name, &id)) {
      fprintf(stderr, "unknown dataset: %s\n", name.c_str());
      exit(2);
    }
    ids.push_back(id);
  }
  return ids;
}

/// One point of a (dataset x method x epsilon) sweep.
struct SweepPoint {
  std::string dataset;
  std::string method;
  double epsilon;
  AggregateMetrics agg;
};

/// Runs every method in `methods` on every configured dataset and epsilon,
/// printing progress to stderr. The workhorse behind Figures 2-4.
inline std::vector<SweepPoint> RunStandardSweep(
    const BenchFlags& flags,
    const std::vector<std::unique_ptr<DistributionMethod>>& methods) {
  std::vector<SweepPoint> points;
  for (DatasetId id : DatasetsFor(flags)) {
    const DatasetSpec& spec = GetDatasetSpec(id);
    const size_t d = GranularityFor(flags, id);
    const size_t n = UsersFor(flags);
    Rng rng(flags.seed);
    const std::vector<double> values = GenerateDataset(id, n, rng);
    const GroundTruth truth = ComputeGroundTruth(values, d);
    for (const auto& method : methods) {
      for (double eps : flags.epsilons) {
        RunnerOptions opts;
        opts.trials = TrialsFor(flags);
        opts.seed = flags.seed;
        opts.threads = flags.threads;
        fprintf(stderr, "[sweep] %s %s eps=%.2f ...\n", spec.name.c_str(),
                method->name().c_str(), eps);
        Result<AggregateMetrics> agg =
            RunTrials(*method, values, truth, eps, d, opts);
        if (!agg.ok()) {
          fprintf(stderr, "  failed: %s\n", agg.status().ToString().c_str());
          continue;
        }
        points.push_back({spec.name, method->name(), eps,
                          std::move(agg).value()});
      }
    }
  }
  return points;
}

}  // namespace bench
}  // namespace numdist
