// Extra claim checks: experiments the paper states in prose but omits
// detailed results for ("due to space limitation"), regenerated here.
//
//  (1) §5.4: "randomize before bucketize" (continuous R-B) and "bucketize
//      before randomize" (discrete B-R) perform very similarly.
//  (2) §4.2: under LDP, dividing the *population* across hierarchy levels
//      beats dividing the privacy *budget* (the opposite of the
//      centralized-DP trade-off).
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/histogram.h"
#include "core/sw_estimator.h"
#include "eval/table.h"
#include "hierarchy/constrained.h"
#include "hierarchy/hh.h"
#include "metrics/distance.h"

using namespace numdist;

int main(int argc, char** argv) {
  bench::BenchFlags flags = bench::ParseFlags(argc, argv);
  if (flags.datasets.size() == 4) flags.datasets = {"beta", "taxi"};
  const size_t trials = bench::TrialsFor(flags);

  // ---------------- (1) R-B vs B-R ----------------
  printf("=== Extra claim 1 (§5.4): continuous R-B vs discrete B-R ===\n\n");
  for (DatasetId id : bench::DatasetsFor(flags)) {
    const DatasetSpec& spec = GetDatasetSpec(id);
    const size_t d = bench::GranularityFor(flags, id);
    Rng rng(flags.seed);
    const std::vector<double> values =
        GenerateDataset(id, bench::UsersFor(flags), rng);
    const std::vector<double> truth = hist::FromSamples(values, d);

    printf("--- %s (W1, SW+EMS) ---\n", spec.name.c_str());
    TablePrinter table([&] {
      std::vector<std::string> headers = {"pipeline"};
      for (double eps : flags.epsilons) {
        headers.push_back("eps=" + FormatG(eps, 3));
      }
      return headers;
    }());
    for (auto [pipeline, name] :
         {std::pair{SwEstimatorOptions::Pipeline::kRandomizeBeforeBucketize,
                    "R-B (continuous)"},
          std::pair{SwEstimatorOptions::Pipeline::kBucketizeBeforeRandomize,
                    "B-R (discrete)"}}) {
      std::vector<std::string> row = {name};
      for (double eps : flags.epsilons) {
        double acc = 0.0;
        for (size_t t = 0; t < trials; ++t) {
          SwEstimatorOptions options;
          options.epsilon = eps;
          options.d = d;
          options.pipeline = pipeline;
          const SwEstimator est = SwEstimator::Make(options).ValueOrDie();
          Rng trial_rng(SplitMix64(flags.seed ^ (0x1111ULL * (t + 1))));
          const std::vector<double> dist =
              est.EstimateDistribution(values, trial_rng).ValueOrDie();
          acc += WassersteinDistance(truth, dist) / trials;
        }
        row.push_back(FormatSci(acc));
      }
      table.AddRow(std::move(row));
    }
    if (flags.csv) {
      table.PrintCsv(std::cout);
    } else {
      table.Print(std::cout);
    }
    printf("\n");
  }

  // ---------------- (2) population vs budget division ----------------
  printf("=== Extra claim 2 (§4.2): HH population vs budget division ===\n");
  printf("(range-query MAE over canonical ranges after constrained "
         "inference)\n\n");
  for (DatasetId id : bench::DatasetsFor(flags)) {
    const DatasetSpec& spec = GetDatasetSpec(id);
    const size_t d = 256;  // power of the branching factor 4
    Rng rng(flags.seed);
    const std::vector<double> values =
        GenerateDataset(id, bench::UsersFor(flags), rng);
    const std::vector<double> truth = hist::FromSamples(values, d);
    std::vector<uint32_t> leaves;
    leaves.reserve(values.size());
    for (double v : values) {
      leaves.push_back(static_cast<uint32_t>(hist::BucketOf(v, d)));
    }

    printf("--- %s ---\n", spec.name.c_str());
    TablePrinter table([&] {
      std::vector<std::string> headers = {"strategy"};
      for (double eps : flags.epsilons) {
        headers.push_back("eps=" + FormatG(eps, 3));
      }
      return headers;
    }());
    for (auto [strategy, name] :
         {std::pair{HhBudgetStrategy::kDividePopulation,
                    "divide population (paper)"},
          std::pair{HhBudgetStrategy::kDivideBudget, "divide budget"}}) {
      std::vector<std::string> row = {name};
      for (double eps : flags.epsilons) {
        const HhProtocol hh =
            HhProtocol::Make(eps, d, 4, strategy).ValueOrDie();
        double acc = 0.0;
        for (size_t t = 0; t < trials; ++t) {
          Rng trial_rng(SplitMix64(flags.seed ^ (0x2222ULL * (t + 1))));
          std::vector<double> nodes =
              hh.CollectNodeEstimates(leaves, trial_rng);
          nodes = ConstrainedInference(hh.tree(), nodes, /*fix_root=*/true);
          // Fixed slate of range queries of mixed sizes.
          Rng query_rng(flags.seed + 5);
          double mae = 0.0;
          const int kQueries = 100;
          for (int q = 0; q < kQueries; ++q) {
            const double alpha = q % 2 == 0 ? 0.1 : 0.4;
            const double lo = query_rng.Uniform() * (1.0 - alpha);
            const double est_mass = TreeRangeQueryContinuous(
                hh.tree(), nodes, lo, lo + alpha);
            double true_mass = 0.0;
            {
              const size_t a = static_cast<size_t>(lo * d);
              const size_t b =
                  std::min(static_cast<size_t>((lo + alpha) * d), d);
              for (size_t leaf = a; leaf < b; ++leaf) true_mass += truth[leaf];
            }
            mae += std::fabs(est_mass - true_mass) / kQueries;
          }
          acc += mae / trials;
        }
        row.push_back(FormatSci(acc));
      }
      table.AddRow(std::move(row));
    }
    if (flags.csv) {
      table.PrintCsv(std::cout);
    } else {
      table.Print(std::cout);
    }
    printf("\n");
  }
  return 0;
}
