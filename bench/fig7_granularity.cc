// Figure 7: Wasserstein distance of SW+EMS with different bucketization
// granularities (256 / 512 / 1024 / 2048 buckets for both domains), varying
// epsilon. Reconstructions are compared on a common 256-bucket grid (the
// coarsest), so the numbers are comparable across granularities.
//
// Expected shape (paper): the best granularity is dataset-dependent —
// 256 for Beta(5,2), ~1024 for the larger datasets (near sqrt(N)).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/histogram.h"
#include "core/sw_estimator.h"
#include "eval/table.h"
#include "metrics/distance.h"

using namespace numdist;

namespace {

// Folds a fine histogram onto `coarse_d` buckets (coarse_d divides d).
std::vector<double> Coarsen(const std::vector<double>& fine, size_t coarse_d) {
  const size_t chunk = fine.size() / coarse_d;
  std::vector<double> out(coarse_d, 0.0);
  for (size_t i = 0; i < fine.size(); ++i) out[i / chunk] += fine[i];
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);
  const std::vector<size_t> granularities = {256, 512, 1024, 2048};
  const size_t common_d = 256;

  printf("=== Figure 7: SW+EMS accuracy vs bucketization granularity ===\n");
  printf("(W1 evaluated on a common %zu-bucket grid)\n\n", common_d);

  for (DatasetId id : bench::DatasetsFor(flags)) {
    const DatasetSpec& spec = GetDatasetSpec(id);
    Rng rng(flags.seed);
    const std::vector<double> values =
        GenerateDataset(id, bench::UsersFor(flags), rng);
    const std::vector<double> truth = hist::FromSamples(values, common_d);

    printf("--- %s ---\n", spec.name.c_str());
    TablePrinter table([&] {
      std::vector<std::string> headers = {"buckets"};
      for (double eps : flags.epsilons) {
        headers.push_back("eps=" + FormatG(eps, 3));
      }
      return headers;
    }());
    for (size_t d : granularities) {
      fprintf(stderr, "[fig7] %s d=%zu ...\n", spec.name.c_str(), d);
      std::vector<std::string> row = {std::to_string(d)};
      for (double eps : flags.epsilons) {
        double acc = 0.0;
        const size_t trials = bench::TrialsFor(flags);
        for (size_t t = 0; t < trials; ++t) {
          SwEstimatorOptions options;
          options.epsilon = eps;
          options.d = d;
          const SwEstimator est = SwEstimator::Make(options).ValueOrDie();
          Rng trial_rng(SplitMix64(flags.seed ^ (0x777ULL * (t + 1))));
          const std::vector<double> dist =
              est.EstimateDistribution(values, trial_rng).ValueOrDie();
          acc += WassersteinDistance(truth, Coarsen(dist, common_d));
        }
        row.push_back(FormatSci(acc / trials));
      }
      table.AddRow(std::move(row));
    }
    if (flags.csv) {
      table.PrintCsv(std::cout);
    } else {
      table.Print(std::cout);
    }
    printf("\n");
  }
  return 0;
}
