// Figure 1: normalized frequencies of the four evaluation datasets.
// Prints each dataset's histogram as CSV series (bucket, frequency) plus a
// coarse ASCII sketch, so the shapes can be compared against Fig 1(a)-(d).
#include <cstdio>

#include "bench_common.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "eval/table.h"

using namespace numdist;
using bench::BenchFlags;

namespace {

void AsciiSketch(const std::vector<double>& h) {
  // 64 columns x 8 rows sketch of the histogram.
  const size_t cols = 64;
  const size_t chunk = h.size() / cols;
  std::vector<double> coarse(cols, 0.0);
  double peak = 0.0;
  for (size_t c = 0; c < cols; ++c) {
    for (size_t j = 0; j < chunk; ++j) coarse[c] += h[c * chunk + j];
    peak = std::max(peak, coarse[c]);
  }
  const int rows = 8;
  for (int r = rows; r >= 1; --r) {
    printf("    ");
    for (size_t c = 0; c < cols; ++c) {
      putchar(coarse[c] >= peak * r / rows ? '#' : ' ');
    }
    putchar('\n');
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchFlags flags = bench::ParseFlags(argc, argv);
  printf("=== Figure 1: dataset shapes (normalized frequencies) ===\n");
  for (DatasetId id : bench::DatasetsFor(flags)) {
    const DatasetSpec& spec = GetDatasetSpec(id);
    const size_t d = bench::GranularityFor(flags, id);
    const size_t n = bench::UsersFor(flags);
    Rng rng(flags.seed);
    const std::vector<double> values = GenerateDataset(id, n, rng);
    const std::vector<double> h = hist::FromSamples(values, d);

    printf("\n--- %s (n=%zu, %zu buckets; paper n=%zu, %zu buckets) ---\n",
           spec.name.c_str(), n, d, spec.paper_n, spec.default_buckets);
    if (flags.csv) {
      printf("dataset,bucket,frequency\n");
      for (size_t i = 0; i < d; ++i) {
        printf("%s,%zu,%.6e\n", spec.name.c_str(), i, h[i]);
      }
    } else {
      AsciiSketch(h);
      double peak = 0.0;
      size_t peak_at = 0;
      for (size_t i = 0; i < d; ++i) {
        if (h[i] > peak) {
          peak = h[i];
          peak_at = i;
        }
      }
      printf("    peak %.4f at bucket %zu/%zu\n", peak, peak_at, d);
    }
  }
  return 0;
}
