// Figure 5: comparison of General Wave shapes at eps = 1, varying b.
// Trapezoid waves with top/bottom ratio in {0.2, 0.4, 0.6, 0.8}, the
// triangle (ratio 0) and the Square Wave (ratio 1), each followed by EMS;
// the metric is the Wasserstein distance of the reconstruction.
//
// Expected shape (paper): the square wave is best at every b; accuracy
// degrades as the ratio decreases toward the triangle.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/histogram.h"
#include "core/ems.h"
#include "core/square_wave.h"
#include "core/wave.h"
#include "eval/table.h"
#include "metrics/distance.h"

using namespace numdist;

namespace {

// Reconstruction error for one (wave shape, b) point, averaged over trials.
// ratio == 1 selects the Square Wave mechanism.
double WaveW1(double ratio, double b, double eps,
              const std::vector<double>& values,
              const std::vector<double>& truth, size_t d, size_t trials,
              uint64_t seed) {
  double acc = 0.0;
  for (size_t t = 0; t < trials; ++t) {
    Rng rng(SplitMix64(seed ^ (0x51ed2701ULL * (t + 1))));
    std::vector<uint64_t> counts;
    Matrix m;
    if (ratio >= 1.0) {
      const SquareWave sw = SquareWave::Make(eps, b).ValueOrDie();
      std::vector<double> reports;
      reports.reserve(values.size());
      for (double v : values) reports.push_back(sw.Perturb(v, rng));
      counts = sw.BucketizeReports(reports, d);
      m = sw.TransitionMatrix(d, d);
    } else {
      const GeneralWave gw = GeneralWave::Make(eps, b, ratio).ValueOrDie();
      std::vector<double> reports;
      reports.reserve(values.size());
      for (double v : values) reports.push_back(gw.Perturb(v, rng));
      counts = gw.BucketizeReports(reports, d);
      m = gw.TransitionMatrix(d, d);
    }
    const EmResult res = EstimateEms(m, counts).ValueOrDie();
    acc += WassersteinDistance(truth, res.estimate);
  }
  return acc / static_cast<double>(trials);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);
  const double eps = 1.0;  // the paper's Figure 5 setting
  const std::vector<double> ratios = {1.0, 0.8, 0.6, 0.4, 0.2, 0.0};
  const std::vector<double> bs = {0.05, 0.10, 0.15, 0.20, 0.256,
                                  0.30, 0.35};

  printf("=== Figure 5: General Wave shapes at eps=%.1f, varying b ===\n",
         eps);
  printf("(ratio 1.0 = square wave, 0.0 = triangle; metric: Wasserstein)\n\n");

  for (DatasetId id : bench::DatasetsFor(flags)) {
    const DatasetSpec& spec = GetDatasetSpec(id);
    const size_t d = bench::GranularityFor(flags, id);
    Rng rng(flags.seed);
    const std::vector<double> values =
        GenerateDataset(id, bench::UsersFor(flags), rng);
    const std::vector<double> truth = hist::FromSamples(values, d);

    printf("--- %s ---\n", spec.name.c_str());
    TablePrinter table([&] {
      std::vector<std::string> headers = {"ratio"};
      for (double b : bs) headers.push_back("b=" + FormatG(b, 3));
      return headers;
    }());
    for (double ratio : ratios) {
      fprintf(stderr, "[fig5] %s ratio=%.1f ...\n", spec.name.c_str(), ratio);
      std::vector<std::string> row = {FormatG(ratio, 2)};
      for (double b : bs) {
        row.push_back(FormatSci(WaveW1(ratio, b, eps, values, truth, d,
                                       bench::TrialsFor(flags), flags.seed)));
      }
      table.AddRow(std::move(row));
    }
    if (flags.csv) {
      table.PrintCsv(std::cout);
    } else {
      table.Print(std::cout);
    }
    printf("\n");
  }
  return 0;
}
