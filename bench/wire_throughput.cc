// Wire codec throughput: encode / decode / sketch-merge rates of the
// versioned binary format (wire/wire.h), separated from the mechanism's
// own perturb/absorb cost so the serialization overhead is visible on its
// own. For each configured method it measures
//
//   encode   EncodeReportFrame over pre-perturbed chunks   (client -> wire)
//   decode   DecodeReportFrame back into chunks            (wire -> server)
//   merge    sketch frame encode + strict decode + Merge   (shard -> coord)
//
// and the combined pipeline rate n / (t_enc + t_dec + t_merge). The
// acceptance bar (ISSUE 4): the combined rate for OLH at d=1024 must reach
// 1M reports/s; a miss prints a non-blocking "# WARN" line (CI shows it,
// nothing fails — shared-runner noise must not gate merges).
//
//   wire_throughput [--n=N] [--d=D] [--methods=a,b,...] [--shard-size=K]
//                   [--fuzz] [--json=FILE]
//
// --fuzz appends the hostile-input table: seeded ByteMutator corruption
// (common/mutator.h, the same mutants tests/fuzz_wire_test.cc drives)
// pushed through the strict report/sketch decoders, measured in mutants/s
// — the rejection path is hot on any internet-facing collector, so its
// throughput is tracked like the happy path's.
//
// --wal appends the durability table (serve/wal.h): WAL_append is the
// write path (accepted report frames appended as CRC-framed records) and
// WAL_replay the crash-recovery path (the same log replayed into a fresh
// CollectorSession), both in reports/s — recovery time bounds restart
// downtime, so it is tracked like serving throughput.
//
// --json writes the FUZZ_/WAL_ series in google-benchmark shape for
// tools/compare_bench.py.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/mutator.h"
#include "data/datasets.h"
#include "protocol/sharded.h"
#include "serve/collector.h"
#include "serve/wal.h"
#include "wire/wire.h"

using namespace numdist;

namespace {

double MsSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  size_t n = 200000;
  uint32_t d = 1024;
  size_t shard_size = 8192;
  bool fuzz = false;
  bool wal = false;
  std::string json_path;
  std::string methods = "sw-ems,cfo-olh-1024,cfo-grr-16,hh";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--n=", 0) == 0) {
      n = static_cast<size_t>(atoll(arg.c_str() + 4));
    } else if (arg.rfind("--d=", 0) == 0) {
      d = static_cast<uint32_t>(atoll(arg.c_str() + 4));
    } else if (arg.rfind("--shard-size=", 0) == 0) {
      shard_size = static_cast<size_t>(atoll(arg.c_str() + 13));
    } else if (arg.rfind("--methods=", 0) == 0) {
      methods = arg.substr(10);
    } else if (arg == "--fuzz") {
      fuzz = true;
    } else if (arg == "--wal") {
      wal = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      fprintf(stderr,
              "usage: wire_throughput [--n=N] [--d=D] [--methods=a,b,...]\n"
              "                       [--shard-size=K] [--fuzz] [--wal]"
              " [--json=FILE]\n");
      return 2;
    }
  }

  const std::vector<double> values = GoldenRatioValues(n);
  bool acceptance_measured = false;
  printf("%-14s %10s %12s %12s %12s %14s %12s\n", "method", "reports",
         "enc_Mrps", "dec_Mrps", "merge_Mrps", "pipeline_Mrps", "frame_MB");

  std::stringstream ss(methods);
  std::string name;
  while (std::getline(ss, name, ',')) {
    if (name.empty()) continue;
    const auto spec_result = wire::ParseMethodSpec(name, 1.0, d);
    if (!spec_result.ok()) {
      fprintf(stderr, "skipping '%s': %s\n", name.c_str(),
              spec_result.status().ToString().c_str());
      continue;
    }
    const wire::MethodSpec spec = spec_result.value();
    const auto protocol_result = wire::MakeProtocolForSpec(spec);
    if (!protocol_result.ok()) {
      fprintf(stderr, "skipping '%s': %s\n", name.c_str(),
              protocol_result.status().ToString().c_str());
      continue;
    }
    const Protocol& protocol = *protocol_result.value();

    // Pre-perturb the chunks (mechanism cost, not wire cost) and build two
    // shard accumulators for the merge stage.
    const size_t num_shards = (n + shard_size - 1) / shard_size;
    std::vector<std::unique_ptr<ReportChunk>> chunks;
    auto shard_a = protocol.MakeAccumulator();
    auto shard_b = protocol.MakeAccumulator();
    uint64_t reports = 0;
    for (size_t i = 0; i < num_shards; ++i) {
      const size_t begin = i * shard_size;
      const size_t len = std::min(shard_size, values.size() - begin);
      Rng rng(ShardSeed(13, i));
      auto chunk = protocol
                       .EncodePerturbBatch(
                           std::span<const double>(values).subspan(begin, len),
                           rng)
                       .ValueOrDie();
      reports += chunk->num_reports();
      const Status absorbed = (i % 2 == 0 ? shard_a : shard_b)->Absorb(*chunk);
      if (!absorbed.ok()) {
        fprintf(stderr, "%s absorb: %s\n", name.c_str(),
                absorbed.ToString().c_str());
        return 1;
      }
      chunks.push_back(std::move(chunk));
    }

    // Stage 1: report frame encode.
    std::vector<std::string> frames(chunks.size());
    const auto enc_start = std::chrono::steady_clock::now();
    size_t bytes = 0;
    for (size_t i = 0; i < chunks.size(); ++i) {
      const Status st =
          wire::EncodeReportFrame(spec, protocol, *chunks[i], &frames[i]);
      if (!st.ok()) {
        fprintf(stderr, "%s encode: %s\n", name.c_str(),
                st.ToString().c_str());
        return 1;
      }
      bytes += frames[i].size();
    }
    const double enc_ms = MsSince(enc_start);

    // Stage 2: report frame decode.
    const auto dec_start = std::chrono::steady_clock::now();
    for (const std::string& frame : frames) {
      auto decoded =
          wire::DecodeReportFrame(spec, protocol, wire::FrameBytes(frame));
      if (!decoded.ok()) {
        fprintf(stderr, "%s decode: %s\n", name.c_str(),
                decoded.status().ToString().c_str());
        return 1;
      }
    }
    const double dec_ms = MsSince(dec_start);

    // Stage 3: sketch round trip + merge (what shards ship to the
    // coordinator), repeated so the timing is not dominated by clock
    // granularity: the per-iteration state is O(d), not O(n).
    const size_t merge_iters = 50;
    const auto merge_start = std::chrono::steady_clock::now();
    for (size_t it = 0; it < merge_iters; ++it) {
      std::string sa, sb;
      wire::EncodeSketchFrame(spec, *shard_a, &sa);
      wire::EncodeSketchFrame(spec, *shard_b, &sb);
      auto merged =
          wire::DecodeSketchFrame(spec, protocol, wire::FrameBytes(sa))
              .ValueOrDie();
      auto other =
          wire::DecodeSketchFrame(spec, protocol, wire::FrameBytes(sb))
              .ValueOrDie();
      const Status st = merged->Merge(*other);
      if (!st.ok()) {
        fprintf(stderr, "%s merge: %s\n", name.c_str(), st.ToString().c_str());
        return 1;
      }
    }
    const double merge_ms = MsSince(merge_start) / merge_iters;

    const double pipeline_ms = enc_ms + dec_ms + merge_ms;
    const double r = static_cast<double>(reports);
    const double pipeline_mrps = r / pipeline_ms / 1000.0;
    printf("%-14s %10llu %12.2f %12.2f %12.2f %14.2f %12.2f\n", name.c_str(),
           static_cast<unsigned long long>(reports), r / enc_ms / 1000.0,
           r / dec_ms / 1000.0, r / merge_ms / 1000.0, pipeline_mrps,
           static_cast<double>(bytes) / (1024.0 * 1024.0));

    // Acceptance radar (non-blocking): OLH with 1024 bins at granularity
    // d=1024 must clear 1M reports/s through the whole encode+decode+merge
    // pipeline. Keyed to the full configuration so a changed --d cannot
    // silently mislabel a different workload as the acceptance run.
    if (spec.method == wire::MethodId::kCfoOlh && spec.param == 1024 &&
        d == 1024) {
      acceptance_measured = true;
      if (pipeline_mrps < 1.0) {
        printf("# WARN: %s pipeline %.2f Mreports/s is below the 1M "
               "reports/s bar (non-blocking)\n",
               name.c_str(), pipeline_mrps);
      }
    }
  }
  if (!acceptance_measured) {
    printf("# NOTE: acceptance configuration cfo-olh-1024 at --d=1024 was "
           "not part of this run; the 1M reports/s radar did not fire\n");
  }

  // One JSON series entry: items/s with the series-prefixed name
  // (FUZZ_* = mutants/s, WAL_* = reports/s).
  struct JsonRow {
    std::string name;
    size_t items = 0;
    double seconds = 0.0;
  };
  std::vector<JsonRow> json_rows;

  if (fuzz) {
    // Hostile-input rejection throughput: a representative report and
    // sketch frame (OLH, the wire acceptance method), corrupted by the
    // seeded structured mutator and pushed through the strict decoders.
    const size_t mutants = std::max<size_t>(n / 4, 10000);
    printf("\nhostile-input decode, seeded ByteMutator corruption:\n");
    printf("%-14s %10s %12s %14s %10s\n", "surface", "mutants", "wall_ms",
           "mutants_per_s", "rejected");
    const auto spec = wire::ParseMethodSpec("cfo-olh-16", 1.0, 64)
                          .ValueOrDie();
    const auto protocol = wire::MakeProtocolForSpec(spec).ValueOrDie();
    Rng rng(ShardSeed(17, 0));
    auto chunk =
        protocol
            ->EncodePerturbBatch(
                std::span<const double>(values).subspan(
                    0, std::min<size_t>(values.size(), 4096)),
                rng)
            .ValueOrDie();
    std::string report_frame;
    wire::EncodeReportFrame(spec, *protocol, *chunk, &report_frame);
    auto acc = protocol->MakeAccumulator();
    (void)acc->Absorb(*chunk);
    std::string sketch_frame;
    wire::EncodeSketchFrame(spec, *acc, &sketch_frame);

    struct Surface {
      std::string name;
      const std::string* base;
    };
    const Surface surfaces[] = {{"FUZZ_report", &report_frame},
                                {"FUZZ_sketch", &sketch_frame}};
    for (const Surface& surface : surfaces) {
      ByteMutator mutator(0x9E3779B97F4A7C15ULL);
      size_t rejected = 0;
      const auto start = std::chrono::steady_clock::now();
      for (size_t i = 0; i < mutants; ++i) {
        const std::string mutant = mutator.Mutate(*surface.base);
        const bool ok =
            surface.base == &report_frame
                ? wire::DecodeReportFrame(spec, *protocol,
                                          wire::FrameBytes(mutant))
                      .ok()
                : wire::DecodeSketchFrame(spec, *protocol,
                                          wire::FrameBytes(mutant))
                      .ok();
        if (!ok) ++rejected;
      }
      const double seconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
      json_rows.push_back({surface.name, mutants, seconds});
      printf("%-14s %10zu %12.1f %14.0f %10zu\n", surface.name.c_str(),
             mutants, seconds * 1000.0,
             static_cast<double>(mutants) / seconds, rejected);
    }
  }

  if (wal) {
    // Durability throughput: the same accepted report frames a serving
    // collector would log, appended to a fresh WAL (WAL_append, the write
    // path the collector pays per accepted frame) and then replayed into a
    // fresh CollectorSession (WAL_replay, the restart path whose rate
    // bounds crash-recovery downtime).
    const auto spec = wire::ParseMethodSpec("sw-ems", 1.0, 64).ValueOrDie();
    const auto protocol = wire::MakeProtocolForSpec(spec).ValueOrDie();
    const size_t num_shards = (values.size() + shard_size - 1) / shard_size;
    std::vector<std::string> frames;
    uint64_t wal_reports = 0;
    for (size_t i = 0; i < num_shards; ++i) {
      const size_t begin = i * shard_size;
      const size_t len = std::min(shard_size, values.size() - begin);
      Rng rng(ShardSeed(19, i));
      auto chunk = protocol
                       ->EncodePerturbBatch(
                           std::span<const double>(values).subspan(begin, len),
                           rng)
                       .ValueOrDie();
      wal_reports += chunk->num_reports();
      std::string frame;
      const Status st =
          wire::EncodeReportFrame(spec, *protocol, *chunk, &frame);
      if (!st.ok()) {
        fprintf(stderr, "wal encode: %s\n", st.ToString().c_str());
        return 1;
      }
      frames.push_back(std::move(frame));
    }
    const char* tmpdir = getenv("TMPDIR");
    const std::string wal_path = std::string(tmpdir != nullptr ? tmpdir
                                                               : "/tmp") +
                                 "/wire_throughput_bench.wal";
    std::remove(wal_path.c_str());

    printf("\ndurability, write-ahead log (sw-ems, %zu-report frames):\n",
           shard_size);
    printf("%-14s %10s %12s %14s\n", "path", "reports", "wall_ms",
           "reports_per_s");

    // Write path: open fresh, append every frame.
    const auto append_start = std::chrono::steady_clock::now();
    {
      auto writer = serve::WalWriter::Open(wal_path, 0);
      if (!writer.ok()) {
        fprintf(stderr, "wal open: %s\n",
                writer.status().ToString().c_str());
        return 1;
      }
      for (const std::string& frame : frames) {
        const Status st = writer.value().AppendFrame(frame);
        if (!st.ok()) {
          fprintf(stderr, "wal append: %s\n", st.ToString().c_str());
          return 1;
        }
      }
    }
    const double append_s = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() -
                                append_start)
                                .count();
    json_rows.push_back({"WAL_append", wal_reports, append_s});
    printf("%-14s %10llu %12.1f %14.0f\n", "WAL_append",
           static_cast<unsigned long long>(wal_reports), append_s * 1000.0,
           static_cast<double>(wal_reports) / append_s);

    // Recovery path: replay the finished log into a fresh session.
    auto session = serve::CollectorSession::Make(spec).ValueOrDie();
    serve::WalConsumer consumer;
    consumer.on_frame = [&session](std::string_view frame) {
      return session.HandleFrame(frame);
    };
    consumer.on_checkpoint =
        [&session](const std::vector<std::string>& sketches) {
          return session.ResetToSketches(sketches);
        };
    const auto replay_start = std::chrono::steady_clock::now();
    const auto stats = serve::ReplayWal(wal_path, consumer);
    const double replay_s = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() -
                                replay_start)
                                .count();
    if (!stats.ok() || !stats.value().tail.ok() ||
        session.num_reports() != wal_reports) {
      fprintf(stderr, "wal replay: %s (recovered %llu of %llu reports)\n",
              (stats.ok() ? stats.value().tail : stats.status())
                  .ToString()
                  .c_str(),
              static_cast<unsigned long long>(session.num_reports()),
              static_cast<unsigned long long>(wal_reports));
      return 1;
    }
    json_rows.push_back({"WAL_replay", wal_reports, replay_s});
    printf("%-14s %10llu %12.1f %14.0f\n", "WAL_replay",
           static_cast<unsigned long long>(wal_reports), replay_s * 1000.0,
           static_cast<double>(wal_reports) / replay_s);
    std::remove(wal_path.c_str());
  }

  if (!json_path.empty()) {
    // google-benchmark JSON shape, so tools/compare_bench.py can diff this
    // file against artifacts and the committed fallback baseline.
    FILE* out = fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      fprintf(stderr, "cannot write '%s'\n", json_path.c_str());
      return 1;
    }
    fprintf(out, "{\n \"context\": {\"executable\": \"wire_throughput\"},\n"
                 " \"benchmarks\": [\n");
    for (size_t i = 0; i < json_rows.size(); ++i) {
      const JsonRow& r = json_rows[i];
      const double ns_per_item =
          r.seconds * 1e9 / static_cast<double>(r.items);
      fprintf(out,
              "%s  {\"name\": \"%s\", \"run_name\": \"%s\", "
              "\"run_type\": \"iteration\", \"iterations\": 1, "
              "\"real_time\": %.3f, \"cpu_time\": %.3f, "
              "\"time_unit\": \"ns\", \"items_per_second\": %.3f}",
              i == 0 ? "" : ",\n", r.name.c_str(), r.name.c_str(),
              ns_per_item, ns_per_item,
              static_cast<double>(r.items) / r.seconds);
    }
    fprintf(out, "\n ]\n}\n");
    fclose(out);
  }
  return 0;
}
