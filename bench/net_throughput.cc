// Event-loop collector ingest throughput: a CollectorServer on a TCP
// loopback listener versus a MultiSender fleet, at production connection
// counts. For each configured connection count it measures
//
//   ingest     end-to-end Mreports/s from first byte sent to drain done
//   frame p50/p99  per-frame latency (fully decoded -> absorbed), ns
//
// The acceptance bar (ISSUE 6): sustained ingest at 1000 connections must
// reach 1M reports/s; a miss prints a non-blocking "# WARN" line (CI shows
// it, nothing fails — shared-runner noise must not gate merges). The
// 10000-connection row exists to expose per-connection overheads that a
// 1k run hides (epoll scan costs, buffer bloat, accept storms).
//
// RLIMIT_NOFILE is raised to its hard cap at startup; connection counts
// that still do not fit (client + server fd per connection, plus slack)
// are clamped with a note rather than failing, so the bench degrades
// gracefully on tight containers.
//
// With --faults=SEED the bench adds the fault-tolerance series: the
// retry/ack sender (net/retry.h) against the same collector, once clean
// and once through a seeded FaultPlan of injected connection resets
// (net/fault.h) — FAULT_retry_clean measures the sequencing + ack
// overhead over raw MultiSender ingest, FAULT_retry_resets the cost of
// riding through the scripted faults (reconnect + retransmit included).
// The seed makes the fault schedule identical on every run.
//
//   net_throughput [--n=N] [--shard-size=K] [--connections=a,b,...]
//                  [--faults=SEED] [--fault-resets=K] [--json=FILE]
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "data/datasets.h"
#include "net/client.h"
#include "net/fault.h"
#include "net/retry.h"
#include "net/server.h"
#include "net/socket.h"
#include "protocol/sharded.h"
#include "wire/wire.h"

using namespace numdist;

namespace {

struct RunResult {
  size_t connections = 0;  // actually used (post-clamp)
  size_t requested = 0;    // stable bench key across machines/rlimits
  uint64_t reports = 0;
  uint64_t frames = 0;
  double seconds = 0.0;
  double mrps = 0.0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  uint64_t pauses = 0;
};

double Percentile(std::vector<uint64_t>* samples, double q) {
  if (samples->empty()) return 0.0;
  const size_t idx = std::min(
      samples->size() - 1,
      static_cast<size_t>(q * static_cast<double>(samples->size())));
  std::nth_element(samples->begin(), samples->begin() + idx, samples->end());
  return static_cast<double>((*samples)[idx]);
}

/// One retry-sender run of the fault-tolerance series.
struct FaultRunResult {
  std::string key;  // bench series suffix ("clean", "resets/<k>")
  uint64_t reports = 0;
  double seconds = 0.0;
  net::RetryStats stats;
};

}  // namespace

int main(int argc, char** argv) {
  size_t n = 100000;
  size_t shard_size = 500;
  std::string connection_list = "1000,10000";
  std::string json_path;
  uint64_t fault_seed = 0;  // 0 = fault series off
  uint32_t fault_resets = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--n=", 0) == 0) {
      n = static_cast<size_t>(atoll(arg.c_str() + 4));
    } else if (arg.rfind("--shard-size=", 0) == 0) {
      shard_size = static_cast<size_t>(atoll(arg.c_str() + 13));
    } else if (arg.rfind("--connections=", 0) == 0) {
      connection_list = arg.substr(14);
    } else if (arg.rfind("--faults=", 0) == 0) {
      fault_seed = static_cast<uint64_t>(atoll(arg.c_str() + 9));
    } else if (arg.rfind("--fault-resets=", 0) == 0) {
      fault_resets = static_cast<uint32_t>(atoll(arg.c_str() + 15));
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      fprintf(stderr,
              "usage: net_throughput [--n=N] [--shard-size=K]\n"
              "                      [--connections=a,b,...]\n"
              "                      [--faults=SEED] [--fault-resets=K]\n"
              "                      [--json=FILE]\n");
      return 2;
    }
  }

  // Both fleet ends live in this one process: one fd per connection per
  // side, plus listener/epoll/eventfd/stdio slack.
  rlimit rl;
  if (getrlimit(RLIMIT_NOFILE, &rl) == 0 && rl.rlim_cur < rl.rlim_max) {
    rl.rlim_cur = rl.rlim_max;
    setrlimit(RLIMIT_NOFILE, &rl);
  }
  size_t max_connections = 256;
  if (getrlimit(RLIMIT_NOFILE, &rl) == 0 && rl.rlim_cur > 128) {
    max_connections = (static_cast<size_t>(rl.rlim_cur) - 64) / 2;
  }

  // Pre-encode the report frames once; the network path under test is
  // framing + reassembly + decode + absorb, not the mechanism's perturb.
  const auto spec = wire::ParseMethodSpec("sw-ems", 1.0, 64).ValueOrDie();
  const auto protocol = wire::MakeProtocolForSpec(spec).ValueOrDie();
  const std::vector<double> values = GoldenRatioValues(n);
  const size_t num_shards = (n + shard_size - 1) / shard_size;
  std::vector<std::string> frames;
  uint64_t reports_per_round = 0;
  for (size_t i = 0; i < num_shards; ++i) {
    const size_t begin = i * shard_size;
    const size_t len = std::min(shard_size, values.size() - begin);
    Rng rng(ShardSeed(13, i));
    auto chunk = protocol
                     ->EncodePerturbBatch(
                         std::span<const double>(values).subspan(begin, len),
                         rng)
                     .ValueOrDie();
    reports_per_round += chunk->num_reports();
    std::string frame;
    const Status st =
        wire::EncodeReportFrame(spec, *protocol, *chunk, &frame);
    if (!st.ok()) {
      fprintf(stderr, "encode: %s\n", st.ToString().c_str());
      return 1;
    }
    frames.push_back(std::move(frame));
  }

  std::vector<RunResult> results;
  bool acceptance_measured = false;
  printf("%-12s %10s %10s %10s %12s %12s %8s\n", "connections", "frames",
         "Mreports", "Mrps", "p50_us", "p99_us", "pauses");

  std::stringstream ss(connection_list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    size_t connections = static_cast<size_t>(atoll(item.c_str()));
    if (connections == 0) continue;
    if (connections > max_connections) {
      printf("# NOTE: clamping %zu connections to %zu "
             "(RLIMIT_NOFILE=%llu)\n",
             connections, max_connections,
             static_cast<unsigned long long>(rl.rlim_cur));
      connections = max_connections;
    }
    // Enough rounds that every connection carries traffic and the run is
    // long enough to time: at least 2 frames per connection.
    const size_t rounds =
        std::max<size_t>(1, (2 * connections + frames.size() - 1) /
                                frames.size());

    net::ServerOptions options;
    options.record_latency = true;
    auto server = net::CollectorServer::Make(spec, options).ValueOrDie();
    const net::Endpoint bound =
        server->AddListener(net::ParseEndpoint("tcp:0").ValueOrDie())
            .ValueOrDie();
    Status run_status;
    std::thread serving([&] { run_status = server->Run(); });

    auto sender = net::MultiSender::Make(bound, connections).ValueOrDie();
    const auto start = std::chrono::steady_clock::now();
    for (size_t round = 0; round < rounds; ++round) {
      for (const std::string& frame : frames) {
        const Status st = sender.Send(frame);
        if (!st.ok()) {
          fprintf(stderr, "send: %s\n", st.ToString().c_str());
          return 1;
        }
      }
    }
    const Status finished = sender.Finish();
    if (!finished.ok()) {
      fprintf(stderr, "finish: %s\n", finished.ToString().c_str());
      return 1;
    }
    server->RequestDrain();
    serving.join();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (!run_status.ok()) {
      fprintf(stderr, "server: %s\n", run_status.ToString().c_str());
      return 1;
    }
    const uint64_t expected = reports_per_round * rounds;
    if (server->num_reports() != expected) {
      fprintf(stderr, "lost reports: absorbed %llu of %llu\n",
              static_cast<unsigned long long>(server->num_reports()),
              static_cast<unsigned long long>(expected));
      return 1;
    }

    RunResult r;
    r.connections = connections;
    r.requested = static_cast<size_t>(atoll(item.c_str()));
    r.reports = expected;
    r.frames = server->stats().frames_absorbed;
    r.seconds = seconds;
    r.mrps = static_cast<double>(expected) / seconds / 1e6;
    std::vector<uint64_t> latency = server->stats().latency_ns;
    r.p50_ns = Percentile(&latency, 0.50);
    r.p99_ns = Percentile(&latency, 0.99);
    r.pauses = server->stats().pauses;
    results.push_back(r);

    printf("%-12zu %10llu %10.2f %10.2f %12.1f %12.1f %8llu\n",
           r.connections, static_cast<unsigned long long>(r.frames),
           static_cast<double>(r.reports) / 1e6, r.mrps, r.p50_ns / 1000.0,
           r.p99_ns / 1000.0, static_cast<unsigned long long>(r.pauses));

    // Acceptance radar (non-blocking): 1M reports/s sustained at 1000
    // concurrent connections. Keyed to the un-clamped request so a tight
    // container's smaller run cannot masquerade as the acceptance row.
    if (item == "1000" && connections == 1000) {
      acceptance_measured = true;
      if (r.mrps < 1.0) {
        printf("# WARN: ingest at 1000 connections is %.2f Mreports/s, "
               "below the 1M reports/s bar (non-blocking)\n",
               r.mrps);
      }
    }
  }
  if (!acceptance_measured) {
    printf("# NOTE: the 1000-connection acceptance configuration was not "
           "part of this run; the 1M reports/s radar did not fire\n");
  }

  // Fault-tolerance series: the retry/ack sender, clean and through a
  // seeded schedule of injected connection resets. Exactly-once dedup
  // means the absorbed-report check is exact even though the faulted run
  // retransmits whole windows.
  std::vector<FaultRunResult> fault_runs;
  if (fault_seed != 0) {
    printf("%-22s %10s %10s %12s %12s %10s\n", "fault-series", "Mreports",
           "Mrps", "reconnects", "retransmits", "injected");
    auto run_retry = [&](const net::FaultPlan* plan,
                         const std::string& key) -> int {
      net::ServerOptions options;  // acks on: the retry path needs them
      auto server = net::CollectorServer::Make(spec, options).ValueOrDie();
      const net::Endpoint bound =
          server->AddListener(net::ParseEndpoint("tcp:0").ValueOrDie())
              .ValueOrDie();
      Status run_status;
      std::thread serving([&] { run_status = server->Run(); });

      net::RetryOptions retry_options;
      retry_options.epoch = 1;
      retry_options.base_backoff_ms = 1;
      retry_options.max_backoff_ms = 20;
      retry_options.total_deadline_ms = 120000;
      retry_options.jitter_seed = fault_seed;
      retry_options.faults = plan;
      auto sender =
          net::RetrySender::Make({bound}, retry_options).ValueOrDie();
      const auto start = std::chrono::steady_clock::now();
      for (const std::string& frame : frames) {
        const Status st = sender.Send(frame);
        if (!st.ok()) {
          fprintf(stderr, "retry send: %s\n", st.ToString().c_str());
          return 1;
        }
      }
      const Status finished = sender.Finish();
      if (!finished.ok()) {
        fprintf(stderr, "retry finish: %s\n", finished.ToString().c_str());
        return 1;
      }
      server->RequestDrain();
      serving.join();
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (!run_status.ok()) {
        fprintf(stderr, "server: %s\n", run_status.ToString().c_str());
        return 1;
      }
      if (server->num_reports() != reports_per_round) {
        fprintf(stderr, "exactly-once broken: absorbed %llu of %llu\n",
                static_cast<unsigned long long>(server->num_reports()),
                static_cast<unsigned long long>(reports_per_round));
        return 1;
      }
      FaultRunResult r;
      r.key = key;
      r.reports = reports_per_round;
      r.seconds = seconds;
      r.stats = sender.stats();
      fault_runs.push_back(r);
      printf("%-22s %10.2f %10.2f %12llu %12llu %10llu\n", key.c_str(),
             static_cast<double>(r.reports) / 1e6,
             static_cast<double>(r.reports) / seconds / 1e6,
             static_cast<unsigned long long>(r.stats.reconnects),
             static_cast<unsigned long long>(r.stats.retransmits),
             static_cast<unsigned long long>(r.stats.injected_faults));
      return 0;
    };
    if (const int rc = run_retry(nullptr, "clean"); rc != 0) return rc;
    const net::FaultPlan plan =
        net::FaultPlan::Resets(fault_seed, fault_resets, /*max_byte=*/4096);
    if (const int rc = run_retry(
            &plan, "resets/" + std::to_string(fault_resets));
        rc != 0) {
      return rc;
    }
    const FaultRunResult& faulted = fault_runs.back();
    if (faulted.stats.injected_faults != fault_resets) {
      fprintf(stderr, "fault plan did not fire: %llu of %u resets\n",
              static_cast<unsigned long long>(faulted.stats.injected_faults),
              fault_resets);
      return 1;
    }
  }

  if (!json_path.empty()) {
    // google-benchmark JSON shape, so tools/compare_bench.py can diff this
    // file against artifacts and the committed fallback baseline.
    FILE* out = fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      fprintf(stderr, "cannot write '%s'\n", json_path.c_str());
      return 1;
    }
    fprintf(out, "{\n \"context\": {\"executable\": \"net_throughput\"},\n"
                 " \"benchmarks\": [\n");
    bool first = true;
    for (const RunResult& r : results) {
      const double ns_per_report =
          r.seconds * 1e9 / static_cast<double>(r.reports);
      struct Entry {
        std::string name;
        double real_time;
        double items_per_second;
      };
      const Entry entries[] = {
          {"NET_ingest/" + std::to_string(r.requested), ns_per_report,
           static_cast<double>(r.reports) / r.seconds},
          {"NET_frame_p99/" + std::to_string(r.requested), r.p99_ns, 0.0},
      };
      for (const Entry& e : entries) {
        fprintf(out,
                "%s  {\"name\": \"%s\", \"run_name\": \"%s\", "
                "\"run_type\": \"iteration\", \"iterations\": 1, "
                "\"real_time\": %.3f, \"cpu_time\": %.3f, "
                "\"time_unit\": \"ns\", \"items_per_second\": %.3f}",
                first ? "" : ",\n", e.name.c_str(), e.name.c_str(),
                e.real_time, e.real_time, e.items_per_second);
        first = false;
      }
    }
    for (const FaultRunResult& r : fault_runs) {
      const std::string name = "FAULT_retry_" + r.key;
      const double ns_per_report =
          r.seconds * 1e9 / static_cast<double>(r.reports);
      fprintf(out,
              "%s  {\"name\": \"%s\", \"run_name\": \"%s\", "
              "\"run_type\": \"iteration\", \"iterations\": 1, "
              "\"real_time\": %.3f, \"cpu_time\": %.3f, "
              "\"time_unit\": \"ns\", \"items_per_second\": %.3f}",
              first ? "" : ",\n", name.c_str(), name.c_str(), ns_per_report,
              ns_per_report,
              static_cast<double>(r.reports) / r.seconds);
      first = false;
    }
    fprintf(out, "\n ]\n}\n");
    fclose(out);
  }
  return 0;
}
