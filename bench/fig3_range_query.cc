// Figure 3: MAE of random range queries with range size alpha = 0.1 (row 1)
// and alpha = 0.4 (row 2), varying epsilon, for every dataset and method —
// including the hierarchy methods HH and HaarHRR, which answer range
// queries directly from their (possibly negative) tree estimates.
//
// Expected shape (paper): SW-EMS best in most cases; competitive with
// CFO-bin-64 at alpha=0.1 on Taxi; HH-ADMM strongest on Income at low
// privacy (large eps).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "eval/table.h"

using namespace numdist;

int main(int argc, char** argv) {
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);
  const auto methods = MakeStandardSuite();
  const auto points = bench::RunStandardSweep(flags, methods);

  printf("=== Figure 3: range query MAE, varying epsilon ===\n");
  printf("(n=%zu, trials=%zu, 200 random queries per trial)\n\n",
         bench::UsersFor(flags), bench::TrialsFor(flags));
  for (double alpha : {0.1, 0.4}) {
    printf("--- alpha = %.1f ---\n", alpha);
    TablePrinter table([&] {
      std::vector<std::string> headers = {"dataset", "method"};
      for (double eps : flags.epsilons) {
        headers.push_back("eps=" + FormatG(eps, 3));
      }
      return headers;
    }());
    for (const auto& dataset : flags.datasets) {
      for (const auto& method : methods) {
        std::vector<std::string> row = {dataset, method->name()};
        for (double eps : flags.epsilons) {
          for (const auto& p : points) {
            if (p.dataset == dataset && p.method == method->name() &&
                p.epsilon == eps) {
              row.push_back(FormatSci(alpha < 0.25 ? p.agg.mean.range_small
                                                   : p.agg.mean.range_large));
            }
          }
        }
        table.AddRow(std::move(row));
      }
    }
    if (flags.csv) {
      table.PrintCsv(std::cout);
    } else {
      table.Print(std::cout);
    }
    printf("\n");
  }
  return 0;
}
