// Micro-benchmarks (google-benchmark): EM/EMS reconstruction cost as a
// function of the histogram granularity — the aggregator's post-processing
// budget (one mat-vec pair per iteration: O(d^2) dense, O(d * band) banded,
// O(d) through the analytic sliding-window operator).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include <memory>

#include "common/rng.h"
#include "core/em.h"
#include "core/ems.h"
#include "core/observation_model.h"
#include "core/square_wave.h"
#include "core/sw_estimator.h"
#include "eval/incremental.h"
#include "eval/streaming.h"
#include "hierarchy/admm.h"
#include "hierarchy/constrained.h"
#include "hierarchy/hh.h"
#include "kernels/kernels.h"

// Global allocation counter: lets the EM benches report heap allocations
// per iteration as a hard counter instead of relying on inspection.
namespace {
std::atomic<int64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace numdist;

// Shared fixture data: SW observations of a bimodal distribution, with the
// dense matrix and both structured views of the same transition.
struct EmInput {
  SquareWave sw;
  Matrix m;
  BandedObservationModel banded;
  SlidingWindowObservationModel sliding;
  std::vector<uint64_t> counts;
};

EmInput MakeEmInput(size_t d) {
  const SquareWave sw = SquareWave::Make(1.0).ValueOrDie();
  Rng rng(42);
  std::vector<double> reports;
  const size_t n = 50000;
  reports.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double v = rng.Bernoulli(0.5) ? 0.3 : 0.7;
    reports.push_back(sw.Perturb(v, rng));
  }
  Matrix m = sw.TransitionMatrix(d, d);
  const double background = sw.q() * (1.0 + 2.0 * sw.b()) / d;
  return {sw, m, BandedObservationModel::FromDense(m, background, 1e-13),
          SlidingWindowObservationModel::FromContinuous(sw, d, d),
          sw.BucketizeReports(reports, d)};
}

EmOptions TenFixedIterations() {
  EmOptions opts;
  opts.max_iterations = 10;
  opts.min_iterations = 10;
  opts.tol = 0.0;
  return opts;
}

void BM_EmIteration(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const EmInput input = MakeEmInput(d);
  const EmOptions opts = TenFixedIterations();
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateEm(input.m, input.counts, opts));
  }
  // 10 iterations of 2 mat-vecs each.
  state.SetItemsProcessed(state.iterations() * 10 * 2 * d * d);
}
BENCHMARK(BM_EmIteration)->Arg(128)->Arg(256)->Arg(512)->Arg(1024);

void BM_EmIterationBanded(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const EmInput input = MakeEmInput(d);
  const EmOptions opts = TenFixedIterations();
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateEm(input.banded, input.counts, opts));
  }
  state.SetItemsProcessed(state.iterations() * 10 * 2 * d * d);
}
BENCHMARK(BM_EmIterationBanded)->Arg(128)->Arg(256)->Arg(512)->Arg(1024);

void BM_EmIterationSliding(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const EmInput input = MakeEmInput(d);
  const EmOptions opts = TenFixedIterations();
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateEm(input.sliding, input.counts, opts));
  }
  state.SetItemsProcessed(state.iterations() * 10 * 2 * d * d);
}
BENCHMARK(BM_EmIterationSliding)->Arg(128)->Arg(256)->Arg(512)->Arg(1024);

// Heap allocations per EM iteration, measured by differencing a long run
// against a short run on identical inputs (setup allocations cancel).
// Must report 0 for every model: the whole iteration loop is in-place.
void BM_EmAllocationsPerIteration(benchmark::State& state) {
  const size_t d = 512;
  const EmInput input = MakeEmInput(d);
  EmOptions short_opts = TenFixedIterations();
  EmOptions long_opts = TenFixedIterations();
  long_opts.max_iterations = 510;
  long_opts.min_iterations = 510;
  double allocs_per_iter = 0.0;
  for (auto _ : state) {
    const int64_t before_short = g_allocations.load();
    benchmark::DoNotOptimize(EstimateEm(input.sliding, input.counts,
                                        short_opts));
    const int64_t short_allocs = g_allocations.load() - before_short;
    const int64_t before_long = g_allocations.load();
    benchmark::DoNotOptimize(EstimateEm(input.sliding, input.counts,
                                        long_opts));
    const int64_t long_allocs = g_allocations.load() - before_long;
    allocs_per_iter =
        static_cast<double>(long_allocs - short_allocs) / 500.0;
  }
  state.counters["allocs_per_iter"] = allocs_per_iter;
}
BENCHMARK(BM_EmAllocationsPerIteration)->Iterations(1);

// Raw mat-vec pair (Apply + ApplyTranspose) cost of the three
// representations of the same SW transition operator.
template <typename Model>
void MatVecPairLoop(benchmark::State& state, const Model& model, size_t d) {
  Rng rng(9);
  std::vector<double> x(d);
  for (double& v : x) v = rng.Uniform();
  std::vector<double> y;
  std::vector<double> xt;
  for (auto _ : state) {
    model.Apply(x, &y);
    model.ApplyTranspose(y, &xt);
    benchmark::DoNotOptimize(xt.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * d * d);
}

void BM_MatVecDense(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const SquareWave sw = SquareWave::Make(1.0).ValueOrDie();
  const DenseObservationModel dense(sw.TransitionMatrix(d, d));
  MatVecPairLoop(state, dense, d);
}
BENCHMARK(BM_MatVecDense)->Arg(256)->Arg(1024)->Arg(4096);

void BM_MatVecBanded(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const SquareWave sw = SquareWave::Make(1.0).ValueOrDie();
  const double background = sw.q() * (1.0 + 2.0 * sw.b()) / d;
  const BandedObservationModel banded = BandedObservationModel::FromDense(
      sw.TransitionMatrix(d, d), background, 1e-13);
  MatVecPairLoop(state, banded, d);
}
BENCHMARK(BM_MatVecBanded)->Arg(256)->Arg(1024)->Arg(4096);

void BM_MatVecSliding(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const SquareWave sw = SquareWave::Make(1.0).ValueOrDie();
  const SlidingWindowObservationModel sliding =
      SlidingWindowObservationModel::FromContinuous(sw, d, d);
  MatVecPairLoop(state, sliding, d);
}
BENCHMARK(BM_MatVecSliding)->Arg(256)->Arg(1024)->Arg(4096);

void BM_EmsFullConvergence(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const EmInput input = MakeEmInput(d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateEms(input.m, input.counts));
  }
}
BENCHMARK(BM_EmsFullConvergence)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

// Full EMS convergence through the sliding-window operator, plain vs
// SQUAREM-accelerated: the end-to-end reconstruction cost the aggregator
// actually pays per trial.
void BM_EmsConvergenceSliding(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const EmInput input = MakeEmInput(d);
  EmOptions opts;
  opts.smoothing = true;
  opts.acceleration = state.range(1) != 0;
  size_t iterations = 0;
  for (auto _ : state) {
    const EmResult res =
        EstimateEm(input.sliding, input.counts, opts).ValueOrDie();
    iterations = res.iterations;
    benchmark::DoNotOptimize(res.estimate.data());
  }
  state.counters["em_steps"] = static_cast<double>(iterations);
}
BENCHMARK(BM_EmsConvergenceSliding)
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Unit(benchmark::kMillisecond);

// ---- Incremental reconstruction: warm-started / mini-batch EM ----
//
// Rolling-snapshot fixture: a growing report stream cut into cumulative
// count snapshots, reconstructed after each increment. The EM_WARM_ /
// EM_MINIBATCH_ series are registered in the CI --require list, so their
// names are load-bearing.

struct RollingFixture {
  SlidingWindowObservationModel sliding;
  /// Cumulative bucketized counts after each increment.
  std::vector<std::vector<uint64_t>> totals;
};

RollingFixture MakeRollingFixture(size_t d, size_t increments,
                                  size_t per_increment) {
  const SquareWave sw = SquareWave::Make(1.0).ValueOrDie();
  Rng rng(1234);
  std::vector<double> reports;
  reports.reserve(increments * per_increment);
  RollingFixture fx{SlidingWindowObservationModel::FromContinuous(sw, d, d),
                    {}};
  for (size_t k = 0; k < increments; ++k) {
    for (size_t i = 0; i < per_increment; ++i) {
      const double v = rng.Bernoulli(0.5) ? 0.3 : 0.7;
      reports.push_back(sw.Perturb(v, rng));
    }
    fx.totals.push_back(sw.BucketizeReports(reports, d));
  }
  return fx;
}

// Warm-started sweep over 10 rolling snapshots at d=1024: each snapshot
// restarts EM from the previous fixed point at the same tolerance a cold
// restart uses (same final likelihood gap). The cold baseline runs once
// outside the timed loop; iteration_speedup = cold/warm total EM
// iterations is the headline counter (acceptance floor: >= 5x).
void EM_WARM_RollingSnapshots(benchmark::State& state) {
  const size_t d = 1024;
  const RollingFixture fx = MakeRollingFixture(d, 10, 5000);
  const EmOptions opts;
  size_t cold_total = 0;
  for (const std::vector<uint64_t>& totals : fx.totals) {
    cold_total +=
        EstimateEm(fx.sliding, totals, opts).ValueOrDie().iterations;
  }
  size_t warm_total = 0;
  for (auto _ : state) {
    EmCheckpoint checkpoint;
    for (const std::vector<uint64_t>& totals : fx.totals) {
      benchmark::DoNotOptimize(
          EstimateEm(fx.sliding, totals, opts, &checkpoint).ValueOrDie());
    }
    warm_total = checkpoint.total_iterations;
  }
  state.counters["cold_iterations"] = static_cast<double>(cold_total);
  state.counters["warm_iterations"] = static_cast<double>(warm_total);
  state.counters["iteration_speedup"] =
      static_cast<double>(cold_total) / static_cast<double>(warm_total);
}
BENCHMARK(EM_WARM_RollingSnapshots)->Unit(benchmark::kMillisecond);

// Wall-time baseline for the row above: the same 10 snapshots, each
// reconstructed cold (from uniform). Compare real_time directly against
// EM_WARM_RollingSnapshots.
void EM_WARM_ColdRestarts(benchmark::State& state) {
  const size_t d = 1024;
  const RollingFixture fx = MakeRollingFixture(d, 10, 5000);
  const EmOptions opts;
  size_t cold_total = 0;
  for (auto _ : state) {
    cold_total = 0;
    for (const std::vector<uint64_t>& totals : fx.totals) {
      cold_total +=
          EstimateEm(fx.sliding, totals, opts).ValueOrDie().iterations;
    }
  }
  state.counters["cold_iterations"] = static_cast<double>(cold_total);
}
BENCHMARK(EM_WARM_ColdRestarts)->Unit(benchmark::kMillisecond);

// Mini-batch mode over a DRIFTING stream: the population jumps between
// increments, and the reconstructor forgets old reports with a half-life
// of two increments. Measures the per-update cost of the rolling-window
// path end-to-end (decay + warm-started EM through eval/incremental.h).
void EM_MINIBATCH_RollingWindow(benchmark::State& state) {
  const size_t d = 1024;
  const size_t increments = 10;
  const size_t per_increment = 5000;
  SwEstimatorOptions options;
  options.epsilon = 1.0;
  options.d = d;
  const auto estimator = std::make_shared<const SwEstimator>(
      SwEstimator::Make(options).ValueOrDie());
  StreamingAggregator agg = StreamingAggregator::ForEstimator(estimator);
  Rng rng(77);
  std::vector<std::vector<uint64_t>> totals;
  std::vector<uint64_t> ns;
  for (size_t k = 0; k < increments; ++k) {
    // Drifting bimodal population: the mode migrates across increments.
    const double mode =
        0.2 + 0.6 * static_cast<double>(k) / (increments - 1);
    for (size_t i = 0; i < per_increment; ++i) {
      const double v = rng.Bernoulli(0.7) ? mode : 1.0 - mode;
      agg.Accept(estimator->PerturbOne(v, rng));
    }
    totals.push_back(agg.counts());
    ns.push_back(agg.count());
  }
  IncrementalOptions inc_options;
  inc_options.mode = IncrementalOptions::Mode::kMiniBatch;
  inc_options.half_life = 2.0 * static_cast<double>(per_increment);
  size_t total_iterations = 0;
  for (auto _ : state) {
    IncrementalReconstructor inc =
        IncrementalReconstructor::Make(estimator, inc_options).ValueOrDie();
    for (size_t k = 0; k < increments; ++k) {
      benchmark::DoNotOptimize(
          inc.UpdateFromTotals(totals[k], ns[k]).ValueOrDie());
    }
    total_iterations = inc.checkpoint().total_iterations;
  }
  state.counters["total_iterations"] = static_cast<double>(total_iterations);
  state.counters["updates"] = static_cast<double>(increments);
}
BENCHMARK(EM_MINIBATCH_RollingWindow)->Unit(benchmark::kMillisecond);

// ---- AVX-512 kernel tier on the EM hot path ----
//
// Forced-dispatch EM sweep: kAvx512 clamps down the fallback ladder on
// machines without AVX-512 (the avx512 counter records what actually ran),
// so the series always produces numbers. Compare real_time against the
// equivalent forced-AVX2/scalar rows.
void EM_AVX512_EmSweepSliding(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const EmInput input = MakeEmInput(d);
  const EmOptions opts = TenFixedIterations();
  kernels::ForceIsaForTest(kernels::Isa::kAvx512);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateEm(input.sliding, input.counts, opts));
  }
  state.counters["avx512"] = kernels::Avx512Available() ? 1.0 : 0.0;
  state.SetItemsProcessed(state.iterations() * 10 * 2 * d * d);
}
BENCHMARK(EM_AVX512_EmSweepSliding)->Arg(1024)->Arg(4096);

// Raw blocked-reduction dot product under forced AVX-512 dispatch (the
// kernel every E step leans on). items_per_second = multiply-adds/s.
void EM_AVX512_Dot(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(15);
  std::vector<double> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = rng.Uniform();
    b[i] = rng.Uniform();
  }
  kernels::ForceIsaForTest(kernels::Isa::kAvx512);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::Dot(a.data(), b.data(), n));
  }
  state.counters["avx512"] = kernels::Avx512Available() ? 1.0 : 0.0;
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(EM_AVX512_Dot)->Arg(1024)->Arg(16384);

void BM_BinomialSmooth(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  std::vector<double> x(d, 1.0 / static_cast<double>(d));
  for (auto _ : state) {
    BinomialSmooth(&x);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * d);
}
BENCHMARK(BM_BinomialSmooth)->Arg(1024)->Arg(4096);

void BM_ConstrainedInference(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const HierarchyTree tree = HierarchyTree::Make(d, 4).ValueOrDie();
  Rng rng(7);
  std::vector<double> nodes(tree.NumNodes());
  for (double& v : nodes) v = rng.Uniform(-0.1, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ConstrainedInference(tree, nodes));
  }
  state.SetItemsProcessed(state.iterations() * tree.NumNodes());
}
BENCHMARK(BM_ConstrainedInference)->Arg(256)->Arg(1024);

void BM_HhAdmm(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const HierarchyTree tree = HierarchyTree::Make(d, 4).ValueOrDie();
  Rng rng(8);
  std::vector<double> nodes(tree.NumNodes());
  for (double& v : nodes) v = rng.Uniform(-0.1, 0.3);
  nodes[0] = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(HhAdmm(tree, nodes));
  }
}
BENCHMARK(BM_HhAdmm)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

}  // namespace
