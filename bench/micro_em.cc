// Micro-benchmarks (google-benchmark): EM/EMS reconstruction cost as a
// function of the histogram granularity — the aggregator's post-processing
// budget (one mat-vec pair per iteration, O(d^2) each).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/em.h"
#include "core/ems.h"
#include "core/square_wave.h"
#include "hierarchy/admm.h"
#include "hierarchy/constrained.h"
#include "hierarchy/hh.h"

namespace {

using namespace numdist;

// Shared fixture data: SW observations of a bimodal distribution.
struct EmInput {
  Matrix m;
  std::vector<uint64_t> counts;
};

EmInput MakeEmInput(size_t d) {
  const SquareWave sw = SquareWave::Make(1.0).ValueOrDie();
  Rng rng(42);
  std::vector<double> reports;
  const size_t n = 50000;
  reports.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double v = rng.Bernoulli(0.5) ? 0.3 : 0.7;
    reports.push_back(sw.Perturb(v, rng));
  }
  return {sw.TransitionMatrix(d, d), sw.BucketizeReports(reports, d)};
}

void BM_EmIteration(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const EmInput input = MakeEmInput(d);
  EmOptions opts;
  opts.max_iterations = 10;
  opts.min_iterations = 10;
  opts.tol = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateEm(input.m, input.counts, opts));
  }
  // 10 iterations of 2 mat-vecs each.
  state.SetItemsProcessed(state.iterations() * 10 * 2 * d * d);
}
BENCHMARK(BM_EmIteration)->Arg(128)->Arg(256)->Arg(512)->Arg(1024);

void BM_EmsFullConvergence(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const EmInput input = MakeEmInput(d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateEms(input.m, input.counts));
  }
}
BENCHMARK(BM_EmsFullConvergence)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_BinomialSmooth(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  std::vector<double> x(d, 1.0 / static_cast<double>(d));
  for (auto _ : state) {
    BinomialSmooth(&x);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * d);
}
BENCHMARK(BM_BinomialSmooth)->Arg(1024)->Arg(4096);

void BM_ConstrainedInference(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const HierarchyTree tree = HierarchyTree::Make(d, 4).ValueOrDie();
  Rng rng(7);
  std::vector<double> nodes(tree.NumNodes());
  for (double& v : nodes) v = rng.Uniform(-0.1, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ConstrainedInference(tree, nodes));
  }
  state.SetItemsProcessed(state.iterations() * tree.NumNodes());
}
BENCHMARK(BM_ConstrainedInference)->Arg(256)->Arg(1024);

void BM_HhAdmm(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const HierarchyTree tree = HierarchyTree::Make(d, 4).ValueOrDie();
  Rng rng(8);
  std::vector<double> nodes(tree.NumNodes());
  for (double& v : nodes) v = rng.Uniform(-0.1, 0.3);
  nodes[0] = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(HhAdmm(tree, nodes));
  }
}
BENCHMARK(BM_HhAdmm)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

}  // namespace
