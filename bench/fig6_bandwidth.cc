// Figure 6: Wasserstein distance of SW+EMS, varying b from 0.01 to 0.38,
// at eps in {1, 2, 3, 4}. The vertical reference in the paper is the
// closed-form b_SW from §5.3 (0.256 / 0.129 / 0.064 / 0.030); the bench
// prints it next to the sweep so the near-optimality is visible.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/histogram.h"
#include "core/bandwidth.h"
#include "core/ems.h"
#include "core/square_wave.h"
#include "eval/table.h"
#include "metrics/distance.h"

using namespace numdist;

namespace {

double SwW1(double eps, double b, const std::vector<double>& values,
            const std::vector<double>& truth, size_t d, size_t trials,
            uint64_t seed) {
  double acc = 0.0;
  for (size_t t = 0; t < trials; ++t) {
    Rng rng(SplitMix64(seed ^ (0xabcdef12ULL * (t + 1))));
    const SquareWave sw = SquareWave::Make(eps, b).ValueOrDie();
    std::vector<double> reports;
    reports.reserve(values.size());
    for (double v : values) reports.push_back(sw.Perturb(v, rng));
    const std::vector<uint64_t> counts = sw.BucketizeReports(reports, d);
    const EmResult res =
        EstimateEms(sw.TransitionMatrix(d, d), counts).ValueOrDie();
    acc += WassersteinDistance(truth, res.estimate);
  }
  return acc / static_cast<double>(trials);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchFlags flags = bench::ParseFlags(argc, argv);
  // The paper's Figure 6 uses the Taxi dataset family; default to taxi but
  // honor --datasets.
  if (flags.datasets.size() == 4) flags.datasets = {"taxi"};
  const std::vector<double> eps_grid = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> bs = {0.01, 0.03, 0.06, 0.10, 0.13, 0.17,
                                  0.22, 0.26, 0.30, 0.34, 0.38};

  printf("=== Figure 6: SW+EMS accuracy vs bandwidth b ===\n\n");
  for (DatasetId id : bench::DatasetsFor(flags)) {
    const DatasetSpec& spec = GetDatasetSpec(id);
    const size_t d = bench::GranularityFor(flags, id);
    Rng rng(flags.seed);
    const std::vector<double> values =
        GenerateDataset(id, bench::UsersFor(flags), rng);
    const std::vector<double> truth = hist::FromSamples(values, d);

    printf("--- %s ---\n", spec.name.c_str());
    TablePrinter table([&] {
      std::vector<std::string> headers = {"eps", "b_SW(eps)"};
      for (double b : bs) headers.push_back("b=" + FormatG(b, 2));
      headers.push_back("W1(b_SW)");
      return headers;
    }());
    for (double eps : eps_grid) {
      fprintf(stderr, "[fig6] %s eps=%.1f ...\n", spec.name.c_str(), eps);
      const double b_sw = OptimalBandwidth(eps);
      std::vector<std::string> row = {FormatG(eps, 2), FormatG(b_sw, 3)};
      double best = 1e300;
      for (double b : bs) {
        const double w1 = SwW1(eps, b, values, truth, d,
                               bench::TrialsFor(flags), flags.seed);
        best = std::min(best, w1);
        row.push_back(FormatSci(w1));
      }
      const double at_bsw = SwW1(eps, b_sw, values, truth, d,
                                 bench::TrialsFor(flags), flags.seed);
      row.push_back(FormatSci(at_bsw));
      table.AddRow(std::move(row));
      printf("  eps=%.1f: W1 at closed-form b_SW=%.3f is %s (grid best %s)\n",
             eps, b_sw, FormatSci(at_bsw).c_str(), FormatSci(best).c_str());
    }
    if (flags.csv) {
      table.PrintCsv(std::cout);
    } else {
      table.Print(std::cout);
    }
    printf("\n");
  }
  return 0;
}
