// Scenario engine throughput: end-to-end reports/s (mixture sampling +
// SW perturbation + streaming ingestion + checkpoint merge/snapshot) for
// the built-in drift scenario across shard counts and thread budgets.
//
//   scenario_throughput [--reports=N] [--threads=W] [--incremental]
//
// --incremental appends the drift-tracking table: the drift scenario rerun
// with mini-batch EM (scenario/scenario.h IncrementalMode::kMiniBatch)
// across a sweep of forgetting half-lives. The half-life is the estimate's
// effective lag behind the drifting population, so the table is the
// error-vs-lag curve: window_err (distance to the equally-forgotten truth)
// rises as the window stretches over more drift, while inc_iters shows the
// EM budget the rolling warm starts actually spent.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "scenario/scenario.h"

using namespace numdist;

int main(int argc, char** argv) {
  size_t reports = 200000;
  size_t threads = 0;
  bool incremental = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--reports=", 0) == 0) {
      reports = static_cast<size_t>(atoll(arg.c_str() + 10));
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = static_cast<size_t>(atoll(arg.c_str() + 10));
    } else if (arg == "--incremental") {
      incremental = true;
    } else {
      fprintf(stderr,
              "usage: scenario_throughput [--reports=N] [--threads=W]"
              " [--incremental]\n");
      return 2;
    }
  }

  printf("%-8s %10s %12s %14s\n", "shards", "reports", "wall_ms",
         "reports_per_s");
  for (size_t shards : {1, 2, 4, 8, 16}) {
    ScenarioConfig config = BuiltinScenario("drift").ValueOrDie();
    config.shards = shards;
    config.threads = threads;
    // Scale the drift preset's phases to the requested volume, keeping the
    // 1:2 warmup/drift split.
    config.phases[0].reports = reports / 3;
    config.phases[1].reports = reports - config.phases[0].reports;

    const auto start = std::chrono::steady_clock::now();
    const ScenarioResult result = RunScenario(config).ValueOrDie();
    const auto end = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    printf("%-8zu %10llu %12.1f %14.0f\n", shards,
           static_cast<unsigned long long>(result.total_reports), ms,
           1000.0 * static_cast<double>(result.total_reports) / ms);
  }

  if (incremental) {
    // Error-vs-lag: mean Wasserstein over the drift phase's checkpoints,
    // measured against the window each estimate claims to represent
    // (window_err) and against all history (cold_err, the per-checkpoint
    // cold snapshot). inc_iters is the incremental path's total EM budget.
    printf("\ndrift tracking, mini-batch EM over the drift scenario:\n");
    printf("%-12s %12s %12s %12s %12s\n", "half_life", "window_err",
           "cold_err", "inc_iters", "cold_iters");
    for (const double half_life : {0.125, 0.25, 0.5, 1.0}) {
      ScenarioConfig config = BuiltinScenario("drift").ValueOrDie();
      config.threads = threads;
      config.phases[0].reports = reports / 3;
      config.phases[1].reports = reports - config.phases[0].reports;
      config.incremental = IncrementalMode::kMiniBatch;
      // Half-life as a fraction of the drift phase: the lag axis.
      config.half_life =
          half_life * static_cast<double>(config.phases[1].reports);
      const ScenarioResult result = RunScenario(config).ValueOrDie();
      double window_err = 0.0;
      double cold_err = 0.0;
      size_t drift_checkpoints = 0;
      size_t inc_iters = 0;
      size_t cold_iters = 0;
      for (const ScenarioCheckpoint& c : result.checkpoints) {
        cold_iters += c.em_iterations;
        inc_iters = c.inc_total_iterations;  // cumulative; keep the last
        if (c.phase_index == 1) {
          window_err += c.inc_wasserstein;
          cold_err += c.wasserstein;
          ++drift_checkpoints;
        }
      }
      if (drift_checkpoints > 0) {
        window_err /= static_cast<double>(drift_checkpoints);
        cold_err /= static_cast<double>(drift_checkpoints);
      }
      printf("%-12.0f %12.6f %12.6f %12zu %12zu\n", config.half_life,
             window_err, cold_err, inc_iters, cold_iters);
    }
  }
  return 0;
}
