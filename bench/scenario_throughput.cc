// Scenario engine throughput: end-to-end reports/s (mixture sampling +
// SW perturbation + streaming ingestion + checkpoint merge/snapshot) for
// the built-in drift scenario across shard counts and thread budgets.
//
//   scenario_throughput [--reports=N] [--threads=W]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "scenario/scenario.h"

using namespace numdist;

int main(int argc, char** argv) {
  size_t reports = 200000;
  size_t threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--reports=", 0) == 0) {
      reports = static_cast<size_t>(atoll(arg.c_str() + 10));
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = static_cast<size_t>(atoll(arg.c_str() + 10));
    } else {
      fprintf(stderr, "usage: scenario_throughput [--reports=N] [--threads=W]\n");
      return 2;
    }
  }

  printf("%-8s %10s %12s %14s\n", "shards", "reports", "wall_ms",
         "reports_per_s");
  for (size_t shards : {1, 2, 4, 8, 16}) {
    ScenarioConfig config = BuiltinScenario("drift").ValueOrDie();
    config.shards = shards;
    config.threads = threads;
    // Scale the drift preset's phases to the requested volume, keeping the
    // 1:2 warmup/drift split.
    config.phases[0].reports = reports / 3;
    config.phases[1].reports = reports - config.phases[0].reports;

    const auto start = std::chrono::steady_clock::now();
    const ScenarioResult result = RunScenario(config).ValueOrDie();
    const auto end = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    printf("%-8zu %10llu %12.1f %14.0f\n", shards,
           static_cast<unsigned long long>(result.total_reports), ms,
           1000.0 * static_cast<double>(result.total_reports) / ms);
  }
  return 0;
}
