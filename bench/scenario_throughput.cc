// Scenario engine throughput: end-to-end reports/s (mixture sampling +
// SW perturbation + streaming ingestion + checkpoint merge/snapshot) for
// the built-in drift scenario across shard counts and thread budgets.
//
//   scenario_throughput [--reports=N] [--threads=W] [--incremental]
//                       [--attack] [--json=FILE]
//
// --attack appends the adversarial table: RunFoAttack (scenario/attack.h)
// across the GRR/OLH/OUE channels with a 5% output-poisoning cohort,
// reporting end-to-end poisoned-collection throughput plus the measured
// attack gain and the consistency defense's verdict. --json writes every
// ATK_ series in google-benchmark shape for tools/compare_bench.py.
//
// --incremental appends the drift-tracking table: the drift scenario rerun
// with mini-batch EM (scenario/scenario.h IncrementalMode::kMiniBatch)
// across a sweep of forgetting half-lives. The half-life is the estimate's
// effective lag behind the drifting population, so the table is the
// error-vs-lag curve: window_err (distance to the equally-forgotten truth)
// rises as the window stretches over more drift, while inc_iters shows the
// EM budget the rolling warm starts actually spent.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "scenario/attack.h"
#include "scenario/scenario.h"

using namespace numdist;

int main(int argc, char** argv) {
  size_t reports = 200000;
  size_t threads = 0;
  bool incremental = false;
  bool attack = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--reports=", 0) == 0) {
      reports = static_cast<size_t>(atoll(arg.c_str() + 10));
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = static_cast<size_t>(atoll(arg.c_str() + 10));
    } else if (arg == "--incremental") {
      incremental = true;
    } else if (arg == "--attack") {
      attack = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      fprintf(stderr,
              "usage: scenario_throughput [--reports=N] [--threads=W]"
              " [--incremental] [--attack] [--json=FILE]\n");
      return 2;
    }
  }

  printf("%-8s %10s %12s %14s\n", "shards", "reports", "wall_ms",
         "reports_per_s");
  for (size_t shards : {1, 2, 4, 8, 16}) {
    ScenarioConfig config = BuiltinScenario("drift").ValueOrDie();
    config.shards = shards;
    config.threads = threads;
    // Scale the drift preset's phases to the requested volume, keeping the
    // 1:2 warmup/drift split.
    config.phases[0].reports = reports / 3;
    config.phases[1].reports = reports - config.phases[0].reports;

    const auto start = std::chrono::steady_clock::now();
    const ScenarioResult result = RunScenario(config).ValueOrDie();
    const auto end = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    printf("%-8zu %10llu %12.1f %14.0f\n", shards,
           static_cast<unsigned long long>(result.total_reports), ms,
           1000.0 * static_cast<double>(result.total_reports) / ms);
  }

  struct AtkRow {
    std::string name;
    uint64_t n = 0;
    double seconds = 0.0;
    double gain = 0.0;
  };
  std::vector<AtkRow> atk_rows;
  if (attack) {
    // Poisoned collection end to end: perturb + craft + shard merge +
    // debias + norm-sub + consistency scan. The gain/def columns make the
    // bench double as a standing record of attack effectiveness.
    printf("\nadversarial collection, 5%% output poisoning, d=64:\n");
    printf("%-10s %10s %12s %14s %10s %9s\n", "channel", "reports",
           "wall_ms", "reports_per_s", "atk_gain", "def_flag");
    for (const FoChannel channel :
         {FoChannel::kGrr, FoChannel::kOlh, FoChannel::kOue}) {
      FoAttackConfig config;
      config.channel = channel;
      config.attack.kind = AttackKind::kOutputPoison;
      config.attack.fraction = 0.05;
      config.attack.target = 32;
      config.domain = 64;
      config.epsilon = 1.0;
      config.n = reports;
      config.shards = 4;
      config.threads = threads;
      const auto start = std::chrono::steady_clock::now();
      const FoAttackResult result = RunFoAttack(config).ValueOrDie();
      const auto end = std::chrono::steady_clock::now();
      const double seconds =
          std::chrono::duration<double>(end - start).count();
      AtkRow row;
      row.name = std::string("ATK_poison_") +
                 std::string(FoChannelName(channel));
      row.n = config.n;
      row.seconds = seconds;
      row.gain = result.target_gain;
      atk_rows.push_back(row);
      printf("%-10s %10llu %12.1f %14.0f %10.4f %9s\n",
             std::string(FoChannelName(channel)).c_str(),
             static_cast<unsigned long long>(config.n), seconds * 1000.0,
             static_cast<double>(config.n) / seconds, result.target_gain,
             result.defense.flagged ? "yes" : "no");
    }
    // The scenario engine's SW attack path (the poison builtin), scaled to
    // the requested volume.
    {
      ScenarioConfig config = BuiltinScenario("poison").ValueOrDie();
      config.threads = threads;
      config.phases[0].reports = reports / 2;
      config.phases[1].reports = reports - config.phases[0].reports;
      const auto start = std::chrono::steady_clock::now();
      const ScenarioResult result = RunScenario(config).ValueOrDie();
      const auto end = std::chrono::steady_clock::now();
      const double seconds =
          std::chrono::duration<double>(end - start).count();
      AtkRow row;
      row.name = "ATK_scenario_poison";
      row.n = result.total_reports;
      row.seconds = seconds;
      row.gain = result.checkpoints.back().atk_gain;
      atk_rows.push_back(row);
      printf("%-10s %10llu %12.1f %14.0f %10.4f %9s\n", "sw-poison",
             static_cast<unsigned long long>(row.n), seconds * 1000.0,
             static_cast<double>(row.n) / seconds, row.gain,
             result.checkpoints.back().def_flagged ? "yes" : "no");
    }
  }

  if (!json_path.empty()) {
    // google-benchmark JSON shape, so tools/compare_bench.py can diff this
    // file against artifacts and the committed fallback baseline.
    FILE* out = fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      fprintf(stderr, "cannot write '%s'\n", json_path.c_str());
      return 1;
    }
    fprintf(out, "{\n \"context\": {\"executable\": \"scenario_throughput\"},"
                 "\n \"benchmarks\": [\n");
    for (size_t i = 0; i < atk_rows.size(); ++i) {
      const AtkRow& r = atk_rows[i];
      const double ns_per_report =
          r.seconds * 1e9 / static_cast<double>(r.n);
      fprintf(out,
              "%s  {\"name\": \"%s\", \"run_name\": \"%s\", "
              "\"run_type\": \"iteration\", \"iterations\": 1, "
              "\"real_time\": %.3f, \"cpu_time\": %.3f, "
              "\"time_unit\": \"ns\", \"items_per_second\": %.3f}",
              i == 0 ? "" : ",\n", r.name.c_str(), r.name.c_str(),
              ns_per_report, ns_per_report,
              static_cast<double>(r.n) / r.seconds);
    }
    fprintf(out, "\n ]\n}\n");
    fclose(out);
  }

  if (incremental) {
    // Error-vs-lag: mean Wasserstein over the drift phase's checkpoints,
    // measured against the window each estimate claims to represent
    // (window_err) and against all history (cold_err, the per-checkpoint
    // cold snapshot). inc_iters is the incremental path's total EM budget.
    printf("\ndrift tracking, mini-batch EM over the drift scenario:\n");
    printf("%-12s %12s %12s %12s %12s\n", "half_life", "window_err",
           "cold_err", "inc_iters", "cold_iters");
    for (const double half_life : {0.125, 0.25, 0.5, 1.0}) {
      ScenarioConfig config = BuiltinScenario("drift").ValueOrDie();
      config.threads = threads;
      config.phases[0].reports = reports / 3;
      config.phases[1].reports = reports - config.phases[0].reports;
      config.incremental = IncrementalMode::kMiniBatch;
      // Half-life as a fraction of the drift phase: the lag axis.
      config.half_life =
          half_life * static_cast<double>(config.phases[1].reports);
      const ScenarioResult result = RunScenario(config).ValueOrDie();
      double window_err = 0.0;
      double cold_err = 0.0;
      size_t drift_checkpoints = 0;
      size_t inc_iters = 0;
      size_t cold_iters = 0;
      for (const ScenarioCheckpoint& c : result.checkpoints) {
        cold_iters += c.em_iterations;
        inc_iters = c.inc_total_iterations;  // cumulative; keep the last
        if (c.phase_index == 1) {
          window_err += c.inc_wasserstein;
          cold_err += c.wasserstein;
          ++drift_checkpoints;
        }
      }
      if (drift_checkpoints > 0) {
        window_err /= static_cast<double>(drift_checkpoints);
        cold_err /= static_cast<double>(drift_checkpoints);
      }
      printf("%-12.0f %12.6f %12.6f %12zu %12zu\n", config.half_life,
             window_err, cold_err, inc_iters, cold_iters);
    }
  }
  return 0;
}
