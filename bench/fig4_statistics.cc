// Figure 4: MAE of mean (row 1), variance (row 2) and quantile (row 3)
// estimates, varying epsilon. Distribution methods derive the statistics
// from the reconstructed histogram; SR and PM are the dedicated scalar
// protocols (mean on the full population; variance via the two-phase
// half/half protocol), evaluated over the same trial/seed schedule.
//
// Expected shape (paper): SW-EMS matches the best of SR/PM on the mean
// despite reconstructing the whole distribution; SR/PM lose on variance
// (half the budget); SW-EMS leads quantiles except on spiky Income where
// HH-ADMM wins.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "eval/table.h"
#include "mean/moments.h"

using namespace numdist;

namespace {

struct ScalarPoint {
  std::string dataset;
  std::string method;
  double epsilon;
  double mean_err;
  double variance_err;
};

// Runs SR/PM mean+variance trials matching the distribution-method schedule.
std::vector<ScalarPoint> RunScalarSweep(const bench::BenchFlags& flags) {
  std::vector<ScalarPoint> points;
  for (DatasetId id : bench::DatasetsFor(flags)) {
    const DatasetSpec& spec = GetDatasetSpec(id);
    Rng rng(flags.seed);
    const std::vector<double> values =
        GenerateDataset(id, bench::UsersFor(flags), rng);
    double mean = 0.0;
    for (double v : values) mean += v;
    mean /= values.size();
    double var = 0.0;
    for (double v : values) var += (v - mean) * (v - mean);
    var /= values.size();

    for (auto [mech, name] :
         {std::pair{MeanMechanism::kStochasticRounding, "SR"},
          std::pair{MeanMechanism::kPiecewiseMechanism, "PM"}}) {
      for (double eps : flags.epsilons) {
        double mean_err = 0.0;
        double var_err = 0.0;
        const size_t trials = bench::TrialsFor(flags);
        for (size_t t = 0; t < trials; ++t) {
          Rng trial_rng(SplitMix64(flags.seed ^ (0x9e3779b97f4a7c15ULL *
                                                 (t + 1))));
          const MomentsEstimate est =
              EstimateMoments(values, mech, eps, trial_rng).ValueOrDie();
          // Mean error from a full-population run (SR/PM devote everything
          // to the mean in the paper's Figure 4 row 1).
          Rng mean_rng(SplitMix64(flags.seed + 77 + t));
          const double mean_est =
              EstimateMean(values, mech, eps, mean_rng).ValueOrDie();
          mean_err += std::fabs(mean_est - mean);
          var_err += std::fabs(est.variance - var);
        }
        points.push_back({spec.name, name, eps, mean_err / trials,
                          var_err / trials});
      }
    }
  }
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);

  std::vector<std::unique_ptr<DistributionMethod>> methods;
  methods.push_back(MakeSwEmsMethod());
  methods.push_back(MakeSwEmMethod());
  methods.push_back(MakeHhAdmmMethod());
  methods.push_back(MakeCfoBinningMethod(16));
  methods.push_back(MakeCfoBinningMethod(32));
  methods.push_back(MakeCfoBinningMethod(64));

  const auto points = bench::RunStandardSweep(flags, methods);
  const auto scalar_points = RunScalarSweep(flags);

  printf("=== Figure 4: mean / variance / quantile MAE, varying epsilon ===\n");
  printf("(n=%zu, trials=%zu per point)\n\n", bench::UsersFor(flags),
         bench::TrialsFor(flags));

  const auto print_metric = [&](const char* title, int which) {
    printf("--- %s ---\n", title);
    TablePrinter table([&] {
      std::vector<std::string> headers = {"dataset", "method"};
      for (double eps : flags.epsilons) {
        headers.push_back("eps=" + FormatG(eps, 3));
      }
      return headers;
    }());
    for (const auto& dataset : flags.datasets) {
      for (const auto& method : methods) {
        std::vector<std::string> row = {dataset, method->name()};
        for (double eps : flags.epsilons) {
          for (const auto& p : points) {
            if (p.dataset == dataset && p.method == method->name() &&
                p.epsilon == eps) {
              const double v = which == 0   ? p.agg.mean.mean_err
                               : which == 1 ? p.agg.mean.variance_err
                                            : p.agg.mean.quantile_err;
              row.push_back(FormatSci(v));
            }
          }
        }
        table.AddRow(std::move(row));
      }
      if (which <= 1) {  // SR/PM rows for mean and variance only
        for (const char* scalar : {"SR", "PM"}) {
          std::vector<std::string> row = {dataset, scalar};
          for (double eps : flags.epsilons) {
            for (const auto& p : scalar_points) {
              if (p.dataset == dataset && p.method == scalar &&
                  p.epsilon == eps) {
                row.push_back(
                    FormatSci(which == 0 ? p.mean_err : p.variance_err));
              }
            }
          }
          table.AddRow(std::move(row));
        }
      }
    }
    if (flags.csv) {
      table.PrintCsv(std::cout);
    } else {
      table.Print(std::cout);
    }
    printf("\n");
  };

  print_metric("mean MAE", 0);
  print_metric("variance MAE", 1);
  print_metric("quantile MAE", 2);
  return 0;
}
