// Figure 2: Wasserstein distance (row 1) and KS distance (row 2) between
// the reconstructed and true distributions, varying epsilon, for every
// dataset and method. HH/HaarHRR are excluded (no valid distribution),
// exactly as in the paper.
//
// Expected shape (paper): SW-EMS lowest nearly everywhere; HH-ADMM second
// and best-in-class on the spiky Income dataset under KS; CFO-binning
// curves flatten as eps grows (binning bias dominates).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "eval/table.h"

using namespace numdist;

int main(int argc, char** argv) {
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);

  std::vector<std::unique_ptr<DistributionMethod>> methods;
  methods.push_back(MakeSwEmsMethod());
  methods.push_back(MakeSwEmMethod());
  methods.push_back(MakeHhAdmmMethod());
  methods.push_back(MakeCfoBinningMethod(16));
  methods.push_back(MakeCfoBinningMethod(32));
  methods.push_back(MakeCfoBinningMethod(64));

  const auto points = bench::RunStandardSweep(flags, methods);

  printf("=== Figure 2: distribution distances, varying epsilon ===\n");
  printf("(n=%zu, trials=%zu per point)\n\n", bench::UsersFor(flags),
         bench::TrialsFor(flags));
  for (const char* metric : {"wasserstein", "ks"}) {
    printf("--- %s distance ---\n", metric);
    TablePrinter table([&] {
      std::vector<std::string> headers = {"dataset", "method"};
      for (double eps : flags.epsilons) {
        headers.push_back("eps=" + FormatG(eps, 3));
      }
      return headers;
    }());
    for (const auto& dataset : flags.datasets) {
      for (const auto& method : methods) {
        std::vector<std::string> row = {dataset, method->name()};
        for (double eps : flags.epsilons) {
          for (const auto& p : points) {
            if (p.dataset == dataset && p.method == method->name() &&
                p.epsilon == eps) {
              row.push_back(FormatSci(metric[0] == 'w' ? p.agg.mean.wasserstein
                                                       : p.agg.mean.ks));
            }
          }
        }
        table.AddRow(std::move(row));
      }
    }
    if (flags.csv) {
      table.PrintCsv(std::cout);
    } else {
      table.Print(std::cout);
    }
    printf("\n");
  }
  return 0;
}
