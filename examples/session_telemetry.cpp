// Discrete-domain telemetry: an app vendor collects per-user session
// lengths (whole minutes, already discrete) under LDP using the
// "bucketize before randomize" discrete Square Wave pipeline (§5.4), and
// reads the data back from a CSV batch file with the library's loader —
// the full file -> private reports -> reconstructed histogram flow.
//
//   ./session_telemetry [epsilon]
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/histogram.h"
#include "common/rng.h"
#include "core/sw_estimator.h"
#include "data/loader.h"
#include "metrics/distance.h"
#include "metrics/queries.h"

int main(int argc, char** argv) {
  const double epsilon = argc > 1 ? std::atof(argv[1]) : 1.0;
  constexpr size_t kMaxMinutes = 512;  // sessions capped at ~8.5 hours
  const size_t n = 150000;

  // --- Simulate the vendor's raw batch file (one session per row). ---
  const std::string path = "/tmp/numdist_sessions.csv";
  {
    numdist::Rng rng(99);
    std::ofstream out(path);
    out << "user_id,session_minutes\n";
    for (size_t i = 0; i < n; ++i) {
      // Mixture: short check-ins + long sessions with a heavy tail.
      const double minutes = rng.Bernoulli(0.6) ? 3.0 * rng.Gamma(1.5)
                                                : 25.0 * rng.Gamma(2.0);
      out << i << ',' << static_cast<int>(minutes) << '\n';
    }
  }

  // --- Load and normalize with the library's loader. ---
  numdist::LoadOptions load;
  load.min_value = 0.0;
  load.max_value = static_cast<double>(kMaxMinutes);
  load.column = 1;
  load.skip_header = true;
  const std::vector<double> sessions =
      numdist::LoadNumericFile(path, load).ValueOrDie();
  printf("loaded %zu sessions from %s\n", sessions.size(), path.c_str());

  // --- Discrete SW pipeline (domain is already discrete). ---
  numdist::SwEstimatorOptions options;
  options.epsilon = epsilon;
  options.d = kMaxMinutes;  // one bucket per minute
  options.pipeline =
      numdist::SwEstimatorOptions::Pipeline::kBucketizeBeforeRandomize;
  const numdist::SwEstimator estimator =
      numdist::SwEstimator::Make(options).ValueOrDie();

  numdist::Rng rng(7);
  const std::vector<double> estimate =
      estimator.EstimateDistribution(sessions, rng).ValueOrDie();
  const std::vector<double> truth =
      numdist::hist::FromSamples(sessions, kMaxMinutes);

  printf("discrete SW (B-R): d=%zu buckets, wave half-width b=%.3f, "
         "eps=%.2f\n",
         estimator.options().d, estimator.b(), epsilon);
  printf("Wasserstein distance: %.5f   KS distance: %.5f\n\n",
         numdist::WassersteinDistance(truth, estimate),
         numdist::KsDistance(truth, estimate));

  printf("%-26s %10s %10s\n", "engagement metric", "true", "private");
  const auto minutes_at = [&](double beta, const std::vector<double>& h) {
    return numdist::Quantile(h, beta) * kMaxMinutes;
  };
  printf("%-26s %9.1fm %9.1fm\n", "median session", minutes_at(0.5, truth),
         minutes_at(0.5, estimate));
  printf("%-26s %9.1fm %9.1fm\n", "90th percentile",
         minutes_at(0.9, truth), minutes_at(0.9, estimate));
  const double short_share_true =
      numdist::RangeQuery(truth, 0.0, 5.0 / kMaxMinutes);
  const double short_share_est =
      numdist::RangeQuery(estimate, 0.0, 5.0 / kMaxMinutes);
  printf("%-26s %9.1f%% %9.1f%%\n", "sessions under 5 minutes",
         100 * short_share_true, 100 * short_share_est);
  std::remove(path.c_str());
  return 0;
}
