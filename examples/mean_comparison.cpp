// Mean & variance under LDP: compares the dedicated scalar protocols
// (Stochastic Rounding, Piecewise Mechanism) against deriving the moments
// from the full SW+EMS distribution estimate — the paper's Figure 4 story:
// SW-EMS recovers the *entire distribution* yet estimates the mean about as
// well as protocols that spend the whole budget on the mean alone.
//
//   ./mean_comparison [epsilon] [num_users]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/histogram.h"
#include "common/rng.h"
#include "core/sw_estimator.h"
#include "data/datasets.h"
#include "mean/moments.h"
#include "metrics/queries.h"

int main(int argc, char** argv) {
  const double epsilon = argc > 1 ? std::atof(argv[1]) : 1.0;
  const size_t n = argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 200000;

  numdist::Rng rng(5);
  const std::vector<double> values =
      numdist::GenerateDataset(numdist::DatasetId::kRetirement, n, rng);

  double true_mean = 0.0;
  for (double v : values) true_mean += v;
  true_mean /= static_cast<double>(values.size());
  double true_var = 0.0;
  for (double v : values) true_var += (v - true_mean) * (v - true_mean);
  true_var /= static_cast<double>(values.size());

  printf("Mean/variance estimation under %.2f-LDP, %zu users\n", epsilon, n);
  printf("truth: mean=%.5f variance=%.5f\n\n", true_mean, true_var);
  printf("%-22s %-12s %-12s %-12s %-12s\n", "method", "mean", "|err|",
         "variance", "|err|");

  // Stochastic Rounding and Piecewise Mechanism (two-phase for variance).
  for (auto [mech, name] :
       {std::pair{numdist::MeanMechanism::kStochasticRounding, "SR (Duchi)"},
        std::pair{numdist::MeanMechanism::kPiecewiseMechanism,
                  "PM (piecewise)"}}) {
    numdist::Rng mech_rng(23);
    const numdist::MomentsEstimate est =
        numdist::EstimateMoments(values, mech, epsilon, mech_rng).ValueOrDie();
    printf("%-22s %-12.5f %-12.5f %-12.5f %-12.5f\n", name, est.mean,
           std::fabs(est.mean - true_mean), est.variance,
           std::fabs(est.variance - true_var));
  }

  // SW + EMS: reconstruct the whole distribution, then read off moments.
  numdist::SwEstimatorOptions options;
  options.epsilon = epsilon;
  options.d = 512;
  const numdist::SwEstimator estimator =
      numdist::SwEstimator::Make(options).ValueOrDie();
  numdist::Rng sw_rng(23);
  const std::vector<double> dist =
      estimator.EstimateDistribution(values, sw_rng).ValueOrDie();
  const double sw_mean = numdist::HistMean(dist);
  const double sw_var = numdist::HistVariance(dist);
  printf("%-22s %-12.5f %-12.5f %-12.5f %-12.5f\n",
         "SW-EMS (full dist.)", sw_mean, std::fabs(sw_mean - true_mean),
         sw_var, std::fabs(sw_var - true_var));
  printf("\n(SW-EMS additionally yields every quantile, e.g. median %.5f "
         "vs true %.5f)\n",
         numdist::Quantile(dist, 0.5),
         numdist::Quantile(numdist::hist::FromSamples(values, 512), 0.5));
  return 0;
}
