// Quickstart: estimate a numerical distribution under eps-LDP with the
// Square Wave mechanism + EMS (the paper's recommended configuration).
//
//   ./quickstart [epsilon]
//
// Simulates 100k users holding Beta(5,2)-distributed values, perturbs each
// value client-side, reconstructs the 64-bucket histogram server-side, and
// prints reconstruction quality.
#include <cstdio>
#include <cstdlib>

#include "common/histogram.h"
#include "common/rng.h"
#include "core/sw_estimator.h"
#include "metrics/distance.h"
#include "metrics/queries.h"

int main(int argc, char** argv) {
  const double epsilon = argc > 1 ? std::atof(argv[1]) : 1.0;

  // --- Configure the estimator (server and clients share this). ---
  numdist::SwEstimatorOptions options;
  options.epsilon = epsilon;
  options.d = 64;  // histogram granularity
  numdist::Result<numdist::SwEstimator> maybe_estimator =
      numdist::SwEstimator::Make(options);
  if (!maybe_estimator.ok()) {
    fprintf(stderr, "config error: %s\n",
            maybe_estimator.status().ToString().c_str());
    return 1;
  }
  const numdist::SwEstimator& estimator = *maybe_estimator;
  printf("Square Wave mechanism: eps=%.2f  b=%.3f  output domain [-b, 1+b]\n",
         epsilon, estimator.b());

  // --- Client side: each user randomizes their own value. ---
  numdist::Rng rng(2026);
  std::vector<double> private_values;
  for (int i = 0; i < 100000; ++i) {
    private_values.push_back(rng.Beta(5.0, 2.0));
  }
  std::vector<double> reports;
  reports.reserve(private_values.size());
  for (double v : private_values) {
    reports.push_back(estimator.PerturbOne(v, rng));  // satisfies eps-LDP
  }

  // --- Server side: aggregate reports, reconstruct the distribution. ---
  const std::vector<uint64_t> counts = estimator.Aggregate(reports);
  numdist::Result<numdist::EmResult> reconstruction =
      estimator.Reconstruct(counts);
  if (!reconstruction.ok()) {
    fprintf(stderr, "reconstruction error: %s\n",
            reconstruction.status().ToString().c_str());
    return 1;
  }
  const std::vector<double>& estimate = reconstruction->estimate;
  printf("EMS converged after %zu iterations\n", reconstruction->iterations);

  // --- Quality vs the (normally unknowable) ground truth. ---
  const std::vector<double> truth =
      numdist::hist::FromSamples(private_values, options.d);
  printf("Wasserstein distance : %.5f\n",
         numdist::WassersteinDistance(truth, estimate));
  printf("KS distance          : %.5f\n",
         numdist::KsDistance(truth, estimate));
  printf("mean                 : true %.4f vs estimated %.4f\n",
         numdist::HistMean(truth), numdist::HistMean(estimate));
  printf("median               : true %.4f vs estimated %.4f\n",
         numdist::Quantile(truth, 0.5), numdist::Quantile(estimate, 0.5));
  return 0;
}
