// Taxi telemetry: a fleet operator collects pickup times-of-day under LDP
// and answers range queries ("what fraction of pickups fall between 5pm and
// 8pm?") from the privately reconstructed distribution — the paper's
// range-query workload (Figure 3) as an application.
//
//   ./taxi_telemetry [epsilon] [num_users]
#include <cstdio>
#include <cstdlib>

#include "common/histogram.h"
#include "common/rng.h"
#include "data/datasets.h"
#include "eval/method.h"
#include "metrics/queries.h"

namespace {

double HourToUnit(double hour) { return hour / 24.0; }

void PrintWindow(const char* label, double lo_hour, double hi_hour,
                 const numdist::MethodOutput& sw,
                 const numdist::MethodOutput& hh,
                 const std::vector<double>& truth) {
  const double lo = HourToUnit(lo_hour);
  const double alpha = HourToUnit(hi_hour - lo_hour);
  printf("  %-14s %8.2f%% %10.2f%% %10.2f%%\n", label,
         100 * numdist::RangeQuery(truth, lo, alpha),
         100 * sw.range_query(lo, alpha), 100 * hh.range_query(lo, alpha));
}

}  // namespace

int main(int argc, char** argv) {
  const double epsilon = argc > 1 ? std::atof(argv[1]) : 1.0;
  const size_t n = argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 200000;
  const size_t d = 1024;

  numdist::Rng rng(3);
  const std::vector<double> pickups =
      numdist::GenerateDataset(numdist::DatasetId::kTaxi, n, rng);
  const std::vector<double> truth = numdist::hist::FromSamples(pickups, d);

  printf("Taxi pickup telemetry under %.2f-LDP, %zu trips\n\n", epsilon, n);

  const auto sw_method = numdist::MakeSwEmsMethod();
  numdist::Rng sw_rng(17);
  const numdist::MethodOutput sw =
      sw_method->Run(pickups, epsilon, d, sw_rng).ValueOrDie();

  const auto hh_method = numdist::MakeHhMethod();
  numdist::Rng hh_rng(17);
  const numdist::MethodOutput hh =
      hh_method->Run(pickups, epsilon, d, hh_rng).ValueOrDie();

  printf("  %-14s %9s %11s %11s\n", "window", "true", "SW-EMS", "HH");
  PrintWindow("0am-5am", 0, 5, sw, hh, truth);
  PrintWindow("5am-9am", 5, 9, sw, hh, truth);
  PrintWindow("9am-12pm", 9, 12, sw, hh, truth);
  PrintWindow("12pm-5pm", 12, 17, sw, hh, truth);
  PrintWindow("5pm-8pm", 17, 20, sw, hh, truth);
  PrintWindow("8pm-12am", 20, 24, sw, hh, truth);

  // Busiest hour according to the private estimate.
  int best_hour = 0;
  double best_mass = 0.0;
  for (int hour = 0; hour < 24; ++hour) {
    const double mass =
        sw.range_query(HourToUnit(hour), HourToUnit(1.0));
    if (mass > best_mass) {
      best_mass = mass;
      best_hour = hour;
    }
  }
  printf("\n  busiest hour (estimated privately): %02d:00-%02d:00 (%.2f%%)\n",
         best_hour, best_hour + 1, 100 * best_mass);
  return 0;
}
