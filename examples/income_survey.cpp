// Income survey: the paper's motivating scenario — an organization collects
// salaries under LDP and publishes distribution statistics (deciles, mean,
// share below a threshold) without ever seeing a single true salary.
//
//   ./income_survey [epsilon] [num_users]
//
// Compares the paper's SW+EMS estimator against the CFO-binning baseline on
// the spiky income distribution, and prints an analyst-facing summary.
#include <cstdio>
#include <cstdlib>

#include "common/histogram.h"
#include "common/rng.h"
#include "core/sw_estimator.h"
#include "data/datasets.h"
#include "eval/method.h"
#include "metrics/distance.h"
#include "metrics/queries.h"

namespace {

constexpr double kClipDollars = 524288.0;  // domain [0, 2^19) dollars

double ToDollars(double unit) { return unit * kClipDollars; }

}  // namespace

int main(int argc, char** argv) {
  const double epsilon = argc > 1 ? std::atof(argv[1]) : 1.0;
  const size_t n = argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 200000;
  const size_t d = 1024;

  numdist::Rng rng(7);
  const std::vector<double> salaries =
      numdist::GenerateDataset(numdist::DatasetId::kIncome, n, rng);
  const std::vector<double> truth = numdist::hist::FromSamples(salaries, d);

  printf("Income survey under %.2f-LDP, %zu respondents, %zu buckets\n\n",
         epsilon, n, d);

  // SW + EMS (this paper).
  const auto sw_method = numdist::MakeSwEmsMethod();
  numdist::Rng sw_rng(11);
  const numdist::MethodOutput sw =
      sw_method->Run(salaries, epsilon, d, sw_rng).ValueOrDie();

  // CFO binning baseline (32 bins).
  const auto cfo_method = numdist::MakeCfoBinningMethod(32);
  numdist::Rng cfo_rng(11);
  const numdist::MethodOutput cfo =
      cfo_method->Run(salaries, epsilon, d, cfo_rng).ValueOrDie();

  printf("reconstruction quality (lower is better)\n");
  printf("  %-12s %-12s %-12s\n", "method", "Wasserstein", "KS");
  printf("  %-12s %-12.5f %-12.5f\n", "SW-EMS",
         numdist::WassersteinDistance(truth, sw.distribution),
         numdist::KsDistance(truth, sw.distribution));
  printf("  %-12s %-12.5f %-12.5f\n\n", "CFO-bin-32",
         numdist::WassersteinDistance(truth, cfo.distribution),
         numdist::KsDistance(truth, cfo.distribution));

  printf("analyst view (SW-EMS estimate vs ground truth)\n");
  printf("  mean salary        : $%8.0f vs $%8.0f\n",
         ToDollars(numdist::HistMean(sw.distribution)),
         ToDollars(numdist::HistMean(truth)));
  for (double beta : {0.25, 0.5, 0.75, 0.9}) {
    printf("  %2.0f%% quantile       : $%8.0f vs $%8.0f\n", beta * 100,
           ToDollars(numdist::Quantile(sw.distribution, beta)),
           ToDollars(numdist::Quantile(truth, beta)));
  }
  const double below_50k_est =
      numdist::RangeQuery(sw.distribution, 0.0, 50000.0 / kClipDollars);
  const double below_50k_true =
      numdist::RangeQuery(truth, 0.0, 50000.0 / kClipDollars);
  printf("  share below $50k   : %6.2f%% vs %6.2f%%\n", 100 * below_50k_est,
         100 * below_50k_true);
  return 0;
}
