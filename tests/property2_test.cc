// Second parameterized property suite: observation-model invariants for the
// General Wave family, ADMM invariants across tree shapes, metric axioms,
// and end-to-end reconstruction consistency sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "common/histogram.h"
#include "core/em.h"
#include "core/ems.h"
#include "core/transition.h"
#include "core/wave.h"
#include "hierarchy/admm.h"
#include "hierarchy/constrained.h"
#include "metrics/distance.h"
#include "metrics/queries.h"

namespace numdist {
namespace {

// ------------------------------------------ GW observation-model sweep --

struct GwParam {
  double epsilon;
  double b;
  double ratio;
};

class GwModelSweep : public ::testing::TestWithParam<GwParam> {};

TEST_P(GwModelSweep, TransitionIsColumnStochastic) {
  const GwParam p = GetParam();
  const GeneralWave gw = GeneralWave::Make(p.epsilon, p.b, p.ratio)
                             .ValueOrDie();
  EXPECT_TRUE(ValidateTransitionMatrix(gw.TransitionMatrix(24, 24)).ok());
  EXPECT_TRUE(ValidateTransitionMatrix(gw.TransitionMatrix(24, 40)).ok());
}

TEST_P(GwModelSweep, WaveIntegralIsOne) {
  const GwParam p = GetParam();
  const GeneralWave gw = GeneralWave::Make(p.epsilon, p.b, p.ratio)
                             .ValueOrDie();
  // Flat mass + bump mass over the output domain must be exactly 1.
  const double flat = gw.q() * (1.0 + 2.0 * gw.b());
  const double bump =
      gw.wave().IntegralBetween(-gw.b(), gw.b()) - gw.q() * 2.0 * gw.b();
  EXPECT_NEAR(flat + bump, 1.0, 1e-12);
}

TEST_P(GwModelSweep, PeakRespectsPrivacyEnvelope) {
  const GwParam p = GetParam();
  const GeneralWave gw = GeneralWave::Make(p.epsilon, p.b, p.ratio)
                             .ValueOrDie();
  EXPECT_LE(gw.peak(), std::exp(p.epsilon) * gw.q() * (1 + 1e-12));
  EXPECT_GE(gw.peak(), gw.q());
}

TEST_P(GwModelSweep, EmRecoversSpikeFromExactObservations) {
  const GwParam p = GetParam();
  const GeneralWave gw = GeneralWave::Make(p.epsilon, p.b, p.ratio)
                             .ValueOrDie();
  const size_t d = 24;
  const Matrix m = gw.TransitionMatrix(d, d);
  std::vector<double> truth(d, 0.0);
  truth[6] = 0.75;
  truth[17] = 0.25;
  const std::vector<double> out = m.Multiply(truth);
  std::vector<uint64_t> counts(out.size());
  for (size_t j = 0; j < out.size(); ++j) {
    counts[j] = static_cast<uint64_t>(std::llround(out[j] * 3e6));
  }
  EmOptions opts;
  opts.tol = 1e-7;
  opts.max_iterations = 30000;
  const EmResult res = EstimateEm(m, counts, opts).ValueOrDie();
  // Mass concentrates around the true spikes (allow neighbor leakage).
  double near6 = 0.0;
  double near17 = 0.0;
  for (size_t i = 4; i <= 8; ++i) near6 += res.estimate[i];
  for (size_t i = 15; i <= 19; ++i) near17 += res.estimate[i];
  EXPECT_GT(near6, 0.55);
  EXPECT_GT(near17, 0.13);
}

INSTANTIATE_TEST_SUITE_P(
    GwGrid, GwModelSweep,
    ::testing::Values(GwParam{0.5, 0.3, 0.0}, GwParam{1.0, 0.25, 0.2},
                      GwParam{1.0, 0.25, 0.8}, GwParam{2.0, 0.12, 0.5},
                      GwParam{3.0, 0.06, 0.4}, GwParam{1.5, 0.4, 0.6}));

// ---------------------------------------------------- ADMM shape sweep --

struct AdmmParam {
  size_t d;
  size_t beta;
  double noise;
};

class AdmmShapeSweep : public ::testing::TestWithParam<AdmmParam> {};

TEST_P(AdmmShapeSweep, OutputsValidConsistentTree) {
  const AdmmParam p = GetParam();
  const HierarchyTree tree = HierarchyTree::Make(p.d, p.beta).ValueOrDie();
  Rng rng(1234 + p.d + p.beta);
  // Consistent ground truth + additive noise.
  std::vector<double> leaves(p.d);
  double total = 0.0;
  for (double& v : leaves) {
    v = rng.Uniform();
    total += v;
  }
  for (double& v : leaves) v /= total;
  std::vector<double> nodes(tree.NumNodes(), 0.0);
  for (size_t level = 0; level <= tree.height(); ++level) {
    for (size_t i = 0; i < tree.LevelSize(level); ++i) {
      const auto [s, e] = tree.LeafSpan(level, i);
      for (size_t leaf = s; leaf < e; ++leaf) {
        nodes[tree.FlatIndex(level, i)] += leaves[leaf];
      }
    }
  }
  for (size_t i = 1; i < nodes.size(); ++i) {
    nodes[i] += p.noise * rng.Gaussian();
  }
  const AdmmResult res = HhAdmm(tree, nodes).ValueOrDie();
  EXPECT_TRUE(hist::IsDistribution(res.distribution, 1e-9));
  EXPECT_LT(ConsistencyResidual(tree, res.node_values), 5e-3);
  // Leaf error no worse than the raw noisy leaves (L2).
  double err_raw = 0.0;
  double err_admm = 0.0;
  const size_t off = tree.LevelOffset(tree.height());
  for (size_t leaf = 0; leaf < p.d; ++leaf) {
    err_raw += (nodes[off + leaf] - leaves[leaf]) *
               (nodes[off + leaf] - leaves[leaf]);
    err_admm += (res.distribution[leaf] - leaves[leaf]) *
                (res.distribution[leaf] - leaves[leaf]);
  }
  EXPECT_LE(err_admm, err_raw * 1.05);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AdmmShapeSweep,
    ::testing::Values(AdmmParam{16, 2, 0.01}, AdmmParam{16, 4, 0.02},
                      AdmmParam{64, 4, 0.02}, AdmmParam{64, 2, 0.005},
                      AdmmParam{81, 3, 0.02}, AdmmParam{256, 4, 0.01}));

// ----------------------------------------------------- metric axioms --

class MetricAxiomSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(MetricAxiomSweep, WassersteinIsAMetric) {
  const size_t d = GetParam();
  Rng rng(99 + d);
  const auto random_dist = [&] {
    std::vector<double> x(d);
    double total = 0.0;
    for (double& v : x) {
      v = rng.Uniform();
      total += v;
    }
    for (double& v : x) v /= total;
    return x;
  };
  for (int rep = 0; rep < 10; ++rep) {
    const auto x = random_dist();
    const auto y = random_dist();
    const auto z = random_dist();
    // Identity, symmetry, triangle inequality.
    EXPECT_NEAR(WassersteinDistance(x, x), 0.0, 1e-12);
    EXPECT_NEAR(WassersteinDistance(x, y), WassersteinDistance(y, x), 1e-12);
    EXPECT_LE(WassersteinDistance(x, z),
              WassersteinDistance(x, y) + WassersteinDistance(y, z) + 1e-12);
    // KS axioms.
    EXPECT_NEAR(KsDistance(x, x), 0.0, 1e-12);
    EXPECT_LE(KsDistance(x, z), KsDistance(x, y) + KsDistance(y, z) + 1e-12);
    // KS <= d * W1 relationship on the shared grid: both derive from the
    // same CDF differences, max <= sum.
    EXPECT_LE(KsDistance(x, y),
              WassersteinDistance(x, y) * static_cast<double>(d) + 1e-12);
  }
}

TEST_P(MetricAxiomSweep, QuantileIsCdfInverse) {
  const size_t d = GetParam();
  Rng rng(7 + d);
  std::vector<double> x(d);
  double total = 0.0;
  for (double& v : x) {
    v = 0.05 + rng.Uniform();  // strictly positive -> strictly monotone CDF
    total += v;
  }
  for (double& v : x) v /= total;
  for (double beta : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double q = Quantile(x, beta);
    EXPECT_NEAR(CdfAt(x, q), beta, 1e-9) << "beta=" << beta;
  }
}

TEST_P(MetricAxiomSweep, RangeQueryAdditivity) {
  const size_t d = GetParam();
  Rng rng(13 + d);
  std::vector<double> x(d);
  double total = 0.0;
  for (double& v : x) {
    v = rng.Uniform();
    total += v;
  }
  for (double& v : x) v /= total;
  // R(0, a) + R(a, b - a) == R(0, b).
  for (double a : {0.2, 0.5}) {
    for (double b : {0.7, 1.0}) {
      EXPECT_NEAR(RangeQuery(x, 0.0, a) + RangeQuery(x, a, b - a),
                  RangeQuery(x, 0.0, b), 1e-10);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, MetricAxiomSweep,
                         ::testing::Values(4, 16, 64, 256));

// --------------------------------------- EMS rectangular-model sweep --

struct RectParam {
  size_t d_in;
  size_t d_out;
};

class EmsRectangularSweep : public ::testing::TestWithParam<RectParam> {};

TEST_P(EmsRectangularSweep, ReconstructionIsDistribution) {
  const RectParam p = GetParam();
  const GeneralWave gw = GeneralWave::Make(1.0, 0.25, 0.5).ValueOrDie();
  const Matrix m = gw.TransitionMatrix(p.d_in, p.d_out);
  Rng rng(31);
  std::vector<uint64_t> counts(p.d_out);
  for (uint64_t& c : counts) c = 10 + rng.UniformInt(90);
  const EmResult res = EstimateEms(m, counts).ValueOrDie();
  EXPECT_EQ(res.estimate.size(), p.d_in);
  EXPECT_TRUE(hist::IsDistribution(res.estimate, 1e-9));
  EXPECT_TRUE(res.converged);
}

INSTANTIATE_TEST_SUITE_P(Rects, EmsRectangularSweep,
                         ::testing::Values(RectParam{16, 16},
                                           RectParam{16, 64},
                                           RectParam{64, 16},
                                           RectParam{100, 150},
                                           RectParam{256, 256}));

}  // namespace
}  // namespace numdist
