#include "eval/method.h"

#include <gtest/gtest.h>

#include "common/histogram.h"
#include "data/datasets.h"

namespace numdist {
namespace {

std::vector<double> TestValues(size_t n) {
  Rng rng(1234);
  return GenerateDataset(DatasetId::kBeta, n, rng);
}

TEST(MethodTest, StandardSuiteHasAllPaperMethods) {
  const auto suite = MakeStandardSuite();
  ASSERT_EQ(suite.size(), 8u);
  EXPECT_EQ(suite[0]->name(), "SW-EMS");
  EXPECT_EQ(suite[1]->name(), "SW-EM");
  EXPECT_EQ(suite[2]->name(), "HH-ADMM");
  EXPECT_EQ(suite[3]->name(), "CFO-bin-16");
  EXPECT_EQ(suite[4]->name(), "CFO-bin-32");
  EXPECT_EQ(suite[5]->name(), "CFO-bin-64");
  EXPECT_EQ(suite[6]->name(), "HH");
  EXPECT_EQ(suite[7]->name(), "HaarHRR");
}

TEST(MethodTest, DistributionAvailabilityMatchesTable2) {
  const auto suite = MakeStandardSuite();
  EXPECT_TRUE(suite[0]->yields_distribution());   // SW-EMS
  EXPECT_TRUE(suite[1]->yields_distribution());   // SW-EM
  EXPECT_TRUE(suite[2]->yields_distribution());   // HH-ADMM
  EXPECT_TRUE(suite[3]->yields_distribution());   // CFO binning
  EXPECT_FALSE(suite[6]->yields_distribution());  // HH: range queries only
  EXPECT_FALSE(suite[7]->yields_distribution());  // HaarHRR
}

TEST(MethodTest, EveryMethodRunsAndAnswersRangeQueries) {
  const auto values = TestValues(8000);
  const size_t d = 64;
  Rng rng(5);
  for (const auto& method : MakeStandardSuite()) {
    Rng trial_rng = rng.Fork();
    const MethodOutput out =
        method->Run(values, 1.0, d, trial_rng).ValueOrDie();
    ASSERT_TRUE(out.range_query) << method->name();
    const double full = out.range_query(0.0, 1.0);
    EXPECT_NEAR(full, 1.0, 0.3) << method->name();
    if (method->yields_distribution()) {
      EXPECT_EQ(out.distribution.size(), d) << method->name();
      EXPECT_TRUE(hist::IsDistribution(out.distribution, 1e-6))
          << method->name();
    } else {
      EXPECT_TRUE(out.distribution.empty()) << method->name();
    }
  }
}

TEST(MethodTest, CfoBinningRequiresDivisibility) {
  const auto method = MakeCfoBinningMethod(48);
  Rng rng(6);
  EXPECT_FALSE(method->Run(TestValues(100), 1.0, 64, rng).ok());
}

TEST(MethodTest, CfoBinningExpandsUniformlyWithinBins) {
  const auto method = MakeCfoBinningMethod(16);
  Rng rng(7);
  const MethodOutput out =
      method->Run(TestValues(20000), 2.0, 64, rng).ValueOrDie();
  // Buckets within one chunk of 4 must be equal.
  for (size_t c = 0; c < 16; ++c) {
    for (size_t j = 1; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(out.distribution[c * 4], out.distribution[c * 4 + j]);
    }
  }
}

TEST(MethodTest, HaarHrrRequiresPowerOfTwoGranularity) {
  const auto method = MakeHaarHrrMethod();
  Rng rng(8);
  EXPECT_FALSE(method->Run(TestValues(100), 1.0, 48, rng).ok());
}

TEST(MethodTest, HhRequiresPowerOfBetaGranularity) {
  const auto method = MakeHhMethod(4);
  Rng rng(9);
  EXPECT_FALSE(method->Run(TestValues(100), 1.0, 48, rng).ok());
  EXPECT_TRUE(method->Run(TestValues(100), 1.0, 64, rng).ok());
}

TEST(MethodTest, MethodsAreDeterministicGivenSeed) {
  const auto values = TestValues(4000);
  for (const auto& method : MakeStandardSuite()) {
    Rng rng1(42);
    Rng rng2(42);
    const MethodOutput a = method->Run(values, 1.0, 64, rng1).ValueOrDie();
    const MethodOutput b = method->Run(values, 1.0, 64, rng2).ValueOrDie();
    EXPECT_EQ(a.distribution, b.distribution) << method->name();
    EXPECT_DOUBLE_EQ(a.range_query(0.2, 0.3), b.range_query(0.2, 0.3))
        << method->name();
  }
}

}  // namespace
}  // namespace numdist
