// Collector service guarantees (serve/collector.h, serve/framing.h):
// length-prefixed transport framing is strict (clean EOF vs mid-frame EOF
// vs hostile length prefix), CollectorSession reproduces the in-process
// sharded aggregate bit-for-bit from report + sketch frames, and
// ServeStream drives a full collector lifecycle over plain iostreams.
#include "serve/collector.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "data/datasets.h"
#include "eval/streaming.h"
#include "protocol/sharded.h"
#include "serve/framing.h"
#include "wire/wire.h"

namespace numdist {
namespace {

std::vector<double> TestValues(size_t n) { return GoldenRatioValues(n); }

TEST(FramingTest, RoundTripAndCleanEof) {
  std::stringstream stream;
  ASSERT_TRUE(serve::WriteFrame(stream, "hello").ok());
  ASSERT_TRUE(serve::WriteFrame(stream, "").ok());
  ASSERT_TRUE(serve::WriteFrame(stream, std::string(1000, 'x')).ok());

  std::string frame;
  bool eof = false;
  ASSERT_TRUE(serve::ReadFrame(stream, &frame, &eof).ok());
  EXPECT_FALSE(eof);
  EXPECT_EQ(frame, "hello");
  ASSERT_TRUE(serve::ReadFrame(stream, &frame, &eof).ok());
  EXPECT_EQ(frame, "");
  ASSERT_TRUE(serve::ReadFrame(stream, &frame, &eof).ok());
  EXPECT_EQ(frame.size(), 1000u);

  // Clean end of stream between frames: OK + eof, not an error.
  ASSERT_TRUE(serve::ReadFrame(stream, &frame, &eof).ok());
  EXPECT_TRUE(eof);
  EXPECT_TRUE(frame.empty());
}

TEST(FramingTest, MidFrameEofIsAnError) {
  std::string encoded;
  {
    std::stringstream stream;
    ASSERT_TRUE(serve::WriteFrame(stream, "payload-bytes").ok());
    encoded = stream.str();
  }
  // Cut inside the length prefix.
  {
    std::stringstream cut(encoded.substr(0, 2));
    std::string frame;
    bool eof = false;
    const Status st = serve::ReadFrame(cut, &frame, &eof);
    EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
  }
  // Cut inside the frame body.
  {
    std::stringstream cut(encoded.substr(0, 8));
    std::string frame;
    bool eof = false;
    const Status st = serve::ReadFrame(cut, &frame, &eof);
    EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
  }
}

TEST(FramingTest, HostileLengthPrefixIsRejectedBeforeAllocation) {
  std::string bytes = "\xFF\xFF\xFF\xFF";  // 4 GiB claimed
  std::stringstream stream(bytes);
  std::string frame;
  bool eof = false;
  const Status st = serve::ReadFrame(stream, &frame, &eof);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(frame.empty());

  // Writers refuse the same ceiling.
  std::stringstream out;
  EXPECT_FALSE(serve::WriteFrame(out, "abc", /*max_bytes=*/2).ok());
}

TEST(CollectorSessionTest, DistributedRunMatchesInProcessShardedRun) {
  const std::vector<double> values = TestValues(20000);
  const auto spec = wire::ParseMethodSpec("sw-ems", 1.0, 64).ValueOrDie();
  auto protocol = wire::MakeProtocolForSpec(spec).ValueOrDie();

  ShardOptions opts;
  opts.shard_size = 4096;
  opts.threads = 2;
  auto reference =
      RunProtocolSharded(*protocol, values, 21, opts).ValueOrDie();

  // Three collector processes, round-robin over the shard set, then a
  // coordinator that merges their sketch frames.
  const size_t collectors = 3;
  std::vector<serve::CollectorSession> sessions;
  for (size_t c = 0; c < collectors; ++c) {
    sessions.push_back(serve::CollectorSession::Make(spec).ValueOrDie());
  }
  const size_t num_shards =
      (values.size() + opts.shard_size - 1) / opts.shard_size;
  for (size_t i = 0; i < num_shards; ++i) {
    const size_t begin = i * opts.shard_size;
    const size_t len = std::min(opts.shard_size, values.size() - begin);
    Rng rng(ShardSeed(21, i));
    auto chunk = protocol
                     ->EncodePerturbBatch(
                         std::span<const double>(values).subspan(begin, len),
                         rng)
                     .ValueOrDie();
    std::string frame;
    ASSERT_TRUE(wire::EncodeReportFrame(spec, *protocol, *chunk, &frame).ok());
    ASSERT_TRUE(sessions[i % collectors].HandleFrame(frame).ok());
  }

  auto coordinator = serve::CollectorSession::Make(spec).ValueOrDie();
  for (const serve::CollectorSession& session : sessions) {
    const std::string sketch = session.EncodeSketch().ValueOrDie();
    ASSERT_TRUE(coordinator.HandleFrame(sketch).ok());
  }
  EXPECT_EQ(coordinator.num_reports(), values.size());

  auto output = coordinator.Reconstruct().ValueOrDie();
  ASSERT_EQ(output.distribution.size(), reference.distribution.size());
  EXPECT_EQ(0, std::memcmp(output.distribution.data(),
                           reference.distribution.data(),
                           reference.distribution.size() * sizeof(double)));
}

TEST(CollectorSessionTest, RejectsForeignAndSnapshotFrames) {
  auto session =
      serve::CollectorSession::Make(
          wire::ParseMethodSpec("sw-ems", 1.0, 64).ValueOrDie())
          .ValueOrDie();

  // A frame for a different method configuration.
  const auto other_spec = wire::ParseMethodSpec("sw-em", 1.0, 64).ValueOrDie();
  auto other = serve::CollectorSession::Make(other_spec).ValueOrDie();
  const std::string foreign = other.EncodeSketch().ValueOrDie();
  EXPECT_FALSE(session.HandleFrame(foreign).ok());
  EXPECT_EQ(session.num_reports(), 0u);

  // Garbage.
  EXPECT_FALSE(session.HandleFrame(std::string("not a frame")).ok());
}

// A snapshot frame arriving AFTER the session has absorbed reports: the
// rejection must be typed and must leave the aggregate byte-identical —
// a live-estimation snapshot stream accidentally piped into a collector
// cannot perturb or double-count the aggregate.
TEST(CollectorSessionTest, SnapshotFrameAfterPriorReportsLeavesStateIntact) {
  const std::vector<double> values = TestValues(4000);
  const auto spec = wire::ParseMethodSpec("sw-ems", 1.0, 32).ValueOrDie();
  auto protocol = wire::MakeProtocolForSpec(spec).ValueOrDie();
  auto session = serve::CollectorSession::Make(spec).ValueOrDie();

  Rng rng(ShardSeed(31, 0));
  auto chunk =
      protocol->EncodePerturbBatch(values, rng).ValueOrDie();
  std::string report;
  ASSERT_TRUE(wire::EncodeReportFrame(spec, *protocol, *chunk, &report).ok());
  ASSERT_TRUE(session.HandleFrame(report).ok());
  const std::string sketch_before = session.EncodeSketch().ValueOrDie();

  // A well-formed snapshot frame of matching epsilon/d.
  SwEstimatorOptions options;
  options.epsilon = 1.0;
  options.d = 32;
  StreamingAggregator agg = StreamingAggregator::Make(options).ValueOrDie();
  Rng snap_rng(ShardSeed(31, 1));
  for (const double v : TestValues(500)) {
    agg.Accept(agg.estimator().PerturbOne(v, snap_rng));
  }
  std::string snapshot;
  ASSERT_TRUE(wire::EncodeSnapshotFrame(1.0, agg, &snapshot).ok());

  const Status rejected = session.HandleFrame(snapshot);
  EXPECT_EQ(rejected.code(), StatusCode::kInvalidArgument)
      << rejected.ToString();
  EXPECT_EQ(session.num_reports(), values.size());
  EXPECT_EQ(session.EncodeSketch().ValueOrDie(), sketch_before);

  // The session keeps serving: a later report frame still absorbs.
  Rng rng2(ShardSeed(31, 2));
  auto chunk2 = protocol
                    ->EncodePerturbBatch(
                        std::span<const double>(values).subspan(0, 100), rng2)
                    .ValueOrDie();
  std::string report2;
  ASSERT_TRUE(
      wire::EncodeReportFrame(spec, *protocol, *chunk2, &report2).ok());
  EXPECT_TRUE(session.HandleFrame(report2).ok());
  EXPECT_EQ(session.num_reports(), values.size() + 100);
}

// One tenant-tagged report frame per tenant, for the budget tests below.
std::string TenantReportFrame(const wire::MethodSpec& spec,
                              const Protocol& protocol, uint32_t tenant,
                              size_t reports, uint64_t seed) {
  const std::vector<double> values = TestValues(reports);
  Rng rng(ShardSeed(seed, tenant));
  auto chunk = protocol.EncodePerturbBatch(values, rng).ValueOrDie();
  std::string frame;
  const Status st =
      wire::EncodeReportFrame(spec, tenant, protocol, *chunk, &frame);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return frame;
}

// Over-budget frames are typed FailedPrecondition rejections that leave
// EVERY accumulator untouched — the offending tenant's and everyone
// else's (ExportState byte-compare), and the spend is not charged.
TEST(CollectorSessionTest, OverBudgetTenantIsRejectedWithoutSideEffects) {
  const auto spec = wire::ParseMethodSpec("sw-ems", 1.0, 32).ValueOrDie();
  auto protocol = wire::MakeProtocolForSpec(spec).ValueOrDie();
  auto session = serve::CollectorSession::Make(spec).ValueOrDie();
  session.SetTenantBudget(1, {.max_reports = 250});

  // Tenant 2 (unlimited) and tenant 1's first frame both land.
  ASSERT_TRUE(
      session.HandleFrame(TenantReportFrame(spec, *protocol, 2, 300, 5))
          .ok());
  ASSERT_TRUE(
      session.HandleFrame(TenantReportFrame(spec, *protocol, 1, 200, 5))
          .ok());
  EXPECT_EQ(session.ledger()->spent_reports(1), 200u);

  const std::string total_before = session.EncodeSketch().ValueOrDie();
  const auto tenant1_before = session.ExportTenantState(1).ValueOrDie();
  const auto tenant2_before = session.ExportTenantState(2).ValueOrDie();

  // 200 + 100 > 250: typed rejection, nothing moves, nothing charged.
  const Status over =
      session.HandleFrame(TenantReportFrame(spec, *protocol, 1, 100, 6));
  EXPECT_EQ(over.code(), StatusCode::kFailedPrecondition) << over.ToString();
  EXPECT_EQ(session.ledger()->spent_reports(1), 200u);
  EXPECT_EQ(session.num_reports(), 500u);
  EXPECT_EQ(session.EncodeSketch().ValueOrDie(), total_before);
  const auto tenant1_after = session.ExportTenantState(1).ValueOrDie();
  const auto tenant2_after = session.ExportTenantState(2).ValueOrDie();
  EXPECT_EQ(tenant1_after.num_reports, tenant1_before.num_reports);
  EXPECT_EQ(tenant2_after.num_reports, tenant2_before.num_reports);
  ASSERT_EQ(tenant1_after.tables.size(), tenant1_before.tables.size());
  for (size_t t = 0; t < tenant1_after.tables.size(); ++t) {
    EXPECT_EQ(tenant1_after.tables[t].counts,
              tenant1_before.tables[t].counts);
  }
  for (size_t t = 0; t < tenant2_after.tables.size(); ++t) {
    EXPECT_EQ(tenant2_after.tables[t].counts,
              tenant2_before.tables[t].counts);
  }

  // A frame that still fits the remaining budget is accepted.
  EXPECT_TRUE(
      session.HandleFrame(TenantReportFrame(spec, *protocol, 1, 50, 7)).ok());
  EXPECT_EQ(session.ledger()->spent_reports(1), 250u);
}

// The epsilon odometer: the cap is cumulative epsilon spend (reports ×
// the session epsilon), independent of the report cap.
TEST(CollectorSessionTest, EpsilonBudgetCapsAreEnforced) {
  const auto spec = wire::ParseMethodSpec("sw-ems", 2.0, 32).ValueOrDie();
  auto protocol = wire::MakeProtocolForSpec(spec).ValueOrDie();
  auto session = serve::CollectorSession::Make(spec).ValueOrDie();
  // 100 reports at epsilon 2.0 = 200.0 spent; cap at 300.
  session.SetTenantBudget(4, {.max_epsilon = 300.0});

  ASSERT_TRUE(
      session.HandleFrame(TenantReportFrame(spec, *protocol, 4, 100, 8))
          .ok());
  const Status over =
      session.HandleFrame(TenantReportFrame(spec, *protocol, 4, 100, 9));
  EXPECT_EQ(over.code(), StatusCode::kFailedPrecondition) << over.ToString();
  EXPECT_NE(over.message().find("epsilon"), std::string::npos)
      << over.ToString();
  // 100 + 50 = 150 reports -> epsilon 300.0 == the cap: allowed.
  EXPECT_TRUE(
      session.HandleFrame(TenantReportFrame(spec, *protocol, 4, 50, 10))
          .ok());
}

// Untenanted sessions stay byte-compatible: a default-tenant budget also
// caps untagged frames, and tenant-0-tagged frames route to the default
// accumulator (the flag is normalized away on the wire).
TEST(CollectorSessionTest, DefaultTenantBudgetCapsUntaggedFrames) {
  const auto spec = wire::ParseMethodSpec("sw-ems", 1.0, 32).ValueOrDie();
  auto protocol = wire::MakeProtocolForSpec(spec).ValueOrDie();

  // Tenant-0 tagging is normalized: the encoder emits the legacy bytes.
  std::string tagged, untagged;
  const std::vector<double> values = TestValues(64);
  Rng rng_a(ShardSeed(12, 0));
  auto chunk_a = protocol->EncodePerturbBatch(values, rng_a).ValueOrDie();
  ASSERT_TRUE(wire::EncodeReportFrame(spec, wire::kDefaultTenant, *protocol,
                                      *chunk_a, &tagged)
                  .ok());
  Rng rng_b(ShardSeed(12, 0));
  auto chunk_b = protocol->EncodePerturbBatch(values, rng_b).ValueOrDie();
  ASSERT_TRUE(
      wire::EncodeReportFrame(spec, *protocol, *chunk_b, &untagged).ok());
  EXPECT_EQ(tagged, untagged);

  auto session = serve::CollectorSession::Make(spec).ValueOrDie();
  session.SetTenantBudget(wire::kDefaultTenant, {.max_reports = 100});
  ASSERT_TRUE(session.HandleFrame(untagged).ok());
  const Status over = session.HandleFrame(
      TenantReportFrame(spec, *protocol, wire::kDefaultTenant, 64, 13));
  EXPECT_EQ(over.code(), StatusCode::kFailedPrecondition) << over.ToString();
  EXPECT_EQ(session.num_reports(), 64u);
}

TEST(ServeStreamTest, FullCollectorLifecycleOverIostreams) {
  const std::vector<double> values = TestValues(8000);
  const auto spec = wire::ParseMethodSpec("cfo-olh-16", 1.0, 64).ValueOrDie();
  auto protocol = wire::MakeProtocolForSpec(spec).ValueOrDie();

  // Client side: report frames onto the "socket".
  std::stringstream client_to_collector;
  const size_t shard_size = 2048;
  const size_t num_shards = (values.size() + shard_size - 1) / shard_size;
  for (size_t i = 0; i < num_shards; ++i) {
    const size_t begin = i * shard_size;
    const size_t len = std::min(shard_size, values.size() - begin);
    Rng rng(ShardSeed(3, i));
    auto chunk = protocol
                     ->EncodePerturbBatch(
                         std::span<const double>(values).subspan(begin, len),
                         rng)
                     .ValueOrDie();
    std::string frame;
    ASSERT_TRUE(wire::EncodeReportFrame(spec, *protocol, *chunk, &frame).ok());
    ASSERT_TRUE(serve::WriteFrame(client_to_collector, frame).ok());
  }

  // Collector daemon loop.
  auto collector = serve::CollectorSession::Make(spec).ValueOrDie();
  std::stringstream collector_to_coordinator;
  ASSERT_TRUE(serve::ServeStream(client_to_collector,
                                 collector_to_coordinator, &collector)
                  .ok());
  EXPECT_EQ(collector.num_reports(), values.size());

  // Coordinator reads the emitted sketch frame and reconstructs.
  std::string sketch;
  bool eof = false;
  ASSERT_TRUE(
      serve::ReadFrame(collector_to_coordinator, &sketch, &eof).ok());
  ASSERT_FALSE(eof);
  auto coordinator = serve::CollectorSession::Make(spec).ValueOrDie();
  ASSERT_TRUE(coordinator.HandleFrame(sketch).ok());

  auto via_stream = coordinator.Reconstruct().ValueOrDie();
  ShardOptions opts;
  opts.shard_size = shard_size;
  auto reference = RunProtocolSharded(*protocol, values, 3, opts).ValueOrDie();
  EXPECT_EQ(via_stream.distribution, reference.distribution);

  // A truncated stream must error out, not emit a sketch.
  std::stringstream partial(std::string("\x08\x00\x00\x00half", 8));
  auto broken = serve::CollectorSession::Make(spec).ValueOrDie();
  std::stringstream sink;
  EXPECT_FALSE(serve::ServeStream(partial, sink, &broken).ok());
  EXPECT_TRUE(sink.str().empty());
}

// ---------------------------------------------------------------------------
// ServeFd ack emission (the stdio/socket leg of the exactly-once
// contract): every sequenced frame is acknowledged in arrival order, a
// duplicate is re-acked without re-absorbing, and the final sketch is
// byte-identical to a sequence-free run over the same payloads.
TEST(ServeFdTest, SequencedFramesAreAckedAndDeduplicated) {
  const auto spec = wire::ParseMethodSpec("sw-ems", 1.0, 32).ValueOrDie();
  auto protocol = wire::MakeProtocolForSpec(spec).ValueOrDie();

  // Three distinct payload frames; the stamped copies carry epoch 21,
  // seqs 1..3.
  std::vector<std::string> plain;
  for (uint64_t i = 0; i < 3; ++i) {
    Rng rng(ShardSeed(31, i));
    auto chunk =
        protocol->EncodePerturbBatch(TestValues(40), rng).ValueOrDie();
    std::string frame;
    ASSERT_TRUE(
        wire::EncodeReportFrame(spec, *protocol, *chunk, &frame).ok());
    plain.push_back(frame);
  }
  std::vector<std::string> stamped = plain;
  for (size_t i = 0; i < stamped.size(); ++i) {
    ASSERT_TRUE(wire::StampSequenceContext(&stamped[i],
                                           {.epoch = 21, .seq = i + 1})
                    .ok());
  }

  // Reference: the sequence-free ServeStream run.
  std::string reference_sketch;
  {
    std::stringstream in, out;
    for (const std::string& frame : plain) {
      ASSERT_TRUE(serve::WriteFrame(in, frame).ok());
    }
    auto session = serve::CollectorSession::Make(spec).ValueOrDie();
    ASSERT_TRUE(serve::ServeStream(in, out, &session).ok());
    bool eof = false;
    ASSERT_TRUE(serve::ReadFrame(out, &reference_sketch, &eof).ok());
  }

  // Sequenced run over a real pipe fd, with seq 2 re-sent mid-stream
  // (the lost-ack retry shape).
  int fds[2] = {-1, -1};
  ASSERT_EQ(pipe(fds), 0);
  {
    std::stringstream in;
    ASSERT_TRUE(serve::WriteFrame(in, stamped[0]).ok());
    ASSERT_TRUE(serve::WriteFrame(in, stamped[1]).ok());
    ASSERT_TRUE(serve::WriteFrame(in, stamped[1]).ok());  // duplicate
    ASSERT_TRUE(serve::WriteFrame(in, stamped[2]).ok());
    const std::string bytes = in.str();
    ASSERT_EQ(write(fds[1], bytes.data(), bytes.size()),
              static_cast<ssize_t>(bytes.size()));
    close(fds[1]);
  }
  auto session = serve::CollectorSession::Make(spec).ValueOrDie();
  std::stringstream out;
  const Status served = serve::ServeFd(fds[0], out, &session);
  close(fds[0]);
  ASSERT_TRUE(served.ok()) << served.ToString();
  EXPECT_EQ(session.num_reports(), 120u) << "the duplicate must not absorb";

  // Output: four acks (1, 2, 2 again, 3), then the sketch, then EOF.
  const uint64_t expected_seqs[] = {1, 2, 2, 3};
  std::string frame;
  bool eof = false;
  for (const uint64_t expected : expected_seqs) {
    ASSERT_TRUE(serve::ReadFrame(out, &frame, &eof).ok());
    ASSERT_FALSE(eof);
    const auto ack = wire::DecodeAckFrame(frame);
    ASSERT_TRUE(ack.ok()) << ack.status().ToString();
    EXPECT_EQ(ack->epoch, 21u);
    EXPECT_EQ(ack->seq, expected);
  }
  ASSERT_TRUE(serve::ReadFrame(out, &frame, &eof).ok());
  ASSERT_FALSE(eof);
  EXPECT_EQ(frame, reference_sketch)
      << "sequencing must not perturb the sketch bytes";
  ASSERT_TRUE(serve::ReadFrame(out, &frame, &eof).ok());
  EXPECT_TRUE(eof);
}

// ---------------------------------------------------------------------------
// SequenceTracker window semantics under the Export/Release race: an
// Export may fold a claim into the floor while its absorb is still in
// flight on another executor slot. If that absorb then fails, the Release
// must re-open the window — otherwise the client's retry is rejected as a
// duplicate and the frame is silently lost.

TEST(SequenceTrackerTest, ReleaseBelowTheFloorReopensTheWindow) {
  serve::SequenceTracker tracker;
  ASSERT_TRUE(tracker.Claim(7, 1));
  ASSERT_TRUE(tracker.Claim(7, 2));
  ASSERT_TRUE(tracker.Claim(7, 3));
  // Export folds 1..3 into the floor...
  {
    const std::vector<serve::WalSeqEntry> entries = tracker.Export();
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].epoch, 7u);
    EXPECT_EQ(entries[0].floor, 3u);
    EXPECT_TRUE(entries[0].sparse.empty());
  }
  // ...then seq 2's in-flight absorb fails and releases its claim.
  tracker.Release(7, 2);
  // The retry must be accepted exactly once, then dedup again.
  EXPECT_TRUE(tracker.Claim(7, 2));
  EXPECT_FALSE(tracker.Claim(7, 2));
  // Still-absorbed neighbors stay duplicates throughout.
  EXPECT_FALSE(tracker.Claim(7, 1));
  EXPECT_FALSE(tracker.Claim(7, 3));
}

TEST(SequenceTrackerTest, ExportNeverPersistsAReleasedClaimAsAbsorbed) {
  serve::SequenceTracker tracker;
  for (uint64_t seq = 1; seq <= 4; ++seq) {
    ASSERT_TRUE(tracker.Claim(9, seq));
  }
  ASSERT_EQ(tracker.Export().at(0).floor, 4u);
  tracker.Release(9, 2);
  // A checkpoint cut between the release and the retry must carry the
  // hole: the floor drops below it and the genuinely absorbed seqs above
  // it move back into the sparse set.
  const std::vector<serve::WalSeqEntry> entries = tracker.Export();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].floor, 1u);
  EXPECT_EQ(entries[0].sparse, (std::vector<uint64_t>{3, 4}));
  // A tracker restored from that checkpoint accepts the retry and still
  // dedups the absorbed neighbors.
  serve::SequenceTracker restored;
  restored.Restore(entries);
  EXPECT_TRUE(restored.Claim(9, 2));
  EXPECT_FALSE(restored.Claim(9, 3));
  EXPECT_FALSE(restored.Claim(9, 1));
}

// A WAL append failure AFTER the accumulator committed must keep the
// frame's claim (and ledger charge): the frame IS aggregated in memory,
// so releasing the claim would let the client's retransmit double-count
// it. Only pre-commit failures (decode, over-budget) roll the claim back.
TEST(CollectorSessionTest, WalFailureAfterAbsorbKeepsTheClaim) {
  const auto spec = wire::ParseMethodSpec("sw-ems", 1.0, 32).ValueOrDie();
  auto protocol = wire::MakeProtocolForSpec(spec).ValueOrDie();
  std::vector<std::string> frames;
  for (uint64_t i = 0; i < 2; ++i) {
    Rng rng(ShardSeed(47, i));
    auto chunk =
        protocol->EncodePerturbBatch(TestValues(40), rng).ValueOrDie();
    std::string frame;
    ASSERT_TRUE(
        wire::EncodeReportFrame(spec, *protocol, *chunk, &frame).ok());
    ASSERT_TRUE(
        wire::StampSequenceContext(&frame, {.epoch = 5, .seq = i + 1}).ok());
    frames.push_back(frame);
  }

  // Segmented WAL with a tiny segment cap: every append seals the active
  // segment and rolls to the next, so deleting the directory makes the
  // next append fail at rotation — AFTER that frame was absorbed.
  const std::string dir = testing::TempDir() + "serve_wal_fail_claim";
  std::filesystem::remove_all(dir);
  auto session = serve::CollectorSession::Make(spec).ValueOrDie();
  serve::WalOptions wal;
  wal.segment_bytes = 1;
  ASSERT_TRUE(session.RecoverAndAttachWal(dir, wal).ok());
  serve::FrameOutcome outcome;
  ASSERT_TRUE(session.HandleFrame(frames[0], &outcome).ok());
  ASSERT_TRUE(outcome.absorbed);
  ASSERT_EQ(session.num_reports(), 40u);

  std::filesystem::remove_all(dir);
  const Status failed = session.HandleFrame(frames[1], &outcome);
  ASSERT_FALSE(failed.ok()) << "the append must fail in the deleted dir";
  EXPECT_EQ(session.num_reports(), 80u)
      << "the frame committed before the WAL failure";
  // The claim survives: the retransmit dedups instead of re-absorbing.
  ASSERT_TRUE(session.HandleFrame(frames[1], &outcome).ok());
  EXPECT_TRUE(outcome.duplicate);
  EXPECT_EQ(session.num_reports(), 80u) << "the retry must not double-count";
}

}  // namespace
}  // namespace numdist
