// Collector service guarantees (serve/collector.h, serve/framing.h):
// length-prefixed transport framing is strict (clean EOF vs mid-frame EOF
// vs hostile length prefix), CollectorSession reproduces the in-process
// sharded aggregate bit-for-bit from report + sketch frames, and
// ServeStream drives a full collector lifecycle over plain iostreams.
#include "serve/collector.h"

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "data/datasets.h"
#include "protocol/sharded.h"
#include "serve/framing.h"
#include "wire/wire.h"

namespace numdist {
namespace {

std::vector<double> TestValues(size_t n) { return GoldenRatioValues(n); }

TEST(FramingTest, RoundTripAndCleanEof) {
  std::stringstream stream;
  ASSERT_TRUE(serve::WriteFrame(stream, "hello").ok());
  ASSERT_TRUE(serve::WriteFrame(stream, "").ok());
  ASSERT_TRUE(serve::WriteFrame(stream, std::string(1000, 'x')).ok());

  std::string frame;
  bool eof = false;
  ASSERT_TRUE(serve::ReadFrame(stream, &frame, &eof).ok());
  EXPECT_FALSE(eof);
  EXPECT_EQ(frame, "hello");
  ASSERT_TRUE(serve::ReadFrame(stream, &frame, &eof).ok());
  EXPECT_EQ(frame, "");
  ASSERT_TRUE(serve::ReadFrame(stream, &frame, &eof).ok());
  EXPECT_EQ(frame.size(), 1000u);

  // Clean end of stream between frames: OK + eof, not an error.
  ASSERT_TRUE(serve::ReadFrame(stream, &frame, &eof).ok());
  EXPECT_TRUE(eof);
  EXPECT_TRUE(frame.empty());
}

TEST(FramingTest, MidFrameEofIsAnError) {
  std::string encoded;
  {
    std::stringstream stream;
    ASSERT_TRUE(serve::WriteFrame(stream, "payload-bytes").ok());
    encoded = stream.str();
  }
  // Cut inside the length prefix.
  {
    std::stringstream cut(encoded.substr(0, 2));
    std::string frame;
    bool eof = false;
    const Status st = serve::ReadFrame(cut, &frame, &eof);
    EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
  }
  // Cut inside the frame body.
  {
    std::stringstream cut(encoded.substr(0, 8));
    std::string frame;
    bool eof = false;
    const Status st = serve::ReadFrame(cut, &frame, &eof);
    EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
  }
}

TEST(FramingTest, HostileLengthPrefixIsRejectedBeforeAllocation) {
  std::string bytes = "\xFF\xFF\xFF\xFF";  // 4 GiB claimed
  std::stringstream stream(bytes);
  std::string frame;
  bool eof = false;
  const Status st = serve::ReadFrame(stream, &frame, &eof);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(frame.empty());

  // Writers refuse the same ceiling.
  std::stringstream out;
  EXPECT_FALSE(serve::WriteFrame(out, "abc", /*max_bytes=*/2).ok());
}

TEST(CollectorSessionTest, DistributedRunMatchesInProcessShardedRun) {
  const std::vector<double> values = TestValues(20000);
  const auto spec = wire::ParseMethodSpec("sw-ems", 1.0, 64).ValueOrDie();
  auto protocol = wire::MakeProtocolForSpec(spec).ValueOrDie();

  ShardOptions opts;
  opts.shard_size = 4096;
  opts.threads = 2;
  auto reference =
      RunProtocolSharded(*protocol, values, 21, opts).ValueOrDie();

  // Three collector processes, round-robin over the shard set, then a
  // coordinator that merges their sketch frames.
  const size_t collectors = 3;
  std::vector<serve::CollectorSession> sessions;
  for (size_t c = 0; c < collectors; ++c) {
    sessions.push_back(serve::CollectorSession::Make(spec).ValueOrDie());
  }
  const size_t num_shards =
      (values.size() + opts.shard_size - 1) / opts.shard_size;
  for (size_t i = 0; i < num_shards; ++i) {
    const size_t begin = i * opts.shard_size;
    const size_t len = std::min(opts.shard_size, values.size() - begin);
    Rng rng(ShardSeed(21, i));
    auto chunk = protocol
                     ->EncodePerturbBatch(
                         std::span<const double>(values).subspan(begin, len),
                         rng)
                     .ValueOrDie();
    std::string frame;
    ASSERT_TRUE(wire::EncodeReportFrame(spec, *protocol, *chunk, &frame).ok());
    ASSERT_TRUE(sessions[i % collectors].HandleFrame(frame).ok());
  }

  auto coordinator = serve::CollectorSession::Make(spec).ValueOrDie();
  for (const serve::CollectorSession& session : sessions) {
    const std::string sketch = session.EncodeSketch().ValueOrDie();
    ASSERT_TRUE(coordinator.HandleFrame(sketch).ok());
  }
  EXPECT_EQ(coordinator.num_reports(), values.size());

  auto output = coordinator.Reconstruct().ValueOrDie();
  ASSERT_EQ(output.distribution.size(), reference.distribution.size());
  EXPECT_EQ(0, std::memcmp(output.distribution.data(),
                           reference.distribution.data(),
                           reference.distribution.size() * sizeof(double)));
}

TEST(CollectorSessionTest, RejectsForeignAndSnapshotFrames) {
  auto session =
      serve::CollectorSession::Make(
          wire::ParseMethodSpec("sw-ems", 1.0, 64).ValueOrDie())
          .ValueOrDie();

  // A frame for a different method configuration.
  const auto other_spec = wire::ParseMethodSpec("sw-em", 1.0, 64).ValueOrDie();
  auto other = serve::CollectorSession::Make(other_spec).ValueOrDie();
  const std::string foreign = other.EncodeSketch().ValueOrDie();
  EXPECT_FALSE(session.HandleFrame(foreign).ok());
  EXPECT_EQ(session.num_reports(), 0u);

  // Garbage.
  EXPECT_FALSE(session.HandleFrame(std::string("not a frame")).ok());
}

TEST(ServeStreamTest, FullCollectorLifecycleOverIostreams) {
  const std::vector<double> values = TestValues(8000);
  const auto spec = wire::ParseMethodSpec("cfo-olh-16", 1.0, 64).ValueOrDie();
  auto protocol = wire::MakeProtocolForSpec(spec).ValueOrDie();

  // Client side: report frames onto the "socket".
  std::stringstream client_to_collector;
  const size_t shard_size = 2048;
  const size_t num_shards = (values.size() + shard_size - 1) / shard_size;
  for (size_t i = 0; i < num_shards; ++i) {
    const size_t begin = i * shard_size;
    const size_t len = std::min(shard_size, values.size() - begin);
    Rng rng(ShardSeed(3, i));
    auto chunk = protocol
                     ->EncodePerturbBatch(
                         std::span<const double>(values).subspan(begin, len),
                         rng)
                     .ValueOrDie();
    std::string frame;
    ASSERT_TRUE(wire::EncodeReportFrame(spec, *protocol, *chunk, &frame).ok());
    ASSERT_TRUE(serve::WriteFrame(client_to_collector, frame).ok());
  }

  // Collector daemon loop.
  auto collector = serve::CollectorSession::Make(spec).ValueOrDie();
  std::stringstream collector_to_coordinator;
  ASSERT_TRUE(serve::ServeStream(client_to_collector,
                                 collector_to_coordinator, &collector)
                  .ok());
  EXPECT_EQ(collector.num_reports(), values.size());

  // Coordinator reads the emitted sketch frame and reconstructs.
  std::string sketch;
  bool eof = false;
  ASSERT_TRUE(
      serve::ReadFrame(collector_to_coordinator, &sketch, &eof).ok());
  ASSERT_FALSE(eof);
  auto coordinator = serve::CollectorSession::Make(spec).ValueOrDie();
  ASSERT_TRUE(coordinator.HandleFrame(sketch).ok());

  auto via_stream = coordinator.Reconstruct().ValueOrDie();
  ShardOptions opts;
  opts.shard_size = shard_size;
  auto reference = RunProtocolSharded(*protocol, values, 3, opts).ValueOrDie();
  EXPECT_EQ(via_stream.distribution, reference.distribution);

  // A truncated stream must error out, not emit a sketch.
  std::stringstream partial(std::string("\x08\x00\x00\x00half", 8));
  auto broken = serve::CollectorSession::Make(spec).ValueOrDie();
  std::stringstream sink;
  EXPECT_FALSE(serve::ServeStream(partial, sink, &broken).ok());
  EXPECT_TRUE(sink.str().empty());
}

}  // namespace
}  // namespace numdist
