#include "eval/streaming.h"

#include <gtest/gtest.h>

#include <cstring>

#include "common/histogram.h"
#include "metrics/distance.h"

namespace numdist {
namespace {

SwEstimatorOptions TestOptions() {
  SwEstimatorOptions options;
  options.epsilon = 1.0;
  options.d = 64;
  return options;
}

TEST(StreamingAggregatorTest, PropagatesConfigErrors) {
  SwEstimatorOptions bad;
  bad.epsilon = -1.0;
  EXPECT_FALSE(StreamingAggregator::Make(bad).ok());
}

TEST(StreamingAggregatorTest, EmptySnapshotIsError) {
  StreamingAggregator agg =
      StreamingAggregator::Make(TestOptions()).ValueOrDie();
  EXPECT_EQ(agg.count(), 0u);
  const auto snap = agg.Snapshot();
  EXPECT_FALSE(snap.ok());
  EXPECT_EQ(snap.status().code(), StatusCode::kFailedPrecondition);
}

TEST(StreamingAggregatorTest, AcceptCountsReports) {
  StreamingAggregator agg =
      StreamingAggregator::Make(TestOptions()).ValueOrDie();
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    agg.Accept(agg.estimator().PerturbOne(0.5, rng));
  }
  EXPECT_EQ(agg.count(), 100u);
  uint64_t total = 0;
  for (uint64_t c : agg.counts()) total += c;
  EXPECT_EQ(total, 100u);
}

TEST(StreamingAggregatorTest, StreamingMatchesBatchPipeline) {
  const SwEstimatorOptions options = TestOptions();
  const SwEstimator estimator = SwEstimator::Make(options).ValueOrDie();
  Rng rng(2);
  std::vector<double> reports;
  for (int i = 0; i < 20000; ++i) {
    reports.push_back(estimator.PerturbOne(0.3 + 0.4 * (i % 2), rng));
  }

  // Batch path.
  const EmResult batch =
      estimator.Reconstruct(estimator.Aggregate(reports)).ValueOrDie();

  // Streaming path, one report at a time.
  StreamingAggregator agg = StreamingAggregator::Make(options).ValueOrDie();
  for (double r : reports) agg.Accept(r);
  const EmResult streamed = agg.Snapshot().ValueOrDie();

  ASSERT_EQ(batch.estimate.size(), streamed.estimate.size());
  for (size_t i = 0; i < batch.estimate.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch.estimate[i], streamed.estimate[i]);
  }
}

TEST(StreamingAggregatorTest, ShardsMergeToSameAnswer) {
  const SwEstimatorOptions options = TestOptions();
  StreamingAggregator all = StreamingAggregator::Make(options).ValueOrDie();
  StreamingAggregator shard1 = StreamingAggregator::Make(options).ValueOrDie();
  StreamingAggregator shard2 = StreamingAggregator::Make(options).ValueOrDie();

  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double report = all.estimator().PerturbOne(rng.Uniform(), rng);
    all.Accept(report);
    (i % 2 == 0 ? shard1 : shard2).Accept(report);
  }
  ASSERT_TRUE(shard1.Merge(shard2).ok());
  EXPECT_EQ(shard1.count(), all.count());
  EXPECT_EQ(shard1.counts(), all.counts());

  const EmResult merged = shard1.Snapshot().ValueOrDie();
  const EmResult direct = all.Snapshot().ValueOrDie();
  for (size_t i = 0; i < merged.estimate.size(); ++i) {
    EXPECT_DOUBLE_EQ(merged.estimate[i], direct.estimate[i]);
  }
}

TEST(StreamingAggregatorTest, MergeRejectsMismatchedShards) {
  StreamingAggregator a = StreamingAggregator::Make(TestOptions()).ValueOrDie();
  SwEstimatorOptions other = TestOptions();
  other.d = 32;
  StreamingAggregator b = StreamingAggregator::Make(other).ValueOrDie();
  const Status status = a.Merge(b);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // The failed merge must leave the target untouched.
  EXPECT_EQ(a.count(), 0u);

  // Mismatched output granularity at equal d is rejected too.
  SwEstimatorOptions wide = TestOptions();
  wide.d_out = 2 * wide.d;
  StreamingAggregator c = StreamingAggregator::Make(wide).ValueOrDie();
  EXPECT_EQ(a.Merge(c).code(), StatusCode::kInvalidArgument);
}

TEST(StreamingAggregatorTest, MergingEmptyShardsStaysEmpty) {
  // Merging zero-report shards is a no-op and Snapshot still fails cleanly.
  StreamingAggregator a = StreamingAggregator::Make(TestOptions()).ValueOrDie();
  StreamingAggregator b = StreamingAggregator::Make(TestOptions()).ValueOrDie();
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.Snapshot().status().code(), StatusCode::kFailedPrecondition);
}

TEST(StreamingAggregatorTest, MergeThenSnapshotBitForBitEqualsSingle) {
  // Stronger than ShardsMergeToSameAnswer: the merged-shard snapshot must
  // be byte-identical to the single-aggregator snapshot, not just within
  // ULP tolerance — counts merge by exact integer addition, so the EM input
  // (and hence its whole trajectory) is the same object.
  const SwEstimatorOptions options = TestOptions();
  StreamingAggregator all = StreamingAggregator::Make(options).ValueOrDie();
  std::vector<StreamingAggregator> shards;
  for (int s = 0; s < 3; ++s) {
    shards.push_back(StreamingAggregator::Make(options).ValueOrDie());
  }
  Rng rng(17);
  for (int i = 0; i < 6000; ++i) {
    const double report = all.estimator().PerturbOne(rng.Beta(5.0, 2.0), rng);
    all.Accept(report);
    shards[i % 3].Accept(report);
  }
  StreamingAggregator merged = StreamingAggregator::Make(options).ValueOrDie();
  for (const StreamingAggregator& shard : shards) {
    ASSERT_TRUE(merged.Merge(shard).ok());
  }
  ASSERT_EQ(merged.counts(), all.counts());

  const EmResult from_merge = merged.Snapshot().ValueOrDie();
  const EmResult direct = all.Snapshot().ValueOrDie();
  ASSERT_EQ(from_merge.estimate.size(), direct.estimate.size());
  EXPECT_EQ(std::memcmp(from_merge.estimate.data(), direct.estimate.data(),
                        direct.estimate.size() * sizeof(double)),
            0);
  EXPECT_EQ(from_merge.iterations, direct.iterations);
  EXPECT_EQ(from_merge.log_likelihood, direct.log_likelihood);
}

TEST(StreamingAggregatorTest, ResetDropsCountsAndAllowsReuse) {
  const SwEstimatorOptions options = TestOptions();
  StreamingAggregator agg = StreamingAggregator::Make(options).ValueOrDie();
  StreamingAggregator shard = StreamingAggregator::Make(options).ValueOrDie();
  Rng rng(29);
  for (int i = 0; i < 500; ++i) {
    shard.Accept(shard.estimator().PerturbOne(rng.Uniform(), rng));
  }
  ASSERT_TRUE(agg.Merge(shard).ok());
  EXPECT_EQ(agg.count(), 500u);
  agg.Reset();
  EXPECT_EQ(agg.count(), 0u);
  EXPECT_EQ(agg.Snapshot().status().code(), StatusCode::kFailedPrecondition);
  // A reset merge target reproduces a fresh aggregator's behavior exactly.
  ASSERT_TRUE(agg.Merge(shard).ok());
  EXPECT_EQ(agg.counts(), shard.counts());
}

TEST(StreamingAggregatorTest, AcceptMatchesAggregateForBothPipelines) {
  // The O(1) per-report ingestion (SwEstimator::OutputBucketOf) must place
  // every report in exactly the bucket the batch Aggregate path uses.
  for (const auto pipeline :
       {SwEstimatorOptions::Pipeline::kRandomizeBeforeBucketize,
        SwEstimatorOptions::Pipeline::kBucketizeBeforeRandomize}) {
    SwEstimatorOptions options = TestOptions();
    options.pipeline = pipeline;
    StreamingAggregator agg = StreamingAggregator::Make(options).ValueOrDie();
    Rng rng(23);
    std::vector<double> reports;
    for (int i = 0; i < 5000; ++i) {
      reports.push_back(agg.estimator().PerturbOne(rng.Uniform(), rng));
      agg.Accept(reports.back());
    }
    EXPECT_EQ(agg.counts(), agg.estimator().Aggregate(reports));
  }
}

TEST(StreamingAggregatorTest, SnapshotQualityImprovesWithData) {
  const SwEstimatorOptions options = TestOptions();
  StreamingAggregator agg = StreamingAggregator::Make(options).ValueOrDie();
  Rng rng(4);
  std::vector<double> values;
  const auto ingest = [&](size_t count) {
    for (size_t i = 0; i < count; ++i) {
      const double v = rng.Beta(5.0, 2.0);
      values.push_back(v);
      agg.Accept(agg.estimator().PerturbOne(v, rng));
    }
  };
  ingest(2000);
  const std::vector<double> small_truth = hist::FromSamples(values, 64);
  const double w1_small = WassersteinDistance(
      small_truth, agg.Snapshot().ValueOrDie().estimate);
  ingest(60000);
  const std::vector<double> big_truth = hist::FromSamples(values, 64);
  const double w1_big =
      WassersteinDistance(big_truth, agg.Snapshot().ValueOrDie().estimate);
  EXPECT_LT(w1_big, w1_small);
}

}  // namespace
}  // namespace numdist
