#include "hierarchy/admm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/histogram.h"
#include "hierarchy/constrained.h"
#include "hierarchy/hh.h"

namespace numdist {
namespace {

// Consistent, normalized node vector from given leaves (must sum to 1).
std::vector<double> NodesFromLeaves(const HierarchyTree& t,
                                    const std::vector<double>& leaves) {
  std::vector<double> nodes(t.NumNodes(), 0.0);
  for (size_t level = 0; level <= t.height(); ++level) {
    for (size_t i = 0; i < t.LevelSize(level); ++i) {
      const auto [s, e] = t.LeafSpan(level, i);
      for (size_t leaf = s; leaf < e; ++leaf) {
        nodes[t.FlatIndex(level, i)] += leaves[leaf];
      }
    }
  }
  return nodes;
}

TEST(HhAdmmTest, RejectsWrongSize) {
  const HierarchyTree t = HierarchyTree::Make(16, 4).ValueOrDie();
  EXPECT_FALSE(HhAdmm(t, std::vector<double>(3, 0.0)).ok());
}

TEST(HhAdmmTest, RejectsZeroIterations) {
  const HierarchyTree t = HierarchyTree::Make(16, 4).ValueOrDie();
  AdmmOptions opts;
  opts.max_iterations = 0;
  EXPECT_FALSE(HhAdmm(t, std::vector<double>(t.NumNodes(), 0.0), opts).ok());
}

TEST(HhAdmmTest, CleanInputIsFixedPoint) {
  const HierarchyTree t = HierarchyTree::Make(16, 4).ValueOrDie();
  std::vector<double> leaves(16, 1.0 / 16.0);
  const std::vector<double> nodes = NodesFromLeaves(t, leaves);
  const AdmmResult res = HhAdmm(t, nodes).ValueOrDie();
  EXPECT_TRUE(res.converged);
  for (size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_NEAR(res.node_values[i], nodes[i], 1e-5) << "i=" << i;
  }
}

TEST(HhAdmmTest, OutputLeavesAreDistribution) {
  const HierarchyTree t = HierarchyTree::Make(64, 4).ValueOrDie();
  Rng rng(1);
  std::vector<double> noisy(t.NumNodes());
  for (double& v : noisy) v = rng.Uniform(-0.3, 0.6);
  noisy[0] = 1.0;
  const AdmmResult res = HhAdmm(t, noisy).ValueOrDie();
  EXPECT_EQ(res.distribution.size(), 64u);
  EXPECT_TRUE(hist::IsDistribution(res.distribution, 1e-9));
}

TEST(HhAdmmTest, OutputIsNearlyConsistent) {
  const HierarchyTree t = HierarchyTree::Make(64, 4).ValueOrDie();
  Rng rng(2);
  std::vector<double> leaves(64);
  double total = 0.0;
  for (double& v : leaves) {
    v = rng.Uniform();
    total += v;
  }
  for (double& v : leaves) v /= total;
  std::vector<double> noisy = NodesFromLeaves(t, leaves);
  for (double& v : noisy) v += 0.02 * rng.Gaussian();
  noisy[0] = 1.0;
  const AdmmResult res = HhAdmm(t, noisy).ValueOrDie();
  EXPECT_LT(ConsistencyResidual(t, res.node_values), 1e-3);
}

TEST(HhAdmmTest, ImprovesLeafAccuracyOverRawNoisyTree) {
  const HierarchyTree t = HierarchyTree::Make(64, 4).ValueOrDie();
  Rng rng(3);
  std::vector<double> leaves(64);
  double total = 0.0;
  for (double& v : leaves) {
    v = rng.Uniform();
    total += v;
  }
  for (double& v : leaves) v /= total;

  double err_raw = 0.0;
  double err_admm = 0.0;
  for (int rep = 0; rep < 8; ++rep) {
    std::vector<double> noisy = NodesFromLeaves(t, leaves);
    for (size_t i = 1; i < noisy.size(); ++i) noisy[i] += 0.03 * rng.Gaussian();
    noisy[0] = 1.0;
    const AdmmResult res = HhAdmm(t, noisy).ValueOrDie();
    const size_t off = t.LevelOffset(t.height());
    for (size_t leaf = 0; leaf < 64; ++leaf) {
      const double dr = noisy[off + leaf] - leaves[leaf];
      const double da = res.distribution[leaf] - leaves[leaf];
      err_raw += dr * dr;
      err_admm += da * da;
    }
  }
  EXPECT_LT(err_admm, err_raw);
}

TEST(HhAdmmTest, EndToEndWithHhProtocol) {
  const size_t d = 64;
  const HhProtocol hh = HhProtocol::Make(1.0, d, 4).ValueOrDie();
  Rng rng(4);
  // Skewed distribution.
  std::vector<uint32_t> values;
  for (int i = 0; i < 40000; ++i) {
    values.push_back(
        static_cast<uint32_t>(rng.UniformInt(rng.Bernoulli(0.7) ? d / 4 : d)));
  }
  const std::vector<double> noisy = hh.CollectNodeEstimates(values, rng);
  const AdmmResult res = HhAdmm(hh.tree(), noisy).ValueOrDie();
  EXPECT_TRUE(hist::IsDistribution(res.distribution, 1e-9));
  // The first quarter of the domain should hold much more mass than the last.
  double first = 0.0;
  double last = 0.0;
  for (size_t i = 0; i < d / 4; ++i) first += res.distribution[i];
  for (size_t i = 3 * d / 4; i < d; ++i) last += res.distribution[i];
  EXPECT_GT(first, last + 0.2);
}

TEST(HhAdmmTest, ReportsIterations) {
  const HierarchyTree t = HierarchyTree::Make(16, 4).ValueOrDie();
  Rng rng(5);
  std::vector<double> noisy(t.NumNodes());
  for (double& v : noisy) v = rng.Uniform(-0.2, 0.5);
  AdmmOptions opts;
  opts.max_iterations = 5;
  opts.tol = 0.0;
  const AdmmResult res = HhAdmm(t, noisy, opts).ValueOrDie();
  EXPECT_EQ(res.iterations, 5u);
  EXPECT_FALSE(res.converged);
}

}  // namespace
}  // namespace numdist
