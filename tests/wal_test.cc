// Write-ahead log guarantees (serve/wal.h): replaying ANY truncation of a
// log yields the state of an intact record prefix with a typed torn-tail
// error (never a crash, never garbage state), checkpoint compaction is
// state-preserving, replay is deterministic, and tenant routing survives
// the log round trip. The cross-process SIGKILL variant of these claims
// lives in tests/wal_process_test.cc.
#include "serve/wal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "data/datasets.h"
#include "protocol/sharded.h"
#include "serve/collector.h"
#include "wire/wire.h"

namespace numdist {
namespace {

wire::MethodSpec TestSpec() {
  return wire::ParseMethodSpec("sw-ems", 1.0, 16).ValueOrDie();
}

// One seeded report frame per shard, optionally tenant-tagged.
std::vector<std::string> MakeReportFrames(const wire::MethodSpec& spec,
                                          size_t shards, size_t shard_size,
                                          uint64_t seed,
                                          uint32_t tenant = wire::kDefaultTenant) {
  auto protocol = wire::MakeProtocolForSpec(spec).ValueOrDie();
  const std::vector<double> values = GoldenRatioValues(shards * shard_size);
  std::vector<std::string> frames;
  for (size_t i = 0; i < shards; ++i) {
    Rng rng(ShardSeed(seed, i));
    auto chunk = protocol
                     ->EncodePerturbBatch(std::span<const double>(values)
                                              .subspan(i * shard_size,
                                                       shard_size),
                                          rng)
                     .ValueOrDie();
    std::string frame;
    const Status st =
        wire::EncodeReportFrame(spec, tenant, *protocol, *chunk, &frame);
    EXPECT_TRUE(st.ok()) << st.ToString();
    frames.push_back(frame);
  }
  return frames;
}

bool SameState(const AccumulatorState& a, const AccumulatorState& b) {
  if (a.num_reports != b.num_reports) return false;
  if (a.tables.size() != b.tables.size()) return false;
  for (size_t t = 0; t < a.tables.size(); ++t) {
    if (a.tables[t].n != b.tables[t].n) return false;
    if (a.tables[t].counts != b.tables[t].counts) return false;
  }
  return true;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// Builds a frame-record-only log (no checkpoint cadence) holding `frames`.
void BuildLog(const std::string& path, const std::vector<std::string>& frames) {
  std::remove(path.c_str());
  serve::CollectorSession session =
      serve::CollectorSession::Make(TestSpec()).ValueOrDie();
  auto stats = session.RecoverAndAttachWal(path);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  for (const std::string& frame : frames) {
    const Status st = session.HandleFrame(frame);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
}

// Replays a log into a fresh session; returns the session + stats.
struct ReplayedSession {
  serve::CollectorSession session;
  serve::WalReplayStats stats;
};
ReplayedSession Replay(const std::string& path) {
  serve::CollectorSession session =
      serve::CollectorSession::Make(TestSpec()).ValueOrDie();
  auto stats = session.RecoverAndAttachWal(path);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  return {std::move(session),
          stats.ok() ? stats.value() : serve::WalReplayStats{}};
}

// The headline sweep: truncate the log at EVERY byte length and replay.
// Each truncation must recover the state of some intact record prefix,
// report the cut as a typed torn-tail error (except on record
// boundaries), and never hard-fail or crash.
TEST(WalTest, EveryByteTruncationYieldsAPrefixState) {
  const wire::MethodSpec spec = TestSpec();
  const std::vector<std::string> frames =
      MakeReportFrames(spec, /*shards=*/5, /*shard_size=*/20, /*seed=*/11);

  const std::string log_path = TempPath("wal_sweep.wal");
  BuildLog(log_path, frames);
  const std::string log_bytes = ReadFileBytes(log_path);
  ASSERT_GT(log_bytes.size(), serve::kWalHeaderBytes);

  // Expected state after each intact frame prefix.
  std::vector<AccumulatorState> prefix_states;
  {
    serve::CollectorSession acc =
        serve::CollectorSession::Make(spec).ValueOrDie();
    prefix_states.push_back(acc.ExportState());
    for (const std::string& frame : frames) {
      ASSERT_TRUE(acc.HandleFrame(frame).ok());
      prefix_states.push_back(acc.ExportState());
    }
  }

  const std::string cut_path = TempPath("wal_sweep_cut.wal");
  std::vector<bool> prefix_reached(frames.size() + 1, false);
  for (size_t len = 0; len <= log_bytes.size(); ++len) {
    WriteFileBytes(cut_path, log_bytes.substr(0, len));
    ReplayedSession replayed = Replay(cut_path);
    ASSERT_LE(replayed.stats.frames, frames.size()) << "cut at " << len;
    ASSERT_EQ(replayed.stats.checkpoints, 0u) << "cut at " << len;
    prefix_reached[replayed.stats.frames] = true;
    // The recovered state is exactly the intact prefix's state.
    ASSERT_TRUE(SameState(replayed.session.ExportState(),
                          prefix_states[replayed.stats.frames]))
        << "cut at " << len << " replayed " << replayed.stats.frames;
    if (!replayed.stats.tail.ok()) {
      EXPECT_EQ(replayed.stats.tail.code(), StatusCode::kOutOfRange)
          << "cut at " << len << ": " << replayed.stats.tail.ToString();
    } else {
      // An OK tail means the cut landed exactly on a record boundary.
      EXPECT_EQ(replayed.stats.clean_bytes, len) << "cut at " << len;
    }
    ASSERT_LE(replayed.stats.clean_bytes, len) << "cut at " << len;
  }
  // The sweep exercised every prefix length, 0 through all frames.
  for (size_t k = 0; k <= frames.size(); ++k) {
    EXPECT_TRUE(prefix_reached[k]) << "no truncation replayed to prefix " << k;
  }
  std::remove(log_path.c_str());
  std::remove(cut_path.c_str());
}

// After recovery from a torn log, the writer truncates the tail and new
// appends extend the clean prefix — a second replay sees old + new frames.
TEST(WalTest, TornTailIsTruncatedBeforeNewAppends) {
  const wire::MethodSpec spec = TestSpec();
  const std::vector<std::string> frames =
      MakeReportFrames(spec, /*shards=*/4, /*shard_size=*/20, /*seed=*/5);

  const std::string path = TempPath("wal_torn_append.wal");
  BuildLog(path, {frames[0], frames[1], frames[2]});
  std::string bytes = ReadFileBytes(path);
  // Cut inside the final record.
  WriteFileBytes(path, bytes.substr(0, bytes.size() - 3));

  ReplayedSession replayed = Replay(path);
  EXPECT_EQ(replayed.stats.frames, 2u);
  EXPECT_EQ(replayed.stats.tail.code(), StatusCode::kOutOfRange);
  ASSERT_TRUE(replayed.session.HandleFrame(frames[3]).ok());

  ReplayedSession again = Replay(path);
  EXPECT_EQ(again.stats.frames, 3u);
  EXPECT_TRUE(again.stats.tail.ok()) << again.stats.tail.ToString();
  serve::CollectorSession expect =
      serve::CollectorSession::Make(spec).ValueOrDie();
  ASSERT_TRUE(expect.HandleFrame(frames[0]).ok());
  ASSERT_TRUE(expect.HandleFrame(frames[1]).ok());
  ASSERT_TRUE(expect.HandleFrame(frames[3]).ok());
  EXPECT_TRUE(SameState(again.session.ExportState(), expect.ExportState()));
  std::remove(path.c_str());
}

// A flipped body byte fails the CRC: typed torn tail, prefix state kept.
TEST(WalTest, CorruptRecordIsATypedTornTail) {
  const std::vector<std::string> frames =
      MakeReportFrames(TestSpec(), /*shards=*/3, /*shard_size=*/20, /*seed=*/2);
  const std::string path = TempPath("wal_crc.wal");
  BuildLog(path, frames);
  std::string bytes = ReadFileBytes(path);
  bytes[bytes.size() - 1] ^= 0x40;  // inside the last record's body
  WriteFileBytes(path, bytes);

  ReplayedSession replayed = Replay(path);
  EXPECT_EQ(replayed.stats.frames, 2u);
  EXPECT_EQ(replayed.stats.tail.code(), StatusCode::kOutOfRange);
  EXPECT_NE(replayed.stats.tail.message().find("torn tail"),
            std::string::npos)
      << replayed.stats.tail.ToString();
  std::remove(path.c_str());
}

// A zero-filled tail (preallocated blocks after a crash) cannot pass as a
// record: length 0 is classified as torn, even though CRC(empty) == 0.
TEST(WalTest, ZeroFilledTailIsATypedTornTail) {
  const std::vector<std::string> frames =
      MakeReportFrames(TestSpec(), /*shards=*/2, /*shard_size=*/20, /*seed=*/3);
  const std::string path = TempPath("wal_zeros.wal");
  BuildLog(path, frames);
  std::string bytes = ReadFileBytes(path);
  const uint64_t clean = bytes.size();
  bytes.append(64, '\0');
  WriteFileBytes(path, bytes);

  ReplayedSession replayed = Replay(path);
  EXPECT_EQ(replayed.stats.frames, 2u);
  EXPECT_EQ(replayed.stats.clean_bytes, clean);
  EXPECT_EQ(replayed.stats.tail.code(), StatusCode::kOutOfRange);
  std::remove(path.c_str());
}

// Corruption a torn write cannot explain is a HARD error, not a tail.
TEST(WalTest, BadMagicAndVersionSkewAreHardErrors) {
  const std::string path = TempPath("wal_magic.wal");
  WriteFileBytes(path, std::string("XXXX\x01\x00\x00\x00", 8));
  serve::WalConsumer consumer;
  auto bad_magic = serve::ReplayWal(path, consumer);
  ASSERT_FALSE(bad_magic.ok());
  EXPECT_EQ(bad_magic.status().code(), StatusCode::kInvalidArgument);

  WriteFileBytes(path, std::string("NDWL\x09\x00\x00\x00", 8));
  auto bad_version = serve::ReplayWal(path, consumer);
  ASSERT_FALSE(bad_version.ok());
  EXPECT_EQ(bad_version.status().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

// A missing file is an empty log, not an error (first boot).
TEST(WalTest, MissingFileIsAnEmptyLog) {
  const std::string path = TempPath("wal_missing_never_created.wal");
  std::remove(path.c_str());
  serve::WalConsumer consumer;
  auto stats = serve::ReplayWal(path, consumer);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().frames, 0u);
  EXPECT_EQ(stats.value().clean_bytes, 0u);
  EXPECT_TRUE(stats.value().tail.ok());
}

// Compaction (checkpoint + truncate) replays to the identical state, and
// the periodic cadence compacts mid-stream without perturbing anything.
TEST(WalTest, CheckpointCompactionPreservesState) {
  const wire::MethodSpec spec = TestSpec();
  const std::vector<std::string> frames =
      MakeReportFrames(spec, /*shards=*/6, /*shard_size=*/20, /*seed=*/17);
  const std::string plain_path = TempPath("wal_plain.wal");
  const std::string compact_path = TempPath("wal_compact.wal");
  std::remove(plain_path.c_str());
  std::remove(compact_path.c_str());

  BuildLog(plain_path, frames);

  // Same frames through a log that compacts every 2 frames.
  serve::CollectorSession compacting =
      serve::CollectorSession::Make(spec).ValueOrDie();
  serve::WalOptions options;
  options.checkpoint_every_frames = 2;
  ASSERT_TRUE(compacting.RecoverAndAttachWal(compact_path, options).ok());
  for (const std::string& frame : frames) {
    ASSERT_TRUE(compacting.HandleFrame(frame).ok());
  }

  ReplayedSession from_plain = Replay(plain_path);
  ReplayedSession from_compact = Replay(compact_path);
  EXPECT_EQ(from_plain.stats.frames, frames.size());
  EXPECT_GE(from_compact.stats.checkpoints, 1u);
  EXPECT_LT(from_compact.stats.frames, frames.size());
  EXPECT_TRUE(SameState(from_plain.session.ExportState(),
                        from_compact.session.ExportState()));
  // And both equal the live sessions' state and sketch bytes.
  EXPECT_TRUE(SameState(from_compact.session.ExportState(),
                        compacting.ExportState()));
  EXPECT_EQ(from_plain.session.EncodeSketch().ValueOrDie(),
            compacting.EncodeSketch().ValueOrDie());
  // The compacted log is the smaller one (6 frame records vs a
  // checkpoint plus at most 1 trailing frame).
  EXPECT_LT(ReadFileBytes(compact_path).size(),
            ReadFileBytes(plain_path).size() + frames.back().size());
  std::remove(plain_path.c_str());
  std::remove(compact_path.c_str());
}

// Replay is deterministic: for several seeds, two independent replays of
// the same log produce byte-identical sketches.
TEST(WalTest, ReplayIsDeterministicAcrossSeeds) {
  const wire::MethodSpec spec = TestSpec();
  for (const uint64_t seed : {1u, 2u, 3u}) {
    const std::vector<std::string> frames =
        MakeReportFrames(spec, /*shards=*/4, /*shard_size=*/25, seed);
    const std::string path =
        TempPath("wal_seed_" + std::to_string(seed) + ".wal");
    BuildLog(path, frames);

    ReplayedSession a = Replay(path);
    ReplayedSession b = Replay(path);
    EXPECT_EQ(a.stats.frames, frames.size()) << "seed " << seed;
    EXPECT_EQ(a.stats.frames, b.stats.frames) << "seed " << seed;
    EXPECT_EQ(a.stats.clean_bytes, b.stats.clean_bytes) << "seed " << seed;
    EXPECT_TRUE(SameState(a.session.ExportState(), b.session.ExportState()))
        << "seed " << seed;
    EXPECT_EQ(a.session.EncodeSketch().ValueOrDie(),
              b.session.EncodeSketch().ValueOrDie())
        << "seed " << seed;
    std::remove(path.c_str());
  }
}

// Tenant routing survives the log: tagged frames replay into the same
// per-tenant accumulators, through both frame records and checkpoints.
TEST(WalTest, TenantRoutingSurvivesReplayAndCompaction) {
  const wire::MethodSpec spec = TestSpec();
  const std::vector<std::string> def_frames =
      MakeReportFrames(spec, /*shards=*/2, /*shard_size=*/20, /*seed=*/8);
  const std::vector<std::string> t5_frames = MakeReportFrames(
      spec, /*shards=*/2, /*shard_size=*/20, /*seed=*/9, /*tenant=*/5);
  const std::vector<std::string> t9_frames = MakeReportFrames(
      spec, /*shards=*/1, /*shard_size=*/20, /*seed=*/10, /*tenant=*/9);

  const std::string path = TempPath("wal_tenants.wal");
  std::remove(path.c_str());
  serve::CollectorSession live =
      serve::CollectorSession::Make(spec).ValueOrDie();
  ASSERT_TRUE(live.RecoverAndAttachWal(path).ok());
  for (const auto* frames : {&def_frames, &t5_frames, &t9_frames}) {
    for (const std::string& frame : *frames) {
      ASSERT_TRUE(live.HandleFrame(frame).ok());
    }
  }

  ReplayedSession replayed = Replay(path);
  EXPECT_EQ(replayed.session.TenantIds(), (std::vector<uint32_t>{5, 9}));
  for (const uint32_t tenant : {wire::kDefaultTenant, 5u, 9u}) {
    EXPECT_TRUE(SameState(
        replayed.session.ExportTenantState(tenant).ValueOrDie(),
        live.ExportTenantState(tenant).ValueOrDie()))
        << "tenant " << tenant;
  }
  EXPECT_EQ(replayed.session.EncodeSketches().ValueOrDie(),
            live.EncodeSketches().ValueOrDie());

  // Compact (checkpoint currency = per-tenant sketches) and replay again.
  ASSERT_TRUE(replayed.session.CompactWal().ok());
  ReplayedSession after_compact = Replay(path);
  EXPECT_EQ(after_compact.stats.checkpoints, 1u);
  EXPECT_EQ(after_compact.stats.frames, 0u);
  EXPECT_EQ(after_compact.session.TenantIds(),
            (std::vector<uint32_t>{5, 9}));
  EXPECT_EQ(after_compact.session.EncodeSketches().ValueOrDie(),
            live.EncodeSketches().ValueOrDie());
  std::remove(path.c_str());
}

// Budget accounting is restored from the log: a tenant that exhausted its
// budget before the crash is still over budget after recovery.
TEST(WalTest, BudgetsAreRestoredByReplay) {
  const wire::MethodSpec spec = TestSpec();
  const std::vector<std::string> frames = MakeReportFrames(
      spec, /*shards=*/2, /*shard_size=*/20, /*seed=*/4, /*tenant=*/3);
  const std::string path = TempPath("wal_budget.wal");
  std::remove(path.c_str());

  serve::CollectorSession live =
      serve::CollectorSession::Make(spec).ValueOrDie();
  live.SetTenantBudget(3, {.max_reports = 40});
  ASSERT_TRUE(live.RecoverAndAttachWal(path).ok());
  ASSERT_TRUE(live.HandleFrame(frames[0]).ok());
  ASSERT_TRUE(live.HandleFrame(frames[1]).ok());

  serve::CollectorSession restarted =
      serve::CollectorSession::Make(spec).ValueOrDie();
  restarted.SetTenantBudget(3, {.max_reports = 40});
  ASSERT_TRUE(restarted.RecoverAndAttachWal(path).ok());
  EXPECT_EQ(restarted.ledger()->spent_reports(3), 40u);
  const std::vector<std::string> more = MakeReportFrames(
      spec, /*shards=*/1, /*shard_size=*/20, /*seed=*/6, /*tenant=*/3);
  const Status over = restarted.HandleFrame(more[0]);
  EXPECT_EQ(over.code(), StatusCode::kFailedPrecondition)
      << over.ToString();
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Segmented layout (WalOptions::segment_bytes > 0): rotation, replay
// across a segment directory, the hardened gap / sealed-torn taxonomy,
// compaction GC, and the exactly-once dedup-window checkpoint.

std::vector<std::string> SegmentFiles(const std::string& dir) {
  std::vector<std::string> names;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

// A fresh (removed-then-absent) segment-directory path under TempDir.
std::string TempSegDir(const std::string& name) {
  const std::string dir = testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// Small segments so a handful of report frames forces several rotations.
constexpr uint64_t kTestSegmentBytes = 1024;

// Builds a segmented frame-only log and returns the live session's state.
AccumulatorState BuildSegmentedLog(const std::string& dir,
                                   const std::vector<std::string>& frames) {
  serve::CollectorSession session =
      serve::CollectorSession::Make(TestSpec()).ValueOrDie();
  auto stats = session.RecoverAndAttachWal(
      dir, {.segment_bytes = kTestSegmentBytes});
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  for (const std::string& frame : frames) {
    const Status st = session.HandleFrame(frame);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  return session.ExportState();
}

TEST(WalSegmentTest, RotationReplaysAcrossAContiguousSegmentRun) {
  const std::string dir = TempSegDir("wal_seg_rotate");
  const std::vector<std::string> frames =
      MakeReportFrames(TestSpec(), /*shards=*/8, /*shard_size=*/50,
                       /*seed=*/21);
  const AccumulatorState live = BuildSegmentedLog(dir, frames);

  // The writer rotated: several contiguous 1-based segments exist.
  const std::vector<std::string> files = SegmentFiles(dir);
  ASSERT_GT(files.size(), 1u) << "no rotation at segment_bytes="
                              << kTestSegmentBytes;
  EXPECT_EQ(files.front(), "wal-00000001.ndwl");
  char expected[32];
  std::snprintf(expected, sizeof(expected), "wal-%08zu.ndwl", files.size());
  EXPECT_EQ(files.back(), expected);

  // Replay walks the whole run and reproduces the exact state.
  serve::CollectorSession restarted =
      serve::CollectorSession::Make(TestSpec()).ValueOrDie();
  auto stats = restarted.RecoverAndAttachWal(
      dir, {.segment_bytes = kTestSegmentBytes});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->frames, frames.size());
  EXPECT_EQ(stats->segments, files.size());
  EXPECT_TRUE(stats->tail.ok()) << stats->tail.ToString();
  EXPECT_TRUE(SameState(live, restarted.ExportState()));
  std::filesystem::remove_all(dir);
}

TEST(WalSegmentTest, NumberingGapIsAHardError) {
  const std::string dir = TempSegDir("wal_seg_gap");
  BuildSegmentedLog(dir, MakeReportFrames(TestSpec(), 8, 50, 22));
  const std::vector<std::string> files = SegmentFiles(dir);
  ASSERT_GT(files.size(), 2u);
  // Unlink a MIDDLE segment: no crash schedule can explain the hole.
  ASSERT_TRUE(std::filesystem::remove(dir + "/" + files[1]));

  serve::CollectorSession restarted =
      serve::CollectorSession::Make(TestSpec()).ValueOrDie();
  const auto stats = restarted.RecoverAndAttachWal(
      dir, {.segment_bytes = kTestSegmentBytes});
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(stats.status().message().find("gap"), std::string::npos)
      << stats.status().ToString();
  std::filesystem::remove_all(dir);
}

TEST(WalSegmentTest, TornTailTaxonomyIsPerSegment) {
  const std::string dir = TempSegDir("wal_seg_torn");
  const std::vector<std::string> frames =
      MakeReportFrames(TestSpec(), 8, 50, 23);
  BuildSegmentedLog(dir, frames);
  const std::vector<std::string> files = SegmentFiles(dir);
  ASSERT_GT(files.size(), 1u);

  // A cut in the FINAL segment is a crash shape: typed torn tail, the
  // intact prefix's state is kept.
  const std::string final_path = dir + "/" + files.back();
  const std::string final_bytes = ReadFileBytes(final_path);
  ASSERT_GT(final_bytes.size(), serve::kWalHeaderBytes + 3);
  WriteFileBytes(final_path,
                 final_bytes.substr(0, final_bytes.size() - 3));
  {
    serve::CollectorSession restarted =
        serve::CollectorSession::Make(TestSpec()).ValueOrDie();
    const auto stats = restarted.RecoverAndAttachWal(
        dir, {.segment_bytes = kTestSegmentBytes});
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_FALSE(stats->tail.ok()) << "a cut final record must be typed";
    EXPECT_LT(stats->frames, frames.size());
    EXPECT_GT(stats->frames, 0u);
  }

  // The SAME cut in a sealed (non-final) segment is corruption a crash
  // cannot explain: hard error, no silent prefix state.
  const std::string sealed_path = dir + "/" + files.front();
  const std::string sealed_bytes = ReadFileBytes(sealed_path);
  WriteFileBytes(sealed_path,
                 sealed_bytes.substr(0, sealed_bytes.size() - 3));
  {
    serve::CollectorSession restarted =
        serve::CollectorSession::Make(TestSpec()).ValueOrDie();
    const auto stats = restarted.RecoverAndAttachWal(
        dir, {.segment_bytes = kTestSegmentBytes});
    ASSERT_FALSE(stats.ok());
    EXPECT_NE(stats.status().message().find("sealed"), std::string::npos)
        << stats.status().ToString();
  }
  std::filesystem::remove_all(dir);
}

TEST(WalSegmentTest, CompactionCollapsesToOneFreshSegment) {
  const std::string dir = TempSegDir("wal_seg_compact");
  const std::vector<std::string> frames =
      MakeReportFrames(TestSpec(), 8, 50, 24);

  serve::CollectorSession session =
      serve::CollectorSession::Make(TestSpec()).ValueOrDie();
  ASSERT_TRUE(session
                  .RecoverAndAttachWal(dir,
                                       {.segment_bytes = kTestSegmentBytes})
                  .ok());
  for (const std::string& frame : frames) {
    ASSERT_TRUE(session.HandleFrame(frame).ok());
  }
  const size_t before = SegmentFiles(dir).size();
  ASSERT_GT(before, 1u);
  ASSERT_TRUE(session.CompactWal().ok());

  // GC left exactly one segment — the fresh checkpoint segment, numbered
  // PAST the sealed run (the numbering never reuses a unlinked slot).
  const std::vector<std::string> files = SegmentFiles(dir);
  ASSERT_EQ(files.size(), 1u);
  char expected[32];
  std::snprintf(expected, sizeof(expected), "wal-%08zu.ndwl", before + 1);
  EXPECT_EQ(files[0], expected);

  // The checkpoint replays to the exact pre-compaction state.
  serve::CollectorSession restarted =
      serve::CollectorSession::Make(TestSpec()).ValueOrDie();
  const auto stats = restarted.RecoverAndAttachWal(
      dir, {.segment_bytes = kTestSegmentBytes});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->frames, 0u);
  EXPECT_EQ(stats->checkpoints, 1u);
  EXPECT_TRUE(SameState(session.ExportState(), restarted.ExportState()));
  std::filesystem::remove_all(dir);
}

// The exactly-once window survives BOTH recovery paths: frame replay
// re-claims each logged (epoch, seq), and compaction persists the window
// as a type-3 record that replay restores.
TEST(WalSegmentTest, DedupWindowSurvivesReplayAndCompaction) {
  const std::string dir = TempSegDir("wal_seg_dedup");
  std::vector<std::string> frames =
      MakeReportFrames(TestSpec(), 4, 50, 25);
  for (size_t i = 0; i < frames.size(); ++i) {
    ASSERT_TRUE(wire::StampSequenceContext(
                    &frames[i], {.epoch = 9, .seq = i + 1})
                    .ok());
  }

  serve::CollectorSession session =
      serve::CollectorSession::Make(TestSpec()).ValueOrDie();
  ASSERT_TRUE(session
                  .RecoverAndAttachWal(dir,
                                       {.segment_bytes = kTestSegmentBytes})
                  .ok());
  for (const std::string& frame : frames) {
    serve::FrameOutcome outcome;
    ASSERT_TRUE(session.HandleFrame(frame, &outcome).ok());
    EXPECT_TRUE(outcome.absorbed);
    EXPECT_FALSE(outcome.duplicate);
  }

  // Path 1: crash before any compaction — frame replay re-claims seqs,
  // so a full client retransmission dedups to a no-op.
  {
    serve::CollectorSession restarted =
        serve::CollectorSession::Make(TestSpec()).ValueOrDie();
    ASSERT_TRUE(restarted
                    .RecoverAndAttachWal(
                        dir, {.segment_bytes = kTestSegmentBytes})
                    .ok());
    const AccumulatorState recovered = restarted.ExportState();
    for (const std::string& frame : frames) {
      serve::FrameOutcome outcome;
      ASSERT_TRUE(restarted.HandleFrame(frame, &outcome).ok());
      EXPECT_TRUE(outcome.duplicate) << "replayed seq must be claimed";
      EXPECT_TRUE(outcome.has_seq);
      EXPECT_FALSE(outcome.absorbed);
    }
    EXPECT_TRUE(SameState(recovered, restarted.ExportState()));
  }

  // Path 2: compaction replaces the frame records with a checkpoint +
  // type-3 dedup record; the window must survive that representation too.
  ASSERT_TRUE(session.CompactWal().ok());
  {
    serve::CollectorSession restarted =
        serve::CollectorSession::Make(TestSpec()).ValueOrDie();
    const auto stats = restarted.RecoverAndAttachWal(
        dir, {.segment_bytes = kTestSegmentBytes});
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->seq_checkpoints, 1u);
    for (const std::string& frame : frames) {
      serve::FrameOutcome outcome;
      ASSERT_TRUE(restarted.HandleFrame(frame, &outcome).ok());
      EXPECT_TRUE(outcome.duplicate);
    }
    // A genuinely new sequence number still absorbs.
    std::vector<std::string> fresh =
        MakeReportFrames(TestSpec(), 1, 50, 26);
    ASSERT_TRUE(wire::StampSequenceContext(
                    &fresh[0],
                    {.epoch = 9, .seq = frames.size() + 1})
                    .ok());
    serve::FrameOutcome outcome;
    ASSERT_TRUE(restarted.HandleFrame(fresh[0], &outcome).ok());
    EXPECT_TRUE(outcome.absorbed);
    EXPECT_FALSE(outcome.duplicate);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace numdist
