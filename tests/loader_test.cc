#include "data/loader.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace numdist {
namespace {

TEST(LoaderTest, ParsesOneValuePerLine) {
  LoadOptions options;
  options.min_value = 0.0;
  options.max_value = 10.0;
  const auto values =
      ParseNumericColumn("1.0\n5.0\n9.0\n", options).ValueOrDie();
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[0], 0.1);
  EXPECT_DOUBLE_EQ(values[1], 0.5);
  EXPECT_DOUBLE_EQ(values[2], 0.9);
}

TEST(LoaderTest, FiltersOutOfRangeValues) {
  LoadOptions options;
  options.min_value = 0.0;
  options.max_value = 100.0;
  const auto values =
      ParseNumericColumn("-5\n50\n100\n150\n", options).ValueOrDie();
  // -5 below, 100 and 150 at/above max are dropped.
  ASSERT_EQ(values.size(), 1u);
  EXPECT_DOUBLE_EQ(values[0], 0.5);
}

TEST(LoaderTest, ReadsChosenCsvColumn) {
  LoadOptions options;
  options.min_value = 0.0;
  options.max_value = 1000.0;
  options.column = 2;
  const auto values =
      ParseNumericColumn("a,b,100,c\nd,e,900,f\n", options).ValueOrDie();
  ASSERT_EQ(values.size(), 2u);
  EXPECT_DOUBLE_EQ(values[0], 0.1);
  EXPECT_DOUBLE_EQ(values[1], 0.9);
}

TEST(LoaderTest, SkipsHeaderAndJunkRows) {
  LoadOptions options;
  options.min_value = 0.0;
  options.max_value = 10.0;
  options.skip_header = true;
  const auto values =
      ParseNumericColumn("value\n3\nnot_a_number\n\n7\n", options)
          .ValueOrDie();
  ASSERT_EQ(values.size(), 2u);
  EXPECT_DOUBLE_EQ(values[0], 0.3);
  EXPECT_DOUBLE_EQ(values[1], 0.7);
}

TEST(LoaderTest, ShortRowsSkippedForHighColumns) {
  LoadOptions options;
  options.min_value = 0.0;
  options.max_value = 10.0;
  options.column = 3;
  const auto result = ParseNumericColumn("1,2\n1,2,3,4\n", options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), 1u);
  EXPECT_DOUBLE_EQ(result.value()[0], 0.4);
}

TEST(LoaderTest, RejectsInvertedRange) {
  LoadOptions options;
  options.min_value = 5.0;
  options.max_value = 5.0;
  EXPECT_FALSE(ParseNumericColumn("1\n", options).ok());
}

TEST(LoaderTest, RejectsEmptyResult) {
  LoadOptions options;
  options.min_value = 0.0;
  options.max_value = 1.0;
  EXPECT_FALSE(ParseNumericColumn("junk\nmore junk\n", options).ok());
}

TEST(LoaderTest, LoadsFromDisk) {
  const std::string path = ::testing::TempDir() + "/loader_test_data.csv";
  {
    std::ofstream out(path);
    out << "salary\n42000\n58000\n999999999\n";
  }
  LoadOptions options;
  options.min_value = 0.0;
  options.max_value = 524288.0;  // the paper's income clip
  options.skip_header = true;
  const auto values = LoadNumericFile(path, options).ValueOrDie();
  ASSERT_EQ(values.size(), 2u);
  EXPECT_NEAR(values[0], 42000.0 / 524288.0, 1e-12);
  std::remove(path.c_str());
}

TEST(LoaderTest, MissingFileIsError) {
  EXPECT_FALSE(LoadNumericFile("/nonexistent/file.csv", LoadOptions()).ok());
}

}  // namespace
}  // namespace numdist
