#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace numdist {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
}

TEST(StatusTest, InvalidArgumentCarriesMessage) {
  Status st = Status::InvalidArgument("epsilon must be > 0");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "epsilon must be > 0");
  EXPECT_EQ(st.ToString(), "InvalidArgument: epsilon must be > 0");
}

TEST(StatusTest, AllErrorFactories) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotConverged("x").code(), StatusCode::kNotConverged);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_EQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeName(StatusCode::kFailedPrecondition),
            "FailedPrecondition");
  EXPECT_EQ(StatusCodeName(StatusCode::kNotConverged), "NotConverged");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::Internal("a"), Status::Internal("a"));
  EXPECT_FALSE(Status::Internal("a") == Status::Internal("b"));
  EXPECT_FALSE(Status::Internal("a") == Status::InvalidArgument("a"));
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    NUMDIST_RETURN_NOT_OK(Status::Internal("inner"));
    return Status::OK();
  };
  EXPECT_EQ(fails().code(), StatusCode::kInternal);

  auto succeeds = []() -> Status {
    NUMDIST_RETURN_NOT_OK(Status::OK());
    return Status::InvalidArgument("reached");
  };
  EXPECT_EQ(succeeds().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.status().message(), "bad");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  ASSERT_TRUE(r.ok());
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(ResultTest, MutableAccess) {
  Result<std::vector<int>> r(std::vector<int>{1, 2});
  r->push_back(3);
  EXPECT_EQ(r.value().size(), 3u);
}

TEST(ResultTest, ValueOrDieOnSuccess) {
  EXPECT_EQ(Result<int>(7).ValueOrDie(), 7);
}

}  // namespace
}  // namespace numdist
