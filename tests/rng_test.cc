#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace numdist {
namespace {

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanAndVariance) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.Uniform();
    sum += u;
    sq += u * u;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-2.5, 3.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 3.5);
  }
}

TEST(RngTest, UniformIntRange) {
  Rng rng(17);
  std::set<uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.UniformInt(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all categories hit
}

TEST(RngTest, UniformIntIsUnbiased) {
  Rng rng(19);
  const uint64_t k = 5;
  std::vector<int> counts(k, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(k)];
  for (uint64_t v = 0; v < k; ++v) {
    EXPECT_NEAR(static_cast<double>(counts[v]) / n, 1.0 / k, 0.01);
  }
}

TEST(RngTest, UniformIntOne) {
  Rng rng(23);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(1), 0u);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliDegenerate) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(37);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, GammaMoments) {
  Rng rng(41);
  const double shape = 3.5;
  double sum = 0.0;
  double sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gamma(shape);
    EXPECT_GT(g, 0.0);
    sum += g;
    sq += g * g;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, shape, 0.05);                        // E[Gamma(k,1)] = k
  EXPECT_NEAR(sq / n - mean * mean, shape, 0.15);        // Var = k
}

TEST(RngTest, GammaSmallShape) {
  Rng rng(43);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gamma(0.5);
    EXPECT_GT(g, 0.0);
    sum += g;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, BetaMomentsMatchTheory) {
  Rng rng(47);
  const double a = 5.0;
  const double b = 2.0;
  double sum = 0.0;
  double sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Beta(a, b);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, a / (a + b), 0.005);  // 5/7
  EXPECT_NEAR(var, a * b / ((a + b) * (a + b) * (a + b + 1.0)), 0.002);
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(53);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.Discrete(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(59);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() == child.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(DiscreteSamplerTest, MatchesWeights) {
  std::vector<double> weights = {0.1, 0.4, 0.0, 0.5};
  DiscreteSampler sampler(weights);
  EXPECT_EQ(sampler.size(), 4u);
  Rng rng(61);
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Sample(rng)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.4, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[3]) / n, 0.5, 0.01);
}

TEST(DiscreteSamplerTest, SingleCategory) {
  DiscreteSampler sampler({2.0});
  Rng rng(67);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sampler.Sample(rng), 0u);
}

TEST(DiscreteSamplerTest, UniformWeights) {
  DiscreteSampler sampler(std::vector<double>(8, 1.0));
  Rng rng(71);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Sample(rng)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.125, 0.01);
  }
}

// Bulk generation contract (rng.h): each Fill* call consumes the same
// stream in the same draw order as the equivalent loop of single draws —
// identical outputs AND identical engine state afterwards.

TEST(RngBulkTest, FillRawMatchesSequentialNext) {
  Rng bulk(303);
  Rng single(303);
  std::vector<uint64_t> out(1000);
  bulk.FillRaw(out.data(), out.size());
  for (uint64_t v : out) EXPECT_EQ(v, single.Next());
  EXPECT_EQ(bulk.Next(), single.Next());  // same state afterwards
}

TEST(RngBulkTest, FillUniformMatchesSequentialUniform) {
  Rng bulk(307);
  Rng single(307);
  std::vector<double> out(1000);
  bulk.FillUniform(out.data(), out.size());
  for (double v : out) {
    const double want = single.Uniform();
    EXPECT_EQ(v, want);
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
  EXPECT_EQ(bulk.Next(), single.Next());
}

TEST(RngBulkTest, FillUniformIntMatchesSequentialUniformInt) {
  // Bounds covering the power-of-two fast case and rejection-prone odd
  // bounds.
  for (uint64_t bound : {uint64_t{1}, uint64_t{2}, uint64_t{7}, uint64_t{64},
                         uint64_t{1000003}}) {
    Rng bulk(311 + bound);
    Rng single(311 + bound);
    std::vector<uint64_t> out(500);
    bulk.FillUniformInt(out.data(), out.size(), bound);
    for (uint64_t v : out) {
      EXPECT_EQ(v, single.UniformInt(bound));
      EXPECT_LT(v, bound);
    }
    EXPECT_EQ(bulk.Next(), single.Next()) << "bound " << bound;
  }
}

TEST(RngBulkTest, FillBernoulliMatchesSequentialBernoulli) {
  for (double p : {0.0, 0.25, 0.5, 0.999, 1.0}) {
    Rng bulk(331);
    Rng single(331);
    // Cross the internal chunk boundary (256) to cover the stitching.
    std::vector<uint8_t> out(700);
    bulk.FillBernoulli(out.data(), out.size(), p);
    for (uint8_t v : out) {
      EXPECT_EQ(v, single.Bernoulli(p) ? 1 : 0) << "p=" << p;
    }
    EXPECT_EQ(bulk.Next(), single.Next()) << "p=" << p;
  }
}

TEST(SplitMix64Test, KnownAvalanche) {
  // Adjacent inputs must produce unrelated outputs.
  const uint64_t a = SplitMix64(1);
  const uint64_t b = SplitMix64(2);
  EXPECT_NE(a, b);
  EXPECT_GT(__builtin_popcountll(a ^ b), 16);
}

}  // namespace
}  // namespace numdist
