// Robustness / adversarial-input suite: the estimators must stay numerically
// sane at the extremes a deployment will eventually hit — tiny cohorts,
// extreme privacy budgets, degenerate (point-mass) data, adversarially spiky
// observations, and pathological post-processing inputs.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "common/histogram.h"
#include "core/ems.h"
#include "core/sw_estimator.h"
#include "eval/incremental.h"
#include "eval/streaming.h"
#include "hierarchy/admm.h"
#include "hierarchy/hh.h"
#include "mean/moments.h"
#include "postprocess/norm_sub.h"
#include "scenario/attack.h"

namespace numdist {
namespace {

TEST(RobustnessTest, TinyCohortStillYieldsDistribution) {
  SwEstimatorOptions options;
  options.epsilon = 1.0;
  options.d = 64;
  const SwEstimator est = SwEstimator::Make(options).ValueOrDie();
  Rng rng(1);
  // Three users only.
  const std::vector<double> dist =
      est.EstimateDistribution({0.1, 0.5, 0.9}, rng).ValueOrDie();
  EXPECT_TRUE(hist::IsDistribution(dist, 1e-9));
}

TEST(RobustnessTest, SingleUser) {
  SwEstimatorOptions options;
  options.epsilon = 0.5;
  options.d = 16;
  const SwEstimator est = SwEstimator::Make(options).ValueOrDie();
  Rng rng(2);
  const std::vector<double> dist =
      est.EstimateDistribution({0.5}, rng).ValueOrDie();
  EXPECT_TRUE(hist::IsDistribution(dist, 1e-9));
}

TEST(RobustnessTest, ExtremePrivacyBudgets) {
  for (double eps : {0.01, 10.0}) {
    SwEstimatorOptions options;
    options.epsilon = eps;
    options.d = 32;
    const SwEstimator est = SwEstimator::Make(options).ValueOrDie();
    Rng rng(3);
    std::vector<double> values;
    for (int i = 0; i < 5000; ++i) values.push_back(rng.Uniform());
    const std::vector<double> dist =
        est.EstimateDistribution(values, rng).ValueOrDie();
    EXPECT_TRUE(hist::IsDistribution(dist, 1e-9)) << "eps=" << eps;
  }
}

TEST(RobustnessTest, PointMassData) {
  // All users hold exactly the same value.
  SwEstimatorOptions options;
  options.epsilon = 3.0;
  options.d = 64;
  const SwEstimator est = SwEstimator::Make(options).ValueOrDie();
  Rng rng(4);
  const std::vector<double> values(20000, 0.25);
  const std::vector<double> dist =
      est.EstimateDistribution(values, rng).ValueOrDie();
  EXPECT_TRUE(hist::IsDistribution(dist, 1e-9));
  // Mass concentrates around bucket 16 (0.25 * 64).
  double near = 0.0;
  for (size_t i = 12; i <= 20; ++i) near += dist[i];
  EXPECT_GT(near, 0.5);
}

TEST(RobustnessTest, BoundaryValues) {
  // Values exactly at the domain edges 0 and 1.
  SwEstimatorOptions options;
  options.epsilon = 1.0;
  options.d = 16;
  const SwEstimator est = SwEstimator::Make(options).ValueOrDie();
  Rng rng(5);
  std::vector<double> values;
  for (int i = 0; i < 3000; ++i) values.push_back(i % 2 == 0 ? 0.0 : 1.0);
  const std::vector<double> dist =
      est.EstimateDistribution(values, rng).ValueOrDie();
  EXPECT_TRUE(hist::IsDistribution(dist, 1e-9));
  // Both edge buckets should carry visible mass.
  EXPECT_GT(dist.front(), 0.05);
  EXPECT_GT(dist.back(), 0.05);
}

TEST(RobustnessTest, EmWithAllMassInOneOutputBucket) {
  const SquareWave sw = SquareWave::Make(1.0).ValueOrDie();
  const Matrix m = sw.TransitionMatrix(32, 32);
  std::vector<uint64_t> counts(32, 0);
  counts[0] = 1000000;  // adversarially concentrated observations
  const EmResult res = EstimateEms(m, counts).ValueOrDie();
  EXPECT_TRUE(hist::IsDistribution(res.estimate, 1e-9));
  for (double v : res.estimate) EXPECT_TRUE(std::isfinite(v));
}

TEST(RobustnessTest, EmWithHugeCounts) {
  // Counts near the paper's full population scale must not overflow.
  const SquareWave sw = SquareWave::Make(1.0).ValueOrDie();
  const Matrix m = sw.TransitionMatrix(16, 16);
  std::vector<uint64_t> counts(16, 200000000ULL);  // 3.2e9 total
  const EmResult res = EstimateEms(m, counts).ValueOrDie();
  EXPECT_TRUE(hist::IsDistribution(res.estimate, 1e-9));
}

TEST(RobustnessTest, NormSubWithExtremeMagnitudes) {
  const std::vector<double> out = NormSub({1e12, -1e12, 3.0});
  EXPECT_TRUE(hist::IsDistribution(out, 1e-6));
  const std::vector<double> tiny = NormSub({1e-300, 2e-300});
  EXPECT_TRUE(hist::IsDistribution(tiny, 1e-9));
}

TEST(RobustnessTest, AdmmWithAllZeroTree) {
  const HierarchyTree tree = HierarchyTree::Make(16, 4).ValueOrDie();
  const AdmmResult res =
      HhAdmm(tree, std::vector<double>(tree.NumNodes(), 0.0)).ValueOrDie();
  EXPECT_TRUE(hist::IsDistribution(res.distribution, 1e-9));
}

TEST(RobustnessTest, AdmmWithHostileNoise) {
  const HierarchyTree tree = HierarchyTree::Make(64, 4).ValueOrDie();
  Rng rng(6);
  std::vector<double> nodes(tree.NumNodes());
  for (double& v : nodes) v = rng.Uniform(-100.0, 100.0);
  const AdmmResult res = HhAdmm(tree, nodes).ValueOrDie();
  EXPECT_TRUE(hist::IsDistribution(res.distribution, 1e-9));
  for (double v : res.node_values) EXPECT_TRUE(std::isfinite(v));
}

TEST(RobustnessTest, HhWithFewerUsersThanLevels) {
  const HhProtocol hh = HhProtocol::Make(1.0, 64, 4).ValueOrDie();
  Rng rng(7);
  // Two users, three levels: some levels see zero reports.
  const std::vector<double> nodes =
      hh.CollectNodeEstimates({3u, 40u}, rng);
  EXPECT_EQ(nodes.size(), hh.tree().NumNodes());
  for (double v : nodes) EXPECT_TRUE(std::isfinite(v));
}

TEST(RobustnessTest, MomentsOnConstantData) {
  Rng rng(8);
  const std::vector<double> values(5000, 0.7);
  const MomentsEstimate est =
      EstimateMoments(values, MeanMechanism::kPiecewiseMechanism, 2.0, rng)
          .ValueOrDie();
  EXPECT_NEAR(est.mean, 0.7, 0.05);
  EXPECT_GE(est.variance, 0.0);
  EXPECT_LT(est.variance, 0.05);
}

TEST(RobustnessTest, SmoothingDegenerateVectors) {
  std::vector<double> one = {1.0};
  BinomialSmooth(&one);
  EXPECT_DOUBLE_EQ(one[0], 1.0);
  std::vector<double> zeros(8, 0.0);
  BinomialSmooth(&zeros);
  for (double v : zeros) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(RobustnessTest, PoisonedSketchStillYieldsDistribution) {
  // An attacker who controls a shard can hand the server arbitrary output
  // counts. EM/EMS must still return a valid distribution — reconstruction
  // is the last line of defense and may never amplify hostile counts into
  // NaNs or negative mass.
  SwEstimatorOptions options;
  options.epsilon = 1.0;
  options.d = 64;
  const SwEstimator est = SwEstimator::Make(options).ValueOrDie();
  Rng rng(11);
  std::vector<double> honest;
  for (int i = 0; i < 20000; ++i) honest.push_back(rng.Uniform());
  std::vector<double> reports;
  est.PerturbBatch(honest, rng, &reports);
  std::vector<uint64_t> counts = est.Aggregate(reports);
  // Adversarial spike: one output bucket claims 100x the whole cohort.
  counts[counts.size() / 2] += 2000000;
  const EmResult res = est.Reconstruct(counts).ValueOrDie();
  EXPECT_TRUE(hist::IsDistribution(res.estimate, 1e-9));
  for (double v : res.estimate) EXPECT_TRUE(std::isfinite(v));
}

TEST(RobustnessTest, IncrementalReconstructionUnderMidStreamAttack) {
  // Warm-started and mini-batch reconstruction over a stream that turns
  // hostile halfway: an output-poisoning phase injects crafted reports at
  // a target bucket. Both modes must keep producing valid distributions
  // at every tick, and the post-attack estimate must show the injected
  // spike (the attack is visible, not silently absorbed).
  SwEstimatorOptions options;
  options.epsilon = 4.0;  // narrow wave: the poison concentrates
  options.d = 64;
  auto shared = std::make_shared<const SwEstimator>(
      SwEstimator::Make(options).ValueOrDie());
  AttackSpec atk;
  atk.kind = AttackKind::kOutputPoison;
  atk.fraction = 1.0;  // every report in the attack phase is crafted
  atk.target = 48;

  for (const auto mode : {IncrementalOptions::Mode::kWarm,
                          IncrementalOptions::Mode::kMiniBatch}) {
    IncrementalOptions inc;
    inc.mode = mode;
    inc.half_life = mode == IncrementalOptions::Mode::kMiniBatch ? 4000.0 : 0.0;
    auto recon = IncrementalReconstructor::Make(shared, inc).ValueOrDie();
    StreamingAggregator agg = StreamingAggregator::Make(options).ValueOrDie();
    Rng honest_rng(12);
    Rng attack_rng = AttackPhaseShardRng(12, 1, 0);
    std::vector<double> last_estimate;
    for (int tick = 0; tick < 8; ++tick) {
      const bool attacked = tick >= 4;
      for (int i = 0; i < 2500; ++i) {
        if (attacked) {
          agg.Accept(CraftSwReport(*shared, atk, options.d, attack_rng));
        } else {
          agg.Accept(shared->PerturbOne(honest_rng.Uniform(), honest_rng));
        }
      }
      const EmResult res = recon.Update(agg).ValueOrDie();
      EXPECT_TRUE(hist::IsDistribution(res.estimate, 1e-9))
          << "mode " << static_cast<int>(mode) << " tick " << tick;
      for (double v : res.estimate) ASSERT_TRUE(std::isfinite(v));
      last_estimate = res.estimate;
    }
    // After four fully poisoned ticks the target bucket dominates.
    EXPECT_GT(last_estimate[atk.target], 0.10)
        << "mode " << static_cast<int>(mode);
  }
}

TEST(RobustnessTest, EstimatorsRejectNonFiniteInputs) {
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  const double kInf = std::numeric_limits<double>::infinity();

  SwEstimatorOptions options;
  options.epsilon = 1.0;
  options.d = 16;
  const SwEstimator est = SwEstimator::Make(options).ValueOrDie();
  Rng rng(13);
  EXPECT_FALSE(est.EstimateDistribution({0.5, kNan}, rng).ok());
  EXPECT_FALSE(est.EstimateDistribution({kInf, 0.5}, rng).ok());
  EXPECT_FALSE(est.EstimateDistribution({}, rng).ok());

  EXPECT_FALSE(EstimateMean({0.5, kNan}, MeanMechanism::kPiecewiseMechanism,
                            1.0, rng)
                   .ok());
  EXPECT_FALSE(EstimateMean({kInf}, MeanMechanism::kStochasticRounding, 1.0,
                            rng)
                   .ok());
  EXPECT_FALSE(EstimateMoments({0.5, kNan, 0.2},
                               MeanMechanism::kPiecewiseMechanism, 1.0, rng)
                   .ok());
  EXPECT_FALSE(EstimateMoments({-kInf, 0.2},
                               MeanMechanism::kStochasticRounding, 1.0, rng)
                   .ok());

  const HierarchyTree tree = HierarchyTree::Make(16, 4).ValueOrDie();
  std::vector<double> nodes(tree.NumNodes(), 0.1);
  nodes[3] = kNan;
  EXPECT_FALSE(HhAdmm(tree, nodes).ok());
  nodes[3] = kInf;
  EXPECT_FALSE(HhAdmm(tree, nodes).ok());
}

TEST(RobustnessTest, DiscretePipelineWithCoarseDomain) {
  // d = 4 with default bandwidth: floor(b * 4) can be 1 or 0 -> both fine.
  for (double eps : {0.5, 3.0}) {
    SwEstimatorOptions options;
    options.epsilon = eps;
    options.d = 4;
    options.pipeline =
        SwEstimatorOptions::Pipeline::kBucketizeBeforeRandomize;
    const SwEstimator est = SwEstimator::Make(options).ValueOrDie();
    Rng rng(9);
    std::vector<double> values;
    for (int i = 0; i < 4000; ++i) values.push_back(rng.Uniform());
    const std::vector<double> dist =
        est.EstimateDistribution(values, rng).ValueOrDie();
    EXPECT_TRUE(hist::IsDistribution(dist, 1e-9)) << "eps=" << eps;
  }
}

}  // namespace
}  // namespace numdist
