// Robustness / adversarial-input suite: the estimators must stay numerically
// sane at the extremes a deployment will eventually hit — tiny cohorts,
// extreme privacy budgets, degenerate (point-mass) data, adversarially spiky
// observations, and pathological post-processing inputs.
#include <gtest/gtest.h>

#include <cmath>

#include "common/histogram.h"
#include "core/ems.h"
#include "core/sw_estimator.h"
#include "hierarchy/admm.h"
#include "hierarchy/hh.h"
#include "mean/moments.h"
#include "postprocess/norm_sub.h"

namespace numdist {
namespace {

TEST(RobustnessTest, TinyCohortStillYieldsDistribution) {
  SwEstimatorOptions options;
  options.epsilon = 1.0;
  options.d = 64;
  const SwEstimator est = SwEstimator::Make(options).ValueOrDie();
  Rng rng(1);
  // Three users only.
  const std::vector<double> dist =
      est.EstimateDistribution({0.1, 0.5, 0.9}, rng).ValueOrDie();
  EXPECT_TRUE(hist::IsDistribution(dist, 1e-9));
}

TEST(RobustnessTest, SingleUser) {
  SwEstimatorOptions options;
  options.epsilon = 0.5;
  options.d = 16;
  const SwEstimator est = SwEstimator::Make(options).ValueOrDie();
  Rng rng(2);
  const std::vector<double> dist =
      est.EstimateDistribution({0.5}, rng).ValueOrDie();
  EXPECT_TRUE(hist::IsDistribution(dist, 1e-9));
}

TEST(RobustnessTest, ExtremePrivacyBudgets) {
  for (double eps : {0.01, 10.0}) {
    SwEstimatorOptions options;
    options.epsilon = eps;
    options.d = 32;
    const SwEstimator est = SwEstimator::Make(options).ValueOrDie();
    Rng rng(3);
    std::vector<double> values;
    for (int i = 0; i < 5000; ++i) values.push_back(rng.Uniform());
    const std::vector<double> dist =
        est.EstimateDistribution(values, rng).ValueOrDie();
    EXPECT_TRUE(hist::IsDistribution(dist, 1e-9)) << "eps=" << eps;
  }
}

TEST(RobustnessTest, PointMassData) {
  // All users hold exactly the same value.
  SwEstimatorOptions options;
  options.epsilon = 3.0;
  options.d = 64;
  const SwEstimator est = SwEstimator::Make(options).ValueOrDie();
  Rng rng(4);
  const std::vector<double> values(20000, 0.25);
  const std::vector<double> dist =
      est.EstimateDistribution(values, rng).ValueOrDie();
  EXPECT_TRUE(hist::IsDistribution(dist, 1e-9));
  // Mass concentrates around bucket 16 (0.25 * 64).
  double near = 0.0;
  for (size_t i = 12; i <= 20; ++i) near += dist[i];
  EXPECT_GT(near, 0.5);
}

TEST(RobustnessTest, BoundaryValues) {
  // Values exactly at the domain edges 0 and 1.
  SwEstimatorOptions options;
  options.epsilon = 1.0;
  options.d = 16;
  const SwEstimator est = SwEstimator::Make(options).ValueOrDie();
  Rng rng(5);
  std::vector<double> values;
  for (int i = 0; i < 3000; ++i) values.push_back(i % 2 == 0 ? 0.0 : 1.0);
  const std::vector<double> dist =
      est.EstimateDistribution(values, rng).ValueOrDie();
  EXPECT_TRUE(hist::IsDistribution(dist, 1e-9));
  // Both edge buckets should carry visible mass.
  EXPECT_GT(dist.front(), 0.05);
  EXPECT_GT(dist.back(), 0.05);
}

TEST(RobustnessTest, EmWithAllMassInOneOutputBucket) {
  const SquareWave sw = SquareWave::Make(1.0).ValueOrDie();
  const Matrix m = sw.TransitionMatrix(32, 32);
  std::vector<uint64_t> counts(32, 0);
  counts[0] = 1000000;  // adversarially concentrated observations
  const EmResult res = EstimateEms(m, counts).ValueOrDie();
  EXPECT_TRUE(hist::IsDistribution(res.estimate, 1e-9));
  for (double v : res.estimate) EXPECT_TRUE(std::isfinite(v));
}

TEST(RobustnessTest, EmWithHugeCounts) {
  // Counts near the paper's full population scale must not overflow.
  const SquareWave sw = SquareWave::Make(1.0).ValueOrDie();
  const Matrix m = sw.TransitionMatrix(16, 16);
  std::vector<uint64_t> counts(16, 200000000ULL);  // 3.2e9 total
  const EmResult res = EstimateEms(m, counts).ValueOrDie();
  EXPECT_TRUE(hist::IsDistribution(res.estimate, 1e-9));
}

TEST(RobustnessTest, NormSubWithExtremeMagnitudes) {
  const std::vector<double> out = NormSub({1e12, -1e12, 3.0});
  EXPECT_TRUE(hist::IsDistribution(out, 1e-6));
  const std::vector<double> tiny = NormSub({1e-300, 2e-300});
  EXPECT_TRUE(hist::IsDistribution(tiny, 1e-9));
}

TEST(RobustnessTest, AdmmWithAllZeroTree) {
  const HierarchyTree tree = HierarchyTree::Make(16, 4).ValueOrDie();
  const AdmmResult res =
      HhAdmm(tree, std::vector<double>(tree.NumNodes(), 0.0)).ValueOrDie();
  EXPECT_TRUE(hist::IsDistribution(res.distribution, 1e-9));
}

TEST(RobustnessTest, AdmmWithHostileNoise) {
  const HierarchyTree tree = HierarchyTree::Make(64, 4).ValueOrDie();
  Rng rng(6);
  std::vector<double> nodes(tree.NumNodes());
  for (double& v : nodes) v = rng.Uniform(-100.0, 100.0);
  const AdmmResult res = HhAdmm(tree, nodes).ValueOrDie();
  EXPECT_TRUE(hist::IsDistribution(res.distribution, 1e-9));
  for (double v : res.node_values) EXPECT_TRUE(std::isfinite(v));
}

TEST(RobustnessTest, HhWithFewerUsersThanLevels) {
  const HhProtocol hh = HhProtocol::Make(1.0, 64, 4).ValueOrDie();
  Rng rng(7);
  // Two users, three levels: some levels see zero reports.
  const std::vector<double> nodes =
      hh.CollectNodeEstimates({3u, 40u}, rng);
  EXPECT_EQ(nodes.size(), hh.tree().NumNodes());
  for (double v : nodes) EXPECT_TRUE(std::isfinite(v));
}

TEST(RobustnessTest, MomentsOnConstantData) {
  Rng rng(8);
  const std::vector<double> values(5000, 0.7);
  const MomentsEstimate est =
      EstimateMoments(values, MeanMechanism::kPiecewiseMechanism, 2.0, rng)
          .ValueOrDie();
  EXPECT_NEAR(est.mean, 0.7, 0.05);
  EXPECT_GE(est.variance, 0.0);
  EXPECT_LT(est.variance, 0.05);
}

TEST(RobustnessTest, SmoothingDegenerateVectors) {
  std::vector<double> one = {1.0};
  BinomialSmooth(&one);
  EXPECT_DOUBLE_EQ(one[0], 1.0);
  std::vector<double> zeros(8, 0.0);
  BinomialSmooth(&zeros);
  for (double v : zeros) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(RobustnessTest, DiscretePipelineWithCoarseDomain) {
  // d = 4 with default bandwidth: floor(b * 4) can be 1 or 0 -> both fine.
  for (double eps : {0.5, 3.0}) {
    SwEstimatorOptions options;
    options.epsilon = eps;
    options.d = 4;
    options.pipeline =
        SwEstimatorOptions::Pipeline::kBucketizeBeforeRandomize;
    const SwEstimator est = SwEstimator::Make(options).ValueOrDie();
    Rng rng(9);
    std::vector<double> values;
    for (int i = 0; i < 4000; ++i) values.push_back(rng.Uniform());
    const std::vector<double> dist =
        est.EstimateDistribution(values, rng).ValueOrDie();
    EXPECT_TRUE(hist::IsDistribution(dist, 1e-9)) << "eps=" << eps;
  }
}

}  // namespace
}  // namespace numdist
