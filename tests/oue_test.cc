#include "fo/oue.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/histogram.h"
#include "fo/olh.h"

namespace numdist {
namespace {

TEST(OueTest, MakeValidation) {
  EXPECT_FALSE(Oue::Make(0.0, 8).ok());
  EXPECT_FALSE(Oue::Make(1.0, 1).ok());
  EXPECT_TRUE(Oue::Make(1.0, 8).ok());
}

TEST(OueTest, ProbabilitiesAreOptimizedChoice) {
  const Oue oue = Oue::Make(1.3, 16).ValueOrDie();
  EXPECT_DOUBLE_EQ(oue.p(), 0.5);
  EXPECT_NEAR(oue.q(), 1.0 / (std::exp(1.3) + 1.0), 1e-12);
  // The bit-level privacy ratio: p/q vs (1-q)/(1-p) — the binding one is
  // (p / q) * ((1 - q) / (1 - p)) == e^eps for OUE's asymmetric flips.
  const double ratio =
      (oue.p() / oue.q()) * ((1.0 - oue.q()) / (1.0 - oue.p()));
  EXPECT_NEAR(ratio, std::exp(1.3), 1e-9);
}

TEST(OueTest, PerturbProducesBitVector) {
  const Oue oue = Oue::Make(1.0, 12).ValueOrDie();
  Rng rng(1);
  const std::vector<uint8_t> bits = oue.Perturb(5, rng);
  EXPECT_EQ(bits.size(), 12u);
  for (uint8_t b : bits) EXPECT_TRUE(b == 0 || b == 1);
}

TEST(OueTest, BitFlipRatesMatch) {
  const Oue oue = Oue::Make(1.0, 8).ValueOrDie();
  Rng rng(2);
  const uint32_t v = 3;
  std::vector<int> ones(8, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const std::vector<uint8_t> bits = oue.Perturb(v, rng);
    for (size_t j = 0; j < 8; ++j) ones[j] += bits[j];
  }
  EXPECT_NEAR(static_cast<double>(ones[v]) / n, 0.5, 0.005);
  for (size_t j = 0; j < 8; ++j) {
    if (j == v) continue;
    EXPECT_NEAR(static_cast<double>(ones[j]) / n, oue.q(), 0.005) << j;
  }
}

TEST(OueTest, EstimateIsUnbiased) {
  Rng rng(3);
  const size_t d = 16;
  // Skewed distribution.
  std::vector<uint32_t> values;
  for (int i = 0; i < 120000; ++i) {
    values.push_back(rng.Bernoulli(0.4)
                         ? 2
                         : static_cast<uint32_t>(rng.UniformInt(d)));
  }
  std::vector<double> truth(d, 0.0);
  for (uint32_t v : values) truth[v] += 1.0 / values.size();

  const Oue oue = Oue::Make(1.0, d).ValueOrDie();
  const std::vector<double> est = oue.Run(values, rng);
  for (size_t v = 0; v < d; ++v) {
    EXPECT_NEAR(est[v], truth[v], 0.02) << "v=" << v;
  }
}

TEST(OueTest, VarianceMatchesOlh) {
  EXPECT_DOUBLE_EQ(Oue::Variance(1.0, 5000), Olh::Variance(1.0, 5000));
}

TEST(OueTest, EmpiricalVarianceNearFormula) {
  const double eps = 1.0;
  const size_t d = 16;
  const size_t n = 20000;
  const Oue oue = Oue::Make(eps, d).ValueOrDie();
  Rng rng(4);
  const std::vector<uint32_t> values(n, 0);  // everyone holds 0
  const int reps = 50;
  double sq = 0.0;
  for (int r = 0; r < reps; ++r) {
    const std::vector<double> est = oue.Run(values, rng);
    sq += est[9] * est[9];  // true frequency 0
  }
  const double var = sq / reps;
  EXPECT_NEAR(var, Oue::Variance(eps, n), Oue::Variance(eps, n) * 0.6);
}

TEST(OueTest, EstimateFromOnesEmptyInput) {
  const Oue oue = Oue::Make(1.0, 4).ValueOrDie();
  const std::vector<double> est =
      oue.EstimateFromOnes(std::vector<uint64_t>(4, 0), 0);
  for (double v : est) EXPECT_DOUBLE_EQ(v, 0.0);
}

}  // namespace
}  // namespace numdist
