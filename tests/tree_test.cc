#include "hierarchy/tree.h"

#include <gtest/gtest.h>

#include <numeric>

namespace numdist {
namespace {

TEST(HierarchyTreeTest, MakeValidation) {
  EXPECT_FALSE(HierarchyTree::Make(16, 1).ok());
  EXPECT_FALSE(HierarchyTree::Make(2, 4).ok());
  EXPECT_FALSE(HierarchyTree::Make(15, 4).ok());   // not a power of 4
  EXPECT_FALSE(HierarchyTree::Make(24, 2).ok());   // not a power of 2
  EXPECT_TRUE(HierarchyTree::Make(16, 4).ok());
  EXPECT_TRUE(HierarchyTree::Make(16, 2).ok());
  EXPECT_TRUE(HierarchyTree::Make(27, 3).ok());
}

TEST(HierarchyTreeTest, ShapeQuantities) {
  const HierarchyTree t = HierarchyTree::Make(64, 4).ValueOrDie();
  EXPECT_EQ(t.d(), 64u);
  EXPECT_EQ(t.beta(), 4u);
  EXPECT_EQ(t.height(), 3u);
  EXPECT_EQ(t.num_levels(), 4u);
  EXPECT_EQ(t.LevelSize(0), 1u);
  EXPECT_EQ(t.LevelSize(1), 4u);
  EXPECT_EQ(t.LevelSize(2), 16u);
  EXPECT_EQ(t.LevelSize(3), 64u);
  EXPECT_EQ(t.NumNodes(), 1u + 4u + 16u + 64u);
}

TEST(HierarchyTreeTest, LevelOffsetsAreCumulative) {
  const HierarchyTree t = HierarchyTree::Make(27, 3).ValueOrDie();
  EXPECT_EQ(t.LevelOffset(0), 0u);
  EXPECT_EQ(t.LevelOffset(1), 1u);
  EXPECT_EQ(t.LevelOffset(2), 4u);
  EXPECT_EQ(t.LevelOffset(3), 13u);
  EXPECT_EQ(t.NumNodes(), 40u);
}

TEST(HierarchyTreeTest, FlatIndex) {
  const HierarchyTree t = HierarchyTree::Make(16, 4).ValueOrDie();
  EXPECT_EQ(t.FlatIndex(0, 0), 0u);
  EXPECT_EQ(t.FlatIndex(1, 2), 3u);
  EXPECT_EQ(t.FlatIndex(2, 0), 5u);
}

TEST(HierarchyTreeTest, AncestorAt) {
  const HierarchyTree t = HierarchyTree::Make(16, 4).ValueOrDie();
  EXPECT_EQ(t.AncestorAt(13, 0), 0u);
  EXPECT_EQ(t.AncestorAt(13, 1), 3u);   // 13 / 4
  EXPECT_EQ(t.AncestorAt(13, 2), 13u);  // leaf level
  EXPECT_EQ(t.AncestorAt(0, 1), 0u);
  EXPECT_EQ(t.AncestorAt(15, 1), 3u);
}

TEST(HierarchyTreeTest, LeafSpan) {
  const HierarchyTree t = HierarchyTree::Make(16, 4).ValueOrDie();
  EXPECT_EQ(t.LeafSpan(0, 0), (std::pair<size_t, size_t>{0, 16}));
  EXPECT_EQ(t.LeafSpan(1, 1), (std::pair<size_t, size_t>{4, 8}));
  EXPECT_EQ(t.LeafSpan(2, 7), (std::pair<size_t, size_t>{7, 8}));
}

TEST(HierarchyTreeTest, DecomposeEmptyRange) {
  const HierarchyTree t = HierarchyTree::Make(16, 4).ValueOrDie();
  EXPECT_TRUE(t.DecomposeRange(5, 5).empty());
}

TEST(HierarchyTreeTest, DecomposeFullRangeIsRoot) {
  const HierarchyTree t = HierarchyTree::Make(16, 4).ValueOrDie();
  const auto nodes = t.DecomposeRange(0, 16);
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0].level, 0u);
  EXPECT_EQ(nodes[0].index, 0u);
}

TEST(HierarchyTreeTest, DecomposeAlignedRangeIsOneNode) {
  const HierarchyTree t = HierarchyTree::Make(16, 4).ValueOrDie();
  const auto nodes = t.DecomposeRange(4, 8);
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0].level, 1u);
  EXPECT_EQ(nodes[0].index, 1u);
}

TEST(HierarchyTreeTest, DecompositionsPartitionTheRange) {
  const HierarchyTree t = HierarchyTree::Make(64, 4).ValueOrDie();
  for (size_t lo = 0; lo < 64; lo += 7) {
    for (size_t hi = lo + 1; hi <= 64; hi += 5) {
      const auto nodes = t.DecomposeRange(lo, hi);
      // Union of spans must be exactly [lo, hi) with no overlap.
      std::vector<int> covered(64, 0);
      for (const TreeNode& n : nodes) {
        const auto [s, e] = t.LeafSpan(n.level, n.index);
        for (size_t leaf = s; leaf < e; ++leaf) ++covered[leaf];
      }
      for (size_t leaf = 0; leaf < 64; ++leaf) {
        EXPECT_EQ(covered[leaf], (leaf >= lo && leaf < hi) ? 1 : 0)
            << "lo=" << lo << " hi=" << hi << " leaf=" << leaf;
      }
    }
  }
}

TEST(HierarchyTreeTest, DecompositionIsSmall) {
  const HierarchyTree t = HierarchyTree::Make(1024, 4).ValueOrDie();
  for (size_t lo : {1u, 13u, 100u, 511u}) {
    for (size_t hi : {514u, 700u, 1023u}) {
      const auto nodes = t.DecomposeRange(lo, hi);
      // At most 2 (beta - 1) per level.
      EXPECT_LE(nodes.size(), 2 * (t.beta() - 1) * t.height());
    }
  }
}

TEST(TreeRangeQueryTest, SumsCanonicalNodes) {
  const HierarchyTree t = HierarchyTree::Make(16, 4).ValueOrDie();
  // Node values: each node holds the exact sum of an arithmetic leaf vector.
  std::vector<double> leaves(16);
  std::iota(leaves.begin(), leaves.end(), 1.0);  // 1..16
  std::vector<double> nodes(t.NumNodes(), 0.0);
  for (size_t level = 0; level <= t.height(); ++level) {
    for (size_t i = 0; i < t.LevelSize(level); ++i) {
      const auto [s, e] = t.LeafSpan(level, i);
      double acc = 0.0;
      for (size_t leaf = s; leaf < e; ++leaf) acc += leaves[leaf];
      nodes[t.FlatIndex(level, i)] = acc;
    }
  }
  for (size_t lo = 0; lo < 16; ++lo) {
    for (size_t hi = lo; hi <= 16; ++hi) {
      double expected = 0.0;
      for (size_t leaf = lo; leaf < hi; ++leaf) expected += leaves[leaf];
      EXPECT_DOUBLE_EQ(TreeRangeQuery(t, nodes, lo, hi), expected);
    }
  }
}

TEST(TreeRangeQueryContinuousTest, MatchesDiscreteOnBucketBoundaries) {
  const HierarchyTree t = HierarchyTree::Make(16, 2).ValueOrDie();
  std::vector<double> nodes(t.NumNodes(), 0.0);
  // Uniform distribution: each leaf 1/16.
  for (size_t level = 0; level <= t.height(); ++level) {
    for (size_t i = 0; i < t.LevelSize(level); ++i) {
      const auto [s, e] = t.LeafSpan(level, i);
      nodes[t.FlatIndex(level, i)] = static_cast<double>(e - s) / 16.0;
    }
  }
  EXPECT_NEAR(TreeRangeQueryContinuous(t, nodes, 0.25, 0.75), 0.5, 1e-12);
  EXPECT_NEAR(TreeRangeQueryContinuous(t, nodes, 0.0, 1.0), 1.0, 1e-12);
}

TEST(TreeRangeQueryContinuousTest, InterpolatesPartialLeaves) {
  const HierarchyTree t = HierarchyTree::Make(4, 2).ValueOrDie();
  // Leaves: [0.4, 0.3, 0.2, 0.1].
  const std::vector<double> leaves = {0.4, 0.3, 0.2, 0.1};
  std::vector<double> nodes(t.NumNodes(), 0.0);
  for (size_t level = 0; level <= t.height(); ++level) {
    for (size_t i = 0; i < t.LevelSize(level); ++i) {
      const auto [s, e] = t.LeafSpan(level, i);
      for (size_t leaf = s; leaf < e; ++leaf) {
        nodes[t.FlatIndex(level, i)] += leaves[leaf];
      }
    }
  }
  // [0.125, 0.375] covers half of leaf 0 and half of leaf 1.
  EXPECT_NEAR(TreeRangeQueryContinuous(t, nodes, 0.125, 0.375),
              0.5 * 0.4 + 0.5 * 0.3, 1e-12);
  // Range inside a single leaf.
  EXPECT_NEAR(TreeRangeQueryContinuous(t, nodes, 0.05, 0.20),
              (0.20 - 0.05) * 4 * 0.4, 1e-12);
}

TEST(TreeRangeQueryContinuousTest, EmptyAndClampedRanges) {
  const HierarchyTree t = HierarchyTree::Make(4, 2).ValueOrDie();
  std::vector<double> nodes(t.NumNodes(), 0.25);
  EXPECT_DOUBLE_EQ(TreeRangeQueryContinuous(t, nodes, 0.5, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(TreeRangeQueryContinuous(t, nodes, 0.9, 0.3), 0.0);
}

}  // namespace
}  // namespace numdist
