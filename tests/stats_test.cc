// Unit tests for the statistical conformance library itself: special
// function accuracy against closed forms and reference values, and the
// acceptance-bound helpers. Tolerance derivations for the statistical test
// tier that builds on these live in docs/STATISTICAL_TESTING.md.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "stats/conformance.h"
#include "stats/special.h"

namespace numdist {
namespace stats {
namespace {

TEST(SpecialTest, GammaPAndQAreComplementary) {
  for (double a : {0.5, 1.0, 2.5, 8.0, 50.0}) {
    for (double x : {0.1, 1.0, 5.0, 20.0, 80.0}) {
      EXPECT_NEAR(RegularizedGammaP(a, x) + RegularizedGammaQ(a, x), 1.0,
                  1e-13);
    }
  }
}

TEST(SpecialTest, ChiSquareDf2IsExponential) {
  // With 2 degrees of freedom the chi-square survival is exactly exp(-x/2).
  for (double x : {0.1, 1.0, 4.0, 20.0, 60.0}) {
    EXPECT_NEAR(ChiSquareSurvival(2.0, x), std::exp(-0.5 * x),
                1e-12 * std::exp(-0.5 * x) + 1e-300);
  }
}

TEST(SpecialTest, ChiSquareReferenceQuantiles) {
  // Classic critical values: P[X >= x] = 0.05.
  EXPECT_NEAR(ChiSquareSurvival(1.0, 3.8414588206941254), 0.05, 1e-10);
  EXPECT_NEAR(ChiSquareSurvival(10.0, 18.307038053275146), 0.05, 1e-10);
  // Deep tail stays accurate (needed for 1e-7-level alphas).
  EXPECT_NEAR(ChiSquareSurvival(4.0, 60.0) /
                  (std::exp(-30.0) * (1.0 + 30.0)),
              1.0, 1e-10);  // df=4: Q = e^{-x/2} (1 + x/2)
}

TEST(SpecialTest, RegularizedBetaClosedForms) {
  // I_x(a, 1) = x^a and I_x(1, b) = 1 - (1-x)^b.
  for (double x : {0.05, 0.3, 0.7, 0.95}) {
    EXPECT_NEAR(RegularizedBeta(3.0, 1.0, x), std::pow(x, 3.0), 1e-13);
    EXPECT_NEAR(RegularizedBeta(1.0, 4.0, x), 1.0 - std::pow(1.0 - x, 4.0),
                1e-13);
  }
  EXPECT_DOUBLE_EQ(RegularizedBeta(2.0, 2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedBeta(2.0, 2.0, 1.0), 1.0);
}

TEST(SpecialTest, BinomialCdfMatchesDirectSummation) {
  const uint64_t n = 25;
  const double p = 0.3;
  double cum = 0.0;
  for (uint64_t k = 0; k < n; ++k) {
    cum += std::exp(std::lgamma(n + 1.0) - std::lgamma(k + 1.0) -
                    std::lgamma(n - k + 1.0) +
                    k * std::log(p) + (n - k) * std::log1p(-p));
    EXPECT_NEAR(BinomialCdf(k, n, p), cum, 1e-12);
    EXPECT_NEAR(BinomialSurvival(k + 1, n, p), 1.0 - cum, 1e-12);
  }
}

TEST(SpecialTest, BinomialDeepTail) {
  // P[X >= 100] for Binomial(100, 1/2) is exactly 2^-100.
  const double exact = std::ldexp(1.0, -100);
  EXPECT_NEAR(BinomialSurvival(100, 100, 0.5) / exact, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(BinomialSurvival(0, 100, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(BinomialSurvival(101, 100, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(BinomialCdf(100, 100, 0.5), 1.0);
}

TEST(ConformanceTest, ChiSquareGofAcceptsExactFit) {
  // Observed counts exactly proportional to the expectation: statistic 0.
  const std::vector<uint64_t> observed = {250, 250, 250, 250};
  const std::vector<double> probs = {0.25, 0.25, 0.25, 0.25};
  const GofResult result = ChiSquareGof(observed, probs).ValueOrDie();
  EXPECT_NEAR(result.statistic, 0.0, 1e-12);
  EXPECT_NEAR(result.p_value, 1.0, 1e-12);
  EXPECT_EQ(result.df, 3u);
}

TEST(ConformanceTest, ChiSquareGofRejectsGrossMisfit) {
  const std::vector<uint64_t> observed = {900, 50, 25, 25};
  const std::vector<double> probs = {0.25, 0.25, 0.25, 0.25};
  const GofResult result = ChiSquareGof(observed, probs).ValueOrDie();
  EXPECT_LT(result.p_value, 1e-12);
}

TEST(ConformanceTest, ChiSquareGofPoolsSparseCells) {
  // Two tiny-expectation cells (expected 0.5 each at N=1000) must pool into
  // one rest cell: 3 surviving cells + 1 pooled = df 3.
  const std::vector<uint64_t> observed = {333, 333, 332, 1, 1};
  const std::vector<double> probs = {0.333, 0.333, 0.333, 0.0005, 0.0005};
  const GofResult result = ChiSquareGof(observed, probs).ValueOrDie();
  EXPECT_EQ(result.pooled_cells, 4u);
  EXPECT_EQ(result.df, 3u);
  EXPECT_GT(result.p_value, 1e-6);
}

TEST(ConformanceTest, ChiSquareGofImpossibleMassIsCertainRejection) {
  const std::vector<uint64_t> observed = {500, 490, 10};
  const std::vector<double> probs = {0.5, 0.5, 0.0};
  const GofResult result = ChiSquareGof(observed, probs).ValueOrDie();
  EXPECT_EQ(result.p_value, 0.0);
}

TEST(ConformanceTest, ChiSquareGofValidatesInput) {
  EXPECT_FALSE(ChiSquareGof({1, 2}, {0.5}).ok());
  EXPECT_FALSE(ChiSquareGof({0, 0}, {0.5, 0.5}).ok());
  EXPECT_FALSE(ChiSquareGof({1, 2}, {0.9, 0.2}).ok());
}

TEST(ConformanceTest, BinomialTwoSidedPBehaves) {
  // Dead-center observation: no evidence against p.
  EXPECT_DOUBLE_EQ(BinomialTwoSidedP(500, 1000, 0.5), 1.0);
  // 10-sigma deviation: overwhelming evidence.
  EXPECT_LT(BinomialTwoSidedP(658, 1000, 0.5), 1e-20);
  EXPECT_LT(BinomialTwoSidedP(342, 1000, 0.5), 1e-20);
}

TEST(ConformanceTest, DkwEpsilonFormula) {
  EXPECT_NEAR(DkwEpsilon(10000, 0.05),
              std::sqrt(std::log(2.0 / 0.05) / 20000.0), 1e-15);
  // Radius shrinks with n, grows as alpha tightens.
  EXPECT_LT(DkwEpsilon(40000, 1e-7), DkwEpsilon(10000, 1e-7));
  EXPECT_GT(DkwEpsilon(10000, 1e-9), DkwEpsilon(10000, 1e-6));
}

TEST(ConformanceTest, HistogramKsAgainstExpected) {
  const std::vector<uint64_t> observed = {10, 20, 30, 40};
  const std::vector<double> exact = {0.1, 0.2, 0.3, 0.4};
  EXPECT_NEAR(HistogramKs(observed, exact), 0.0, 1e-15);
  const std::vector<double> shifted = {0.2, 0.2, 0.3, 0.3};
  EXPECT_NEAR(HistogramKs(observed, shifted), 0.1, 1e-12);
}

TEST(ConformanceTest, AlphaHelpers) {
  EXPECT_DOUBLE_EQ(PerAssertionAlpha(1e-6, 10), 1e-7);
  EXPECT_DOUBLE_EQ(PerAssertionAlpha(1e-6, 0), 1e-6);
  EXPECT_NEAR(EmAgreementRadius(10000, 1e-3, 1e-3, 5.0),
              5.0 * std::sqrt(2.0 * 2e-3 / 10000.0), 1e-15);
}

TEST(ConformanceTest, SampleBudgetHonorsEnvKnob) {
  unsetenv("NUMDIST_STAT_SAMPLE_SCALE");
  EXPECT_EQ(SampleBudget(100000), 100000u);
  setenv("NUMDIST_STAT_SAMPLE_SCALE", "0.25", 1);
  EXPECT_EQ(SampleBudget(100000), 25000u);
  // The floor keeps tests meaningful even under aggressive scaling.
  EXPECT_EQ(SampleBudget(100000, 50000), 50000u);
  // A floor above the full budget never inflates it.
  EXPECT_EQ(SampleBudget(1000, 2000), 1000u);
  setenv("NUMDIST_STAT_SAMPLE_SCALE", "7.0", 1);  // out of range: ignored
  EXPECT_EQ(SampleBudget(100000), 100000u);
  unsetenv("NUMDIST_STAT_SAMPLE_SCALE");
}

}  // namespace
}  // namespace stats
}  // namespace numdist
