// Deterministic structured fuzzing of the wire/serve decode surface
// (common/mutator.h): seeded corruption of valid report/sketch/snapshot
// frames driven through wire::PeekFrame / Decode*, serve::FrameDecoder at
// every chunking, and a full serve::CollectorSession. The invariants:
//
//  - every outcome is a typed error or a valid absorb — never a crash, a
//    hang, or (in the CI sanitize leg, which runs this test under
//    ASan+UBSan) a sanitizer report;
//  - a collector's accumulator state after REJECTING hostile frames is
//    byte-identical to never having seen them (hostile bytes cannot move
//    counts);
//  - the push-mode FrameDecoder accepts/rejects a corrupted transport
//    stream identically at any chunk granularity.
//
// Everything is a pure function of fixed seeds: a failure here names a
// (base frame, seed, iteration) triple that replays exactly.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "common/mutator.h"
#include "common/rng.h"
#include "data/datasets.h"
#include "eval/streaming.h"
#include "protocol/sharded.h"
#include "serve/collector.h"
#include "serve/framing.h"
#include "serve/wal.h"
#include "wire/wire.h"

namespace numdist {
namespace {

// One pristine frame plus the context needed to decode it strictly.
struct BaseFrame {
  std::string name;
  wire::FrameType type = wire::FrameType::kReports;
  wire::MethodSpec spec;
  // Shared across the report/sketch frames of one method.
  std::shared_ptr<Protocol> protocol;
  std::string bytes;
};

// The full method grid at d=64 (= 4^3, so the HH tree constraint holds).
std::vector<std::string> MethodNames() {
  return {"sw-ems",     "sw-em",      "cfo-16", "cfo-grr-16", "cfo-olh-16",
          "cfo-oue-16", "hh",         "hh-admm", "haar-hrr"};
}

// Builds the fuzz corpus: one report frame and one sketch frame per
// method, plus one StreamingAggregator snapshot frame.
std::vector<BaseFrame> BuildCorpus() {
  std::vector<BaseFrame> corpus;
  const std::vector<double> values = GoldenRatioValues(256);
  for (const std::string& name : MethodNames()) {
    const wire::MethodSpec spec =
        wire::ParseMethodSpec(name, 1.0, 64).ValueOrDie();
    std::shared_ptr<Protocol> protocol =
        wire::MakeProtocolForSpec(spec).ValueOrDie();
    Rng rng(ShardSeed(21, corpus.size()));
    auto chunk = protocol->EncodePerturbBatch(values, rng).ValueOrDie();

    BaseFrame report;
    report.name = name + "/report";
    report.type = wire::FrameType::kReports;
    report.spec = spec;
    report.protocol = protocol;
    EXPECT_TRUE(
        wire::EncodeReportFrame(spec, *protocol, *chunk, &report.bytes).ok());

    BaseFrame sketch;
    sketch.name = name + "/sketch";
    sketch.type = wire::FrameType::kSketch;
    sketch.spec = spec;
    sketch.protocol = protocol;
    auto acc = protocol->MakeAccumulator();
    EXPECT_TRUE(acc->Absorb(*chunk).ok());
    EXPECT_TRUE(wire::EncodeSketchFrame(spec, *acc, &sketch.bytes).ok());

    corpus.push_back(std::move(report));
    corpus.push_back(std::move(sketch));
  }

  // Tenant-context frames (wire::kFlagTenantContext): the flags byte and
  // the u32 tenant id widen the decode surface, so the corpus carries a
  // tagged report and a tagged sketch too.
  {
    const wire::MethodSpec spec =
        wire::ParseMethodSpec("sw-ems", 1.0, 64).ValueOrDie();
    std::shared_ptr<Protocol> protocol =
        wire::MakeProtocolForSpec(spec).ValueOrDie();
    Rng rng(ShardSeed(21, 100));
    auto chunk = protocol->EncodePerturbBatch(values, rng).ValueOrDie();

    BaseFrame report;
    report.name = "sw-ems/report-tenant";
    report.type = wire::FrameType::kReports;
    report.spec = spec;
    report.protocol = protocol;
    EXPECT_TRUE(wire::EncodeReportFrame(spec, /*tenant=*/42, *protocol,
                                        *chunk, &report.bytes)
                    .ok());

    BaseFrame sketch;
    sketch.name = "sw-ems/sketch-tenant";
    sketch.type = wire::FrameType::kSketch;
    sketch.spec = spec;
    sketch.protocol = protocol;
    auto acc = protocol->MakeAccumulator();
    EXPECT_TRUE(acc->Absorb(*chunk).ok());
    EXPECT_TRUE(
        wire::EncodeSketchFrame(spec, /*tenant=*/42, *acc, &sketch.bytes)
            .ok());

    corpus.push_back(std::move(report));
    corpus.push_back(std::move(sketch));
  }

  SwEstimatorOptions options;
  options.epsilon = 1.0;
  options.d = 32;
  StreamingAggregator agg = StreamingAggregator::Make(options).ValueOrDie();
  Rng rng(ShardSeed(22, 0));
  for (const double v : GoldenRatioValues(200)) {
    agg.Accept(agg.estimator().PerturbOne(v, rng));
  }
  BaseFrame snapshot;
  snapshot.name = "snapshot";
  snapshot.type = wire::FrameType::kSnapshot;
  EXPECT_TRUE(wire::EncodeSnapshotFrame(1.0, agg, &snapshot.bytes).ok());
  corpus.push_back(std::move(snapshot));
  return corpus;
}

// Aggregator factory matching the snapshot base frame above.
StreamingAggregator MakeSnapshotTarget() {
  SwEstimatorOptions options;
  options.epsilon = 1.0;
  options.d = 32;
  return StreamingAggregator::Make(options).ValueOrDie();
}

bool SameState(const AccumulatorState& a, const AccumulatorState& b) {
  if (a.num_reports != b.num_reports) return false;
  if (a.tables.size() != b.tables.size()) return false;
  for (size_t t = 0; t < a.tables.size(); ++t) {
    if (a.tables[t].n != b.tables[t].n) return false;
    if (a.tables[t].counts != b.tables[t].counts) return false;
  }
  return true;
}

// The acceptance sweep: >= 100k seeded mutants across the whole corpus,
// each one driven through the strict decoders. Any crash, hang, or
// sanitizer report fails CI; a decode returning ok is fine (some mutants
// are valid frames — e.g. a payload bit flip that still parses).
TEST(FuzzWire, HundredThousandMutantsAreTypedErrorsOrValidAbsorbs) {
  const std::vector<BaseFrame> corpus = BuildCorpus();
  ASSERT_EQ(corpus.size(), 21u);
  const size_t kMutantsPerFrame = 4800;
  size_t total = 0;
  size_t decoded_ok = 0;
  for (size_t f = 0; f < corpus.size(); ++f) {
    const BaseFrame& base = corpus[f];
    ByteMutator mutator(0x9E3779B97F4A7C15ULL + f);
    StreamingAggregator scratch = MakeSnapshotTarget();
    for (size_t i = 0; i < kMutantsPerFrame; ++i) {
      const std::string mutant = mutator.Mutate(base.bytes);
      ++total;
      // Context line for replay on failure: (frame, iteration, kind).
      SCOPED_TRACE(base.name + " iteration " + std::to_string(i) + " " +
                   std::string(MutationKindName(mutator.last_kind())));
      // PeekFrame must classify or reject, never misbehave.
      const auto info = wire::PeekFrame(mutant);
      (void)info;
      switch (base.type) {
        case wire::FrameType::kReports: {
          auto decoded = wire::DecodeReportFrame(base.spec, *base.protocol,
                                                 wire::FrameBytes(mutant));
          if (decoded.ok()) ++decoded_ok;
          break;
        }
        case wire::FrameType::kSketch: {
          auto decoded = wire::DecodeSketchFrame(base.spec, *base.protocol,
                                                 wire::FrameBytes(mutant));
          if (decoded.ok()) ++decoded_ok;
          break;
        }
        case wire::FrameType::kSnapshot: {
          const Status st = wire::DecodeSnapshotFrameInto(
              1.0, wire::FrameBytes(mutant), &scratch);
          if (st.ok()) ++decoded_ok;
          break;
        }
      }
    }
  }
  EXPECT_GE(total, 100000u);
  // Sanity on the mutator itself: corruption must actually corrupt. Many
  // mutants legitimately survive — a bit flip inside a report frame's
  // payload region is still a well-formed frame — but structural damage
  // (preamble, lengths, context) must be rejected often enough that a
  // mostly-accepting sweep signals a broken mutator or a decoder that
  // stopped validating.
  EXPECT_LT(decoded_ok, total / 2);
}

// Forced coverage of every corruption kind against every corpus entry
// (the uniform sweep above could in principle miss a (kind, frame) pair).
TEST(FuzzWire, EveryMutationKindOnEveryFrame) {
  const std::vector<BaseFrame> corpus = BuildCorpus();
  for (size_t f = 0; f < corpus.size(); ++f) {
    const BaseFrame& base = corpus[f];
    ByteMutator mutator(0xA24BAED4963EE407ULL + f);
    StreamingAggregator scratch = MakeSnapshotTarget();
    for (int k = 0; k < static_cast<int>(MutationKind::kMutationKindCount);
         ++k) {
      for (size_t rep = 0; rep < 50; ++rep) {
        const std::string mutant =
            mutator.MutateWith(static_cast<MutationKind>(k), base.bytes);
        switch (base.type) {
          case wire::FrameType::kReports:
            (void)wire::DecodeReportFrame(base.spec, *base.protocol,
                                          wire::FrameBytes(mutant));
            break;
          case wire::FrameType::kSketch:
            (void)wire::DecodeSketchFrame(base.spec, *base.protocol,
                                          wire::FrameBytes(mutant));
            break;
          case wire::FrameType::kSnapshot:
            (void)wire::DecodeSnapshotFrameInto(
                1.0, wire::FrameBytes(mutant), &scratch);
            break;
          case wire::FrameType::kAck:
            (void)wire::DecodeAckFrame(wire::FrameBytes(mutant));
            break;
        }
      }
    }
  }
}

// A full CollectorSession under hostile frames: every rejected frame must
// leave the accumulator bit-identical to its pre-frame state, and the
// final sketch must be byte-identical to a session that saw only the
// accepted frames.
TEST(FuzzWire, RejectedFramesLeaveCollectorStateByteIdentical) {
  const wire::MethodSpec spec =
      wire::ParseMethodSpec("cfo-olh-16", 1.0, 64).ValueOrDie();
  ProtocolPtr protocol = wire::MakeProtocolForSpec(spec).ValueOrDie();
  const std::vector<double> values = GoldenRatioValues(256);
  Rng rng(ShardSeed(23, 0));
  auto chunk = protocol->EncodePerturbBatch(values, rng).ValueOrDie();
  std::string clean_frame;
  ASSERT_TRUE(
      wire::EncodeReportFrame(spec, *protocol, *chunk, &clean_frame).ok());

  serve::CollectorSession session =
      serve::CollectorSession::Make(spec).ValueOrDie();
  ASSERT_TRUE(session.HandleFrame(clean_frame).ok());

  std::vector<std::string> accepted;
  ByteMutator mutator(0x8CB92BA72F3D8DD7ULL);
  for (size_t i = 0; i < 3000; ++i) {
    const std::string mutant = mutator.Mutate(clean_frame);
    const AccumulatorState before = session.ExportState();
    const Status st = session.HandleFrame(mutant);
    if (st.ok()) {
      accepted.push_back(mutant);
    } else {
      ASSERT_TRUE(SameState(before, session.ExportState()))
          << "rejected frame moved accumulator state at iteration " << i
          << " (" << MutationKindName(mutator.last_kind())
          << "): " << st.ToString();
    }
  }

  // Replay only the accepted frames on a fresh session: the sketches must
  // match byte for byte — the hostile frames contributed nothing.
  serve::CollectorSession replay =
      serve::CollectorSession::Make(spec).ValueOrDie();
  ASSERT_TRUE(replay.HandleFrame(clean_frame).ok());
  for (const std::string& frame : accepted) {
    ASSERT_TRUE(replay.HandleFrame(frame).ok());
  }
  EXPECT_EQ(session.EncodeSketch().ValueOrDie(),
            replay.EncodeSketch().ValueOrDie());
}

// The push-mode transport decoder under corrupted streams, cut at every
// chunk granularity: all chunkings of the same hostile byte stream must
// produce the same frames and the same accept/reject verdicts (the
// pull/push equivalence net_test.cc proves for clean streams, here under
// corruption).
TEST(FuzzWire, FrameDecoderChunkingsAgreeOnHostileStreams) {
  const std::vector<BaseFrame> corpus = BuildCorpus();
  const std::string& base = corpus[0].bytes;  // sw-ems report frame

  ByteMutator mutator(0xBF58476D1CE4E5B9ULL);
  for (size_t i = 0; i < 400; ++i) {
    // Corrupt the TRANSPORT stream (prefix + frame + prefix + frame), so
    // length-prefix lies and frame-boundary truncations both occur.
    std::ostringstream encoded;
    EXPECT_TRUE(serve::WriteFrame(encoded, base).ok());
    EXPECT_TRUE(serve::WriteFrame(encoded, base).ok());
    const std::string stream = mutator.Mutate(encoded.str());

    struct Outcome {
      std::vector<std::string> frames;
      bool feed_error = false;
      std::string at_end;
    };
    std::vector<Outcome> outcomes;
    for (const size_t chunk_size : {size_t{1}, size_t{3}, size_t{7},
                                    size_t{64}, stream.size() + 1}) {
      Outcome outcome;
      serve::FrameDecoder decoder;
      for (size_t off = 0; off < stream.size(); off += chunk_size) {
        const size_t len = std::min(chunk_size, stream.size() - off);
        if (!decoder.Feed(std::string_view(stream).substr(off, len)).ok()) {
          outcome.feed_error = true;
        }
        std::string frame;
        while (decoder.Next(&frame)) outcome.frames.push_back(frame);
      }
      outcome.at_end = decoder.AtEnd().ToString();
      outcomes.push_back(std::move(outcome));
    }
    for (size_t c = 0; c < outcomes.size(); ++c) {
      // WHEN a poisoned prefix is first noticed is chunking-dependent (a
      // small chunk surfaces it in a later Feed; a big one inside Next
      // after the preceding frame pops) — but a Feed error must never be
      // LOST: if any call errored, the final verdict is an error too.
      if (outcomes[c].feed_error) {
        EXPECT_NE(outcomes[c].at_end, Status::OK().ToString())
            << "feed error lost by AtEnd at iteration " << i;
      }
      if (c == 0) continue;
      EXPECT_EQ(outcomes[0].frames, outcomes[c].frames)
          << "chunking disagreement at iteration " << i;
      EXPECT_EQ(outcomes[0].at_end, outcomes[c].at_end)
          << "AtEnd verdict disagreement at iteration " << i;
    }
  }
}

// The WAL replay surface under corruption (serve/wal.h): every mutant of
// a valid log — frame records, a checkpoint record, tenant-tagged
// contents — must replay to either a hard typed error or an intact-prefix
// state with a typed torn tail. Never a crash, hang, or sanitizer report.
TEST(FuzzWire, MutatedWalReplaysToTypedErrorOrPrefix) {
  const wire::MethodSpec spec =
      wire::ParseMethodSpec("sw-ems", 1.0, 32).ValueOrDie();
  ProtocolPtr protocol = wire::MakeProtocolForSpec(spec).ValueOrDie();
  const std::vector<double> values = GoldenRatioValues(120);

  // A pristine log: checkpoint (via compaction) + tenant + plain frames.
  const std::string path = testing::TempDir() + "fuzz_wal_base.wal";
  std::remove(path.c_str());
  {
    serve::CollectorSession session =
        serve::CollectorSession::Make(spec).ValueOrDie();
    EXPECT_TRUE(session.RecoverAndAttachWal(path).ok());
    for (size_t i = 0; i < 3; ++i) {
      Rng rng(ShardSeed(29, i));
      auto chunk = protocol
                       ->EncodePerturbBatch(std::span<const double>(values)
                                                .subspan(i * 40, 40),
                                            rng)
                       .ValueOrDie();
      std::string frame;
      const uint32_t tenant = i == 1 ? 9u : wire::kDefaultTenant;
      EXPECT_TRUE(wire::EncodeReportFrame(spec, tenant, *protocol, *chunk,
                                          &frame)
                      .ok());
      EXPECT_TRUE(session.HandleFrame(frame).ok());
      if (i == 1) {
        EXPECT_TRUE(session.CompactWal().ok());
      }
    }
  }
  std::string base;
  {
    std::ifstream in(path, std::ios::binary);
    base.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  ASSERT_GT(base.size(), serve::kWalHeaderBytes);

  const std::string mutant_path = testing::TempDir() + "fuzz_wal_mutant.wal";
  ByteMutator mutator(0xD6E8FEB86659FD93ULL);
  size_t replayed_ok = 0;
  for (size_t i = 0; i < 2000; ++i) {
    const std::string mutant = mutator.Mutate(base);
    SCOPED_TRACE("wal mutant iteration " + std::to_string(i) + " " +
                 std::string(MutationKindName(mutator.last_kind())));
    {
      std::ofstream out(mutant_path, std::ios::binary | std::ios::trunc);
      out.write(mutant.data(), static_cast<std::streamsize>(mutant.size()));
    }
    serve::CollectorSession session =
        serve::CollectorSession::Make(spec).ValueOrDie();
    serve::WalConsumer consumer;
    consumer.on_frame = [&session](std::string_view frame) {
      return session.HandleFrame(frame);
    };
    consumer.on_checkpoint = [&session](const std::vector<std::string>& s) {
      return session.ResetToSketches(s);
    };
    auto stats = serve::ReplayWal(mutant_path, consumer);
    if (stats.ok()) {
      ++replayed_ok;
      // An OK replay keeps only an intact prefix: its clean byte count
      // never exceeds the mutant and any tail error is the typed one.
      EXPECT_LE(stats.value().clean_bytes, mutant.size());
      if (!stats.value().tail.ok()) {
        EXPECT_EQ(stats.value().tail.code(), StatusCode::kOutOfRange);
      }
    }
    // A non-OK replay is a typed hard error — reaching here at all means
    // no crash; nothing else to assert.
  }
  // Tail corruption is survivable by design, so many mutants replay OK.
  EXPECT_GT(replayed_ok, 0u);
  std::remove(path.c_str());
  std::remove(mutant_path.c_str());
}

// The seeded sweep is replayable: the same seed produces the same mutants.
TEST(FuzzWire, MutatorIsDeterministic) {
  const std::vector<BaseFrame> corpus = BuildCorpus();
  ByteMutator a(1234), b(1234);
  for (size_t i = 0; i < 200; ++i) {
    const std::string& bytes = corpus[i % corpus.size()].bytes;
    EXPECT_EQ(a.Mutate(bytes), b.Mutate(bytes));
    EXPECT_EQ(a.last_kind(), b.last_kind());
  }
}

}  // namespace
}  // namespace numdist
