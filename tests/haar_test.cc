#include "hierarchy/haar.h"

#include <gtest/gtest.h>

#include <cmath>

namespace numdist {
namespace {

std::vector<uint32_t> StepLeafValues(size_t n, size_t d, Rng& rng) {
  // 70% of mass in the first quarter of the domain.
  std::vector<uint32_t> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.7)) {
      values.push_back(static_cast<uint32_t>(rng.UniformInt(d / 4)));
    } else {
      values.push_back(static_cast<uint32_t>(rng.UniformInt(d)));
    }
  }
  return values;
}

TEST(HaarHrrTest, MakeValidation) {
  EXPECT_FALSE(HaarHrrProtocol::Make(0.0, 16).ok());
  EXPECT_FALSE(HaarHrrProtocol::Make(1.0, 15).ok());  // not a power of two
  EXPECT_TRUE(HaarHrrProtocol::Make(1.0, 16).ok());
  EXPECT_TRUE(HaarHrrProtocol::Make(1.0, 1024).ok());
}

TEST(HaarHrrTest, TreeIsBinary) {
  const HaarHrrProtocol haar = HaarHrrProtocol::Make(1.0, 64).ValueOrDie();
  EXPECT_EQ(haar.tree().beta(), 2u);
  EXPECT_EQ(haar.tree().height(), 6u);
}

TEST(HaarHrrTest, SynthesisIsExactlyConsistent) {
  // The top-down Haar synthesis guarantees parent == left + right exactly.
  const HaarHrrProtocol haar = HaarHrrProtocol::Make(1.0, 32).ValueOrDie();
  Rng rng(1);
  const auto values = StepLeafValues(20000, 32, rng);
  const std::vector<double> nodes = haar.CollectNodeEstimates(values, rng);
  const HierarchyTree& t = haar.tree();
  for (size_t level = 0; level < t.height(); ++level) {
    for (size_t i = 0; i < t.LevelSize(level); ++i) {
      const double parent = nodes[t.FlatIndex(level, i)];
      const double kids = nodes[t.FlatIndex(level + 1, 2 * i)] +
                          nodes[t.FlatIndex(level + 1, 2 * i + 1)];
      EXPECT_NEAR(parent, kids, 1e-10);
    }
  }
}

TEST(HaarHrrTest, RootIsOne) {
  const HaarHrrProtocol haar = HaarHrrProtocol::Make(1.0, 16).ValueOrDie();
  Rng rng(2);
  const auto values = StepLeafValues(5000, 16, rng);
  const std::vector<double> nodes = haar.CollectNodeEstimates(values, rng);
  EXPECT_DOUBLE_EQ(nodes[0], 1.0);
}

TEST(HaarHrrTest, HighEpsilonLeavesNearTruth) {
  const size_t d = 16;
  const HaarHrrProtocol haar = HaarHrrProtocol::Make(6.0, d).ValueOrDie();
  Rng rng(3);
  const auto values = StepLeafValues(200000, d, rng);
  std::vector<double> truth(d, 0.0);
  for (uint32_t v : values) truth[v] += 1.0 / values.size();
  const std::vector<double> nodes = haar.CollectNodeEstimates(values, rng);
  const size_t off = haar.tree().LevelOffset(haar.tree().height());
  for (size_t i = 0; i < d; ++i) {
    EXPECT_NEAR(nodes[off + i], truth[i], 0.04) << "leaf=" << i;
  }
}

TEST(HaarHrrTest, RangeQueriesTrackTruth) {
  const size_t d = 64;
  const HaarHrrProtocol haar = HaarHrrProtocol::Make(3.0, d).ValueOrDie();
  Rng rng(4);
  const auto values = StepLeafValues(200000, d, rng);
  std::vector<double> truth(d, 0.0);
  for (uint32_t v : values) truth[v] += 1.0 / values.size();
  const std::vector<double> nodes = haar.CollectNodeEstimates(values, rng);
  for (size_t lo : {0u, 8u, 16u}) {
    for (size_t hi : {24u, 48u, 64u}) {
      double expected = 0.0;
      for (size_t leaf = lo; leaf < hi; ++leaf) expected += truth[leaf];
      EXPECT_NEAR(TreeRangeQuery(haar.tree(), nodes, lo, hi), expected, 0.06)
          << "lo=" << lo << " hi=" << hi;
    }
  }
}

TEST(HaarHrrTest, DeterministicForFixedSeed) {
  const HaarHrrProtocol haar = HaarHrrProtocol::Make(1.0, 16).ValueOrDie();
  Rng rng_data(5);
  const auto values = StepLeafValues(3000, 16, rng_data);
  Rng rng1(9);
  Rng rng2(9);
  EXPECT_EQ(haar.CollectNodeEstimates(values, rng1),
            haar.CollectNodeEstimates(values, rng2));
}

}  // namespace
}  // namespace numdist
