#include "common/matrix.h"

#include <gtest/gtest.h>

namespace numdist {
namespace {

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3, 0.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 0.5);
  m(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
}

TEST(MatrixTest, RowPointerIsContiguous) {
  Matrix m(2, 2);
  m(1, 0) = 3.0;
  m(1, 1) = 4.0;
  const double* r = m.row(1);
  EXPECT_DOUBLE_EQ(r[0], 3.0);
  EXPECT_DOUBLE_EQ(r[1], 4.0);
}

TEST(MatrixTest, Multiply) {
  Matrix m(2, 3);
  // [1 2 3; 4 5 6] * [1, 1, 1] = [6, 15]
  double v = 1.0;
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 3; ++j) m(i, j) = v++;
  }
  const std::vector<double> y = m.Multiply({1.0, 1.0, 1.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(MatrixTest, TransposeMultiply) {
  Matrix m(2, 3);
  double v = 1.0;
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 3; ++j) m(i, j) = v++;
  }
  const std::vector<double> y = m.TransposeMultiply({1.0, 2.0});
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 1.0 + 8.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0 + 10.0);
  EXPECT_DOUBLE_EQ(y[2], 3.0 + 12.0);
}

TEST(MatrixTest, ColumnSum) {
  Matrix m(3, 2);
  m(0, 0) = 1.0;
  m(1, 0) = 2.0;
  m(2, 0) = 3.0;
  EXPECT_DOUBLE_EQ(m.ColumnSum(0), 6.0);
  EXPECT_DOUBLE_EQ(m.ColumnSum(1), 0.0);
}

TEST(MatrixTest, SolveSimpleSystem) {
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 3.0;
  std::vector<double> b = {5.0, 10.0};
  ASSERT_TRUE(Matrix::SolveInPlace(a, b));
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(MatrixTest, SolveNeedsPivoting) {
  Matrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  std::vector<double> b = {2.0, 3.0};
  ASSERT_TRUE(Matrix::SolveInPlace(a, b));
  EXPECT_NEAR(b[0], 3.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
}

TEST(MatrixTest, SolveDetectsSingular) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  std::vector<double> b = {1.0, 2.0};
  EXPECT_FALSE(Matrix::SolveInPlace(a, b));
}

TEST(MatrixTest, SolveLargerRandomSystemRoundTrips) {
  const size_t n = 12;
  Matrix a(n, n);
  std::vector<double> x_true(n);
  uint64_t state = 99;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 40) / (1 << 24) - 0.5;
  };
  for (size_t i = 0; i < n; ++i) {
    x_true[i] = next();
    for (size_t j = 0; j < n; ++j) a(i, j) = next();
    a(i, i) += 4.0;  // diagonal dominance -> well-conditioned
  }
  Matrix a_copy = a;
  std::vector<double> b = a.Multiply(x_true);
  ASSERT_TRUE(Matrix::SolveInPlace(a_copy, b));
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(b[i], x_true[i], 1e-9);
}

}  // namespace
}  // namespace numdist
