// The attacker model (scenario/attack.h) against the frequency oracles,
// and the consistency-check defenses (postprocess/defense.h) that are
// supposed to catch it. The quantitative claims mirror the LDP poisoning
// literature: output poisoning (maximal-gain attacks) produces large,
// detectable estimate skew; input poisoning is weaker and stealthier.
// All runs are seeded and thread-count invariant.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "fo/adaptive.h"
#include "hierarchy/haar.h"
#include "hierarchy/hh.h"
#include "mean/sr.h"
#include "postprocess/defense.h"
#include "scenario/attack.h"
#include "scenario/scenario.h"

namespace numdist {
namespace {

FoAttackConfig BaseConfig(FoChannel channel, AttackKind kind,
                          double fraction) {
  FoAttackConfig config;
  config.channel = channel;
  config.attack.kind = kind;
  config.attack.fraction = fraction;
  config.attack.target = 32;
  config.domain = 64;
  config.epsilon = 1.0;
  config.n = 60000;
  config.shards = 4;
  config.seed = 42;
  return config;
}

// --- Output poisoning (maximal gain) skews every oracle measurably. ---

TEST(Attack, GrrOutputPoisoningInflatesTarget) {
  const auto result =
      RunFoAttack(BaseConfig(FoChannel::kGrr, AttackKind::kOutputPoison, 0.05))
          .ValueOrDie();
  // 5% of users reporting the target verbatim blows the debiased estimate
  // far past any honest frequency (the GRR debias multiplies raw counts
  // by ~(d-1) at eps=1).
  EXPECT_GT(result.target_gain, 0.5);
  EXPECT_TRUE(result.defense.flagged);
  EXPECT_EQ(result.defense.spike_bucket, 32u);
  // GRR reports always sum to n, so the sum check alone cannot see it —
  // the spike test is what fires.
  EXPECT_LT(std::fabs(result.defense.sum_deviation), 0.05);
  EXPECT_TRUE(result.defense.spike_flag);
}

TEST(Attack, OlhOutputPoisoningInflatesTargetAndSum) {
  const auto result =
      RunFoAttack(BaseConfig(FoChannel::kOlh, AttackKind::kOutputPoison, 0.05))
          .ValueOrDie();
  EXPECT_GT(result.target_gain, 0.05);
  // A crafted (seed, y) pair supports the target with probability 1
  // instead of 1/g, which inflates the total estimated mass.
  EXPECT_GT(result.defense.sum_deviation, 0.03);
  EXPECT_TRUE(result.defense.flagged);
}

TEST(Attack, OueOutputPoisoningDeflatesSum) {
  const auto result =
      RunFoAttack(BaseConfig(FoChannel::kOue, AttackKind::kOutputPoison, 0.05))
          .ValueOrDie();
  EXPECT_GT(result.target_gain, 0.05);
  // A lone set bit carries far fewer ones than an honest OUE report
  // (q*(d-1) expected extra bits), so total estimated mass collapses.
  EXPECT_LT(result.defense.sum_deviation, -0.5);
  EXPECT_TRUE(result.defense.flagged);
}

// --- Input poisoning is real but stealthy. ---

TEST(Attack, GrrInputPoisoningIsWeakerAndStealthier) {
  const auto output =
      RunFoAttack(BaseConfig(FoChannel::kGrr, AttackKind::kOutputPoison, 0.05))
          .ValueOrDie();
  const auto input =
      RunFoAttack(BaseConfig(FoChannel::kGrr, AttackKind::kInputPoison, 0.05))
          .ValueOrDie();
  // Honest perturbation of a poisoned input caps the per-user gain at the
  // mechanism's sensitivity: positive skew, but far less than output
  // poisoning (the exact value is seed-stable; ~0.008 here vs ~1.9).
  EXPECT_GT(input.target_gain, 0.0);
  EXPECT_LT(input.target_gain, output.target_gain / 5.0);
  // ...and the consistency defense does NOT fire (the reports are
  // protocol-conformant; this is the known detection gap).
  EXPECT_FALSE(input.defense.flagged);
}

// --- Mitigation: norm-sub claws back part of the injected mass. ---

TEST(Attack, NormSubMitigationReducesGrrGain) {
  const auto result =
      RunFoAttack(BaseConfig(FoChannel::kGrr, AttackKind::kOutputPoison, 0.05))
          .ValueOrDie();
  EXPECT_LT(result.mitigated_gain, result.target_gain);
  EXPECT_GT(result.mitigated_gain, 0.0);  // not a full repair
}

// --- Determinism: bit-identical for any thread count. ---

TEST(Attack, RunFoAttackIsThreadCountInvariant) {
  auto config = BaseConfig(FoChannel::kOlh, AttackKind::kOutputPoison, 0.05);
  config.n = 20000;
  config.threads = 1;
  const auto one = RunFoAttack(config).ValueOrDie();
  config.threads = 8;
  const auto eight = RunFoAttack(config).ValueOrDie();
  EXPECT_EQ(one.honest_reports, eight.honest_reports);
  EXPECT_EQ(one.attacked_reports, eight.attacked_reports);
  ASSERT_EQ(one.estimate.size(), eight.estimate.size());
  for (size_t i = 0; i < one.estimate.size(); ++i) {
    EXPECT_EQ(one.estimate[i], eight.estimate[i]) << "bucket " << i;
  }
  EXPECT_EQ(one.target_gain, eight.target_gain);
  EXPECT_EQ(one.defense.max_spike_z, eight.defense.max_spike_z);
}

TEST(Attack, NoAttackMeansNoAttackedReports) {
  auto config = BaseConfig(FoChannel::kGrr, AttackKind::kNone, 0.0);
  config.n = 10000;
  const auto result = RunFoAttack(config).ValueOrDie();
  EXPECT_EQ(result.attacked_reports, 0u);
  EXPECT_EQ(result.honest_reports, 10000u);
  EXPECT_FALSE(result.defense.flagged);
}

// --- Validation of attack specs and configs. ---

TEST(Attack, ValidateAttackRejectsMalformedSpecs) {
  AttackSpec spec;
  spec.kind = AttackKind::kOutputPoison;
  spec.fraction = 1.5;
  EXPECT_FALSE(ValidateAttack(spec, 64, "phase").ok());
  spec.fraction = -0.1;
  EXPECT_FALSE(ValidateAttack(spec, 64, "phase").ok());
  spec.fraction = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(ValidateAttack(spec, 64, "phase").ok());
  spec.fraction = 0.0;  // attack kind with zero fraction is a contradiction
  EXPECT_FALSE(ValidateAttack(spec, 64, "phase").ok());
  spec.fraction = 0.1;
  spec.target = 64;  // out of domain
  EXPECT_FALSE(ValidateAttack(spec, 64, "phase").ok());
  spec.target = 63;
  EXPECT_TRUE(ValidateAttack(spec, 64, "phase").ok());
  spec.kind = AttackKind::kNone;  // fraction without a kind
  EXPECT_FALSE(ValidateAttack(spec, 64, "phase").ok());
}

TEST(Attack, ParseAttackKindRoundTrips) {
  for (const char* name : {"none", "input", "output", "skew"}) {
    const auto kind = ParseAttackKind(name);
    ASSERT_TRUE(kind.ok()) << name;
    EXPECT_EQ(AttackKindName(kind.value()), std::string_view(name));
  }
  EXPECT_FALSE(ParseAttackKind("mga").ok());
  EXPECT_FALSE(ParseAttackKind("").ok());
}

TEST(Attack, RunFoAttackRejectsBadConfigs) {
  auto config = BaseConfig(FoChannel::kGrr, AttackKind::kOutputPoison, 0.05);
  config.epsilon = 0.0;
  EXPECT_FALSE(RunFoAttack(config).ok());
  config = BaseConfig(FoChannel::kGrr, AttackKind::kOutputPoison, 0.05);
  config.domain = 1;
  EXPECT_FALSE(RunFoAttack(config).ok());
  config = BaseConfig(FoChannel::kGrr, AttackKind::kOutputPoison, 0.05);
  config.n = 0;
  EXPECT_FALSE(RunFoAttack(config).ok());
  config = BaseConfig(FoChannel::kGrr, AttackKind::kOutputPoison, 0.05);
  config.shards = 0;
  EXPECT_FALSE(RunFoAttack(config).ok());
}

// --- Defense unit behavior. ---

TEST(Defense, FlagsObviousSpikeNotUniform) {
  std::vector<double> uniform(64, 1.0 / 64.0);
  const auto clean = AnalyzeFrequencies(uniform).ValueOrDie();
  EXPECT_FALSE(clean.flagged);
  EXPECT_LT(std::fabs(clean.sum_deviation), 1e-9);

  std::vector<double> spiked = uniform;
  spiked[17] += 0.5;
  const auto hit = AnalyzeFrequencies(spiked).ValueOrDie();
  EXPECT_TRUE(hit.flagged);
  EXPECT_EQ(hit.spike_bucket, 17u);
  EXPECT_TRUE(hit.sum_flag);  // sums to 1.5 now
  EXPECT_TRUE(hit.spike_flag);
}

TEST(Defense, RejectsNonFiniteAndEmptyInput) {
  EXPECT_FALSE(AnalyzeFrequencies({}).ok());
  EXPECT_FALSE(
      AnalyzeFrequencies({0.5, std::numeric_limits<double>::quiet_NaN()})
          .ok());
  EXPECT_FALSE(
      AnalyzeFrequencies({0.5, std::numeric_limits<double>::infinity()}).ok());
}

TEST(Defense, CountsOverloadMatchesFractions) {
  std::vector<int64_t> counts(64, 100);
  counts[5] = 5000;
  const auto from_counts = AnalyzeCounts(counts).ValueOrDie();
  EXPECT_TRUE(from_counts.spike_flag);
  EXPECT_EQ(from_counts.spike_bucket, 5u);
  EXPECT_FALSE(AnalyzeCounts(std::vector<int64_t>{1, -2, 3}).ok());
  EXPECT_FALSE(AnalyzeCounts(std::vector<int64_t>{0, 0, 0}).ok());
}

TEST(Defense, ValidateDefenseOptionsRejectsBadThresholds) {
  DefenseOptions options;
  options.spike_z_threshold = 0.0;
  EXPECT_FALSE(ValidateDefenseOptions(options).ok());
  options.spike_z_threshold = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(ValidateDefenseOptions(options).ok());
  options = DefenseOptions{};
  options.sum_tolerance = -1.0;
  EXPECT_FALSE(ValidateDefenseOptions(options).ok());
  EXPECT_TRUE(ValidateDefenseOptions(DefenseOptions{}).ok());
}

// --- Hierarchy estimators: spiked-level-report poisoning. ---

// HH output poisoning: the malicious cohort pins every report to the LEAF
// level and reports the target leaf verbatim through that level's GRR — a
// protocol-legal report ValidateReport cannot reject. Per-level estimates
// debias independently, so the injected mass lands squarely on the target
// leaf. GRR reports always sum to the level's n, which keeps the leaf
// estimates summing to 1: the sum check is structurally blind here, and
// the leave-one-out spike test is the defense that must fire.
TEST(Attack, HhSpikedLevelReportPoisoningIsCaughtBySpikeTest) {
  const double epsilon = 2.0;
  const size_t d = 16;
  const uint32_t target = 11;
  // Precondition for the crafted report shape: the leaf level's adaptive
  // FO resolves to GRR at this (epsilon, d), i.e. d - 2 < 3 e^eps.
  ASSERT_TRUE(AdaptiveFo::Make(epsilon, d).ValueOrDie().uses_grr());
  auto hh = HhProtocol::Make(epsilon, d, /*beta=*/4).ValueOrDie();
  const auto leaf_level = static_cast<uint32_t>(hh.tree().height());

  // Honest population: uniform over the 16 leaves.
  std::vector<uint32_t> honest(40000);
  for (size_t i = 0; i < honest.size(); ++i) {
    honest[i] = static_cast<uint32_t>(i % d);
  }
  Rng rng(1234);
  std::vector<HhReport> reports;
  hh.PerturbBatch(honest, rng, &reports);
  auto clean_sketches = hh.MakeSketches();
  for (const HhReport& report : reports) {
    ASSERT_TRUE(hh.Absorb(report, &clean_sketches).ok());
  }

  // 2000 crafted leaf-level reports (5% of the population), all naming
  // the target category outright.
  auto sketches = clean_sketches;
  const HhReport crafted{leaf_level, FoReport{.seed = 0, .value = target}};
  ASSERT_TRUE(hh.ValidateReport(crafted).ok())
      << "the maximal-gain report must be protocol-conformant";
  for (size_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(hh.Absorb(crafted, &sketches).ok());
  }

  const size_t off = hh.tree().LevelOffset(leaf_level);
  const std::vector<double> clean_nodes =
      hh.NodeEstimatesFromSketches(clean_sketches);
  const std::vector<double> nodes = hh.NodeEstimatesFromSketches(sketches);
  const std::vector<double> clean_leaves(clean_nodes.begin() + off,
                                         clean_nodes.begin() + off + d);
  const std::vector<double> leaves(nodes.begin() + off,
                                   nodes.begin() + off + d);
  EXPECT_GT(leaves[target], clean_leaves[target] + 0.05)
      << "the injected mass must skew the target leaf";

  const auto clean_def = AnalyzeFrequencies(clean_leaves).ValueOrDie();
  EXPECT_FALSE(clean_def.flagged) << "honest noise must not trip the z-test";
  const auto def = AnalyzeFrequencies(leaves).ValueOrDie();
  EXPECT_TRUE(def.spike_flag);
  EXPECT_TRUE(def.flagged);
  EXPECT_EQ(def.spike_bucket, target);
  // The structural blind spot, asserted: level estimates stay normalized.
  EXPECT_LT(std::fabs(def.sum_deviation), 0.05);
}

// HaarHRR output poisoning: malicious users cycle uniformly over the
// internal levels (mimicking the honest population division) and at each
// level report the target leaf's (ancestor node, sign) item with the
// EXACT Hadamard entry for a cycled column — supporting the item with
// probability 1 instead of p. Pushing the target's WHOLE ancestor path is
// the attacker's strongest move AND the detectable one: Haar synthesis
// conserves mass at every split, so the path attack depresses all 15
// other leaves by exactly the same amount — the background stays flat and
// the spike z-test fires. (A single-level attack dumps the entire
// depression on the target's sibling, inflating the background std enough
// to camouflage the z-score: a worked example of why spiked-LEVEL attacks
// are the interesting case.) Leaf estimates sum to 1 by construction, so
// the sum check is provably blind here.
TEST(Attack, HaarSpikedLevelReportPoisoningIsCaughtBySpikeTest) {
  const double epsilon = 1.0;
  const size_t d = 16;
  const uint32_t target = 5;
  auto haar = HaarHrrProtocol::Make(epsilon, d).ValueOrDie();
  const size_t h = haar.tree().height();

  std::vector<uint32_t> honest(40000);
  for (size_t i = 0; i < honest.size(); ++i) {
    honest[i] = static_cast<uint32_t>(i % d);
  }
  Rng rng(4321);
  std::vector<HaarReport> reports;
  haar.PerturbBatch(honest, rng, &reports);
  auto clean_sketches = haar.MakeSketches();
  for (const HaarReport& report : reports) {
    ASSERT_TRUE(haar.Absorb(report, &clean_sketches).ok());
  }

  auto sketches = clean_sketches;
  const size_t n_bad = 6000;  // 15% of the combined population
  for (size_t i = 0; i < n_bad; ++i) {
    const size_t t = i % h;  // uniform over internal levels, like honest
    const size_t node = haar.tree().AncestorAt(target, t);
    // The (node, sign) item on the target's path: sign says which half
    // of the node's span the target leaf lies in.
    const auto item = static_cast<uint32_t>(
        2 * node + (haar.tree().AncestorAt(target, t + 1) % 2));
    // Hadamard order at level t: 2 * 2^t items, a power of two already.
    const auto order = static_cast<uint32_t>(2 * haar.tree().LevelSize(t));
    const auto col = static_cast<uint32_t>((i / h) % order);
    // The exact matrix entry (-1)^popcount(item & col): this report
    // supports `item` with probability 1 instead of p.
    const auto bit =
        static_cast<int8_t>((std::popcount(item & col) & 1) != 0 ? -1 : 1);
    const HaarReport crafted{static_cast<uint32_t>(t),
                             HrrReport{col, bit}};
    ASSERT_TRUE(haar.ValidateReport(crafted).ok())
        << "the maximal-gain report must be protocol-conformant";
    ASSERT_TRUE(haar.Absorb(crafted, &sketches).ok());
  }

  const size_t off = haar.tree().LevelOffset(h);
  const std::vector<double> clean_nodes =
      haar.NodeEstimatesFromSketches(clean_sketches);
  const std::vector<double> nodes = haar.NodeEstimatesFromSketches(sketches);
  const std::vector<double> clean_leaves(clean_nodes.begin() + off,
                                         clean_nodes.begin() + off + d);
  const std::vector<double> leaves(nodes.begin() + off,
                                   nodes.begin() + off + d);
  EXPECT_GT(leaves[target], clean_leaves[target] + 0.05);

  const auto clean_def = AnalyzeFrequencies(clean_leaves).ValueOrDie();
  EXPECT_FALSE(clean_def.flagged);
  const auto def = AnalyzeFrequencies(leaves).ValueOrDie();
  EXPECT_TRUE(def.spike_flag);
  EXPECT_TRUE(def.flagged);
  EXPECT_EQ(def.spike_bucket, target);
  // Mass conservation is exact in Haar synthesis — the sum defense is
  // provably useless against it, which is why spike detection matters.
  EXPECT_LT(std::fabs(def.sum_deviation), 1e-9);
}

// --- Mean/variance estimators: moment poisoning. ---

// SR moment poisoning: the crafted report is the mechanism's own legal
// extreme +1/(p - q), so no range or conformance check can reject it —
// the scalar protocols have NO applicable consistency defense (the known
// detection gap, mirroring the input-poisoning one). What the test pins
// down is the gain hierarchy: output poisoning moves the mean by the full
// report magnitude per malicious user, input poisoning only by the
// honest sensitivity, and the same crafted reports drag the phase-2
// variance estimate toward its maximum.
TEST(Attack, MomentPoisoningInflatesMeanAndVariance) {
  const double epsilon = 1.0;
  auto sr = StochasticRounding::Make(epsilon).ValueOrDie();
  const size_t n_honest = 20000;
  const size_t n_bad = 1000;

  // Honest population: a uniform grid on [0, 1] (mean 1/2 -> 0 mapped).
  std::vector<double> honest_values(n_honest);
  for (size_t i = 0; i < n_honest; ++i) {
    honest_values[i] = static_cast<double>(i % 1000) / 999.0;
  }
  Rng rng(777);
  std::vector<double> honest_reports;
  honest_reports.reserve(n_honest);
  for (const double v : honest_values) {
    honest_reports.push_back(sr.Perturb(2.0 * v - 1.0, rng));
  }
  const double clean_mean =
      StochasticRounding::MeanOfReports(honest_reports);

  // Input poisoning: lie v = 1, perturb honestly.
  std::vector<double> input_poisoned = honest_reports;
  Rng rng_input(778);
  for (size_t i = 0; i < n_bad; ++i) {
    input_poisoned.push_back(sr.Perturb(1.0, rng_input));
  }
  // Output poisoning: the legal extreme, verbatim.
  std::vector<double> output_poisoned = honest_reports;
  for (size_t i = 0; i < n_bad; ++i) {
    output_poisoned.push_back(sr.report_magnitude());
  }
  const double input_gain =
      StochasticRounding::MeanOfReports(input_poisoned) - clean_mean;
  const double output_gain =
      StochasticRounding::MeanOfReports(output_poisoned) - clean_mean;
  EXPECT_GT(input_gain, 0.0);
  EXPECT_GT(output_gain, 1.5 * input_gain)
      << "output poisoning must beat the sensitivity-capped input lie";
  // ~(n_bad / n) * report_magnitude: the analytical per-user gain cap.
  EXPECT_LT(output_gain, 2.0 * sr.report_magnitude() *
                             static_cast<double>(n_bad) /
                             static_cast<double>(n_honest + n_bad));

  // Variance phase (two-phase moments protocol, phase 2): honest users
  // report mapped squared deviations around the broadcast mean; the same
  // crafted extreme claims the maximal deviation and inflates the
  // variance estimate.
  Rng rng_var(779);
  std::vector<double> dev_reports;
  dev_reports.reserve(n_honest + n_bad);
  for (const double v : honest_values) {
    const double dev = v - 0.5;
    dev_reports.push_back(sr.Perturb(2.0 * dev * dev - 1.0, rng_var));
  }
  const double clean_variance =
      (StochasticRounding::MeanOfReports(dev_reports) + 1.0) / 2.0;
  EXPECT_NEAR(clean_variance, 1.0 / 12.0, 0.02)
      << "honest uniform variance sanity check";
  for (size_t i = 0; i < n_bad; ++i) {
    dev_reports.push_back(sr.report_magnitude());
  }
  const double attacked_variance =
      (StochasticRounding::MeanOfReports(dev_reports) + 1.0) / 2.0;
  EXPECT_GT(attacked_variance, clean_variance + 0.03);
}

// --- Scenario engine integration: attacked SW phases. ---

TEST(Attack, PoisonBuiltinSkewsAndDetects) {
  const auto config = BuiltinScenario("poison").ValueOrDie();
  const auto result = RunScenario(config).ValueOrDie();
  ASSERT_EQ(result.checkpoints.size(), 4u);
  // Clean phase: no attacked reports, defense silent.
  EXPECT_EQ(result.checkpoints[0].atk_reports, 0u);
  EXPECT_FALSE(result.checkpoints[0].def_flagged);
  EXPECT_FALSE(result.checkpoints[1].def_flagged);
  // Attack phase: reports land, estimate skews toward the target, defense
  // fires on both attacked checkpoints.
  const auto& last = result.checkpoints.back();
  EXPECT_GT(last.atk_reports, 0u);
  EXPECT_GT(last.atk_gain, 0.005);
  EXPECT_TRUE(result.checkpoints[2].def_flagged);
  EXPECT_TRUE(last.def_flagged);
}

TEST(Attack, ScenarioAttackIsThreadCountInvariant) {
  auto config = BuiltinScenario("poison").ValueOrDie();
  config.threads = 1;
  const auto one = RunScenario(config).ValueOrDie();
  config.threads = 8;
  const auto eight = RunScenario(config).ValueOrDie();
  ASSERT_EQ(one.checkpoints.size(), eight.checkpoints.size());
  for (size_t c = 0; c < one.checkpoints.size(); ++c) {
    EXPECT_EQ(one.checkpoints[c].atk_reports, eight.checkpoints[c].atk_reports);
    EXPECT_EQ(one.checkpoints[c].atk_gain, eight.checkpoints[c].atk_gain);
    EXPECT_EQ(one.checkpoints[c].def_spike_z,
              eight.checkpoints[c].def_spike_z);
    ASSERT_EQ(one.checkpoints[c].estimate.size(),
              eight.checkpoints[c].estimate.size());
    for (size_t i = 0; i < one.checkpoints[c].estimate.size(); ++i) {
      EXPECT_EQ(one.checkpoints[c].estimate[i],
                eight.checkpoints[c].estimate[i]);
    }
  }
}

}  // namespace
}  // namespace numdist
