// The attacker model (scenario/attack.h) against the frequency oracles,
// and the consistency-check defenses (postprocess/defense.h) that are
// supposed to catch it. The quantitative claims mirror the LDP poisoning
// literature: output poisoning (maximal-gain attacks) produces large,
// detectable estimate skew; input poisoning is weaker and stealthier.
// All runs are seeded and thread-count invariant.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "postprocess/defense.h"
#include "scenario/attack.h"
#include "scenario/scenario.h"

namespace numdist {
namespace {

FoAttackConfig BaseConfig(FoChannel channel, AttackKind kind,
                          double fraction) {
  FoAttackConfig config;
  config.channel = channel;
  config.attack.kind = kind;
  config.attack.fraction = fraction;
  config.attack.target = 32;
  config.domain = 64;
  config.epsilon = 1.0;
  config.n = 60000;
  config.shards = 4;
  config.seed = 42;
  return config;
}

// --- Output poisoning (maximal gain) skews every oracle measurably. ---

TEST(Attack, GrrOutputPoisoningInflatesTarget) {
  const auto result =
      RunFoAttack(BaseConfig(FoChannel::kGrr, AttackKind::kOutputPoison, 0.05))
          .ValueOrDie();
  // 5% of users reporting the target verbatim blows the debiased estimate
  // far past any honest frequency (the GRR debias multiplies raw counts
  // by ~(d-1) at eps=1).
  EXPECT_GT(result.target_gain, 0.5);
  EXPECT_TRUE(result.defense.flagged);
  EXPECT_EQ(result.defense.spike_bucket, 32u);
  // GRR reports always sum to n, so the sum check alone cannot see it —
  // the spike test is what fires.
  EXPECT_LT(std::fabs(result.defense.sum_deviation), 0.05);
  EXPECT_TRUE(result.defense.spike_flag);
}

TEST(Attack, OlhOutputPoisoningInflatesTargetAndSum) {
  const auto result =
      RunFoAttack(BaseConfig(FoChannel::kOlh, AttackKind::kOutputPoison, 0.05))
          .ValueOrDie();
  EXPECT_GT(result.target_gain, 0.05);
  // A crafted (seed, y) pair supports the target with probability 1
  // instead of 1/g, which inflates the total estimated mass.
  EXPECT_GT(result.defense.sum_deviation, 0.03);
  EXPECT_TRUE(result.defense.flagged);
}

TEST(Attack, OueOutputPoisoningDeflatesSum) {
  const auto result =
      RunFoAttack(BaseConfig(FoChannel::kOue, AttackKind::kOutputPoison, 0.05))
          .ValueOrDie();
  EXPECT_GT(result.target_gain, 0.05);
  // A lone set bit carries far fewer ones than an honest OUE report
  // (q*(d-1) expected extra bits), so total estimated mass collapses.
  EXPECT_LT(result.defense.sum_deviation, -0.5);
  EXPECT_TRUE(result.defense.flagged);
}

// --- Input poisoning is real but stealthy. ---

TEST(Attack, GrrInputPoisoningIsWeakerAndStealthier) {
  const auto output =
      RunFoAttack(BaseConfig(FoChannel::kGrr, AttackKind::kOutputPoison, 0.05))
          .ValueOrDie();
  const auto input =
      RunFoAttack(BaseConfig(FoChannel::kGrr, AttackKind::kInputPoison, 0.05))
          .ValueOrDie();
  // Honest perturbation of a poisoned input caps the per-user gain at the
  // mechanism's sensitivity: positive skew, but far less than output
  // poisoning (the exact value is seed-stable; ~0.008 here vs ~1.9).
  EXPECT_GT(input.target_gain, 0.0);
  EXPECT_LT(input.target_gain, output.target_gain / 5.0);
  // ...and the consistency defense does NOT fire (the reports are
  // protocol-conformant; this is the known detection gap).
  EXPECT_FALSE(input.defense.flagged);
}

// --- Mitigation: norm-sub claws back part of the injected mass. ---

TEST(Attack, NormSubMitigationReducesGrrGain) {
  const auto result =
      RunFoAttack(BaseConfig(FoChannel::kGrr, AttackKind::kOutputPoison, 0.05))
          .ValueOrDie();
  EXPECT_LT(result.mitigated_gain, result.target_gain);
  EXPECT_GT(result.mitigated_gain, 0.0);  // not a full repair
}

// --- Determinism: bit-identical for any thread count. ---

TEST(Attack, RunFoAttackIsThreadCountInvariant) {
  auto config = BaseConfig(FoChannel::kOlh, AttackKind::kOutputPoison, 0.05);
  config.n = 20000;
  config.threads = 1;
  const auto one = RunFoAttack(config).ValueOrDie();
  config.threads = 8;
  const auto eight = RunFoAttack(config).ValueOrDie();
  EXPECT_EQ(one.honest_reports, eight.honest_reports);
  EXPECT_EQ(one.attacked_reports, eight.attacked_reports);
  ASSERT_EQ(one.estimate.size(), eight.estimate.size());
  for (size_t i = 0; i < one.estimate.size(); ++i) {
    EXPECT_EQ(one.estimate[i], eight.estimate[i]) << "bucket " << i;
  }
  EXPECT_EQ(one.target_gain, eight.target_gain);
  EXPECT_EQ(one.defense.max_spike_z, eight.defense.max_spike_z);
}

TEST(Attack, NoAttackMeansNoAttackedReports) {
  auto config = BaseConfig(FoChannel::kGrr, AttackKind::kNone, 0.0);
  config.n = 10000;
  const auto result = RunFoAttack(config).ValueOrDie();
  EXPECT_EQ(result.attacked_reports, 0u);
  EXPECT_EQ(result.honest_reports, 10000u);
  EXPECT_FALSE(result.defense.flagged);
}

// --- Validation of attack specs and configs. ---

TEST(Attack, ValidateAttackRejectsMalformedSpecs) {
  AttackSpec spec;
  spec.kind = AttackKind::kOutputPoison;
  spec.fraction = 1.5;
  EXPECT_FALSE(ValidateAttack(spec, 64, "phase").ok());
  spec.fraction = -0.1;
  EXPECT_FALSE(ValidateAttack(spec, 64, "phase").ok());
  spec.fraction = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(ValidateAttack(spec, 64, "phase").ok());
  spec.fraction = 0.0;  // attack kind with zero fraction is a contradiction
  EXPECT_FALSE(ValidateAttack(spec, 64, "phase").ok());
  spec.fraction = 0.1;
  spec.target = 64;  // out of domain
  EXPECT_FALSE(ValidateAttack(spec, 64, "phase").ok());
  spec.target = 63;
  EXPECT_TRUE(ValidateAttack(spec, 64, "phase").ok());
  spec.kind = AttackKind::kNone;  // fraction without a kind
  EXPECT_FALSE(ValidateAttack(spec, 64, "phase").ok());
}

TEST(Attack, ParseAttackKindRoundTrips) {
  for (const char* name : {"none", "input", "output", "skew"}) {
    const auto kind = ParseAttackKind(name);
    ASSERT_TRUE(kind.ok()) << name;
    EXPECT_EQ(AttackKindName(kind.value()), std::string_view(name));
  }
  EXPECT_FALSE(ParseAttackKind("mga").ok());
  EXPECT_FALSE(ParseAttackKind("").ok());
}

TEST(Attack, RunFoAttackRejectsBadConfigs) {
  auto config = BaseConfig(FoChannel::kGrr, AttackKind::kOutputPoison, 0.05);
  config.epsilon = 0.0;
  EXPECT_FALSE(RunFoAttack(config).ok());
  config = BaseConfig(FoChannel::kGrr, AttackKind::kOutputPoison, 0.05);
  config.domain = 1;
  EXPECT_FALSE(RunFoAttack(config).ok());
  config = BaseConfig(FoChannel::kGrr, AttackKind::kOutputPoison, 0.05);
  config.n = 0;
  EXPECT_FALSE(RunFoAttack(config).ok());
  config = BaseConfig(FoChannel::kGrr, AttackKind::kOutputPoison, 0.05);
  config.shards = 0;
  EXPECT_FALSE(RunFoAttack(config).ok());
}

// --- Defense unit behavior. ---

TEST(Defense, FlagsObviousSpikeNotUniform) {
  std::vector<double> uniform(64, 1.0 / 64.0);
  const auto clean = AnalyzeFrequencies(uniform).ValueOrDie();
  EXPECT_FALSE(clean.flagged);
  EXPECT_LT(std::fabs(clean.sum_deviation), 1e-9);

  std::vector<double> spiked = uniform;
  spiked[17] += 0.5;
  const auto hit = AnalyzeFrequencies(spiked).ValueOrDie();
  EXPECT_TRUE(hit.flagged);
  EXPECT_EQ(hit.spike_bucket, 17u);
  EXPECT_TRUE(hit.sum_flag);  // sums to 1.5 now
  EXPECT_TRUE(hit.spike_flag);
}

TEST(Defense, RejectsNonFiniteAndEmptyInput) {
  EXPECT_FALSE(AnalyzeFrequencies({}).ok());
  EXPECT_FALSE(
      AnalyzeFrequencies({0.5, std::numeric_limits<double>::quiet_NaN()})
          .ok());
  EXPECT_FALSE(
      AnalyzeFrequencies({0.5, std::numeric_limits<double>::infinity()}).ok());
}

TEST(Defense, CountsOverloadMatchesFractions) {
  std::vector<int64_t> counts(64, 100);
  counts[5] = 5000;
  const auto from_counts = AnalyzeCounts(counts).ValueOrDie();
  EXPECT_TRUE(from_counts.spike_flag);
  EXPECT_EQ(from_counts.spike_bucket, 5u);
  EXPECT_FALSE(AnalyzeCounts(std::vector<int64_t>{1, -2, 3}).ok());
  EXPECT_FALSE(AnalyzeCounts(std::vector<int64_t>{0, 0, 0}).ok());
}

TEST(Defense, ValidateDefenseOptionsRejectsBadThresholds) {
  DefenseOptions options;
  options.spike_z_threshold = 0.0;
  EXPECT_FALSE(ValidateDefenseOptions(options).ok());
  options.spike_z_threshold = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(ValidateDefenseOptions(options).ok());
  options = DefenseOptions{};
  options.sum_tolerance = -1.0;
  EXPECT_FALSE(ValidateDefenseOptions(options).ok());
  EXPECT_TRUE(ValidateDefenseOptions(DefenseOptions{}).ok());
}

// --- Scenario engine integration: attacked SW phases. ---

TEST(Attack, PoisonBuiltinSkewsAndDetects) {
  const auto config = BuiltinScenario("poison").ValueOrDie();
  const auto result = RunScenario(config).ValueOrDie();
  ASSERT_EQ(result.checkpoints.size(), 4u);
  // Clean phase: no attacked reports, defense silent.
  EXPECT_EQ(result.checkpoints[0].atk_reports, 0u);
  EXPECT_FALSE(result.checkpoints[0].def_flagged);
  EXPECT_FALSE(result.checkpoints[1].def_flagged);
  // Attack phase: reports land, estimate skews toward the target, defense
  // fires on both attacked checkpoints.
  const auto& last = result.checkpoints.back();
  EXPECT_GT(last.atk_reports, 0u);
  EXPECT_GT(last.atk_gain, 0.005);
  EXPECT_TRUE(result.checkpoints[2].def_flagged);
  EXPECT_TRUE(last.def_flagged);
}

TEST(Attack, ScenarioAttackIsThreadCountInvariant) {
  auto config = BuiltinScenario("poison").ValueOrDie();
  config.threads = 1;
  const auto one = RunScenario(config).ValueOrDie();
  config.threads = 8;
  const auto eight = RunScenario(config).ValueOrDie();
  ASSERT_EQ(one.checkpoints.size(), eight.checkpoints.size());
  for (size_t c = 0; c < one.checkpoints.size(); ++c) {
    EXPECT_EQ(one.checkpoints[c].atk_reports, eight.checkpoints[c].atk_reports);
    EXPECT_EQ(one.checkpoints[c].atk_gain, eight.checkpoints[c].atk_gain);
    EXPECT_EQ(one.checkpoints[c].def_spike_z,
              eight.checkpoints[c].def_spike_z);
    ASSERT_EQ(one.checkpoints[c].estimate.size(),
              eight.checkpoints[c].estimate.size());
    for (size_t i = 0; i < one.checkpoints[c].estimate.size(); ++i) {
      EXPECT_EQ(one.checkpoints[c].estimate[i],
                eight.checkpoints[c].estimate[i]);
    }
  }
}

}  // namespace
}  // namespace numdist
