// Cross-process network determinism (the acceptance invariant of the
// event-loop collector): real collector_cli --listen server processes fed
// by real report_client --connect --connections fleets over TCP loopback
// produce sketches byte-identical to the stdio pipeline over the same
// frames — including when SIGTERM lands mid-stream and the server has to
// drain gracefully, and for a coordinator accepting sketch frames over
// its own listener from leaf collectors dialing --out=tcp:. Tool
// locations come from CMake (NUMDIST_*_PATH); the test self-skips when
// the tools were not built.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace numdist {
namespace {

#if defined(NUMDIST_COLLECTOR_CLI_PATH) && defined(NUMDIST_REPORT_CLIENT_PATH)

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Every process run shares one deterministic workload so sketches are
// comparable across topologies.
const char kCommonFlags[] =
    " --method=sw-ems --epsilon=1.000000 --buckets=64";
const char kClientFlags[] =
    " --uniform=20000 --seed=7 --shard-size=1000";

std::string Collector() { return std::string(NUMDIST_COLLECTOR_CLI_PATH); }
std::string Client() { return std::string(NUMDIST_REPORT_CLIENT_PATH); }

// The stdio-pipeline sketch all network runs must match byte-for-byte.
std::string StdioReferenceSketch() {
  const std::string path = testing::TempDir() + "net_process_ref.sketch";
  const std::string command = "'" + Client() + "'" + kCommonFlags +
                              kClientFlags + " 2>/dev/null | '" + Collector() +
                              "'" + kCommonFlags + " --out='" + path +
                              "' 2>/dev/null";
  EXPECT_EQ(std::system(command.c_str()), 0) << command;
  return ReadFile(path);
}

TEST(NetProcessTest, TcpMultiConnectionRunMatchesStdio) {
  const std::string port_file = testing::TempDir() + "net_process_port.txt";
  const std::string sketch = testing::TempDir() + "net_process_tcp.sketch";
  std::remove(port_file.c_str());
  // Server in the background; client over 8 TCP connections; SIGTERM
  // drains the server once the client is done.
  const std::string script =
      "'" + Collector() + "'" + kCommonFlags + " --listen=tcp:0 --port-file='" +
      port_file + "' --out='" + sketch +
      "' 2>/dev/null &\n"
      "pid=$!\n"
      "for i in $(seq 200); do [ -s '" + port_file +
      "' ] && break; sleep 0.05; done\n"
      "[ -s '" + port_file + "' ] || { kill $pid; exit 11; }\n"
      "'" + Client() + "'" + kCommonFlags + kClientFlags +
      " --connect=\"$(cat '" + port_file +
      "')\" --connections=8 2>/dev/null || exit 9\n"
      "kill -TERM $pid\n"
      "wait $pid || exit 10\n";
  ASSERT_EQ(std::system(script.c_str()), 0) << script;
  EXPECT_EQ(ReadFile(sketch), StdioReferenceSketch());
  std::remove(port_file.c_str());
  std::remove(sketch.c_str());
}

TEST(NetProcessTest, SigtermMidStreamStillDrainsToByteIdentity) {
  const std::string port_file = testing::TempDir() + "net_process_port2.txt";
  const std::string sketch = testing::TempDir() + "net_process_drain.sketch";
  std::remove(port_file.c_str());
  // The client paces 20 frames at 20ms each (~400ms of streaming); the
  // SIGTERM lands well inside that window. A graceful drain must still
  // serve every open connection to EOF, so the sketch contains ALL
  // frames, not just those absorbed before the signal.
  const std::string script =
      "'" + Collector() + "'" + kCommonFlags + " --listen=tcp:0 --port-file='" +
      port_file + "' --out='" + sketch +
      "' 2>/dev/null &\n"
      "pid=$!\n"
      "for i in $(seq 200); do [ -s '" + port_file +
      "' ] && break; sleep 0.05; done\n"
      "[ -s '" + port_file + "' ] || { kill $pid; exit 11; }\n"
      "'" + Client() + "'" + kCommonFlags + kClientFlags +
      " --connect=\"$(cat '" + port_file +
      "')\" --connections=3 --pace-us=20000 2>/dev/null &\n"
      "clpid=$!\n"
      "sleep 0.15\n"
      "kill -TERM $pid\n"
      "wait $clpid || exit 9\n"
      "wait $pid || exit 10\n";
  ASSERT_EQ(std::system(script.c_str()), 0) << script;
  EXPECT_EQ(ReadFile(sketch), StdioReferenceSketch());
  std::remove(port_file.c_str());
  std::remove(sketch.c_str());
}

TEST(NetProcessTest, CoordinatorAcceptsSketchesOverItsListener) {
  const std::string tmp = testing::TempDir();
  const std::string s0 = tmp + "net_process_leaf0.sketch";
  const std::string s1 = tmp + "net_process_leaf1.sketch";
  // File-based coordinator output is the reference.
  for (int k = 0; k < 2; ++k) {
    const std::string command =
        "'" + Client() + "'" + kCommonFlags + kClientFlags + " --offset=" +
        std::to_string(k) + " --stride=2 2>/dev/null | '" + Collector() +
        "'" + kCommonFlags + " --out='" + (k == 0 ? s0 : s1) +
        "' 2>/dev/null";
    ASSERT_EQ(std::system(command.c_str()), 0) << command;
  }
  const std::string file_csv = tmp + "net_process_file.csv";
  ASSERT_EQ(std::system(("'" + Collector() + "'" + kCommonFlags +
                         " --merge='" + s0 + "," + s1 + "' --csv >'" +
                         file_csv + "' 2>/dev/null")
                            .c_str()),
            0);
  // Network coordinator: leaves dial their sketches upstream over TCP.
  const std::string port_file = tmp + "net_process_coord_port.txt";
  const std::string net_csv = tmp + "net_process_net.csv";
  std::remove(port_file.c_str());
  const std::string script =
      "'" + Collector() + "'" + kCommonFlags +
      " --merge --listen=tcp:0 --port-file='" + port_file +
      "' --expect-frames=2 --csv >'" + net_csv +
      "' 2>/dev/null &\n"
      "pid=$!\n"
      "for i in $(seq 200); do [ -s '" + port_file +
      "' ] && break; sleep 0.05; done\n"
      "[ -s '" + port_file + "' ] || { kill $pid; exit 11; }\n"
      "ep=\"$(cat '" + port_file + "')\"\n"
      "'" + Client() + "'" + kCommonFlags + kClientFlags +
      " --offset=0 --stride=2 2>/dev/null | '" + Collector() + "'" +
      kCommonFlags + " --out=\"$ep\" 2>/dev/null || { kill $pid; exit 9; }\n"
      "'" + Client() + "'" + kCommonFlags + kClientFlags +
      " --offset=1 --stride=2 2>/dev/null | '" + Collector() + "'" +
      kCommonFlags + " --out=\"$ep\" 2>/dev/null || { kill $pid; exit 9; }\n"
      "wait $pid || exit 10\n";
  ASSERT_EQ(std::system(script.c_str()), 0) << script;
  EXPECT_EQ(ReadFile(net_csv), ReadFile(file_csv));
  for (const std::string& p :
       {s0, s1, file_csv, port_file, net_csv}) {
    std::remove(p.c_str());
  }
}

#else

TEST(NetProcessTest, SkippedWithoutTools) {
  GTEST_SKIP() << "collector_cli / report_client were not built "
                  "(NUMDIST_BUILD_TOOLS=OFF)";
}

#endif

}  // namespace
}  // namespace numdist
