#include <gtest/gtest.h>

#include <cmath>

#include "common/histogram.h"
#include "fo/adaptive.h"
#include "fo/grr.h"
#include "fo/hash.h"
#include "fo/hrr.h"
#include "fo/olh.h"

namespace numdist {
namespace {

// A fixed skewed distribution over a small domain, used for unbiasedness
// checks across all oracles.
std::vector<uint32_t> MakeValues(size_t n, size_t domain, Rng& rng) {
  std::vector<double> weights(domain);
  for (size_t i = 0; i < domain; ++i) {
    weights[i] = static_cast<double>(domain - i);  // linearly decreasing
  }
  DiscreteSampler sampler(weights);
  std::vector<uint32_t> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    values.push_back(static_cast<uint32_t>(sampler.Sample(rng)));
  }
  return values;
}

std::vector<double> TrueFrequencies(const std::vector<uint32_t>& values,
                                    size_t domain) {
  std::vector<double> freq(domain, 0.0);
  for (uint32_t v : values) freq[v] += 1.0;
  for (double& f : freq) f /= static_cast<double>(values.size());
  return freq;
}

// ---------------------------------------------------------------- GRR --

TEST(GrrTest, MakeValidation) {
  EXPECT_FALSE(Grr::Make(0.0, 4).ok());
  EXPECT_FALSE(Grr::Make(-1.0, 4).ok());
  EXPECT_FALSE(Grr::Make(1.0, 1).ok());
  EXPECT_TRUE(Grr::Make(1.0, 2).ok());
}

TEST(GrrTest, ProbabilitiesMatchFormula) {
  const double eps = 1.2;
  const size_t d = 8;
  const Grr grr = Grr::Make(eps, d).ValueOrDie();
  const double e = std::exp(eps);
  EXPECT_NEAR(grr.p(), e / (e + d - 1), 1e-12);
  EXPECT_NEAR(grr.q(), 1.0 / (e + d - 1), 1e-12);
  EXPECT_NEAR(grr.p() + (d - 1) * grr.q(), 1.0, 1e-12);
  EXPECT_NEAR(grr.p() / grr.q(), e, 1e-9);
}

TEST(GrrTest, PerturbStaysInDomain) {
  const Grr grr = Grr::Make(0.5, 10).ValueOrDie();
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(grr.Perturb(i % 10, rng), 10u);
  }
}

TEST(GrrTest, PerturbRetainsWithProbabilityP) {
  const Grr grr = Grr::Make(2.0, 5).ValueOrDie();
  Rng rng(2);
  int kept = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) kept += (grr.Perturb(3, rng) == 3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(kept) / n, grr.p(), 0.01);
}

TEST(GrrTest, EstimateIsUnbiased) {
  Rng rng(3);
  const size_t d = 6;
  const auto values = MakeValues(200000, d, rng);
  const auto truth = TrueFrequencies(values, d);
  const Grr grr = Grr::Make(1.0, d).ValueOrDie();
  std::vector<uint32_t> reports;
  reports.reserve(values.size());
  for (uint32_t v : values) reports.push_back(grr.Perturb(v, rng));
  const auto est = grr.Estimate(reports);
  for (size_t v = 0; v < d; ++v) {
    EXPECT_NEAR(est[v], truth[v], 0.02) << "v=" << v;
  }
}

TEST(GrrTest, EstimatesSumToOne) {
  // The GRR de-biasing is affine in the counts, so estimates always sum to 1.
  Rng rng(4);
  const size_t d = 4;
  const auto values = MakeValues(5000, d, rng);
  const Grr grr = Grr::Make(0.5, d).ValueOrDie();
  std::vector<uint32_t> reports;
  for (uint32_t v : values) reports.push_back(grr.Perturb(v, rng));
  const auto est = grr.Estimate(reports);
  EXPECT_NEAR(hist::Sum(est), 1.0, 1e-9);
}

TEST(GrrTest, EmpiricalVarianceMatchesFormula) {
  const double eps = 1.0;
  const size_t d = 16;
  const size_t n = 20000;
  const Grr grr = Grr::Make(eps, d).ValueOrDie();
  Rng rng(5);
  // All users hold value 0; measure variance of the estimate for value 7
  // (true frequency 0) across repetitions.
  const int reps = 60;
  double sq = 0.0;
  for (int r = 0; r < reps; ++r) {
    std::vector<uint64_t> counts(d, 0);
    for (size_t i = 0; i < n; ++i) ++counts[grr.Perturb(0, rng)];
    const auto est = grr.EstimateFromCounts(counts, n);
    sq += est[7] * est[7];
  }
  const double var = sq / reps;
  EXPECT_NEAR(var, Grr::Variance(eps, d, n), Grr::Variance(eps, d, n) * 0.6);
}

// ---------------------------------------------------------------- OLH --

TEST(OlhTest, MakeValidation) {
  EXPECT_FALSE(Olh::Make(0.0, 16).ok());
  EXPECT_FALSE(Olh::Make(1.0, 1).ok());
  EXPECT_TRUE(Olh::Make(1.0, 16).ok());
}

TEST(OlhTest, OptimalGIsExpEpsPlusOne) {
  const Olh olh = Olh::Make(std::log(3.0), 100).ValueOrDie();
  EXPECT_EQ(olh.g(), 4u);  // round(e^eps) + 1 = 3 + 1
  const Olh olh2 = Olh::Make(0.1, 100).ValueOrDie();
  EXPECT_EQ(olh2.g(), 2u);  // clamped to >= 2
}

TEST(OlhTest, ExplicitGOverride) {
  const Olh olh = Olh::Make(1.0, 100, 8).ValueOrDie();
  EXPECT_EQ(olh.g(), 8u);
}

TEST(OlhTest, ReportsStayInHashedDomain) {
  const Olh olh = Olh::Make(1.0, 64).ValueOrDie();
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const OlhReport rep = olh.Perturb(i % 64, rng);
    EXPECT_LT(rep.y, olh.g());
  }
}

TEST(OlhTest, EstimateIsUnbiased) {
  Rng rng(7);
  const size_t d = 32;
  const auto values = MakeValues(150000, d, rng);
  const auto truth = TrueFrequencies(values, d);
  const Olh olh = Olh::Make(1.0, d).ValueOrDie();
  std::vector<OlhReport> reports;
  reports.reserve(values.size());
  for (uint32_t v : values) reports.push_back(olh.Perturb(v, rng));
  const auto est = olh.Estimate(reports);
  for (size_t v = 0; v < d; ++v) {
    EXPECT_NEAR(est[v], truth[v], 0.025) << "v=" << v;
  }
}

TEST(OlhTest, AbsorbBatchEqualsSequentialAbsorbExactly) {
  // Exercise the remainder path too: a count that is not a multiple of the
  // internal block size, over an odd domain.
  const size_t d = 129;
  const Olh olh = Olh::Make(1.0, d).ValueOrDie();
  Rng rng(91);
  std::vector<OlhReport> reports;
  for (size_t i = 0; i < 1003; ++i) {
    reports.push_back(
        olh.Perturb(static_cast<uint32_t>(rng.UniformInt(d)), rng));
  }
  FoSketch sequential = olh.MakeSketch();
  for (const OlhReport& rep : reports) olh.Absorb(rep, &sequential);
  FoSketch batched = olh.MakeSketch();
  olh.AbsorbBatch(reports, &batched);
  EXPECT_EQ(sequential.n, batched.n);
  ASSERT_EQ(sequential.counts.size(), batched.counts.size());
  for (size_t v = 0; v < d; ++v) {
    EXPECT_EQ(sequential.counts[v], batched.counts[v]) << "v=" << v;
  }
}

TEST(OlhTest, WireFormatAbsorbBatchMatchesNative) {
  const size_t d = 37;
  const Olh olh = Olh::Make(0.8, d).ValueOrDie();
  Rng rng(92);
  std::vector<OlhReport> native;
  std::vector<FoReport> wire;
  for (size_t i = 0; i < 500; ++i) {
    const OlhReport rep =
        olh.Perturb(static_cast<uint32_t>(rng.UniformInt(d)), rng);
    native.push_back(rep);
    wire.push_back(FoReport{rep.seed, rep.y});
  }
  FoSketch a = olh.MakeSketch();
  olh.AbsorbBatch(native, &a);
  FoSketch b = olh.MakeSketch();
  olh.AbsorbBatch(std::span<const FoReport>(wire), &b);
  EXPECT_EQ(a.n, b.n);
  for (size_t v = 0; v < d; ++v) EXPECT_EQ(a.counts[v], b.counts[v]);
}

TEST(OlhTest, SupportCountsMatchBruteForceHashing) {
  const size_t d = 21;
  const Olh olh = Olh::Make(1.0, d).ValueOrDie();
  Rng rng(93);
  std::vector<OlhReport> reports;
  for (size_t i = 0; i < 200; ++i) {
    reports.push_back(
        olh.Perturb(static_cast<uint32_t>(rng.UniformInt(d)), rng));
  }
  const std::vector<uint64_t> counts = olh.SupportCounts(reports);
  for (size_t v = 0; v < d; ++v) {
    uint64_t expected = 0;
    for (const OlhReport& rep : reports) {
      if (OlhHash(rep.seed, v, olh.g()) == rep.y) ++expected;
    }
    EXPECT_EQ(counts[v], expected) << "v=" << v;
  }
}

TEST(OlhTest, VarianceIndependentOfDomain) {
  EXPECT_DOUBLE_EQ(Olh::Variance(1.0, 1000), Olh::Variance(1.0, 1000));
  const double v = Olh::Variance(1.0, 10000);
  const double e = std::exp(1.0);
  EXPECT_NEAR(v, 4.0 * e / ((e - 1) * (e - 1) * 10000.0), 1e-15);
}

TEST(OlhHashTest, DeterministicAndInRange) {
  for (uint64_t seed : {1ULL, 42ULL, 0xdeadbeefULL}) {
    for (uint64_t v = 0; v < 100; ++v) {
      const uint32_t h1 = OlhHash(seed, v, 16);
      const uint32_t h2 = OlhHash(seed, v, 16);
      EXPECT_EQ(h1, h2);
      EXPECT_LT(h1, 16u);
    }
  }
}

TEST(OlhHashTest, ApproximatelyUniform) {
  const uint32_t g = 8;
  std::vector<int> counts(g, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[OlhHash(0x1234, static_cast<uint64_t>(i), g)];
  }
  for (uint32_t b = 0; b < g; ++b) {
    EXPECT_NEAR(static_cast<double>(counts[b]) / n, 1.0 / g, 0.01);
  }
}

// ---------------------------------------------------------------- HRR --

TEST(HrrTest, MakeValidation) {
  EXPECT_FALSE(Hrr::Make(0.0, 8).ok());
  EXPECT_FALSE(Hrr::Make(1.0, 1).ok());
  EXPECT_TRUE(Hrr::Make(1.0, 8).ok());
}

TEST(HrrTest, OrderIsNextPowerOfTwo) {
  EXPECT_EQ(Hrr::Make(1.0, 8).ValueOrDie().order(), 8u);
  EXPECT_EQ(Hrr::Make(1.0, 9).ValueOrDie().order(), 16u);
  EXPECT_EQ(Hrr::Make(1.0, 2).ValueOrDie().order(), 2u);
}

TEST(HrrTest, HadamardEntriesAreOrthogonal) {
  const uint32_t k = 16;
  for (uint32_t r1 = 0; r1 < k; ++r1) {
    for (uint32_t r2 = 0; r2 < k; ++r2) {
      int dot = 0;
      for (uint32_t c = 0; c < k; ++c) {
        dot += HadamardEntry(r1, c) * HadamardEntry(r2, c);
      }
      EXPECT_EQ(dot, r1 == r2 ? static_cast<int>(k) : 0);
    }
  }
}

TEST(HrrTest, ReportBitsAreSigns) {
  const Hrr hrr = Hrr::Make(1.0, 8).ValueOrDie();
  Rng rng(8);
  for (int i = 0; i < 500; ++i) {
    const HrrReport rep = hrr.Perturb(i % 8, rng);
    EXPECT_TRUE(rep.bit == 1 || rep.bit == -1);
    EXPECT_LT(rep.col, hrr.order());
  }
}

TEST(HrrTest, EstimateIsUnbiased) {
  Rng rng(9);
  const size_t d = 16;
  const auto values = MakeValues(200000, d, rng);
  const auto truth = TrueFrequencies(values, d);
  const Hrr hrr = Hrr::Make(1.0, d).ValueOrDie();
  std::vector<HrrReport> reports;
  reports.reserve(values.size());
  for (uint32_t v : values) reports.push_back(hrr.Perturb(v, rng));
  const auto est = hrr.Estimate(reports);
  for (size_t v = 0; v < d; ++v) {
    EXPECT_NEAR(est[v], truth[v], 0.03) << "v=" << v;
  }
}

// ----------------------------------------------------------- Adaptive --

TEST(AdaptiveFoTest, SelectsGrrForSmallDomains) {
  // d - 2 < 3 e^eps: with eps=1, threshold ~ 10.15 -> d=8 uses GRR.
  EXPECT_TRUE(AdaptiveFo::Make(1.0, 8).ValueOrDie().uses_grr());
}

TEST(AdaptiveFoTest, SelectsOlhForLargeDomains) {
  EXPECT_FALSE(AdaptiveFo::Make(1.0, 256).ValueOrDie().uses_grr());
}

TEST(AdaptiveFoTest, BoundaryFollowsVarianceRule) {
  const double eps = 1.0;
  const double threshold = 3.0 * std::exp(eps) + 2.0;  // d < threshold -> GRR
  const size_t below = static_cast<size_t>(threshold) - 1;
  const size_t above = static_cast<size_t>(threshold) + 2;
  EXPECT_TRUE(AdaptiveFo::Make(eps, below).ValueOrDie().uses_grr());
  EXPECT_FALSE(AdaptiveFo::Make(eps, above).ValueOrDie().uses_grr());
}

TEST(AdaptiveFoTest, RunProducesNearTruthEstimates) {
  Rng rng(10);
  const size_t d = 16;
  const auto values = MakeValues(100000, d, rng);
  const auto truth = TrueFrequencies(values, d);
  const AdaptiveFo fo = AdaptiveFo::Make(2.0, d).ValueOrDie();
  const auto est = fo.Run(values, rng);
  for (size_t v = 0; v < d; ++v) {
    EXPECT_NEAR(est[v], truth[v], 0.02);
  }
}

TEST(AdaptiveFoTest, VarianceMatchesSelectedProtocol) {
  const AdaptiveFo grr_like = AdaptiveFo::Make(1.0, 4).ValueOrDie();
  EXPECT_DOUBLE_EQ(grr_like.VariancePerEstimate(1000),
                   Grr::Variance(1.0, 4, 1000));
  const AdaptiveFo olh_like = AdaptiveFo::Make(1.0, 1024).ValueOrDie();
  EXPECT_DOUBLE_EQ(olh_like.VariancePerEstimate(1000),
                   Olh::Variance(1.0, 1000));
}

TEST(NextPow2Test, Values) {
  EXPECT_EQ(NextPow2(1), 1u);
  EXPECT_EQ(NextPow2(2), 2u);
  EXPECT_EQ(NextPow2(3), 4u);
  EXPECT_EQ(NextPow2(17), 32u);
  EXPECT_EQ(NextPow2(1024), 1024u);
}

}  // namespace
}  // namespace numdist
