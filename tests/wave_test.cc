#include "core/wave.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/square_wave.h"
#include "core/transition.h"

namespace numdist {
namespace {

TEST(GeneralWaveTest, MakeValidation) {
  EXPECT_FALSE(GeneralWave::Make(0.0, 0.25, 0.5).ok());
  EXPECT_FALSE(GeneralWave::Make(1.0, 0.25, 1.0).ok());   // ratio 1 = SW
  EXPECT_FALSE(GeneralWave::Make(1.0, 0.25, -0.1).ok());
  EXPECT_FALSE(GeneralWave::Make(1.0, 1.5, 0.5).ok());
  EXPECT_TRUE(GeneralWave::Make(1.0, 0.25, 0.0).ok());    // triangle
  EXPECT_TRUE(GeneralWave::Make(1.0, 0.25, 0.5).ok());    // trapezoid
  EXPECT_TRUE(GeneralWave::Make(1.0, -1.0, 0.5).ok());    // default b
}

TEST(GeneralWaveTest, BaselineFormula) {
  const double eps = 1.0;
  const double b = 0.25;
  for (double r : {0.0, 0.2, 0.5, 0.8}) {
    const GeneralWave gw = GeneralWave::Make(eps, b, r).ValueOrDie();
    const double e = std::exp(eps);
    EXPECT_NEAR(gw.q(), 1.0 / (1.0 + 2 * b + (e - 1) * b * (1 + r)), 1e-12);
    EXPECT_NEAR(gw.peak(), e * gw.q(), 1e-12);
  }
}

TEST(GeneralWaveTest, ApproachesSquareWaveAsRatioGoesToOne) {
  const double eps = 1.0;
  const double b = 0.25;
  const SquareWave sw = SquareWave::Make(eps, b).ValueOrDie();
  const GeneralWave gw = GeneralWave::Make(eps, b, 0.999).ValueOrDie();
  EXPECT_NEAR(gw.q(), sw.q(), 1e-3);
  EXPECT_NEAR(gw.peak(), sw.p(), 1e-3);
}

TEST(GeneralWaveTest, DensityIntegratesToOneForAllInputs) {
  for (double r : {0.0, 0.4, 0.8}) {
    const GeneralWave gw = GeneralWave::Make(1.0, 0.25, r).ValueOrDie();
    for (double v : {0.0, 0.2, 0.5, 0.8, 1.0}) {
      // Numeric integral of Density over the output domain.
      double acc = 0.0;
      const int steps = 20000;
      const double lo = -gw.b();
      const double hi = 1.0 + gw.b();
      const double h = (hi - lo) / steps;
      for (int i = 0; i < steps; ++i) {
        acc += gw.Density(v, lo + (i + 0.5) * h) * h;
      }
      EXPECT_NEAR(acc, 1.0, 1e-5) << "r=" << r << " v=" << v;
    }
  }
}

TEST(GeneralWaveTest, WaveFunctionRespectsGwDefinition) {
  // Definition 5.1: W(z) = q for |z| > b and integral over [-b, b] = 1 - q.
  const GeneralWave gw = GeneralWave::Make(1.5, 0.3, 0.5).ValueOrDie();
  const PiecewiseLinear& w = gw.wave();
  EXPECT_NEAR(w.Evaluate(0.31), gw.q(), 1e-12);
  EXPECT_NEAR(w.Evaluate(-0.31), gw.q(), 1e-12);
  EXPECT_NEAR(w.Evaluate(1.0), gw.q(), 1e-12);
  EXPECT_NEAR(w.IntegralBetween(-gw.b(), gw.b()), 1.0 - gw.q(), 1e-12);
}

TEST(GeneralWaveTest, DensityBoundedByLdpEnvelope) {
  const double eps = 1.0;
  const GeneralWave gw = GeneralWave::Make(eps, 0.25, 0.4).ValueOrDie();
  for (double z = -1.25; z <= 1.25; z += 0.01) {
    const double w = gw.wave().Evaluate(z);
    EXPECT_GE(w, gw.q() - 1e-12);
    EXPECT_LE(w, std::exp(eps) * gw.q() + 1e-12);
  }
}

TEST(GeneralWaveTest, SatisfiesLdpDensityRatio) {
  const double eps = 1.0;
  const GeneralWave gw = GeneralWave::Make(eps, 0.3, 0.6).ValueOrDie();
  const double bound = std::exp(eps) + 1e-9;
  for (double v1 = 0.0; v1 <= 1.0; v1 += 0.2) {
    for (double v2 = 0.0; v2 <= 1.0; v2 += 0.2) {
      for (double out = -0.3; out <= 1.3; out += 0.04) {
        const double d1 = gw.Density(v1, out);
        const double d2 = gw.Density(v2, out);
        if (d2 > 0.0) {
          EXPECT_LE(d1 / d2, bound);
        }
      }
    }
  }
}

TEST(GeneralWaveTest, PerturbStaysInOutputDomain) {
  const GeneralWave gw = GeneralWave::Make(1.0, 0.25, 0.5).ValueOrDie();
  Rng rng(31);
  for (int i = 0; i < 3000; ++i) {
    const double v = static_cast<double>(i % 100) / 99.0;
    const double out = gw.Perturb(v, rng);
    EXPECT_GE(out, -gw.b() - 1e-12);
    EXPECT_LE(out, 1.0 + gw.b() + 1e-12);
  }
}

TEST(GeneralWaveTest, PerturbHistogramMatchesDensity) {
  const GeneralWave gw = GeneralWave::Make(1.0, 0.25, 0.5).ValueOrDie();
  Rng rng(32);
  const double v = 0.6;
  const int n = 300000;
  const int bins = 25;
  const double lo = -gw.b();
  const double span = 1.0 + 2 * gw.b();
  std::vector<int> counts(bins, 0);
  for (int i = 0; i < n; ++i) {
    int bin = static_cast<int>((gw.Perturb(v, rng) - lo) / span * bins);
    if (bin >= bins) bin = bins - 1;
    ++counts[bin];
  }
  for (int bin = 0; bin < bins; ++bin) {
    const double a = lo + span * bin / bins;
    const double c = a + span / bins;
    // Expected mass via the wave's exact antiderivative.
    const double expected =
        gw.wave().IntegralBetween(a - v, c - v);
    EXPECT_NEAR(static_cast<double>(counts[bin]) / n, expected, 0.004)
        << "bin=" << bin;
  }
}

TEST(GeneralWaveTest, TriangleSamplingWorks) {
  const GeneralWave tri = GeneralWave::Make(2.0, 0.2, 0.0).ValueOrDie();
  Rng rng(33);
  // Samples centered near the input on average (symmetric wave).
  const double v = 0.5;
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += tri.Perturb(v, rng);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(GeneralWaveTest, TransitionColumnsSumToOne) {
  for (double r : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    const GeneralWave gw = GeneralWave::Make(1.0, 0.25, r).ValueOrDie();
    EXPECT_TRUE(ValidateTransitionMatrix(gw.TransitionMatrix(32, 32)).ok())
        << "ratio=" << r;
  }
}

TEST(GeneralWaveTest, TransitionNearlyMatchesSquareWaveAtHighRatio) {
  const double eps = 1.0;
  const double b = 0.25;
  const Matrix msw =
      SquareWave::Make(eps, b).ValueOrDie().TransitionMatrix(16, 16);
  const Matrix mgw =
      GeneralWave::Make(eps, b, 0.995).ValueOrDie().TransitionMatrix(16, 16);
  for (size_t i = 0; i < 16; ++i) {
    for (size_t j = 0; j < 16; ++j) {
      EXPECT_NEAR(mgw(j, i), msw(j, i), 5e-3);
    }
  }
}

TEST(GeneralWaveTest, TransitionMatchesEmpiricalSampling) {
  const GeneralWave gw = GeneralWave::Make(1.0, 0.25, 0.5).ValueOrDie();
  const size_t d = 8;
  const Matrix m = gw.TransitionMatrix(d, d);
  Rng rng(34);
  const size_t i = 5;
  const int n = 300000;
  std::vector<double> reports;
  reports.reserve(n);
  for (int k = 0; k < n; ++k) {
    const double v = (static_cast<double>(i) + rng.Uniform()) / d;
    reports.push_back(gw.Perturb(v, rng));
  }
  const std::vector<uint64_t> counts = gw.BucketizeReports(reports, d);
  for (size_t j = 0; j < d; ++j) {
    EXPECT_NEAR(static_cast<double>(counts[j]) / n, m(j, i), 0.004);
  }
}

}  // namespace
}  // namespace numdist
