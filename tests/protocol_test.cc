// Batched-path guarantees: accumulator merges are associative, shard/thread
// layout never changes estimates, chunk-based and report-based server paths
// agree bit-for-bit for every frequency oracle, and the protocol adapters
// match the single-chunk convenience path.
#include "protocol/protocol.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "data/datasets.h"
#include "eval/method.h"
#include "fo/adaptive.h"
#include "fo/grr.h"
#include "fo/hrr.h"
#include "fo/olh.h"
#include "fo/oue.h"
#include "protocol/cfo_protocol.h"
#include "protocol/sharded.h"

namespace numdist {
namespace {

std::vector<double> TestValues(size_t n) {
  Rng rng(1234);
  return GenerateDataset(DatasetId::kBeta, n, rng);
}

// Reconstructed outputs must agree exactly: same distribution vector and
// same range-query answers.
void ExpectSameOutput(const MethodOutput& a, const MethodOutput& b,
                      const std::string& context) {
  EXPECT_EQ(a.distribution, b.distribution) << context;
  ASSERT_TRUE(a.range_query && b.range_query) << context;
  for (const auto& [lo, alpha] :
       std::vector<std::pair<double, double>>{{0.0, 1.0}, {0.2, 0.3},
                                              {0.55, 0.1}}) {
    EXPECT_DOUBLE_EQ(a.range_query(lo, alpha), b.range_query(lo, alpha))
        << context << " range(" << lo << "," << alpha << ")";
  }
}

TEST(ProtocolTest, AbsorbThenMergeIsAssociativeForEveryMethod) {
  const std::vector<double> values = TestValues(3000);
  const size_t d = 64;
  for (const auto& method : MakeStandardSuite()) {
    auto protocol = method->MakeProtocol(1.0, d).ValueOrDie();

    // Three chunks with fixed per-chunk streams.
    std::vector<std::unique_ptr<ReportChunk>> chunks;
    for (size_t i = 0; i < 3; ++i) {
      Rng rng(ShardSeed(7, i));
      chunks.push_back(protocol
                           ->EncodePerturbBatch(
                               std::span<const double>(values).subspan(
                                   i * 1000, 1000),
                               rng)
                           .ValueOrDie());
    }

    // Grouping 1: everything into one accumulator, in order.
    auto flat = protocol->MakeAccumulator();
    for (const auto& chunk : chunks) ASSERT_TRUE(flat->Absorb(*chunk).ok());

    // Grouping 2: (A) merge (B+C), i.e. a different association.
    auto left = protocol->MakeAccumulator();
    ASSERT_TRUE(left->Absorb(*chunks[0]).ok());
    auto right = protocol->MakeAccumulator();
    ASSERT_TRUE(right->Absorb(*chunks[1]).ok());
    ASSERT_TRUE(right->Absorb(*chunks[2]).ok());
    ASSERT_TRUE(left->Merge(*right).ok());

    EXPECT_EQ(flat->num_reports(), left->num_reports()) << method->name();
    ExpectSameOutput(protocol->Reconstruct(*flat).ValueOrDie(),
                     protocol->Reconstruct(*left).ValueOrDie(),
                     method->name());
  }
}

TEST(ProtocolTest, ShardedAccumulationIsThreadCountIndependent) {
  const std::vector<double> values = TestValues(5000);
  const size_t d = 64;
  for (const auto& method : MakeStandardSuite()) {
    auto protocol = method->MakeProtocol(1.0, d).ValueOrDie();
    ShardOptions opts;
    opts.shard_size = 512;
    opts.threads = 1;
    const MethodOutput single =
        RunProtocolSharded(*protocol, values, 99, opts).ValueOrDie();
    opts.threads = 4;
    const MethodOutput multi =
        RunProtocolSharded(*protocol, values, 99, opts).ValueOrDie();
    ExpectSameOutput(single, multi, method->name());
  }
}

TEST(ProtocolTest, SingleChunkRunMatchesMethodRun) {
  const std::vector<double> values = TestValues(3000);
  const size_t d = 64;
  for (const auto& method : MakeStandardSuite()) {
    auto protocol = method->MakeProtocol(1.0, d).ValueOrDie();
    Rng rng_a(31337);
    Rng rng_b(31337);
    const MethodOutput via_protocol =
        RunProtocol(*protocol, values, rng_a).ValueOrDie();
    const MethodOutput via_method =
        method->Run(values, 1.0, d, rng_b).ValueOrDie();
    ExpectSameOutput(via_protocol, via_method, method->name());
  }
}

TEST(ProtocolTest, RejectsForeignChunksAndAccumulators) {
  const std::vector<double> values = TestValues(100);
  auto sw = MakeSwEmsMethod()->MakeProtocol(1.0, 32).ValueOrDie();
  auto hh = MakeHhMethod()->MakeProtocol(1.0, 64).ValueOrDie();
  Rng rng(5);
  auto sw_chunk = sw->EncodePerturbBatch(values, rng).ValueOrDie();
  auto hh_acc = hh->MakeAccumulator();
  EXPECT_FALSE(hh_acc->Absorb(*sw_chunk).ok());
  auto sw_acc = sw->MakeAccumulator();
  EXPECT_FALSE(sw_acc->Merge(*hh_acc).ok());
  EXPECT_FALSE(hh->Reconstruct(*sw_acc).ok());
}

TEST(ProtocolTest, RejectsSameFamilyChunksOfDifferentShape) {
  const std::vector<double> values = TestValues(200);
  Rng rng(6);
  // Same concrete chunk types, different configuration: the accumulator
  // must reject them instead of indexing out of bounds.
  auto cfo64 = MakeCfoBinningProtocol(1.0, 64, 64).ValueOrDie();
  auto cfo16 = MakeCfoBinningProtocol(1.0, 64, 16).ValueOrDie();
  auto chunk64 = cfo64->EncodePerturbBatch(values, rng).ValueOrDie();
  auto acc16 = cfo16->MakeAccumulator();
  EXPECT_FALSE(acc16->Absorb(*chunk64).ok());

  auto hh64 = MakeHhMethod()->MakeProtocol(1.0, 64).ValueOrDie();
  auto hh256 = MakeHhMethod()->MakeProtocol(1.0, 256).ValueOrDie();
  auto chunk256 = hh256->EncodePerturbBatch(values, rng).ValueOrDie();
  auto hh64_acc = hh64->MakeAccumulator();
  EXPECT_FALSE(hh64_acc->Absorb(*chunk256).ok());

  auto sw32 = MakeSwEmsMethod()->MakeProtocol(1.0, 32).ValueOrDie();
  auto sw64 = MakeSwEmsMethod()->MakeProtocol(1.0, 64).ValueOrDie();
  auto sw_chunk64 = sw64->EncodePerturbBatch(values, rng).ValueOrDie();
  auto sw32_acc = sw32->MakeAccumulator();
  EXPECT_FALSE(sw32_acc->Absorb(*sw_chunk64).ok());
}

TEST(ProtocolTest, ReconstructRequiresReports) {
  auto sw = MakeSwEmsMethod()->MakeProtocol(1.0, 32).ValueOrDie();
  auto acc = sw->MakeAccumulator();
  EXPECT_FALSE(sw->Reconstruct(*acc).ok());
}

TEST(ProtocolTest, CfoBinningRunsOverEveryOracleFamily) {
  const std::vector<double> values = TestValues(4000);
  for (FoKind kind :
       {FoKind::kAdaptive, FoKind::kGrr, FoKind::kOlh, FoKind::kOue}) {
    auto protocol =
        MakeCfoBinningProtocol(1.0, 64, 16, kind).ValueOrDie();
    Rng rng(11);
    const MethodOutput out = RunProtocol(*protocol, values, rng).ValueOrDie();
    ASSERT_EQ(out.distribution.size(), 64u) << protocol->name();
    double sum = 0.0;
    for (double p : out.distribution) {
      EXPECT_GE(p, 0.0) << protocol->name();
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-6) << protocol->name();
  }
}

// --- Estimate vs EstimateFromCounts/Sketch consistency per oracle ---

TEST(FoSketchTest, GrrSketchMatchesEstimateFromCounts) {
  const Grr grr = Grr::Make(1.0, 16).ValueOrDie();
  Rng rng(21);
  std::vector<uint32_t> reports;
  std::vector<uint64_t> counts(16, 0);
  FoSketch sketch = grr.MakeSketch();
  for (size_t i = 0; i < 4000; ++i) {
    const uint32_t r = grr.Perturb(static_cast<uint32_t>(i % 16), rng);
    reports.push_back(r);
    ++counts[r];
    grr.Absorb(r, &sketch);
  }
  const std::vector<double> from_reports = grr.Estimate(reports);
  const std::vector<double> from_counts =
      grr.EstimateFromCounts(counts, reports.size());
  const std::vector<double> from_sketch = grr.EstimateFromSketch(sketch);
  for (size_t v = 0; v < 16; ++v) {
    EXPECT_DOUBLE_EQ(from_reports[v], from_counts[v]);
    EXPECT_DOUBLE_EQ(from_counts[v], from_sketch[v]);
  }
}

TEST(FoSketchTest, OlhSketchMatchesSupportCountEstimate) {
  const Olh olh = Olh::Make(1.0, 32).ValueOrDie();
  Rng rng(22);
  std::vector<OlhReport> reports;
  FoSketch sketch = olh.MakeSketch();
  for (size_t i = 0; i < 2000; ++i) {
    const OlhReport r = olh.Perturb(static_cast<uint32_t>(i % 32), rng);
    reports.push_back(r);
    olh.Absorb(r, &sketch);
  }
  const std::vector<uint64_t> support = olh.SupportCounts(reports);
  ASSERT_EQ(sketch.n, reports.size());
  for (size_t v = 0; v < 32; ++v) {
    EXPECT_EQ(static_cast<uint64_t>(sketch.counts[v]), support[v]);
  }
  const std::vector<double> from_reports = olh.Estimate(reports);
  const std::vector<double> from_sketch = olh.EstimateFromSketch(sketch);
  for (size_t v = 0; v < 32; ++v) {
    EXPECT_DOUBLE_EQ(from_reports[v], from_sketch[v]);
  }
}

TEST(FoSketchTest, OueSketchMatchesEstimateFromOnes) {
  const Oue oue = Oue::Make(1.0, 16).ValueOrDie();
  Rng rng(23);
  std::vector<uint64_t> ones(16, 0);
  FoSketch sketch = oue.MakeSketch();
  const size_t n = 3000;
  for (size_t i = 0; i < n; ++i) {
    const std::vector<uint8_t> bits =
        oue.Perturb(static_cast<uint32_t>(i % 16), rng);
    for (size_t j = 0; j < 16; ++j) ones[j] += bits[j];
    oue.Absorb(bits, &sketch);
  }
  const std::vector<double> from_ones = oue.EstimateFromOnes(ones, n);
  const std::vector<double> from_sketch = oue.EstimateFromSketch(sketch);
  for (size_t v = 0; v < 16; ++v) {
    EXPECT_DOUBLE_EQ(from_ones[v], from_sketch[v]);
  }
}

TEST(FoSketchTest, OueRunMatchesPerturbAbsorbPipeline) {
  const Oue oue = Oue::Make(1.0, 8).ValueOrDie();
  std::vector<uint32_t> values;
  for (size_t i = 0; i < 2000; ++i) {
    values.push_back(static_cast<uint32_t>(i % 8));
  }
  Rng rng_run(24);
  const std::vector<double> from_run = oue.Run(values, rng_run);
  Rng rng_batch(24);
  FoSketch sketch = oue.MakeSketch();
  for (uint32_t v : values) oue.Absorb(oue.Perturb(v, rng_batch), &sketch);
  const std::vector<double> from_sketch = oue.EstimateFromSketch(sketch);
  for (size_t v = 0; v < 8; ++v) {
    EXPECT_DOUBLE_EQ(from_run[v], from_sketch[v]);
  }
}

TEST(FoSketchTest, HrrSketchMatchesEstimate) {
  const Hrr hrr = Hrr::Make(1.0, 16).ValueOrDie();
  Rng rng(25);
  std::vector<HrrReport> reports;
  FoSketch sketch = hrr.MakeSketch();
  for (size_t i = 0; i < 3000; ++i) {
    const HrrReport r = hrr.Perturb(static_cast<uint32_t>(i % 16), rng);
    reports.push_back(r);
    hrr.Absorb(r, &sketch);
  }
  const std::vector<double> from_reports = hrr.Estimate(reports);
  const std::vector<double> from_sketch = hrr.EstimateFromSketch(sketch);
  for (size_t v = 0; v < 16; ++v) {
    EXPECT_DOUBLE_EQ(from_reports[v], from_sketch[v]);
  }
}

TEST(FoSketchTest, AdaptiveRunMatchesPerturbAbsorbPipeline) {
  // Cover both dispatch arms: small domain -> GRR, large domain -> OLH.
  for (size_t domain : {size_t{4}, size_t{256}}) {
    const AdaptiveFo fo = AdaptiveFo::Make(1.0, domain).ValueOrDie();
    std::vector<uint32_t> values;
    for (size_t i = 0; i < 1500; ++i) {
      values.push_back(static_cast<uint32_t>(i % domain));
    }
    Rng rng_run(26);
    const std::vector<double> from_run = fo.Run(values, rng_run);
    Rng rng_batch(26);
    FoSketch sketch = fo.MakeSketch();
    for (uint32_t v : values) fo.Absorb(fo.Perturb(v, rng_batch), &sketch);
    const std::vector<double> from_sketch = fo.EstimateFromSketch(sketch);
    for (size_t v = 0; v < domain; ++v) {
      EXPECT_DOUBLE_EQ(from_run[v], from_sketch[v]) << "domain " << domain;
    }
  }
}

TEST(FoSketchTest, MergeIsExactAcrossShards) {
  const Olh olh = Olh::Make(1.0, 24).ValueOrDie();
  Rng rng(27);
  FoSketch all = olh.MakeSketch();
  FoSketch shard_a = olh.MakeSketch();
  FoSketch shard_b = olh.MakeSketch();
  for (size_t i = 0; i < 1000; ++i) {
    const OlhReport r = olh.Perturb(static_cast<uint32_t>(i % 24), rng);
    olh.Absorb(r, &all);
    olh.Absorb(r, i % 2 == 0 ? &shard_a : &shard_b);
  }
  shard_a.Merge(shard_b);
  EXPECT_EQ(all.n, shard_a.n);
  EXPECT_EQ(all.counts, shard_a.counts);
}

}  // namespace
}  // namespace numdist
