// Parameterized property suites: the privacy and estimation invariants every
// mechanism must satisfy, swept over the practical epsilon range and domain
// sizes (TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <gtest/gtest.h>

#include <cmath>

#include "common/histogram.h"
#include "core/em.h"
#include "core/square_wave.h"
#include "core/wave.h"
#include "fo/grr.h"
#include "fo/hrr.h"
#include "fo/olh.h"
#include "mean/pm.h"
#include "mean/sr.h"
#include "postprocess/norm_sub.h"

namespace numdist {
namespace {

// ------------------------------------------- LDP property: pure DP ratio --

// For report-probability mechanisms the eps-LDP property is: for every
// output o and inputs v1, v2: Pr[o | v1] <= e^eps Pr[o | v2].
class LdpEpsilonSweep : public ::testing::TestWithParam<double> {};

TEST_P(LdpEpsilonSweep, GrrProbabilityRatio) {
  const double eps = GetParam();
  const size_t d = 12;
  const Grr grr = Grr::Make(eps, d).ValueOrDie();
  // Outputs have probability p (if == input) or q: the extreme ratio is p/q.
  EXPECT_LE(grr.p() / grr.q(), std::exp(eps) * (1 + 1e-12));
  EXPECT_NEAR(grr.p() + (d - 1) * grr.q(), 1.0, 1e-12);
}

TEST_P(LdpEpsilonSweep, DiscreteSwProbabilityRatio) {
  const double eps = GetParam();
  const DiscreteSquareWave dsw =
      DiscreteSquareWave::Make(eps, 32).ValueOrDie();
  const double bound = std::exp(eps) * (1 + 1e-12);
  for (uint32_t v1 = 0; v1 < 32; v1 += 5) {
    for (uint32_t v2 = 0; v2 < 32; v2 += 7) {
      for (uint32_t o = 0; o < dsw.output_domain(); o += 3) {
        EXPECT_LE(dsw.Probability(v1, o) / dsw.Probability(v2, o), bound);
      }
    }
  }
}

TEST_P(LdpEpsilonSweep, ContinuousSwDensityRatio) {
  const double eps = GetParam();
  const SquareWave sw = SquareWave::Make(eps).ValueOrDie();
  const double bound = std::exp(eps) * (1 + 1e-12);
  for (double v1 = 0.0; v1 <= 1.0; v1 += 0.25) {
    for (double v2 = 0.0; v2 <= 1.0; v2 += 0.25) {
      for (double o = -sw.b(); o <= 1.0 + sw.b(); o += 0.11) {
        const double d2 = sw.Density(v2, o);
        if (d2 > 0.0) {
          EXPECT_LE(sw.Density(v1, o) / d2, bound);
        }
      }
    }
  }
}

TEST_P(LdpEpsilonSweep, GeneralWaveDensityRatio) {
  const double eps = GetParam();
  for (double ratio : {0.0, 0.5}) {
    const GeneralWave gw = GeneralWave::Make(eps, -1.0, ratio).ValueOrDie();
    const double bound = std::exp(eps) * (1 + 1e-12);
    for (double v1 = 0.0; v1 <= 1.0; v1 += 0.5) {
      for (double v2 = 0.0; v2 <= 1.0; v2 += 0.5) {
        for (double o = -gw.b(); o <= 1.0 + gw.b(); o += 0.13) {
          const double d2 = gw.Density(v2, o);
          if (d2 > 0.0) {
            EXPECT_LE(gw.Density(v1, o) / d2, bound);
          }
        }
      }
    }
  }
}

TEST_P(LdpEpsilonSweep, PiecewiseMechanismDensityRatio) {
  // PM guarantees eps-LDP: density is two-valued with ratio e^eps.
  const double eps = GetParam();
  const PiecewiseMechanism pm = PiecewiseMechanism::Make(eps).ValueOrDie();
  EXPECT_LE(pm.high_density() / pm.low_density(),
            std::exp(eps) * (1 + 1e-12));
}

TEST_P(LdpEpsilonSweep, SrReportProbabilityRatio) {
  const double eps = GetParam();
  const StochasticRounding sr = StochasticRounding::Make(eps).ValueOrDie();
  // Report +1 probabilities for extreme inputs -1 and 1 are q and p; the
  // privacy ratio across any two inputs is at most p/q = e^eps.
  const double e = std::exp(eps);
  const double p = e / (e + 1.0);
  const double q = 1.0 - p;
  EXPECT_NEAR(p / q, e, 1e-9);
  (void)sr;
}

INSTANTIATE_TEST_SUITE_P(EpsilonGrid, LdpEpsilonSweep,
                         ::testing::Values(0.25, 0.5, 1.0, 1.5, 2.0, 2.5,
                                           3.0, 4.0));

// ---------------------------------------- SW transition model invariants --

struct SwModelParam {
  double epsilon;
  size_t d_in;
  size_t d_out;
};

class SwModelSweep : public ::testing::TestWithParam<SwModelParam> {};

TEST_P(SwModelSweep, TransitionIsColumnStochastic) {
  const SwModelParam p = GetParam();
  const SquareWave sw = SquareWave::Make(p.epsilon).ValueOrDie();
  const Matrix m = sw.TransitionMatrix(p.d_in, p.d_out);
  ASSERT_EQ(m.rows(), p.d_out);
  ASSERT_EQ(m.cols(), p.d_in);
  for (size_t j = 0; j < p.d_in; ++j) {
    EXPECT_NEAR(m.ColumnSum(j), 1.0, 1e-9) << "col=" << j;
    for (size_t i = 0; i < p.d_out; ++i) EXPECT_GE(m(i, j), -1e-12);
  }
}

TEST_P(SwModelSweep, EmOnExactObservationsRecoversUniform) {
  const SwModelParam p = GetParam();
  const SquareWave sw = SquareWave::Make(p.epsilon).ValueOrDie();
  const Matrix m = sw.TransitionMatrix(p.d_in, p.d_out);
  // Observations exactly matching the uniform input distribution.
  const std::vector<double> uniform(p.d_in, 1.0 / p.d_in);
  const std::vector<double> out = m.Multiply(uniform);
  std::vector<uint64_t> counts(out.size());
  for (size_t j = 0; j < out.size(); ++j) {
    counts[j] = static_cast<uint64_t>(std::llround(out[j] * 1e6));
  }
  const EmResult res = EstimateEm(m, counts).ValueOrDie();
  for (size_t i = 0; i < p.d_in; ++i) {
    EXPECT_NEAR(res.estimate[i], 1.0 / p.d_in, 0.02);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelGrid, SwModelSweep,
    ::testing::Values(SwModelParam{0.5, 16, 16}, SwModelParam{1.0, 16, 16},
                      SwModelParam{1.0, 32, 48}, SwModelParam{2.0, 64, 64},
                      SwModelParam{4.0, 16, 24}, SwModelParam{1.0, 8, 64}));

// ------------------------------------------------ FO unbiasedness sweep --

struct FoParam {
  double epsilon;
  size_t domain;
};

class FoUnbiasednessSweep : public ::testing::TestWithParam<FoParam> {};

TEST_P(FoUnbiasednessSweep, GrrFrequencySumsToOne) {
  const FoParam p = GetParam();
  const Grr grr = Grr::Make(p.epsilon, p.domain).ValueOrDie();
  Rng rng(71);
  std::vector<uint64_t> counts(p.domain, 0);
  const size_t n = 30000;
  for (size_t i = 0; i < n; ++i) {
    ++counts[grr.Perturb(static_cast<uint32_t>(i % p.domain), rng)];
  }
  const auto est = grr.EstimateFromCounts(counts, n);
  EXPECT_NEAR(hist::Sum(est), 1.0, 1e-9);
}

TEST_P(FoUnbiasednessSweep, GrrPointEstimateNearTruth) {
  const FoParam p = GetParam();
  const Grr grr = Grr::Make(p.epsilon, p.domain).ValueOrDie();
  Rng rng(73);
  // True distribution: value 0 with probability 0.5, uniform otherwise.
  std::vector<uint64_t> counts(p.domain, 0);
  const size_t n = 60000;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t v = rng.Bernoulli(0.5)
                           ? 0
                           : static_cast<uint32_t>(rng.UniformInt(p.domain));
    ++counts[grr.Perturb(v, rng)];
  }
  const auto est = grr.EstimateFromCounts(counts, n);
  EXPECT_NEAR(est[0], 0.5 + 0.5 / p.domain,
              6.0 * std::sqrt(Grr::Variance(p.epsilon, p.domain, n)));
}

TEST_P(FoUnbiasednessSweep, OlhPointEstimateNearTruth) {
  const FoParam p = GetParam();
  const Olh olh = Olh::Make(p.epsilon, p.domain).ValueOrDie();
  Rng rng(79);
  std::vector<OlhReport> reports;
  const size_t n = 30000;
  reports.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t v = rng.Bernoulli(0.5)
                           ? 0
                           : static_cast<uint32_t>(rng.UniformInt(p.domain));
    reports.push_back(olh.Perturb(v, rng));
  }
  const auto est = olh.Estimate(reports);
  EXPECT_NEAR(est[0], 0.5 + 0.5 / p.domain,
              6.0 * std::sqrt(Olh::Variance(p.epsilon, n)));
}

INSTANTIATE_TEST_SUITE_P(FoGrid, FoUnbiasednessSweep,
                         ::testing::Values(FoParam{0.5, 4}, FoParam{1.0, 4},
                                           FoParam{1.0, 16}, FoParam{2.0, 16},
                                           FoParam{1.0, 64},
                                           FoParam{3.0, 32}));

// ----------------------------------------------- NormSub random sweeps --

class NormSubSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(NormSubSweep, ProjectionInvariants) {
  const size_t d = GetParam();
  Rng rng(101 + d);
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<double> x(d);
    for (double& v : x) v = rng.Uniform(-1.0, 1.0);
    const std::vector<double> out = NormSub(x);
    // Valid distribution.
    EXPECT_TRUE(hist::IsDistribution(out, 1e-9));
    // Order preservation: x_i >= x_j implies out_i >= out_j.
    for (size_t i = 0; i < d; ++i) {
      for (size_t j = 0; j < d; ++j) {
        if (x[i] >= x[j]) {
          EXPECT_GE(out[i] + 1e-12, out[j]);
        }
      }
    }
    // Agreement with the iterative formulation.
    const std::vector<double> iter = NormSubIterative(x);
    for (size_t i = 0; i < d; ++i) EXPECT_NEAR(out[i], iter[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, NormSubSweep,
                         ::testing::Values(2, 3, 5, 8, 16, 64));

// ---------------------------------------------- smoothing invariants --

class SmoothingSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(SmoothingSweep, PreservesSimplexAndMass) {
  const size_t d = GetParam();
  Rng rng(211 + d);
  std::vector<double> x(d);
  double total = 0.0;
  for (double& v : x) {
    v = rng.Uniform();
    total += v;
  }
  for (double& v : x) v /= total;
  BinomialSmooth(&x);
  EXPECT_TRUE(hist::IsDistribution(x, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Dims, SmoothingSweep,
                         ::testing::Values(3, 4, 7, 16, 33, 128, 1024));

// ------------------------------------------ bucketize/aggregate duality --

class DiscreteSwSweep : public ::testing::TestWithParam<double> {};

TEST_P(DiscreteSwSweep, PerturbDistributionMatchesTransitionColumn) {
  const double eps = GetParam();
  const size_t d = 16;
  const DiscreteSquareWave dsw = DiscreteSquareWave::Make(eps, d).ValueOrDie();
  const Matrix m = dsw.TransitionMatrix();
  Rng rng(307);
  const uint32_t v = 9;
  std::vector<uint64_t> counts(dsw.output_domain(), 0);
  const size_t n = 150000;
  for (size_t i = 0; i < n; ++i) ++counts[dsw.Perturb(v, rng)];
  for (size_t j = 0; j < dsw.output_domain(); ++j) {
    EXPECT_NEAR(static_cast<double>(counts[j]) / n, m(j, v), 0.01)
        << "eps=" << eps << " j=" << j;
  }
}

INSTANTIATE_TEST_SUITE_P(EpsGrid, DiscreteSwSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 3.0));

}  // namespace
}  // namespace numdist
