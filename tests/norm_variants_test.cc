#include "postprocess/norm_variants.h"

#include <gtest/gtest.h>

#include "common/histogram.h"
#include "common/rng.h"
#include "postprocess/norm_sub.h"

namespace numdist {
namespace {

TEST(NormShiftTest, ShiftsToTargetWithoutClamping) {
  const std::vector<double> out = NormShift({0.5, -0.3, 0.2}, 1.0);
  EXPECT_NEAR(out[0] + out[1] + out[2], 1.0, 1e-12);
  EXPECT_LT(out[1], 0.0);  // negatives survive
  // Common delta: pairwise differences preserved.
  EXPECT_NEAR(out[0] - out[1], 0.8, 1e-12);
}

TEST(NormShiftTest, AlreadyNormalizedIsUnchanged) {
  const std::vector<double> out = NormShift({0.6, 0.4}, 1.0);
  EXPECT_DOUBLE_EQ(out[0], 0.6);
  EXPECT_DOUBLE_EQ(out[1], 0.4);
}

TEST(NormShiftTest, EmptyInput) { EXPECT_TRUE(NormShift({}).empty()); }

TEST(BasePosTest, ClampsOnly) {
  const std::vector<double> out = BasePos({0.5, -0.3, 0.2});
  EXPECT_DOUBLE_EQ(out[0], 0.5);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
  EXPECT_DOUBLE_EQ(out[2], 0.2);
  // Sum can exceed nothing here, but is not renormalized.
  EXPECT_NEAR(hist::Sum(out), 0.7, 1e-12);
}

TEST(NormMulTest, MatchesNormCut) {
  Rng rng(1);
  std::vector<double> x(16);
  for (double& v : x) v = rng.Uniform(-0.4, 0.6);
  const std::vector<double> a = NormMul(x);
  const std::vector<double> b = NormCut(x);
  for (size_t i = 0; i < x.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(NormVariantsTest, NormSubIsClosestProjectionAmongVariants) {
  // Norm-Sub is the Euclidean projection; the other valid-distribution
  // variant (Norm-Mul) cannot be closer in L2.
  Rng rng(2);
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<double> x(12);
    for (double& v : x) v = rng.Uniform(-0.5, 0.7);
    const std::vector<double> sub = NormSub(x);
    const std::vector<double> mul = NormMul(x);
    if (!hist::IsDistribution(mul, 1e-9)) continue;  // all-negative corner
    double d_sub = 0.0;
    double d_mul = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
      d_sub += (x[i] - sub[i]) * (x[i] - sub[i]);
      d_mul += (x[i] - mul[i]) * (x[i] - mul[i]);
    }
    EXPECT_LE(d_sub, d_mul + 1e-12) << "rep=" << rep;
  }
}

}  // namespace
}  // namespace numdist
