// Kill-and-restart crash recovery across REAL processes: a live
// collector_cli with a write-ahead log attached is SIGKILLed mid-stream
// at seeded frame offsets, restarted from the log, and fed the rest of
// the stream — the drained sketch must be byte-identical to an
// uninterrupted run over the same frames. Covers the stdio collector,
// a double crash, and the epoll network server (whose parallel
// absorption order is nondeterministic, so recovery diffs the log
// against the sent frame multiset). Tool locations come from CMake
// (NUMDIST_*_PATH); the test self-skips when the tools were not built.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "data/datasets.h"
#include "net/socket.h"
#include "protocol/sharded.h"
#include "serve/collector.h"
#include "serve/wal.h"
#include "wire/wire.h"

namespace numdist {
namespace {

#if defined(NUMDIST_COLLECTOR_CLI_PATH) && defined(NUMDIST_REPORT_CLIENT_PATH)

constexpr const char* kMethodFlags[] = {"--method=sw-ems", "--epsilon=1.0",
                                        "--buckets=32"};

wire::MethodSpec TestSpec() {
  return wire::ParseMethodSpec("sw-ems", 1.0, 32).ValueOrDie();
}

// The client fleet's frames, built in-process (byte-identical to
// report_client with the same seed/shard layout — the wire encoders are
// shared code).
std::vector<std::string> MakeFrames(size_t shards, size_t shard_size,
                                    uint64_t seed) {
  const wire::MethodSpec spec = TestSpec();
  auto protocol = wire::MakeProtocolForSpec(spec).ValueOrDie();
  const std::vector<double> values = GoldenRatioValues(shards * shard_size);
  std::vector<std::string> frames;
  for (size_t i = 0; i < shards; ++i) {
    Rng rng(ShardSeed(seed, i));
    auto chunk = protocol
                     ->EncodePerturbBatch(std::span<const double>(values)
                                              .subspan(i * shard_size,
                                                       shard_size),
                                          rng)
                     .ValueOrDie();
    std::string frame;
    const Status enc =
        wire::EncodeReportFrame(spec, *protocol, *chunk, &frame);
    EXPECT_TRUE(enc.ok()) << enc.ToString();
    frames.push_back(frame);
  }
  return frames;
}

std::string Prefixed(const std::string& frame) {
  std::string out;
  ByteWriter(&out).PutU32(static_cast<uint32_t>(frame.size()));
  out.append(frame);
  return out;
}

void WriteFramesFile(const std::string& path,
                     const std::vector<std::string>& frames) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  for (const std::string& frame : frames) {
    const std::string p = Prefixed(frame);
    out.write(p.data(), static_cast<std::streamsize>(p.size()));
  }
  ASSERT_TRUE(out.good()) << path;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

bool WriteAllFd(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

struct ChildProc {
  pid_t pid = -1;
  int stdin_fd = -1;
};

// fork/exec collector_cli with the shared method flags plus `extra`,
// optionally with a pipe on its stdin; stderr goes to /dev/null.
ChildProc SpawnCollector(const std::vector<std::string>& extra,
                         bool with_stdin) {
  int fds[2] = {-1, -1};
  if (with_stdin) {
    if (pipe(fds) != 0) return {};
  }
  std::vector<std::string> args;
  args.push_back(NUMDIST_COLLECTOR_CLI_PATH);
  for (const char* flag : kMethodFlags) args.push_back(flag);
  for (const std::string& e : extra) args.push_back(e);

  const pid_t pid = fork();
  if (pid == 0) {
    if (with_stdin) {
      dup2(fds[0], STDIN_FILENO);
      close(fds[0]);
      close(fds[1]);
    }
    const int devnull = open("/dev/null", O_WRONLY);
    if (devnull >= 0) dup2(devnull, STDERR_FILENO);
    std::vector<char*> argv;
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    execv(argv[0], argv.data());
    _exit(127);
  }
  if (with_stdin) close(fds[0]);
  return {pid, with_stdin ? fds[1] : -1};
}

int WaitChild(pid_t pid) {
  int status = 0;
  while (waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  return status;
}

// Replays the log read-only, collecting the logged frames. Checkpoints
// reset the collection (they subsume earlier records).
serve::WalReplayStats InspectWal(const std::string& path,
                                 std::vector<std::string>* frames) {
  frames->clear();
  serve::WalConsumer consumer;
  consumer.on_frame = [frames](std::string_view frame) {
    frames->emplace_back(frame);
    return Status::OK();
  };
  consumer.on_checkpoint = [frames](const std::vector<std::string>&) {
    frames->clear();
    return Status::OK();
  };
  auto stats = serve::ReplayWal(path, consumer);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  return stats.ok() ? stats.value() : serve::WalReplayStats{};
}

// Polls until the log holds >= want frame records (the collector runs
// asynchronously; the log is the ground truth for what it accepted).
bool WaitForWalFrames(const std::string& path, size_t want) {
  std::vector<std::string> frames;
  for (int spin = 0; spin < 2000; ++spin) {
    InspectWal(path, &frames);
    if (frames.size() >= want) return true;
    usleep(5000);
  }
  return false;
}

// The headline scenario at one seeded kill offset: feed `kill_after`
// frames, SIGKILL the live collector once the log confirms them,
// restart from the log with the REST of the stream, and byte-compare
// the drained sketch file against an uninterrupted real-binary run.
void RunKillAndRestart(uint64_t seed, const std::vector<std::string>& frames,
                       const std::string& ref_sketch_bytes) {
  std::mt19937_64 rng(seed);
  const size_t kill_after =
      1 + static_cast<size_t>(rng() % (frames.size() - 2));
  const std::string tag = "wal_process_" + std::to_string(seed);
  const std::string wal = testing::TempDir() + tag + ".wal";
  const std::string resume_sketch = testing::TempDir() + tag + ".sketch";
  std::remove(wal.c_str());

  // Phase 1: live collector, killed mid-stream.
  ChildProc victim = SpawnCollector({"--wal=" + wal, "--out=/dev/null"},
                                    /*with_stdin=*/true);
  ASSERT_GT(victim.pid, 0);
  for (size_t i = 0; i < kill_after; ++i) {
    ASSERT_TRUE(WriteAllFd(victim.stdin_fd, Prefixed(frames[i])));
  }
  ASSERT_TRUE(WaitForWalFrames(wal, kill_after))
      << "collector logged fewer than " << kill_after << " frames";
  ASSERT_EQ(kill(victim.pid, SIGKILL), 0);
  WaitChild(victim.pid);
  close(victim.stdin_fd);

  // The log's clean prefix is exactly the frames we fed, in order.
  std::vector<std::string> logged;
  const serve::WalReplayStats stats = InspectWal(wal, &logged);
  ASSERT_EQ(logged.size(), kill_after) << "seed " << seed;
  for (size_t i = 0; i < logged.size(); ++i) {
    ASSERT_EQ(logged[i], frames[i]) << "seed " << seed << " frame " << i;
  }
  EXPECT_TRUE(stats.tail.ok() ||
              stats.tail.code() == StatusCode::kOutOfRange)
      << stats.tail.ToString();

  // Phase 2: restart from the log, feed the remainder, drain cleanly.
  const std::string rest = testing::TempDir() + tag + ".rest";
  WriteFramesFile(rest, std::vector<std::string>(frames.begin() + kill_after,
                                                 frames.end()));
  ChildProc resumed = SpawnCollector(
      {"--wal=" + wal, "--in=" + rest, "--out=" + resume_sketch},
      /*with_stdin=*/false);
  ASSERT_GT(resumed.pid, 0);
  const int status = WaitChild(resumed.pid);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "restart exited " << status;

  // Byte-identical drained sketch.
  EXPECT_EQ(ReadFileBytes(resume_sketch), ref_sketch_bytes)
      << "seed " << seed << " kill_after " << kill_after;

  // The clean drain compacted the log to one checkpoint.
  std::vector<std::string> after;
  const serve::WalReplayStats compacted = InspectWal(wal, &after);
  EXPECT_EQ(compacted.checkpoints, 1u);
  EXPECT_EQ(compacted.frames, 0u);

  std::remove(wal.c_str());
  std::remove(rest.c_str());
  std::remove(resume_sketch.c_str());
}

TEST(WalProcessTest, SigkilledCollectorRestartsByteIdentical) {
  const std::vector<std::string> frames =
      MakeFrames(/*shards=*/10, /*shard_size=*/200, /*seed=*/7);

  // Uninterrupted reference run through the real binary.
  const std::string all = testing::TempDir() + "wal_process_all.bin";
  const std::string ref = testing::TempDir() + "wal_process_ref.sketch";
  WriteFramesFile(all, frames);
  ChildProc reference =
      SpawnCollector({"--in=" + all, "--out=" + ref}, /*with_stdin=*/false);
  ASSERT_GT(reference.pid, 0);
  const int status = WaitChild(reference.pid);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  const std::string ref_bytes = ReadFileBytes(ref);
  ASSERT_FALSE(ref_bytes.empty());

  // Three distinct seeded kill offsets (the acceptance bar).
  for (const uint64_t seed : {101u, 202u, 303u}) {
    RunKillAndRestart(seed, frames, ref_bytes);
  }
  std::remove(all.c_str());
  std::remove(ref.c_str());
}

// Two crashes in a row: kill, restart and kill again mid-remainder,
// restart once more — still byte-identical.
TEST(WalProcessTest, DoubleCrashStillRecoversExactly) {
  const std::vector<std::string> frames =
      MakeFrames(/*shards=*/8, /*shard_size=*/150, /*seed=*/19);
  const std::string wal = testing::TempDir() + "wal_process_double.wal";
  const std::string out = testing::TempDir() + "wal_process_double.sketch";
  std::remove(wal.c_str());

  size_t fed = 0;
  for (const size_t kill_after : {3u, 6u}) {
    ChildProc victim = SpawnCollector({"--wal=" + wal, "--out=/dev/null"},
                                      /*with_stdin=*/true);
    ASSERT_GT(victim.pid, 0);
    for (; fed < kill_after; ++fed) {
      ASSERT_TRUE(WriteAllFd(victim.stdin_fd, Prefixed(frames[fed])));
    }
    ASSERT_TRUE(WaitForWalFrames(wal, kill_after));
    ASSERT_EQ(kill(victim.pid, SIGKILL), 0);
    WaitChild(victim.pid);
    close(victim.stdin_fd);
  }

  const std::string rest = testing::TempDir() + "wal_process_double.rest";
  WriteFramesFile(rest,
                  std::vector<std::string>(frames.begin() + fed, frames.end()));
  ChildProc resumed = SpawnCollector(
      {"--wal=" + wal, "--in=" + rest, "--out=" + out}, /*with_stdin=*/false);
  ASSERT_GT(resumed.pid, 0);
  const int status = WaitChild(resumed.pid);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);

  // In-process reference (same wire bytes as an uninterrupted binary run).
  serve::CollectorSession ref_session =
      serve::CollectorSession::Make(TestSpec()).ValueOrDie();
  for (const std::string& frame : frames) {
    ASSERT_TRUE(ref_session.HandleFrame(frame).ok());
  }
  EXPECT_EQ(ReadFileBytes(out),
            Prefixed(ref_session.EncodeSketch().ValueOrDie()));

  std::remove(wal.c_str());
  std::remove(rest.c_str());
  std::remove(out.c_str());
}

// The epoll network server under SIGKILL: its parallel absorption order
// is nondeterministic, so after the kill the log is diffed against the
// sent frame multiset and only the truly-unlogged frames are refed.
TEST(WalProcessTest, NetworkServerKillAndRestartRecovers) {
  const std::vector<std::string> frames =
      MakeFrames(/*shards=*/12, /*shard_size=*/100, /*seed=*/31);
  const std::string wal = testing::TempDir() + "wal_process_net.wal";
  const std::string port_file = testing::TempDir() + "wal_process_net.port";
  const std::string out = testing::TempDir() + "wal_process_net.sketch";
  std::remove(wal.c_str());
  std::remove(port_file.c_str());

  ChildProc server = SpawnCollector(
      {"--listen=tcp:0", "--port-file=" + port_file, "--wal=" + wal,
       "--out=/dev/null"},
      /*with_stdin=*/false);
  ASSERT_GT(server.pid, 0);
  std::string endpoint_name;
  for (int spin = 0; spin < 2000 && endpoint_name.empty(); ++spin) {
    std::ifstream pf(port_file);
    std::getline(pf, endpoint_name);
    if (endpoint_name.empty()) usleep(5000);
  }
  ASSERT_FALSE(endpoint_name.empty()) << "server never published its port";

  // Stream frames over a real TCP connection, then kill mid-stream once
  // the log confirms at least a third of them.
  auto endpoint = net::ParseEndpoint(endpoint_name);
  ASSERT_TRUE(endpoint.ok()) << endpoint.status().ToString();
  auto conn = net::Dial(endpoint.value());
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  for (const std::string& frame : frames) {
    ASSERT_TRUE(net::WriteAll(conn.value().get(), Prefixed(frame)).ok());
    usleep(2000);
  }
  ASSERT_TRUE(WaitForWalFrames(wal, frames.size() / 3));
  ASSERT_EQ(kill(server.pid, SIGKILL), 0);
  WaitChild(server.pid);

  // Whatever subset the server logged, each logged frame is one we sent;
  // the complement is what the restart must absorb.
  std::vector<std::string> logged;
  InspectWal(wal, &logged);
  std::map<std::string, int> remaining;
  for (const std::string& frame : frames) ++remaining[frame];
  for (const std::string& frame : logged) {
    auto it = remaining.find(frame);
    ASSERT_NE(it, remaining.end()) << "log holds a frame never sent";
    ASSERT_GT(it->second, 0) << "log holds a frame more often than sent";
    --it->second;
  }
  std::vector<std::string> rest_frames;
  for (const std::string& frame : frames) {
    auto it = remaining.find(frame);
    if (it->second > 0) {
      --it->second;
      rest_frames.push_back(frame);
    }
  }

  const std::string rest = testing::TempDir() + "wal_process_net.rest";
  WriteFramesFile(rest, rest_frames);
  ChildProc resumed = SpawnCollector(
      {"--wal=" + wal, "--in=" + rest, "--out=" + out}, /*with_stdin=*/false);
  ASSERT_GT(resumed.pid, 0);
  const int status = WaitChild(resumed.pid);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);

  // Absorption order differed across the crash, but merging is exact and
  // commutative: the recovered sketch is byte-identical to the reference.
  serve::CollectorSession ref_session =
      serve::CollectorSession::Make(TestSpec()).ValueOrDie();
  for (const std::string& frame : frames) {
    ASSERT_TRUE(ref_session.HandleFrame(frame).ok());
  }
  EXPECT_EQ(ReadFileBytes(out),
            Prefixed(ref_session.EncodeSketch().ValueOrDie()));

  std::remove(wal.c_str());
  std::remove(port_file.c_str());
  std::remove(rest.c_str());
  std::remove(out.c_str());
}

#else

TEST(WalProcessTest, SkippedWithoutTools) {
  GTEST_SKIP() << "collector_cli / report_client were not built "
                  "(NUMDIST_BUILD_TOOLS=OFF)";
}

#endif

}  // namespace
}  // namespace numdist
