// Incremental reconstruction contracts (eval/incremental.h, core/em.h
// EmCheckpoint, net/server.h live estimation):
//  - warm-started EM over a rolling snapshot sequence reaches the same
//    fixed point as a cold run on the final snapshot, within the
//    likelihood-gap agreement radius both stopping rules imply
//    (stats::EmAgreementRadius), while spending far fewer total
//    iterations than cold restarts at every snapshot,
//  - a warm run through an EMPTY checkpoint is bit-identical to the plain
//    cold path (the incremental API is a strict superset),
//  - mini-batch (exponentially forgotten) updates are deterministic:
//    identical cumulative-total sequences produce byte-identical
//    estimates, and the scenario engine's incremental columns are
//    bit-identical for any thread count at a fixed seed,
//  - live estimation inside CollectorServer reads accumulator state
//    without mutating it: the drained sketch is byte-identical to a
//    sequential single-session run over the same frames, while the
//    estimate sink observes monotone report totals.
#include "eval/incremental.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/em.h"
#include "core/sw_estimator.h"
#include "data/datasets.h"
#include "metrics/distance.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket.h"
#include "protocol/sharded.h"
#include "scenario/scenario.h"
#include "serve/collector.h"
#include "stats/conformance.h"
#include "wire/wire.h"

namespace numdist {
namespace {

using stats::EmAgreementRadius;

// Input-space envelope for the report-space agreement radius `delta` (same
// derivation as tests/estimator_conformance_test.cc; see
// docs/STATISTICAL_TESTING.md §3).
double InversionEnvelope(double epsilon, double b, double delta, size_t d,
                         double safety = 4.0) {
  const double kappa =
      (2.0 * b * std::exp(epsilon) + 1.0) / (2.0 * b * std::expm1(epsilon));
  return safety * kappa * delta + 1.0 / static_cast<double>(d);
}

// A rolling snapshot sequence: one fixed report stream, aggregated at
// `increments` cumulative prefixes (what a growing collector exposes).
struct RollingWorkload {
  SwEstimatorOptions options;
  std::vector<std::vector<uint64_t>> snapshots;  // cumulative counts
  uint64_t n = 0;                                // final snapshot reports
};

RollingWorkload MakeRollingWorkload(uint64_t seed, double epsilon, size_t d,
                                    size_t increments, uint64_t per) {
  RollingWorkload w;
  w.options.epsilon = epsilon;
  w.options.d = d;
  w.options.post = SwEstimatorOptions::Post::kEm;
  w.options.pipeline =
      SwEstimatorOptions::Pipeline::kBucketizeBeforeRandomize;
  const SwEstimator estimator = SwEstimator::Make(w.options).ValueOrDie();
  Rng rng(seed);
  std::vector<double> reports;
  std::vector<uint64_t> counts(estimator.output_buckets(), 0);
  for (size_t k = 0; k < increments; ++k) {
    for (uint64_t i = 0; i < per; ++i) {
      const double v = SampleDataset(DatasetId::kBeta, rng);
      ++counts[estimator.OutputBucketOf(estimator.PerturbOne(v, rng))];
    }
    w.snapshots.push_back(counts);
  }
  w.n = static_cast<uint64_t>(increments) * per;
  return w;
}

double ForwardKs(const SwEstimator& estimator, const std::vector<double>& x,
                 const std::vector<double>& y) {
  return KsDistance(estimator.transition().Multiply(x),
                    estimator.transition().Multiply(y));
}

TEST(WarmStartTest, RollingWarmRunsReachTheColdFixedPoint) {
  // Thread one checkpoint through every snapshot, then compare the final
  // warm fixed point against a cold run on the final snapshot. Both stop
  // within tol = 1e-3 e^eps (plain EM's paper threshold) of the shared
  // likelihood maximum, so they agree within the derived radius.
  const double epsilon = 1.0;
  const size_t d = 64;
  const RollingWorkload w =
      MakeRollingWorkload(0xD1, epsilon, d, 8, 20000);
  const SwEstimator estimator = SwEstimator::Make(w.options).ValueOrDie();

  EmCheckpoint checkpoint;
  EmResult warm;
  for (const std::vector<uint64_t>& snapshot : w.snapshots) {
    warm = estimator.ReconstructWarm(snapshot, &checkpoint).ValueOrDie();
    ASSERT_TRUE(warm.converged);
  }
  const EmResult cold =
      estimator.Reconstruct(w.snapshots.back()).ValueOrDie();
  ASSERT_TRUE(cold.converged);

  const double tol = 1e-3 * std::exp(epsilon);
  const double radius = EmAgreementRadius(w.n, tol, tol);
  EXPECT_LE(ForwardKs(estimator, warm.estimate, cold.estimate), radius);
  EXPECT_LE(WassersteinDistance(warm.estimate, cold.estimate),
            InversionEnvelope(epsilon, estimator.b(), radius, d));

  // The tentpole economics: the warm sequence's TOTAL budget beats cold
  // restarts at every snapshot (bench/micro_em.cc measures the ratio; the
  // test only pins the direction so it stays robust across hosts).
  size_t cold_total = 0;
  for (const std::vector<uint64_t>& snapshot : w.snapshots) {
    cold_total += estimator.Reconstruct(snapshot).ValueOrDie().iterations;
  }
  EXPECT_LT(checkpoint.total_iterations, cold_total);
  EXPECT_EQ(checkpoint.runs, w.snapshots.size());
  // The final warm run alone is much cheaper than its cold twin.
  EXPECT_LT(warm.iterations, cold.iterations);
}

TEST(WarmStartTest, EmptyCheckpointIsBitIdenticalToColdReconstruct) {
  const RollingWorkload w = MakeRollingWorkload(0xD2, 1.0, 32, 1, 30000);
  const SwEstimator estimator = SwEstimator::Make(w.options).ValueOrDie();
  EmCheckpoint checkpoint;
  const EmResult via_checkpoint =
      estimator.ReconstructWarm(w.snapshots[0], &checkpoint).ValueOrDie();
  const EmResult plain = estimator.Reconstruct(w.snapshots[0]).ValueOrDie();
  ASSERT_EQ(via_checkpoint.estimate.size(), plain.estimate.size());
  EXPECT_EQ(std::memcmp(via_checkpoint.estimate.data(), plain.estimate.data(),
                        plain.estimate.size() * sizeof(double)),
            0);
  EXPECT_EQ(via_checkpoint.iterations, plain.iterations);
  EXPECT_EQ(checkpoint.total_iterations, plain.iterations);
  EXPECT_EQ(checkpoint.runs, 1u);
}

TEST(MiniBatchTest, IdenticalTotalSequencesProduceByteIdenticalEstimates) {
  // The inputs are exact integers and the decay arithmetic is a fixed
  // sequential recurrence, so two reconstructors fed the same cumulative
  // totals must agree to the last bit at every update.
  const RollingWorkload w = MakeRollingWorkload(0xD3, 1.0, 64, 6, 10000);
  auto estimator = std::make_shared<const SwEstimator>(
      SwEstimator::Make(w.options).ValueOrDie());
  IncrementalOptions options;
  options.mode = IncrementalOptions::Mode::kMiniBatch;
  options.half_life = 25000.0;
  auto a = IncrementalReconstructor::Make(estimator, options).ValueOrDie();
  auto b = IncrementalReconstructor::Make(estimator, options).ValueOrDie();
  uint64_t n = 0;
  for (const std::vector<uint64_t>& snapshot : w.snapshots) {
    n += 10000;
    const EmResult ra = a.UpdateFromTotals(snapshot, n).ValueOrDie();
    const EmResult rb = b.UpdateFromTotals(snapshot, n).ValueOrDie();
    ASSERT_EQ(ra.estimate.size(), rb.estimate.size());
    EXPECT_EQ(std::memcmp(ra.estimate.data(), rb.estimate.data(),
                          ra.estimate.size() * sizeof(double)),
              0);
    EXPECT_EQ(ra.iterations, rb.iterations);
    EXPECT_EQ(ra.log_likelihood, rb.log_likelihood);
  }
  EXPECT_EQ(a.checkpoint().total_iterations, b.checkpoint().total_iterations);
  EXPECT_EQ(a.updates(), w.snapshots.size());
}

TEST(MiniBatchTest, ScenarioIncrementalColumnsAreThreadCountInvariant) {
  // The scenario engine's bit-identical-for-any-thread-count contract must
  // extend to the new incremental columns: the reconstructor consumes
  // merged integer totals, which are themselves thread-invariant.
  auto run = [](size_t threads) {
    ScenarioConfig config = BuiltinScenario("drift").ValueOrDie();
    config.threads = threads;
    config.phases[0].reports = 6000;
    config.phases[1].reports = 12000;
    config.incremental = IncrementalMode::kMiniBatch;
    config.half_life = 4000.0;
    return RunScenario(config).ValueOrDie();
  };
  const ScenarioResult one = run(1);
  const ScenarioResult four = run(4);
  ASSERT_EQ(one.checkpoints.size(), four.checkpoints.size());
  ASSERT_GT(one.checkpoints.size(), 0u);
  for (size_t i = 0; i < one.checkpoints.size(); ++i) {
    const ScenarioCheckpoint& a = one.checkpoints[i];
    const ScenarioCheckpoint& b = four.checkpoints[i];
    ASSERT_EQ(a.inc_estimate.size(), b.inc_estimate.size());
    ASSERT_GT(a.inc_estimate.size(), 0u) << "checkpoint " << i;
    EXPECT_EQ(std::memcmp(a.inc_estimate.data(), b.inc_estimate.data(),
                          a.inc_estimate.size() * sizeof(double)),
              0)
        << "checkpoint " << i;
    EXPECT_EQ(a.inc_wasserstein, b.inc_wasserstein) << "checkpoint " << i;
    EXPECT_EQ(a.inc_ks, b.inc_ks) << "checkpoint " << i;
    EXPECT_EQ(a.inc_em_iterations, b.inc_em_iterations) << "checkpoint " << i;
    EXPECT_EQ(a.inc_total_iterations, b.inc_total_iterations)
        << "checkpoint " << i;
  }
}

TEST(LiveEstimateTest, SketchStaysByteIdenticalAndTicksAreMonotone) {
  // Same fixture shape as tests/net_test.cc: deterministic report frames
  // plus a sequential CollectorSession reference. The server additionally
  // runs live estimation every 2 frames; because estimation only READS
  // accumulator state, the drained sketch must still match the reference
  // byte for byte.
  const auto spec = wire::ParseMethodSpec("sw-ems", 1.0, 32).ValueOrDie();
  const auto protocol = wire::MakeProtocolForSpec(spec).ValueOrDie();
  const std::vector<double> values = GoldenRatioValues(3000);
  const size_t shard_size = 250;
  std::vector<std::string> frames;
  uint64_t total_reports = 0;
  for (size_t begin = 0; begin < values.size(); begin += shard_size) {
    const size_t len = std::min(shard_size, values.size() - begin);
    Rng rng(ShardSeed(11, begin / shard_size));
    auto chunk =
        protocol
            ->EncodePerturbBatch(
                std::span<const double>(values).subspan(begin, len), rng)
            .ValueOrDie();
    std::string frame;
    ASSERT_TRUE(wire::EncodeReportFrame(spec, *protocol, *chunk, &frame).ok());
    frames.push_back(std::move(frame));
    total_reports += chunk->num_reports();
  }
  auto reference = serve::CollectorSession::Make(spec).ValueOrDie();
  for (const std::string& frame : frames) {
    ASSERT_TRUE(reference.HandleFrame(frame).ok());
  }
  const std::string reference_sketch = reference.EncodeSketch().ValueOrDie();

  // Tick observations, written from the reactor thread and read only
  // after serving.join().
  struct TickLog {
    uint64_t count = 0;
    uint64_t last_reports = 0;
    bool reports_monotone = true;
    bool totals_consistent = true;
    size_t estimate_size = 0;
    size_t total_iterations = 0;
  } log;

  net::ServerOptions options;
  options.estimate_every_frames = 2;
  options.estimate_sink = [&log](const net::EstimateTick& tick) {
    ++log.count;
    if (tick.reports < log.last_reports) log.reports_monotone = false;
    log.last_reports = tick.reports;
    uint64_t sum = 0;
    for (uint64_t c : tick.totals) sum += c;
    if (sum != tick.reports) log.totals_consistent = false;
    log.estimate_size = tick.em.estimate.size();
    log.total_iterations = tick.checkpoint.total_iterations;
  };
  auto server = net::CollectorServer::Make(spec, options).ValueOrDie();
  const net::Endpoint bound =
      server->AddListener(net::ParseEndpoint("tcp:0").ValueOrDie())
          .ValueOrDie();
  Status run_status;
  std::thread serving([&] { run_status = server->Run(); });
  {
    auto sender = net::MultiSender::Make(bound, 3).ValueOrDie();
    for (const std::string& frame : frames) {
      ASSERT_TRUE(sender.Send(frame).ok());
    }
    ASSERT_TRUE(sender.Finish().ok());
  }
  server->RequestDrain();
  serving.join();
  ASSERT_TRUE(run_status.ok()) << run_status.message();

  EXPECT_EQ(server->num_reports(), total_reports);
  EXPECT_EQ(server->EncodeSketch().ValueOrDie(), reference_sketch);
  EXPECT_GT(server->stats().estimate_ticks, 0u);
  EXPECT_EQ(server->stats().estimate_ticks, log.count);
  EXPECT_TRUE(log.reports_monotone);
  EXPECT_TRUE(log.totals_consistent);
  EXPECT_EQ(log.estimate_size, 32u);
  EXPECT_GT(log.total_iterations, 0u);
  ASSERT_NE(server->incremental(), nullptr);
  EXPECT_EQ(server->incremental()->checkpoint().runs, log.count);
}

}  // namespace
}  // namespace numdist
