// Cross-module integration tests: full client -> server pipelines and the
// paper's headline qualitative claims at small scale (seeded, so stable).
#include <gtest/gtest.h>

#include <cmath>

#include "common/histogram.h"
#include "data/datasets.h"
#include "eval/method.h"
#include "eval/runner.h"
#include "mean/moments.h"
#include "metrics/distance.h"
#include "metrics/queries.h"

namespace numdist {
namespace {

struct Experiment {
  std::vector<double> values;
  GroundTruth truth;
};

Experiment MakeExperiment(DatasetId id, size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  Experiment exp;
  exp.values = GenerateDataset(id, n, rng);
  exp.truth = ComputeGroundTruth(exp.values, d);
  return exp;
}

double MeanW1(const DistributionMethod& method, const Experiment& exp,
              double epsilon, size_t d, size_t trials = 3) {
  RunnerOptions opts;
  opts.trials = trials;
  opts.range_queries = 20;
  return RunTrials(method, exp.values, exp.truth, epsilon, d, opts)
      .ValueOrDie()
      .mean.wasserstein;
}

TEST(IntegrationTest, SwEmsBeatsCfoBinningOnBeta) {
  // Figure 2(a): SW-EMS dominates CFO binning on the smooth Beta dataset.
  const Experiment exp = MakeExperiment(DatasetId::kBeta, 30000, 256, 1);
  const double sw = MeanW1(*MakeSwEmsMethod(), exp, 1.0, 256);
  const double cfo16 = MeanW1(*MakeCfoBinningMethod(16), exp, 1.0, 256);
  const double cfo64 = MeanW1(*MakeCfoBinningMethod(64), exp, 1.0, 256);
  EXPECT_LT(sw, cfo16);
  EXPECT_LT(sw, cfo64);
}

TEST(IntegrationTest, SwEmsBeatsHhAdmmOnSmoothData) {
  // Figure 2(a)/(b): on smooth distributions SW-EMS leads HH-ADMM.
  const Experiment exp = MakeExperiment(DatasetId::kBeta, 30000, 256, 2);
  const double sw = MeanW1(*MakeSwEmsMethod(), exp, 1.0, 256);
  const double admm = MeanW1(*MakeHhAdmmMethod(), exp, 1.0, 256);
  EXPECT_LT(sw, admm);
}

TEST(IntegrationTest, ErrorDecreasesWithEpsilon) {
  // Every figure: W1 shrinks as the privacy budget grows.
  const Experiment exp = MakeExperiment(DatasetId::kTaxi, 30000, 256, 3);
  const double w1_low = MeanW1(*MakeSwEmsMethod(), exp, 0.5, 256);
  const double w1_high = MeanW1(*MakeSwEmsMethod(), exp, 2.5, 256);
  EXPECT_LT(w1_high, w1_low);
}

TEST(IntegrationTest, HhAdmmBeatsPlainHhOnRangeQueries) {
  // §4.3: exploiting non-negativity and the known total improves HH.
  const Experiment exp = MakeExperiment(DatasetId::kRetirement, 30000, 256, 4);
  RunnerOptions opts;
  opts.trials = 3;
  opts.range_queries = 60;
  const auto hh = RunTrials(*MakeHhMethod(), exp.values, exp.truth, 0.5, 256,
                            opts)
                      .ValueOrDie();
  const auto admm = RunTrials(*MakeHhAdmmMethod(), exp.values, exp.truth, 0.5,
                              256, opts)
                        .ValueOrDie();
  EXPECT_LT(admm.mean.range_large, hh.mean.range_large);
}

TEST(IntegrationTest, SwEmsMeanCompetitiveWithDirectMeanProtocols) {
  // Figure 4: SW-EMS (which reconstructs the whole distribution) estimates
  // the mean within a small factor of the direct SR/PM protocols.
  const Experiment exp = MakeExperiment(DatasetId::kBeta, 40000, 256, 5);
  RunnerOptions opts;
  opts.trials = 3;
  opts.range_queries = 10;
  const auto sw =
      RunTrials(*MakeSwEmsMethod(), exp.values, exp.truth, 1.0, 256, opts)
          .ValueOrDie();
  // Direct protocols' error at the same budget, averaged over seeds.
  double pm_err = 0.0;
  for (uint64_t seed = 0; seed < 3; ++seed) {
    Rng rng(100 + seed);
    const double est =
        EstimateMean(exp.values, MeanMechanism::kPiecewiseMechanism, 1.0, rng)
            .ValueOrDie();
    pm_err += std::fabs(est - exp.truth.mean);
  }
  pm_err /= 3.0;
  EXPECT_LT(sw.mean.mean_err, 10.0 * pm_err + 0.01);
}

TEST(IntegrationTest, EmsMoreStableThanEmAcrossDatasets) {
  // §5.5: EMS is stable without tuning; on smooth data it should not lose
  // badly to EM anywhere (allow slack: it can be slightly worse
  // pointwise but not catastrophically).
  for (DatasetId id : {DatasetId::kBeta, DatasetId::kRetirement}) {
    const Experiment exp = MakeExperiment(id, 25000, 256, 6);
    const double ems = MeanW1(*MakeSwEmsMethod(), exp, 1.0, 256, 2);
    const double em = MeanW1(*MakeSwEmMethod(), exp, 1.0, 256, 2);
    EXPECT_LT(ems, 3.0 * em + 1e-3);
  }
}

TEST(IntegrationTest, RangeQueriesConsistentAcrossMethods) {
  // Full-domain range query must be ~1 for every method (mass conservation).
  const Experiment exp = MakeExperiment(DatasetId::kTaxi, 20000, 64, 7);
  for (const auto& method : MakeStandardSuite()) {
    Rng rng(8);
    const MethodOutput out =
        method->Run(exp.values, 2.0, 64, rng).ValueOrDie();
    EXPECT_NEAR(out.range_query(0.0, 1.0), 1.0, 0.15) << method->name();
  }
}

TEST(IntegrationTest, QuantilesTrackTruthAtHighEpsilon) {
  const Experiment exp = MakeExperiment(DatasetId::kBeta, 50000, 256, 9);
  Rng rng(10);
  const MethodOutput out =
      MakeSwEmsMethod()->Run(exp.values, 4.0, 256, rng).ValueOrDie();
  EXPECT_LT(QuantileMae(exp.truth.histogram, out.distribution), 0.02);
}

TEST(IntegrationTest, SpikyIncomeFavorsHhAdmmOnKs) {
  // Figure 2(g): on the spiky income dataset HH-ADMM's KS distance is
  // competitive with (the smoothing-biased) SW-EMS at large epsilon.
  const Experiment exp = MakeExperiment(DatasetId::kIncome, 60000, 256, 11);
  RunnerOptions opts;
  opts.trials = 3;
  opts.range_queries = 10;
  const auto sw =
      RunTrials(*MakeSwEmsMethod(), exp.values, exp.truth, 2.5, 256, opts)
          .ValueOrDie();
  const auto admm =
      RunTrials(*MakeHhAdmmMethod(), exp.values, exp.truth, 2.5, 256, opts)
          .ValueOrDie();
  // ADMM preserves spikes; allow generous slack while still asserting the
  // qualitative closeness the paper reports.
  EXPECT_LT(admm.mean.ks, 3.0 * sw.mean.ks);
}

}  // namespace
}  // namespace numdist
