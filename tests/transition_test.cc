#include "core/transition.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/square_wave.h"

namespace numdist {
namespace {

Matrix Stochastic2x2() {
  Matrix m(2, 2);
  m(0, 0) = 0.7;
  m(1, 0) = 0.3;
  m(0, 1) = 0.2;
  m(1, 1) = 0.8;
  return m;
}

TEST(ValidateTransitionTest, AcceptsColumnStochastic) {
  EXPECT_TRUE(ValidateTransitionMatrix(Stochastic2x2()).ok());
}

TEST(ValidateTransitionTest, RejectsBadColumnSum) {
  Matrix m = Stochastic2x2();
  m(0, 0) = 0.9;  // column 0 sums to 1.2
  const Status st = ValidateTransitionMatrix(m);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
}

TEST(ValidateTransitionTest, RejectsNegativeEntry) {
  Matrix m = Stochastic2x2();
  m(0, 0) = -0.1;
  m(1, 0) = 1.1;
  EXPECT_FALSE(ValidateTransitionMatrix(m).ok());
}

TEST(ValidateTransitionTest, RejectsNaN) {
  Matrix m = Stochastic2x2();
  m(0, 0) = std::nan("");
  EXPECT_FALSE(ValidateTransitionMatrix(m).ok());
}

TEST(ValidateTransitionTest, ToleranceIsConfigurable) {
  Matrix m = Stochastic2x2();
  m(0, 0) = 0.7 + 1e-6;
  EXPECT_FALSE(ValidateTransitionMatrix(m, 1e-9).ok());
  EXPECT_TRUE(ValidateTransitionMatrix(m, 1e-4).ok());
}

TEST(NormalizeColumnsTest, RescalesEachColumn) {
  Matrix m(2, 2);
  m(0, 0) = 2.0;
  m(1, 0) = 2.0;
  m(0, 1) = 1.0;
  m(1, 1) = 3.0;
  NormalizeColumns(&m);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(m(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.25);
  EXPECT_DOUBLE_EQ(m(1, 1), 0.75);
  EXPECT_TRUE(ValidateTransitionMatrix(m).ok());
}

TEST(NormalizeColumnsTest, ZeroColumnLeftAlone) {
  Matrix m(2, 2, 0.0);
  m(0, 1) = 1.0;
  NormalizeColumns(&m);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 1.0);
}

TEST(NormalizeCountsTest, ProducesFrequencies) {
  const std::vector<double> freq = NormalizeCounts({1, 3, 0, 4});
  EXPECT_DOUBLE_EQ(freq[0], 0.125);
  EXPECT_DOUBLE_EQ(freq[1], 0.375);
  EXPECT_DOUBLE_EQ(freq[2], 0.0);
  EXPECT_DOUBLE_EQ(freq[3], 0.5);
}

TEST(NormalizeCountsTest, AllZeroGivesZeros) {
  const std::vector<double> freq = NormalizeCounts({0, 0});
  EXPECT_DOUBLE_EQ(freq[0], 0.0);
  EXPECT_DOUBLE_EQ(freq[1], 0.0);
}

TEST(ValidateTransitionTest, RealSwMatricesPassAtTightTolerance) {
  for (double eps : {0.5, 1.0, 3.0}) {
    const SquareWave sw = SquareWave::Make(eps).ValueOrDie();
    EXPECT_TRUE(
        ValidateTransitionMatrix(sw.TransitionMatrix(100, 130), 1e-10).ok())
        << "eps=" << eps;
  }
}

}  // namespace
}  // namespace numdist
