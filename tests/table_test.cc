#include "eval/table.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace numdist {
namespace {

TEST(TablePrinterTest, AlignedOutputContainsHeadersAndCells) {
  TablePrinter table({"method", "eps", "W1"});
  table.AddRow({"SW-EMS", "1.0", "0.0012"});
  table.AddRow({"CFO-bin-16", "1.0", "0.0100"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("method"), std::string::npos);
  EXPECT_NE(out.find("SW-EMS"), std::string::npos);
  EXPECT_NE(out.find("CFO-bin-16"), std::string::npos);
  EXPECT_NE(out.find("0.0012"), std::string::npos);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter table({"a", "b"});
  table.AddRow({"1", "2"});
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"x"});
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b,c\nx,,\n");
}

TEST(TablePrinterTest, RowCount) {
  TablePrinter table({"a"});
  EXPECT_EQ(table.num_rows(), 0u);
  table.AddRow({"1"});
  table.AddRow({"2"});
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(FormatTest, Sci) {
  EXPECT_EQ(FormatSci(0.00123), "1.230e-03");
  EXPECT_EQ(FormatSci(std::nan("")), "-");
}

TEST(FormatTest, General) {
  EXPECT_EQ(FormatG(0.5), "0.5");
  EXPECT_EQ(FormatG(123456.0, 3), "1.23e+05");
  EXPECT_EQ(FormatG(std::nan("")), "-");
}

}  // namespace
}  // namespace numdist
