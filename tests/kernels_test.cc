// Dispatch-equivalence tier: the scalar, AVX2, and AVX-512 kernel builds
// must be BIT-EXACT (kernels.h contract). Verified at three levels:
//   1. kernel-by-kernel, on sizes that exercise the blocked main loop, the
//      tails, and the degenerate lengths;
//   2. whole reconstructions: EstimateEm over the dense / banded /
//      sliding-window models once per dispatch, byte-compared;
//   3. whole encode paths: every protocol family's EncodePerturbBatch wire
//      payload, and a full sharded pipeline run, byte-compared across
//      dispatch.
// Every sweep compares the scalar reference against EVERY vector tier:
// forcing a tier the host lacks clamps down the fallback ladder
// (avx512 -> avx2 -> scalar), so those comparisons degrade to trivially
// true rather than crashing — the dedicated Avx512 test below emits a loud
// GTEST_SKIP on such hosts, and the CI matrix runs the whole suite under
// each NUMDIST_FORCE_ISA value for the same reason.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "core/em.h"
#include "core/observation_model.h"
#include "core/square_wave.h"
#include "core/sw_estimator.h"
#include "kernels/kernels.h"
#include "protocol/cfo_protocol.h"
#include "protocol/hierarchy_protocol.h"
#include "protocol/sharded.h"
#include "protocol/sw_protocol.h"

namespace numdist {
namespace {

using kernels::Isa;

// True when the two dispatch paths genuinely differ on this host.
bool HasTwoPaths() { return kernels::Avx2Available(); }

// The vector tiers every scalar-reference sweep is diffed against. On a
// host lacking a tier, forcing it resolves down the fallback ladder.
const Isa kVectorIsas[] = {Isa::kAvx2, Isa::kAvx512};

// Restores normal dispatch however a test exits.
struct IsaGuard {
  ~IsaGuard() { kernels::ResetIsaForTest(); }
};

std::vector<double> RandomVector(size_t n, uint64_t seed, double lo = -1.0,
                                 double hi = 1.0) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.Uniform(lo, hi);
  return v;
}

// Sizes covering empty, sub-tail, one block, block+tail, and long inputs.
const size_t kSizes[] = {0, 1, 3, 7, 8, 15, 16, 17, 31, 33, 64, 257, 1000};

TEST(KernelDispatchTest, ReductionsAreBitExactAcrossIsas) {
  IsaGuard guard;
  for (size_t n : kSizes) {
    const std::vector<double> a = RandomVector(n, 11 + n);
    const std::vector<double> b = RandomVector(n, 23 + n);

    struct Reductions {
      double dot = 0.0;
      double sum = 0.0;
      double d2_0 = 0.0;
      double d2_1 = 0.0;
    };
    auto run = [&](Isa isa) {
      kernels::ForceIsaForTest(isa);
      Reductions r;
      r.dot = kernels::Dot(a.data(), b.data(), n);
      r.sum = kernels::Sum(a.data(), n);
      if (n > 0) {
        kernels::Dot2(a.data(), b.data(), a.data(), n, &r.d2_0, &r.d2_1);
      }
      return r;
    };
    const Reductions scalar = run(Isa::kScalar);
    for (const Isa isa : kVectorIsas) {
      const Reductions vector = run(isa);
      // Bit equality, not EXPECT_DOUBLE_EQ: the contract is the same bits.
      EXPECT_EQ(std::memcmp(&scalar.dot, &vector.dot, sizeof(double)), 0)
          << "Dot n=" << n << " isa=" << kernels::IsaName(isa);
      EXPECT_EQ(std::memcmp(&scalar.sum, &vector.sum, sizeof(double)), 0)
          << "Sum n=" << n << " isa=" << kernels::IsaName(isa);
      EXPECT_EQ(std::memcmp(&scalar.d2_0, &vector.d2_0, sizeof(double)), 0)
          << "Dot2[0] n=" << n << " isa=" << kernels::IsaName(isa);
      EXPECT_EQ(std::memcmp(&scalar.d2_1, &vector.d2_1, sizeof(double)), 0)
          << "Dot2[1] n=" << n << " isa=" << kernels::IsaName(isa);
    }
  }
}

TEST(KernelDispatchTest, ElementwiseKernelsAreBitExactAcrossIsas) {
  IsaGuard guard;
  for (size_t n : kSizes) {
    const std::vector<double> x0 = RandomVector(n, 31 + n);
    const std::vector<double> x1 = RandomVector(n, 41 + n);
    const std::vector<double> base = RandomVector(n, 59 + n);

    auto run = [&](Isa isa) {
      kernels::ForceIsaForTest(isa);
      std::vector<double> y = base;
      kernels::Axpy(y.data(), 0.77, x0.data(), n);
      kernels::Axpy2(y.data(), -1.3, x0.data(), 0.21, x1.data(), n);
      const double total = kernels::MulAndSum(y.data(), x0.data(), n);
      kernels::Scale(y.data(), 1.0 / (total + 10.0), n);
      kernels::WindowCombine(y.data(), n, 3, 0.125, 2.5);
      return y;
    };
    const std::vector<double> scalar = run(Isa::kScalar);
    for (const Isa isa : kVectorIsas) {
      const std::vector<double> vector = run(isa);
      ASSERT_EQ(scalar.size(), vector.size());
      if (n > 0) {
        EXPECT_EQ(
            std::memcmp(scalar.data(), vector.data(), n * sizeof(double)), 0)
            << "elementwise chain n=" << n
            << " isa=" << kernels::IsaName(isa);
      }
    }
  }
}

TEST(KernelDispatchTest, LessThanAndGrrMapAgreeAcrossIsas) {
  IsaGuard guard;
  for (size_t n : kSizes) {
    const std::vector<double> u = RandomVector(n, 71 + n, 0.0, 1.0);
    std::vector<uint32_t> values(n);
    for (size_t i = 0; i < n; ++i) values[i] = static_cast<uint32_t>(i % 17);

    auto run = [&](Isa isa) {
      kernels::ForceIsaForTest(isa);
      std::vector<uint8_t> bits(n, 0xee);
      kernels::LessThan(u.data(), 0.4, bits.data(), n);
      std::vector<uint32_t> out(n, 0xdeadbeef);
      kernels::GrrResponseMap(u.data(), values.data(), out.data(), n, 0.3,
                              1.0 / 0.7, 17);
      return std::make_pair(bits, out);
    };
    const auto scalar = run(Isa::kScalar);
    for (const Isa isa : kVectorIsas) {
      const auto vector = run(isa);
      EXPECT_EQ(scalar.first, vector.first)
          << "LessThan n=" << n << " isa=" << kernels::IsaName(isa);
      EXPECT_EQ(scalar.second, vector.second)
          << "GrrResponseMap n=" << n << " isa=" << kernels::IsaName(isa);
    }
  }
}

TEST(KernelDispatchTest, WindowCombineMatchesReference) {
  for (size_t n : {size_t{1}, size_t{5}, size_t{40}}) {
    for (size_t lag : {size_t{1}, size_t{3}, size_t{7}, n + 2}) {
      const std::vector<double> base = RandomVector(n, 97 + n + lag);
      std::vector<double> got = base;
      kernels::WindowCombine(got.data(), n, lag, 0.25, 1.75);
      for (size_t j = 0; j < n; ++j) {
        const double lagged = j >= lag ? base[j - lag] : 0.0;
        // The volatile stop keeps the reference un-contracted: under
        // -march=native the compiler would otherwise fuse this into an
        // FMA, while the kernel builds are contraction-free by contract.
        volatile double product = 1.75 * (base[j] - lagged);
        const double want = 0.25 + product;
        EXPECT_EQ(got[j], want) << "n=" << n << " lag=" << lag << " j=" << j;
      }
    }
  }
}

TEST(KernelDispatchTest, GrrResponseMapRealizesTheScheme) {
  // Spot-check the single-draw semantics against a direct evaluation.
  const uint32_t domain = 11;
  const double p = 0.22;
  const double inv_rest = 1.0 / (1.0 - p);
  const std::vector<double> u = RandomVector(500, 123, 0.0, 1.0);
  std::vector<uint32_t> values(u.size());
  for (size_t i = 0; i < u.size(); ++i) {
    values[i] = static_cast<uint32_t>((i * 5) % domain);
  }
  std::vector<uint32_t> out(u.size());
  kernels::GrrResponseMap(u.data(), values.data(), out.data(), u.size(), p,
                          inv_rest, domain);
  for (size_t i = 0; i < u.size(); ++i) {
    if (u[i] < p) {
      EXPECT_EQ(out[i], values[i]) << i;
    } else {
      const double t = (u[i] - p) * inv_rest;
      uint32_t r = static_cast<uint32_t>(t * (domain - 1));
      if (r > domain - 2) r = domain - 2;
      const uint32_t want = r >= values[i] ? r + 1 : r;
      EXPECT_EQ(out[i], want) << i;
      EXPECT_NE(out[i], values[i]) << i;  // rejects never report the truth
    }
  }
}

// ---- Whole-path equivalence.

std::vector<uint64_t> SwCounts(size_t d, size_t n, uint64_t seed) {
  const SquareWave sw = SquareWave::Make(1.0).ValueOrDie();
  Rng rng(seed);
  std::vector<double> reports;
  reports.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    reports.push_back(sw.Perturb(rng.Bernoulli(0.5) ? 0.3 : 0.7, rng));
  }
  return sw.BucketizeReports(reports, d);
}

TEST(KernelDispatchTest, EstimateEmIsBitIdenticalAcrossIsas) {
  IsaGuard guard;
  const size_t d = 96;
  const SquareWave sw = SquareWave::Make(1.0).ValueOrDie();
  const Matrix m = sw.TransitionMatrix(d, d);
  const double background = sw.q() * (1.0 + 2.0 * sw.b()) / d;
  const std::vector<uint64_t> counts = SwCounts(d, 20000, 77);
  EmOptions opts;
  opts.max_iterations = 40;
  opts.min_iterations = 5;
  opts.smoothing = true;

  auto reconstruct = [&](Isa isa) {
    kernels::ForceIsaForTest(isa);
    std::vector<std::vector<double>> estimates;
    estimates.push_back(EstimateEm(m, counts, opts).ValueOrDie().estimate);
    const BandedObservationModel banded =
        BandedObservationModel::FromDense(m, background, 1e-13);
    estimates.push_back(
        EstimateEm(banded, counts, opts).ValueOrDie().estimate);
    const SlidingWindowObservationModel sliding =
        SlidingWindowObservationModel::FromContinuous(sw, d, d);
    estimates.push_back(
        EstimateEm(sliding, counts, opts).ValueOrDie().estimate);
    return estimates;
  };
  const auto scalar = reconstruct(Isa::kScalar);
  const char* model_names[] = {"dense", "banded", "sliding"};
  for (const Isa isa : kVectorIsas) {
    const auto vector = reconstruct(isa);
    for (size_t k = 0; k < scalar.size(); ++k) {
      ASSERT_EQ(scalar[k].size(), vector[k].size());
      EXPECT_EQ(std::memcmp(scalar[k].data(), vector[k].data(),
                            scalar[k].size() * sizeof(double)),
                0)
          << model_names[k] << " estimate differs across dispatch (isa="
          << kernels::IsaName(isa) << ")";
    }
  }
}

TEST(KernelDispatchTest, EncodedChunksAreBitIdenticalAcrossIsas) {
  IsaGuard guard;
  // One protocol per encode family (SW continuous + discrete pipelines,
  // CFO over GRR / OLH / OUE, both hierarchy collections).
  struct Case {
    const char* name;
    Result<ProtocolPtr> protocol;
  };
  SwEstimatorOptions sw_opts;
  sw_opts.epsilon = 1.0;
  sw_opts.d = 32;
  SwEstimatorOptions dsw_opts = sw_opts;
  dsw_opts.pipeline = SwEstimatorOptions::Pipeline::kBucketizeBeforeRandomize;
  Case cases[] = {
      {"sw-continuous", MakeSwProtocol(sw_opts)},
      {"sw-discrete", MakeSwProtocol(dsw_opts)},
      {"cfo-grr", MakeCfoBinningProtocol(1.0, 32, 16, FoKind::kGrr)},
      {"cfo-olh", MakeCfoBinningProtocol(1.0, 32, 16, FoKind::kOlh)},
      {"cfo-oue", MakeCfoBinningProtocol(1.0, 32, 16, FoKind::kOue)},
      {"hh", MakeHhBatchedProtocol(1.0, 64)},
      {"haar", MakeHaarHrrBatchedProtocol(1.0, 32)},
  };

  std::vector<double> values;
  Rng value_rng(99);
  for (size_t i = 0; i < 4000; ++i) values.push_back(value_rng.Uniform());

  for (Case& c : cases) {
    ASSERT_TRUE(c.protocol.ok()) << c.name;
    const Protocol& protocol = *c.protocol.value();
    auto encode = [&](Isa isa) {
      kernels::ForceIsaForTest(isa);
      Rng rng(4242);
      auto chunk = protocol.EncodePerturbBatch(values, rng).ValueOrDie();
      std::string payload;
      ByteWriter writer(&payload);
      EXPECT_TRUE(protocol.EncodeChunkPayload(*chunk, &writer).ok())
          << c.name;
      return payload;
    };
    const std::string scalar = encode(Isa::kScalar);
    for (const Isa isa : kVectorIsas) {
      const std::string vector = encode(isa);
      EXPECT_EQ(scalar, vector)
          << c.name << " wire payload differs across dispatch (isa="
          << kernels::IsaName(isa) << ")";
    }
  }
}

TEST(KernelDispatchTest, ShardedPipelineIsBitIdenticalAcrossIsas) {
  IsaGuard guard;
  SwEstimatorOptions options;
  options.epsilon = 1.0;
  options.d = 48;
  const ProtocolPtr protocol = MakeSwProtocol(options).ValueOrDie();
  std::vector<double> values;
  Rng value_rng(5);
  for (size_t i = 0; i < 20000; ++i) values.push_back(value_rng.Uniform());
  ShardOptions shard_opts;
  shard_opts.shard_size = 1024;
  shard_opts.threads = 4;

  auto run = [&](Isa isa) {
    kernels::ForceIsaForTest(isa);
    return RunProtocolSharded(*protocol, values, 7, shard_opts)
        .ValueOrDie()
        .distribution;
  };
  const std::vector<double> scalar = run(Isa::kScalar);
  for (const Isa isa : kVectorIsas) {
    const std::vector<double> vector = run(isa);
    ASSERT_EQ(scalar.size(), vector.size());
    EXPECT_EQ(std::memcmp(scalar.data(), vector.data(),
                          scalar.size() * sizeof(double)),
              0)
        << "isa=" << kernels::IsaName(isa);
  }
}

// ---- The AVX-512 tier specifically.

// Dedicated equivalence gate for the widest tier: on hosts without
// AVX-512 the sweeps above silently clamp to AVX2, so this test makes the
// gap LOUD — a skipped run says the tier was never exercised, instead of
// a green run implying it was.
TEST(KernelDispatchTest, Avx512TierIsBitExactAgainstBothLowerTiers) {
  if (!kernels::Avx512Available()) {
    GTEST_SKIP() << "SKIP: host CPU lacks AVX-512 (need F+BW+DQ+VL); the "
                    "AVX-512 kernel tier was NOT exercised in this run";
  }
  IsaGuard guard;
  for (size_t n : kSizes) {
    const std::vector<double> a = RandomVector(n, 301 + n);
    const std::vector<double> b = RandomVector(n, 307 + n, 0.1, 2.0);
    auto run = [&](Isa isa) {
      kernels::ForceIsaForTest(isa);
      std::vector<double> y = a;
      kernels::Axpy2(y.data(), 0.4, b.data(), -0.7, a.data(), n);
      std::vector<double> out(3, 0.0);
      out[0] = kernels::Dot(a.data(), b.data(), n);
      out[1] = kernels::MulAndSum(y.data(), b.data(), n);
      kernels::WindowCombine(y.data(), n, 5, 0.03125, 1.5);
      out[2] = kernels::Sum(y.data(), n);
      return std::make_pair(out, y);
    };
    const auto scalar = run(Isa::kScalar);
    const auto avx2 = run(Isa::kAvx2);
    const auto avx512 = run(Isa::kAvx512);
    EXPECT_EQ(std::memcmp(scalar.first.data(), avx512.first.data(),
                          3 * sizeof(double)),
              0)
        << "avx512 reductions differ from scalar, n=" << n;
    EXPECT_EQ(std::memcmp(avx2.first.data(), avx512.first.data(),
                          3 * sizeof(double)),
              0)
        << "avx512 reductions differ from avx2, n=" << n;
    EXPECT_EQ(scalar.second, avx512.second) << "elementwise n=" << n;
    EXPECT_EQ(avx2.second, avx512.second) << "elementwise n=" << n;
  }
}

TEST(KernelDispatchTest, IsaNamesAndAvailability) {
  IsaGuard guard;
  EXPECT_STREQ(kernels::IsaName(Isa::kScalar), "scalar");
  EXPECT_STREQ(kernels::IsaName(Isa::kAvx2), "avx2");
  EXPECT_STREQ(kernels::IsaName(Isa::kAvx512), "avx512");
  kernels::ForceIsaForTest(Isa::kScalar);
  EXPECT_EQ(kernels::ActiveIsa(), Isa::kScalar);
  kernels::ForceIsaForTest(Isa::kAvx2);
  if (HasTwoPaths()) {
    EXPECT_EQ(kernels::ActiveIsa(), Isa::kAvx2);
  } else {
    EXPECT_EQ(kernels::ActiveIsa(), Isa::kScalar);
  }
  kernels::ForceIsaForTest(Isa::kAvx512);
  if (kernels::Avx512Available()) {
    EXPECT_EQ(kernels::ActiveIsa(), Isa::kAvx512);
  } else if (HasTwoPaths()) {
    EXPECT_EQ(kernels::ActiveIsa(), Isa::kAvx2);  // fallback ladder
  } else {
    EXPECT_EQ(kernels::ActiveIsa(), Isa::kScalar);
  }
}

// NUMDIST_FORCE_ISA (and the legacy NUMDIST_FORCE_SCALAR alias) are read
// at resolution time; ResetIsaForTest re-resolves, which lets the env
// contract be tested in-process.
TEST(KernelDispatchTest, ForceIsaEnvironmentVariable) {
  const char* old_isa = getenv("NUMDIST_FORCE_ISA");
  const std::string saved_isa = old_isa != nullptr ? old_isa : "";
  const bool had_isa = old_isa != nullptr;
  const char* old_scalar = getenv("NUMDIST_FORCE_SCALAR");
  const std::string saved_scalar = old_scalar != nullptr ? old_scalar : "";
  const bool had_scalar = old_scalar != nullptr;

  setenv("NUMDIST_FORCE_ISA", "scalar", 1);
  unsetenv("NUMDIST_FORCE_SCALAR");
  kernels::ResetIsaForTest();
  EXPECT_EQ(kernels::ActiveIsa(), Isa::kScalar);

  // Legacy alias still forces scalar...
  unsetenv("NUMDIST_FORCE_ISA");
  setenv("NUMDIST_FORCE_SCALAR", "1", 1);
  kernels::ResetIsaForTest();
  EXPECT_EQ(kernels::ActiveIsa(), Isa::kScalar);

  // ...but the new variable wins when both are set.
  setenv("NUMDIST_FORCE_ISA", "avx2", 1);
  kernels::ResetIsaForTest();
  EXPECT_EQ(kernels::ActiveIsa(),
            HasTwoPaths() ? Isa::kAvx2 : Isa::kScalar);

  // Unknown values are ignored (native resolution).
  setenv("NUMDIST_FORCE_ISA", "sse9", 1);
  unsetenv("NUMDIST_FORCE_SCALAR");
  kernels::ResetIsaForTest();
  const Isa native = kernels::ActiveIsa();
  EXPECT_EQ(native, kernels::Avx512Available()
                        ? Isa::kAvx512
                        : (HasTwoPaths() ? Isa::kAvx2 : Isa::kScalar));

  if (had_isa) {
    setenv("NUMDIST_FORCE_ISA", saved_isa.c_str(), 1);
  } else {
    unsetenv("NUMDIST_FORCE_ISA");
  }
  if (had_scalar) {
    setenv("NUMDIST_FORCE_SCALAR", saved_scalar.c_str(), 1);
  } else {
    unsetenv("NUMDIST_FORCE_SCALAR");
  }
  kernels::ResetIsaForTest();
}

}  // namespace
}  // namespace numdist
