#include "core/observation_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/em.h"
#include "core/square_wave.h"

namespace numdist {
namespace {

TEST(DenseObservationModelTest, MatchesMatrixProducts) {
  Matrix m(3, 2);
  m(0, 0) = 1.0;
  m(1, 0) = 2.0;
  m(2, 1) = 3.0;
  const DenseObservationModel model(m);
  EXPECT_EQ(model.rows(), 3u);
  EXPECT_EQ(model.cols(), 2u);
  std::vector<double> y;
  model.Apply({1.0, 2.0}, &y);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0);
  EXPECT_DOUBLE_EQ(y[2], 6.0);
  std::vector<double> xt;
  model.ApplyTranspose({1.0, 1.0, 1.0}, &xt);
  EXPECT_DOUBLE_EQ(xt[0], 3.0);
  EXPECT_DOUBLE_EQ(xt[1], 3.0);
}

TEST(BandedObservationModelTest, DecomposesSquareWaveMatrix) {
  const SquareWave sw = SquareWave::Make(1.0).ValueOrDie();
  const size_t d = 32;
  const Matrix m = sw.TransitionMatrix(d, d);
  const double background = sw.q() * (1.0 + 2.0 * sw.b()) / d;
  const BandedObservationModel banded =
      BandedObservationModel::FromDense(m, background, 1e-13);
  // The band must be a strict subset of the full matrix.
  EXPECT_LT(banded.BandEntries(), d * d);
  EXPECT_GT(banded.BandEntries(), 0u);
}

TEST(BandedObservationModelTest, ApplyMatchesDense) {
  const SquareWave sw = SquareWave::Make(1.5, 0.2).ValueOrDie();
  const size_t d = 48;
  const Matrix m = sw.TransitionMatrix(d, 64);
  const double background = sw.q() * (1.0 + 2.0 * sw.b()) / 64;
  const BandedObservationModel banded =
      BandedObservationModel::FromDense(m, background, 1e-13);
  Rng rng(1);
  std::vector<double> x(d);
  for (double& v : x) v = rng.Uniform();
  std::vector<double> dense_y = m.Multiply(x);
  std::vector<double> banded_y;
  banded.Apply(x, &banded_y);
  ASSERT_EQ(banded_y.size(), dense_y.size());
  for (size_t j = 0; j < dense_y.size(); ++j) {
    EXPECT_NEAR(banded_y[j], dense_y[j], 1e-12) << "j=" << j;
  }
}

TEST(BandedObservationModelTest, ApplyTransposeMatchesDense) {
  const SquareWave sw = SquareWave::Make(0.5).ValueOrDie();
  const size_t d = 40;
  const Matrix m = sw.TransitionMatrix(d, d);
  const double background = sw.q() * (1.0 + 2.0 * sw.b()) / d;
  const BandedObservationModel banded =
      BandedObservationModel::FromDense(m, background, 1e-13);
  Rng rng(2);
  std::vector<double> z(d);
  for (double& v : z) v = rng.Uniform();
  std::vector<double> dense = m.TransposeMultiply(z);
  std::vector<double> fast;
  banded.ApplyTranspose(z, &fast);
  for (size_t i = 0; i < d; ++i) {
    EXPECT_NEAR(fast[i], dense[i], 1e-12) << "i=" << i;
  }
}

TEST(BandedObservationModelTest, DiscreteSwBackgroundIsQ) {
  const DiscreteSquareWave dsw =
      DiscreteSquareWave::Make(1.0, 32).ValueOrDie();
  const Matrix m = dsw.TransitionMatrix();
  const BandedObservationModel banded =
      BandedObservationModel::FromDense(m, dsw.q(), 1e-13);
  // Exactly (2b+1) non-background entries per column.
  EXPECT_EQ(banded.BandEntries(), (2 * dsw.b() + 1) * 32);
}

TEST(BandedObservationModelTest, EmAgreesWithDenseEm) {
  const SquareWave sw = SquareWave::Make(1.0).ValueOrDie();
  const size_t d = 64;
  const Matrix m = sw.TransitionMatrix(d, d);
  const double background = sw.q() * (1.0 + 2.0 * sw.b()) / d;
  const BandedObservationModel banded =
      BandedObservationModel::FromDense(m, background, 1e-13);

  Rng rng(3);
  std::vector<uint64_t> counts(d);
  for (uint64_t& c : counts) c = 50 + rng.UniformInt(500);

  const EmResult dense = EstimateEm(m, counts).ValueOrDie();
  const EmResult fast = EstimateEm(banded, counts).ValueOrDie();
  ASSERT_EQ(dense.estimate.size(), fast.estimate.size());
  for (size_t i = 0; i < d; ++i) {
    EXPECT_NEAR(dense.estimate[i], fast.estimate[i], 1e-8) << "i=" << i;
  }
  EXPECT_EQ(dense.iterations, fast.iterations);
}

// ------------------------------------------------- sliding window --
//
// The analytic operator must reproduce the dense closed-form transition to
// near machine precision across the privacy/granularity grid, for both
// pipelines — it is the operator EM actually iterates with.

class SlidingWindowGridTest
    : public ::testing::TestWithParam<std::tuple<double, size_t>> {};

TEST_P(SlidingWindowGridTest, ContinuousMatchesDense) {
  const auto [eps, d] = GetParam();
  const SquareWave sw = SquareWave::Make(eps).ValueOrDie();
  const Matrix m = sw.TransitionMatrix(d, d);
  const SlidingWindowObservationModel model =
      SlidingWindowObservationModel::FromContinuous(sw, d, d);
  ASSERT_EQ(model.rows(), m.rows());
  ASSERT_EQ(model.cols(), m.cols());

  // Tolerance: both sides accumulate d rounded terms, and under
  // -march=native (NUMDIST_NATIVE=ON) the compiler may contract the
  // cursor/overlap arithmetic into FMAs, shifting each side by a few ulp —
  // 5e-12 absolute covers the grid up to d = 1024 in every build mode.
  Rng rng(101);
  std::vector<double> x(d);
  for (double& v : x) v = rng.Uniform();
  std::vector<double> fast;
  model.Apply(x, &fast);
  const std::vector<double> dense = m.Multiply(x);
  for (size_t j = 0; j < d; ++j) {
    EXPECT_NEAR(fast[j], dense[j], 5e-12) << "j=" << j;
  }

  std::vector<double> z(m.rows());
  for (double& v : z) v = rng.Uniform();
  std::vector<double> fast_t;
  model.ApplyTranspose(z, &fast_t);
  const std::vector<double> dense_t = m.TransposeMultiply(z);
  for (size_t i = 0; i < d; ++i) {
    EXPECT_NEAR(fast_t[i], dense_t[i], 5e-12) << "i=" << i;
  }
}

TEST_P(SlidingWindowGridTest, DiscreteMatchesDense) {
  const auto [eps, d] = GetParam();
  const DiscreteSquareWave dsw =
      DiscreteSquareWave::Make(eps, d).ValueOrDie();
  const Matrix m = dsw.TransitionMatrix();
  const SlidingWindowObservationModel model =
      SlidingWindowObservationModel::FromDiscrete(dsw);
  ASSERT_EQ(model.rows(), m.rows());
  ASSERT_EQ(model.cols(), m.cols());

  Rng rng(102);
  std::vector<double> x(d);
  for (double& v : x) v = rng.Uniform();
  std::vector<double> fast;
  model.Apply(x, &fast);
  const std::vector<double> dense = m.Multiply(x);
  for (size_t j = 0; j < m.rows(); ++j) {
    EXPECT_NEAR(fast[j], dense[j], 1e-12) << "j=" << j;
  }

  std::vector<double> z(m.rows());
  for (double& v : z) v = rng.Uniform();
  std::vector<double> fast_t;
  model.ApplyTranspose(z, &fast_t);
  const std::vector<double> dense_t = m.TransposeMultiply(z);
  for (size_t i = 0; i < d; ++i) {
    EXPECT_NEAR(fast_t[i], dense_t[i], 1e-12) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    EpsTimesD, SlidingWindowGridTest,
    ::testing::Combine(::testing::Values(0.5, 1.0, 4.0),
                       ::testing::Values(size_t{16}, size_t{256},
                                         size_t{1024})));

TEST(SlidingWindowModelTest, RectangularContinuousMatchesDense) {
  // d_out != d exercises the incommensurate-grid cursor paths.
  const SquareWave sw = SquareWave::Make(1.5, 0.2).ValueOrDie();
  const size_t d = 48;
  const size_t d_out = 96;
  const Matrix m = sw.TransitionMatrix(d, d_out);
  const SlidingWindowObservationModel model =
      SlidingWindowObservationModel::FromContinuous(sw, d, d_out);
  Rng rng(103);
  std::vector<double> x(d);
  for (double& v : x) v = rng.Uniform();
  std::vector<double> fast;
  model.Apply(x, &fast);
  const std::vector<double> dense = m.Multiply(x);
  for (size_t j = 0; j < d_out; ++j) {
    EXPECT_NEAR(fast[j], dense[j], 1e-12) << "j=" << j;
  }
  std::vector<double> z(d_out);
  for (double& v : z) v = rng.Uniform();
  std::vector<double> fast_t;
  model.ApplyTranspose(z, &fast_t);
  const std::vector<double> dense_t = m.TransposeMultiply(z);
  for (size_t i = 0; i < d; ++i) {
    EXPECT_NEAR(fast_t[i], dense_t[i], 1e-12) << "i=" << i;
  }
}

TEST(SlidingWindowModelTest, GrrDegenerateDiscreteBandwidth) {
  // b == 0 collapses DSW to GRR; the window is a single bucket.
  const DiscreteSquareWave dsw =
      DiscreteSquareWave::Make(1.0, 32, 0).ValueOrDie();
  const Matrix m = dsw.TransitionMatrix();
  const SlidingWindowObservationModel model =
      SlidingWindowObservationModel::FromDiscrete(dsw);
  std::vector<double> x(32, 1.0 / 32.0);
  x[7] = 0.5;
  std::vector<double> fast;
  model.Apply(x, &fast);
  const std::vector<double> dense = m.Multiply(x);
  for (size_t j = 0; j < m.rows(); ++j) {
    EXPECT_NEAR(fast[j], dense[j], 1e-14) << "j=" << j;
  }
}

TEST(SlidingWindowModelTest, EmAgreesWithDenseEm) {
  const SquareWave sw = SquareWave::Make(1.0).ValueOrDie();
  const size_t d = 64;
  const Matrix m = sw.TransitionMatrix(d, d);
  const SlidingWindowObservationModel model =
      SlidingWindowObservationModel::FromContinuous(sw, d, d);
  Rng rng(104);
  std::vector<uint64_t> counts(d);
  for (uint64_t& c : counts) c = 50 + rng.UniformInt(500);
  const EmResult dense = EstimateEm(m, counts).ValueOrDie();
  const EmResult fast = EstimateEm(model, counts).ValueOrDie();
  ASSERT_EQ(dense.estimate.size(), fast.estimate.size());
  for (size_t i = 0; i < d; ++i) {
    EXPECT_NEAR(dense.estimate[i], fast.estimate[i], 1e-8) << "i=" << i;
  }
  EXPECT_EQ(dense.iterations, fast.iterations);
}

TEST(BandedObservationModelTest, WrongBackgroundStillExact) {
  // A deliberately wrong background just makes the bands wider (whole
  // column); products must still be exact.
  const SquareWave sw = SquareWave::Make(1.0, 0.3).ValueOrDie();
  const size_t d = 16;
  const Matrix m = sw.TransitionMatrix(d, d);
  const BandedObservationModel banded =
      BandedObservationModel::FromDense(m, 12345.0, 1e-13);
  std::vector<double> x(d, 1.0 / d);
  std::vector<double> fast;
  banded.Apply(x, &fast);
  const std::vector<double> dense = m.Multiply(x);
  for (size_t j = 0; j < d; ++j) {
    EXPECT_NEAR(fast[j], dense[j], 1e-9);
  }
}

}  // namespace
}  // namespace numdist
