#include "core/sw_estimator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/histogram.h"
#include "metrics/distance.h"

namespace numdist {
namespace {

std::vector<double> BimodalValues(size_t n, Rng& rng) {
  std::vector<double> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double center = rng.Bernoulli(0.6) ? 0.3 : 0.75;
    double v = center + 0.07 * rng.Gaussian();
    if (v < 0.0) v = -v;
    if (v > 1.0) v = 2.0 - v;
    values.push_back(std::clamp(v, 0.0, 1.0));
  }
  return values;
}

TEST(SwEstimatorTest, MakeValidation) {
  SwEstimatorOptions opts;
  opts.epsilon = 0.0;
  EXPECT_FALSE(SwEstimator::Make(opts).ok());
  opts.epsilon = 1.0;
  opts.d = 1;
  EXPECT_FALSE(SwEstimator::Make(opts).ok());
  opts.d = 64;
  EXPECT_TRUE(SwEstimator::Make(opts).ok());
}

TEST(SwEstimatorTest, OutputBucketsDefaultToD) {
  SwEstimatorOptions opts;
  opts.d = 64;
  const SwEstimator est = SwEstimator::Make(opts).ValueOrDie();
  EXPECT_EQ(est.output_buckets(), 64u);
  EXPECT_EQ(est.transition().cols(), 64u);
}

TEST(SwEstimatorTest, ExplicitOutputBuckets) {
  SwEstimatorOptions opts;
  opts.d = 64;
  opts.d_out = 96;
  const SwEstimator est = SwEstimator::Make(opts).ValueOrDie();
  EXPECT_EQ(est.output_buckets(), 96u);
}

TEST(SwEstimatorTest, EmptyInputRejected) {
  SwEstimatorOptions opts;
  opts.d = 16;
  const SwEstimator est = SwEstimator::Make(opts).ValueOrDie();
  Rng rng(1);
  EXPECT_FALSE(est.EstimateDistribution({}, rng).ok());
}

TEST(SwEstimatorTest, ReconstructionIsDistribution) {
  SwEstimatorOptions opts;
  opts.epsilon = 1.0;
  opts.d = 64;
  const SwEstimator est = SwEstimator::Make(opts).ValueOrDie();
  Rng rng(2);
  const std::vector<double> values = BimodalValues(20000, rng);
  const std::vector<double> dist =
      est.EstimateDistribution(values, rng).ValueOrDie();
  EXPECT_EQ(dist.size(), 64u);
  EXPECT_TRUE(hist::IsDistribution(dist, 1e-9));
}

TEST(SwEstimatorTest, HighEpsilonRecoversShape) {
  SwEstimatorOptions opts;
  opts.epsilon = 5.0;
  opts.d = 64;
  const SwEstimator est = SwEstimator::Make(opts).ValueOrDie();
  Rng rng(3);
  const std::vector<double> values = BimodalValues(100000, rng);
  const std::vector<double> truth = hist::FromSamples(values, 64);
  const std::vector<double> dist =
      est.EstimateDistribution(values, rng).ValueOrDie();
  EXPECT_LT(WassersteinDistance(truth, dist), 0.01);
}

TEST(SwEstimatorTest, SplitPhaseApiMatchesPipeline) {
  SwEstimatorOptions opts;
  opts.epsilon = 1.0;
  opts.d = 32;
  const SwEstimator est = SwEstimator::Make(opts).ValueOrDie();
  Rng rng1(4);
  Rng rng2(4);
  const std::vector<double> values = BimodalValues(5000, rng1);
  const std::vector<double> values2 = BimodalValues(5000, rng2);
  ASSERT_EQ(values, values2);

  const std::vector<double> direct =
      est.EstimateDistribution(values, rng1).ValueOrDie();

  std::vector<double> reports;
  for (double v : values2) reports.push_back(est.PerturbOne(v, rng2));
  const EmResult manual =
      est.Reconstruct(est.Aggregate(reports)).ValueOrDie();
  ASSERT_EQ(direct.size(), manual.estimate.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_DOUBLE_EQ(direct[i], manual.estimate[i]);
  }
}

TEST(SwEstimatorTest, DiscretePipelineWorks) {
  SwEstimatorOptions opts;
  opts.epsilon = 2.0;
  opts.d = 64;
  opts.pipeline = SwEstimatorOptions::Pipeline::kBucketizeBeforeRandomize;
  const SwEstimator est = SwEstimator::Make(opts).ValueOrDie();
  Rng rng(5);
  const std::vector<double> values = BimodalValues(50000, rng);
  const std::vector<double> truth = hist::FromSamples(values, 64);
  const std::vector<double> dist =
      est.EstimateDistribution(values, rng).ValueOrDie();
  EXPECT_TRUE(hist::IsDistribution(dist, 1e-9));
  EXPECT_LT(WassersteinDistance(truth, dist), 0.05);
}

TEST(SwEstimatorTest, ContinuousAndDiscretePipelinesAgreeRoughly) {
  // Paper §5.4: R-B and B-R behave very similarly.
  Rng data_rng(6);
  const std::vector<double> values = BimodalValues(80000, data_rng);
  const std::vector<double> truth = hist::FromSamples(values, 64);

  double w1[2];
  int k = 0;
  for (auto pipeline :
       {SwEstimatorOptions::Pipeline::kRandomizeBeforeBucketize,
        SwEstimatorOptions::Pipeline::kBucketizeBeforeRandomize}) {
    SwEstimatorOptions opts;
    opts.epsilon = 2.0;
    opts.d = 64;
    opts.pipeline = pipeline;
    const SwEstimator est = SwEstimator::Make(opts).ValueOrDie();
    Rng rng(7);
    const std::vector<double> dist =
        est.EstimateDistribution(values, rng).ValueOrDie();
    w1[k++] = WassersteinDistance(truth, dist);
  }
  EXPECT_LT(std::fabs(w1[0] - w1[1]), 0.02);
}

TEST(SwEstimatorTest, EmPostUsesScaledTolerance) {
  SwEstimatorOptions opts;
  opts.epsilon = 2.0;
  opts.d = 16;
  opts.post = SwEstimatorOptions::Post::kEm;
  const SwEstimator est = SwEstimator::Make(opts).ValueOrDie();
  // Tolerance is internal; observable effect: EM converges (does not run to
  // the iteration cap) on easy data.
  Rng rng(8);
  const std::vector<double> values = BimodalValues(20000, rng);
  std::vector<double> reports;
  for (double v : values) reports.push_back(est.PerturbOne(v, rng));
  const EmResult res = est.Reconstruct(est.Aggregate(reports)).ValueOrDie();
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.iterations, opts.max_iterations);
}

TEST(SwEstimatorTest, PerturbOneDiscreteReturnsBucketIndex) {
  SwEstimatorOptions opts;
  opts.epsilon = 1.0;
  opts.d = 32;
  opts.pipeline = SwEstimatorOptions::Pipeline::kBucketizeBeforeRandomize;
  const SwEstimator est = SwEstimator::Make(opts).ValueOrDie();
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const double report = est.PerturbOne(0.5, rng);
    EXPECT_DOUBLE_EQ(report, std::floor(report));  // integral value
    EXPECT_GE(report, 0.0);
    EXPECT_LT(report, static_cast<double>(est.output_buckets()));
  }
}

TEST(SwEstimatorTest, MoreUsersImproveAccuracy) {
  Rng data_rng(10);
  const std::vector<double> big = BimodalValues(120000, data_rng);
  const std::vector<double> small(big.begin(), big.begin() + 4000);

  SwEstimatorOptions opts;
  opts.epsilon = 1.0;
  opts.d = 64;
  const SwEstimator est = SwEstimator::Make(opts).ValueOrDie();

  Rng rng_small(11);
  Rng rng_big(11);
  const std::vector<double> truth_small = hist::FromSamples(small, 64);
  const std::vector<double> truth_big = hist::FromSamples(big, 64);
  const double w1_small = WassersteinDistance(
      truth_small, est.EstimateDistribution(small, rng_small).ValueOrDie());
  const double w1_big = WassersteinDistance(
      truth_big, est.EstimateDistribution(big, rng_big).ValueOrDie());
  EXPECT_LT(w1_big, w1_small);
}

}  // namespace
}  // namespace numdist
