#include "core/sw_estimator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/histogram.h"
#include "metrics/distance.h"

namespace numdist {
namespace {

std::vector<double> BimodalValues(size_t n, Rng& rng) {
  std::vector<double> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double center = rng.Bernoulli(0.6) ? 0.3 : 0.75;
    double v = center + 0.07 * rng.Gaussian();
    if (v < 0.0) v = -v;
    if (v > 1.0) v = 2.0 - v;
    values.push_back(std::clamp(v, 0.0, 1.0));
  }
  return values;
}

TEST(SwEstimatorTest, MakeValidation) {
  SwEstimatorOptions opts;
  opts.epsilon = 0.0;
  EXPECT_FALSE(SwEstimator::Make(opts).ok());
  opts.epsilon = 1.0;
  opts.d = 1;
  EXPECT_FALSE(SwEstimator::Make(opts).ok());
  opts.d = 64;
  EXPECT_TRUE(SwEstimator::Make(opts).ok());
}

TEST(SwEstimatorTest, OutputBucketsDefaultToD) {
  SwEstimatorOptions opts;
  opts.d = 64;
  const SwEstimator est = SwEstimator::Make(opts).ValueOrDie();
  EXPECT_EQ(est.output_buckets(), 64u);
  EXPECT_EQ(est.transition().cols(), 64u);
}

TEST(SwEstimatorTest, ExplicitOutputBuckets) {
  SwEstimatorOptions opts;
  opts.d = 64;
  opts.d_out = 96;
  const SwEstimator est = SwEstimator::Make(opts).ValueOrDie();
  EXPECT_EQ(est.output_buckets(), 96u);
}

TEST(SwEstimatorTest, EmptyInputRejected) {
  SwEstimatorOptions opts;
  opts.d = 16;
  const SwEstimator est = SwEstimator::Make(opts).ValueOrDie();
  Rng rng(1);
  EXPECT_FALSE(est.EstimateDistribution({}, rng).ok());
}

TEST(SwEstimatorTest, ReconstructionIsDistribution) {
  SwEstimatorOptions opts;
  opts.epsilon = 1.0;
  opts.d = 64;
  const SwEstimator est = SwEstimator::Make(opts).ValueOrDie();
  Rng rng(2);
  const std::vector<double> values = BimodalValues(20000, rng);
  const std::vector<double> dist =
      est.EstimateDistribution(values, rng).ValueOrDie();
  EXPECT_EQ(dist.size(), 64u);
  EXPECT_TRUE(hist::IsDistribution(dist, 1e-9));
}

TEST(SwEstimatorTest, HighEpsilonRecoversShape) {
  SwEstimatorOptions opts;
  opts.epsilon = 5.0;
  opts.d = 64;
  const SwEstimator est = SwEstimator::Make(opts).ValueOrDie();
  Rng rng(3);
  const std::vector<double> values = BimodalValues(100000, rng);
  const std::vector<double> truth = hist::FromSamples(values, 64);
  const std::vector<double> dist =
      est.EstimateDistribution(values, rng).ValueOrDie();
  EXPECT_LT(WassersteinDistance(truth, dist), 0.01);
}

TEST(SwEstimatorTest, SplitPhaseApiMatchesPipeline) {
  SwEstimatorOptions opts;
  opts.epsilon = 1.0;
  opts.d = 32;
  const SwEstimator est = SwEstimator::Make(opts).ValueOrDie();
  Rng rng1(4);
  Rng rng2(4);
  const std::vector<double> values = BimodalValues(5000, rng1);
  const std::vector<double> values2 = BimodalValues(5000, rng2);
  ASSERT_EQ(values, values2);

  const std::vector<double> direct =
      est.EstimateDistribution(values, rng1).ValueOrDie();

  std::vector<double> reports;
  for (double v : values2) reports.push_back(est.PerturbOne(v, rng2));
  const EmResult manual =
      est.Reconstruct(est.Aggregate(reports)).ValueOrDie();
  ASSERT_EQ(direct.size(), manual.estimate.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_DOUBLE_EQ(direct[i], manual.estimate[i]);
  }
}

TEST(SwEstimatorTest, DiscretePipelineWorks) {
  SwEstimatorOptions opts;
  opts.epsilon = 2.0;
  opts.d = 64;
  opts.pipeline = SwEstimatorOptions::Pipeline::kBucketizeBeforeRandomize;
  const SwEstimator est = SwEstimator::Make(opts).ValueOrDie();
  Rng rng(5);
  const std::vector<double> values = BimodalValues(50000, rng);
  const std::vector<double> truth = hist::FromSamples(values, 64);
  const std::vector<double> dist =
      est.EstimateDistribution(values, rng).ValueOrDie();
  EXPECT_TRUE(hist::IsDistribution(dist, 1e-9));
  EXPECT_LT(WassersteinDistance(truth, dist), 0.05);
}

TEST(SwEstimatorTest, ContinuousAndDiscretePipelinesAgreeRoughly) {
  // Paper §5.4: R-B and B-R behave very similarly.
  Rng data_rng(6);
  const std::vector<double> values = BimodalValues(80000, data_rng);
  const std::vector<double> truth = hist::FromSamples(values, 64);

  double w1[2];
  int k = 0;
  for (auto pipeline :
       {SwEstimatorOptions::Pipeline::kRandomizeBeforeBucketize,
        SwEstimatorOptions::Pipeline::kBucketizeBeforeRandomize}) {
    SwEstimatorOptions opts;
    opts.epsilon = 2.0;
    opts.d = 64;
    opts.pipeline = pipeline;
    const SwEstimator est = SwEstimator::Make(opts).ValueOrDie();
    Rng rng(7);
    const std::vector<double> dist =
        est.EstimateDistribution(values, rng).ValueOrDie();
    w1[k++] = WassersteinDistance(truth, dist);
  }
  EXPECT_LT(std::fabs(w1[0] - w1[1]), 0.02);
}

TEST(SwEstimatorTest, EmPostUsesScaledTolerance) {
  SwEstimatorOptions opts;
  opts.epsilon = 2.0;
  opts.d = 16;
  opts.post = SwEstimatorOptions::Post::kEm;
  const SwEstimator est = SwEstimator::Make(opts).ValueOrDie();
  // Tolerance is internal; observable effect: EM converges (does not run to
  // the iteration cap) on easy data.
  Rng rng(8);
  const std::vector<double> values = BimodalValues(20000, rng);
  std::vector<double> reports;
  for (double v : values) reports.push_back(est.PerturbOne(v, rng));
  const EmResult res = est.Reconstruct(est.Aggregate(reports)).ValueOrDie();
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.iterations, opts.max_iterations);
}

TEST(SwEstimatorTest, PerturbOneDiscreteReturnsBucketIndex) {
  SwEstimatorOptions opts;
  opts.epsilon = 1.0;
  opts.d = 32;
  opts.pipeline = SwEstimatorOptions::Pipeline::kBucketizeBeforeRandomize;
  const SwEstimator est = SwEstimator::Make(opts).ValueOrDie();
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const double report = est.PerturbOne(0.5, rng);
    EXPECT_DOUBLE_EQ(report, std::floor(report));  // integral value
    EXPECT_GE(report, 0.0);
    EXPECT_LT(report, static_cast<double>(est.output_buckets()));
  }
}

TEST(SwEstimatorTest, AnalyticModelMatchesDenseTransitionBothPipelines) {
  // Reconstruction iterates the analytic sliding-window operator; the dense
  // matrix is kept for validation. They must be views of the same operator.
  for (const auto pipeline :
       {SwEstimatorOptions::Pipeline::kRandomizeBeforeBucketize,
        SwEstimatorOptions::Pipeline::kBucketizeBeforeRandomize}) {
    SwEstimatorOptions opts;
    opts.epsilon = 1.0;
    opts.d = 64;
    opts.pipeline = pipeline;
    const SwEstimator est = SwEstimator::Make(opts).ValueOrDie();
    ASSERT_EQ(est.model().rows(), est.transition().rows());
    ASSERT_EQ(est.model().cols(), est.transition().cols());
    Rng rng(77);
    std::vector<double> x(est.model().cols());
    for (double& v : x) v = rng.Uniform();
    std::vector<double> fast;
    est.model().Apply(x, &fast);
    const std::vector<double> dense = est.transition().Multiply(x);
    for (size_t j = 0; j < dense.size(); ++j) {
      // 1e-10: the stored dense matrix has defensively renormalized columns.
      EXPECT_NEAR(fast[j], dense[j], 1e-10) << "j=" << j;
    }
  }
}

TEST(SwEstimatorTest, AcceleratedReconstructionMatchesPlain) {
  Rng data_rng(21);
  const std::vector<double> values = BimodalValues(30000, data_rng);
  SwEstimatorOptions opts;
  opts.epsilon = 1.0;
  opts.d = 64;
  const SwEstimator plain_est = SwEstimator::Make(opts).ValueOrDie();
  opts.accelerate_em = true;
  const SwEstimator fast_est = SwEstimator::Make(opts).ValueOrDie();

  Rng rng_a(22);
  Rng rng_b(22);
  const std::vector<double> plain =
      plain_est.EstimateDistribution(values, rng_a).ValueOrDie();
  const std::vector<double> fast =
      fast_est.EstimateDistribution(values, rng_b).ValueOrDie();
  ASSERT_EQ(plain.size(), fast.size());
  EXPECT_TRUE(hist::IsDistribution(fast, 1e-9));
  double l1 = 0.0;
  for (size_t i = 0; i < plain.size(); ++i) {
    l1 += std::fabs(plain[i] - fast[i]);
  }
  EXPECT_LT(l1, 0.05);
}

TEST(SwEstimatorTest, MoreUsersImproveAccuracy) {
  Rng data_rng(10);
  const std::vector<double> big = BimodalValues(120000, data_rng);
  const std::vector<double> small(big.begin(), big.begin() + 4000);

  SwEstimatorOptions opts;
  opts.epsilon = 1.0;
  opts.d = 64;
  const SwEstimator est = SwEstimator::Make(opts).ValueOrDie();

  Rng rng_small(11);
  Rng rng_big(11);
  const std::vector<double> truth_small = hist::FromSamples(small, 64);
  const std::vector<double> truth_big = hist::FromSamples(big, 64);
  const double w1_small = WassersteinDistance(
      truth_small, est.EstimateDistribution(small, rng_small).ValueOrDie());
  const double w1_big = WassersteinDistance(
      truth_big, est.EstimateDistribution(big, rng_big).ValueOrDie());
  EXPECT_LT(w1_big, w1_small);
}

}  // namespace
}  // namespace numdist
