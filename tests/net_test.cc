// Event-loop transport guarantees (net/*, serve/framing.h FrameDecoder,
// serve/collector.h ServeFd):
//  - the push-mode FrameDecoder accepts/rejects EXACTLY like the pull-mode
//    ReadFrame for every stream and every adversarial chunking of it,
//  - WriteFrame emits prefix+body as one stream write,
//  - ServeFd is byte-compatible with ServeStream and adds a mid-frame
//    read deadline (idle-between-frames never times out),
//  - CollectorServer multiplexes many connections into an aggregate that
//    is byte-identical to a sequential single-session run for any
//    connection count, frame distribution, or drain path, applies
//    backpressure, and survives hostile clients losing only their own
//    connection.
#include "net/server.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/mutator.h"
#include "common/rng.h"
#include "data/datasets.h"
#include "net/client.h"
#include "net/socket.h"
#include "protocol/sharded.h"
#include "serve/collector.h"
#include "serve/framing.h"
#include "wire/wire.h"

namespace numdist {
namespace {

// ---------------------------------------------------------------------------
// Endpoint parsing

TEST(EndpointTest, ParsesAndRoundTrips) {
  auto tcp = net::ParseEndpoint("tcp:7070").ValueOrDie();
  EXPECT_EQ(tcp.kind, net::Endpoint::Kind::kTcp);
  EXPECT_EQ(tcp.host, "");
  EXPECT_EQ(tcp.port, 7070);

  auto tcp_host = net::ParseEndpoint("tcp:127.0.0.1:80").ValueOrDie();
  EXPECT_EQ(tcp_host.host, "127.0.0.1");
  EXPECT_EQ(tcp_host.port, 80);
  EXPECT_EQ(net::EndpointName(tcp_host), "tcp:127.0.0.1:80");

  auto unix_ep = net::ParseEndpoint("unix:/tmp/x.sock").ValueOrDie();
  EXPECT_EQ(unix_ep.kind, net::Endpoint::Kind::kUnix);
  EXPECT_EQ(unix_ep.path, "/tmp/x.sock");
  EXPECT_EQ(net::EndpointName(unix_ep), "unix:/tmp/x.sock");
}

TEST(EndpointTest, RejectsMalformedSpecs) {
  EXPECT_EQ(net::ParseEndpoint("http://x").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(net::ParseEndpoint("tcp:").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(net::ParseEndpoint("tcp:host:99999").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(net::ParseEndpoint("tcp:1.2.3.4:no").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(net::ParseEndpoint("unix:").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      net::ParseEndpoint("unix:/" + std::string(200, 'a')).status().code(),
      StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Pull/push decoder equivalence (the wire-compat contract of FrameDecoder)

struct DecodeOutcome {
  std::vector<std::string> frames;
  Status final;
};

DecodeOutcome PullDecode(const std::string& bytes, size_t max_bytes) {
  DecodeOutcome outcome;
  std::stringstream in(bytes);
  std::string frame;
  bool eof = false;
  while (true) {
    outcome.final = serve::ReadFrame(in, &frame, &eof, max_bytes);
    if (!outcome.final.ok() || eof) break;
    outcome.frames.push_back(frame);
  }
  return outcome;
}

DecodeOutcome PushDecode(const std::string& bytes, size_t chunk,
                         size_t max_bytes) {
  DecodeOutcome outcome;
  serve::FrameDecoder decoder(max_bytes);
  std::string frame;
  for (size_t off = 0; off < bytes.size(); off += chunk) {
    const Status fed = decoder.Feed(
        std::string_view(bytes).substr(off, std::min(chunk,
                                                     bytes.size() - off)));
    while (decoder.Next(&frame)) outcome.frames.push_back(frame);
    if (!fed.ok()) {
      outcome.final = fed;
      return outcome;
    }
  }
  while (decoder.Next(&frame)) outcome.frames.push_back(frame);
  outcome.final = decoder.AtEnd();
  return outcome;
}

void ExpectDecodersAgree(const std::string& bytes, size_t max_bytes) {
  const DecodeOutcome pull = PullDecode(bytes, max_bytes);
  // Byte-at-a-time is the most adversarial split; a few coprime chunk
  // sizes cover prefix/body straddles at every alignment.
  for (size_t chunk : {size_t{1}, size_t{2}, size_t{3}, size_t{7},
                       size_t{64}, bytes.empty() ? size_t{1} : bytes.size()}) {
    const DecodeOutcome push = PushDecode(bytes, chunk, max_bytes);
    ASSERT_EQ(pull.frames, push.frames) << "chunk=" << chunk;
    EXPECT_EQ(pull.final.code(), push.final.code()) << "chunk=" << chunk;
    EXPECT_EQ(pull.final.message(), push.final.message())
        << "chunk=" << chunk;
  }
}

std::string EncodeFrames(const std::vector<std::string>& frames) {
  std::stringstream out;
  for (const std::string& frame : frames) {
    EXPECT_TRUE(serve::WriteFrame(out, frame).ok());
  }
  return out.str();
}

TEST(FrameDecoderTest, AgreesWithReadFrameOnCleanStreams) {
  ExpectDecodersAgree("", serve::kMaxFrameBytes);
  ExpectDecodersAgree(EncodeFrames({"hello"}), serve::kMaxFrameBytes);
  ExpectDecodersAgree(EncodeFrames({"", "a", std::string(5000, 'x'), ""}),
                      serve::kMaxFrameBytes);
}

TEST(FrameDecoderTest, AgreesWithReadFrameOnEveryTruncation) {
  const std::string encoded =
      EncodeFrames({"first-frame", "", std::string(300, 'y')});
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    ExpectDecodersAgree(encoded.substr(0, cut), serve::kMaxFrameBytes);
  }
}

TEST(FrameDecoderTest, AgreesWithReadFrameOnHostilePrefixes) {
  // 4 GiB claimed up front; also hostile after a valid frame, and a
  // truncated hostile prefix (which must read as mid-prefix EOF instead).
  const std::string hostile = "\xFF\xFF\xFF\xFF";
  ExpectDecodersAgree(hostile, serve::kMaxFrameBytes);
  ExpectDecodersAgree(EncodeFrames({"ok"}) + hostile, serve::kMaxFrameBytes);
  ExpectDecodersAgree(hostile.substr(0, 2), serve::kMaxFrameBytes);
  // A frame over a small explicit limit is hostile for both decoders.
  ExpectDecodersAgree(EncodeFrames({std::string(100, 'z')}), 50);
  ExpectDecodersAgree(EncodeFrames({"ok", std::string(100, 'z')}), 50);
}

TEST(FrameDecoderTest, MidFrameReflectsPartialState) {
  serve::FrameDecoder decoder;
  EXPECT_FALSE(decoder.mid_frame());
  ASSERT_TRUE(decoder.Feed(std::string("\x05", 1)).ok());
  EXPECT_TRUE(decoder.mid_frame());  // inside the prefix
  ASSERT_TRUE(decoder.Feed(std::string("\x00\x00\x00", 3)).ok());
  EXPECT_TRUE(decoder.mid_frame());  // prefix consumed, body pending
  ASSERT_TRUE(decoder.Feed("hello").ok());
  std::string frame;
  ASSERT_TRUE(decoder.Next(&frame));
  EXPECT_EQ(frame, "hello");
  EXPECT_FALSE(decoder.mid_frame());
  EXPECT_TRUE(decoder.AtEnd().ok());
}

// ---------------------------------------------------------------------------
// WriteFrame write coalescing

class CountingBuf : public std::stringbuf {
 public:
  int writes = 0;

 protected:
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    ++writes;
    return std::stringbuf::xsputn(s, n);
  }
};

TEST(FramingTest, WriteFrameIsOneStreamWrite) {
  CountingBuf buf;
  std::ostream out(&buf);
  ASSERT_TRUE(serve::WriteFrame(out, "payload-bytes").ok());
  EXPECT_EQ(buf.writes, 1);
  // And the coalesced bytes still decode.
  std::stringstream in(buf.str());
  std::string frame;
  bool eof = false;
  ASSERT_TRUE(serve::ReadFrame(in, &frame, &eof).ok());
  EXPECT_EQ(frame, "payload-bytes");
}

// ---------------------------------------------------------------------------
// Shared fixture: deterministic report frames + the sequential reference

struct NetFixture {
  wire::MethodSpec spec;
  ProtocolPtr protocol;
  std::vector<std::string> frames;
  std::string reference_sketch;
  uint64_t total_reports = 0;
};

NetFixture MakeNetFixture(size_t num_values, size_t shard_size) {
  NetFixture fx;
  fx.spec = wire::ParseMethodSpec("sw-ems", 1.0, 32).ValueOrDie();
  fx.protocol = wire::MakeProtocolForSpec(fx.spec).ValueOrDie();
  const std::vector<double> values = GoldenRatioValues(num_values);
  const size_t num_shards = (values.size() + shard_size - 1) / shard_size;
  for (size_t i = 0; i < num_shards; ++i) {
    const size_t begin = i * shard_size;
    const size_t len = std::min(shard_size, values.size() - begin);
    Rng rng(ShardSeed(7, i));
    auto chunk = fx.protocol
                     ->EncodePerturbBatch(
                         std::span<const double>(values).subspan(begin, len),
                         rng)
                     .ValueOrDie();
    std::string frame;
    EXPECT_TRUE(
        wire::EncodeReportFrame(fx.spec, *fx.protocol, *chunk, &frame).ok());
    fx.frames.push_back(std::move(frame));
    fx.total_reports += chunk->num_reports();
  }
  auto reference = serve::CollectorSession::Make(fx.spec).ValueOrDie();
  for (const std::string& frame : fx.frames) {
    EXPECT_TRUE(reference.HandleFrame(frame).ok());
  }
  fx.reference_sketch = reference.EncodeSketch().ValueOrDie();
  return fx;
}

// ---------------------------------------------------------------------------
// ServeFd

TEST(ServeFdTest, ByteCompatibleWithServeStream) {
  const NetFixture fx = MakeNetFixture(4000, 512);
  const std::string input = EncodeFrames(fx.frames);

  auto stream_session = serve::CollectorSession::Make(fx.spec).ValueOrDie();
  std::stringstream stream_in(input);
  std::stringstream stream_out;
  ASSERT_TRUE(
      serve::ServeStream(stream_in, stream_out, &stream_session).ok());

  auto fd_session = serve::CollectorSession::Make(fx.spec).ValueOrDie();
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  std::thread writer([&, wfd = fds[1]] {
    size_t off = 0;
    while (off < input.size()) {
      const ssize_t wrote = write(wfd, input.data() + off, input.size() - off);
      ASSERT_GT(wrote, 0);
      off += static_cast<size_t>(wrote);
    }
    close(wfd);
  });
  std::stringstream fd_out;
  const Status served = serve::ServeFd(fds[0], fd_out, &fd_session);
  writer.join();
  close(fds[0]);
  ASSERT_TRUE(served.ok()) << served.message();
  EXPECT_EQ(fd_out.str(), stream_out.str());
  EXPECT_EQ(fd_session.num_reports(), fx.total_reports);
}

TEST(ServeFdTest, MidFrameStallHitsTheDeadline) {
  const NetFixture fx = MakeNetFixture(600, 512);
  const std::string input = EncodeFrames({fx.frames[0]});
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  // Half a frame, then silence: the deadline must fire as the same typed
  // OutOfRange a mid-frame EOF produces.
  ASSERT_GT(write(fds[1], input.data(), input.size() / 2), 0);
  auto session = serve::CollectorSession::Make(fx.spec).ValueOrDie();
  std::stringstream out;
  serve::ServeFdOptions options;
  options.read_timeout_ms = 50;
  const Status st = serve::ServeFd(fds[0], out, &session, options);
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
  EXPECT_NE(st.message().find("timed out"), std::string::npos)
      << st.message();
  close(fds[0]);
  close(fds[1]);
}

TEST(ServeFdTest, IdleBetweenFramesNeverTimesOut) {
  const NetFixture fx = MakeNetFixture(600, 600);
  const std::string input = EncodeFrames({fx.frames[0]});
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  std::thread writer([&, wfd = fds[1]] {
    ASSERT_EQ(write(wfd, input.data(), input.size()),
              static_cast<ssize_t>(input.size()));
    // Quiet client, many deadline periods long — legitimate, no timeout.
    usleep(200 * 1000);
    ASSERT_EQ(write(wfd, input.data(), input.size()),
              static_cast<ssize_t>(input.size()));
    close(wfd);
  });
  auto session = serve::CollectorSession::Make(fx.spec).ValueOrDie();
  std::stringstream out;
  serve::ServeFdOptions options;
  options.read_timeout_ms = 50;
  const Status st = serve::ServeFd(fds[0], out, &session, options);
  writer.join();
  close(fds[0]);
  ASSERT_TRUE(st.ok()) << st.message();
  EXPECT_EQ(session.num_reports(), 2 * 600u);
}

// ---------------------------------------------------------------------------
// CollectorServer

// Runs a server over `frames` split across `connections` MultiSender
// connections, drains it, and returns the final sketch.
std::string ServeOverConnections(const NetFixture& fx, size_t connections,
                                 net::ServerOptions options,
                                 net::ServerStats* stats_out = nullptr) {
  auto server = net::CollectorServer::Make(fx.spec, options).ValueOrDie();
  const net::Endpoint bound =
      server->AddListener(net::ParseEndpoint("tcp:0").ValueOrDie())
          .ValueOrDie();
  Status run_status;
  std::thread serving([&] { run_status = server->Run(); });
  {
    auto sender = net::MultiSender::Make(bound, connections).ValueOrDie();
    for (const std::string& frame : fx.frames) {
      EXPECT_TRUE(sender.Send(frame).ok());
    }
    EXPECT_TRUE(sender.Finish().ok());
  }
  server->RequestDrain();
  serving.join();
  EXPECT_TRUE(run_status.ok()) << run_status.message();
  EXPECT_EQ(server->num_reports(), fx.total_reports);
  if (stats_out != nullptr) *stats_out = server->stats();
  return server->EncodeSketch().ValueOrDie();
}

TEST(CollectorServerTest, AnyConnectionCountIsByteIdentical) {
  const NetFixture fx = MakeNetFixture(6000, 256);
  for (size_t connections : {size_t{1}, size_t{3}, size_t{16}}) {
    net::ServerStats stats;
    const std::string sketch =
        ServeOverConnections(fx, connections, {}, &stats);
    EXPECT_EQ(sketch, fx.reference_sketch)
        << connections << " connections";
    EXPECT_EQ(stats.connections_accepted, connections);
    EXPECT_EQ(stats.frames_absorbed, fx.frames.size());
    EXPECT_EQ(stats.connection_errors, 0u);
  }
}

TEST(CollectorServerTest, BackpressurePausesAndStillAbsorbsEverything) {
  const NetFixture fx = MakeNetFixture(6000, 128);
  net::ServerOptions options;
  options.pause_bytes = 1024;  // far below one reactor round's worth
  net::ServerStats stats;
  const std::string sketch = ServeOverConnections(fx, 2, options, &stats);
  EXPECT_EQ(sketch, fx.reference_sketch);
  EXPECT_GT(stats.pauses, 0u);
}

TEST(CollectorServerTest, ExpectFramesStopsTheServerByItself) {
  const NetFixture fx = MakeNetFixture(3000, 256);
  net::ServerOptions options;
  options.expect_frames = fx.frames.size();
  auto server = net::CollectorServer::Make(fx.spec, options).ValueOrDie();
  const net::Endpoint bound =
      server->AddListener(net::ParseEndpoint("tcp:0").ValueOrDie())
          .ValueOrDie();
  Status run_status;
  std::thread serving([&] { run_status = server->Run(); });
  auto sender = net::MultiSender::Make(bound, 4).ValueOrDie();
  for (const std::string& frame : fx.frames) {
    ASSERT_TRUE(sender.Send(frame).ok());
  }
  ASSERT_TRUE(sender.Finish().ok());
  // No RequestDrain: the frame count is the stop condition.
  serving.join();
  ASSERT_TRUE(run_status.ok()) << run_status.message();
  EXPECT_EQ(server->EncodeSketch().ValueOrDie(), fx.reference_sketch);
}

TEST(CollectorServerTest, UnixListenerIsByteIdentical) {
  const NetFixture fx = MakeNetFixture(2000, 256);
  const std::string path = testing::TempDir() + "net_test_collector.sock";
  auto server = net::CollectorServer::Make(fx.spec).ValueOrDie();
  const net::Endpoint bound =
      server->AddListener(net::ParseEndpoint("unix:" + path).ValueOrDie())
          .ValueOrDie();
  EXPECT_EQ(bound.path, path);
  Status run_status;
  std::thread serving([&] { run_status = server->Run(); });
  {
    auto sender = net::MultiSender::Make(bound, 3).ValueOrDie();
    for (const std::string& frame : fx.frames) {
      ASSERT_TRUE(sender.Send(frame).ok());
    }
    ASSERT_TRUE(sender.Finish().ok());
  }
  server->RequestDrain();
  serving.join();
  ASSERT_TRUE(run_status.ok()) << run_status.message();
  EXPECT_EQ(server->EncodeSketch().ValueOrDie(), fx.reference_sketch);
}

TEST(CollectorServerTest, WalFailureNeverAcksNonDurableFrames) {
  // An ack is a durability promise: after a WAL append failure the batch's
  // acks must be suppressed and Run must return the error, so clients
  // retransmit into the recovered log instead of retiring frames the
  // replay cannot reproduce. Deleting the segment directory out from
  // under a tiny-segment WAL makes the very first append fail at
  // rotation, after the frames were absorbed in memory.
  NetFixture fx = MakeNetFixture(600, 256);
  for (size_t i = 0; i < fx.frames.size(); ++i) {
    ASSERT_TRUE(wire::StampSequenceContext(&fx.frames[i],
                                           {.epoch = 11, .seq = i + 1})
                    .ok());
  }
  const std::string dir = testing::TempDir() + "net_wal_fail_acks";
  std::filesystem::remove_all(dir);
  net::ServerOptions options;
  options.wal_path = dir;
  options.wal.segment_bytes = 1;  // every append seals and rolls
  auto server = net::CollectorServer::Make(fx.spec, options).ValueOrDie();
  const net::Endpoint bound =
      server->AddListener(net::ParseEndpoint("tcp:0").ValueOrDie())
          .ValueOrDie();
  std::filesystem::remove_all(dir);
  Status run_status;
  std::thread serving([&] { run_status = server->Run(); });
  net::Fd client = net::Dial(bound).ValueOrDie();
  const std::string bytes = EncodeFrames(fx.frames);
  ASSERT_TRUE(net::WriteAll(client.get(), bytes).ok());
  serving.join();
  EXPECT_FALSE(run_status.ok()) << "the WAL failure must be fatal to Run";
  EXPECT_EQ(server->stats().acks_queued, 0u)
      << "no ack may cover a frame the log does not hold";
  server.reset();  // closes the connection so the read below terminates
  char buf[256];
  size_t acked_bytes = 0;
  for (;;) {
    const ssize_t got = read(client.get(), buf, sizeof(buf));
    if (got > 0) {
      acked_bytes += static_cast<size_t>(got);
      continue;
    }
    break;  // EOF or reset — nothing more is coming either way
  }
  EXPECT_EQ(acked_bytes, 0u)
      << "a non-durable frame's ack reached the client";
}

TEST(CollectorServerTest, HostileClientLosesOnlyItsOwnConnection) {
  const NetFixture fx = MakeNetFixture(2000, 256);
  auto server = net::CollectorServer::Make(fx.spec).ValueOrDie();
  const net::Endpoint bound =
      server->AddListener(net::ParseEndpoint("tcp:0").ValueOrDie())
          .ValueOrDie();
  Status run_status;
  std::thread serving([&] { run_status = server->Run(); });
  {
    // A raw connection claiming a 4 GiB frame...
    net::Fd hostile = net::Dial(bound).ValueOrDie();
    ASSERT_TRUE(net::WriteAll(hostile.get(), "\xFF\xFF\xFF\xFF").ok());
    // ...while a well-behaved sender delivers the real workload.
    auto sender = net::MultiSender::Make(bound, 2).ValueOrDie();
    for (const std::string& frame : fx.frames) {
      ASSERT_TRUE(sender.Send(frame).ok());
    }
    ASSERT_TRUE(sender.Finish().ok());
    // Give the server a moment to have rejected the hostile prefix, then
    // drain (hostile fd closes with this scope).
  }
  server->RequestDrain();
  serving.join();
  ASSERT_TRUE(run_status.ok()) << run_status.message();
  EXPECT_EQ(server->stats().connection_errors, 1u);
  EXPECT_EQ(server->stats().first_error.code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(server->EncodeSketch().ValueOrDie(), fx.reference_sketch);
}

TEST(CollectorServerTest, FuzzedHostileConnectionsCannotTouchTheSketch) {
  // Stronger hostile-client isolation: instead of one hand-built bad
  // prefix, each hostile connection streams a ByteMutator-corrupted frame
  // (the same structured mutants the fuzz harness drives through the
  // decoders) while clean senders deliver the real workload concurrently.
  // Every hostile connection must die with a typed error, and the final
  // sketch must be byte-identical to the clean reference — hostile bytes
  // cannot move counts even when they arrive over the real transport.
  const NetFixture fx = MakeNetFixture(2000, 256);

  // Pre-select mutants a CollectorSession provably rejects (a payload bit
  // flip can be a valid frame; those are not "hostile" for this test).
  std::vector<std::string> hostile_frames;
  ByteMutator mutator(0x94D049BB133111EBULL);
  auto probe = serve::CollectorSession::Make(fx.spec).ValueOrDie();
  while (hostile_frames.size() < 6) {
    std::string mutant = mutator.Mutate(fx.frames[0]);
    if (!probe.HandleFrame(mutant).ok()) {
      hostile_frames.push_back(std::move(mutant));
    }
  }

  auto server = net::CollectorServer::Make(fx.spec).ValueOrDie();
  const net::Endpoint bound =
      server->AddListener(net::ParseEndpoint("tcp:0").ValueOrDie())
          .ValueOrDie();
  Status run_status;
  std::thread serving([&] { run_status = server->Run(); });
  {
    // One raw connection per hostile mutant, properly length-framed so the
    // corruption lands in the wire decoder, not the transport prefix.
    std::vector<net::Fd> hostile;
    for (const std::string& frame : hostile_frames) {
      std::ostringstream framed;
      ASSERT_TRUE(serve::WriteFrame(framed, frame).ok());
      net::Fd fd = net::Dial(bound).ValueOrDie();
      ASSERT_TRUE(net::WriteAll(fd.get(), framed.str()).ok());
      hostile.push_back(std::move(fd));
    }
    auto sender = net::MultiSender::Make(bound, 3).ValueOrDie();
    for (const std::string& frame : fx.frames) {
      ASSERT_TRUE(sender.Send(frame).ok());
    }
    ASSERT_TRUE(sender.Finish().ok());
    // Hostile fds close with this scope.
  }
  server->RequestDrain();
  serving.join();
  ASSERT_TRUE(run_status.ok()) << run_status.message();
  EXPECT_EQ(server->stats().connection_errors, hostile_frames.size());
  EXPECT_FALSE(server->stats().first_error.ok());
  EXPECT_EQ(server->num_reports(), fx.total_reports);
  EXPECT_EQ(server->EncodeSketch().ValueOrDie(), fx.reference_sketch);
}

TEST(CollectorServerTest, SketchFramesMergeOverTheListener) {
  // Coordinator topology: two "leaf collector" sketches arrive as frames
  // over connections; the server-side aggregate must equal merging them
  // into one session directly.
  const NetFixture fx = MakeNetFixture(4000, 256);
  auto leaf_a = serve::CollectorSession::Make(fx.spec).ValueOrDie();
  auto leaf_b = serve::CollectorSession::Make(fx.spec).ValueOrDie();
  for (size_t i = 0; i < fx.frames.size(); ++i) {
    ASSERT_TRUE(((i % 2 == 0) ? leaf_a : leaf_b)
                    .HandleFrame(fx.frames[i])
                    .ok());
  }
  const std::string sketch_a = leaf_a.EncodeSketch().ValueOrDie();
  const std::string sketch_b = leaf_b.EncodeSketch().ValueOrDie();

  net::ServerOptions options;
  options.expect_frames = 2;
  auto server = net::CollectorServer::Make(fx.spec, options).ValueOrDie();
  const net::Endpoint bound =
      server->AddListener(net::ParseEndpoint("tcp:0").ValueOrDie())
          .ValueOrDie();
  Status run_status;
  std::thread serving([&] { run_status = server->Run(); });
  for (const std::string& sketch : {sketch_a, sketch_b}) {
    auto sender = net::MultiSender::Make(bound, 1).ValueOrDie();
    ASSERT_TRUE(sender.Send(sketch).ok());
    ASSERT_TRUE(sender.Finish().ok());
  }
  serving.join();
  ASSERT_TRUE(run_status.ok()) << run_status.message();
  EXPECT_EQ(server->num_reports(), fx.total_reports);
  EXPECT_EQ(server->EncodeSketch().ValueOrDie(), fx.reference_sketch);
}

}  // namespace
}  // namespace numdist
