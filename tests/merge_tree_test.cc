// Merge-tree composability (serve/collector.h): coordinators absorb other
// coordinators' sketch frames through the same HandleFrame path as leaf
// sketches, and accumulator merging is exact-integer, associative, and
// commutative — so ANY tree shape over the same shard set produces a
// byte-identical root sketch. This file proves it in-process for flat,
// binary, and lopsided-chain trees (with and without tenants); the
// real-binary 2-level pipeline lives in tests/wire_process_test.cc.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/datasets.h"
#include "protocol/sharded.h"
#include "serve/collector.h"
#include "wire/wire.h"

namespace numdist {
namespace {

wire::MethodSpec TestSpec() {
  return wire::ParseMethodSpec("sw-ems", 1.0, 32).ValueOrDie();
}

// One leaf collector per shard: absorbs its report frame, exports its
// sketch frames (per-tenant when tenants are in play).
std::vector<std::vector<std::string>> MakeLeafSketches(
    const wire::MethodSpec& spec, size_t leaves, size_t shard_size,
    uint64_t seed, const std::vector<uint32_t>& tenants) {
  auto protocol = wire::MakeProtocolForSpec(spec).ValueOrDie();
  const std::vector<double> values = GoldenRatioValues(leaves * shard_size);
  std::vector<std::vector<std::string>> sketches;
  for (size_t i = 0; i < leaves; ++i) {
    Rng rng(ShardSeed(seed, i));
    auto chunk = protocol
                     ->EncodePerturbBatch(std::span<const double>(values)
                                              .subspan(i * shard_size,
                                                       shard_size),
                                          rng)
                     .ValueOrDie();
    const uint32_t tenant =
        tenants.empty() ? wire::kDefaultTenant : tenants[i % tenants.size()];
    std::string frame;
    const Status enc =
        wire::EncodeReportFrame(spec, tenant, *protocol, *chunk, &frame);
    EXPECT_TRUE(enc.ok()) << enc.ToString();
    serve::CollectorSession leaf =
        serve::CollectorSession::Make(spec).ValueOrDie();
    EXPECT_TRUE(leaf.HandleFrame(frame).ok());
    sketches.push_back(leaf.EncodeSketches().ValueOrDie());
  }
  return sketches;
}

// One interior/root node: merges its children's sketch frames and
// re-exports its own (lossless per-tenant currency between levels).
std::vector<std::string> MergeNode(
    const wire::MethodSpec& spec,
    const std::vector<std::vector<std::string>>& children) {
  serve::CollectorSession node =
      serve::CollectorSession::Make(spec).ValueOrDie();
  for (const std::vector<std::string>& child : children) {
    for (const std::string& sketch : child) {
      const Status st = node.HandleFrame(sketch);
      EXPECT_TRUE(st.ok()) << st.ToString();
    }
  }
  return node.EncodeSketches().ValueOrDie();
}

void RunTreeShapeCheck(const std::vector<uint32_t>& tenants) {
  const wire::MethodSpec spec = TestSpec();
  const size_t leaves = 8;
  const std::vector<std::vector<std::string>> leaf_sketches =
      MakeLeafSketches(spec, leaves, /*shard_size=*/50, /*seed=*/13, tenants);

  // Flat: every leaf straight into one root.
  const std::vector<std::string> flat = MergeNode(spec, leaf_sketches);

  // Binary: 8 -> 4 -> 2 -> 1.
  std::vector<std::vector<std::string>> level = leaf_sketches;
  while (level.size() > 1) {
    std::vector<std::vector<std::string>> next;
    for (size_t i = 0; i < level.size(); i += 2) {
      next.push_back(MergeNode(spec, {level[i], level[i + 1]}));
    }
    level = next;
  }
  const std::vector<std::string> binary = level[0];

  // Lopsided chain: ((((l0+l1)+l2)+l3)+...).
  std::vector<std::string> chain = leaf_sketches[0];
  for (size_t i = 1; i < leaves; ++i) {
    chain = MergeNode(spec, {chain, leaf_sketches[i]});
  }

  // Reversed flat order (commutativity).
  std::vector<std::vector<std::string>> reversed(leaf_sketches.rbegin(),
                                                 leaf_sketches.rend());
  const std::vector<std::string> backwards = MergeNode(spec, reversed);

  EXPECT_EQ(flat, binary);
  EXPECT_EQ(flat, chain);
  EXPECT_EQ(flat, backwards);

  // The root reconstruction also matches the flat root's, bit for bit.
  serve::CollectorSession root_a =
      serve::CollectorSession::Make(spec).ValueOrDie();
  serve::CollectorSession root_b =
      serve::CollectorSession::Make(spec).ValueOrDie();
  for (const std::string& s : flat) ASSERT_TRUE(root_a.HandleFrame(s).ok());
  for (const std::string& s : binary) ASSERT_TRUE(root_b.HandleFrame(s).ok());
  EXPECT_EQ(root_a.num_reports(), leaves * 50);
  EXPECT_EQ(root_a.Reconstruct().ValueOrDie().distribution,
            root_b.Reconstruct().ValueOrDie().distribution);
}

TEST(MergeTreeTest, AnyTreeShapeYieldsByteIdenticalRootSketch) {
  RunTreeShapeCheck(/*tenants=*/{});
}

TEST(MergeTreeTest, TenantRoutingSurvivesEveryTreeShape) {
  RunTreeShapeCheck(/*tenants=*/{wire::kDefaultTenant, 4, 7});
}

// Interior nodes must forward PER-TENANT sketches: collapsing to one
// total sketch at an interior node would lose the split. The per-tenant
// states at the root equal a flat merge's.
TEST(MergeTreeTest, InteriorNodesPreserveTenantSplit) {
  const wire::MethodSpec spec = TestSpec();
  const std::vector<uint32_t> tenants = {2, 6};
  const std::vector<std::vector<std::string>> leaf_sketches =
      MakeLeafSketches(spec, /*leaves=*/4, /*shard_size=*/40, /*seed=*/23,
                       tenants);

  serve::CollectorSession flat_root =
      serve::CollectorSession::Make(spec).ValueOrDie();
  for (const auto& leaf : leaf_sketches) {
    for (const std::string& s : leaf) {
      ASSERT_TRUE(flat_root.HandleFrame(s).ok());
    }
  }
  const std::vector<std::string> left =
      MergeNode(spec, {leaf_sketches[0], leaf_sketches[1]});
  const std::vector<std::string> right =
      MergeNode(spec, {leaf_sketches[2], leaf_sketches[3]});
  serve::CollectorSession tree_root =
      serve::CollectorSession::Make(spec).ValueOrDie();
  for (const std::string& s : left) ASSERT_TRUE(tree_root.HandleFrame(s).ok());
  for (const std::string& s : right) {
    ASSERT_TRUE(tree_root.HandleFrame(s).ok());
  }

  EXPECT_EQ(tree_root.TenantIds(), flat_root.TenantIds());
  for (const uint32_t tenant : tree_root.TenantIds()) {
    const AccumulatorState via_tree =
        tree_root.ExportTenantState(tenant).ValueOrDie();
    const AccumulatorState via_flat =
        flat_root.ExportTenantState(tenant).ValueOrDie();
    EXPECT_EQ(via_tree.num_reports, via_flat.num_reports)
        << "tenant " << tenant;
    ASSERT_EQ(via_tree.tables.size(), via_flat.tables.size());
    for (size_t t = 0; t < via_tree.tables.size(); ++t) {
      EXPECT_EQ(via_tree.tables[t].counts, via_flat.tables[t].counts)
          << "tenant " << tenant << " table " << t;
    }
  }
}

}  // namespace
}  // namespace numdist
