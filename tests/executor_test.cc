// The persistent work-stealing Executor (common/executor.h): coverage for
// the scheduling machinery (every task runs exactly once, slots are dense,
// nesting cannot deadlock) and for the determinism contract the protocol
// layer builds on — a fixed-seed sharded run is byte-identical whether it
// runs serially, on a fresh pool, or on a reused shared pool, at any
// parallelism cap.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "common/executor.h"
#include "common/rng.h"
#include "core/sw_estimator.h"
#include "protocol/sharded.h"
#include "protocol/sw_protocol.h"

namespace numdist {
namespace {

TEST(ResolveThreadCountTest, ZeroMeansHardware) {
  EXPECT_GE(ResolveThreadCount(0), 1u);
  EXPECT_EQ(ResolveThreadCount(1), 1u);
  EXPECT_EQ(ResolveThreadCount(7), 7u);
}

TEST(ExecutorTest, RunsEveryTaskExactlyOnce) {
  Executor executor(4);
  for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{64}, size_t{1000}}) {
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    executor.ParallelFor(n, 0, [&](size_t task, size_t slot) {
      EXPECT_LT(task, n);
      EXPECT_LT(slot, executor.slots());
      hits[task].fetch_add(1);
    });
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "task " << i << " of " << n;
    }
  }
}

TEST(ExecutorTest, MaxParallelismCapsSlots) {
  Executor executor(8);
  std::atomic<size_t> max_slot{0};
  executor.ParallelFor(64, 2, [&](size_t, size_t slot) {
    size_t seen = max_slot.load();
    while (slot > seen && !max_slot.compare_exchange_weak(seen, slot)) {
    }
  });
  EXPECT_LT(max_slot.load(), 2u);
}

TEST(ExecutorTest, SerialWhenSingleThreaded) {
  Executor executor(1);
  size_t sum = 0;  // unsynchronized on purpose: must run on this thread
  executor.ParallelFor(100, 0, [&](size_t task, size_t slot) {
    EXPECT_EQ(slot, 0u);
    sum += task;
  });
  EXPECT_EQ(sum, 4950u);
}

TEST(ExecutorTest, NestedParallelForCompletes) {
  Executor executor(4);
  std::atomic<size_t> total{0};
  executor.ParallelFor(8, 0, [&](size_t, size_t) {
    executor.ParallelFor(16, 0,
                         [&](size_t, size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 8u * 16u);
}

TEST(ExecutorTest, SharedPoolIsReusable) {
  // Two back-to-back jobs on the shared pool; the second must see a clean
  // pool (no leftover job state).
  std::atomic<size_t> first{0};
  std::atomic<size_t> second{0};
  Executor::Shared().ParallelFor(32, 0,
                                 [&](size_t, size_t) { first.fetch_add(1); });
  Executor::Shared().ParallelFor(32, 0,
                                 [&](size_t, size_t) { second.fetch_add(1); });
  EXPECT_EQ(first.load(), 32u);
  EXPECT_EQ(second.load(), 32u);
}

// The determinism contract: fresh pool == reused pool == serial, byte
// identical, for the real sharded pipeline.
TEST(ExecutorTest, ShardedRunsAreByteIdenticalAcrossPoolConfigurations) {
  SwEstimatorOptions options;
  options.epsilon = 1.0;
  options.d = 32;
  const ProtocolPtr protocol = MakeSwProtocol(options).ValueOrDie();
  std::vector<double> values;
  Rng rng(21);
  for (size_t i = 0; i < 30000; ++i) values.push_back(rng.Uniform());

  auto run = [&](size_t threads) {
    ShardOptions opts;
    opts.shard_size = 512;  // 59 shards: plenty to steal
    opts.threads = threads;
    return RunProtocolSharded(*protocol, values, 1234, opts)
        .ValueOrDie()
        .distribution;
  };

  const std::vector<double> serial = run(1);
  // Repeated runs on the reused shared pool, with different caps; stealing
  // schedules differ run to run, results must not.
  for (size_t threads : {size_t{0}, size_t{2}, size_t{5}, size_t{2}}) {
    const std::vector<double> parallel = run(threads);
    ASSERT_EQ(serial.size(), parallel.size());
    EXPECT_EQ(std::memcmp(serial.data(), parallel.data(),
                          serial.size() * sizeof(double)),
              0)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace numdist
