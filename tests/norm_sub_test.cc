#include "postprocess/norm_sub.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/histogram.h"
#include "common/rng.h"

namespace numdist {
namespace {

TEST(NormSubTest, AlreadyValidIsUnchanged) {
  const std::vector<double> x = {0.25, 0.25, 0.5};
  const std::vector<double> out = NormSub(x);
  for (size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(out[i], x[i], 1e-12);
}

TEST(NormSubTest, ClampsNegativesAndRenormalizes) {
  const std::vector<double> out = NormSub({0.8, 0.5, -0.3});
  EXPECT_TRUE(hist::IsDistribution(out, 1e-9));
  EXPECT_DOUBLE_EQ(out[2], 0.0);
  EXPECT_GT(out[0], out[1]);
}

TEST(NormSubTest, KnownCase) {
  // x = {0.9, 0.5, -0.4}: active set {0.9, 0.5}, delta = (1 - 1.4)/2 = -0.2.
  const std::vector<double> out = NormSub({0.9, 0.5, -0.4});
  EXPECT_NEAR(out[0], 0.7, 1e-12);
  EXPECT_NEAR(out[1], 0.3, 1e-12);
  EXPECT_NEAR(out[2], 0.0, 1e-12);
}

TEST(NormSubTest, CascadingClamp) {
  // After the first shift, a small positive entry goes negative and must be
  // clamped in a later round.
  const std::vector<double> out = NormSub({2.0, 0.05, -0.5});
  EXPECT_TRUE(hist::IsDistribution(out, 1e-9));
  EXPECT_DOUBLE_EQ(out[1], 0.0);
  EXPECT_DOUBLE_EQ(out[2], 0.0);
  EXPECT_NEAR(out[0], 1.0, 1e-12);
}

TEST(NormSubTest, DeficitRaisesEntries) {
  // Sum < target: delta is positive and spread across all entries.
  const std::vector<double> out = NormSub({0.2, 0.2});
  EXPECT_NEAR(out[0], 0.5, 1e-12);
  EXPECT_NEAR(out[1], 0.5, 1e-12);
}

TEST(NormSubTest, AllNegativeInput) {
  const std::vector<double> out = NormSub({-1.0, -2.0, -3.0});
  EXPECT_TRUE(hist::IsDistribution(out, 1e-9));
  // The least-negative entry absorbs all mass.
  EXPECT_NEAR(out[0], 1.0, 1e-9);
}

TEST(NormSubTest, CustomTarget) {
  const std::vector<double> out = NormSub({1.0, 1.0}, 4.0);
  EXPECT_NEAR(out[0], 2.0, 1e-12);
  EXPECT_NEAR(out[1], 2.0, 1e-12);
}

TEST(NormSubTest, ZeroTargetGivesZeros) {
  const std::vector<double> out = NormSub({1.0, -1.0}, 0.0);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
}

TEST(NormSubTest, EmptyInput) {
  EXPECT_TRUE(NormSub({}).empty());
}

TEST(NormSubTest, MatchesIterativeFormulation) {
  Rng rng(1);
  for (int rep = 0; rep < 50; ++rep) {
    std::vector<double> x(16);
    for (double& v : x) v = rng.Uniform(-0.5, 0.7);
    const std::vector<double> fast = NormSub(x);
    const std::vector<double> iter = NormSubIterative(x);
    for (size_t i = 0; i < x.size(); ++i) {
      EXPECT_NEAR(fast[i], iter[i], 1e-9) << "rep=" << rep << " i=" << i;
    }
  }
}

TEST(NormSubTest, IsIdempotent) {
  Rng rng(2);
  std::vector<double> x(32);
  for (double& v : x) v = rng.Uniform(-0.4, 0.6);
  const std::vector<double> once = NormSub(x);
  const std::vector<double> twice = NormSub(once);
  for (size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(once[i], twice[i], 1e-12);
}

TEST(NormSubTest, IsEuclideanProjection) {
  // Projection optimality: for random valid distributions y,
  // ||x - NormSub(x)|| <= ||x - y||.
  Rng rng(3);
  std::vector<double> x(8);
  for (double& v : x) v = rng.Uniform(-0.5, 0.8);
  const std::vector<double> proj = NormSub(x);
  auto dist2 = [&](const std::vector<double>& a, const std::vector<double>& b) {
    double acc = 0.0;
    for (size_t i = 0; i < a.size(); ++i) acc += (a[i] - b[i]) * (a[i] - b[i]);
    return acc;
  };
  const double proj_dist = dist2(x, proj);
  for (int rep = 0; rep < 200; ++rep) {
    std::vector<double> y(8);
    double total = 0.0;
    for (double& v : y) {
      v = rng.Uniform();
      total += v;
    }
    for (double& v : y) v /= total;
    EXPECT_GE(dist2(x, y) + 1e-12, proj_dist);
  }
}

TEST(NormCutTest, ClampsAndRescales) {
  const std::vector<double> out = NormCut({0.5, -0.5, 1.5});
  EXPECT_DOUBLE_EQ(out[1], 0.0);
  EXPECT_NEAR(out[0] + out[2], 1.0, 1e-12);
  EXPECT_NEAR(out[2] / out[0], 3.0, 1e-12);  // ratios preserved
}

TEST(NormCutTest, AllNonPositiveGivesZeros) {
  const std::vector<double> out = NormCut({-1.0, 0.0});
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
}

}  // namespace
}  // namespace numdist
