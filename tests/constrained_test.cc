#include "hierarchy/constrained.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace numdist {
namespace {

std::vector<double> RandomNodes(const HierarchyTree& tree, Rng& rng) {
  std::vector<double> nodes(tree.NumNodes());
  for (double& v : nodes) v = rng.Uniform(-0.5, 1.5);
  return nodes;
}

TEST(ConstrainedInferenceTest, OutputIsConsistent) {
  const HierarchyTree t = HierarchyTree::Make(16, 4).ValueOrDie();
  Rng rng(1);
  const std::vector<double> noisy = RandomNodes(t, rng);
  const std::vector<double> out = ConstrainedInference(t, noisy);
  EXPECT_LT(ConsistencyResidual(t, out), 1e-10);
}

TEST(ConstrainedInferenceTest, ConsistentInputIsFixedPoint) {
  const HierarchyTree t = HierarchyTree::Make(8, 2).ValueOrDie();
  // Build an exactly consistent vector from leaves.
  std::vector<double> leaves = {0.1, 0.2, 0.05, 0.05, 0.3, 0.1, 0.15, 0.05};
  std::vector<double> nodes(t.NumNodes(), 0.0);
  for (size_t level = 0; level <= t.height(); ++level) {
    for (size_t i = 0; i < t.LevelSize(level); ++i) {
      const auto [s, e] = t.LeafSpan(level, i);
      for (size_t leaf = s; leaf < e; ++leaf) {
        nodes[t.FlatIndex(level, i)] += leaves[leaf];
      }
    }
  }
  const std::vector<double> out = ConstrainedInference(t, nodes);
  for (size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_NEAR(out[i], nodes[i], 1e-10) << "i=" << i;
  }
}

TEST(ConstrainedInferenceTest, MatchesBruteForceBinary) {
  const HierarchyTree t = HierarchyTree::Make(8, 2).ValueOrDie();
  Rng rng(2);
  for (int rep = 0; rep < 10; ++rep) {
    const std::vector<double> noisy = RandomNodes(t, rng);
    const std::vector<double> fast = ConstrainedInference(t, noisy);
    const std::vector<double> exact = ConstrainedInferenceBruteForce(t, noisy);
    for (size_t i = 0; i < fast.size(); ++i) {
      EXPECT_NEAR(fast[i], exact[i], 1e-8) << "rep=" << rep << " i=" << i;
    }
  }
}

TEST(ConstrainedInferenceTest, MatchesBruteForceTernary) {
  const HierarchyTree t = HierarchyTree::Make(9, 3).ValueOrDie();
  Rng rng(3);
  const std::vector<double> noisy = RandomNodes(t, rng);
  const std::vector<double> fast = ConstrainedInference(t, noisy);
  const std::vector<double> exact = ConstrainedInferenceBruteForce(t, noisy);
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i], exact[i], 1e-8);
  }
}

TEST(ConstrainedInferenceTest, MatchesBruteForceQuaternary) {
  const HierarchyTree t = HierarchyTree::Make(16, 4).ValueOrDie();
  Rng rng(4);
  const std::vector<double> noisy = RandomNodes(t, rng);
  const std::vector<double> fast = ConstrainedInference(t, noisy);
  const std::vector<double> exact = ConstrainedInferenceBruteForce(t, noisy);
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i], exact[i], 1e-8);
  }
}

TEST(ConstrainedInferenceTest, FixRootPinsRoot) {
  const HierarchyTree t = HierarchyTree::Make(16, 4).ValueOrDie();
  Rng rng(5);
  const std::vector<double> noisy = RandomNodes(t, rng);
  const std::vector<double> out =
      ConstrainedInference(t, noisy, /*fix_root=*/true, 1.0);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_LT(ConsistencyResidual(t, out), 1e-10);
}

TEST(ConstrainedInferenceTest, FixRootMatchesBruteForce) {
  const HierarchyTree t = HierarchyTree::Make(8, 2).ValueOrDie();
  Rng rng(6);
  for (int rep = 0; rep < 5; ++rep) {
    const std::vector<double> noisy = RandomNodes(t, rng);
    const std::vector<double> fast =
        ConstrainedInference(t, noisy, /*fix_root=*/true, 1.0);
    const std::vector<double> exact =
        ConstrainedInferenceBruteForce(t, noisy, /*fix_root=*/true, 1.0);
    for (size_t i = 0; i < fast.size(); ++i) {
      EXPECT_NEAR(fast[i], exact[i], 1e-8) << "rep=" << rep << " i=" << i;
    }
  }
}

TEST(ConstrainedInferenceTest, IsIdempotent) {
  const HierarchyTree t = HierarchyTree::Make(16, 2).ValueOrDie();
  Rng rng(7);
  const std::vector<double> noisy = RandomNodes(t, rng);
  const std::vector<double> once = ConstrainedInference(t, noisy);
  const std::vector<double> twice = ConstrainedInference(t, once);
  for (size_t i = 0; i < once.size(); ++i) {
    EXPECT_NEAR(once[i], twice[i], 1e-10);
  }
}

TEST(ConstrainedInferenceTest, IsOrthogonalProjection) {
  // Pythagoras: for any consistent vector c,
  // ||noisy - c||^2 == ||noisy - proj||^2 + ||proj - c||^2.
  const HierarchyTree t = HierarchyTree::Make(8, 2).ValueOrDie();
  Rng rng(8);
  const std::vector<double> noisy = RandomNodes(t, rng);
  const std::vector<double> proj = ConstrainedInference(t, noisy);

  // A consistent comparison vector built from random leaves.
  std::vector<double> leaves(8);
  for (double& v : leaves) v = rng.Uniform();
  std::vector<double> c(t.NumNodes(), 0.0);
  for (size_t level = 0; level <= t.height(); ++level) {
    for (size_t i = 0; i < t.LevelSize(level); ++i) {
      const auto [s, e] = t.LeafSpan(level, i);
      for (size_t leaf = s; leaf < e; ++leaf) {
        c[t.FlatIndex(level, i)] += leaves[leaf];
      }
    }
  }
  auto sqdist = [](const std::vector<double>& a, const std::vector<double>& b) {
    double acc = 0.0;
    for (size_t i = 0; i < a.size(); ++i) acc += (a[i] - b[i]) * (a[i] - b[i]);
    return acc;
  };
  EXPECT_NEAR(sqdist(noisy, c), sqdist(noisy, proj) + sqdist(proj, c), 1e-8);
}

TEST(ConstrainedInferenceTest, ReducesLeafError) {
  // With noisy per-level observations of a known distribution, constrained
  // inference should not increase leaf-level squared error (averaged).
  const HierarchyTree t = HierarchyTree::Make(64, 4).ValueOrDie();
  Rng rng(9);
  std::vector<double> leaves(64);
  for (double& v : leaves) v = rng.Uniform();
  double total = 0.0;
  for (double v : leaves) total += v;
  for (double& v : leaves) v /= total;

  double err_noisy = 0.0;
  double err_ci = 0.0;
  const int reps = 20;
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<double> nodes(t.NumNodes(), 0.0);
    for (size_t level = 0; level <= t.height(); ++level) {
      for (size_t i = 0; i < t.LevelSize(level); ++i) {
        const auto [s, e] = t.LeafSpan(level, i);
        double truth = 0.0;
        for (size_t leaf = s; leaf < e; ++leaf) truth += leaves[leaf];
        nodes[t.FlatIndex(level, i)] = truth + 0.05 * rng.Gaussian();
      }
    }
    const std::vector<double> ci = ConstrainedInference(t, nodes);
    const size_t off = t.LevelOffset(t.height());
    for (size_t leaf = 0; leaf < 64; ++leaf) {
      const double dn = nodes[off + leaf] - leaves[leaf];
      const double dc = ci[off + leaf] - leaves[leaf];
      err_noisy += dn * dn;
      err_ci += dc * dc;
    }
  }
  EXPECT_LT(err_ci, err_noisy);
}

TEST(ConsistencyResidualTest, DetectsViolations) {
  const HierarchyTree t = HierarchyTree::Make(4, 2).ValueOrDie();
  std::vector<double> nodes = {1.0, 0.5, 0.5, 0.25, 0.25, 0.25, 0.25};
  EXPECT_NEAR(ConsistencyResidual(t, nodes), 0.0, 1e-12);
  nodes[1] = 0.6;
  EXPECT_NEAR(ConsistencyResidual(t, nodes), 0.1, 1e-12);
}

}  // namespace
}  // namespace numdist
