#include "hierarchy/hh.h"

#include <gtest/gtest.h>

#include <cmath>

#include "hierarchy/constrained.h"

namespace numdist {
namespace {

std::vector<uint32_t> SkewedLeafValues(size_t n, size_t d, Rng& rng) {
  std::vector<double> weights(d);
  for (size_t i = 0; i < d; ++i) {
    weights[i] = std::exp(-static_cast<double>(i) / (d / 4.0));
  }
  DiscreteSampler sampler(weights);
  std::vector<uint32_t> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    values.push_back(static_cast<uint32_t>(sampler.Sample(rng)));
  }
  return values;
}

TEST(HhProtocolTest, MakeValidation) {
  EXPECT_FALSE(HhProtocol::Make(0.0, 16, 4).ok());
  EXPECT_FALSE(HhProtocol::Make(1.0, 15, 4).ok());
  EXPECT_TRUE(HhProtocol::Make(1.0, 16, 4).ok());
  EXPECT_TRUE(HhProtocol::Make(1.0, 64, 4).ok());
}

TEST(HhProtocolTest, RootIsAlwaysOne) {
  const HhProtocol hh = HhProtocol::Make(1.0, 16, 4).ValueOrDie();
  Rng rng(1);
  const auto values = SkewedLeafValues(5000, 16, rng);
  const std::vector<double> nodes = hh.CollectNodeEstimates(values, rng);
  EXPECT_DOUBLE_EQ(nodes[0], 1.0);
  EXPECT_EQ(nodes.size(), hh.tree().NumNodes());
}

TEST(HhProtocolTest, LevelEstimatesRoughlySumToOne) {
  // Each level's frequency estimates are produced by an (affine-debiased)
  // frequency oracle; sums are close to 1.
  const HhProtocol hh = HhProtocol::Make(2.0, 64, 4).ValueOrDie();
  Rng rng(2);
  const auto values = SkewedLeafValues(60000, 64, rng);
  const std::vector<double> nodes = hh.CollectNodeEstimates(values, rng);
  const HierarchyTree& t = hh.tree();
  for (size_t level = 1; level <= t.height(); ++level) {
    double sum = 0.0;
    for (size_t i = 0; i < t.LevelSize(level); ++i) {
      sum += nodes[t.FlatIndex(level, i)];
    }
    EXPECT_NEAR(sum, 1.0, 0.15) << "level=" << level;
  }
}

TEST(HhProtocolTest, HighEpsilonEstimatesNearTruth) {
  const size_t d = 16;
  const HhProtocol hh = HhProtocol::Make(6.0, d, 4).ValueOrDie();
  Rng rng(3);
  const auto values = SkewedLeafValues(100000, d, rng);
  std::vector<double> truth(d, 0.0);
  for (uint32_t v : values) truth[v] += 1.0 / values.size();
  const std::vector<double> nodes = hh.CollectNodeEstimates(values, rng);
  const size_t off = hh.tree().LevelOffset(hh.tree().height());
  for (size_t i = 0; i < d; ++i) {
    EXPECT_NEAR(nodes[off + i], truth[i], 0.03) << "leaf=" << i;
  }
}

TEST(HhProtocolTest, RangeQueryAfterConstrainedInference) {
  const size_t d = 64;
  const HhProtocol hh = HhProtocol::Make(3.0, d, 4).ValueOrDie();
  Rng rng(4);
  const auto values = SkewedLeafValues(150000, d, rng);
  std::vector<double> truth(d, 0.0);
  for (uint32_t v : values) truth[v] += 1.0 / values.size();

  std::vector<double> nodes = hh.CollectNodeEstimates(values, rng);
  nodes = ConstrainedInference(hh.tree(), nodes, /*fix_root=*/true);

  for (size_t lo : {0u, 10u, 32u}) {
    for (size_t hi : {16u, 40u, 64u}) {
      if (hi <= lo) continue;
      double expected = 0.0;
      for (size_t leaf = lo; leaf < hi; ++leaf) expected += truth[leaf];
      EXPECT_NEAR(TreeRangeQuery(hh.tree(), nodes, lo, hi), expected, 0.05)
          << "lo=" << lo << " hi=" << hi;
    }
  }
}

TEST(HhProtocolTest, DeterministicForFixedSeed) {
  const HhProtocol hh = HhProtocol::Make(1.0, 16, 4).ValueOrDie();
  Rng rng_data(5);
  const auto values = SkewedLeafValues(2000, 16, rng_data);
  Rng rng1(6);
  Rng rng2(6);
  const auto nodes1 = hh.CollectNodeEstimates(values, rng1);
  const auto nodes2 = hh.CollectNodeEstimates(values, rng2);
  EXPECT_EQ(nodes1, nodes2);
}

TEST(HhProtocolTest, BinaryTreeAlsoWorks) {
  const HhProtocol hh = HhProtocol::Make(1.0, 32, 2).ValueOrDie();
  Rng rng(7);
  const auto values = SkewedLeafValues(10000, 32, rng);
  const std::vector<double> nodes = hh.CollectNodeEstimates(values, rng);
  EXPECT_EQ(nodes.size(), hh.tree().NumNodes());
  EXPECT_EQ(hh.tree().height(), 5u);
}

TEST(HhProtocolTest, DefaultStrategyIsDividePopulation) {
  const HhProtocol hh = HhProtocol::Make(1.0, 16, 4).ValueOrDie();
  EXPECT_EQ(hh.strategy(), HhBudgetStrategy::kDividePopulation);
  EXPECT_DOUBLE_EQ(hh.per_report_epsilon(), 1.0);
}

TEST(HhProtocolTest, DivideBudgetSplitsEpsilonAcrossLevels) {
  const HhProtocol hh =
      HhProtocol::Make(2.0, 64, 4, HhBudgetStrategy::kDivideBudget)
          .ValueOrDie();
  EXPECT_EQ(hh.tree().height(), 3u);
  EXPECT_DOUBLE_EQ(hh.per_report_epsilon(), 2.0 / 3.0);
}

TEST(HhProtocolTest, DivideBudgetProducesFullTree) {
  const HhProtocol hh =
      HhProtocol::Make(1.0, 16, 4, HhBudgetStrategy::kDivideBudget)
          .ValueOrDie();
  Rng rng(8);
  const auto values = SkewedLeafValues(20000, 16, rng);
  const std::vector<double> nodes = hh.CollectNodeEstimates(values, rng);
  EXPECT_EQ(nodes.size(), hh.tree().NumNodes());
  EXPECT_DOUBLE_EQ(nodes[0], 1.0);
  // Every level still estimates frequencies summing to ~1.
  const HierarchyTree& t = hh.tree();
  for (size_t level = 1; level <= t.height(); ++level) {
    double sum = 0.0;
    for (size_t i = 0; i < t.LevelSize(level); ++i) {
      sum += nodes[t.FlatIndex(level, i)];
    }
    EXPECT_NEAR(sum, 1.0, 0.2) << "level=" << level;
  }
}

TEST(HhProtocolTest, DividePopulationBeatsDivideBudgetUnderLdp) {
  // The §4.2 claim, at test scale: leaf-level error of the constrained tree
  // is lower with population division.
  const size_t d = 64;
  Rng rng(9);
  const auto values = SkewedLeafValues(60000, d, rng);
  std::vector<double> truth(d, 0.0);
  for (uint32_t v : values) truth[v] += 1.0 / values.size();

  double err[2] = {0.0, 0.0};
  int k = 0;
  for (auto strategy : {HhBudgetStrategy::kDividePopulation,
                        HhBudgetStrategy::kDivideBudget}) {
    const HhProtocol hh = HhProtocol::Make(1.0, d, 4, strategy).ValueOrDie();
    for (uint64_t seed = 0; seed < 3; ++seed) {
      Rng trial_rng(100 + seed);
      std::vector<double> nodes = hh.CollectNodeEstimates(values, trial_rng);
      nodes = ConstrainedInference(hh.tree(), nodes, /*fix_root=*/true);
      const size_t off = hh.tree().LevelOffset(hh.tree().height());
      for (size_t leaf = 0; leaf < d; ++leaf) {
        const double diff = nodes[off + leaf] - truth[leaf];
        err[k] += diff * diff;
      }
    }
    ++k;
  }
  EXPECT_LT(err[0], err[1]);
}

}  // namespace
}  // namespace numdist
