// Statistical conformance tier (ctest label: statistical) for the
// reconstruction estimators: EM, EMS, SQUAREM-accelerated EM, and the
// smoothing-only ablation. Tolerances are computed from (n, d, epsilon,
// alpha) by the stats library's bounds — DKW acceptance radii in report
// space, likelihood-gap agreement radii between EM fixed points, and the
// documented channel-inversion envelope for input-space error — instead of
// per-test magic numbers. Derivations: docs/STATISTICAL_TESTING.md §3-§4.
//
// The discrete ("bucketize before randomize") pipeline is used throughout
// so the aggregated report histogram is exactly multinomial with cell
// probabilities M h (h = the exact value histogram), making the DKW radius
// rigorous with no within-bucket discretization slack.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "core/em.h"
#include "core/ems.h"
#include "core/sw_estimator.h"
#include "data/datasets.h"
#include "metrics/distance.h"
#include "stats/conformance.h"

namespace numdist {
namespace {

using stats::DkwEpsilon;
using stats::EmAgreementRadius;
using stats::kTestAlpha;
using stats::PerAssertionAlpha;
using stats::SampleBudget;

// Input-space acceptance envelope for W1(estimate, truth): the SW channel
// blurs the input with a width-2b box kernel scaled by (p - q) on top of a
// uniform q background, so report-space CDF deviations of size delta can
// hide input-space W1 deviations amplified by roughly the inverse in-window
// mass kappa = (2 b e^eps + 1) / (2 b (e^eps - 1)). The safety factor
// absorbs the non-invertible remainder (docs/STATISTICAL_TESTING.md §3);
// EM's own stopping slack enters through `delta`.
double InversionEnvelope(double epsilon, double b, double delta, size_t d,
                         double safety = 4.0) {
  const double kappa =
      (2.0 * b * std::exp(epsilon) + 1.0) / (2.0 * b * std::expm1(epsilon));
  return safety * kappa * delta + 1.0 / static_cast<double>(d);
}

struct Workload {
  SwEstimatorOptions options;
  std::vector<uint64_t> counts;   // aggregated report histogram
  std::vector<double> truth;      // exact value histogram, d buckets
  uint64_t n = 0;
};

// One shared report stream per (seed, epsilon): every estimator variant
// reconstructs from the same aggregated counts, so variant comparisons are
// exact and not confounded by fresh randomness.
Workload MakeWorkload(uint64_t seed, double epsilon, size_t d, uint64_t n) {
  Workload w;
  w.options.epsilon = epsilon;
  w.options.d = d;
  w.options.pipeline =
      SwEstimatorOptions::Pipeline::kBucketizeBeforeRandomize;
  const SwEstimator estimator = SwEstimator::Make(w.options).ValueOrDie();
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    values.push_back(SampleDataset(DatasetId::kBeta, rng));
  }
  w.truth = hist::FromSamples(values, d);
  std::vector<double> reports;
  reports.reserve(n);
  for (double v : values) reports.push_back(estimator.PerturbOne(v, rng));
  w.counts = estimator.Aggregate(reports);
  w.n = n;
  return w;
}

EmResult Reconstruct(const Workload& w, SwEstimatorOptions::Post post,
                     bool accelerate) {
  SwEstimatorOptions options = w.options;
  options.post = post;
  options.accelerate_em = accelerate;
  const SwEstimator estimator = SwEstimator::Make(options).ValueOrDie();
  return estimator.Reconstruct(w.counts).ValueOrDie();
}

// KS distance between the forward images M x and M y of two input
// distributions under the estimator's observation model.
double ForwardKs(const Workload& w, const std::vector<double>& x,
                 const std::vector<double>& y) {
  const SwEstimator estimator = SwEstimator::Make(w.options).ValueOrDie();
  return KsDistance(estimator.transition().Multiply(x),
                    estimator.transition().Multiply(y));
}

TEST(EstimatorConformanceTest, ReportHistogramWithinDkwOfForwardTruth) {
  // Channel conformance through the full pipeline: the aggregated report
  // histogram is multinomial(n, M h), so its CDF stays within the DKW
  // radius of cumsum(M h) with probability 1 - alpha.
  const double alpha = PerAssertionAlpha(kTestAlpha, 1);
  const Workload w = MakeWorkload(0xE5, 1.0, 32, SampleBudget(150000));
  const SwEstimator estimator = SwEstimator::Make(w.options).ValueOrDie();
  const std::vector<double> forward_truth =
      estimator.transition().Multiply(w.truth);
  EXPECT_LE(stats::HistogramKs(w.counts, forward_truth),
            DkwEpsilon(w.n, alpha));
}

TEST(EstimatorConformanceTest, EstimatorsConvergeWithinDerivedEnvelopes) {
  // All four estimator variants land within the derived input-space
  // envelope of the exact value histogram, and the likelihood-based ones
  // forward-fit the observed reports no worse than the truth does (up to a
  // DKW radius; EMS trades a little forward fit for smoothness, covered by
  // the envelope's 1/d term scaled through the channel).
  const double epsilon = 1.0;
  const size_t d = 32;
  const double alpha = PerAssertionAlpha(kTestAlpha, 8);
  const Workload w = MakeWorkload(0xE51, epsilon, d, SampleBudget(150000));
  const SwEstimator estimator = SwEstimator::Make(w.options).ValueOrDie();
  const double b = estimator.b();
  const double dkw = DkwEpsilon(w.n, alpha);
  const double envelope = InversionEnvelope(epsilon, b, 2.0 * dkw, d);

  const EmResult em = Reconstruct(w, SwEstimatorOptions::Post::kEm, false);
  const EmResult ems = Reconstruct(w, SwEstimatorOptions::Post::kEms, false);
  const EmResult accel = Reconstruct(w, SwEstimatorOptions::Post::kEm, true);
  const std::vector<double> smooth_only =
      SmoothingOnlyEstimate(w.counts, d);

  EXPECT_TRUE(em.converged);
  EXPECT_TRUE(ems.converged);
  EXPECT_TRUE(accel.converged);

  EXPECT_LE(WassersteinDistance(em.estimate, w.truth), envelope);
  EXPECT_LE(WassersteinDistance(ems.estimate, w.truth), envelope);
  EXPECT_LE(WassersteinDistance(accel.estimate, w.truth), envelope);
  // Smoothing-only skips the channel inversion entirely; it only de-noises,
  // so it is held to the (much looser) envelope with the no-inversion
  // residual: the raw q-floor bias survives at magnitude <= 2 b q ~ the
  // out-of-window mass (docs §3.3).
  const SquareWave sw = SquareWave::Make(epsilon).ValueOrDie();
  EXPECT_LE(WassersteinDistance(smooth_only, w.truth),
            envelope + 2.0 * b * sw.q());

  // Forward fit: the MLE fits the observed report histogram at least as
  // well as the truth does, modulo one DKW radius.
  std::vector<double> empirical(w.counts.size());
  for (size_t j = 0; j < empirical.size(); ++j) {
    empirical[j] =
        static_cast<double>(w.counts[j]) / static_cast<double>(w.n);
  }
  const double truth_fit = stats::HistogramKs(
      w.counts, estimator.transition().Multiply(w.truth));
  EXPECT_LE(KsDistance(estimator.transition().Multiply(em.estimate),
                       empirical),
            truth_fit + dkw);
  EXPECT_LE(KsDistance(estimator.transition().Multiply(accel.estimate),
                       empirical),
            truth_fit + dkw);
}

TEST(EstimatorConformanceTest, AcceleratedEmAgreesWithPlainEmProperty) {
  // Satellite property: SQUAREM-accelerated EM and plain EM converge to the
  // same fixed point across >= 5 seeds and eps in {0.5, 1, 4}. Agreement is
  // asserted in report space within the likelihood-gap radius (both stop
  // within tol of the common maximum) and in input space within the
  // channel-inversion envelope of that radius.
  const size_t d = 32;
  const uint64_t n = SampleBudget(30000, 5000);
  const std::vector<uint64_t> seeds = {0xA1, 0xA2, 0xA3, 0xA4, 0xA5};
  const std::vector<double> epsilons = {0.5, 1.0, 4.0};
  for (double epsilon : epsilons) {
    for (uint64_t seed : seeds) {
      const Workload w = MakeWorkload(seed, epsilon, d, n);
      const EmResult plain =
          Reconstruct(w, SwEstimatorOptions::Post::kEm, false);
      const EmResult accel =
          Reconstruct(w, SwEstimatorOptions::Post::kEm, true);
      ASSERT_TRUE(plain.converged) << "eps=" << epsilon << " seed=" << seed;
      ASSERT_TRUE(accel.converged) << "eps=" << epsilon << " seed=" << seed;

      // Both stopped within tol = 1e-3 e^eps (the paper's EM threshold) of
      // the shared log-likelihood maximum.
      const double tol = 1e-3 * std::exp(epsilon);
      const double radius = EmAgreementRadius(w.n, tol, tol);
      EXPECT_LE(ForwardKs(w, plain.estimate, accel.estimate), radius)
          << "eps=" << epsilon << " seed=" << seed;

      const SwEstimator estimator = SwEstimator::Make(w.options).ValueOrDie();
      EXPECT_LE(WassersteinDistance(plain.estimate, accel.estimate),
                InversionEnvelope(epsilon, estimator.b(), radius, d))
          << "eps=" << epsilon << " seed=" << seed;
    }
  }
}

TEST(EstimatorConformanceTest, ConvergenceImprovesWithSampleSize) {
  // Monotone-in-n sanity on the derived envelopes: quadrupling n must keep
  // the (shrinking) envelope satisfied — i.e. the estimator actually
  // converges, rather than saturating above the DKW floor.
  const double epsilon = 1.0;
  const size_t d = 32;
  const double alpha = PerAssertionAlpha(kTestAlpha, 2);
  for (uint64_t n : {SampleBudget(40000, 4000), SampleBudget(160000, 16000)}) {
    const Workload w = MakeWorkload(0xC0 + n, epsilon, d, n);
    const SwEstimator estimator = SwEstimator::Make(w.options).ValueOrDie();
    const EmResult ems = Reconstruct(w, SwEstimatorOptions::Post::kEms, false);
    const double envelope = InversionEnvelope(
        epsilon, estimator.b(), 2.0 * DkwEpsilon(w.n, alpha), d);
    EXPECT_LE(WassersteinDistance(ems.estimate, w.truth), envelope)
        << "n=" << n;
  }
}

}  // namespace
}  // namespace numdist
