// Wire codec guarantees (wire/wire.h, docs/WIRE_FORMAT.md):
//  - encode -> decode is the identity for report chunks and accumulator
//    sketches, across every method family x epsilon {0.5, 1, 4} x
//    d {16, 256, 1024};
//  - merging decoded sketches reproduces the bit-identical in-process
//    aggregate (and therefore the bit-identical reconstruction);
//  - malformed input — truncated at any byte, bad magic, version skew,
//    unknown enums, mismatched method/epsilon/dimension context, trailing
//    bytes, corrupted counts — is a typed error, never UB.
#include "wire/wire.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "data/datasets.h"
#include "eval/streaming.h"
#include "protocol/sharded.h"
#include "protocol/sw_protocol.h"

namespace numdist {
namespace {

// Deterministic quasi-random values in (0, 1): cheap, seedless, and
// identical on every platform.
std::vector<double> TestValues(size_t n) { return GoldenRatioValues(n); }

void ExpectSameState(const AccumulatorState& a, const AccumulatorState& b,
                     const std::string& context) {
  EXPECT_EQ(a.num_reports, b.num_reports) << context;
  ASSERT_EQ(a.tables.size(), b.tables.size()) << context;
  for (size_t t = 0; t < a.tables.size(); ++t) {
    EXPECT_EQ(a.tables[t].n, b.tables[t].n) << context << " table " << t;
    EXPECT_EQ(a.tables[t].counts, b.tables[t].counts)
        << context << " table " << t;
  }
}

// The method family grid the property tests sweep. All of 16/256/1024 are
// powers of 4, so the HH tree constraint d = beta^h holds throughout; 16
// bins divide all three granularities.
std::vector<wire::MethodSpec> SpecsFor(double epsilon, uint32_t d) {
  std::vector<wire::MethodSpec> specs;
  for (const char* name :
       {"sw-ems", "sw-em", "cfo-16", "cfo-grr-16", "cfo-olh-16", "cfo-oue-16",
        "hh", "hh-admm", "haar-hrr"}) {
    specs.push_back(wire::ParseMethodSpec(name, epsilon, d).ValueOrDie());
  }
  return specs;
}

TEST(WireRoundTrip, ChunkAndSketchIdentityAcrossMethodsEpsilonsAndD) {
  const std::vector<double> values = TestValues(400);
  const std::span<const double> half1(values.data(), 200);
  const std::span<const double> half2(values.data() + 200, 200);

  for (const double epsilon : {0.5, 1.0, 4.0}) {
    for (const uint32_t d : {16u, 256u, 1024u}) {
      for (const wire::MethodSpec& spec : SpecsFor(epsilon, d)) {
        const std::string context =
            wire::MethodSpecName(spec) + " eps=" + std::to_string(epsilon) +
            " d=" + std::to_string(d);
        auto protocol = wire::MakeProtocolForSpec(spec).ValueOrDie();

        // Two chunks from fixed client streams.
        Rng rng1(ShardSeed(9, 0)), rng2(ShardSeed(9, 1));
        auto chunk1 = protocol->EncodePerturbBatch(half1, rng1).ValueOrDie();
        auto chunk2 = protocol->EncodePerturbBatch(half2, rng2).ValueOrDie();

        // Reference: absorb both chunks directly.
        auto direct = protocol->MakeAccumulator();
        ASSERT_TRUE(direct->Absorb(*chunk1).ok()) << context;
        ASSERT_TRUE(direct->Absorb(*chunk2).ok()) << context;

        // Property 1: chunk encode -> decode -> absorb == direct absorb.
        auto via_frames = protocol->MakeAccumulator();
        for (const ReportChunk* chunk : {chunk1.get(), chunk2.get()}) {
          std::string frame;
          ASSERT_TRUE(
              wire::EncodeReportFrame(spec, *protocol, *chunk, &frame).ok())
              << context;
          auto decoded = wire::DecodeReportFrame(spec, *protocol,
                                                 wire::FrameBytes(frame));
          ASSERT_TRUE(decoded.ok()) << context << ": "
                                    << decoded.status().ToString();
          ASSERT_TRUE(via_frames->Absorb(**decoded).ok()) << context;
        }
        ExpectSameState(direct->ExportState(), via_frames->ExportState(),
                        context + " [report frames]");

        // Property 2: sketch encode -> decode is the identity.
        std::string sketch;
        ASSERT_TRUE(wire::EncodeSketchFrame(spec, *direct, &sketch).ok())
            << context;
        auto imported = wire::DecodeSketchFrame(spec, *protocol,
                                                wire::FrameBytes(sketch));
        ASSERT_TRUE(imported.ok()) << context << ": "
                                   << imported.status().ToString();
        ExpectSameState(direct->ExportState(), (*imported)->ExportState(),
                        context + " [sketch frame]");

        // Property 3: merging sketches that crossed the wire reproduces
        // the in-process aggregate exactly.
        auto shard1 = protocol->MakeAccumulator();
        auto shard2 = protocol->MakeAccumulator();
        ASSERT_TRUE(shard1->Absorb(*chunk1).ok()) << context;
        ASSERT_TRUE(shard2->Absorb(*chunk2).ok()) << context;
        std::string frame1, frame2;
        ASSERT_TRUE(wire::EncodeSketchFrame(spec, *shard1, &frame1).ok());
        ASSERT_TRUE(wire::EncodeSketchFrame(spec, *shard2, &frame2).ok());
        auto merged = wire::DecodeSketchFrame(spec, *protocol,
                                              wire::FrameBytes(frame1))
                          .ValueOrDie();
        auto other = wire::DecodeSketchFrame(spec, *protocol,
                                             wire::FrameBytes(frame2))
                         .ValueOrDie();
        ASSERT_TRUE(merged->Merge(*other).ok()) << context;
        ExpectSameState(direct->ExportState(), merged->ExportState(),
                        context + " [sketch merge]");
      }
    }
  }
}

TEST(WireRoundTrip, DiscretePipelineChunksSurviveTheWire) {
  SwEstimatorOptions options;
  options.epsilon = 1.0;
  options.d = 64;
  options.pipeline = SwEstimatorOptions::Pipeline::kBucketizeBeforeRandomize;
  auto protocol = MakeSwProtocol(options).ValueOrDie();
  const auto spec = wire::ParseMethodSpec("sw-ems", 1.0, 64).ValueOrDie();

  const std::vector<double> values = TestValues(500);
  Rng rng(77);
  auto chunk = protocol->EncodePerturbBatch(values, rng).ValueOrDie();
  std::string frame;
  ASSERT_TRUE(wire::EncodeReportFrame(spec, *protocol, *chunk, &frame).ok());
  auto decoded =
      wire::DecodeReportFrame(spec, *protocol, wire::FrameBytes(frame));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();

  auto direct = protocol->MakeAccumulator();
  auto via_wire = protocol->MakeAccumulator();
  ASSERT_TRUE(direct->Absorb(*chunk).ok());
  ASSERT_TRUE(via_wire->Absorb(**decoded).ok());
  ExpectSameState(direct->ExportState(), via_wire->ExportState(), "discrete");

  // A continuous-pipeline endpoint must reject the discrete chunk.
  SwEstimatorOptions continuous = options;
  continuous.pipeline = SwEstimatorOptions::Pipeline::kRandomizeBeforeBucketize;
  auto continuous_protocol = MakeSwProtocol(continuous).ValueOrDie();
  auto rejected = wire::DecodeReportFrame(spec, *continuous_protocol,
                                          wire::FrameBytes(frame));
  EXPECT_FALSE(rejected.ok());
}

TEST(WireRoundTrip, ReconstructionAfterTheWireIsBitIdentical) {
  const std::vector<double> values = TestValues(20000);
  for (const char* name : {"sw-ems", "cfo-olh-16"}) {
    const auto spec = wire::ParseMethodSpec(name, 1.0, 64).ValueOrDie();
    auto protocol = wire::MakeProtocolForSpec(spec).ValueOrDie();

    // In-process sharded reference.
    ShardOptions opts;
    opts.shard_size = 4096;
    opts.threads = 2;
    auto reference = AccumulateSharded(*protocol, values, 7, opts).ValueOrDie();
    auto reference_out = protocol->Reconstruct(*reference).ValueOrDie();

    // The same chunks, each crossing the wire as a report frame into one
    // of two "collector" accumulators, whose sketches then cross the wire
    // to a "coordinator".
    const size_t num_shards = (values.size() + opts.shard_size - 1) /
                              opts.shard_size;
    auto collector0 = protocol->MakeAccumulator();
    auto collector1 = protocol->MakeAccumulator();
    for (size_t i = 0; i < num_shards; ++i) {
      const size_t begin = i * opts.shard_size;
      const size_t len = std::min(opts.shard_size, values.size() - begin);
      Rng rng(ShardSeed(7, i));
      auto chunk = protocol
                       ->EncodePerturbBatch(
                           std::span<const double>(values).subspan(begin, len),
                           rng)
                       .ValueOrDie();
      std::string frame;
      ASSERT_TRUE(
          wire::EncodeReportFrame(spec, *protocol, *chunk, &frame).ok());
      auto decoded =
          wire::DecodeReportFrame(spec, *protocol, wire::FrameBytes(frame))
              .ValueOrDie();
      Accumulator& target = (i % 2 == 0) ? *collector0 : *collector1;
      ASSERT_TRUE(target.Absorb(*decoded).ok());
    }
    std::string sketch0, sketch1;
    ASSERT_TRUE(wire::EncodeSketchFrame(spec, *collector0, &sketch0).ok());
    ASSERT_TRUE(wire::EncodeSketchFrame(spec, *collector1, &sketch1).ok());
    auto coordinator =
        wire::DecodeSketchFrame(spec, *protocol, wire::FrameBytes(sketch0))
            .ValueOrDie();
    auto remote =
        wire::DecodeSketchFrame(spec, *protocol, wire::FrameBytes(sketch1))
            .ValueOrDie();
    ASSERT_TRUE(coordinator->Merge(*remote).ok());
    auto wire_out = protocol->Reconstruct(*coordinator).ValueOrDie();

    ASSERT_EQ(reference_out.distribution.size(), wire_out.distribution.size());
    EXPECT_EQ(0, std::memcmp(reference_out.distribution.data(),
                             wire_out.distribution.data(),
                             wire_out.distribution.size() * sizeof(double)))
        << name;
  }
}

TEST(WireRoundTrip, SnapshotFramesMergeBitIdentically) {
  SwEstimatorOptions options;
  options.epsilon = 1.0;
  options.d = 64;
  auto shard = StreamingAggregator::Make(options).ValueOrDie();
  Rng rng(5);
  for (double v : TestValues(4000)) {
    shard.Accept(shard.estimator().PerturbOne(v, rng));
  }

  std::string frame;
  ASSERT_TRUE(wire::EncodeSnapshotFrame(1.0, shard, &frame).ok());
  const auto info = wire::PeekFrame(wire::FrameBytes(frame)).ValueOrDie();
  EXPECT_EQ(info.type, wire::FrameType::kSnapshot);
  EXPECT_EQ(info.snapshot_epsilon, 1.0);
  EXPECT_EQ(info.snapshot_d, 64u);
  EXPECT_FALSE(info.snapshot_discrete);
  EXPECT_EQ(info.snapshot_buckets, shard.counts().size());

  auto merged = StreamingAggregator::Make(options).ValueOrDie();
  ASSERT_TRUE(
      wire::DecodeSnapshotFrameInto(1.0, wire::FrameBytes(frame), &merged)
          .ok());
  EXPECT_EQ(shard.counts(), merged.counts());
  EXPECT_EQ(shard.count(), merged.count());

  // Epsilon group mismatch is refused outright.
  auto other = StreamingAggregator::Make(options).ValueOrDie();
  EXPECT_FALSE(
      wire::DecodeSnapshotFrameInto(2.0, wire::FrameBytes(frame), &other)
          .ok());
  EXPECT_EQ(other.count(), 0u);

  // So is a structurally different estimator, even at the same epsilon:
  // a different input granularity or the other report pipeline.
  SwEstimatorOptions other_d = options;
  other_d.d = 32;
  auto mismatched_d = StreamingAggregator::Make(other_d).ValueOrDie();
  EXPECT_FALSE(wire::DecodeSnapshotFrameInto(1.0, wire::FrameBytes(frame),
                                             &mismatched_d)
                   .ok());
  SwEstimatorOptions other_pipeline = options;
  other_pipeline.pipeline =
      SwEstimatorOptions::Pipeline::kBucketizeBeforeRandomize;
  auto mismatched_pipeline =
      StreamingAggregator::Make(other_pipeline).ValueOrDie();
  EXPECT_FALSE(wire::DecodeSnapshotFrameInto(1.0, wire::FrameBytes(frame),
                                             &mismatched_pipeline)
                   .ok());
  EXPECT_EQ(mismatched_pipeline.count(), 0u);
}

TEST(WireSpec, ParseMethodSpecCoversTheCliNames) {
  EXPECT_EQ(wire::ParseMethodSpec("sw-ems", 1.0, 64)->method,
            wire::MethodId::kSwEms);
  EXPECT_EQ(wire::ParseMethodSpec("cfo-32", 1.0, 64)->param, 32u);
  EXPECT_EQ(wire::ParseMethodSpec("cfo-grr-8", 1.0, 64)->method,
            wire::MethodId::kCfoGrr);
  EXPECT_EQ(wire::ParseMethodSpec("cfo-olh-16", 1.0, 64)->method,
            wire::MethodId::kCfoOlh);
  EXPECT_EQ(wire::ParseMethodSpec("cfo-oue-16", 1.0, 64)->method,
            wire::MethodId::kCfoOue);
  EXPECT_EQ(wire::ParseMethodSpec("hh", 1.0, 64)->param, 4u);
  EXPECT_EQ(wire::ParseMethodSpec("hh-admm", 1.0, 64)->method,
            wire::MethodId::kHhAdmm);
  EXPECT_EQ(wire::ParseMethodSpec("haar-hrr", 1.0, 64)->method,
            wire::MethodId::kHaarHrr);
  EXPECT_FALSE(wire::ParseMethodSpec("sw", 1.0, 64).ok());
  EXPECT_FALSE(wire::ParseMethodSpec("cfo-", 1.0, 64).ok());
  EXPECT_FALSE(wire::ParseMethodSpec("cfo-12x", 1.0, 64).ok());
  // The bin-count ceiling must hold for every digit count.
  EXPECT_FALSE(wire::ParseMethodSpec("cfo-grr-100001", 1.0, 64).ok());
  EXPECT_FALSE(wire::ParseMethodSpec("cfo-grr-999999", 1.0, 64).ok());
  EXPECT_FALSE(
      wire::ParseMethodSpec("cfo-grr-99999999999999999999", 1.0, 64).ok());
  EXPECT_EQ(wire::ParseMethodSpec("cfo-grr-100000", 1.0, 64)->param, 100000u);
  // Round trip through the display name.
  for (const char* name : {"sw-ems", "cfo-16", "cfo-olh-32", "hh-admm"}) {
    EXPECT_EQ(wire::MethodSpecName(*wire::ParseMethodSpec(name, 1.0, 64)),
              name);
  }
}

// ---------------------------------------------------------------------------
// Malformed input. A small SW frame keeps the truncation sweep cheap.

class WireRejectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_ = wire::ParseMethodSpec("sw-ems", 1.0, 16).ValueOrDie();
    protocol_ = wire::MakeProtocolForSpec(spec_).ValueOrDie();
    const std::vector<double> values = TestValues(8);
    Rng rng(3);
    chunk_ = protocol_->EncodePerturbBatch(values, rng).ValueOrDie();
    ASSERT_TRUE(wire::EncodeReportFrame(spec_, *protocol_, *chunk_,
                                        &report_frame_)
                    .ok());
    acc_ = protocol_->MakeAccumulator();
    ASSERT_TRUE(acc_->Absorb(*chunk_).ok());
    ASSERT_TRUE(wire::EncodeSketchFrame(spec_, *acc_, &sketch_frame_).ok());
  }

  Status DecodeReport(const std::string& frame) {
    return wire::DecodeReportFrame(spec_, *protocol_, wire::FrameBytes(frame))
        .status();
  }
  Status DecodeSketch(const std::string& frame) {
    return wire::DecodeSketchFrame(spec_, *protocol_, wire::FrameBytes(frame))
        .status();
  }

  wire::MethodSpec spec_;
  ProtocolPtr protocol_;
  std::unique_ptr<ReportChunk> chunk_;
  std::unique_ptr<Accumulator> acc_;
  std::string report_frame_;
  std::string sketch_frame_;
};

TEST_F(WireRejectionTest, EveryTruncationIsATypedError) {
  for (size_t len = 0; len < report_frame_.size(); ++len) {
    const Status st = DecodeReport(report_frame_.substr(0, len));
    EXPECT_FALSE(st.ok()) << "report frame truncated to " << len << " bytes";
  }
  for (size_t len = 0; len < sketch_frame_.size(); ++len) {
    const Status st = DecodeSketch(sketch_frame_.substr(0, len));
    EXPECT_FALSE(st.ok()) << "sketch frame truncated to " << len << " bytes";
  }
}

TEST_F(WireRejectionTest, BadMagicVersionSkewFlagsAndFrameType) {
  std::string frame = report_frame_;
  frame[0] = static_cast<char>(frame[0] ^ 0xFF);
  Status st = DecodeReport(frame);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("magic"), std::string::npos);

  frame = report_frame_;
  frame[4] = 2;  // version low byte
  st = DecodeReport(frame);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(st.message().find("version"), std::string::npos);

  frame = report_frame_;
  frame[7] = 1;  // flags must be zero in v1
  EXPECT_FALSE(DecodeReport(frame).ok());

  frame = report_frame_;
  frame[6] = 9;  // unknown frame type
  EXPECT_FALSE(DecodeReport(frame).ok());
  EXPECT_FALSE(wire::PeekFrame(wire::FrameBytes(frame)).ok());

  // Right preamble, wrong frame kind for the call.
  EXPECT_FALSE(DecodeReport(sketch_frame_).ok());
  EXPECT_FALSE(DecodeSketch(report_frame_).ok());
  StreamingAggregator agg =
      StreamingAggregator::Make({.epsilon = 1.0, .d = 16}).ValueOrDie();
  EXPECT_FALSE(wire::DecodeSnapshotFrameInto(
                   1.0, wire::FrameBytes(report_frame_), &agg)
                   .ok());
}

TEST_F(WireRejectionTest, UnknownMethodIdIsRejected) {
  std::string frame = report_frame_;
  frame[8] = 99;  // method id byte
  EXPECT_FALSE(DecodeReport(frame).ok());
  EXPECT_FALSE(wire::PeekFrame(wire::FrameBytes(frame)).ok());
}

TEST_F(WireRejectionTest, ContextMismatchesAreRejected) {
  // Wrong method at the endpoint.
  const auto em_spec = wire::ParseMethodSpec("sw-em", 1.0, 16).ValueOrDie();
  auto em_protocol = wire::MakeProtocolForSpec(em_spec).ValueOrDie();
  Status st = wire::DecodeReportFrame(em_spec, *em_protocol,
                                      wire::FrameBytes(report_frame_))
                  .status();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("method"), std::string::npos);

  // Wrong epsilon (bit-exact comparison).
  const auto eps_spec = wire::ParseMethodSpec("sw-ems", 2.0, 16).ValueOrDie();
  auto eps_protocol = wire::MakeProtocolForSpec(eps_spec).ValueOrDie();
  st = wire::DecodeReportFrame(eps_spec, *eps_protocol,
                               wire::FrameBytes(report_frame_))
           .status();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("epsilon"), std::string::npos);

  // Wrong granularity.
  const auto d_spec = wire::ParseMethodSpec("sw-ems", 1.0, 32).ValueOrDie();
  auto d_protocol = wire::MakeProtocolForSpec(d_spec).ValueOrDie();
  st = wire::DecodeSketchFrame(d_spec, *d_protocol,
                               wire::FrameBytes(sketch_frame_))
           .status();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("granularity"), std::string::npos);
}

TEST_F(WireRejectionTest, TrailingBytesAreRejected) {
  Status st = DecodeReport(report_frame_ + std::string(1, '\0'));
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("trailing"), std::string::npos);
  st = DecodeSketch(sketch_frame_ + std::string(3, 'x'));
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("trailing"), std::string::npos);
}

TEST_F(WireRejectionTest, CorruptedSketchCountsAreRejected) {
  // Sketch payload layout: preamble (8) + method block (17) + num_reports
  // (8) + table count (4) + table n (8) + length (8) puts the first i64
  // count at offset 53. Forcing its sign bit makes it negative, which the
  // SW import integrity checks must refuse.
  ASSERT_GT(sketch_frame_.size(), 61u);
  std::string frame = sketch_frame_;
  frame[60] = static_cast<char>(0x80);
  EXPECT_FALSE(DecodeSketch(frame).ok());
}

TEST_F(WireRejectionTest, PoisonedCfoCountsAreRejected) {
  // CFO sketch cells are per-user 0/1 contributions, so any imported
  // count outside [0, n] is corruption, not data.
  const auto spec = wire::ParseMethodSpec("cfo-grr-16", 1.0, 16).ValueOrDie();
  auto protocol = wire::MakeProtocolForSpec(spec).ValueOrDie();
  Rng rng(4);
  auto chunk = protocol->EncodePerturbBatch(TestValues(50), rng).ValueOrDie();
  auto acc = protocol->MakeAccumulator();
  ASSERT_TRUE(acc->Absorb(*chunk).ok());

  AccumulatorState negative = acc->ExportState();
  negative.tables[0].counts[0] = -1;
  EXPECT_FALSE(protocol->MakeAccumulator()->ImportState(negative).ok());

  AccumulatorState oversized = acc->ExportState();
  oversized.tables[0].counts[0] =
      static_cast<int64_t>(oversized.num_reports) + 1;
  EXPECT_FALSE(protocol->MakeAccumulator()->ImportState(oversized).ok());

  // The untouched export still imports cleanly.
  EXPECT_TRUE(protocol->MakeAccumulator()->ImportState(acc->ExportState())
                  .ok());
}

TEST_F(WireRejectionTest, PoisonedHierarchyCountsAreRejected) {
  // HH level tables are categorical FO counts in [0, n]; Haar level
  // tables are signed correlations in [-n, n]. Anything outside the band
  // is corruption.
  for (const char* name : {"hh", "haar-hrr"}) {
    const auto spec = wire::ParseMethodSpec(name, 1.0, 16).ValueOrDie();
    auto protocol = wire::MakeProtocolForSpec(spec).ValueOrDie();
    Rng rng(6);
    auto chunk =
        protocol->EncodePerturbBatch(TestValues(50), rng).ValueOrDie();
    auto acc = protocol->MakeAccumulator();
    ASSERT_TRUE(acc->Absorb(*chunk).ok()) << name;

    // Find a level that received reports and push a count out of band.
    AccumulatorState oversized = acc->ExportState();
    for (AccumulatorTable& table : oversized.tables) {
      if (table.n > 0) {
        table.counts[0] = static_cast<int64_t>(table.n) + 1;
        break;
      }
    }
    EXPECT_FALSE(protocol->MakeAccumulator()->ImportState(oversized).ok())
        << name;

    if (std::string(name) == "hh") {
      AccumulatorState negative = acc->ExportState();
      negative.tables[0].counts[0] = -1;
      EXPECT_FALSE(protocol->MakeAccumulator()->ImportState(negative).ok())
          << name;
    }

    // The untouched export still imports cleanly.
    EXPECT_TRUE(
        protocol->MakeAccumulator()->ImportState(acc->ExportState()).ok())
        << name;
  }
}

TEST_F(WireRejectionTest, NonFiniteReportsAreRejected) {
  // A NaN report would sail through the continuous pipeline's clamp (NaN
  // comparisons are all false) into a float->index cast that is UB, so
  // the decoder must refuse it at the trust boundary. Report payload
  // layout: preamble (8) + method block (17) + pipeline flag (1) +
  // output buckets (4) + count (8) puts the first f64 at offset 38.
  ASSERT_GT(report_frame_.size(), 46u);
  std::string frame = report_frame_;
  const uint64_t nan_bits = 0x7FF8000000000000ULL;
  for (size_t i = 0; i < 8; ++i) {
    frame[38 + i] = static_cast<char>((nan_bits >> (8 * i)) & 0xFF);
  }
  const Status st = DecodeReport(frame);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("non-finite"), std::string::npos);
}

TEST_F(WireRejectionTest, WrappingCountSumsAreRejected) {
  // Counts whose u64 sum wraps mod 2^64 back onto the report count must
  // not pass the import integrity checks: each addition is
  // overflow-checked, so "sum == n via wraparound" is a typed error, not
  // an accepted state.
  AccumulatorState state = acc_->ExportState();
  ASSERT_EQ(state.tables.size(), 1u);
  ASSERT_GE(state.tables[0].counts.size(), 5u);
  const uint64_t n = state.num_reports;
  std::fill(state.tables[0].counts.begin(), state.tables[0].counts.end(),
            int64_t{0});
  // Four 2^62 terms sum to 2^64 ≡ 0, then + n lands exactly on n.
  for (size_t i = 0; i < 4; ++i) {
    state.tables[0].counts[i] = int64_t{1} << 62;
  }
  state.tables[0].counts[4] = static_cast<int64_t>(n);
  auto fresh = protocol_->MakeAccumulator();
  EXPECT_FALSE(fresh->ImportState(state).ok());

  // Same guard on the streaming-count merge path.
  StreamingAggregator agg =
      StreamingAggregator::Make({.epsilon = 1.0, .d = 16}).ValueOrDie();
  std::vector<uint64_t> counts(agg.counts().size(), 0);
  ASSERT_GE(counts.size(), 3u);
  counts[0] = uint64_t{1} << 63;
  counts[1] = uint64_t{1} << 63;
  counts[2] = 5;
  EXPECT_FALSE(agg.MergeCounts(counts, 5).ok());
  EXPECT_EQ(agg.count(), 0u);
}

TEST_F(WireRejectionTest, CorruptedSnapshotCountsAreRejected) {
  SwEstimatorOptions options;
  options.epsilon = 1.0;
  options.d = 16;
  auto shard = StreamingAggregator::Make(options).ValueOrDie();
  Rng rng(11);
  for (double v : TestValues(200)) {
    shard.Accept(shard.estimator().PerturbOne(v, rng));
  }
  std::string frame;
  ASSERT_TRUE(wire::EncodeSnapshotFrame(1.0, shard, &frame).ok());
  // Snapshot layout: preamble (8) + epsilon (8) + d (4) + pipeline (1) +
  // buckets (4) + count (8) puts the first bucket count at offset 33;
  // bump it so the counts no longer sum to the report count.
  std::string corrupt = frame;
  corrupt[33] = static_cast<char>(corrupt[33] + 1);
  auto target = StreamingAggregator::Make(options).ValueOrDie();
  EXPECT_FALSE(
      wire::DecodeSnapshotFrameInto(1.0, wire::FrameBytes(corrupt), &target)
          .ok());
  EXPECT_EQ(target.count(), 0u);
}

// ---------------------------------------------------------------------------
// Sequence context and ack frames: the exactly-once substrate under client
// retry (net/retry.h). Stamping must be payload-preserving, acks must
// round-trip bit-exactly, and every malformed shape is a typed error.

TEST_F(WireRejectionTest, StampedFramesDecodeToTheSamePayload) {
  // A stamped report frame peeks with the sequence context visible and
  // decodes to the identical chunk.
  std::string stamped = report_frame_;
  ASSERT_TRUE(
      wire::StampSequenceContext(&stamped, {.epoch = 7, .seq = 3}).ok());
  const wire::FrameInfo info =
      wire::PeekFrame(wire::FrameBytes(stamped)).ValueOrDie();
  EXPECT_EQ(info.type, wire::FrameType::kReports);
  ASSERT_TRUE(info.has_seq);
  EXPECT_EQ(info.seq.epoch, 7u);
  EXPECT_EQ(info.seq.seq, 3u);
  auto decoded =
      wire::DecodeReportFrame(spec_, *protocol_, wire::FrameBytes(stamped));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  auto via_stamped = protocol_->MakeAccumulator();
  ASSERT_TRUE(via_stamped->Absorb(**decoded).ok());
  ExpectSameState(acc_->ExportState(), via_stamped->ExportState(),
                  "stamped report");

  // Same property for sketch frames (the retry sender numbers both kinds).
  std::string sketch = sketch_frame_;
  ASSERT_TRUE(
      wire::StampSequenceContext(&sketch, {.epoch = 1, .seq = 1}).ok());
  auto imported =
      wire::DecodeSketchFrame(spec_, *protocol_, wire::FrameBytes(sketch));
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  ExpectSameState(acc_->ExportState(), (*imported)->ExportState(),
                  "stamped sketch");
}

TEST_F(WireRejectionTest, StampRejectsTheReservedAndIllegalShapes) {
  // seq 0 is reserved (sequence numbers start at 1).
  std::string frame = report_frame_;
  EXPECT_FALSE(
      wire::StampSequenceContext(&frame, {.epoch = 1, .seq = 0}).ok());
  EXPECT_EQ(frame, report_frame_) << "a rejected stamp must not mutate";

  // Double-stamping is a typed error, not a silent second block.
  ASSERT_TRUE(
      wire::StampSequenceContext(&frame, {.epoch = 1, .seq = 1}).ok());
  EXPECT_FALSE(
      wire::StampSequenceContext(&frame, {.epoch = 1, .seq = 2}).ok());

  // Snapshot and ack frames never carry a sequence context.
  StreamingAggregator agg =
      StreamingAggregator::Make({.epsilon = 1.0, .d = 16}).ValueOrDie();
  std::string snapshot;
  ASSERT_TRUE(wire::EncodeSnapshotFrame(1.0, agg, &snapshot).ok());
  EXPECT_FALSE(
      wire::StampSequenceContext(&snapshot, {.epoch = 1, .seq = 1}).ok());
  std::string ack;
  ASSERT_TRUE(wire::EncodeAckFrame({.epoch = 1, .seq = 1}, &ack).ok());
  EXPECT_FALSE(
      wire::StampSequenceContext(&ack, {.epoch = 1, .seq = 1}).ok());
}

TEST_F(WireRejectionTest, AckFramesRoundTripAndRejectStrictly) {
  const wire::FrameSeq seq = {.epoch = 0xDEADBEEFCAFEF00Dull,
                              .seq = (1ull << 53) + 17};
  std::string ack;
  ASSERT_TRUE(wire::EncodeAckFrame(seq, &ack).ok());
  const wire::FrameInfo info =
      wire::PeekFrame(wire::FrameBytes(ack)).ValueOrDie();
  EXPECT_EQ(info.type, wire::FrameType::kAck);
  ASSERT_TRUE(info.has_seq);
  const wire::FrameSeq decoded = wire::DecodeAckFrame(ack).ValueOrDie();
  EXPECT_EQ(decoded.epoch, seq.epoch);
  EXPECT_EQ(decoded.seq, seq.seq);

  // Every truncation is a typed error, never UB.
  for (size_t len = 0; len < ack.size(); ++len) {
    EXPECT_FALSE(wire::DecodeAckFrame(ack.substr(0, len)).ok())
        << "ack truncated to " << len << " bytes";
  }
  // Trailing bytes, a non-ack frame, and an acked seq of 0 are rejected.
  EXPECT_FALSE(wire::DecodeAckFrame(ack + std::string(1, '\0')).ok());
  EXPECT_FALSE(wire::DecodeAckFrame(report_frame_).ok());
  std::string zero_seq;
  ASSERT_TRUE(wire::EncodeAckFrame({.epoch = 3, .seq = 1}, &zero_seq).ok());
  // The u64 seq sits in the last 8 payload bytes; zero them.
  for (size_t i = zero_seq.size() - 8; i < zero_seq.size(); ++i) {
    zero_seq[i] = '\0';
  }
  EXPECT_FALSE(wire::DecodeAckFrame(zero_seq).ok());
}

}  // namespace
}  // namespace numdist
