#include "scenario/scenario.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/histogram.h"
#include "metrics/distance.h"

namespace numdist {
namespace {

ScenarioConfig SmallDriftConfig() {
  ScenarioConfig config;
  config.name = "test-drift";
  config.epsilon = 1.0;
  config.d = 16;
  config.shards = 3;
  config.seed = 7;
  ScenarioPhase warmup;
  warmup.name = "warmup";
  warmup.mixture = {{DatasetId::kBeta, 1.0}};
  warmup.reports = 3000;
  warmup.checkpoints = 2;
  ScenarioPhase drift;
  drift.name = "drift";
  drift.mixture = {{DatasetId::kBeta, 1.0}};
  drift.end_mixture = {{DatasetId::kTaxi, 1.0}};
  drift.reports = 4000;
  drift.checkpoints = 2;
  config.phases = {warmup, drift};
  return config;
}

TEST(ScenarioValidateTest, RejectsStructuralErrors) {
  ScenarioConfig config = SmallDriftConfig();
  config.phases.clear();
  EXPECT_FALSE(ValidateScenario(config).ok());

  config = SmallDriftConfig();
  config.phases[0].reports = 0;
  EXPECT_FALSE(ValidateScenario(config).ok());

  config = SmallDriftConfig();
  config.phases[0].checkpoints = config.phases[0].reports + 1;
  EXPECT_FALSE(ValidateScenario(config).ok());

  config = SmallDriftConfig();
  config.phases[0].mixture = {{DatasetId::kBeta, -1.0}};
  EXPECT_FALSE(ValidateScenario(config).ok());

  config = SmallDriftConfig();
  config.phases[1].epsilon = -2.0;
  EXPECT_FALSE(ValidateScenario(config).ok());

  config = SmallDriftConfig();
  config.shards = 0;
  EXPECT_FALSE(ValidateScenario(config).ok());

  // Sanity caps: a typo'd granularity must be an error, not an O(d^2)
  // transition-model allocation measured in tens of gigabytes.
  config = SmallDriftConfig();
  config.d = 60000;
  EXPECT_FALSE(ValidateScenario(config).ok());
  config = SmallDriftConfig();
  config.shards = 100000;
  EXPECT_FALSE(ValidateScenario(config).ok());

  EXPECT_TRUE(ValidateScenario(SmallDriftConfig()).ok());
}

TEST(ScenarioRunTest, CheckpointsTrackPhasesAndVolumes) {
  const ScenarioConfig config = SmallDriftConfig();
  const ScenarioResult result = RunScenario(config).ValueOrDie();
  ASSERT_EQ(result.checkpoints.size(), 4u);
  EXPECT_EQ(result.total_reports, 7000u);
  EXPECT_EQ(result.checkpoints[0].phase, "warmup");
  EXPECT_EQ(result.checkpoints[0].total_reports, 1500u);
  EXPECT_EQ(result.checkpoints[3].phase, "drift");
  EXPECT_EQ(result.checkpoints[3].total_reports, 7000u);
  for (const ScenarioCheckpoint& c : result.checkpoints) {
    EXPECT_TRUE(hist::IsDistribution(c.truth));
    EXPECT_TRUE(hist::IsDistribution(c.estimate, 1e-6));
    EXPECT_TRUE(c.em_converged);
    EXPECT_GE(c.wasserstein, 0.0);
    EXPECT_LT(c.wasserstein, 0.2);
  }
}

TEST(ScenarioRunTest, BitIdenticalAcrossThreadCounts) {
  ScenarioConfig config = SmallDriftConfig();
  config.threads = 1;
  const ScenarioResult one = RunScenario(config).ValueOrDie();
  config.threads = 4;
  const ScenarioResult four = RunScenario(config).ValueOrDie();
  ASSERT_EQ(one.checkpoints.size(), four.checkpoints.size());
  for (size_t i = 0; i < one.checkpoints.size(); ++i) {
    const ScenarioCheckpoint& a = one.checkpoints[i];
    const ScenarioCheckpoint& b = four.checkpoints[i];
    // Exact equality, not tolerance: the scenario contract is bit-identical
    // results for any thread count.
    EXPECT_EQ(a.wasserstein, b.wasserstein);
    EXPECT_EQ(a.ks, b.ks);
    EXPECT_EQ(a.em_iterations, b.em_iterations);
    ASSERT_EQ(a.estimate.size(), b.estimate.size());
    for (size_t j = 0; j < a.estimate.size(); ++j) {
      EXPECT_EQ(a.estimate[j], b.estimate[j]) << "checkpoint " << i;
      EXPECT_EQ(a.truth[j], b.truth[j]) << "checkpoint " << i;
    }
  }
}

TEST(ScenarioRunTest, WireCheckpointsAreBitIdenticalToDirectMerges) {
  // Routing every checkpoint merge through the wire codec (snapshot frame
  // encode -> strict decode -> count merge, the cross-process shard path)
  // must not change a single bit of any checkpoint.
  ScenarioConfig config = SmallDriftConfig();
  config.wire_checkpoints = false;
  const ScenarioResult direct = RunScenario(config).ValueOrDie();
  config.wire_checkpoints = true;
  const ScenarioResult wired = RunScenario(config).ValueOrDie();
  ASSERT_EQ(direct.checkpoints.size(), wired.checkpoints.size());
  for (size_t i = 0; i < direct.checkpoints.size(); ++i) {
    const ScenarioCheckpoint& a = direct.checkpoints[i];
    const ScenarioCheckpoint& b = wired.checkpoints[i];
    EXPECT_EQ(a.wasserstein, b.wasserstein) << "checkpoint " << i;
    EXPECT_EQ(a.ks, b.ks) << "checkpoint " << i;
    EXPECT_EQ(a.em_iterations, b.em_iterations) << "checkpoint " << i;
    EXPECT_EQ(a.estimate, b.estimate) << "checkpoint " << i;
    EXPECT_EQ(a.truth, b.truth) << "checkpoint " << i;
  }
}

TEST(ScenarioParseTest, WireCheckpointsKeyIsParsed) {
  const std::string base =
      "\n[phase]\nmixture = beta\nreports = 10\n";
  EXPECT_TRUE(ParseScenarioText("wire_checkpoints = 1" + base)
                  ->wire_checkpoints);
  EXPECT_FALSE(ParseScenarioText("wire_checkpoints = 0" + base)
                   ->wire_checkpoints);
  EXPECT_FALSE(ParseScenarioText("wire_checkpoints = 2" + base).ok());
  EXPECT_FALSE(ParseScenarioText("wire_checkpoints = yes" + base).ok());
}

TEST(ScenarioRunTest, DriftMovesTheGroundTruth) {
  // With drift from beta to taxi, the cumulative truth after the drift
  // phase must differ from the warmup-only truth.
  const ScenarioResult result = RunScenario(SmallDriftConfig()).ValueOrDie();
  const std::vector<double>& early = result.checkpoints[1].truth;
  const std::vector<double>& late = result.checkpoints[3].truth;
  EXPECT_GT(WassersteinDistance(early, late), 0.01);
}

TEST(ScenarioRunTest, EpsilonScheduleSplitsAggregationGroups) {
  ScenarioConfig config = SmallDriftConfig();
  config.phases[0].epsilon = 4.0;
  config.phases[1].epsilon = 0.5;
  config.phases[1].end_mixture.clear();
  const ScenarioResult result = RunScenario(config).ValueOrDie();
  ASSERT_EQ(result.checkpoints.size(), 4u);
  // Reports under different budgets never share a reconstruction: the
  // second phase's group starts from zero.
  EXPECT_EQ(result.checkpoints[1].group_reports, 3000u);
  EXPECT_EQ(result.checkpoints[2].group_reports, 2000u);
  EXPECT_EQ(result.checkpoints[2].epsilon, 0.5);
  // Scenario-level totals still accumulate.
  EXPECT_EQ(result.checkpoints[3].total_reports, 7000u);
}

TEST(ScenarioRunTest, SameEpsilonPhasesShareOneGroup) {
  ScenarioConfig config = SmallDriftConfig();
  const ScenarioResult result = RunScenario(config).ValueOrDie();
  // Default epsilon everywhere: the drift phase keeps accumulating into the
  // warmup group.
  EXPECT_EQ(result.checkpoints[2].group_reports, 5000u);
  EXPECT_EQ(result.checkpoints[3].group_reports, 7000u);
}

TEST(ScenarioParseTest, ParsesFullFormat) {
  const ScenarioConfig config = ParseScenarioText(R"(
    # demo scenario
    name = parsed
    epsilon = 2.0
    d = 32
    shards = 5
    seed = 99

    [phase]
    name = a
    mixture = beta:0.75, taxi:0.25   # trailing comment
    reports = 1000

    [phase]
    name = b
    mixture = income
    end_mixture = retirement:2
    reports = 2000
    epsilon = 0.5
    checkpoints = 4
  )").ValueOrDie();

  EXPECT_EQ(config.name, "parsed");
  EXPECT_DOUBLE_EQ(config.epsilon, 2.0);
  EXPECT_EQ(config.d, 32u);
  EXPECT_EQ(config.shards, 5u);
  EXPECT_EQ(config.seed, 99u);
  ASSERT_EQ(config.phases.size(), 2u);
  ASSERT_EQ(config.phases[0].mixture.size(), 2u);
  EXPECT_EQ(config.phases[0].mixture[0].dataset, DatasetId::kBeta);
  EXPECT_DOUBLE_EQ(config.phases[0].mixture[0].weight, 0.75);
  EXPECT_DOUBLE_EQ(config.phases[0].mixture[1].weight, 0.25);
  EXPECT_EQ(config.phases[0].checkpoints, 1u);
  EXPECT_EQ(config.phases[1].end_mixture.size(), 1u);
  EXPECT_DOUBLE_EQ(config.phases[1].end_mixture[0].weight, 2.0);
  EXPECT_DOUBLE_EQ(config.phases[1].epsilon, 0.5);
  EXPECT_EQ(config.phases[1].checkpoints, 4u);
}

TEST(ScenarioParseTest, RejectsMalformedInput) {
  // Unknown top-level key.
  EXPECT_FALSE(ParseScenarioText("bogus = 1").ok());
  // Unknown dataset.
  EXPECT_FALSE(ParseScenarioText(
      "[phase]\nmixture = nope\nreports = 10").ok());
  // Bad mixture weight.
  EXPECT_FALSE(ParseScenarioText(
      "[phase]\nmixture = beta:xyz\nreports = 10").ok());
  // Key line without '='.
  EXPECT_FALSE(ParseScenarioText("[phase]\nmixture beta").ok());
  // Structurally invalid after parsing (no reports).
  EXPECT_FALSE(ParseScenarioText("[phase]\nmixture = beta").ok());
}

TEST(ScenarioParseTest, RejectsNegativeAndMalformedNumbers) {
  // Negative integers must be InvalidArgument, never wrap through size_t
  // into absurd allocations or loop bounds.
  EXPECT_FALSE(ParseScenarioText(
      "d = -1\n[phase]\nmixture = beta\nreports = 10").ok());
  EXPECT_FALSE(ParseScenarioText(
      "shards = -1\n[phase]\nmixture = beta\nreports = 10").ok());
  EXPECT_FALSE(ParseScenarioText(
      "[phase]\nmixture = beta\nreports = -10").ok());
  EXPECT_FALSE(ParseScenarioText(
      "[phase]\nmixture = beta\nreports = 10\ncheckpoints = -2").ok());
  // Non-numeric and trailing-garbage values.
  EXPECT_FALSE(ParseScenarioText(
      "d = lots\n[phase]\nmixture = beta\nreports = 10").ok());
  EXPECT_FALSE(ParseScenarioText(
      "[phase]\nmixture = beta\nreports = 10x").ok());
  // Epsilon must be positive and numeric.
  EXPECT_FALSE(ParseScenarioText(
      "epsilon = -1\n[phase]\nmixture = beta\nreports = 10").ok());
  EXPECT_FALSE(ParseScenarioText(
      "epsilon = nanx\n[phase]\nmixture = beta\nreports = 10").ok());
  // Zero d / shards parse fine and are caught by validation.
  EXPECT_FALSE(ParseScenarioText(
      "d = 0\n[phase]\nmixture = beta\nreports = 10").ok());
  EXPECT_FALSE(ParseScenarioText(
      "shards = 0\n[phase]\nmixture = beta\nreports = 10").ok());
}

TEST(ScenarioParseTest, ParsesAttackAndDefenseKeys) {
  const ScenarioConfig config = ParseScenarioText(R"(
    name = attacked
    d = 64
    defense = consistency
    defense_threshold = 6.5
    [phase]
    mixture = beta
    reports = 100
    [phase]
    mixture = beta
    reports = 100
    attack = output
    attack_fraction = 0.25
    attack_target = 48
  )").ValueOrDie();
  EXPECT_TRUE(config.defense);
  EXPECT_DOUBLE_EQ(config.defense_options.spike_z_threshold, 6.5);
  ASSERT_EQ(config.phases.size(), 2u);
  EXPECT_EQ(config.phases[0].attack.kind, AttackKind::kNone);
  EXPECT_EQ(config.phases[1].attack.kind, AttackKind::kOutputPoison);
  EXPECT_DOUBLE_EQ(config.phases[1].attack.fraction, 0.25);
  EXPECT_EQ(config.phases[1].attack.target, 48u);
  EXPECT_TRUE(ValidateScenario(config).ok());
  // defense = off round-trips to no defense columns.
  const ScenarioConfig off = ParseScenarioText(
      "defense = off\n[phase]\nmixture = beta\nreports = 10").ValueOrDie();
  EXPECT_FALSE(off.defense);
}

TEST(ScenarioParseTest, RejectsMalformedAttackAndDefenseKeys) {
  const std::string prefix = "[phase]\nmixture = beta\nreports = 10\n";
  // Fractions outside [0, 1] are typed errors, never silently clamped.
  EXPECT_FALSE(ParseScenarioText(
      prefix + "attack = output\nattack_fraction = 1.5").ok());
  EXPECT_FALSE(ParseScenarioText(
      prefix + "attack = output\nattack_fraction = -0.1").ok());
  // Non-finite and garbage fraction strings.
  EXPECT_FALSE(ParseScenarioText(
      prefix + "attack = output\nattack_fraction = nan").ok());
  EXPECT_FALSE(ParseScenarioText(
      prefix + "attack = output\nattack_fraction = inf").ok());
  EXPECT_FALSE(ParseScenarioText(
      prefix + "attack = output\nattack_fraction = 0.1x").ok());
  // Unknown attack kind.
  EXPECT_FALSE(ParseScenarioText(
      prefix + "attack = mga\nattack_fraction = 0.1").ok());
  // An attack kind without a fraction (and vice versa) is a contradiction.
  EXPECT_FALSE(ParseScenarioText(prefix + "attack = output").ok());
  EXPECT_FALSE(ParseScenarioText(prefix + "attack_fraction = 0.1").ok());
  // Target outside the scenario's domain.
  EXPECT_FALSE(ParseScenarioText(
      "d = 32\n" + prefix +
      "attack = output\nattack_fraction = 0.1\nattack_target = 32").ok());
  // Negative target must not wrap through size_t.
  EXPECT_FALSE(ParseScenarioText(
      prefix + "attack = output\nattack_fraction = 0.1\n"
               "attack_target = -1").ok());
  // Defense switch takes only off|consistency; thresholds must be
  // positive and finite.
  EXPECT_FALSE(ParseScenarioText("defense = maybe\n" + prefix).ok());
  EXPECT_FALSE(ParseScenarioText(
      "defense = consistency\ndefense_threshold = 0\n" + prefix).ok());
  EXPECT_FALSE(ParseScenarioText(
      "defense = consistency\ndefense_threshold = -3\n" + prefix).ok());
  EXPECT_FALSE(ParseScenarioText(
      "defense = consistency\ndefense_threshold = nan\n" + prefix).ok());
}

TEST(ScenarioBuiltinTest, AllBuiltinsAreValid) {
  for (const std::string& name : BuiltinScenarioNames()) {
    const Result<ScenarioConfig> config = BuiltinScenario(name);
    ASSERT_TRUE(config.ok()) << name;
    EXPECT_TRUE(ValidateScenario(config.value()).ok()) << name;
    EXPECT_EQ(config->name, name);
  }
  EXPECT_FALSE(BuiltinScenario("no-such-scenario").ok());
}

}  // namespace
}  // namespace numdist
