#include "core/em.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/histogram.h"
#include "core/ems.h"
#include "core/square_wave.h"

namespace numdist {
namespace {

Matrix IdentityMatrix(size_t d) {
  Matrix m(d, d, 0.0);
  for (size_t i = 0; i < d; ++i) m(i, i) = 1.0;
  return m;
}

TEST(EmTest, RejectsEmptyInputs) {
  EXPECT_FALSE(EstimateEm(Matrix(), {}).ok());
  const Matrix id = IdentityMatrix(3);
  EXPECT_FALSE(EstimateEm(id, {1, 2}).ok());        // size mismatch
  EXPECT_FALSE(EstimateEm(id, {0, 0, 0}).ok());     // no observations
}

TEST(EmTest, IdentityModelRecoversObservedFrequencies) {
  const Matrix id = IdentityMatrix(4);
  const std::vector<uint64_t> counts = {10, 20, 30, 40};
  const EmResult res = EstimateEm(id, counts).ValueOrDie();
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.estimate[0], 0.1, 1e-6);
  EXPECT_NEAR(res.estimate[1], 0.2, 1e-6);
  EXPECT_NEAR(res.estimate[2], 0.3, 1e-6);
  EXPECT_NEAR(res.estimate[3], 0.4, 1e-6);
}

TEST(EmTest, EstimateIsAlwaysDistribution) {
  const SquareWave sw = SquareWave::Make(1.0).ValueOrDie();
  const Matrix m = sw.TransitionMatrix(32, 32);
  std::vector<uint64_t> counts(32, 0);
  counts[5] = 100;
  counts[20] = 300;
  const EmResult res = EstimateEm(m, counts).ValueOrDie();
  EXPECT_TRUE(hist::IsDistribution(res.estimate, 1e-9));
}

TEST(EmTest, LogLikelihoodIsNonDecreasing) {
  const SquareWave sw = SquareWave::Make(1.0).ValueOrDie();
  const Matrix m = sw.TransitionMatrix(16, 16);
  std::vector<uint64_t> counts(16, 10);
  counts[3] = 500;
  counts[12] = 200;
  // Run EM step by step by calling with increasing max_iterations.
  double prev_ll = -1e300;
  for (size_t iters = 1; iters <= 40; iters += 3) {
    EmOptions opts;
    opts.max_iterations = iters;
    opts.min_iterations = iters;  // force exactly `iters` iterations
    opts.tol = 0.0;
    const EmResult res = EstimateEm(m, counts, opts).ValueOrDie();
    EXPECT_GE(res.log_likelihood, prev_ll - 1e-9) << "iters=" << iters;
    prev_ll = res.log_likelihood;
  }
}

TEST(EmTest, ConvergesOnNoiselessSquareWaveObservations) {
  // Feed EM the *exact* expected output distribution for a known input;
  // the MLE should be (near) the true input distribution.
  const SquareWave sw = SquareWave::Make(4.0, 0.05).ValueOrDie();
  const size_t d = 16;
  const Matrix m = sw.TransitionMatrix(d, d);
  std::vector<double> truth(d, 0.0);
  truth[4] = 0.5;
  truth[5] = 0.25;
  truth[10] = 0.25;
  const std::vector<double> expected_out = m.Multiply(truth);
  // Convert to large integer counts (small rounding noise).
  std::vector<uint64_t> counts(expected_out.size());
  for (size_t j = 0; j < counts.size(); ++j) {
    counts[j] = static_cast<uint64_t>(std::llround(expected_out[j] * 1e7));
  }
  EmOptions opts;
  opts.tol = 1e-10;
  opts.max_iterations = 20000;
  const EmResult res = EstimateEm(m, counts, opts).ValueOrDie();
  for (size_t i = 0; i < d; ++i) {
    EXPECT_NEAR(res.estimate[i], truth[i], 0.02) << "i=" << i;
  }
}

TEST(EmTest, ReportsIterationCount) {
  const Matrix id = IdentityMatrix(4);
  EmOptions opts;
  opts.max_iterations = 3;
  opts.min_iterations = 3;
  opts.tol = 0.0;
  const EmResult res =
      EstimateEm(id, std::vector<uint64_t>{5, 5, 5, 5}, opts).ValueOrDie();
  EXPECT_EQ(res.iterations, 3u);
  EXPECT_FALSE(res.converged);
}

TEST(EmTest, HonorsIterationCap) {
  const SquareWave sw = SquareWave::Make(0.5).ValueOrDie();
  const Matrix m = sw.TransitionMatrix(32, 32);
  std::vector<uint64_t> counts(32, 100);
  EmOptions opts;
  opts.max_iterations = 7;
  opts.tol = 0.0;  // never converge by tolerance
  const EmResult res = EstimateEm(m, counts, opts).ValueOrDie();
  EXPECT_EQ(res.iterations, 7u);
}

// ---------------------------------------------------- acceleration --

TEST(EmAccelerationTest, ReachesSameFixedPointAsPlainEm) {
  const SquareWave sw = SquareWave::Make(1.0).ValueOrDie();
  const size_t d = 64;
  const Matrix m = sw.TransitionMatrix(d, d);
  Rng rng(55);
  std::vector<uint64_t> counts(d);
  for (uint64_t& c : counts) c = 100 + rng.UniformInt(900);

  EmOptions opts;
  opts.tol = 1e-9;
  opts.max_iterations = 50000;
  const EmResult plain = EstimateEm(m, counts, opts).ValueOrDie();
  opts.acceleration = true;
  const EmResult fast = EstimateEm(m, counts, opts).ValueOrDie();

  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(fast.converged);
  // Same MLE: with a tight tolerance both runs land on the same optimum.
  for (size_t i = 0; i < d; ++i) {
    EXPECT_NEAR(fast.estimate[i], plain.estimate[i], 1e-4) << "i=" << i;
  }
  // The safeguard keeps the accelerated run at least as likely.
  EXPECT_GE(fast.log_likelihood, plain.log_likelihood - 1e-6);
}

TEST(EmAccelerationTest, CutsIterationsOnSlowWorkload) {
  // Small epsilon = near-flat transition = slow plain EM; acceleration must
  // converge in substantially fewer E+M map applications.
  const SquareWave sw = SquareWave::Make(0.5).ValueOrDie();
  const size_t d = 128;
  const Matrix m = sw.TransitionMatrix(d, d);
  Rng rng(56);
  std::vector<uint64_t> counts(d);
  for (size_t j = 0; j < d; ++j) {
    counts[j] = 200 + 150 * (j % 7) + rng.UniformInt(50);
  }
  EmOptions opts;
  opts.tol = 1e-7;
  opts.max_iterations = 100000;
  const EmResult plain = EstimateEm(m, counts, opts).ValueOrDie();
  opts.acceleration = true;
  const EmResult fast = EstimateEm(m, counts, opts).ValueOrDie();
  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(fast.converged);
  EXPECT_LT(fast.iterations * 2, plain.iterations)
      << "accelerated=" << fast.iterations << " plain=" << plain.iterations;
}

TEST(EmAccelerationTest, AcceleratedEmsStaysADistributionAndMatches) {
  const SquareWave sw = SquareWave::Make(1.0).ValueOrDie();
  const size_t d = 48;
  const Matrix m = sw.TransitionMatrix(d, d);
  std::vector<uint64_t> counts(d, 10);
  counts[10] = 800;
  counts[30] = 400;
  EmOptions opts;
  opts.smoothing = true;
  opts.tol = 1e-8;
  opts.max_iterations = 50000;
  const EmResult plain = EstimateEm(m, counts, opts).ValueOrDie();
  opts.acceleration = true;
  const EmResult fast = EstimateEm(m, counts, opts).ValueOrDie();
  EXPECT_TRUE(hist::IsDistribution(fast.estimate, 1e-9));
  // Smoothing makes the map a regularized (non-ascent) iteration, so the
  // accelerated trajectory may settle a hair away from the plain one —
  // require closeness, not coincidence.
  double l1 = 0.0;
  for (size_t i = 0; i < d; ++i) {
    l1 += std::fabs(fast.estimate[i] - plain.estimate[i]);
    EXPECT_NEAR(fast.estimate[i], plain.estimate[i], 0.01) << "i=" << i;
  }
  EXPECT_LT(l1, 0.05);
}

TEST(EmAccelerationTest, HonorsIterationCapExactly) {
  const SquareWave sw = SquareWave::Make(0.5).ValueOrDie();
  const Matrix m = sw.TransitionMatrix(32, 32);
  std::vector<uint64_t> counts(32, 100);
  for (const size_t cap : {size_t{1}, size_t{2}, size_t{3}, size_t{4},
                           size_t{7}, size_t{10}}) {
    EmOptions opts;
    opts.acceleration = true;
    opts.max_iterations = cap;
    opts.min_iterations = cap;
    opts.tol = 0.0;  // never converge by tolerance
    const EmResult res = EstimateEm(m, counts, opts).ValueOrDie();
    EXPECT_EQ(res.iterations, cap) << "cap=" << cap;
  }
}

TEST(EmAccelerationTest, LogLikelihoodStillNonDecreasingAcrossCycles) {
  // The monotonicity safeguard must keep accepted iterates ascending.
  const SquareWave sw = SquareWave::Make(1.0).ValueOrDie();
  const Matrix m = sw.TransitionMatrix(32, 32);
  std::vector<uint64_t> counts(32, 10);
  counts[3] = 500;
  counts[20] = 250;
  double prev_ll = -1e300;
  for (size_t iters = 3; iters <= 60; iters += 6) {
    EmOptions opts;
    opts.acceleration = true;
    opts.max_iterations = iters;
    opts.min_iterations = iters;
    opts.tol = 0.0;
    const EmResult res = EstimateEm(m, counts, opts).ValueOrDie();
    EXPECT_GE(res.log_likelihood, prev_ll - 1e-9) << "iters=" << iters;
    prev_ll = res.log_likelihood;
  }
}

// ------------------------------------------------------- smoothing --

TEST(BinomialSmoothTest, InteriorKernelWeights) {
  std::vector<double> x = {0.0, 1.0, 0.0, 0.0, 0.0};
  BinomialSmooth(&x);
  // Pre-normalization: [1/3*? ...]. Mass: edge kernels renormalize, whole
  // vector renormalized; check the spike spread symmetrically.
  EXPECT_GT(x[0], 0.0);
  EXPECT_GT(x[2], 0.0);
  EXPECT_NEAR(hist::Sum(x), 1.0, 1e-12);
  EXPECT_GT(x[1], x[0]);
  EXPECT_GT(x[1], x[2]);
  EXPECT_DOUBLE_EQ(x[3], 0.0);
}

TEST(BinomialSmoothTest, PreservesUniform) {
  std::vector<double> x(8, 0.125);
  BinomialSmooth(&x);
  for (double v : x) EXPECT_NEAR(v, 0.125, 1e-12);
}

TEST(BinomialSmoothTest, PreservesNonNegativityAndSum) {
  std::vector<double> x = {0.7, 0.0, 0.1, 0.0, 0.2};
  BinomialSmooth(&x);
  double sum = 0.0;
  for (double v : x) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(BinomialSmoothTest, ReducesTotalVariation) {
  std::vector<double> x = {0.5, 0.0, 0.5, 0.0, 0.0};
  const auto tv = [](const std::vector<double>& v) {
    double acc = 0.0;
    for (size_t i = 0; i + 1 < v.size(); ++i) acc += std::fabs(v[i + 1] - v[i]);
    return acc;
  };
  const double before = tv(x);
  BinomialSmooth(&x);
  EXPECT_LT(tv(x), before);
}

TEST(BinomialSmoothTest, TinyVectorsUntouched) {
  std::vector<double> x = {0.3, 0.7};
  BinomialSmooth(&x);
  EXPECT_DOUBLE_EQ(x[0], 0.3);
  EXPECT_DOUBLE_EQ(x[1], 0.7);
}

// ------------------------------------------------------------- EMS --

TEST(EmsTest, ForcesSmoothing) {
  const SquareWave sw = SquareWave::Make(1.0).ValueOrDie();
  const Matrix m = sw.TransitionMatrix(32, 32);
  std::vector<uint64_t> counts(32, 0);
  counts[10] = 1000;
  EmOptions opts;
  opts.smoothing = false;  // EstimateEms must override this
  const EmResult res = EstimateEms(m, counts, opts).ValueOrDie();
  EXPECT_TRUE(hist::IsDistribution(res.estimate, 1e-9));
  // A single-spike observation reconstructed with smoothing cannot put
  // everything into one bucket.
  double maxv = 0.0;
  for (double v : res.estimate) maxv = std::max(maxv, v);
  EXPECT_LT(maxv, 0.9);
}

TEST(EmsTest, SmootherThanPlainEmOnSpikyNoise) {
  const SquareWave sw = SquareWave::Make(1.0).ValueOrDie();
  const size_t d = 64;
  const Matrix m = sw.TransitionMatrix(d, d);
  // Noisy observations: uniform + noise spikes.
  Rng rng(77);
  std::vector<uint64_t> counts(d);
  for (size_t j = 0; j < d; ++j) counts[j] = 50 + rng.UniformInt(60);
  const auto tv = [](const std::vector<double>& v) {
    double acc = 0.0;
    for (size_t i = 0; i + 1 < v.size(); ++i) acc += std::fabs(v[i + 1] - v[i]);
    return acc;
  };
  const EmResult em = EstimateEm(m, counts).ValueOrDie();
  const EmResult ems = EstimateEms(m, counts).ValueOrDie();
  EXPECT_LT(tv(ems.estimate), tv(em.estimate));
}

TEST(SmoothingOnlyTest, ProducesDistribution) {
  std::vector<uint64_t> counts(48, 0);
  counts[10] = 500;
  counts[30] = 500;
  const std::vector<double> est = SmoothingOnlyEstimate(counts, 32);
  EXPECT_EQ(est.size(), 32u);
  EXPECT_TRUE(hist::IsDistribution(est, 1e-9));
}

TEST(SmoothingOnlyTest, SplitsOutputMassProportionallyAcrossInputBuckets) {
  // 2 output buckets over 3 input buckets, no smoothing passes: output
  // bucket 0 covers input [0, 1.5) -> buckets {0 fully, 1 half}; bucket 1
  // covers [1.5, 3) -> {1 half, 2 fully}. A point-assignment would dump
  // everything into single buckets instead.
  std::vector<uint64_t> counts = {600, 0};
  const std::vector<double> est = SmoothingOnlyEstimate(counts, 3, 0);
  ASSERT_EQ(est.size(), 3u);
  EXPECT_NEAR(est[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(est[1], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(est[2], 0.0, 1e-12);
}

TEST(SmoothingOnlyTest, IdentityGridIsExactWithoutSmoothing) {
  std::vector<uint64_t> counts = {10, 30, 40, 20};
  const std::vector<double> est = SmoothingOnlyEstimate(counts, 4, 0);
  ASSERT_EQ(est.size(), 4u);
  EXPECT_NEAR(est[0], 0.1, 1e-12);
  EXPECT_NEAR(est[1], 0.3, 1e-12);
  EXPECT_NEAR(est[2], 0.4, 1e-12);
  EXPECT_NEAR(est[3], 0.2, 1e-12);
}

}  // namespace
}  // namespace numdist
