#include "core/bandwidth.h"

#include <gtest/gtest.h>

#include <cmath>

namespace numdist {
namespace {

TEST(BandwidthTest, PaperValuesFigure6) {
  // Figure 6 captions report b_SW at eps = 1..4.
  EXPECT_NEAR(OptimalBandwidth(1.0), 0.256, 0.001);
  EXPECT_NEAR(OptimalBandwidth(2.0), 0.129, 0.001);
  EXPECT_NEAR(OptimalBandwidth(3.0), 0.064, 0.001);
  EXPECT_NEAR(OptimalBandwidth(4.0), 0.030, 0.001);
}

TEST(BandwidthTest, ClosedFormExactAtEps1) {
  // b*(1) = (e - e + 1) / (2 e (e - 2)) = 1 / (2e(e-2)).
  const double e = std::exp(1.0);
  EXPECT_NEAR(OptimalBandwidth(1.0), 1.0 / (2.0 * e * (e - 2.0)), 1e-12);
}

TEST(BandwidthTest, SmallEpsLimitIsHalf) {
  EXPECT_DOUBLE_EQ(OptimalBandwidth(1e-6), 0.5);
  EXPECT_NEAR(OptimalBandwidth(0.01), 0.5, 0.01);
}

TEST(BandwidthTest, LargeEpsGoesToZero) {
  EXPECT_LT(OptimalBandwidth(10.0), 0.01);
  EXPECT_LT(OptimalBandwidth(20.0), 1e-4);
}

TEST(BandwidthTest, MonotoneNonIncreasing) {
  double prev = OptimalBandwidth(0.05);
  for (double eps = 0.1; eps <= 8.0; eps += 0.1) {
    const double b = OptimalBandwidth(eps);
    EXPECT_LE(b, prev + 1e-12) << "eps=" << eps;
    prev = b;
  }
}

TEST(BandwidthTest, AlwaysInHalfOpenInterval) {
  for (double eps = 0.05; eps <= 10.0; eps += 0.05) {
    const double b = OptimalBandwidth(eps);
    EXPECT_GT(b, 0.0);
    EXPECT_LE(b, 0.5);
  }
}

TEST(BandwidthTest, DiscreteBandwidthScales) {
  EXPECT_EQ(DiscreteOptimalBandwidth(1.0, 1024),
            static_cast<size_t>(std::floor(OptimalBandwidth(1.0) * 1024)));
  EXPECT_EQ(DiscreteOptimalBandwidth(1.0, 4), 1u);  // 0.256 * 4 = 1.02
}

TEST(BandwidthTest, MutualInformationBoundIsFiniteAndSmooth) {
  for (double eps : {0.5, 1.0, 2.0}) {
    for (double b = 0.01; b < 0.5; b += 0.01) {
      const double mi = MutualInformationUpperBound(eps, b);
      EXPECT_TRUE(std::isfinite(mi));
    }
  }
}

// Parameterized check: the closed form maximizes the MI bound (agrees with a
// numeric golden-section maximizer across the practical eps range).
class BandwidthOptimalityTest : public ::testing::TestWithParam<double> {};

TEST_P(BandwidthOptimalityTest, ClosedFormMatchesNumericMaximizer) {
  const double eps = GetParam();
  const double closed = OptimalBandwidth(eps);
  const double numeric = NumericOptimalBandwidth(eps);
  EXPECT_NEAR(closed, numeric, 1e-5) << "eps=" << eps;
}

TEST_P(BandwidthOptimalityTest, NeighborhoodIsNotBetter) {
  const double eps = GetParam();
  const double b = OptimalBandwidth(eps);
  const double f = MutualInformationUpperBound(eps, b);
  for (double delta : {-0.02, -0.005, 0.005, 0.02}) {
    const double other = b + delta;
    if (other <= 0.0 || other > 0.5) continue;
    EXPECT_GE(f + 1e-9, MutualInformationUpperBound(eps, other))
        << "eps=" << eps << " delta=" << delta;
  }
}

INSTANTIATE_TEST_SUITE_P(EpsilonSweep, BandwidthOptimalityTest,
                         ::testing::Values(0.25, 0.5, 0.75, 1.0, 1.5, 2.0,
                                           2.5, 3.0, 4.0, 5.0, 6.0));

}  // namespace
}  // namespace numdist
