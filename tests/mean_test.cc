#include <gtest/gtest.h>

#include <cmath>

#include "mean/moments.h"
#include "mean/pm.h"
#include "mean/sr.h"

namespace numdist {
namespace {

// -------------------------------------------------------------- SR --

TEST(SrTest, MakeValidation) {
  EXPECT_FALSE(StochasticRounding::Make(0.0).ok());
  EXPECT_FALSE(StochasticRounding::Make(-2.0).ok());
  EXPECT_TRUE(StochasticRounding::Make(1.0).ok());
}

TEST(SrTest, ReportMagnitude) {
  const double eps = 1.0;
  const StochasticRounding sr = StochasticRounding::Make(eps).ValueOrDie();
  const double e = std::exp(eps);
  EXPECT_NEAR(sr.report_magnitude(), (e + 1.0) / (e - 1.0), 1e-12);
}

TEST(SrTest, ReportsAreExtremes) {
  const StochasticRounding sr = StochasticRounding::Make(1.0).ValueOrDie();
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double r = sr.Perturb(0.4, rng);
    EXPECT_NEAR(std::fabs(r), sr.report_magnitude(), 1e-12);
  }
}

TEST(SrTest, UnbiasedAcrossInputs) {
  const StochasticRounding sr = StochasticRounding::Make(1.0).ValueOrDie();
  Rng rng(2);
  for (double v : {-1.0, -0.5, 0.0, 0.3, 1.0}) {
    double acc = 0.0;
    const int n = 300000;
    for (int i = 0; i < n; ++i) acc += sr.Perturb(v, rng);
    EXPECT_NEAR(acc / n, v, 0.02) << "v=" << v;
  }
}

TEST(SrTest, MeanOfReports) {
  EXPECT_DOUBLE_EQ(StochasticRounding::MeanOfReports({1.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(StochasticRounding::MeanOfReports({}), 0.0);
}

// -------------------------------------------------------------- PM --

TEST(PmTest, MakeValidation) {
  EXPECT_FALSE(PiecewiseMechanism::Make(0.0).ok());
  EXPECT_TRUE(PiecewiseMechanism::Make(0.5).ok());
}

TEST(PmTest, OutputBound) {
  const double eps = 1.0;
  const PiecewiseMechanism pm = PiecewiseMechanism::Make(eps).ValueOrDie();
  const double e2 = std::exp(eps / 2.0);
  EXPECT_NEAR(pm.s(), (e2 + 1.0) / (e2 - 1.0), 1e-12);
}

TEST(PmTest, WindowGeometry) {
  const double eps = 2.0;
  const PiecewiseMechanism pm = PiecewiseMechanism::Make(eps).ValueOrDie();
  const double e2 = std::exp(eps / 2.0);
  for (double v : {-1.0, 0.0, 0.5, 1.0}) {
    const double l = pm.WindowLeft(v);
    const double r = pm.WindowRight(v);
    EXPECT_NEAR(r - l, 2.0 / (e2 - 1.0), 1e-12);          // constant width
    EXPECT_NEAR((l + r) / 2.0, e2 * v / (e2 - 1.0), 1e-12);  // scaled center
    EXPECT_GE(l, -pm.s() - 1e-12);
    EXPECT_LE(r, pm.s() + 1e-12);
  }
}

TEST(PmTest, DensityRatioIsExpEps) {
  const PiecewiseMechanism pm = PiecewiseMechanism::Make(1.4).ValueOrDie();
  EXPECT_NEAR(pm.high_density() / pm.low_density(), std::exp(1.4), 1e-9);
}

TEST(PmTest, ReportsStayInRange) {
  const PiecewiseMechanism pm = PiecewiseMechanism::Make(1.0).ValueOrDie();
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const double v = -1.0 + 2.0 * (i % 100) / 99.0;
    const double r = pm.Perturb(v, rng);
    EXPECT_GE(r, -pm.s() - 1e-12);
    EXPECT_LE(r, pm.s() + 1e-12);
  }
}

TEST(PmTest, UnbiasedAcrossInputs) {
  const PiecewiseMechanism pm = PiecewiseMechanism::Make(1.0).ValueOrDie();
  Rng rng(4);
  for (double v : {-1.0, -0.4, 0.0, 0.7, 1.0}) {
    double acc = 0.0;
    const int n = 300000;
    for (int i = 0; i < n; ++i) acc += pm.Perturb(v, rng);
    EXPECT_NEAR(acc / n, v, 0.02) << "v=" << v;
  }
}

TEST(PmTest, HighProbabilityWindowMass) {
  const double eps = 1.0;
  const PiecewiseMechanism pm = PiecewiseMechanism::Make(eps).ValueOrDie();
  Rng rng(5);
  const double v = 0.25;
  const double l = pm.WindowLeft(v);
  const double r = pm.WindowRight(v);
  int inside = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double rep = pm.Perturb(v, rng);
    if (rep >= l && rep <= r) ++inside;
  }
  const double e2 = std::exp(eps / 2.0);
  EXPECT_NEAR(static_cast<double>(inside) / n, e2 / (e2 + 1.0), 0.005);
}

TEST(PmTest, LowerVarianceThanSrAtLargeEps) {
  // Paper §2.2: PM beats SR when eps is large.
  const double eps = 4.0;
  const StochasticRounding sr = StochasticRounding::Make(eps).ValueOrDie();
  const PiecewiseMechanism pm = PiecewiseMechanism::Make(eps).ValueOrDie();
  Rng rng(6);
  const double v = 0.5;
  double var_sr = 0.0;
  double var_pm = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double a = sr.Perturb(v, rng) - v;
    const double b = pm.Perturb(v, rng) - v;
    var_sr += a * a;
    var_pm += b * b;
  }
  EXPECT_LT(var_pm, var_sr);
}

// ---------------------------------------------------------- moments --

TEST(MomentsTest, EstimateMeanValidation) {
  Rng rng(7);
  EXPECT_FALSE(
      EstimateMean({}, MeanMechanism::kPiecewiseMechanism, 1.0, rng).ok());
}

TEST(MomentsTest, MeanRecoveredByBothMechanisms) {
  Rng data_rng(8);
  std::vector<double> values;
  double truth = 0.0;
  for (int i = 0; i < 150000; ++i) {
    const double v = std::clamp(0.3 + 0.1 * data_rng.Gaussian(), 0.0, 1.0);
    values.push_back(v);
    truth += v;
  }
  truth /= values.size();
  for (auto mech : {MeanMechanism::kStochasticRounding,
                    MeanMechanism::kPiecewiseMechanism}) {
    Rng rng(9);
    const double est = EstimateMean(values, mech, 1.0, rng).ValueOrDie();
    EXPECT_NEAR(est, truth, 0.02);
  }
}

TEST(MomentsTest, VarianceProtocolRecoversVariance) {
  Rng data_rng(10);
  std::vector<double> values;
  for (int i = 0; i < 200000; ++i) {
    values.push_back(data_rng.Uniform());  // variance 1/12
  }
  Rng rng(11);
  const MomentsEstimate est =
      EstimateMoments(values, MeanMechanism::kPiecewiseMechanism, 2.0, rng)
          .ValueOrDie();
  EXPECT_NEAR(est.mean, 0.5, 0.02);
  EXPECT_NEAR(est.variance, 1.0 / 12.0, 0.02);
}

TEST(MomentsTest, NeedsAtLeastTwoUsers) {
  Rng rng(12);
  EXPECT_FALSE(
      EstimateMoments({0.5}, MeanMechanism::kStochasticRounding, 1.0, rng)
          .ok());
}

TEST(MomentsTest, VarianceIsNonNegative) {
  Rng rng(13);
  std::vector<double> values(2000, 0.5);  // zero-variance data, heavy noise
  const MomentsEstimate est =
      EstimateMoments(values, MeanMechanism::kStochasticRounding, 0.2, rng)
          .ValueOrDie();
  EXPECT_GE(est.variance, 0.0);
}

}  // namespace
}  // namespace numdist
