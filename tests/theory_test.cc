// Tests pinned directly to the paper's stated theorems and lemmas:
//   Theorem 5.2  - GW satisfies eps-LDP          (property_test.cc ratio sweeps)
//   Lemma 5.4    - W1 between two GW output distributions = delta (1-(2b+1)q)
//   Lemma 5.5    - the minimal baseline q over the GW family is the SW's q
//   Theorem 5.3  - hence SW maximizes output separation (via 5.4 + 5.5)
//   Theorem 5.6  - EM converges to the MLE (log-likelihood of the EM output
//                  is not beaten by nearby distributions or the truth)
//   Section 5.3  - b* formula maximizes the MI bound (bandwidth_test.cc)
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/matrix.h"
#include "core/em.h"
#include "core/square_wave.h"
#include "core/wave.h"

namespace numdist {
namespace {

// Numerical 1-D Wasserstein distance between two output densities given as
// callables over [-b, 1+b] (fine Riemann discretization of |CDF1 - CDF2|).
template <typename F1, typename F2>
double NumericW1(F1&& f1, F2&& f2, double lo, double hi) {
  const int steps = 200000;
  const double h = (hi - lo) / steps;
  double cdf1 = 0.0;
  double cdf2 = 0.0;
  double acc = 0.0;
  for (int i = 0; i < steps; ++i) {
    const double z = lo + (i + 0.5) * h;
    cdf1 += f1(z) * h;
    cdf2 += f2(z) * h;
    acc += std::fabs(cdf1 - cdf2) * h;
  }
  return acc;
}

// ---------------------------------------------------------- Lemma 5.4 --

TEST(Lemma54Test, SquareWaveOutputW1MatchesClosedForm) {
  const double eps = 1.0;
  const double b = 0.25;
  const SquareWave sw = SquareWave::Make(eps, b).ValueOrDie();
  for (auto [v1, v2] : {std::pair{0.2, 0.5}, std::pair{0.0, 1.0},
                        std::pair{0.4, 0.45}}) {
    const double delta = std::fabs(v2 - v1);
    const double expected = delta * (1.0 - (2.0 * b + 1.0) * sw.q());
    const double measured = NumericW1(
        [&](double z) { return sw.Density(v1, z); },
        [&](double z) { return sw.Density(v2, z); }, -b, 1.0 + b);
    EXPECT_NEAR(measured, expected, 2e-4)
        << "v1=" << v1 << " v2=" << v2;
  }
}

TEST(Lemma54Test, GeneralWaveOutputW1MatchesClosedForm) {
  // The lemma covers the whole GW family with the shape's own q.
  const double eps = 1.0;
  const double b = 0.25;
  for (double ratio : {0.0, 0.4, 0.8}) {
    const GeneralWave gw = GeneralWave::Make(eps, b, ratio).ValueOrDie();
    const double v1 = 0.3;
    const double v2 = 0.7;
    const double expected =
        (v2 - v1) * (1.0 - (2.0 * b + 1.0) * gw.q());
    const double measured = NumericW1(
        [&](double z) { return gw.Density(v1, z); },
        [&](double z) { return gw.Density(v2, z); }, -b, 1.0 + b);
    EXPECT_NEAR(measured, expected, 2e-4) << "ratio=" << ratio;
  }
}

TEST(Lemma54Test, SeparationScalesLinearlyInDelta) {
  const SquareWave sw = SquareWave::Make(2.0, 0.15).ValueOrDie();
  const double w_small = NumericW1(
      [&](double z) { return sw.Density(0.4, z); },
      [&](double z) { return sw.Density(0.5, z); }, -0.15, 1.15);
  const double w_large = NumericW1(
      [&](double z) { return sw.Density(0.2, z); },
      [&](double z) { return sw.Density(0.6, z); }, -0.15, 1.15);
  EXPECT_NEAR(w_large / w_small, 4.0, 0.02);  // delta 0.4 vs 0.1
}

// ---------------------------------------------------------- Lemma 5.5 --

TEST(Lemma55Test, SquareWaveHasMinimalBaselineQ) {
  // q_SW = 1/(2 b e^eps + 1) is the infimum over the GW family; every
  // trapezoid/triangle has strictly larger q at the same (eps, b).
  for (double eps : {0.5, 1.0, 2.0}) {
    for (double b : {0.1, 0.25, 0.4}) {
      const SquareWave sw = SquareWave::Make(eps, b).ValueOrDie();
      for (double ratio : {0.0, 0.3, 0.6, 0.9, 0.99}) {
        const GeneralWave gw = GeneralWave::Make(eps, b, ratio).ValueOrDie();
        EXPECT_GT(gw.q(), sw.q())
            << "eps=" << eps << " b=" << b << " ratio=" << ratio;
      }
      // And the limit ratio -> 1 approaches q_SW.
      const GeneralWave limit = GeneralWave::Make(eps, b, 0.9999).ValueOrDie();
      EXPECT_NEAR(limit.q(), sw.q(), 1e-3 * sw.q() * 10);
    }
  }
}

TEST(Theorem53Test, SquareWaveMaximizesOutputSeparation) {
  // Combining 5.4 and 5.5: the SW's separation coefficient 1 - (2b+1) q is
  // strictly larger than every other wave shape's at the same (eps, b).
  const double eps = 1.0;
  const double b = 0.25;
  const SquareWave sw = SquareWave::Make(eps, b).ValueOrDie();
  const double sw_sep = 1.0 - (2.0 * b + 1.0) * sw.q();
  for (double ratio : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    const GeneralWave gw = GeneralWave::Make(eps, b, ratio).ValueOrDie();
    const double gw_sep = 1.0 - (2.0 * b + 1.0) * gw.q();
    EXPECT_GT(sw_sep, gw_sep) << "ratio=" << ratio;
  }
}

// --------------------------------------------------------- Theorem 5.6 --

double LogLikelihood(const Matrix& m, const std::vector<uint64_t>& counts,
                     const std::vector<double>& x) {
  const std::vector<double> y = m.Multiply(x);
  double ll = 0.0;
  for (size_t j = 0; j < counts.size(); ++j) {
    if (counts[j] == 0) continue;
    ll += static_cast<double>(counts[j]) * std::log(std::max(y[j], 1e-300));
  }
  return ll;
}

// Perturbs one value with the SW mechanism and returns its report bucket.
size_t PerturbToBucket(const SquareWave& sw, double v, size_t d, Rng& rng) {
  const double report = sw.Perturb(v, rng);
  const double t = (report + sw.b()) / (1.0 + 2.0 * sw.b());
  const size_t j = static_cast<size_t>(std::clamp(t, 0.0, 1.0) *
                                       static_cast<double>(d));
  return std::min(j, d - 1);
}

TEST(Theorem56Test, EmBeatsTruthAndPerturbationsInLikelihood) {
  // EM converges to the MLE: its log-likelihood must dominate both the
  // (feasible) true distribution and random feasible perturbations of the
  // EM solution itself.
  const SquareWave sw = SquareWave::Make(1.0, 0.25).ValueOrDie();
  const size_t d = 32;
  const Matrix m = sw.TransitionMatrix(d, d);
  Rng rng(5);
  // Observations from a known input distribution.
  std::vector<double> truth(d, 0.0);
  truth[8] = 0.5;
  truth[20] = 0.3;
  truth[21] = 0.2;
  std::vector<uint64_t> counts(d, 0);
  for (int i = 0; i < 100000; ++i) {
    const size_t bucket = rng.Discrete(truth);
    const double v = (static_cast<double>(bucket) + rng.Uniform()) / d;
    counts[PerturbToBucket(sw, v, d, rng)] += 1;
  }
  EmOptions opts;
  opts.tol = 1e-9;
  opts.max_iterations = 50000;
  const EmResult em = EstimateEm(m, counts, opts).ValueOrDie();
  const double ll_em = LogLikelihood(m, counts, em.estimate);
  EXPECT_GE(ll_em, LogLikelihood(m, counts, truth) - 1e-6);
  for (int rep = 0; rep < 10; ++rep) {
    // Random feasible perturbation: mix with a random distribution.
    std::vector<double> other(d);
    double total = 0.0;
    for (double& v : other) {
      v = rng.Uniform();
      total += v;
    }
    for (size_t i = 0; i < d; ++i) {
      other[i] = 0.9 * em.estimate[i] + 0.1 * other[i] / total;
    }
    EXPECT_GE(ll_em, LogLikelihood(m, counts, other) - 1e-6) << rep;
  }
}

}  // namespace
}  // namespace numdist
