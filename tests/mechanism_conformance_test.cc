// Statistical conformance tier (ctest label: statistical): every randomized
// mechanism's empirical report distribution is tested against its analytic
// p/q channel with explicit false-positive budgets — chi-square GOF over
// report categories, exact binomial tests on channel probabilities, and
// DKW-based KS acceptance for the continuous Square Wave.
//
// Tolerance derivations and the budget accounting are documented in
// docs/STATISTICAL_TESTING.md. Per test the total false-positive budget is
// stats::kTestAlpha = 1e-6, Bonferroni-split across the test's assertions;
// seeds are fixed, so runs are deterministic — the statistics guarantee the
// fixed seed is overwhelmingly likely to be an unremarkable one, i.e. the
// assertions hold for ~every seed, not for one lucky seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "core/square_wave.h"
#include "fo/grr.h"
#include "fo/hash.h"
#include "fo/hrr.h"
#include "fo/olh.h"
#include "fo/oue.h"
#include "stats/conformance.h"

namespace numdist {
namespace {

using stats::BinomialTwoSidedP;
using stats::ChiSquareGof;
using stats::DkwEpsilon;
using stats::GofResult;
using stats::kTestAlpha;
using stats::PerAssertionAlpha;
using stats::SampleBudget;

TEST(MechanismConformanceTest, GrrChannelMatchesAnalyticPq) {
  const double epsilon = 1.0;
  const size_t domain = 16;
  const uint32_t v = 3;
  const uint64_t n = SampleBudget(200000);
  const double alpha = PerAssertionAlpha(kTestAlpha, 2);

  const Grr grr = Grr::Make(epsilon, domain).ValueOrDie();
  Rng rng(0x6121);
  std::vector<uint64_t> observed(domain, 0);
  for (uint64_t i = 0; i < n; ++i) ++observed[grr.Perturb(v, rng)];

  // Full report distribution: p at the true value, q elsewhere.
  std::vector<double> expected(domain, grr.q());
  expected[v] = grr.p();
  const GofResult gof = ChiSquareGof(observed, expected).ValueOrDie();
  EXPECT_GT(gof.p_value, alpha) << "chi-square statistic " << gof.statistic;

  // Truth-retention probability, exactly binomial.
  EXPECT_GT(BinomialTwoSidedP(observed[v], n, grr.p()), alpha);
}

TEST(MechanismConformanceTest, OlhSupportProbabilitiesAreExact) {
  const double epsilon = 1.0;
  const size_t domain = 32;
  const uint32_t v = 7;
  const uint32_t w = 20;  // arbitrary non-true value
  const uint64_t n = SampleBudget(120000);
  const double alpha = PerAssertionAlpha(kTestAlpha, 2);

  const Olh olh = Olh::Make(epsilon, domain).ValueOrDie();
  Rng rng(0x01b4);
  uint64_t support_true = 0;
  uint64_t support_other = 0;
  for (uint64_t i = 0; i < n; ++i) {
    const OlhReport report = olh.Perturb(v, rng);
    if (report.y == OlhHash(report.seed, v, olh.g())) ++support_true;
    if (report.y == OlhHash(report.seed, w, olh.g())) ++support_other;
  }

  // The true value supports its report with the GRR retain probability p on
  // the hashed domain; any other value with probability exactly 1/g
  // (averaging hash collisions against GRR flips — see
  // docs/STATISTICAL_TESTING.md §2).
  EXPECT_GT(BinomialTwoSidedP(support_true, n, olh.p()), alpha);
  EXPECT_GT(BinomialTwoSidedP(support_other, n, 1.0 / olh.g()), alpha);
}

TEST(MechanismConformanceTest, OueBitFlipProbabilitiesAreExact) {
  const double epsilon = 1.0;
  const size_t domain = 16;
  const uint32_t v = 5;
  const uint64_t n = SampleBudget(60000);
  // One exact binomial per bit position.
  const double alpha = PerAssertionAlpha(kTestAlpha, domain);

  const Oue oue = Oue::Make(epsilon, domain).ValueOrDie();
  Rng rng(0x07e5);
  std::vector<uint64_t> ones(domain, 0);
  for (uint64_t i = 0; i < n; ++i) {
    const std::vector<uint8_t> bits = oue.Perturb(v, rng);
    for (size_t j = 0; j < domain; ++j) ones[j] += bits[j];
  }

  for (size_t j = 0; j < domain; ++j) {
    const double p = j == v ? oue.p() : oue.q();
    EXPECT_GT(BinomialTwoSidedP(ones[j], n, p), alpha) << "bit " << j;
  }
}

TEST(MechanismConformanceTest, HrrColumnAndFlipChannels) {
  const double epsilon = 1.0;
  const size_t domain = 16;
  const uint32_t v = 9;
  const uint64_t n = SampleBudget(150000);
  const double alpha = PerAssertionAlpha(kTestAlpha, 2);

  const Hrr hrr = Hrr::Make(epsilon, domain).ValueOrDie();
  Rng rng(0x4242);
  std::vector<uint64_t> column_counts(hrr.order(), 0);
  uint64_t unflipped = 0;
  for (uint64_t i = 0; i < n; ++i) {
    const HrrReport report = hrr.Perturb(v, rng);
    ++column_counts[report.col];
    if (report.bit == HadamardEntry(v, report.col)) ++unflipped;
  }

  // The sampled column is uniform over the Hadamard order.
  const std::vector<double> uniform(hrr.order(), 1.0 / hrr.order());
  const GofResult gof = ChiSquareGof(column_counts, uniform).ValueOrDie();
  EXPECT_GT(gof.p_value, alpha) << "chi-square statistic " << gof.statistic;

  // The entry survives unflipped with probability exactly p.
  EXPECT_GT(BinomialTwoSidedP(unflipped, n, hrr.p()), alpha);
}

TEST(MechanismConformanceTest, SquareWaveContinuousChannel) {
  const double epsilon = 1.0;
  const double v = 0.3;
  const uint64_t n = SampleBudget(150000);
  const double alpha = PerAssertionAlpha(kTestAlpha, 3);

  const SquareWave sw = SquareWave::Make(epsilon).ValueOrDie();
  const double b = sw.b();
  Rng rng(0x5157);
  std::vector<double> reports;
  reports.reserve(n);
  uint64_t in_window = 0;
  for (uint64_t i = 0; i < n; ++i) {
    const double r = sw.Perturb(v, rng);
    ASSERT_GE(r, -b - 1e-12);
    ASSERT_LE(r, 1.0 + b + 1e-12);
    reports.push_back(r);
    if (r >= v - b && r <= v + b) ++in_window;
  }

  // (1) The wave carries total mass 2b * p.
  EXPECT_GT(BinomialTwoSidedP(in_window, n, 2.0 * b * sw.p()), alpha);

  // (2) The full empirical CDF stays within the DKW radius of the analytic
  // CDF F(t) = q (t + b) + (p - q) overlap([v-b, v+b], (-inf, t]).
  const auto cdf = [&](double t) {
    const double overlap = std::clamp(t - (v - b), 0.0, 2.0 * b);
    return sw.q() * (t + b) + (sw.p() - sw.q()) * overlap;
  };
  std::sort(reports.begin(), reports.end());
  double ks = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    const double f = cdf(reports[i]);
    ks = std::max(ks, std::fabs(f - static_cast<double>(i) / n));
    ks = std::max(ks, std::fabs(f - static_cast<double>(i + 1) / n));
  }
  EXPECT_LE(ks, DkwEpsilon(n, alpha));

  // (3) Bucketized view: chi-square against exact per-bucket masses.
  const size_t cells = 64;
  std::vector<uint64_t> observed(cells, 0);
  const double span = 1.0 + 2.0 * b;
  for (double r : reports) {
    const double t = std::clamp((r + b) / span, 0.0, 1.0);
    observed[std::min<size_t>(static_cast<size_t>(t * cells), cells - 1)]++;
  }
  std::vector<double> expected(cells);
  for (size_t j = 0; j < cells; ++j) {
    const double lo = -b + span * static_cast<double>(j) / cells;
    const double hi = -b + span * static_cast<double>(j + 1) / cells;
    expected[j] = cdf(hi) - cdf(lo);
  }
  const GofResult gof = ChiSquareGof(observed, expected).ValueOrDie();
  EXPECT_GT(gof.p_value, alpha) << "chi-square statistic " << gof.statistic;
}

// ---- Bulk-encode paths. GRR, OLH, and the discrete Square Wave batch
// encoders use a single-draw sampling scheme (the accept decision and the
// reject category derive from one draw, mapped through the dispatched SIMD
// kernels) whose draw order differs from the per-value Perturb loop. The
// channel they realize must still be the analytic one — these tests repeat
// the per-value channel checks against PerturbBatch.

TEST(MechanismConformanceTest, GrrBatchChannelMatchesAnalyticPq) {
  const double epsilon = 1.0;
  const size_t domain = 16;
  const uint32_t v = 3;
  const uint64_t n = SampleBudget(200000);
  const double alpha = PerAssertionAlpha(kTestAlpha, 2);

  const Grr grr = Grr::Make(epsilon, domain).ValueOrDie();
  Rng rng(0x6b21);
  const std::vector<uint32_t> values(n, v);
  std::vector<uint32_t> reports(n);
  grr.PerturbBatch(values, rng, reports.data());
  std::vector<uint64_t> observed(domain, 0);
  for (uint32_t r : reports) {
    ASSERT_LT(r, domain);
    ++observed[r];
  }

  std::vector<double> expected(domain, grr.q());
  expected[v] = grr.p();
  const GofResult gof = ChiSquareGof(observed, expected).ValueOrDie();
  EXPECT_GT(gof.p_value, alpha) << "chi-square statistic " << gof.statistic;
  EXPECT_GT(BinomialTwoSidedP(observed[v], n, grr.p()), alpha);
}

TEST(MechanismConformanceTest, OlhBatchSupportProbabilitiesAreExact) {
  const double epsilon = 1.0;
  const size_t domain = 32;
  const uint32_t v = 7;
  const uint32_t w = 20;  // arbitrary non-true value
  const uint64_t n = SampleBudget(120000);
  const double alpha = PerAssertionAlpha(kTestAlpha, 2);

  const Olh olh = Olh::Make(epsilon, domain).ValueOrDie();
  Rng rng(0x01c7);
  const std::vector<uint32_t> values(n, v);
  std::vector<FoReport> reports(n);
  olh.PerturbBatch(values, rng, reports.data());
  uint64_t support_true = 0;
  uint64_t support_other = 0;
  for (const FoReport& report : reports) {
    ASSERT_LT(report.value, olh.g());
    if (report.value == OlhHash(report.seed, v, olh.g())) ++support_true;
    if (report.value == OlhHash(report.seed, w, olh.g())) ++support_other;
  }

  EXPECT_GT(BinomialTwoSidedP(support_true, n, olh.p()), alpha);
  EXPECT_GT(BinomialTwoSidedP(support_other, n, 1.0 / olh.g()), alpha);
}

TEST(MechanismConformanceTest, DiscreteSquareWaveBatchChannel) {
  const double epsilon = 1.0;
  const size_t d = 16;
  const uint32_t v = 11;
  const uint64_t n = SampleBudget(120000);
  const double alpha = PerAssertionAlpha(kTestAlpha, 1);

  const DiscreteSquareWave dsw = DiscreteSquareWave::Make(epsilon, d)
                                     .ValueOrDie();
  Rng rng(0xd52);
  const std::vector<uint32_t> values(n, v);
  std::vector<uint32_t> reports(n);
  dsw.PerturbBatch(values, rng, reports.data());
  std::vector<uint64_t> observed(dsw.output_domain(), 0);
  for (uint32_t r : reports) {
    ASSERT_LT(r, dsw.output_domain());
    ++observed[r];
  }

  std::vector<double> expected(dsw.output_domain());
  for (uint32_t j = 0; j < dsw.output_domain(); ++j) {
    expected[j] = dsw.Probability(v, j);
  }
  const GofResult gof = ChiSquareGof(observed, expected).ValueOrDie();
  EXPECT_GT(gof.p_value, alpha) << "chi-square statistic " << gof.statistic;
}

TEST(MechanismConformanceTest, DiscreteSquareWaveChannel) {
  const double epsilon = 1.0;
  const size_t d = 16;
  const uint32_t v = 11;
  const uint64_t n = SampleBudget(120000);
  const double alpha = PerAssertionAlpha(kTestAlpha, 1);

  const DiscreteSquareWave dsw = DiscreteSquareWave::Make(epsilon, d)
                                     .ValueOrDie();
  Rng rng(0xd51);
  std::vector<uint64_t> observed(dsw.output_domain(), 0);
  for (uint64_t i = 0; i < n; ++i) ++observed[dsw.Perturb(v, rng)];

  std::vector<double> expected(dsw.output_domain());
  for (uint32_t j = 0; j < dsw.output_domain(); ++j) {
    expected[j] = dsw.Probability(v, j);
  }
  const GofResult gof = ChiSquareGof(observed, expected).ValueOrDie();
  EXPECT_GT(gof.p_value, alpha) << "chi-square statistic " << gof.statistic;
}

}  // namespace
}  // namespace numdist
