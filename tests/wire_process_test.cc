// Cross-process determinism (the acceptance invariant of the wire +
// collector stack): N real child OS processes — report_client fleets piped
// into collector_cli daemons — produce sketch files whose merged
// reconstruction is byte-identical to a single-process sharded run with
// the same seed, and the coordinator CLI prints the same estimate in any
// merge order. Tool locations come from CMake (NUMDIST_*_PATH); the test
// self-skips when the tools were not built.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "data/datasets.h"
#include "protocol/sharded.h"
#include "serve/collector.h"
#include "serve/framing.h"
#include "wire/wire.h"

namespace numdist {
namespace {

#if defined(NUMDIST_COLLECTOR_CLI_PATH) && defined(NUMDIST_REPORT_CLIENT_PATH)

std::vector<double> TestValues(size_t n) { return GoldenRatioValues(n); }

std::string WriteValuesFile(const std::vector<double>& values) {
  const std::string path = testing::TempDir() + "wire_process_values.csv";
  std::ofstream out(path);
  for (double v : values) {
    char buf[64];
    snprintf(buf, sizeof(buf), "%.17g\n", v);
    out << buf;
  }
  EXPECT_TRUE(out.good());
  return path;
}

// Runs a shell pipeline; returns its exit code.
int RunPipeline(const std::string& command) {
  const int rc = std::system(command.c_str());
  return rc;
}

// Captures stdout of a command via popen.
std::string RunAndCapture(const std::string& command) {
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << command;
  if (pipe == nullptr) return "";
  std::string output;
  char buf[4096];
  size_t got = 0;
  while ((got = fread(buf, 1, sizeof(buf), pipe)) > 0) {
    output.append(buf, got);
  }
  EXPECT_EQ(pclose(pipe), 0) << command;
  return output;
}

struct ProcessRunConfig {
  std::string method;
  double epsilon = 1.0;
  size_t buckets = 64;
};

void RunCrossProcessCheck(const ProcessRunConfig& config) {
  const std::string collector = NUMDIST_COLLECTOR_CLI_PATH;
  const std::string client = NUMDIST_REPORT_CLIENT_PATH;
  const uint64_t seed = 7;
  const size_t shard_size = 4096;
  const size_t processes = 2;

  const std::vector<double> values = TestValues(20000);
  const std::string values_path = WriteValuesFile(values);

  // In-process sharded reference with the same seed and shard layout.
  const auto spec =
      wire::ParseMethodSpec(config.method, config.epsilon,
                            static_cast<uint32_t>(config.buckets))
          .ValueOrDie();
  auto protocol = wire::MakeProtocolForSpec(spec).ValueOrDie();
  ShardOptions opts;
  opts.shard_size = shard_size;
  opts.threads = 2;
  auto reference =
      RunProtocolSharded(*protocol, values, seed, opts).ValueOrDie();

  const std::string common_flags =
      " --method=" + config.method +
      " --epsilon=" + std::to_string(config.epsilon) +
      " --buckets=" + std::to_string(config.buckets);

  // Child process pairs: client k of P | collector k -> sketch file k.
  std::vector<std::string> sketch_paths;
  for (size_t k = 0; k < processes; ++k) {
    const std::string sketch_path = testing::TempDir() + "wire_process_" +
                                    config.method + "_" + std::to_string(k) +
                                    ".sketch";
    sketch_paths.push_back(sketch_path);
    const std::string command =
        "'" + client + "'" + common_flags + " --input='" + values_path +
        "'" + " --seed=" + std::to_string(seed) +
        " --shard-size=" + std::to_string(shard_size) +
        " --offset=" + std::to_string(k) +
        " --stride=" + std::to_string(processes) + " 2>/dev/null | '" +
        collector + "'" + common_flags + " --out='" + sketch_path +
        "' 2>/dev/null";
    ASSERT_EQ(RunPipeline(command), 0) << command;
  }

  // Coordinator (in-process): merge the children's sketch files.
  auto coordinator = serve::CollectorSession::Make(spec).ValueOrDie();
  for (const std::string& path : sketch_paths) {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << path;
    std::string frame;
    bool eof = false;
    ASSERT_TRUE(serve::ReadFrame(in, &frame, &eof).ok()) << path;
    ASSERT_FALSE(eof) << path;
    ASSERT_TRUE(coordinator.HandleFrame(frame).ok()) << path;
  }
  EXPECT_EQ(coordinator.num_reports(), values.size());
  auto merged = coordinator.Reconstruct().ValueOrDie();

  // Byte-identical to the single-process sharded run.
  ASSERT_EQ(merged.distribution.size(), reference.distribution.size());
  EXPECT_EQ(0, std::memcmp(merged.distribution.data(),
                           reference.distribution.data(),
                           reference.distribution.size() * sizeof(double)))
      << config.method;

  // Coordinator CLI agrees, and merge order does not matter.
  const std::string forward = RunAndCapture(
      "'" + collector + "'" + common_flags + " --merge='" + sketch_paths[0] +
      "," + sketch_paths[1] + "' --csv 2>/dev/null");
  const std::string reverse = RunAndCapture(
      "'" + collector + "'" + common_flags + " --merge='" + sketch_paths[1] +
      "," + sketch_paths[0] + "' --csv 2>/dev/null");
  EXPECT_EQ(forward, reverse) << config.method;

  // The CLI's printed distribution matches the in-process estimate exactly
  // (%.17g round-trips doubles).
  std::vector<double> printed;
  std::stringstream ss(forward);
  std::string line;
  std::getline(ss, line);  // header
  while (std::getline(ss, line)) {
    const size_t comma = line.find(',');
    ASSERT_NE(comma, std::string::npos) << line;
    printed.push_back(strtod(line.c_str() + comma + 1, nullptr));
  }
  ASSERT_EQ(printed.size(), merged.distribution.size()) << config.method;
  for (size_t i = 0; i < printed.size(); ++i) {
    EXPECT_EQ(printed[i], merged.distribution[i])
        << config.method << " bucket " << i;
  }

  std::remove(values_path.c_str());
  for (const std::string& path : sketch_paths) std::remove(path.c_str());
}

TEST(WireProcessTest, TwoChildProcessesMatchSingleProcessShardedRun) {
  RunCrossProcessCheck({.method = "sw-ems", .epsilon = 1.0, .buckets = 64});
}

TEST(WireProcessTest, CrossProcessOlhPipelineIsBitIdentical) {
  RunCrossProcessCheck(
      {.method = "cfo-olh-16", .epsilon = 1.0, .buckets = 64});
}

// A 2-level coordinator tree built from the real binaries: four leaf
// collectors, two interior --merge --emit-sketch coordinators, one root —
// the root's CSV and re-emitted sketch bytes must equal the flat
// single-coordinator merge of all four leaves.
TEST(WireProcessTest, TwoLevelCoordinatorTreeMatchesFlatMerge) {
  const std::string collector = NUMDIST_COLLECTOR_CLI_PATH;
  const std::string client = NUMDIST_REPORT_CLIENT_PATH;
  const std::string common_flags =
      " --method=sw-ems --epsilon=1.0 --buckets=64";
  const std::string tmp = testing::TempDir();

  const std::vector<double> values = TestValues(16000);
  const std::string values_path = WriteValuesFile(values);

  // Four leaf collectors over a 4-way shard partition.
  std::vector<std::string> leaves;
  for (size_t k = 0; k < 4; ++k) {
    const std::string sketch = tmp + "tree_leaf_" + std::to_string(k) +
                               ".sketch";
    leaves.push_back(sketch);
    const std::string command =
        "'" + client + "'" + common_flags + " --input='" + values_path +
        "' --seed=7 --shard-size=2048 --offset=" + std::to_string(k) +
        " --stride=4 2>/dev/null | '" + collector + "'" + common_flags +
        " --out='" + sketch + "' 2>/dev/null";
    ASSERT_EQ(RunPipeline(command), 0) << command;
  }

  // Interior coordinators re-emit merged sketches instead of estimating.
  const std::string left = tmp + "tree_left.sketch";
  const std::string right = tmp + "tree_right.sketch";
  ASSERT_EQ(RunPipeline("'" + collector + "'" + common_flags + " --merge='" +
                        leaves[0] + "," + leaves[1] +
                        "' --emit-sketch --out='" + left + "' 2>/dev/null"),
            0);
  ASSERT_EQ(RunPipeline("'" + collector + "'" + common_flags + " --merge='" +
                        leaves[2] + "," + leaves[3] +
                        "' --emit-sketch --out='" + right + "' 2>/dev/null"),
            0);

  // Root of the tree vs the flat merge: identical CSV estimates...
  const std::string tree_csv = RunAndCapture(
      "'" + collector + "'" + common_flags + " --merge='" + left + "," +
      right + "' --csv 2>/dev/null");
  const std::string flat_csv = RunAndCapture(
      "'" + collector + "'" + common_flags + " --merge='" + leaves[0] + "," +
      leaves[1] + "," + leaves[2] + "," + leaves[3] + "' --csv 2>/dev/null");
  EXPECT_FALSE(tree_csv.empty());
  EXPECT_EQ(tree_csv, flat_csv);

  // ...and byte-identical re-emitted root sketch files.
  const std::string tree_root = tmp + "tree_root.sketch";
  const std::string flat_root = tmp + "tree_flat.sketch";
  ASSERT_EQ(RunPipeline("'" + collector + "'" + common_flags + " --merge='" +
                        left + "," + right + "' --emit-sketch --out='" +
                        tree_root + "' 2>/dev/null"),
            0);
  ASSERT_EQ(RunPipeline("'" + collector + "'" + common_flags + " --merge='" +
                        leaves[0] + "," + leaves[1] + "," + leaves[2] + "," +
                        leaves[3] + "' --emit-sketch --out='" + flat_root +
                        "' 2>/dev/null"),
            0);
  std::ifstream a(tree_root, std::ios::binary);
  std::ifstream b(flat_root, std::ios::binary);
  const std::string a_bytes((std::istreambuf_iterator<char>(a)),
                            std::istreambuf_iterator<char>());
  const std::string b_bytes((std::istreambuf_iterator<char>(b)),
                            std::istreambuf_iterator<char>());
  ASSERT_FALSE(a_bytes.empty());
  EXPECT_EQ(a_bytes, b_bytes);

  std::remove(values_path.c_str());
  for (const std::string& path :
       {leaves[0], leaves[1], leaves[2], leaves[3], left, right, tree_root,
        flat_root}) {
    std::remove(path.c_str());
  }
}

#else

TEST(WireProcessTest, SkippedWithoutTools) {
  GTEST_SKIP() << "collector_cli / report_client were not built "
                  "(NUMDIST_BUILD_TOOLS=OFF)";
}

#endif

}  // namespace
}  // namespace numdist
