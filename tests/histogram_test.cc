#include "common/histogram.h"

#include <gtest/gtest.h>

namespace numdist {
namespace {

TEST(HistogramTest, BucketOfBasics) {
  EXPECT_EQ(hist::BucketOf(0.0, 4), 0u);
  EXPECT_EQ(hist::BucketOf(0.24, 4), 0u);
  EXPECT_EQ(hist::BucketOf(0.25, 4), 1u);
  EXPECT_EQ(hist::BucketOf(0.5, 4), 2u);
  EXPECT_EQ(hist::BucketOf(0.99, 4), 3u);
}

TEST(HistogramTest, BucketOfClosesLastBucket) {
  EXPECT_EQ(hist::BucketOf(1.0, 4), 3u);
}

TEST(HistogramTest, BucketOfClampsOutOfRange) {
  EXPECT_EQ(hist::BucketOf(-0.5, 8), 0u);
  EXPECT_EQ(hist::BucketOf(1.5, 8), 7u);
}

TEST(HistogramTest, BucketOfCustomRange) {
  EXPECT_EQ(hist::BucketOf(15.0, 10, 10.0, 20.0), 5u);
  EXPECT_EQ(hist::BucketOf(10.0, 10, 10.0, 20.0), 0u);
  EXPECT_EQ(hist::BucketOf(20.0, 10, 10.0, 20.0), 9u);
}

TEST(HistogramTest, BucketCenter) {
  EXPECT_DOUBLE_EQ(hist::BucketCenter(0, 4), 0.125);
  EXPECT_DOUBLE_EQ(hist::BucketCenter(3, 4), 0.875);
}

TEST(HistogramTest, CountsSumToN) {
  const std::vector<double> values = {0.1, 0.1, 0.6, 0.9, 0.95};
  const std::vector<uint64_t> counts = hist::Counts(values, 4);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 2u);
}

TEST(HistogramTest, FromSamplesIsNormalized) {
  const std::vector<double> values = {0.1, 0.3, 0.6, 0.9};
  const std::vector<double> freq = hist::FromSamples(values, 4);
  EXPECT_TRUE(hist::IsDistribution(freq));
  EXPECT_DOUBLE_EQ(freq[0], 0.25);
}

TEST(HistogramTest, FromSamplesEmpty) {
  const std::vector<double> freq = hist::FromSamples({}, 4);
  EXPECT_EQ(freq.size(), 4u);
  EXPECT_DOUBLE_EQ(hist::Sum(freq), 0.0);
}

TEST(HistogramTest, NormalizeMakesSumOne) {
  std::vector<double> x = {1.0, 3.0};
  hist::Normalize(&x);
  EXPECT_DOUBLE_EQ(x[0], 0.25);
  EXPECT_DOUBLE_EQ(x[1], 0.75);
}

TEST(HistogramTest, NormalizeZeroVectorIsNoOp) {
  std::vector<double> x = {0.0, 0.0};
  hist::Normalize(&x);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
  EXPECT_DOUBLE_EQ(x[1], 0.0);
}

TEST(HistogramTest, CdfIsPrefixSum) {
  const std::vector<double> cdf = hist::Cdf({0.1, 0.2, 0.3, 0.4});
  EXPECT_DOUBLE_EQ(cdf[0], 0.1);
  EXPECT_DOUBLE_EQ(cdf[1], 0.3);
  EXPECT_DOUBLE_EQ(cdf[2], 0.6);
  EXPECT_DOUBLE_EQ(cdf[3], 1.0);
}

TEST(HistogramTest, IsDistributionAcceptsValid) {
  EXPECT_TRUE(hist::IsDistribution({0.5, 0.5}));
  EXPECT_TRUE(hist::IsDistribution({1.0, 0.0}));
}

TEST(HistogramTest, IsDistributionRejectsNegative) {
  EXPECT_FALSE(hist::IsDistribution({1.1, -0.1}));
}

TEST(HistogramTest, IsDistributionRejectsWrongSum) {
  EXPECT_FALSE(hist::IsDistribution({0.5, 0.4}));
}

TEST(HistogramTest, IsDistributionToleratesRoundoff) {
  EXPECT_TRUE(hist::IsDistribution({0.5, 0.5 + 1e-12}));
}

}  // namespace
}  // namespace numdist
