// In-process tests of the deterministic fault-injection layer
// (net/fault.h): plan determinism, the per-kind writer behavior over a
// real socketpair, and the typed injected-fault taxonomy the retry layer
// keys on. The cross-process scenarios that compose these faults with a
// live collector are tests/chaos_process_test.cc.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>
#include <vector>

#include "net/fault.h"

namespace numdist::net {
namespace {

// A connected AF_UNIX stream pair; the test writes through a FaultyWriter
// on one end and reads the wire truth from the other.
struct SocketPair {
  Fd a, b;
  SocketPair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a.reset(fds[0]);
    b.reset(fds[1]);
  }
};

std::string DrainAll(int fd) {
  std::string got;
  char buf[4096];
  for (;;) {
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // ECONNRESET after an injected RST is a valid end
    }
    if (n == 0) break;
    got.append(buf, static_cast<size_t>(n));
  }
  return got;
}

TEST(FaultPlanTest, SeededPlansAreReproducibleAndSorted) {
  const FaultPlan p1 = FaultPlan::FromSeed(42, /*faulty_attempts=*/5, 10000);
  const FaultPlan p2 = FaultPlan::FromSeed(42, /*faulty_attempts=*/5, 10000);
  for (uint32_t attempt = 0; attempt < 5; ++attempt) {
    const std::vector<FaultEvent> e1 = p1.Events(attempt);
    const std::vector<FaultEvent> e2 = p2.Events(attempt);
    ASSERT_EQ(e1.size(), e2.size());
    ASSERT_EQ(e1.size(), 1u);
    EXPECT_EQ(e1[0].kind, e2[0].kind);
    EXPECT_EQ(e1[0].at_byte, e2[0].at_byte);
    EXPECT_GE(e1[0].at_byte, 1u);
    EXPECT_LT(e1[0].at_byte, 10000u);
  }
  // Attempts past the scripted ones are clean.
  EXPECT_TRUE(p1.Events(5).empty());
  // A different seed scripts a different plan (somewhere in 5 attempts).
  const FaultPlan p3 = FaultPlan::FromSeed(43, 5, 10000);
  bool differs = false;
  for (uint32_t attempt = 0; attempt < 5 && !differs; ++attempt) {
    const auto a = p1.Events(attempt), b = p3.Events(attempt);
    differs = a[0].at_byte != b[0].at_byte || a[0].kind != b[0].kind;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlanTest, EventsReturnSortedByOffset) {
  FaultPlan plan;
  plan.Add(0, {.kind = FaultKind::kDelay, .at_byte = 500, .param = 1});
  plan.Add(0, {.kind = FaultKind::kDrop, .at_byte = 100, .param = 4});
  plan.Add(0, {.kind = FaultKind::kShortWrite, .at_byte = 300, .param = 0});
  const std::vector<FaultEvent> events = plan.Events(0);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].at_byte, 100u);
  EXPECT_EQ(events[1].at_byte, 300u);
  EXPECT_EQ(events[2].at_byte, 500u);
}

TEST(FaultyWriterTest, CleanPlanWritesVerbatim) {
  SocketPair pair;
  FaultyWriter writer(&pair.a, nullptr, 0);
  const std::string payload(1000, 'x');
  ASSERT_TRUE(writer.Write(payload).ok());
  EXPECT_EQ(writer.offset(), payload.size());
  EXPECT_EQ(writer.injected(), 0u);
  pair.a.reset();
  EXPECT_EQ(DrainAll(pair.b.get()), payload);
}

TEST(FaultyWriterTest, DropDiscardsExactlyTheScriptedRange) {
  SocketPair pair;
  FaultPlan plan;
  plan.Add(0, {.kind = FaultKind::kDrop, .at_byte = 10, .param = 5});
  FaultyWriter writer(&pair.a, &plan, 0);
  std::string payload;
  for (char c = 'a'; c <= 'z'; ++c) payload.push_back(c);
  ASSERT_TRUE(writer.Write(payload).ok());
  // The logical offset covers dropped bytes — the plan addresses the
  // stream the sender MEANT to send.
  EXPECT_EQ(writer.offset(), payload.size());
  EXPECT_EQ(writer.injected(), 1u);
  pair.a.reset();
  EXPECT_EQ(DrainAll(pair.b.get()), "abcdefghijpqrstuvwxyz");
}

TEST(FaultyWriterTest, TruncateStopsMidStreamWithTypedError) {
  SocketPair pair;
  FaultPlan plan;
  plan.Add(0, {.kind = FaultKind::kTruncate, .at_byte = 7});
  FaultyWriter writer(&pair.a, &plan, 0);
  const Status st = writer.Write("0123456789");
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(IsInjectedFault(st)) << st.ToString();
  EXPECT_NE(st.message().find("truncation at byte 7"), std::string::npos)
      << st.ToString();
  // The receiver got a clean FIN after exactly 7 bytes: the mid-frame
  // truncation shape the torn-tail taxonomy diagnoses.
  EXPECT_EQ(DrainAll(pair.b.get()), "0123456");
}

TEST(FaultyWriterTest, ResetClosesTheFdWithTypedError) {
  SocketPair pair;
  FaultPlan plan;
  plan.Add(0, {.kind = FaultKind::kReset, .at_byte = 3});
  FaultyWriter writer(&pair.a, &plan, 0);
  const Status st = writer.Write("0123456789");
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(IsInjectedFault(st)) << st.ToString();
  EXPECT_NE(st.message().find("reset at byte 3"), std::string::npos);
  EXPECT_FALSE(pair.a.valid()) << "reset must close the fd";
}

TEST(FaultyWriterTest, FaultsFireAcrossSplitWrites) {
  // The at_byte offsets address the cumulative stream, not any single
  // Write call: a drop scripted at byte 10 fires even when the writes
  // arrive one byte at a time.
  SocketPair pair;
  FaultPlan plan;
  plan.Add(0, {.kind = FaultKind::kDrop, .at_byte = 10, .param = 5});
  FaultyWriter writer(&pair.a, &plan, 0);
  std::string payload;
  for (char c = 'a'; c <= 'z'; ++c) payload.push_back(c);
  for (const char c : payload) {
    ASSERT_TRUE(writer.Write(std::string_view(&c, 1)).ok());
  }
  pair.a.reset();
  EXPECT_EQ(DrainAll(pair.b.get()), "abcdefghijpqrstuvwxyz");
}

TEST(FaultyWriterTest, AttemptSelectsItsOwnScript) {
  FaultPlan plan;
  plan.Add(1, {.kind = FaultKind::kReset, .at_byte = 2});
  {
    // Attempt 0 has no script: the write is clean.
    SocketPair pair;
    FaultyWriter writer(&pair.a, &plan, 0);
    EXPECT_TRUE(writer.Write("hello").ok());
  }
  {
    SocketPair pair;
    FaultyWriter writer(&pair.a, &plan, 1);
    EXPECT_FALSE(writer.Write("hello").ok());
  }
}

TEST(ReorderFramesTest, SeededShuffleIsAPureFunctionOfTheSeed) {
  std::vector<std::string> frames1, frames2;
  for (int i = 0; i < 16; ++i) {
    frames1.push_back("frame-" + std::to_string(i));
    frames2.push_back("frame-" + std::to_string(i));
  }
  const std::vector<std::string> original = frames1;
  ReorderFrames(frames1, 77);
  ReorderFrames(frames2, 77);
  EXPECT_EQ(frames1, frames2);
  EXPECT_NE(frames1, original) << "a 16-element shuffle staying identity "
                                  "is a broken generator, not luck";
  // Same multiset, different order.
  std::vector<std::string> sorted1 = frames1, sorted2 = original;
  std::sort(sorted1.begin(), sorted1.end());
  std::sort(sorted2.begin(), sorted2.end());
  EXPECT_EQ(sorted1, sorted2);
}

TEST(InjectedFaultTest, OnlyInjectedErrorsMatchTheTaxonomy) {
  EXPECT_FALSE(IsInjectedFault(Status::OK()));
  EXPECT_FALSE(IsInjectedFault(Status::Internal("net: send failed (EPIPE)")));
  EXPECT_TRUE(IsInjectedFault(
      Status::Internal("fault: injected connection reset at byte 9")));
}

}  // namespace
}  // namespace numdist::net
