#include "core/square_wave.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/bandwidth.h"
#include "core/transition.h"

namespace numdist {
namespace {

TEST(SquareWaveTest, MakeValidation) {
  EXPECT_FALSE(SquareWave::Make(0.0).ok());
  EXPECT_FALSE(SquareWave::Make(-1.0).ok());
  EXPECT_FALSE(SquareWave::Make(1.0, 1.5).ok());
  EXPECT_FALSE(SquareWave::Make(1.0, 0.0).ok());
  EXPECT_TRUE(SquareWave::Make(1.0).ok());
  EXPECT_TRUE(SquareWave::Make(1.0, 0.3).ok());
}

TEST(SquareWaveTest, DefaultBandwidthIsOptimal) {
  const SquareWave sw = SquareWave::Make(1.0).ValueOrDie();
  EXPECT_DOUBLE_EQ(sw.b(), OptimalBandwidth(1.0));
}

TEST(SquareWaveTest, DensitiesMatchFormula) {
  const double eps = 1.5;
  const double b = 0.2;
  const SquareWave sw = SquareWave::Make(eps, b).ValueOrDie();
  const double e = std::exp(eps);
  EXPECT_NEAR(sw.p(), e / (2 * b * e + 1), 1e-12);
  EXPECT_NEAR(sw.q(), 1.0 / (2 * b * e + 1), 1e-12);
  EXPECT_NEAR(sw.p() / sw.q(), e, 1e-9);
}

TEST(SquareWaveTest, DensityIntegratesToOne) {
  const SquareWave sw = SquareWave::Make(1.0, 0.25).ValueOrDie();
  for (double v : {0.0, 0.3, 0.5, 1.0}) {
    // total mass = p * 2b + q * (1 + 2b - 2b) = 1
    const double total = sw.p() * 2 * sw.b() + sw.q() * 1.0;
    EXPECT_NEAR(total, 1.0, 1e-12) << "v=" << v;
  }
}

TEST(SquareWaveTest, DensityShape) {
  const SquareWave sw = SquareWave::Make(1.0, 0.25).ValueOrDie();
  const double v = 0.4;
  EXPECT_DOUBLE_EQ(sw.Density(v, v), sw.p());
  EXPECT_DOUBLE_EQ(sw.Density(v, v + 0.24), sw.p());
  EXPECT_DOUBLE_EQ(sw.Density(v, v + 0.26), sw.q());
  EXPECT_DOUBLE_EQ(sw.Density(v, -0.2), sw.q());
  EXPECT_DOUBLE_EQ(sw.Density(v, -0.3), 0.0);   // outside output domain
  EXPECT_DOUBLE_EQ(sw.Density(v, 1.3), 0.0);
}

TEST(SquareWaveTest, SatisfiesLdpDensityRatio) {
  // For every output, the density ratio across any two inputs is <= e^eps.
  const double eps = 1.0;
  const SquareWave sw = SquareWave::Make(eps, 0.3).ValueOrDie();
  const double bound = std::exp(eps) + 1e-9;
  for (double v1 = 0.0; v1 <= 1.0; v1 += 0.1) {
    for (double v2 = 0.0; v2 <= 1.0; v2 += 0.1) {
      for (double out = -0.3; out <= 1.3; out += 0.05) {
        const double d1 = sw.Density(v1, out);
        const double d2 = sw.Density(v2, out);
        if (d2 > 0.0) {
          EXPECT_LE(d1 / d2, bound)
              << "v1=" << v1 << " v2=" << v2 << " out=" << out;
        } else {
          EXPECT_EQ(d1, 0.0);  // support must be identical
        }
      }
    }
  }
}

TEST(SquareWaveTest, PerturbStaysInOutputDomain) {
  const SquareWave sw = SquareWave::Make(1.0, 0.25).ValueOrDie();
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    const double v = static_cast<double>(i % 100) / 99.0;
    const double out = sw.Perturb(v, rng);
    EXPECT_GE(out, -sw.b());
    EXPECT_LE(out, 1.0 + sw.b());
  }
}

TEST(SquareWaveTest, PerturbHitsWaveWithExpectedMass) {
  const SquareWave sw = SquareWave::Make(1.0, 0.25).ValueOrDie();
  Rng rng(12);
  const double v = 0.5;
  int in_wave = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (std::fabs(sw.Perturb(v, rng) - v) <= sw.b()) ++in_wave;
  }
  EXPECT_NEAR(static_cast<double>(in_wave) / n, 2 * sw.b() * sw.p(), 0.005);
}

TEST(SquareWaveTest, PerturbEmpiricalHistogramMatchesDensity) {
  const SquareWave sw = SquareWave::Make(1.0, 0.25).ValueOrDie();
  Rng rng(13);
  const double v = 0.3;
  const int n = 300000;
  const int bins = 30;
  const double lo = -sw.b();
  const double span = 1.0 + 2 * sw.b();
  std::vector<int> counts(bins, 0);
  for (int i = 0; i < n; ++i) {
    const double out = sw.Perturb(v, rng);
    int bin = static_cast<int>((out - lo) / span * bins);
    if (bin >= bins) bin = bins - 1;
    ++counts[bin];
  }
  for (int bin = 0; bin < bins; ++bin) {
    const double a = lo + span * bin / bins;
    const double c = a + span / bins;
    // Expected mass: integrate the piecewise-constant density over the bin.
    const double inside =
        std::max(0.0, std::min(c, v + sw.b()) - std::max(a, v - sw.b()));
    const double expected = sw.p() * inside + sw.q() * ((c - a) - inside);
    EXPECT_NEAR(static_cast<double>(counts[bin]) / n, expected, 0.004)
        << "bin=" << bin;
  }
}

TEST(SquareWaveTest, TransitionColumnsSumToOne) {
  const SquareWave sw = SquareWave::Make(1.0).ValueOrDie();
  const Matrix m = sw.TransitionMatrix(64, 64);
  EXPECT_TRUE(ValidateTransitionMatrix(m).ok());
}

TEST(SquareWaveTest, TransitionRectangularShapes) {
  const SquareWave sw = SquareWave::Make(0.5).ValueOrDie();
  const Matrix m = sw.TransitionMatrix(32, 48);
  EXPECT_EQ(m.rows(), 48u);
  EXPECT_EQ(m.cols(), 32u);
  EXPECT_TRUE(ValidateTransitionMatrix(m).ok());
}

TEST(SquareWaveTest, TransitionMatchesEmpiricalSampling) {
  const SquareWave sw = SquareWave::Make(1.0, 0.25).ValueOrDie();
  const size_t d = 8;
  const Matrix m = sw.TransitionMatrix(d, d);
  Rng rng(14);
  const size_t i = 3;  // input bucket [3/8, 4/8)
  const int n = 400000;
  std::vector<double> reports;
  reports.reserve(n);
  for (int k = 0; k < n; ++k) {
    const double v = (static_cast<double>(i) + rng.Uniform()) / d;
    reports.push_back(sw.Perturb(v, rng));
  }
  const std::vector<uint64_t> counts = sw.BucketizeReports(reports, d);
  for (size_t j = 0; j < d; ++j) {
    EXPECT_NEAR(static_cast<double>(counts[j]) / n, m(j, i), 0.004)
        << "j=" << j;
  }
}

TEST(SquareWaveTest, BucketizeReportsClampsEdges) {
  const SquareWave sw = SquareWave::Make(1.0, 0.25).ValueOrDie();
  const std::vector<double> reports = {-0.25, 1.25, 0.5};
  const std::vector<uint64_t> counts = sw.BucketizeReports(reports, 4);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(counts[1] + counts[2], 1u);
}

// ------------------------------------------------------- Discrete SW --

TEST(DiscreteSquareWaveTest, MakeValidation) {
  EXPECT_FALSE(DiscreteSquareWave::Make(0.0, 16).ok());
  EXPECT_FALSE(DiscreteSquareWave::Make(1.0, 1).ok());
  EXPECT_FALSE(DiscreteSquareWave::Make(1.0, 16, 16).ok());
  EXPECT_TRUE(DiscreteSquareWave::Make(1.0, 16).ok());
  EXPECT_TRUE(DiscreteSquareWave::Make(1.0, 16, 0).ok());  // degenerates to GRR
}

TEST(DiscreteSquareWaveTest, ProbabilitiesMatchFormula) {
  const double eps = 1.0;
  const size_t d = 32;
  const size_t b = 4;
  const DiscreteSquareWave dsw =
      DiscreteSquareWave::Make(eps, d, b).ValueOrDie();
  const double e = std::exp(eps);
  const double denom = (2.0 * b + 1.0) * e + d - 1.0;
  EXPECT_NEAR(dsw.p(), e / denom, 1e-12);
  EXPECT_NEAR(dsw.q(), 1.0 / denom, 1e-12);
  // Total probability over the output domain.
  EXPECT_NEAR((2 * b + 1) * dsw.p() + (d - 1) * dsw.q(), 1.0, 1e-12);
}

TEST(DiscreteSquareWaveTest, DefaultBandwidthIsScaledContinuous) {
  const DiscreteSquareWave dsw =
      DiscreteSquareWave::Make(1.0, 1024).ValueOrDie();
  EXPECT_EQ(dsw.b(), DiscreteOptimalBandwidth(1.0, 1024));
}

TEST(DiscreteSquareWaveTest, PerturbStaysInOutputDomain) {
  const DiscreteSquareWave dsw =
      DiscreteSquareWave::Make(1.0, 16, 3).ValueOrDie();
  Rng rng(15);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(dsw.Perturb(i % 16, rng), dsw.output_domain());
  }
}

TEST(DiscreteSquareWaveTest, PerturbMatchesProbability) {
  const DiscreteSquareWave dsw =
      DiscreteSquareWave::Make(1.0, 8, 2).ValueOrDie();
  Rng rng(16);
  const uint32_t v = 3;
  std::vector<int> counts(dsw.output_domain(), 0);
  const int n = 400000;
  for (int i = 0; i < n; ++i) ++counts[dsw.Perturb(v, rng)];
  for (uint32_t out = 0; out < dsw.output_domain(); ++out) {
    EXPECT_NEAR(static_cast<double>(counts[out]) / n, dsw.Probability(v, out),
                0.004)
        << "out=" << out;
  }
}

TEST(DiscreteSquareWaveTest, TransitionColumnsSumToOne) {
  const DiscreteSquareWave dsw =
      DiscreteSquareWave::Make(1.0, 64).ValueOrDie();
  EXPECT_TRUE(ValidateTransitionMatrix(dsw.TransitionMatrix()).ok());
}

TEST(DiscreteSquareWaveTest, LdpRatioBound) {
  const double eps = 1.2;
  const DiscreteSquareWave dsw =
      DiscreteSquareWave::Make(eps, 16, 3).ValueOrDie();
  const double bound = std::exp(eps) + 1e-9;
  for (uint32_t v1 = 0; v1 < 16; ++v1) {
    for (uint32_t v2 = 0; v2 < 16; ++v2) {
      for (uint32_t out = 0; out < dsw.output_domain(); ++out) {
        EXPECT_LE(dsw.Probability(v1, out) / dsw.Probability(v2, out), bound);
      }
    }
  }
}

TEST(DiscreteSquareWaveTest, AggregateCountsReports) {
  const DiscreteSquareWave dsw =
      DiscreteSquareWave::Make(1.0, 4, 1).ValueOrDie();
  const std::vector<uint32_t> reports = {0, 1, 1, 5, 5, 5};
  const std::vector<uint64_t> counts = dsw.AggregateReports(reports);
  ASSERT_EQ(counts.size(), dsw.output_domain());
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[5], 3u);
}

// Zero-bandwidth discrete SW must coincide with GRR's distribution.
TEST(DiscreteSquareWaveTest, ZeroBandwidthEqualsGrr) {
  const double eps = 1.0;
  const size_t d = 8;
  const DiscreteSquareWave dsw =
      DiscreteSquareWave::Make(eps, d, 0).ValueOrDie();
  EXPECT_EQ(dsw.output_domain(), d);
  const double e = std::exp(eps);
  EXPECT_NEAR(dsw.p(), e / (e + d - 1), 1e-12);
  EXPECT_NEAR(dsw.q(), 1.0 / (e + d - 1), 1e-12);
}

}  // namespace
}  // namespace numdist
