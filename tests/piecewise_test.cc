#include "common/piecewise_linear.h"

#include <gtest/gtest.h>

#include <cmath>

namespace numdist {
namespace {

PiecewiseLinear MakeTriangle() {
  // Triangle on [-1, 1], peak 1 at 0; integral = 1.
  return PiecewiseLinear::Make({-1.0, 0.0, 1.0}, {0.0, 1.0, 0.0}).ValueOrDie();
}

TEST(PiecewiseLinearTest, MakeValidation) {
  EXPECT_FALSE(PiecewiseLinear::Make({0.0}, {1.0}).ok());
  EXPECT_FALSE(PiecewiseLinear::Make({0.0, 1.0}, {1.0}).ok());
  EXPECT_FALSE(PiecewiseLinear::Make({1.0, 0.0}, {1.0, 1.0}).ok());
  EXPECT_FALSE(PiecewiseLinear::Make({0.0, 0.0}, {1.0, 1.0}).ok());
  EXPECT_FALSE(
      PiecewiseLinear::Make({0.0, 1.0}, {1.0, std::nan("")}).ok());
  EXPECT_TRUE(PiecewiseLinear::Make({0.0, 1.0}, {1.0, 1.0}).ok());
}

TEST(PiecewiseLinearTest, EvaluateInterpolates) {
  const PiecewiseLinear tri = MakeTriangle();
  EXPECT_DOUBLE_EQ(tri.Evaluate(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(tri.Evaluate(-0.5), 0.5);
  EXPECT_DOUBLE_EQ(tri.Evaluate(0.0), 1.0);
  EXPECT_DOUBLE_EQ(tri.Evaluate(0.5), 0.5);
  EXPECT_DOUBLE_EQ(tri.Evaluate(1.0), 0.0);
}

TEST(PiecewiseLinearTest, EvaluateZeroOutsideSupport) {
  const PiecewiseLinear tri = MakeTriangle();
  EXPECT_DOUBLE_EQ(tri.Evaluate(-2.0), 0.0);
  EXPECT_DOUBLE_EQ(tri.Evaluate(2.0), 0.0);
}

TEST(PiecewiseLinearTest, TotalIntegral) {
  EXPECT_DOUBLE_EQ(MakeTriangle().TotalIntegral(), 1.0);
  const PiecewiseLinear flat =
      PiecewiseLinear::Make({0.0, 2.0}, {3.0, 3.0}).ValueOrDie();
  EXPECT_DOUBLE_EQ(flat.TotalIntegral(), 6.0);
}

TEST(PiecewiseLinearTest, AntiderivativeMatchesNumericQuadrature) {
  const PiecewiseLinear f =
      PiecewiseLinear::Make({-1.0, -0.2, 0.5, 2.0}, {0.5, 2.0, 0.1, 1.0})
          .ValueOrDie();
  for (double x : {-1.0, -0.7, -0.2, 0.0, 0.5, 1.3, 2.0}) {
    // Trapezoid quadrature with fine steps.
    double acc = 0.0;
    const int steps = 20000;
    const double lo = -1.0;
    const double h = (x - lo) / steps;
    for (int i = 0; i < steps; ++i) {
      acc += 0.5 * (f.Evaluate(lo + i * h) + f.Evaluate(lo + (i + 1) * h)) * h;
    }
    EXPECT_NEAR(f.Antiderivative(x), acc, 1e-6) << "x=" << x;
  }
}

TEST(PiecewiseLinearTest, SecondAntiderivativeMatchesNumeric) {
  const PiecewiseLinear f = MakeTriangle();
  for (double x : {-1.0, -0.3, 0.0, 0.4, 1.0, 1.5, 3.0}) {
    double acc = 0.0;
    const int steps = 20000;
    const double lo = -1.0;
    const double h = (x - lo) / steps;
    for (int i = 0; i < steps; ++i) {
      acc += 0.5 *
             (f.Antiderivative(lo + i * h) +
              f.Antiderivative(lo + (i + 1) * h)) *
             h;
    }
    EXPECT_NEAR(f.SecondAntiderivative(x), acc, 1e-5) << "x=" << x;
  }
}

TEST(PiecewiseLinearTest, IntegralBetween) {
  const PiecewiseLinear tri = MakeTriangle();
  EXPECT_NEAR(tri.IntegralBetween(-1.0, 1.0), 1.0, 1e-12);
  EXPECT_NEAR(tri.IntegralBetween(-1.0, 0.0), 0.5, 1e-12);
  EXPECT_NEAR(tri.IntegralBetween(-0.5, 0.5), 0.75, 1e-12);
  EXPECT_NEAR(tri.IntegralBetween(-5.0, 5.0), 1.0, 1e-12);
}

TEST(PiecewiseLinearTest, RectangleConvolutionMatchesBruteForce) {
  const PiecewiseLinear tri = MakeTriangle();
  // Brute-force the double integral on a grid.
  const double l = -0.3, r = 0.6, a = 0.1, b = 0.9;
  const int steps = 400;
  double acc = 0.0;
  const double du = (r - l) / steps;
  const double dv = (b - a) / steps;
  for (int i = 0; i < steps; ++i) {
    for (int j = 0; j < steps; ++j) {
      const double u = l + (i + 0.5) * du;
      const double v = a + (j + 0.5) * dv;
      acc += tri.Evaluate(u - v) * du * dv;
    }
  }
  EXPECT_NEAR(tri.RectangleConvolutionIntegral(l, r, a, b), acc, 1e-4);
}

TEST(PiecewiseLinearTest, MinMaxValues) {
  const PiecewiseLinear f =
      PiecewiseLinear::Make({0.0, 1.0, 2.0}, {0.5, 3.0, -1.0}).ValueOrDie();
  EXPECT_DOUBLE_EQ(f.MinValue(), -1.0);
  EXPECT_DOUBLE_EQ(f.MaxValue(), 3.0);
}

TEST(PiecewiseLinearTest, KnotAccessors) {
  const PiecewiseLinear tri = MakeTriangle();
  EXPECT_DOUBLE_EQ(tri.xmin(), -1.0);
  EXPECT_DOUBLE_EQ(tri.xmax(), 1.0);
  EXPECT_EQ(tri.knots().size(), 3u);
}

TEST(PiecewiseLinearTest, SampleDensityStaysInRange) {
  const PiecewiseLinear tri = MakeTriangle();
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const double x = tri.SampleDensity(-1.0, 1.0, rng);
    EXPECT_GE(x, -1.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(PiecewiseLinearTest, SampleDensityMatchesDensityHistogram) {
  const PiecewiseLinear tri = MakeTriangle();
  Rng rng(9);
  const int n = 400000;
  const int bins = 20;
  std::vector<int> counts(bins, 0);
  for (int i = 0; i < n; ++i) {
    const double x = tri.SampleDensity(-1.0, 1.0, rng);
    int b = static_cast<int>((x + 1.0) / 2.0 * bins);
    if (b >= bins) b = bins - 1;
    ++counts[b];
  }
  for (int b = 0; b < bins; ++b) {
    const double lo = -1.0 + 2.0 * b / bins;
    const double hi = lo + 2.0 / bins;
    const double expected = tri.IntegralBetween(lo, hi);
    EXPECT_NEAR(static_cast<double>(counts[b]) / n, expected, 0.004)
        << "bin " << b;
  }
}

TEST(PiecewiseLinearTest, SampleDensityRestrictedRange) {
  const PiecewiseLinear tri = MakeTriangle();
  Rng rng(15);
  for (int i = 0; i < 1000; ++i) {
    const double x = tri.SampleDensity(0.2, 0.8, rng);
    EXPECT_GE(x, 0.2);
    EXPECT_LE(x, 0.8);
  }
}

TEST(PiecewiseLinearTest, SampleUniformSegment) {
  // Flat density: samples should be uniform.
  const PiecewiseLinear flat =
      PiecewiseLinear::Make({0.0, 1.0}, {1.0, 1.0}).ValueOrDie();
  Rng rng(21);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += flat.SampleDensity(0.0, 1.0, rng);
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

}  // namespace
}  // namespace numdist
