#include "data/datasets.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/histogram.h"

namespace numdist {
namespace {

TEST(DatasetsTest, SpecsExistForAllIds) {
  EXPECT_EQ(AllDatasetSpecs().size(), 4u);
  EXPECT_EQ(GetDatasetSpec(DatasetId::kBeta).name, "beta");
  EXPECT_EQ(GetDatasetSpec(DatasetId::kTaxi).name, "taxi");
  EXPECT_EQ(GetDatasetSpec(DatasetId::kIncome).name, "income");
  EXPECT_EQ(GetDatasetSpec(DatasetId::kRetirement).name, "retirement");
}

TEST(DatasetsTest, SpecsMatchPaperParameters) {
  EXPECT_EQ(GetDatasetSpec(DatasetId::kBeta).default_buckets, 256u);
  EXPECT_EQ(GetDatasetSpec(DatasetId::kTaxi).default_buckets, 1024u);
  EXPECT_EQ(GetDatasetSpec(DatasetId::kBeta).paper_n, 100000u);
  EXPECT_EQ(GetDatasetSpec(DatasetId::kTaxi).paper_n, 2189968u);
  EXPECT_EQ(GetDatasetSpec(DatasetId::kIncome).paper_n, 2308374u);
  EXPECT_EQ(GetDatasetSpec(DatasetId::kRetirement).paper_n, 178012u);
}

TEST(DatasetsTest, ParseDatasetId) {
  DatasetId id;
  EXPECT_TRUE(ParseDatasetId("income", &id));
  EXPECT_EQ(id, DatasetId::kIncome);
  EXPECT_FALSE(ParseDatasetId("bogus", &id));
}

TEST(DatasetsTest, AllValuesInUnitInterval) {
  Rng rng(1);
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    const std::vector<double> values = GenerateDataset(spec.id, 20000, rng);
    EXPECT_EQ(values.size(), 20000u);
    for (double v : values) {
      EXPECT_GE(v, 0.0) << spec.name;
      EXPECT_LT(v, 1.0) << spec.name;
    }
  }
}

TEST(DatasetsTest, DeterministicForFixedSeed) {
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    Rng rng1(7);
    Rng rng2(7);
    EXPECT_EQ(GenerateDataset(spec.id, 1000, rng1),
              GenerateDataset(spec.id, 1000, rng2))
        << spec.name;
  }
}

TEST(DatasetsTest, BetaMomentsMatchTheory) {
  Rng rng(2);
  const std::vector<double> values =
      GenerateDataset(DatasetId::kBeta, 200000, rng);
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= values.size();
  EXPECT_NEAR(mean, 5.0 / 7.0, 0.005);  // Beta(5,2) mean
}

TEST(DatasetsTest, TaxiIsMultimodal) {
  Rng rng(3);
  const std::vector<double> values =
      GenerateDataset(DatasetId::kTaxi, 200000, rng);
  const std::vector<double> h = hist::FromSamples(values, 64);
  // Evening peak (around 0.76) dominates the overnight trough (around 0.2).
  double evening = 0.0;
  double trough = 0.0;
  for (size_t i = 46; i < 52; ++i) evening += h[i];
  for (size_t i = 12; i < 18; ++i) trough += h[i];
  EXPECT_GT(evening, 2.0 * trough);
  // Morning bump (around 0.36) also dominates the trough.
  double morning = 0.0;
  for (size_t i = 21; i < 27; ++i) morning += h[i];
  EXPECT_GT(morning, trough);
}

TEST(DatasetsTest, IncomeIsSpiky) {
  Rng rng(4);
  const std::vector<double> values =
      GenerateDataset(DatasetId::kIncome, 200000, rng);
  const std::vector<double> h = hist::FromSamples(values, 1024);
  // Round-number snapping concentrates mass in few buckets: the largest
  // bucket should tower over the local median level.
  double max_bucket = 0.0;
  for (double v : h) max_bucket = std::max(max_bucket, v);
  std::vector<double> sorted = h;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];
  EXPECT_GT(max_bucket, 10.0 * std::max(median, 1e-6));
}

TEST(DatasetsTest, IncomeSpikierThanRetirement) {
  Rng rng(5);
  const auto spikiness = [&](DatasetId id) {
    Rng local(11);
    const std::vector<double> values = GenerateDataset(id, 150000, local);
    const std::vector<double> h = hist::FromSamples(values, 1024);
    double acc = 0.0;
    for (size_t i = 0; i + 1 < h.size(); ++i) {
      acc += std::fabs(h[i + 1] - h[i]);
    }
    return acc;  // total variation: high = spiky
  };
  EXPECT_GT(spikiness(DatasetId::kIncome),
            3.0 * spikiness(DatasetId::kRetirement));
  (void)rng;
}

TEST(DatasetsTest, RetirementIsRightSkewed) {
  Rng rng(6);
  const std::vector<double> values =
      GenerateDataset(DatasetId::kRetirement, 100000, rng);
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= values.size();
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];
  EXPECT_GT(mean, median);  // right skew
}

TEST(DatasetsTest, ZeroSamplesGiveEmptyVector) {
  Rng rng(8);
  EXPECT_TRUE(GenerateDataset(DatasetId::kBeta, 0, rng).empty());
}

}  // namespace
}  // namespace numdist
