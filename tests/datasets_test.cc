#include "data/datasets.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/histogram.h"

namespace numdist {
namespace {

TEST(DatasetsTest, SpecsExistForAllIds) {
  EXPECT_EQ(AllDatasetSpecs().size(), 4u);
  EXPECT_EQ(GetDatasetSpec(DatasetId::kBeta).name, "beta");
  EXPECT_EQ(GetDatasetSpec(DatasetId::kTaxi).name, "taxi");
  EXPECT_EQ(GetDatasetSpec(DatasetId::kIncome).name, "income");
  EXPECT_EQ(GetDatasetSpec(DatasetId::kRetirement).name, "retirement");
}

TEST(DatasetsTest, SpecsMatchPaperParameters) {
  EXPECT_EQ(GetDatasetSpec(DatasetId::kBeta).default_buckets, 256u);
  EXPECT_EQ(GetDatasetSpec(DatasetId::kTaxi).default_buckets, 1024u);
  EXPECT_EQ(GetDatasetSpec(DatasetId::kBeta).paper_n, 100000u);
  EXPECT_EQ(GetDatasetSpec(DatasetId::kTaxi).paper_n, 2189968u);
  EXPECT_EQ(GetDatasetSpec(DatasetId::kIncome).paper_n, 2308374u);
  EXPECT_EQ(GetDatasetSpec(DatasetId::kRetirement).paper_n, 178012u);
}

TEST(DatasetsTest, ParseDatasetId) {
  DatasetId id;
  EXPECT_TRUE(ParseDatasetId("income", &id));
  EXPECT_EQ(id, DatasetId::kIncome);
  EXPECT_FALSE(ParseDatasetId("bogus", &id));
}

TEST(DatasetsTest, AllValuesInUnitInterval) {
  Rng rng(1);
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    const std::vector<double> values = GenerateDataset(spec.id, 20000, rng);
    EXPECT_EQ(values.size(), 20000u);
    for (double v : values) {
      EXPECT_GE(v, 0.0) << spec.name;
      EXPECT_LT(v, 1.0) << spec.name;
    }
  }
}

TEST(DatasetsTest, DeterministicForFixedSeed) {
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    Rng rng1(7);
    Rng rng2(7);
    EXPECT_EQ(GenerateDataset(spec.id, 1000, rng1),
              GenerateDataset(spec.id, 1000, rng2))
        << spec.name;
  }
}

TEST(DatasetsTest, BetaMomentsMatchTheory) {
  Rng rng(2);
  const std::vector<double> values =
      GenerateDataset(DatasetId::kBeta, 200000, rng);
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= values.size();
  EXPECT_NEAR(mean, 5.0 / 7.0, 0.005);  // Beta(5,2) mean
}

TEST(DatasetsTest, TaxiIsMultimodal) {
  Rng rng(3);
  const std::vector<double> values =
      GenerateDataset(DatasetId::kTaxi, 200000, rng);
  const std::vector<double> h = hist::FromSamples(values, 64);
  // Evening peak (around 0.76) dominates the overnight trough (around 0.2).
  double evening = 0.0;
  double trough = 0.0;
  for (size_t i = 46; i < 52; ++i) evening += h[i];
  for (size_t i = 12; i < 18; ++i) trough += h[i];
  EXPECT_GT(evening, 2.0 * trough);
  // Morning bump (around 0.36) also dominates the trough.
  double morning = 0.0;
  for (size_t i = 21; i < 27; ++i) morning += h[i];
  EXPECT_GT(morning, trough);
}

TEST(DatasetsTest, IncomeIsSpiky) {
  Rng rng(4);
  const std::vector<double> values =
      GenerateDataset(DatasetId::kIncome, 200000, rng);
  const std::vector<double> h = hist::FromSamples(values, 1024);
  // Round-number snapping concentrates mass in few buckets: the largest
  // bucket should tower over the local median level.
  double max_bucket = 0.0;
  for (double v : h) max_bucket = std::max(max_bucket, v);
  std::vector<double> sorted = h;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];
  EXPECT_GT(max_bucket, 10.0 * std::max(median, 1e-6));
}

TEST(DatasetsTest, IncomeSpikierThanRetirement) {
  Rng rng(5);
  const auto spikiness = [&](DatasetId id) {
    Rng local(11);
    const std::vector<double> values = GenerateDataset(id, 150000, local);
    const std::vector<double> h = hist::FromSamples(values, 1024);
    double acc = 0.0;
    for (size_t i = 0; i + 1 < h.size(); ++i) {
      acc += std::fabs(h[i + 1] - h[i]);
    }
    return acc;  // total variation: high = spiky
  };
  EXPECT_GT(spikiness(DatasetId::kIncome),
            3.0 * spikiness(DatasetId::kRetirement));
  (void)rng;
}

TEST(DatasetsTest, RetirementIsRightSkewed) {
  Rng rng(6);
  const std::vector<double> values =
      GenerateDataset(DatasetId::kRetirement, 100000, rng);
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= values.size();
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];
  EXPECT_GT(mean, median);  // right skew
}

TEST(DatasetsTest, ZeroSamplesGiveEmptyVector) {
  Rng rng(8);
  EXPECT_TRUE(GenerateDataset(DatasetId::kBeta, 0, rng).empty());
}

TEST(DatasetsTest, SampleDatasetDrivesGenerateDataset) {
  // GenerateDataset is a loop over the single-draw primitive: the streams
  // must coincide draw for draw.
  Rng batch_rng(9);
  Rng single_rng(9);
  const std::vector<double> batch =
      GenerateDataset(DatasetId::kTaxi, 500, batch_rng);
  for (double expected : batch) {
    EXPECT_EQ(SampleDataset(DatasetId::kTaxi, single_rng), expected);
  }
}

TEST(MixtureTest, ZeroWeightComponentIsNeverSampled) {
  // All mass on beta, income at weight 0: the sample mean must sit at the
  // Beta(5,2) mean (~0.714), nowhere near income's (~0.1). Any appreciable
  // probability of drawing the zero-weight component would drag it down.
  Rng rng(10);
  const std::vector<MixtureComponent> mixture = {
      {DatasetId::kBeta, 1.0}, {DatasetId::kIncome, 0.0}};
  double mean = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) mean += SampleMixture(mixture, rng);
  mean /= n;
  EXPECT_NEAR(mean, 5.0 / 7.0, 0.01);
}

TEST(MixtureTest, InterpolateMixtureIsLinear) {
  const std::vector<MixtureComponent> a = {{DatasetId::kBeta, 1.0},
                                           {DatasetId::kTaxi, 0.0}};
  const std::vector<MixtureComponent> b = {{DatasetId::kBeta, 0.0},
                                           {DatasetId::kTaxi, 2.0}};
  const std::vector<MixtureComponent> mid = InterpolateMixture(a, b, 0.25);
  ASSERT_EQ(mid.size(), 2u);
  EXPECT_DOUBLE_EQ(mid[0].weight, 0.75);
  EXPECT_DOUBLE_EQ(mid[1].weight, 0.5);
  // t is clamped.
  EXPECT_DOUBLE_EQ(InterpolateMixture(a, b, 2.0)[1].weight, 2.0);
  EXPECT_DOUBLE_EQ(InterpolateMixture(a, b, -1.0)[0].weight, 1.0);
}

TEST(MixtureTest, DriftEndpointsMatchPureDistributions) {
  // A degenerate drift (from == to, single component) reproduces the plain
  // generator stream exactly.
  Rng drift_rng(11);
  Rng plain_rng(11);
  const std::vector<MixtureComponent> beta = {{DatasetId::kBeta, 1.0}};
  EXPECT_EQ(GenerateDriftDataset(beta, beta, 400, drift_rng),
            GenerateDataset(DatasetId::kBeta, 400, plain_rng));
}

TEST(MixtureTest, DriftShiftsMassTowardsTargetMixture) {
  // Drifting beta -> taxi: the first quarter of the stream should look
  // like beta (mass concentrated right of 0.5), the last quarter like taxi
  // (bimodal with substantial mass below 0.5).
  Rng rng(12);
  const std::vector<MixtureComponent> from = {{DatasetId::kBeta, 1.0}};
  const std::vector<MixtureComponent> to = {{DatasetId::kTaxi, 1.0}};
  const size_t n = 40000;
  const std::vector<double> values = GenerateDriftDataset(from, to, n, rng);
  const auto mass_below_half = [&](size_t begin, size_t end) {
    size_t below = 0;
    for (size_t i = begin; i < end; ++i) below += values[i] < 0.5 ? 1 : 0;
    return static_cast<double>(below) / static_cast<double>(end - begin);
  };
  const double early = mass_below_half(0, n / 4);
  const double late = mass_below_half(3 * n / 4, n);
  // Beta(5,2) has ~12% of its mass below 0.5; taxi has ~40%.
  EXPECT_LT(early, 0.2);
  EXPECT_GT(late, early + 0.1);
}

}  // namespace
}  // namespace numdist
