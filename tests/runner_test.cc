#include "eval/runner.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "data/datasets.h"

namespace numdist {
namespace {

TEST(GroundTruthTest, MomentsFromRawValues) {
  const std::vector<double> values = {0.0, 0.5, 1.0};
  const GroundTruth truth = ComputeGroundTruth(values, 4);
  EXPECT_NEAR(truth.mean, 0.5, 1e-12);
  EXPECT_NEAR(truth.variance, (0.25 + 0.0 + 0.25) / 3.0, 1e-12);
  EXPECT_EQ(truth.histogram.size(), 4u);
}

TEST(RunTrialsTest, ValidatesArguments) {
  const auto method = MakeSwEmsMethod();
  Rng rng(1);
  const std::vector<double> values =
      GenerateDataset(DatasetId::kBeta, 1000, rng);
  const GroundTruth truth = ComputeGroundTruth(values, 16);
  RunnerOptions opts;
  opts.trials = 0;
  EXPECT_FALSE(RunTrials(*method, values, truth, 1.0, 16, opts).ok());
  opts.trials = 1;
  EXPECT_FALSE(RunTrials(*method, {}, truth, 1.0, 16, opts).ok());
}

TEST(RunTrialsTest, AggregatesDeterministically) {
  const auto method = MakeSwEmsMethod();
  Rng rng(2);
  const std::vector<double> values =
      GenerateDataset(DatasetId::kBeta, 5000, rng);
  const GroundTruth truth = ComputeGroundTruth(values, 32);
  RunnerOptions opts;
  opts.trials = 3;
  opts.seed = 99;
  opts.range_queries = 50;
  const AggregateMetrics a =
      RunTrials(*method, values, truth, 1.0, 32, opts).ValueOrDie();
  const AggregateMetrics b =
      RunTrials(*method, values, truth, 1.0, 32, opts).ValueOrDie();
  EXPECT_DOUBLE_EQ(a.mean.wasserstein, b.mean.wasserstein);
  EXPECT_DOUBLE_EQ(a.mean.ks, b.mean.ks);
  EXPECT_DOUBLE_EQ(a.stddev.range_small, b.stddev.range_small);
  EXPECT_EQ(a.trials, 3u);
}

TEST(RunTrialsTest, SingleVsMultiThreadAgree) {
  const auto method = MakeSwEmsMethod();
  Rng rng(3);
  const std::vector<double> values =
      GenerateDataset(DatasetId::kBeta, 5000, rng);
  const GroundTruth truth = ComputeGroundTruth(values, 32);
  RunnerOptions opts;
  opts.trials = 4;
  opts.range_queries = 30;
  opts.threads = 1;
  const AggregateMetrics st =
      RunTrials(*method, values, truth, 1.0, 32, opts).ValueOrDie();
  opts.threads = 2;
  const AggregateMetrics mt =
      RunTrials(*method, values, truth, 1.0, 32, opts).ValueOrDie();
  EXPECT_DOUBLE_EQ(st.mean.wasserstein, mt.mean.wasserstein);
  EXPECT_DOUBLE_EQ(st.mean.quantile_err, mt.mean.quantile_err);
}

TEST(RunTrialsTest, MetricsArePositiveUnderNoise) {
  const auto method = MakeSwEmsMethod();
  Rng rng(4);
  const std::vector<double> values =
      GenerateDataset(DatasetId::kBeta, 8000, rng);
  const GroundTruth truth = ComputeGroundTruth(values, 32);
  RunnerOptions opts;
  opts.trials = 2;
  const AggregateMetrics agg =
      RunTrials(*method, values, truth, 0.5, 32, opts).ValueOrDie();
  EXPECT_GT(agg.mean.wasserstein, 0.0);
  EXPECT_GT(agg.mean.ks, 0.0);
  EXPECT_GT(agg.mean.range_small, 0.0);
  EXPECT_GE(agg.mean.mean_err, 0.0);
}

TEST(RunTrialsTest, TreeMethodsReportNanDistributionMetrics) {
  const auto method = MakeHhMethod();
  Rng rng(5);
  const std::vector<double> values =
      GenerateDataset(DatasetId::kBeta, 8000, rng);
  const GroundTruth truth = ComputeGroundTruth(values, 64);
  RunnerOptions opts;
  opts.trials = 2;
  const AggregateMetrics agg =
      RunTrials(*method, values, truth, 1.0, 64, opts).ValueOrDie();
  EXPECT_TRUE(std::isnan(agg.mean.wasserstein));
  EXPECT_TRUE(std::isnan(agg.mean.ks));
  EXPECT_FALSE(std::isnan(agg.mean.range_small));
  EXPECT_GT(agg.mean.range_small, 0.0);
}

TEST(RunTrialsTest, ReuseProtocolsIsBitIdenticalToColdRuns) {
  // The process-wide protocol cache (RunnerOptions::reuse_protocols) hands
  // out shared immutable protocols; every metric must be byte-identical to
  // a cold-constructed run — for a distribution method and a tree method.
  Rng rng(7);
  const std::vector<double> values =
      GenerateDataset(DatasetId::kBeta, 4000, rng);
  const GroundTruth truth = ComputeGroundTruth(values, 16);
  const auto run = [&](const DistributionMethod& method, bool reuse) {
    RunnerOptions opts;
    opts.trials = 3;
    opts.seed = 1234;
    opts.range_queries = 40;
    opts.reuse_protocols = reuse;
    return RunTrials(method, values, truth, 1.0, 16, opts).ValueOrDie();
  };
  const auto expect_identical = [](const AggregateMetrics& a,
                                   const AggregateMetrics& b) {
    EXPECT_EQ(std::memcmp(&a.mean, &b.mean, sizeof(TrialMetrics)), 0);
    EXPECT_EQ(std::memcmp(&a.stddev, &b.stddev, sizeof(TrialMetrics)), 0);
    EXPECT_EQ(a.trials, b.trials);
  };
  for (const auto& method : {MakeSwEmsMethod(), MakeCfoBinningMethod(16)}) {
    const AggregateMetrics cold = run(*method, false);
    const AggregateMetrics warm_first = run(*method, true);   // fills cache
    const AggregateMetrics warm_second = run(*method, true);  // cache hit
    expect_identical(cold, warm_first);
    expect_identical(cold, warm_second);
  }
}

TEST(RunTrialsTest, StddevIsZeroForSingleTrial) {
  const auto method = MakeSwEmsMethod();
  Rng rng(6);
  const std::vector<double> values =
      GenerateDataset(DatasetId::kBeta, 3000, rng);
  const GroundTruth truth = ComputeGroundTruth(values, 16);
  RunnerOptions opts;
  opts.trials = 1;
  const AggregateMetrics agg =
      RunTrials(*method, values, truth, 1.0, 16, opts).ValueOrDie();
  EXPECT_DOUBLE_EQ(agg.stddev.wasserstein, 0.0);
}

}  // namespace
}  // namespace numdist
