// Chaos tier: fault-tolerant collection proven across REAL processes and
// real TCP sockets (the `chaos` ctest label; CI repeats this suite and
// runs it under ASan+UBSan).
//
// The three headline scenarios of docs/ARCHITECTURE.md "Replication &
// failover", each ending in a byte-compare against an uninterrupted
// single-collector run over the acknowledged frames:
//
//   1. SIGKILL the primary at a seeded replication offset -> the standby
//      promotes itself and its sketch is byte-identical.
//   2. The client retries through >= 3 injected connection resets
//      (net/fault.h, seeded) -> the deduplicated aggregate is
//      byte-identical.
//   3. SIGKILL the collector between retries with a segmented WAL -> the
//      restarted collector re-acks the full retransmission (exactly-once
//      across the restart) and the aggregate is byte-identical; the log
//      really rolled across > 1 segment file.
//
// Tool locations come from CMake (NUMDIST_*_PATH); the suite self-skips
// when the tools were not built.
#include <gtest/gtest.h>

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "data/datasets.h"
#include "protocol/sharded.h"
#include "serve/collector.h"
#include "wire/wire.h"

namespace numdist {
namespace {

#if defined(NUMDIST_COLLECTOR_CLI_PATH) && defined(NUMDIST_REPORT_CLIENT_PATH)

constexpr size_t kShardSize = 200;
constexpr uint64_t kClientSeed = 7;

wire::MethodSpec TestSpec() {
  return wire::ParseMethodSpec("sw-ems", 1.0, 32).ValueOrDie();
}

std::vector<std::string> MethodFlags() {
  return {"--method=sw-ems", "--epsilon=1.0", "--buckets=32"};
}

// The exact frames report_client --uniform=N --shard-size=K --seed=S
// emits, rebuilt in-process (shared encoders; tests/wal_process_test.cc
// relies on the same identity). Sequence stamping does not perturb the
// decoded reports, so the reference aggregate ignores it.
std::vector<std::string> ClientFrames(size_t shards) {
  const wire::MethodSpec spec = TestSpec();
  auto protocol = wire::MakeProtocolForSpec(spec).ValueOrDie();
  std::vector<double> values;
  const size_t n = shards * kShardSize;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    values.push_back((static_cast<double>(i) + 0.5) / static_cast<double>(n));
  }
  std::vector<std::string> frames;
  for (size_t i = 0; i < shards; ++i) {
    Rng rng(ShardSeed(kClientSeed, i));
    auto chunk = protocol
                     ->EncodePerturbBatch(std::span<const double>(values)
                                              .subspan(i * kShardSize,
                                                       kShardSize),
                                          rng)
                     .ValueOrDie();
    std::string frame;
    const Status enc =
        wire::EncodeReportFrame(spec, *protocol, *chunk, &frame);
    EXPECT_TRUE(enc.ok()) << enc.ToString();
    frames.push_back(frame);
  }
  return frames;
}

std::string Prefixed(const std::string& frame) {
  std::string out;
  ByteWriter(&out).PutU32(static_cast<uint32_t>(frame.size()));
  out.append(frame);
  return out;
}

// The uninterrupted reference: every frame absorbed once, in order, into
// one in-process session — the bytes a clean single-collector run emits.
std::string ReferenceSketch(size_t shards) {
  serve::CollectorSession session =
      serve::CollectorSession::Make(TestSpec()).ValueOrDie();
  for (const std::string& frame : ClientFrames(shards)) {
    EXPECT_TRUE(session.HandleFrame(frame).ok());
  }
  return Prefixed(session.EncodeSketch().ValueOrDie());
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// fork/exec a tool with stderr captured to `stderr_path` (empty =
// /dev/null) — chaos assertions read the typed retry/fault stderr lines.
pid_t SpawnTool(const char* binary, const std::vector<std::string>& args,
                const std::string& stderr_path = "") {
  std::vector<std::string> full;
  full.push_back(binary);
  for (const std::string& a : args) full.push_back(a);
  const pid_t pid = fork();
  if (pid == 0) {
    const int err = open(
        stderr_path.empty() ? "/dev/null" : stderr_path.c_str(),
        O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (err >= 0) dup2(err, STDERR_FILENO);
    std::vector<char*> argv;
    for (std::string& a : full) argv.push_back(a.data());
    argv.push_back(nullptr);
    execv(argv[0], argv.data());
    _exit(127);
  }
  return pid;
}

int WaitChild(pid_t pid) {
  int status = 0;
  while (waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  return status;
}

std::string WaitForPortFile(const std::string& port_file) {
  std::string endpoint;
  for (int spin = 0; spin < 2000 && endpoint.empty(); ++spin) {
    std::ifstream pf(port_file);
    std::getline(pf, endpoint);
    if (endpoint.empty()) usleep(5000);
  }
  return endpoint;
}

size_t CountWalSegments(const std::string& dir) {
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return 0;
  size_t count = 0;
  while (struct dirent* entry = readdir(d)) {
    const std::string name = entry->d_name;
    if (name.rfind("wal-", 0) == 0 &&
        name.size() > 5 && name.substr(name.size() - 5) == ".ndwl") {
      ++count;
    }
  }
  closedir(d);
  return count;
}

std::vector<std::string> ClientFlags(size_t shards,
                                     const std::string& endpoint,
                                     uint64_t epoch) {
  std::vector<std::string> flags = MethodFlags();
  flags.push_back("--uniform=" + std::to_string(shards * kShardSize));
  flags.push_back("--shard-size=" + std::to_string(kShardSize));
  flags.push_back("--seed=" + std::to_string(kClientSeed));
  flags.push_back("--connect=" + endpoint);
  flags.push_back("--retry");
  flags.push_back("--epoch=" + std::to_string(epoch));
  flags.push_back("--retry-backoff-ms=1");
  flags.push_back("--retry-deadline-ms=60000");
  return flags;
}

// Scenario 1. A primary replicating to a hot standby is SIGKILLed after
// the client's acked prefix — `kill_after` frames, drawn from the seed —
// has been replicated. The promoted standby's sketch must be
// byte-identical to an uninterrupted run over exactly those frames: an
// ack means "durable AND on the standby", so the acked prefix survives
// the primary's death bit-for-bit.
void RunFailover(uint64_t seed) {
  Rng rng(seed);
  const size_t kill_after = 3 + static_cast<size_t>(rng.UniformInt(9));
  const std::string tag =
      testing::TempDir() + "chaos_failover_" + std::to_string(seed);
  const std::string standby_port = tag + ".sb.port";
  const std::string primary_port = tag + ".pr.port";
  const std::string standby_sketch = tag + ".sb.sketch";
  std::remove(standby_port.c_str());
  std::remove(primary_port.c_str());

  std::vector<std::string> standby_args = MethodFlags();
  standby_args.insert(standby_args.end(),
                      {"--standby", "--listen=tcp:127.0.0.1:0",
                       "--port-file=" + standby_port,
                       "--out=" + standby_sketch});
  const pid_t standby = SpawnTool(NUMDIST_COLLECTOR_CLI_PATH, standby_args);
  ASSERT_GT(standby, 0);
  const std::string standby_at = WaitForPortFile(standby_port);
  ASSERT_FALSE(standby_at.empty()) << "standby never published its port";

  std::vector<std::string> primary_args = MethodFlags();
  primary_args.insert(primary_args.end(),
                      {"--listen=tcp:127.0.0.1:0",
                       "--port-file=" + primary_port,
                       "--replicate-to=" + standby_at, "--out=/dev/null"});
  const pid_t primary = SpawnTool(NUMDIST_COLLECTOR_CLI_PATH, primary_args);
  ASSERT_GT(primary, 0);
  const std::string primary_at = WaitForPortFile(primary_port);
  ASSERT_FALSE(primary_at.empty()) << "primary never published its port";

  // The client's exit-0 means every frame was acked, and each ack was
  // sent only after the frame reached the standby's socket.
  const pid_t client = SpawnTool(
      NUMDIST_REPORT_CLIENT_PATH,
      ClientFlags(kill_after, primary_at, /*epoch=*/seed));
  ASSERT_GT(client, 0);
  const int client_status = WaitChild(client);
  ASSERT_TRUE(WIFEXITED(client_status) && WEXITSTATUS(client_status) == 0)
      << "client exited " << client_status;

  // SIGKILL: no drain, no flush beyond what the kernel already holds.
  ASSERT_EQ(kill(primary, SIGKILL), 0);
  WaitChild(primary);

  // The standby sees the replication stream end and promotes itself.
  const int standby_status = WaitChild(standby);
  ASSERT_TRUE(WIFEXITED(standby_status) && WEXITSTATUS(standby_status) == 0)
      << "standby exited " << standby_status;

  EXPECT_EQ(ReadFileBytes(standby_sketch), ReferenceSketch(kill_after))
      << "seed " << seed << " kill_after " << kill_after;

  std::remove(standby_port.c_str());
  std::remove(primary_port.c_str());
  std::remove(standby_sketch.c_str());
}

TEST(ChaosProcessTest, PromotedStandbySketchByteIdentical) {
  for (const uint64_t seed : {11u, 23u, 47u}) {
    RunFailover(seed);
  }
}

// Scenario 2. The client's connection is RST at seeded byte offsets on
// its first 3 attempts (net/fault.h). The retry layer reconnects with
// backoff and retransmits the unacked window verbatim; the collector's
// dedup window drops any frame that had already landed. Absorbed frames
// = exactly the sent multiset, so the sketch is byte-identical.
TEST(ChaosProcessTest, ClientRetriesThroughInjectedResets) {
  const size_t shards = 12;
  const std::string tag = testing::TempDir() + "chaos_resets";
  const std::string port_file = tag + ".port";
  const std::string sketch = tag + ".sketch";
  const std::string client_err = tag + ".client.err";
  std::remove(port_file.c_str());

  std::vector<std::string> server_args = MethodFlags();
  server_args.insert(server_args.end(),
                     {"--listen=tcp:127.0.0.1:0",
                      "--port-file=" + port_file, "--out=" + sketch});
  const pid_t server = SpawnTool(NUMDIST_COLLECTOR_CLI_PATH, server_args);
  ASSERT_GT(server, 0);
  const std::string at = WaitForPortFile(port_file);
  ASSERT_FALSE(at.empty());

  std::vector<std::string> client_args = ClientFlags(shards, at, /*epoch=*/3);
  client_args.insert(client_args.end(),
                     {"--fault-resets=3", "--fault-seed=99",
                      "--fault-max-byte=2000"});
  const pid_t client =
      SpawnTool(NUMDIST_REPORT_CLIENT_PATH, client_args, client_err);
  ASSERT_GT(client, 0);
  const int client_status = WaitChild(client);
  ASSERT_TRUE(WIFEXITED(client_status) && WEXITSTATUS(client_status) == 0)
      << "client exited " << client_status;

  // The typed stderr line proves all 3 scripted resets actually fired
  // (and were survived), not that the plan happened to stay idle.
  const std::string err = ReadFileBytes(client_err);
  EXPECT_NE(err.find("3 injected fault(s)"), std::string::npos) << err;

  ASSERT_EQ(kill(server, SIGTERM), 0);
  const int server_status = WaitChild(server);
  ASSERT_TRUE(WIFEXITED(server_status) && WEXITSTATUS(server_status) == 0);

  EXPECT_EQ(ReadFileBytes(sketch), ReferenceSketch(shards));

  std::remove(port_file.c_str());
  std::remove(sketch.c_str());
  std::remove(client_err.c_str());
}

// Scenario 3. Exactly-once across a collector restart: every frame is
// acked and logged (segmented WAL), the collector is SIGKILLed, and the
// client's full retransmission (same epoch, same seqs — the crash-resume
// shape) hits the restarted collector. Replaying the log re-claims every
// (epoch, seq), so all retransmits dedup to re-acks and the aggregate
// counts each report exactly once.
TEST(ChaosProcessTest, ExactlyOnceAcrossSegmentedWalRestart) {
  const size_t shards = 12;
  const uint64_t epoch = 5;
  const std::string tag = testing::TempDir() + "chaos_restart";
  const std::string wal_dir = tag + ".wal";
  const std::string sketch = tag + ".sketch";
  const std::string server_err = tag + ".server.err";
  system(("rm -rf " + wal_dir).c_str());

  std::vector<std::string> base_args = MethodFlags();
  base_args.insert(base_args.end(),
                   {"--wal=" + wal_dir, "--wal-segment-bytes=4096",
                    "--listen=tcp:127.0.0.1:0"});

  std::vector<std::string> first_args = base_args;
  const std::string port1 = tag + ".port1";
  std::remove(port1.c_str());
  first_args.insert(first_args.end(),
                    {"--port-file=" + port1, "--out=/dev/null"});
  const pid_t first = SpawnTool(NUMDIST_COLLECTOR_CLI_PATH, first_args);
  ASSERT_GT(first, 0);
  const std::string at1 = WaitForPortFile(port1);
  ASSERT_FALSE(at1.empty());

  const pid_t client_a = SpawnTool(NUMDIST_REPORT_CLIENT_PATH,
                                   ClientFlags(shards, at1, epoch));
  ASSERT_GT(client_a, 0);
  const int a_status = WaitChild(client_a);
  ASSERT_TRUE(WIFEXITED(a_status) && WEXITSTATUS(a_status) == 0);

  ASSERT_EQ(kill(first, SIGKILL), 0);
  WaitChild(first);

  // The small segment budget really rotated the log mid-run.
  EXPECT_GT(CountWalSegments(wal_dir), 1u) << wal_dir;

  std::vector<std::string> second_args = base_args;
  const std::string port2 = tag + ".port2";
  std::remove(port2.c_str());
  second_args.insert(second_args.end(),
                     {"--port-file=" + port2, "--out=" + sketch});
  const pid_t second =
      SpawnTool(NUMDIST_COLLECTOR_CLI_PATH, second_args, server_err);
  ASSERT_GT(second, 0);
  const std::string at2 = WaitForPortFile(port2);
  ASSERT_FALSE(at2.empty());

  // Same epoch, same frames, same seqs: the crash-resume retransmission.
  const pid_t client_b = SpawnTool(NUMDIST_REPORT_CLIENT_PATH,
                                   ClientFlags(shards, at2, epoch));
  ASSERT_GT(client_b, 0);
  const int b_status = WaitChild(client_b);
  ASSERT_TRUE(WIFEXITED(b_status) && WEXITSTATUS(b_status) == 0);

  ASSERT_EQ(kill(second, SIGTERM), 0);
  const int second_status = WaitChild(second);
  ASSERT_TRUE(WIFEXITED(second_status) && WEXITSTATUS(second_status) == 0);

  // Every retransmit was recognized: the recovered dedup window dropped
  // all 12, and the aggregate holds each report exactly once.
  const std::string err = ReadFileBytes(server_err);
  EXPECT_NE(err.find("12 duplicate(s) dropped"), std::string::npos) << err;
  EXPECT_EQ(ReadFileBytes(sketch), ReferenceSketch(shards));

  system(("rm -rf " + wal_dir).c_str());
  std::remove(port1.c_str());
  std::remove(port2.c_str());
  std::remove(sketch.c_str());
  std::remove(server_err.c_str());
}

#else

TEST(ChaosProcessTest, SkippedWithoutTools) {
  GTEST_SKIP() << "collector_cli / report_client were not built "
                  "(NUMDIST_BUILD_TOOLS=OFF)";
}

#endif

}  // namespace
}  // namespace numdist
