#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "metrics/distance.h"
#include "metrics/queries.h"

namespace numdist {
namespace {

// ---------------------------------------------------------- distance --

TEST(WassersteinTest, IdenticalDistributionsHaveZeroDistance) {
  const std::vector<double> x = {0.25, 0.25, 0.25, 0.25};
  EXPECT_DOUBLE_EQ(WassersteinDistance(x, x), 0.0);
}

TEST(WassersteinTest, AdjacentSwapCost) {
  // Moving mass 1 by one bucket (width 1/d) costs 1/d.
  const std::vector<double> x = {1.0, 0.0};
  const std::vector<double> y = {0.0, 1.0};
  EXPECT_DOUBLE_EQ(WassersteinDistance(x, y), 0.5);  // 1 * (1/2)
}

TEST(WassersteinTest, PaperSection31Example) {
  // x = [0.7 0.1 0.1 0.1]; x^1 shifts the spike by one bucket, x^2 by three.
  // W1 must order x^1 closer than x^2 (L1/L2/KL cannot).
  const std::vector<double> x = {0.7, 0.1, 0.1, 0.1};
  const std::vector<double> xhat1 = {0.1, 0.7, 0.1, 0.1};
  const std::vector<double> xhat2 = {0.1, 0.1, 0.1, 0.7};
  EXPECT_LT(WassersteinDistance(x, xhat1), WassersteinDistance(x, xhat2));
  EXPECT_DOUBLE_EQ(L1Distance(x, xhat1), L1Distance(x, xhat2));
  EXPECT_DOUBLE_EQ(L2Distance(x, xhat1), L2Distance(x, xhat2));
}

TEST(WassersteinTest, ScalesWithShiftDistance) {
  const std::vector<double> x = {1.0, 0.0, 0.0, 0.0};
  const std::vector<double> y1 = {0.0, 1.0, 0.0, 0.0};
  const std::vector<double> y3 = {0.0, 0.0, 0.0, 1.0};
  EXPECT_NEAR(WassersteinDistance(x, y3), 3.0 * WassersteinDistance(x, y1),
              1e-12);
}

TEST(WassersteinTest, SymmetricAndNonNegative) {
  const std::vector<double> x = {0.6, 0.3, 0.1};
  const std::vector<double> y = {0.2, 0.5, 0.3};
  EXPECT_DOUBLE_EQ(WassersteinDistance(x, y), WassersteinDistance(y, x));
  EXPECT_GT(WassersteinDistance(x, y), 0.0);
}

TEST(KsTest, MaxCdfGap) {
  const std::vector<double> x = {1.0, 0.0};
  const std::vector<double> y = {0.0, 1.0};
  EXPECT_DOUBLE_EQ(KsDistance(x, y), 1.0);
}

TEST(KsTest, DetectsSpikeMismatch) {
  const std::vector<double> x = {0.5, 0.0, 0.5, 0.0};
  const std::vector<double> y = {0.25, 0.25, 0.25, 0.25};
  EXPECT_DOUBLE_EQ(KsDistance(x, y), 0.25);
}

TEST(KsTest, BoundedByOne) {
  const std::vector<double> x = {1.0, 0.0, 0.0};
  const std::vector<double> y = {0.0, 0.0, 1.0};
  EXPECT_LE(KsDistance(x, y), 1.0);
}

TEST(L1L2Test, BasicValues) {
  const std::vector<double> x = {1.0, 0.0};
  const std::vector<double> y = {0.0, 1.0};
  EXPECT_DOUBLE_EQ(L1Distance(x, y), 2.0);
  EXPECT_DOUBLE_EQ(L2Distance(x, y), std::sqrt(2.0));
}

// ------------------------------------------------------------ CDF --

TEST(CdfAtTest, InterpolatesWithinBuckets) {
  const std::vector<double> x = {0.4, 0.6};
  EXPECT_DOUBLE_EQ(CdfAt(x, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(CdfAt(x, 0.25), 0.2);   // half of bucket 0
  EXPECT_DOUBLE_EQ(CdfAt(x, 0.5), 0.4);
  EXPECT_DOUBLE_EQ(CdfAt(x, 0.75), 0.7);
  EXPECT_DOUBLE_EQ(CdfAt(x, 1.0), 1.0);
}

TEST(CdfAtTest, ClampsArguments) {
  const std::vector<double> x = {0.5, 0.5};
  EXPECT_DOUBLE_EQ(CdfAt(x, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(CdfAt(x, 2.0), 1.0);
}

TEST(RangeQueryTest, MatchesCdfDifference) {
  const std::vector<double> x = {0.1, 0.2, 0.3, 0.4};
  EXPECT_NEAR(RangeQuery(x, 0.25, 0.5), CdfAt(x, 0.75) - CdfAt(x, 0.25),
              1e-12);
  EXPECT_NEAR(RangeQuery(x, 0.0, 1.0), 1.0, 1e-12);
}

TEST(RangeQueryMaeTest, ZeroForIdenticalDistributions) {
  const std::vector<double> x = {0.1, 0.2, 0.3, 0.4};
  Rng rng(1);
  EXPECT_DOUBLE_EQ(RangeQueryMae(x, x, 0.3, 50, rng), 0.0);
}

TEST(RangeQueryMaeTest, DetectsDifferences) {
  const std::vector<double> x = {1.0, 0.0, 0.0, 0.0};
  const std::vector<double> y = {0.0, 0.0, 0.0, 1.0};
  Rng rng(2);
  EXPECT_GT(RangeQueryMae(x, y, 0.25, 100, rng), 0.3);
}

// ---------------------------------------------------------- moments --

TEST(HistMeanTest, UniformIsHalf) {
  EXPECT_DOUBLE_EQ(HistMean(std::vector<double>(10, 0.1)), 0.5);
}

TEST(HistMeanTest, PointMassAtBucketCenter) {
  std::vector<double> x(4, 0.0);
  x[1] = 1.0;
  EXPECT_DOUBLE_EQ(HistMean(x), 0.375);
}

TEST(HistVarianceTest, PointMassHasZeroVariance) {
  std::vector<double> x(8, 0.0);
  x[3] = 1.0;
  EXPECT_DOUBLE_EQ(HistVariance(x), 0.0);
}

TEST(HistVarianceTest, UniformApproachesOneTwelfth) {
  // Discrete uniform over bucket centers -> (1 - 1/d^2)/12.
  const size_t d = 100;
  const double var = HistVariance(std::vector<double>(d, 1.0 / d));
  EXPECT_NEAR(var, (1.0 - 1.0 / (d * d)) / 12.0, 1e-12);
}

TEST(HistVarianceTest, TwoPointDistribution) {
  // Mass 1/2 at centers 0.25 and 0.75: variance = 0.0625.
  const std::vector<double> x = {0.5, 0.5};
  EXPECT_DOUBLE_EQ(HistVariance(x), 0.0625);
}

// --------------------------------------------------------- quantiles --

TEST(QuantileTest, UniformQuantilesAreLinear) {
  const std::vector<double> x(10, 0.1);
  for (int pct = 10; pct <= 90; pct += 10) {
    const double beta = pct / 100.0;
    EXPECT_NEAR(Quantile(x, beta), beta, 1e-12);
  }
}

TEST(QuantileTest, PointMass) {
  std::vector<double> x(4, 0.0);
  x[2] = 1.0;  // mass on [0.5, 0.75)
  EXPECT_NEAR(Quantile(x, 0.5), 0.625, 1e-12);
  EXPECT_GE(Quantile(x, 0.01), 0.5);
  EXPECT_LE(Quantile(x, 0.99), 0.75);
}

TEST(QuantileTest, EdgeBetas) {
  const std::vector<double> x = {0.5, 0.5};
  EXPECT_DOUBLE_EQ(Quantile(x, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Quantile(x, 1.0), 1.0);
}

TEST(QuantileMaeTest, ZeroForIdentical) {
  const std::vector<double> x = {0.1, 0.4, 0.3, 0.2};
  EXPECT_DOUBLE_EQ(QuantileMae(x, x), 0.0);
}

TEST(QuantileMaeTest, ShiftedDistributions) {
  std::vector<double> x(10, 0.0);
  std::vector<double> y(10, 0.0);
  x[2] = 1.0;
  y[7] = 1.0;
  EXPECT_NEAR(QuantileMae(x, y), 0.5, 1e-12);  // every decile shifts by 0.5
}

}  // namespace
}  // namespace numdist
