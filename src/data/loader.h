// Loading real numeric datasets from disk. The paper's real datasets (NYC
// Taxi, ACS income, SF retirement) are single numeric columns; this loader
// reads such files (one value per line, or a chosen CSV column), applies the
// paper's preprocessing (filter to [min, max), map to [0, 1]), and returns
// values ready for any estimator in the library.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"

namespace numdist {

/// Preprocessing applied while loading (mirrors the paper's §6.1 recipes).
struct LoadOptions {
  /// Keep only values in [min_value, max_value); the paper clips income to
  /// [0, 2^19) and retirement to [0, 60000).
  double min_value = 0.0;
  double max_value = 1.0;
  /// Zero-based CSV column to read; 0 with no commas = whole line.
  size_t column = 0;
  /// CSV field separator.
  char delimiter = ',';
  /// Skip the first line (header).
  bool skip_header = false;
};

/// Parses numeric values from `text` (file contents), filters to
/// [min_value, max_value), and maps them affinely onto [0, 1). Non-numeric
/// rows are skipped; returns an error if nothing survives.
Result<std::vector<double>> ParseNumericColumn(const std::string& text,
                                               const LoadOptions& options);

/// Reads `path` and applies ParseNumericColumn.
Result<std::vector<double>> LoadNumericFile(const std::string& path,
                                            const LoadOptions& options);

}  // namespace numdist
