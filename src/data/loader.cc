#include "data/loader.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace numdist {

namespace {

// Extracts the `column`-th delimiter-separated field of `line`.
// Returns false if the line has too few fields.
bool ExtractField(const std::string& line, size_t column, char delimiter,
                  std::string* field) {
  size_t start = 0;
  for (size_t c = 0; c < column; ++c) {
    const size_t pos = line.find(delimiter, start);
    if (pos == std::string::npos) return false;
    start = pos + 1;
  }
  const size_t end = line.find(delimiter, start);
  *field = line.substr(start, end == std::string::npos ? std::string::npos
                                                       : end - start);
  return true;
}

}  // namespace

Result<std::vector<double>> ParseNumericColumn(const std::string& text,
                                               const LoadOptions& options) {
  if (!(options.max_value > options.min_value)) {
    return Status::InvalidArgument("loader: max_value must exceed min_value");
  }
  std::vector<double> values;
  std::istringstream stream(text);
  std::string line;
  bool first = true;
  const double span = options.max_value - options.min_value;
  while (std::getline(stream, line)) {
    if (first && options.skip_header) {
      first = false;
      continue;
    }
    first = false;
    if (line.empty()) continue;
    std::string field;
    if (!ExtractField(line, options.column, options.delimiter, &field)) {
      continue;
    }
    char* end = nullptr;
    const double raw = std::strtod(field.c_str(), &end);
    if (end == field.c_str()) continue;  // not numeric
    if (raw < options.min_value || raw >= options.max_value) continue;
    values.push_back((raw - options.min_value) / span);
  }
  if (values.empty()) {
    return Status::InvalidArgument("loader: no numeric values in range");
  }
  return values;
}

Result<std::vector<double>> LoadNumericFile(const std::string& path,
                                            const LoadOptions& options) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::InvalidArgument("loader: cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseNumericColumn(buffer.str(), options);
}

}  // namespace numdist
