// Evaluation datasets (paper §6.1). Beta(5,2) is generated exactly as in the
// paper. The three real datasets (NYC Taxi pickup times, ACS income, SF
// retirement) are not redistributable, so seeded synthetic generators
// reproduce the properties the paper's evaluation depends on — see
// DESIGN.md §3 "Substitutions" for the mapping and rationale.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"

namespace numdist {

/// The four evaluation datasets.
enum class DatasetId {
  kBeta,        ///< Beta(5, 2) samples (synthetic in the paper as well).
  kTaxi,        ///< Taxi pickup time-of-day stand-in: smooth, bimodal.
  kIncome,      ///< Income stand-in: log-normal with round-number spikes.
  kRetirement,  ///< Retirement benefits stand-in: right-skewed, smooth.
};

/// Static description of a dataset.
struct DatasetSpec {
  DatasetId id;
  std::string name;
  /// Histogram granularity used in the paper's experiments.
  size_t default_buckets;
  /// Sample count in the paper's original dataset.
  size_t paper_n;
};

/// Spec for one dataset.
const DatasetSpec& GetDatasetSpec(DatasetId id);

/// All four dataset specs in paper order.
const std::vector<DatasetSpec>& AllDatasetSpecs();

/// Draws `n` samples from the dataset's generative model, each in [0, 1].
std::vector<double> GenerateDataset(DatasetId id, size_t n, Rng& rng);

/// Draws a single sample from the dataset's generative model, in [0, 1].
/// The per-sample primitive behind GenerateDataset; the scenario engine
/// uses it to interleave draws from several datasets in one stream.
double SampleDataset(DatasetId id, Rng& rng);

/// One component of a dataset mixture: draw from `dataset` with relative
/// weight `weight` (weights need not be normalized).
struct MixtureComponent {
  DatasetId dataset;
  double weight = 1.0;
};

/// Draws one sample from the mixture: picks a component with probability
/// proportional to its weight, then samples that dataset. Requires at least
/// one component with positive weight. Linear scan over the weights; when
/// the same mixture is sampled per report, build an alias table with
/// MakeMixtureSampler and use the overload below.
double SampleMixture(const std::vector<MixtureComponent>& mixture, Rng& rng);

/// Alias table over the mixture's component weights: O(size) build, O(1)
/// per component pick. Requires at least one positive weight.
DiscreteSampler MakeMixtureSampler(
    const std::vector<MixtureComponent>& mixture);

/// SampleMixture with a prebuilt component sampler (`sampler` must have
/// been built from `mixture`'s weights). Same distribution as the linear
/// scan; single-component mixtures skip the component draw entirely, like
/// the scan does.
double SampleMixture(const std::vector<MixtureComponent>& mixture,
                     const DiscreteSampler& sampler, Rng& rng);

/// Rewrites a drift pair onto one shared component list: the union of the
/// datasets in first-appearance order, with weights of repeated components
/// folded together and absent components entering at weight 0. After the
/// call `a_out` and `b_out` have equal size with matching datasets, so
/// per-report weight interpolation is a plain lerp (the scenario engine's
/// inner loop relies on this).
void AlignMixtures(const std::vector<MixtureComponent>& a,
                   const std::vector<MixtureComponent>& b,
                   std::vector<MixtureComponent>* a_out,
                   std::vector<MixtureComponent>* b_out);

/// In-place weight lerp over an aligned drift pair (see AlignMixtures):
/// out[k].weight = (1-t) start[k].weight + t end[k].weight, t clamped into
/// [0, 1]. `out` must already have start's component list (datasets are not
/// touched); allocation-free, for per-report drift in hot loops.
void LerpMixtureWeights(const std::vector<MixtureComponent>& start,
                        const std::vector<MixtureComponent>& end, double t,
                        std::vector<MixtureComponent>* out);

/// Component weights linearly interpolated between two mixtures:
/// out[k].weight = (1-t) a[k].weight + t b[k].weight over the aligned
/// component list (see AlignMixtures; a and b may name different datasets).
/// Models temporal drift between population distributions. t is clamped
/// into [0, 1].
std::vector<MixtureComponent> InterpolateMixture(
    const std::vector<MixtureComponent>& a,
    const std::vector<MixtureComponent>& b, double t);

/// Draws `n` samples while the population drifts linearly from mixture
/// `from` (at sample 0) to mixture `to` (at sample n-1).
std::vector<double> GenerateDriftDataset(
    const std::vector<MixtureComponent>& from,
    const std::vector<MixtureComponent>& to, size_t n, Rng& rng);

/// Parses a dataset name ("beta", "taxi", "income", "retirement");
/// returns true on success.
bool ParseDatasetId(const std::string& name, DatasetId* out);

/// Deterministic low-discrepancy values in (0, 1): the golden-ratio
/// (Weyl) sequence. Seedless and platform-identical — the fixture input
/// for codec round-trip tests and wire benches, where bit-reproducible
/// inputs matter more than randomness.
std::vector<double> GoldenRatioValues(size_t n);

}  // namespace numdist
