// Evaluation datasets (paper §6.1). Beta(5,2) is generated exactly as in the
// paper. The three real datasets (NYC Taxi pickup times, ACS income, SF
// retirement) are not redistributable, so seeded synthetic generators
// reproduce the properties the paper's evaluation depends on — see
// DESIGN.md §3 "Substitutions" for the mapping and rationale.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"

namespace numdist {

/// The four evaluation datasets.
enum class DatasetId {
  kBeta,        ///< Beta(5, 2) samples (synthetic in the paper as well).
  kTaxi,        ///< Taxi pickup time-of-day stand-in: smooth, bimodal.
  kIncome,      ///< Income stand-in: log-normal with round-number spikes.
  kRetirement,  ///< Retirement benefits stand-in: right-skewed, smooth.
};

/// Static description of a dataset.
struct DatasetSpec {
  DatasetId id;
  std::string name;
  /// Histogram granularity used in the paper's experiments.
  size_t default_buckets;
  /// Sample count in the paper's original dataset.
  size_t paper_n;
};

/// Spec for one dataset.
const DatasetSpec& GetDatasetSpec(DatasetId id);

/// All four dataset specs in paper order.
const std::vector<DatasetSpec>& AllDatasetSpecs();

/// Draws `n` samples from the dataset's generative model, each in [0, 1].
std::vector<double> GenerateDataset(DatasetId id, size_t n, Rng& rng);

/// Parses a dataset name ("beta", "taxi", "income", "retirement");
/// returns true on success.
bool ParseDatasetId(const std::string& name, DatasetId* out);

}  // namespace numdist
