#include "data/datasets.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace numdist {

namespace {

const std::vector<DatasetSpec> kSpecs = {
    {DatasetId::kBeta, "beta", 256, 100000},
    {DatasetId::kTaxi, "taxi", 1024, 2189968},
    {DatasetId::kIncome, "income", 1024, 2308374},
    {DatasetId::kRetirement, "retirement", 1024, 178012},
};

// Truncated-Gaussian draw on [0, 1] by rejection (acceptance is high for the
// component parameters used below).
double TruncGaussian(double mean, double stddev, Rng& rng) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double v = mean + stddev * rng.Gaussian();
    if (v >= 0.0 && v < 1.0) return v;
  }
  return std::clamp(mean, 0.0, 1.0 - 1e-12);
}

// Taxi pickup time-of-day stand-in: deep overnight trough, morning commute
// bump, broad midday plateau, tall evening peak — the qualitative shape of
// the NYC TLC Jan-2018 pickup histogram (smooth, multimodal).
double SampleTaxi(Rng& rng) {
  const double u = rng.Uniform();
  if (u < 0.18) return TruncGaussian(0.36, 0.055, rng);   // morning rush
  if (u < 0.55) return TruncGaussian(0.76, 0.085, rng);   // evening peak
  if (u < 0.80) return TruncGaussian(0.55, 0.14, rng);    // midday plateau
  if (u < 0.92) return rng.Uniform();                     // background
  return TruncGaussian(0.08, 0.05, rng);                  // late night
}

// Income stand-in: log-normal body clipped to [0, 2^19) dollars, with a
// large fraction of reports snapped to round numbers — the spikiness the
// paper highlights ("people report $3000, not $3050").
double SampleIncome(Rng& rng) {
  constexpr double kClip = 524288.0;  // 2^19, as in the paper
  double dollars;
  do {
    dollars = std::exp(10.7 + 0.75 * rng.Gaussian());
  } while (dollars >= kClip);
  const double u = rng.Uniform();
  if (u < 0.35) {
    dollars = std::round(dollars / 1000.0) * 1000.0;  // nearest $1000
  } else if (u < 0.50) {
    dollars = std::round(dollars / 500.0) * 500.0;    // nearest $500
  } else if (u < 0.60) {
    dollars = std::round(dollars / 100.0) * 100.0;    // nearest $100
  }
  return std::min(dollars, kClip - 1.0) / kClip;
}

// Retirement stand-in: right-skewed gamma body over [0, 60000) with a small
// near-zero component (plan members with minimal benefits), matching the
// smooth skewed shape of Fig 1(d).
double SampleRetirement(Rng& rng) {
  constexpr double kClip = 60000.0;
  double dollars;
  const double u = rng.Uniform();
  do {
    if (u < 0.25) {
      dollars = 2500.0 * rng.Gamma(1.2);  // small-benefit mass near zero
    } else {
      dollars = 5200.0 * rng.Gamma(3.5);  // main body, mode ~ $13k
    }
  } while (dollars >= kClip);
  return dollars / kClip;
}

}  // namespace

const DatasetSpec& GetDatasetSpec(DatasetId id) {
  for (const DatasetSpec& spec : kSpecs) {
    if (spec.id == id) return spec;
  }
  assert(false && "unknown dataset id");
  return kSpecs[0];
}

const std::vector<DatasetSpec>& AllDatasetSpecs() { return kSpecs; }

std::vector<double> GenerateDataset(DatasetId id, size_t n, Rng& rng) {
  std::vector<double> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) values.push_back(SampleDataset(id, rng));
  return values;
}

double SampleDataset(DatasetId id, Rng& rng) {
  switch (id) {
    case DatasetId::kBeta:
      return std::min(rng.Beta(5.0, 2.0), 1.0 - 1e-12);
    case DatasetId::kTaxi:
      return SampleTaxi(rng);
    case DatasetId::kIncome:
      return SampleIncome(rng);
    case DatasetId::kRetirement:
      return SampleRetirement(rng);
  }
  assert(false && "unknown dataset id");
  return 0.0;
}

double SampleMixture(const std::vector<MixtureComponent>& mixture, Rng& rng) {
  assert(!mixture.empty());
  if (mixture.size() == 1) return SampleDataset(mixture[0].dataset, rng);
  double total = 0.0;
  for (const MixtureComponent& c : mixture) total += std::max(c.weight, 0.0);
  assert(total > 0.0);
  double u = rng.Uniform() * total;
  for (const MixtureComponent& c : mixture) {
    u -= std::max(c.weight, 0.0);
    if (u < 0.0) return SampleDataset(c.dataset, rng);
  }
  return SampleDataset(mixture.back().dataset, rng);
}

DiscreteSampler MakeMixtureSampler(
    const std::vector<MixtureComponent>& mixture) {
  assert(!mixture.empty());
  std::vector<double> weights;
  weights.reserve(mixture.size());
  for (const MixtureComponent& c : mixture) {
    weights.push_back(std::max(c.weight, 0.0));
  }
  return DiscreteSampler(weights);
}

double SampleMixture(const std::vector<MixtureComponent>& mixture,
                     const DiscreteSampler& sampler, Rng& rng) {
  assert(sampler.size() == mixture.size());
  if (mixture.size() == 1) return SampleDataset(mixture[0].dataset, rng);
  return SampleDataset(mixture[sampler.Sample(rng)].dataset, rng);
}

void AlignMixtures(const std::vector<MixtureComponent>& a,
                   const std::vector<MixtureComponent>& b,
                   std::vector<MixtureComponent>* a_out,
                   std::vector<MixtureComponent>* b_out) {
  std::vector<DatasetId> order;
  std::vector<double> a_weight;
  std::vector<double> b_weight;
  const auto index_of = [&](DatasetId id) {
    for (size_t k = 0; k < order.size(); ++k) {
      if (order[k] == id) return k;
    }
    order.push_back(id);
    a_weight.push_back(0.0);
    b_weight.push_back(0.0);
    return order.size() - 1;
  };
  for (const MixtureComponent& c : a) a_weight[index_of(c.dataset)] += c.weight;
  for (const MixtureComponent& c : b) b_weight[index_of(c.dataset)] += c.weight;
  a_out->clear();
  b_out->clear();
  for (size_t k = 0; k < order.size(); ++k) {
    a_out->push_back({order[k], a_weight[k]});
    b_out->push_back({order[k], b_weight[k]});
  }
}

void LerpMixtureWeights(const std::vector<MixtureComponent>& start,
                        const std::vector<MixtureComponent>& end, double t,
                        std::vector<MixtureComponent>* out) {
  assert(start.size() == end.size() && out->size() == start.size());
  t = std::clamp(t, 0.0, 1.0);
  for (size_t k = 0; k < start.size(); ++k) {
    (*out)[k].weight = (1.0 - t) * start[k].weight + t * end[k].weight;
  }
}

std::vector<MixtureComponent> InterpolateMixture(
    const std::vector<MixtureComponent>& a,
    const std::vector<MixtureComponent>& b, double t) {
  std::vector<MixtureComponent> from;
  std::vector<MixtureComponent> to;
  AlignMixtures(a, b, &from, &to);
  std::vector<MixtureComponent> out = from;
  LerpMixtureWeights(from, to, t, &out);
  return out;
}

std::vector<double> GenerateDriftDataset(
    const std::vector<MixtureComponent>& from,
    const std::vector<MixtureComponent>& to, size_t n, Rng& rng) {
  // Align once; only the weights change per sample.
  std::vector<MixtureComponent> start;
  std::vector<MixtureComponent> end;
  AlignMixtures(from, to, &start, &end);
  std::vector<MixtureComponent> mix = start;
  std::vector<double> values;
  values.reserve(n);
  const double denom = n > 1 ? static_cast<double>(n - 1) : 1.0;
  for (size_t i = 0; i < n; ++i) {
    LerpMixtureWeights(start, end, static_cast<double>(i) / denom, &mix);
    values.push_back(SampleMixture(mix, rng));
  }
  return values;
}

std::vector<double> GoldenRatioValues(size_t n) {
  std::vector<double> values;
  values.reserve(n);
  double x = 0.381966011250105;  // 2 - golden ratio
  for (size_t i = 0; i < n; ++i) {
    x += 0.6180339887498949;  // golden ratio - 1 (the Weyl increment)
    x -= static_cast<double>(static_cast<long long>(x));
    values.push_back(x);
  }
  return values;
}

bool ParseDatasetId(const std::string& name, DatasetId* out) {
  for (const DatasetSpec& spec : kSpecs) {
    if (spec.name == name) {
      *out = spec.id;
      return true;
    }
  }
  return false;
}

}  // namespace numdist
