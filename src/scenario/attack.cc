#include "scenario/attack.h"

#include <algorithm>
#include <cmath>

#include "common/executor.h"
#include "fo/grr.h"
#include "fo/hash.h"
#include "fo/olh.h"
#include "fo/oue.h"
#include "fo/sketch.h"
#include "postprocess/norm_sub.h"

namespace numdist {

namespace {

// Honest stream family for the standalone FO harness, mixed with a salt
// distinct from both the scenario engine's PhaseShardRng and the attack
// streams below.
Rng HonestShardRng(uint64_t seed, size_t shard) {
  const uint64_t mixed = SplitMix64(seed + 0xBF58476D1CE4E5B9ULL);
  return Rng(SplitMix64(mixed ^ (0x94D049BB133111EBULL * (shard + 1))));
}

// The harness's fixed honest population: a truncated-exponential bucket
// histogram (concentrated low, long tail) so a mid-domain target starts
// near zero mass and the attack gain is unambiguous.
uint32_t SampleHonestValue(size_t domain, Rng& rng) {
  const double u = rng.Uniform();
  const double v = -std::log1p(-u) * static_cast<double>(domain) / 6.0;
  const double cap = static_cast<double>(domain - 1);
  return static_cast<uint32_t>(v < cap ? v : cap);
}

// Adversarial edge-spike value for kSkew: all malicious mass on the two
// domain edges.
uint32_t SkewValue(size_t domain, Rng& rng) {
  return rng.Bernoulli(0.5) ? 0u : static_cast<uint32_t>(domain - 1);
}

}  // namespace

Result<AttackKind> ParseAttackKind(const std::string& name) {
  if (name == "none") return AttackKind::kNone;
  if (name == "input") return AttackKind::kInputPoison;
  if (name == "output") return AttackKind::kOutputPoison;
  if (name == "skew") return AttackKind::kSkew;
  return Status::InvalidArgument(
      "attack kind must be none, input, output, or skew, got '" + name + "'");
}

std::string_view AttackKindName(AttackKind kind) {
  switch (kind) {
    case AttackKind::kNone: return "none";
    case AttackKind::kInputPoison: return "input";
    case AttackKind::kOutputPoison: return "output";
    case AttackKind::kSkew: return "skew";
  }
  return "unknown";
}

Status ValidateAttack(const AttackSpec& spec, size_t d,
                      const std::string& phase) {
  if (!std::isfinite(spec.fraction) || spec.fraction < 0.0 ||
      spec.fraction > 1.0) {
    return Status::InvalidArgument(
        "scenario phase '" + phase +
        "': attack_fraction must be in [0, 1] and finite");
  }
  if (spec.kind != AttackKind::kNone && !(spec.fraction > 0.0)) {
    return Status::InvalidArgument("scenario phase '" + phase +
                                   "': attack needs attack_fraction > 0");
  }
  if (spec.kind == AttackKind::kNone && spec.fraction > 0.0) {
    return Status::InvalidArgument("scenario phase '" + phase +
                                   "': attack_fraction needs an attack kind");
  }
  if (spec.target >= d) {
    return Status::InvalidArgument("scenario phase '" + phase +
                                   "': attack_target must be < d");
  }
  return Status::OK();
}

Rng AttackPhaseShardRng(uint64_t seed, size_t phase, size_t shard) {
  // Different additive/XOR salts than scenario.cc's PhaseShardRng: the
  // malicious stream must never collide with (or advance) an honest one.
  const uint64_t mixed =
      SplitMix64(seed ^ (0xD1B54A32D192ED03ULL * (phase + 1)));
  return Rng(SplitMix64(mixed + (0x8CB92BA72F3D8DD7ULL * (shard + 1))));
}

double CraftSwReport(const SwEstimator& estimator, const AttackSpec& spec,
                     size_t d, Rng& rng) {
  const double target_center =
      (static_cast<double>(spec.target) + 0.5) / static_cast<double>(d);
  switch (spec.kind) {
    case AttackKind::kOutputPoison:
      // The output domain [-b, 1+b] contains [0, 1]: reporting the target
      // center verbatim piles the whole cohort onto the output bucket
      // where the target's transition density peaks.
      return target_center;
    case AttackKind::kInputPoison:
      return estimator.PerturbOne(target_center, rng);
    case AttackKind::kSkew: {
      const double edge = rng.Bernoulli(0.5)
                              ? 0.5 / static_cast<double>(d)
                              : 1.0 - 0.5 / static_cast<double>(d);
      return estimator.PerturbOne(edge, rng);
    }
    case AttackKind::kNone:
      break;
  }
  // Unreachable under ValidateAttack; behave like an honest center report.
  return target_center;
}

Result<FoChannel> ParseFoChannel(const std::string& name) {
  if (name == "grr") return FoChannel::kGrr;
  if (name == "olh") return FoChannel::kOlh;
  if (name == "oue") return FoChannel::kOue;
  return Status::InvalidArgument("channel must be grr, olh, or oue, got '" +
                                 name + "'");
}

std::string_view FoChannelName(FoChannel channel) {
  switch (channel) {
    case FoChannel::kGrr: return "grr";
    case FoChannel::kOlh: return "olh";
    case FoChannel::kOue: return "oue";
  }
  return "unknown";
}

Result<FoAttackResult> RunFoAttack(const FoAttackConfig& config) {
  if (config.domain < 2 || config.domain > (1u << 20)) {
    return Status::InvalidArgument("fo-attack: domain must be in [2, 2^20]");
  }
  if (!(config.epsilon > 0.0) || !std::isfinite(config.epsilon)) {
    return Status::InvalidArgument(
        "fo-attack: epsilon must be positive and finite");
  }
  if (config.n == 0) {
    return Status::InvalidArgument("fo-attack: n must be > 0");
  }
  if (config.shards == 0 || config.shards > 4096) {
    return Status::InvalidArgument("fo-attack: shards must be in [1, 4096]");
  }
  NUMDIST_RETURN_NOT_OK(
      ValidateAttack(config.attack, config.domain, "fo-attack"));
  NUMDIST_RETURN_NOT_OK(ValidateDefenseOptions(config.defense));

  // One oracle instance serves every shard (immutable after Make).
  Result<Grr> grr = Grr::Make(config.epsilon, config.domain);
  if (!grr.ok()) return grr.status();
  Result<Olh> olh = Olh::Make(config.epsilon, config.domain);
  if (!olh.ok()) return olh.status();
  Result<Oue> oue = Oue::Make(config.epsilon, config.domain);
  if (!oue.ok()) return oue.status();

  const size_t shards = config.shards;
  std::vector<FoSketch> sketches;
  std::vector<std::vector<uint64_t>> honest_hist(shards);
  std::vector<uint64_t> attacked(shards, 0);
  for (size_t s = 0; s < shards; ++s) {
    switch (config.channel) {
      case FoChannel::kGrr: sketches.push_back(grr->MakeSketch()); break;
      case FoChannel::kOlh: sketches.push_back(olh->MakeSketch()); break;
      case FoChannel::kOue: sketches.push_back(oue->MakeSketch()); break;
    }
    honest_hist[s].assign(config.domain, 0);
  }

  const AttackSpec& atk = config.attack;
  const bool attack_on = atk.kind != AttackKind::kNone;
  const uint32_t target = static_cast<uint32_t>(atk.target);
  const size_t threads =
      std::min(ResolveThreadCount(config.threads), shards);

  // Report i lands on shard i % shards; each shard owns an honest and a
  // malicious RNG stream, so the executor's schedule cannot change results
  // and the honest stream of an attacked run matches a clean run draw for
  // draw.
  Executor::Shared().ParallelFor(
      shards, threads, [&](size_t s, size_t /*slot*/) {
        Rng honest_rng = HonestShardRng(config.seed, s);
        Rng attack_rng = AttackPhaseShardRng(config.seed, 0, s);
        FoSketch& sketch = sketches[s];
        std::vector<uint64_t>& hist = honest_hist[s];
        std::vector<uint8_t> one_hot(config.domain, 0);
        for (size_t i = s; i < config.n; i += shards) {
          if (attack_on && attack_rng.Bernoulli(atk.fraction)) {
            ++attacked[s];
            switch (config.channel) {
              case FoChannel::kGrr: {
                uint32_t report;
                if (atk.kind == AttackKind::kOutputPoison) {
                  report = target;  // maximal gain: support target with p=1
                } else if (atk.kind == AttackKind::kSkew) {
                  report = grr->Perturb(SkewValue(config.domain, attack_rng),
                                        attack_rng);
                } else {
                  report = grr->Perturb(target, attack_rng);
                }
                grr->Absorb(report, &sketch);
                break;
              }
              case FoChannel::kOlh: {
                OlhReport report;
                if (atk.kind == AttackKind::kOutputPoison) {
                  // Any seed works: the crafted y is the target's own hash
                  // under that seed, so the report supports the target
                  // with probability 1 (an honest report supports it with
                  // probability p < 1).
                  report.seed = attack_rng.Next();
                  report.y = OlhHash(report.seed, target, olh->g());
                } else if (atk.kind == AttackKind::kSkew) {
                  report = olh->Perturb(SkewValue(config.domain, attack_rng),
                                        attack_rng);
                } else {
                  report = olh->Perturb(target, attack_rng);
                }
                olh->Absorb(report, &sketch);
                break;
              }
              case FoChannel::kOue: {
                if (atk.kind == AttackKind::kOutputPoison) {
                  // Only the target bit set: maximal per-report gain with
                  // no collateral support for any other bucket.
                  std::fill(one_hot.begin(), one_hot.end(), 0);
                  one_hot[target] = 1;
                  oue->Absorb(one_hot, &sketch);
                } else if (atk.kind == AttackKind::kSkew) {
                  oue->Absorb(oue->Perturb(SkewValue(config.domain,
                                                     attack_rng),
                                           attack_rng),
                              &sketch);
                } else {
                  oue->Absorb(oue->Perturb(target, attack_rng), &sketch);
                }
                break;
              }
            }
            continue;
          }
          const uint32_t v = SampleHonestValue(config.domain, honest_rng);
          ++hist[v];
          switch (config.channel) {
            case FoChannel::kGrr:
              grr->Absorb(grr->Perturb(v, honest_rng), &sketch);
              break;
            case FoChannel::kOlh:
              olh->Absorb(olh->Perturb(v, honest_rng), &sketch);
              break;
            case FoChannel::kOue:
              oue->Absorb(oue->Perturb(v, honest_rng), &sketch);
              break;
          }
        }
      });

  // Shard-order merges keep the result independent of the schedule.
  FoSketch merged = sketches[0];
  for (size_t s = 1; s < shards; ++s) merged.Merge(sketches[s]);

  FoAttackResult result;
  for (size_t s = 0; s < shards; ++s) {
    result.attacked_reports += attacked[s];
  }
  result.honest_reports =
      static_cast<uint64_t>(config.n) - result.attacked_reports;

  result.clean_truth.assign(config.domain, 0.0);
  for (size_t s = 0; s < shards; ++s) {
    for (size_t i = 0; i < config.domain; ++i) {
      result.clean_truth[i] += static_cast<double>(honest_hist[s][i]);
    }
  }
  if (result.honest_reports > 0) {
    for (double& f : result.clean_truth) {
      f /= static_cast<double>(result.honest_reports);
    }
  }

  switch (config.channel) {
    case FoChannel::kGrr: result.estimate = grr->EstimateFromSketch(merged);
      break;
    case FoChannel::kOlh: result.estimate = olh->EstimateFromSketch(merged);
      break;
    case FoChannel::kOue: result.estimate = oue->EstimateFromSketch(merged);
      break;
  }
  result.mitigated = NormSub(result.estimate);
  result.target_gain =
      result.estimate[atk.target] - result.clean_truth[atk.target];
  result.mitigated_gain =
      result.mitigated[atk.target] - result.clean_truth[atk.target];
  NUMDIST_ASSIGN_OR_RETURN(result.defense,
                           AnalyzeFrequencies(result.estimate,
                                              config.defense));
  return result;
}

}  // namespace numdist
