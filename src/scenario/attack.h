// Attacker model for the scenario engine: LDP data poisoning (Cao et al.,
// USENIX Security 2021) against the frequency-oracle channels
// (GRR/OLH/OUE, Kairouz et al. arXiv:1602.07387) and the paper's Square
// Wave channel.
//
// Two attacker capabilities, per the standard taxonomy:
//
//   - input poisoning: malicious users lie about their value (reporting
//     the target bucket's center) but follow the protocol honestly. The
//     channel dampens the injected mass by its own noise, so per-user gain
//     is bounded by the honest sensitivity.
//   - output poisoning (maximal gain): malicious users skip the mechanism
//     and craft the report that maximizes the target bucket's estimated
//     mass — GRR reports the target itself, OLH picks a fresh seed and
//     reports the target's own hash (supporting the target with
//     probability 1 instead of p), OUE sets only the target bit, SW
//     reports the target bucket's center verbatim. Per-user estimate gain
//     is ~(p - q)^-1 times larger than input poisoning.
//   - pathological skew: malicious users follow the protocol on values
//     drawn from an adversarial edge-spike distribution (all mass on the
//     first/last bucket) — not targeted, but the worst case for the
//     smoothness-seeking EM reconstruction.
//
// Scenario phases opt in via `attack = input|output|skew` keys
// (docs/SCENARIO_FORMAT.md); attacked reports are excluded from the
// scenario's clean ground truth so checkpoint metrics measure the
// attack-induced error, and every malicious draw comes from a dedicated
// per-(seed, phase, shard) RNG stream so attacked runs keep the
// any-thread-count bit-identity contract (and attack = none keeps clean
// runs bit-identical to builds without this header).
//
// RunFoAttack is the self-contained categorical-channel harness behind
// `scenario_cli --attack` and the ATK_ bench series: an n-user sharded
// GRR/OLH/OUE collection with a malicious cohort, scored against the
// honest cohort's exact histogram and run through the
// postprocess/defense.h consistency detectors.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/sw_estimator.h"
#include "postprocess/defense.h"

namespace numdist {

/// Attacker capability for one scenario phase.
enum class AttackKind {
  kNone = 0,     // honest phase (default; zero behavior change)
  kInputPoison,  // lie about the value, follow the protocol
  kOutputPoison, // craft the maximal-gain report directly
  kSkew,         // protocol-following users over an edge-spike population
};

/// Per-phase attacker configuration.
struct AttackSpec {
  AttackKind kind = AttackKind::kNone;
  /// Fraction of the phase's reports routed through the attacker, in
  /// [0, 1]. Must be > 0 when kind != kNone.
  double fraction = 0.0;
  /// Input bucket (in [0, d)) whose estimated mass the attacker inflates.
  /// Ignored by kSkew.
  size_t target = 0;
};

/// Parses an attack kind name ("none", "input", "output", "skew").
Result<AttackKind> ParseAttackKind(const std::string& name);

/// Canonical name of an attack kind.
std::string_view AttackKindName(AttackKind kind);

/// Structural validation of a phase's attack spec against the scenario's
/// granularity `d`: finite fraction in [0, 1] (and > 0 when an attack is
/// selected), target < d. `phase` names the phase in error messages.
Status ValidateAttack(const AttackSpec& spec, size_t d,
                      const std::string& phase);

/// Dedicated malicious-stream family: one independent RNG per (scenario
/// seed, phase, shard), salted differently from the honest report streams
/// so routing a report through the attacker never advances the honest
/// stream — the honest reports of an attacked run are draw-for-draw the
/// ones a clean run produces.
Rng AttackPhaseShardRng(uint64_t seed, size_t phase, size_t shard);

/// Crafts one malicious SW report for the scenario engine's channel. For
/// kInputPoison/kSkew this runs the honest mechanism on the adversarial
/// value; for kOutputPoison it returns the target bucket's center
/// verbatim (a legal report — the output domain contains [0, 1] — placed
/// where the transition density for the target peaks). Requires
/// spec.kind != kNone and spec.target < estimator's d.
double CraftSwReport(const SwEstimator& estimator, const AttackSpec& spec,
                     size_t d, Rng& rng);

/// Categorical frequency-oracle channels RunFoAttack can poison.
enum class FoChannel { kGrr = 0, kOlh, kOue };

/// Parses a channel name ("grr", "olh", "oue").
Result<FoChannel> ParseFoChannel(const std::string& name);

/// Canonical name of a channel.
std::string_view FoChannelName(FoChannel channel);

/// One self-contained poisoned collection experiment.
struct FoAttackConfig {
  FoChannel channel = FoChannel::kGrr;
  AttackSpec attack;
  /// Categorical domain size (>= 2) and privacy budget (> 0).
  size_t domain = 64;
  double epsilon = 1.0;
  /// Total reports, honest + malicious (> 0).
  size_t n = 100000;
  /// Collector shards (>= 1); reports deal round-robin over shards and
  /// per-shard sketches merge in shard order, so results are bit-identical
  /// at any thread count.
  size_t shards = 4;
  uint64_t seed = 42;
  /// Worker threads; 0 = hardware concurrency. Never changes results.
  size_t threads = 0;
  DefenseOptions defense;
};

/// Outcome of RunFoAttack, scored against the honest cohort.
struct FoAttackResult {
  /// Honest cohort's exact value histogram, normalized (the clean ground
  /// truth the attacker is distorting).
  std::vector<double> clean_truth;
  /// Raw unbiased estimate from all reports (honest + malicious).
  std::vector<double> estimate;
  /// The estimate after norm-sub projection (the paper's mitigation).
  std::vector<double> mitigated;
  uint64_t honest_reports = 0;
  uint64_t attacked_reports = 0;
  /// estimate[target] - clean_truth[target]: the attacker's objective.
  double target_gain = 0.0;
  /// Residual gain after norm-sub — how much of the attack the paper's
  /// projection actually removes.
  double mitigated_gain = 0.0;
  /// Frequency-consistency detectors over the raw estimate.
  DefenseReport defense;
};

/// Runs the sharded poisoned collection. Deterministic for a fixed
/// config.seed at any config.threads.
Result<FoAttackResult> RunFoAttack(const FoAttackConfig& config);

}  // namespace numdist
