// Config-driven scenario engine: composes LDP collection workloads far
// beyond the paper's four static §6.1 datasets. A scenario is a sequence of
// phases; each phase draws its population from a dataset mixture that can
// drift over the phase (temporal distribution shift), ramps in its own
// report volume, and may run under its own privacy budget (epsilon
// schedules). Reports are collected on a fixed shard topology of
// StreamingAggregator instances; at periodic checkpoints the shards are
// merged into a fresh aggregator and the distribution is reconstructed
// (merge-then-snapshot), yielding Wasserstein/KS trajectories against the
// scenario's exact running ground truth.
//
// Determinism: each (phase, shard) pair owns a fixed RNG stream derived
// from the scenario seed, report i of a phase always lands on shard
// i % shards, and checkpoint merges run in shard order — so a fixed-seed
// scenario produces bit-identical results for any thread count.
//
// Scenarios come from three places: built-in named presets
// (BuiltinScenario), the line-oriented text format (ParseScenarioText,
// format documented there; runnable via tools/scenario_cli), and directly
// constructed configs (tests).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/datasets.h"
#include "scenario/attack.h"

namespace numdist {

/// One collection phase of a scenario.
struct ScenarioPhase {
  std::string name = "phase";
  /// Population mixture at the start of the phase. Required, weights >= 0
  /// with a positive sum.
  std::vector<MixtureComponent> mixture;
  /// Population mixture at the end of the phase; component weights are
  /// interpolated linearly over the phase's reports (temporal drift).
  /// Empty = no drift. May name datasets absent from `mixture` (and vice
  /// versa); missing components enter with weight 0.
  std::vector<MixtureComponent> end_mixture;
  /// Reports collected in this phase (> 0).
  size_t reports = 0;
  /// Privacy budget for this phase; <= 0 inherits ScenarioConfig::epsilon.
  /// Phases with different epsilons aggregate into separate per-epsilon
  /// groups (reports under different budgets are not mixable in one
  /// reconstruction).
  double epsilon = 0.0;
  /// Merge-and-snapshot checkpoints in this phase (>= 1, <= reports); the
  /// phase's reports are split into this many equal chunks.
  size_t checkpoints = 1;
  /// Attacker routing for this phase (scenario/attack.h): `fraction` of
  /// the phase's reports come from malicious users instead of the
  /// population mixture. Attacked reports are excluded from the clean
  /// ground truth, so checkpoint metrics measure attack-induced error.
  /// kNone (the default) changes nothing — not even RNG draw order.
  AttackSpec attack;
};

/// Incremental reconstruction alongside the scenario's cold per-checkpoint
/// snapshots (eval/incremental.h). kOff leaves every existing output
/// untouched; kWarm warm-starts EM from the previous checkpoint's fixed
/// point over the cumulative counts; kMiniBatch additionally forgets old
/// reports with half-life ScenarioConfig::half_life, turning the scenario
/// into a drift-tracking benchmark (the checkpoint records the estimate's
/// distance to the *equally forgotten* ground truth, i.e. error over the
/// effective window rather than over all history).
enum class IncrementalMode { kOff, kWarm, kMiniBatch };

/// A full scenario.
struct ScenarioConfig {
  std::string name = "scenario";
  /// Default privacy budget for phases that do not set their own.
  double epsilon = 1.0;
  /// Reconstruction granularity (input buckets).
  size_t d = 64;
  /// Collector shards: every report stream is split over this many
  /// StreamingAggregator instances (part of the scenario semantics, unlike
  /// `threads`, which is pure execution parallelism).
  size_t shards = 4;
  uint64_t seed = 42;
  /// Worker threads; 0 = hardware concurrency. Never changes the results.
  size_t threads = 0;
  /// Route every checkpoint merge through the wire codec: each shard is
  /// serialized to a snapshot frame (wire/wire.h) and decoded-merged into
  /// the checkpoint aggregate, exactly as a cross-process shard fleet
  /// would ship its state to a coordinator. Counts are exact integers, so
  /// results are bit-identical to the direct in-memory merge (asserted by
  /// tests/scenario_test.cc); the flag exists to exercise the distributed
  /// path end-to-end, not to change semantics.
  bool wire_checkpoints = false;
  /// Run an incremental reconstructor per epsilon group next to the cold
  /// snapshots (see IncrementalMode). Off by default so existing outputs
  /// stay bit-identical.
  IncrementalMode incremental = IncrementalMode::kOff;
  /// Mini-batch forgetting half-life in reports; required > 0 when
  /// `incremental` is kMiniBatch, must stay 0 otherwise.
  double half_life = 0.0;
  /// Run the postprocess/defense.h frequency-consistency detectors on
  /// every checkpoint's merged output counts and emit the `def_*`
  /// columns. Off by default so existing outputs stay bit-identical.
  bool defense = false;
  /// Detector thresholds when `defense` is on.
  DefenseOptions defense_options;
  std::vector<ScenarioPhase> phases;
};

/// Reconstruction + metrics at one checkpoint.
struct ScenarioCheckpoint {
  size_t phase_index = 0;
  std::string phase;
  /// Checkpoint ordinal within the phase.
  size_t checkpoint_index = 0;
  /// Epsilon group this checkpoint reconstructed.
  double epsilon = 0.0;
  /// Cumulative reports in the group / in the whole scenario so far.
  uint64_t group_reports = 0;
  uint64_t total_reports = 0;
  /// Distance of the reconstruction to the group's exact running ground
  /// truth (the histogram of every value actually drawn for the group).
  double wasserstein = 0.0;
  double ks = 0.0;
  size_t em_iterations = 0;
  bool em_converged = false;
  /// Reconstructed distribution and ground truth, d buckets each.
  std::vector<double> estimate;
  std::vector<double> truth;

  /// Incremental-reconstruction companion metrics, populated only when
  /// ScenarioConfig::incremental != kOff. The distances are measured
  /// against the group's forgotten ground truth (cumulative truth for
  /// kWarm; exponentially decayed with the configured half-life for
  /// kMiniBatch), so for a drifting population inc_wasserstein is the
  /// drift-TRACKING error: how far the rolling estimate lags the window it
  /// is supposed to represent.
  size_t inc_em_iterations = 0;
  /// Cumulative EM iterations spent by the incremental path so far (the
  /// budget a cold restart at every checkpoint would dwarf).
  size_t inc_total_iterations = 0;
  double inc_wasserstein = 0.0;
  double inc_ks = 0.0;
  std::vector<double> inc_estimate;

  /// Adversarial companion columns. atk_* are populated once the
  /// checkpoint's epsilon group has run any attacked phase: the cumulative
  /// malicious report count and the attacker's objective — estimated mass
  /// minus clean-truth mass at the most recent attack target. def_* are
  /// populated when ScenarioConfig::defense is on: the spike detector over
  /// the merged output counts (defense.h), which is the consistency check
  /// that sees concentrated poisoning before reconstruction smooths it.
  uint64_t atk_reports = 0;
  double atk_gain = 0.0;
  double def_spike_z = 0.0;
  size_t def_spike_bucket = 0;
  bool def_flagged = false;
};

/// Outcome of a scenario run.
struct ScenarioResult {
  std::vector<ScenarioCheckpoint> checkpoints;
  uint64_t total_reports = 0;
};

/// Checks a scenario for structural errors (empty phases, bad weights,
/// invalid epsilon/d/shards/checkpoints). RunScenario validates first.
Status ValidateScenario(const ScenarioConfig& config);

/// Executes the scenario. Deterministic for a fixed config.seed at any
/// config.threads.
Result<ScenarioResult> RunScenario(const ScenarioConfig& config);

/// Parses the line-oriented scenario text format:
///
///   # comment                      (blank lines ignored)
///   name = drift-demo              (top-level keys before the first phase:
///   epsilon = 1.0                   name, epsilon, d, shards, seed,
///                                   wire_checkpoints, incremental,
///   d = 64                          half_life)
///   shards = 4
///   incremental = minibatch        (off | warm | minibatch)
///   half_life = 10000              (reports; minibatch only)
///
///   [phase]                        (starts a phase; then per-phase keys:
///   name = drift                    name, mixture, end_mixture, reports,
///   mixture = beta:0.8, taxi:0.2    epsilon, checkpoints)
///   end_mixture = taxi
///   reports = 40000
///   checkpoints = 4
///
/// Mixtures are comma-separated `dataset[:weight]` terms (weight defaults
/// to 1) over the §6.1 dataset names. The complete format reference lives
/// in docs/SCENARIO_FORMAT.md.
Result<ScenarioConfig> ParseScenarioText(const std::string& text);

/// Reads and parses a scenario file.
Result<ScenarioConfig> LoadScenarioFile(const std::string& path);

/// Names of the built-in scenarios ("drift", "ramp", "eps-schedule").
const std::vector<std::string>& BuiltinScenarioNames();

/// Returns a built-in scenario by name, or InvalidArgument.
Result<ScenarioConfig> BuiltinScenario(const std::string& name);

}  // namespace numdist
