#include "scenario/scenario.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <utility>

#include "common/executor.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "eval/incremental.h"
#include "eval/streaming.h"
#include "metrics/distance.h"
#include "postprocess/defense.h"
#include "scenario/attack.h"
#include "wire/wire.h"

namespace numdist {

namespace {

// Fixed stream family: one independent RNG per (scenario seed, phase,
// shard). The stream never depends on the thread count or on other shards'
// progress, which is what makes scenarios bit-reproducible under any
// parallel schedule.
Rng PhaseShardRng(uint64_t seed, size_t phase, size_t shard) {
  const uint64_t mixed =
      SplitMix64(seed + 0xA24BAED4963EE407ULL * (phase + 1));
  return Rng(SplitMix64(mixed ^ (0x9E3779B97F4A7C15ULL * (shard + 1))));
}

Status ValidateMixture(const std::vector<MixtureComponent>& mixture,
                       const char* what, const std::string& phase) {
  double total = 0.0;
  for (const MixtureComponent& c : mixture) {
    if (!(c.weight >= 0.0) || !std::isfinite(c.weight)) {
      return Status::InvalidArgument("scenario phase '" + phase + "': " +
                                     what + " has a negative or non-finite "
                                     "component weight");
    }
    total += c.weight;
  }
  if (!(total > 0.0)) {
    return Status::InvalidArgument("scenario phase '" + phase + "': " + what +
                                   " needs a positive total weight");
  }
  return Status::OK();
}

// Per-epsilon aggregation group: the shard topology plus the group's exact
// running ground truth, both cumulative across phases.
struct EpsilonGroup {
  double epsilon = 0.0;
  std::vector<StreamingAggregator> shards;
  // Per-shard truth counts: workers touch only their own shard's vector,
  // merged in shard order at each checkpoint.
  std::vector<std::vector<uint64_t>> truth_counts;
  // Reusable merge target for checkpoints: built once with the group's
  // (expensive) transition model, Reset() per snapshot.
  std::optional<StreamingAggregator> merge_scratch;
  uint64_t reports = 0;

  // Incremental-reconstruction companion (ScenarioConfig::incremental):
  // rolls the group's EM fixed point forward across checkpoints, plus the
  // ground truth forgotten on the SAME schedule so the drift-tracking
  // metric compares the estimate to the window it represents.
  std::optional<IncrementalReconstructor> inc;
  std::vector<double> decayed_truth;
  std::vector<double> prev_truth;
  double prev_truth_n = 0.0;

  // Adversarial companion state: per-shard malicious report counts
  // (workers touch only their own slot, summed in shard order), plus the
  // most recent attacked phase's target for the atk_gain column.
  std::vector<uint64_t> attacked_counts;
  bool ever_attacked = false;
  size_t attack_target = 0;
};

}  // namespace

Status ValidateScenario(const ScenarioConfig& config) {
  // Upper bounds are sanity caps, not capability limits: d drives an
  // O(d^2) dense transition build per epsilon group, so a typo'd granularity
  // must be an error, not a 30 GB allocation.
  if (config.d < 2 || config.d > 8192) {
    return Status::InvalidArgument("scenario: d must be in [2, 8192]");
  }
  if (config.shards == 0 || config.shards > 4096) {
    return Status::InvalidArgument("scenario: shards must be in [1, 4096]");
  }
  if (!(config.epsilon > 0.0) || !std::isfinite(config.epsilon)) {
    return Status::InvalidArgument(
        "scenario: default epsilon must be positive and finite");
  }
  if (config.incremental == IncrementalMode::kMiniBatch &&
      (!(config.half_life > 0.0) || !std::isfinite(config.half_life))) {
    return Status::InvalidArgument(
        "scenario: incremental = minibatch needs a positive finite "
        "half_life");
  }
  if (config.incremental != IncrementalMode::kMiniBatch &&
      config.half_life != 0.0) {
    return Status::InvalidArgument(
        "scenario: half_life needs incremental = minibatch");
  }
  if (config.defense) {
    NUMDIST_RETURN_NOT_OK(ValidateDefenseOptions(config.defense_options));
  }
  if (config.phases.empty()) {
    return Status::InvalidArgument("scenario: needs at least one phase");
  }
  for (const ScenarioPhase& phase : config.phases) {
    if (phase.reports == 0) {
      return Status::InvalidArgument("scenario phase '" + phase.name +
                                     "': reports must be > 0");
    }
    if (phase.checkpoints == 0 || phase.checkpoints > phase.reports) {
      return Status::InvalidArgument(
          "scenario phase '" + phase.name +
          "': checkpoints must be in [1, reports]");
    }
    if (phase.epsilon != 0.0 &&
        (!(phase.epsilon > 0.0) || !std::isfinite(phase.epsilon))) {
      return Status::InvalidArgument("scenario phase '" + phase.name +
                                     "': epsilon must be positive and finite");
    }
    NUMDIST_RETURN_NOT_OK(ValidateAttack(phase.attack, config.d, phase.name));
    if (phase.mixture.empty()) {
      return Status::InvalidArgument("scenario phase '" + phase.name +
                                     "': mixture is required");
    }
    NUMDIST_RETURN_NOT_OK(ValidateMixture(phase.mixture, "mixture",
                                          phase.name));
    if (!phase.end_mixture.empty()) {
      NUMDIST_RETURN_NOT_OK(ValidateMixture(phase.end_mixture, "end_mixture",
                                            phase.name));
    }
  }
  return Status::OK();
}

Result<ScenarioResult> RunScenario(const ScenarioConfig& config) {
  NUMDIST_RETURN_NOT_OK(ValidateScenario(config));
  const size_t threads =
      std::min(ResolveThreadCount(config.threads), config.shards);

  // Epsilon groups keyed by the budget's bit pattern (exact, no FP-compare
  // pitfalls); groups are created lazily when a phase first uses a budget.
  std::map<uint64_t, EpsilonGroup> groups;
  const auto group_for = [&](double epsilon) -> Result<EpsilonGroup*> {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(epsilon));
    std::memcpy(&bits, &epsilon, sizeof(bits));
    auto it = groups.find(bits);
    if (it != groups.end()) return &it->second;
    EpsilonGroup group;
    group.epsilon = epsilon;
    SwEstimatorOptions options;
    options.epsilon = epsilon;
    options.d = config.d;
    // One estimator (transition model included) serves the whole group:
    // shard aggregators and the merge target only need its immutable
    // per-report primitives, so sharing skips shards+1 identical O(d^2)
    // model builds.
    Result<SwEstimator> estimator = SwEstimator::Make(options);
    if (!estimator.ok()) return estimator.status();
    const auto shared =
        std::make_shared<const SwEstimator>(std::move(estimator).value());
    for (size_t s = 0; s < config.shards; ++s) {
      group.shards.push_back(StreamingAggregator::ForEstimator(shared));
      group.truth_counts.emplace_back(config.d, 0);
    }
    group.attacked_counts.assign(config.shards, 0);
    group.merge_scratch.emplace(StreamingAggregator::ForEstimator(shared));
    if (config.incremental != IncrementalMode::kOff) {
      IncrementalOptions inc_options;
      inc_options.mode = config.incremental == IncrementalMode::kMiniBatch
                             ? IncrementalOptions::Mode::kMiniBatch
                             : IncrementalOptions::Mode::kWarm;
      inc_options.half_life = config.half_life;
      Result<IncrementalReconstructor> inc =
          IncrementalReconstructor::Make(shared, inc_options);
      if (!inc.ok()) return inc.status();
      group.inc.emplace(std::move(inc).value());
      group.decayed_truth.assign(config.d, 0.0);
      group.prev_truth.assign(config.d, 0.0);
    }
    return &groups.emplace(bits, std::move(group)).first->second;
  };

  ScenarioResult result;
  for (size_t p = 0; p < config.phases.size(); ++p) {
    const ScenarioPhase& phase = config.phases[p];
    const double epsilon =
        phase.epsilon > 0.0 ? phase.epsilon : config.epsilon;
    NUMDIST_ASSIGN_OR_RETURN(EpsilonGroup* group, group_for(epsilon));

    std::vector<MixtureComponent> start = phase.mixture;
    std::vector<MixtureComponent> end = phase.mixture;
    if (!phase.end_mixture.empty()) {
      AlignMixtures(phase.mixture, phase.end_mixture, &start, &end);
    }
    const double drift_denom =
        phase.reports > 1 ? static_cast<double>(phase.reports - 1) : 1.0;

    // Static (non-drifting) mixtures sample their component per report;
    // build the phase's alias table once so that pick is O(1) instead of a
    // linear weight scan.
    std::optional<DiscreteSampler> static_sampler;
    if (phase.end_mixture.empty()) {
      static_sampler.emplace(MakeMixtureSampler(start));
    }

    // One persistent stream per shard for the whole phase; checkpoint
    // boundaries never reset it, so the report sequence is independent of
    // how the phase is chunked for snapshots.
    std::vector<Rng> shard_rngs;
    shard_rngs.reserve(config.shards);
    for (size_t s = 0; s < config.shards; ++s) {
      shard_rngs.push_back(PhaseShardRng(config.seed, p, s));
    }

    // Attacked phases route a Bernoulli(fraction) slice of each shard's
    // reports through the crafted-report generators. The decision and all
    // malicious randomness come from a dedicated per-(seed, phase, shard)
    // stream (attack.h), so the honest stream advances exactly as in a
    // clean run and attack = none stays bit-identical to builds that
    // predate the attacker model.
    const bool attacked_phase =
        phase.attack.kind != AttackKind::kNone && phase.attack.fraction > 0.0;
    std::vector<Rng> attack_rngs;
    if (attacked_phase) {
      group->ever_attacked = true;
      group->attack_target = phase.attack.target;
      attack_rngs.reserve(config.shards);
      for (size_t s = 0; s < config.shards; ++s) {
        attack_rngs.push_back(AttackPhaseShardRng(config.seed, p, s));
      }
    }

    for (size_t c = 0; c < phase.checkpoints; ++c) {
      const size_t begin = phase.reports * c / phase.checkpoints;
      const size_t chunk_end = phase.reports * (c + 1) / phase.checkpoints;

      // Shard task: report i of the phase lands on shard i % shards; the
      // task draws the (possibly drifting) mixture value, records it in
      // the shard's truth counts, perturbs it with the group's SW
      // mechanism, and streams the report into the shard aggregator. All
      // state is keyed by the shard index (one RNG stream, aggregator, and
      // truth histogram per shard), so the executor's schedule cannot
      // change results. Static mixtures sample through the phase's alias
      // table (O(1) per report); drifting mixtures rebuild per-report
      // weights and keep the linear scan.
      const bool drifting = !phase.end_mixture.empty();
      Executor::Shared().ParallelFor(
          config.shards, threads, [&](size_t s, size_t /*slot*/) {
            // Per-report weight scratch, needed (and allocated) only when
            // the mixture drifts; static phases sample through the
            // phase's alias table and stay allocation-free per task.
            std::vector<MixtureComponent> mix;
            if (drifting) mix = start;
            Rng& rng = shard_rngs[s];
            StreamingAggregator& agg = group->shards[s];
            std::vector<uint64_t>& truth = group->truth_counts[s];
            size_t i = begin + (s + config.shards - begin % config.shards) %
                                   config.shards;
            for (; i < chunk_end; i += config.shards) {
              if (attacked_phase &&
                  attack_rngs[s].Bernoulli(phase.attack.fraction)) {
                // Malicious report: crafted from the attack stream, never
                // recorded in the clean ground truth.
                agg.Accept(CraftSwReport(agg.estimator(), phase.attack,
                                         config.d, attack_rngs[s]));
                ++group->attacked_counts[s];
                continue;
              }
              double v;
              if (drifting) {
                LerpMixtureWeights(start, end,
                                   static_cast<double>(i) / drift_denom,
                                   &mix);
                v = SampleMixture(mix, rng);
              } else {
                v = SampleMixture(start, *static_sampler, rng);
              }
              ++truth[hist::BucketOf(v, config.d)];
              agg.Accept(agg.estimator().PerturbOne(v, rng));
            }
          });
      group->reports += chunk_end - begin;
      result.total_reports += chunk_end - begin;

      // Merge-then-snapshot: fold every shard of the group, in shard order,
      // into the group's reusable merge target and reconstruct from the
      // merged counts. With wire_checkpoints each shard's state crosses
      // the codec (snapshot frame encode -> strict decode -> count merge)
      // first — the same path a cross-process shard fleet uses — which is
      // bit-identical to the direct merge because counts are exact.
      StreamingAggregator& merged = *group->merge_scratch;
      merged.Reset();
      std::string frame;
      for (const StreamingAggregator& shard : group->shards) {
        if (config.wire_checkpoints) {
          frame.clear();
          NUMDIST_RETURN_NOT_OK(
              wire::EncodeSnapshotFrame(group->epsilon, shard, &frame));
          NUMDIST_RETURN_NOT_OK(wire::DecodeSnapshotFrameInto(
              group->epsilon, wire::FrameBytes(frame), &merged));
        } else {
          NUMDIST_RETURN_NOT_OK(merged.Merge(shard));
        }
      }
      NUMDIST_ASSIGN_OR_RETURN(EmResult em, merged.Snapshot());

      std::vector<double> truth(config.d, 0.0);
      for (const std::vector<uint64_t>& shard_truth : group->truth_counts) {
        for (size_t i = 0; i < config.d; ++i) {
          truth[i] += static_cast<double>(shard_truth[i]);
        }
      }

      // Incremental companion: roll the group's warm/mini-batch estimate
      // forward over the merged cumulative counts, and forget the raw
      // truth counts on the SAME schedule before normalization — the
      // resulting distance is drift-tracking error over the effective
      // window, not error against all history.
      EmResult inc_em;
      std::vector<double> inc_truth;
      if (group->inc.has_value()) {
        NUMDIST_ASSIGN_OR_RETURN(inc_em, group->inc->Update(merged));
        const double n_now = static_cast<double>(group->reports);
        double lambda = 1.0;
        if (config.incremental == IncrementalMode::kMiniBatch) {
          lambda =
              std::exp2(-(n_now - group->prev_truth_n) / config.half_life);
        }
        for (size_t i = 0; i < config.d; ++i) {
          group->decayed_truth[i] = lambda * group->decayed_truth[i] +
                                    (truth[i] - group->prev_truth[i]);
        }
        group->prev_truth = truth;
        group->prev_truth_n = n_now;
        inc_truth = group->decayed_truth;
        hist::Normalize(&inc_truth);
      }
      hist::Normalize(&truth);

      ScenarioCheckpoint checkpoint;
      checkpoint.phase_index = p;
      checkpoint.phase = phase.name;
      checkpoint.checkpoint_index = c;
      checkpoint.epsilon = epsilon;
      checkpoint.group_reports = group->reports;
      checkpoint.total_reports = result.total_reports;
      checkpoint.wasserstein = WassersteinDistance(truth, em.estimate);
      checkpoint.ks = KsDistance(truth, em.estimate);
      checkpoint.em_iterations = em.iterations;
      checkpoint.em_converged = em.converged;
      checkpoint.estimate = std::move(em.estimate);
      checkpoint.truth = std::move(truth);
      if (group->inc.has_value()) {
        checkpoint.inc_em_iterations = inc_em.iterations;
        checkpoint.inc_total_iterations =
            group->inc->checkpoint().total_iterations;
        checkpoint.inc_wasserstein =
            WassersteinDistance(inc_truth, inc_em.estimate);
        checkpoint.inc_ks = KsDistance(inc_truth, inc_em.estimate);
        checkpoint.inc_estimate = std::move(inc_em.estimate);
      }
      if (group->ever_attacked) {
        for (const uint64_t a : group->attacked_counts) {
          checkpoint.atk_reports += a;
        }
        checkpoint.atk_gain = checkpoint.estimate[group->attack_target] -
                              checkpoint.truth[group->attack_target];
      }
      if (config.defense) {
        // The spike detector runs on the merged OUTPUT counts: output
        // poisoning piles a whole cohort onto one output bucket, which is
        // glaring there and already smoothed away in the EM estimate.
        NUMDIST_ASSIGN_OR_RETURN(
            const DefenseReport def,
            AnalyzeCounts(merged.counts(), config.defense_options));
        checkpoint.def_spike_z = def.max_spike_z;
        checkpoint.def_spike_bucket = def.spike_bucket;
        checkpoint.def_flagged = def.flagged;
      }
      result.checkpoints.push_back(std::move(checkpoint));
    }
  }
  return result;
}

namespace {

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

// Non-negative integer parse for scenario keys. Rejects negatives and
// trailing garbage instead of letting them wrap through size_t (a literal
// `d = -1` must be InvalidArgument, not a 2^64-bucket allocation).
Result<uint64_t> ParseCount(const std::string& key, const std::string& value,
                            size_t line_no) {
  char* parse_end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &parse_end, 10);
  if (value.empty() || parse_end != value.c_str() + value.size() ||
      parsed < 0) {
    return Status::InvalidArgument(
        "scenario line " + std::to_string(line_no) + ": '" + key +
        "' must be a non-negative integer, got '" + value + "'");
  }
  return static_cast<uint64_t>(parsed);
}

// Fraction parse for attack keys: finite double in [0, 1]. "nan", "inf",
// 1.5 and -0.1 are all typed errors — never silently clamped (the PR 3
// validation posture).
Result<double> ParseFraction(const std::string& key, const std::string& value,
                             size_t line_no) {
  char* parse_end = nullptr;
  const double parsed = std::strtod(value.c_str(), &parse_end);
  if (value.empty() || parse_end != value.c_str() + value.size() ||
      !std::isfinite(parsed) || parsed < 0.0 || parsed > 1.0) {
    return Status::InvalidArgument(
        "scenario line " + std::to_string(line_no) + ": '" + key +
        "' must be a number in [0, 1], got '" + value + "'");
  }
  return parsed;
}

// Positive finite double parse for epsilon keys.
Result<double> ParseEpsilon(const std::string& value, size_t line_no) {
  char* parse_end = nullptr;
  const double parsed = std::strtod(value.c_str(), &parse_end);
  if (value.empty() || parse_end != value.c_str() + value.size() ||
      !(parsed > 0.0) || !std::isfinite(parsed)) {
    return Status::InvalidArgument(
        "scenario line " + std::to_string(line_no) +
        ": epsilon must be a positive number, got '" + value + "'");
  }
  return parsed;
}

Result<std::vector<MixtureComponent>> ParseMixture(const std::string& text,
                                                   size_t line_no) {
  std::vector<MixtureComponent> mixture;
  std::stringstream ss(text);
  std::string term;
  while (std::getline(ss, term, ',')) {
    term = Trim(term);
    if (term.empty()) continue;
    std::string name = term;
    double weight = 1.0;
    const size_t colon = term.find(':');
    if (colon != std::string::npos) {
      name = Trim(term.substr(0, colon));
      const std::string w = Trim(term.substr(colon + 1));
      char* parse_end = nullptr;
      weight = std::strtod(w.c_str(), &parse_end);
      if (w.empty() || parse_end != w.c_str() + w.size()) {
        return Status::InvalidArgument("scenario line " +
                                       std::to_string(line_no) +
                                       ": bad mixture weight '" + w + "'");
      }
    }
    DatasetId id;
    if (!ParseDatasetId(name, &id)) {
      return Status::InvalidArgument("scenario line " +
                                     std::to_string(line_no) +
                                     ": unknown dataset '" + name + "'");
    }
    mixture.push_back({id, weight});
  }
  if (mixture.empty()) {
    return Status::InvalidArgument("scenario line " + std::to_string(line_no) +
                                   ": empty mixture");
  }
  return mixture;
}

}  // namespace

Result<ScenarioConfig> ParseScenarioText(const std::string& text) {
  ScenarioConfig config;
  ScenarioPhase* phase = nullptr;
  std::stringstream ss(text);
  std::string raw;
  size_t line_no = 0;
  while (std::getline(ss, raw)) {
    ++line_no;
    const size_t hash = raw.find('#');
    if (hash != std::string::npos) raw = raw.substr(0, hash);
    const std::string line = Trim(raw);
    if (line.empty()) continue;
    if (line == "[phase]") {
      config.phases.emplace_back();
      phase = &config.phases.back();
      continue;
    }
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("scenario line " +
                                     std::to_string(line_no) +
                                     ": expected key = value or [phase]");
    }
    const std::string key = Trim(line.substr(0, eq));
    const std::string value = Trim(line.substr(eq + 1));
    const auto bad_key = [&]() -> Status {
      return Status::InvalidArgument("scenario line " +
                                     std::to_string(line_no) +
                                     ": unknown key '" + key + "'");
    };
    if (phase == nullptr) {
      if (key == "name") {
        config.name = value;
      } else if (key == "epsilon") {
        NUMDIST_ASSIGN_OR_RETURN(config.epsilon,
                                 ParseEpsilon(value, line_no));
      } else if (key == "d") {
        NUMDIST_ASSIGN_OR_RETURN(config.d, ParseCount(key, value, line_no));
      } else if (key == "shards") {
        NUMDIST_ASSIGN_OR_RETURN(config.shards,
                                 ParseCount(key, value, line_no));
      } else if (key == "seed") {
        NUMDIST_ASSIGN_OR_RETURN(config.seed, ParseCount(key, value, line_no));
      } else if (key == "wire_checkpoints") {
        NUMDIST_ASSIGN_OR_RETURN(const uint64_t flag,
                                 ParseCount(key, value, line_no));
        if (flag > 1) {
          return Status::InvalidArgument(
              "scenario line " + std::to_string(line_no) +
              ": 'wire_checkpoints' must be 0 or 1");
        }
        config.wire_checkpoints = flag == 1;
      } else if (key == "incremental") {
        if (value == "off") {
          config.incremental = IncrementalMode::kOff;
        } else if (value == "warm") {
          config.incremental = IncrementalMode::kWarm;
        } else if (value == "minibatch") {
          config.incremental = IncrementalMode::kMiniBatch;
        } else {
          return Status::InvalidArgument(
              "scenario line " + std::to_string(line_no) +
              ": 'incremental' must be off, warm, or minibatch, got '" +
              value + "'");
        }
      } else if (key == "half_life") {
        char* parse_end = nullptr;
        const double parsed = std::strtod(value.c_str(), &parse_end);
        if (value.empty() || parse_end != value.c_str() + value.size() ||
            !(parsed > 0.0) || !std::isfinite(parsed)) {
          return Status::InvalidArgument(
              "scenario line " + std::to_string(line_no) +
              ": 'half_life' must be a positive number, got '" + value +
              "'");
        }
        config.half_life = parsed;
      } else if (key == "defense") {
        if (value == "off") {
          config.defense = false;
        } else if (value == "consistency") {
          config.defense = true;
        } else {
          return Status::InvalidArgument(
              "scenario line " + std::to_string(line_no) +
              ": 'defense' must be off or consistency, got '" + value + "'");
        }
      } else if (key == "defense_threshold") {
        char* parse_end = nullptr;
        const double parsed = std::strtod(value.c_str(), &parse_end);
        if (value.empty() || parse_end != value.c_str() + value.size() ||
            !(parsed > 0.0) || !std::isfinite(parsed)) {
          return Status::InvalidArgument(
              "scenario line " + std::to_string(line_no) +
              ": 'defense_threshold' must be a positive number, got '" +
              value + "'");
        }
        config.defense_options.spike_z_threshold = parsed;
      } else {
        return bad_key();
      }
      continue;
    }
    if (key == "name") {
      phase->name = value;
    } else if (key == "mixture") {
      NUMDIST_ASSIGN_OR_RETURN(phase->mixture, ParseMixture(value, line_no));
    } else if (key == "end_mixture") {
      NUMDIST_ASSIGN_OR_RETURN(phase->end_mixture,
                               ParseMixture(value, line_no));
    } else if (key == "reports") {
      NUMDIST_ASSIGN_OR_RETURN(phase->reports,
                               ParseCount(key, value, line_no));
    } else if (key == "epsilon") {
      NUMDIST_ASSIGN_OR_RETURN(phase->epsilon, ParseEpsilon(value, line_no));
    } else if (key == "checkpoints") {
      NUMDIST_ASSIGN_OR_RETURN(phase->checkpoints,
                               ParseCount(key, value, line_no));
    } else if (key == "attack") {
      Result<AttackKind> kind = ParseAttackKind(value);
      if (!kind.ok()) {
        return Status::InvalidArgument("scenario line " +
                                       std::to_string(line_no) + ": " +
                                       kind.status().message());
      }
      phase->attack.kind = kind.value();
    } else if (key == "attack_fraction") {
      NUMDIST_ASSIGN_OR_RETURN(phase->attack.fraction,
                               ParseFraction(key, value, line_no));
    } else if (key == "attack_target") {
      NUMDIST_ASSIGN_OR_RETURN(phase->attack.target,
                               ParseCount(key, value, line_no));
    } else {
      return bad_key();
    }
  }
  NUMDIST_RETURN_NOT_OK(ValidateScenario(config));
  return config;
}

Result<ScenarioConfig> LoadScenarioFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::InvalidArgument("scenario: cannot open '" + path + "'");
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseScenarioText(buffer.str());
}

const std::vector<std::string>& BuiltinScenarioNames() {
  static const std::vector<std::string> kNames = {
      "drift", "ramp", "eps-schedule", "poison", "churn"};
  return kNames;
}

Result<ScenarioConfig> BuiltinScenario(const std::string& name) {
  if (name == "drift") {
    // Population drifts from Beta(5,2) to the bimodal taxi shape while six
    // collector shards merge at periodic checkpoints.
    return ParseScenarioText(R"(
      name = drift
      epsilon = 1.0
      d = 64
      shards = 6

      [phase]
      name = warmup
      mixture = beta
      reports = 20000
      checkpoints = 2

      [phase]
      name = drift
      mixture = beta
      end_mixture = taxi
      reports = 40000
      checkpoints = 4
    )");
  }
  if (name == "ramp") {
    // Population volume ramps 4x per phase on a fixed spiky distribution:
    // accuracy trajectories under growing n.
    return ParseScenarioText(R"(
      name = ramp
      epsilon = 1.0
      d = 64
      shards = 4

      [phase]
      name = pilot
      mixture = income
      reports = 5000
      checkpoints = 1

      [phase]
      name = rollout
      mixture = income
      reports = 20000
      checkpoints = 2

      [phase]
      name = full
      mixture = income
      reports = 80000
      checkpoints = 2
    )");
  }
  if (name == "eps-schedule") {
    // Privacy budget tightens over time; each epsilon aggregates into its
    // own group, so checkpoints track three separate reconstructions.
    return ParseScenarioText(R"(
      name = eps-schedule
      epsilon = 1.0
      d = 64
      shards = 4

      [phase]
      name = eps-4
      mixture = retirement
      epsilon = 4.0
      reports = 30000
      checkpoints = 2

      [phase]
      name = eps-1
      mixture = retirement
      epsilon = 1.0
      reports = 30000
      checkpoints = 2

      [phase]
      name = eps-0.5
      mixture = retirement
      epsilon = 0.5
      reports = 30000
      checkpoints = 2
    )");
  }
  if (name == "poison") {
    // A clean warmup, then an output-poisoning cohort (10% of users) piles
    // crafted reports onto bucket 48; the consistency detector watches the
    // merged output counts at every checkpoint. The tight epsilon-4 wave
    // is the most poisonable: the crafted reports' support concentrates on
    // the target instead of smearing over a wide wave window.
    return ParseScenarioText(R"(
      name = poison
      epsilon = 4.0
      d = 64
      shards = 4
      defense = consistency
      defense_threshold = 4

      [phase]
      name = clean
      mixture = beta
      reports = 20000
      checkpoints = 2

      [phase]
      name = attack
      mixture = beta
      attack = output
      attack_fraction = 0.1
      attack_target = 48
      reports = 20000
      checkpoints = 2
    )");
  }
  if (name == "churn") {
    // Attacker churn: a malicious cohort joins (input poisoning), departs,
    // and a protocol-following edge-skew cohort arrives late — the defense
    // columns show detection rising and decaying across the phases.
    return ParseScenarioText(R"(
      name = churn
      epsilon = 1.0
      d = 64
      shards = 4
      defense = consistency

      [phase]
      name = join
      mixture = taxi
      reports = 15000
      checkpoints = 1

      [phase]
      name = surge
      mixture = taxi
      attack = input
      attack_fraction = 0.25
      attack_target = 10
      reports = 15000
      checkpoints = 2

      [phase]
      name = depart
      mixture = taxi
      reports = 15000
      checkpoints = 1

      [phase]
      name = skew
      mixture = taxi
      attack = skew
      attack_fraction = 0.2
      reports = 15000
      checkpoints = 1
    )");
  }
  return Status::InvalidArgument(
      "scenario: unknown built-in '" + name +
      "' (have: drift, ramp, eps-schedule, poison, churn)");
}

}  // namespace numdist
