// Dispatch resolution: picks the kernel build once per process (environment
// override first, then CPU detection) and exposes the public entry points,
// each one indirect call into the selected table.
#include "kernels/kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "kernels/kernel_table.h"

namespace numdist::kernels {

namespace {

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool CpuHasAvx512() {
#if defined(__x86_64__) || defined(__i386__)
  // The AVX-512 TU uses mask compares/expands (bw, vl) beyond the f
  // baseline; dq is enabled at compile time, so require it too.
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512bw") &&
         __builtin_cpu_supports("avx512dq") &&
         __builtin_cpu_supports("avx512vl");
#else
  return false;
#endif
}

// Clamps a requested tier to what the binary + CPU can actually run,
// walking down the ladder avx512 -> avx2 -> scalar.
const KernelTable* TableFor(Isa isa) {
  if (isa == Isa::kAvx512 && Avx512Available()) return Avx512KernelTable();
  if (isa != Isa::kScalar && Avx2Available()) return Avx2KernelTable();
  return ScalarKernelTable();
}

// NUMDIST_FORCE_ISA={scalar,avx2,avx512} pins a tier; the legacy boolean
// NUMDIST_FORCE_SCALAR (set-and-not-"0") is kept as an alias for =scalar
// and loses to the new variable when both are set. Unknown values are
// ignored (normal resolution). Returns true when a pin was requested.
bool ForcedIsaFromEnv(Isa* out) {
  if (const char* v = std::getenv("NUMDIST_FORCE_ISA")) {
    if (std::strcmp(v, "scalar") == 0) {
      *out = Isa::kScalar;
      return true;
    }
    if (std::strcmp(v, "avx2") == 0) {
      *out = Isa::kAvx2;
      return true;
    }
    if (std::strcmp(v, "avx512") == 0) {
      *out = Isa::kAvx512;
      return true;
    }
  }
  const char* legacy = std::getenv("NUMDIST_FORCE_SCALAR");
  if (legacy != nullptr && *legacy != '\0' && std::strcmp(legacy, "0") != 0) {
    *out = Isa::kScalar;
    return true;
  }
  return false;
}

const KernelTable* Resolve() {
  Isa forced;
  if (ForcedIsaFromEnv(&forced)) return TableFor(forced);
  return TableFor(Isa::kAvx512);  // widest tier available wins
}

// Resolved once on first use; ForceIsaForTest/ResetIsaForTest may swap it
// (tests and benches only, before spawning workers).
std::atomic<const KernelTable*> g_active{nullptr};

inline const KernelTable* Active() {
  const KernelTable* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    table = Resolve();
    g_active.store(table, std::memory_order_release);
  }
  return table;
}

}  // namespace

bool Avx2Available() { return Avx2KernelTable() != nullptr && CpuHasAvx2(); }

bool Avx512Available() {
  return Avx512KernelTable() != nullptr && CpuHasAvx512();
}

Isa ActiveIsa() {
  const KernelTable* table = Active();
  if (table == Avx512KernelTable()) return Isa::kAvx512;
  if (table == Avx2KernelTable()) return Isa::kAvx2;
  return Isa::kScalar;
}

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

void ForceIsaForTest(Isa isa) {
  g_active.store(TableFor(isa), std::memory_order_release);
}

void ResetIsaForTest() {
  g_active.store(Resolve(), std::memory_order_release);
}

double Dot(const double* a, const double* b, size_t n) {
  return Active()->dot(a, b, n);
}

void Dot2(const double* a0, const double* a1, const double* b, size_t n,
          double* o0, double* o1) {
  Active()->dot2(a0, a1, b, n, o0, o1);
}

double Sum(const double* x, size_t n) { return Active()->sum(x, n); }

void Axpy(double* y, double a, const double* x, size_t n) {
  Active()->axpy(y, a, x, n);
}

void Axpy2(double* y, double a0, const double* x0, double a1,
           const double* x1, size_t n) {
  Active()->axpy2(y, a0, x0, a1, x1, n);
}

double MulAndSum(double* y, const double* x, size_t n) {
  return Active()->mul_and_sum(y, x, n);
}

void Scale(double* x, double a, size_t n) { Active()->scale(x, a, n); }

void WindowCombine(double* y, size_t n, size_t lag, double background,
                   double height) {
  Active()->window_combine(y, n, lag, background, height);
}

void LessThan(const double* u, double threshold, uint8_t* out, size_t n) {
  Active()->less_than(u, threshold, out, n);
}

void GrrResponseMap(const double* u, const uint32_t* values, uint32_t* out,
                    size_t n, double p, double inv_rest, uint32_t domain) {
  Active()->grr_response_map(u, values, out, n, p, inv_rest, domain);
}

}  // namespace numdist::kernels
