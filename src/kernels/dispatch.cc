// Dispatch resolution: picks the kernel build once per process (environment
// override first, then CPU detection) and exposes the public entry points,
// each one indirect call into the selected table.
#include "kernels/kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "kernels/kernel_table.h"

namespace numdist::kernels {

namespace {

bool ForceScalarFromEnv() {
  const char* v = std::getenv("NUMDIST_FORCE_SCALAR");
  // Set-and-not-"0" forces the scalar build (so FORCE_SCALAR=1, =true, =yes
  // all work; =0 and unset select normally).
  return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

const KernelTable* Resolve() {
  const KernelTable* avx2 = Avx2KernelTable();
  if (ForceScalarFromEnv() || avx2 == nullptr || !CpuHasAvx2()) {
    return ScalarKernelTable();
  }
  return avx2;
}

// Resolved once on first use; ForceIsaForTest/ResetIsaForTest may swap it
// (tests and benches only, before spawning workers).
std::atomic<const KernelTable*> g_active{nullptr};

inline const KernelTable* Active() {
  const KernelTable* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    table = Resolve();
    g_active.store(table, std::memory_order_release);
  }
  return table;
}

}  // namespace

bool Avx2Available() { return Avx2KernelTable() != nullptr && CpuHasAvx2(); }

Isa ActiveIsa() {
  return Active() == Avx2KernelTable() ? Isa::kAvx2 : Isa::kScalar;
}

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

void ForceIsaForTest(Isa isa) {
  const KernelTable* table = ScalarKernelTable();
  if (isa == Isa::kAvx2 && Avx2Available()) table = Avx2KernelTable();
  g_active.store(table, std::memory_order_release);
}

void ResetIsaForTest() {
  g_active.store(Resolve(), std::memory_order_release);
}

double Dot(const double* a, const double* b, size_t n) {
  return Active()->dot(a, b, n);
}

void Dot2(const double* a0, const double* a1, const double* b, size_t n,
          double* o0, double* o1) {
  Active()->dot2(a0, a1, b, n, o0, o1);
}

double Sum(const double* x, size_t n) { return Active()->sum(x, n); }

void Axpy(double* y, double a, const double* x, size_t n) {
  Active()->axpy(y, a, x, n);
}

void Axpy2(double* y, double a0, const double* x0, double a1,
           const double* x1, size_t n) {
  Active()->axpy2(y, a0, x0, a1, x1, n);
}

double MulAndSum(double* y, const double* x, size_t n) {
  return Active()->mul_and_sum(y, x, n);
}

void Scale(double* x, double a, size_t n) { Active()->scale(x, a, n); }

void WindowCombine(double* y, size_t n, size_t lag, double background,
                   double height) {
  Active()->window_combine(y, n, lag, background, height);
}

void LessThan(const double* u, double threshold, uint8_t* out, size_t n) {
  Active()->less_than(u, threshold, out, n);
}

void GrrResponseMap(const double* u, const uint32_t* values, uint32_t* out,
                    size_t n, double p, double inv_rest, uint32_t domain) {
  Active()->grr_response_map(u, values, out, n, p, inv_rest, domain);
}

}  // namespace numdist::kernels
