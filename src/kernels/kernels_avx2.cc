// AVX2 kernel build. Compiled with -mavx2 (and -ffp-contract=off) in this
// translation unit only; the rest of the library never needs AVX2 to run.
// Reductions use four 4-lane accumulator chains (16 doubles per step —
// deep enough to hide the vaddpd latency) combined by a fixed tree of
// vector adds and one horizontal fold — the blocked order the scalar build
// mirrors exactly (see kernels.h for the bit-exactness contract).
// Multiplies and adds are separate intrinsics on purpose: no FMA, so the
// scalar build needs no libm fma to match.
#include "kernels/kernel_table.h"

#if defined(NUMDIST_KERNELS_AVX2) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

namespace numdist::kernels {

namespace {

// Combines the four 4-lane accumulator chains (chain c holds stripes
// 4c..4c+3) with the fixed tree the scalar build mirrors: chains paired 4
// stripes apart, then the 128-bit fold pairing lanes 2 apart, then the
// final lane pair — u_j = (s_j + s_{j+4}) + (s_{j+8} + s_{j+12}), result =
// (u_0 + u_2) + (u_1 + u_3).
inline double HorizontalSum(__m256d c0, __m256d c1, __m256d c2, __m256d c3) {
  const __m256d s = _mm256_add_pd(_mm256_add_pd(c0, c1), _mm256_add_pd(c2, c3));
  const __m128d lo = _mm256_castpd256_pd128(s);
  const __m128d hi = _mm256_extractf128_pd(s, 1);
  const __m128d fold = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(fold, _mm_unpackhi_pd(fold, fold)));
}

double DotAvx2(const double* a, const double* b, size_t n) {
  __m256d c0 = _mm256_setzero_pd();
  __m256d c1 = _mm256_setzero_pd();
  __m256d c2 = _mm256_setzero_pd();
  __m256d c3 = _mm256_setzero_pd();
  const size_t n16 = n & ~size_t{15};
  for (size_t i = 0; i < n16; i += 16) {
    c0 = _mm256_add_pd(
        c0, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
    c1 = _mm256_add_pd(c1, _mm256_mul_pd(_mm256_loadu_pd(a + i + 4),
                                         _mm256_loadu_pd(b + i + 4)));
    c2 = _mm256_add_pd(c2, _mm256_mul_pd(_mm256_loadu_pd(a + i + 8),
                                         _mm256_loadu_pd(b + i + 8)));
    c3 = _mm256_add_pd(c3, _mm256_mul_pd(_mm256_loadu_pd(a + i + 12),
                                         _mm256_loadu_pd(b + i + 12)));
  }
  double tail = 0.0;
  for (size_t i = n16; i < n; ++i) tail += a[i] * b[i];
  return HorizontalSum(c0, c1, c2, c3) + tail;
}

// Shared 8-stripe per-row epilogue for Dot2: chains paired 4 apart, then
// the standard 128-bit fold and lane pair.
inline double HorizontalSum2(__m256d c0, __m256d c1) {
  const __m256d s = _mm256_add_pd(c0, c1);
  const __m128d lo = _mm256_castpd256_pd128(s);
  const __m128d hi = _mm256_extractf128_pd(s, 1);
  const __m128d fold = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(fold, _mm_unpackhi_pd(fold, fold)));
}

void Dot2Avx2(const double* a0, const double* a1, const double* b, size_t n,
              double* o0, double* o1) {
  __m256d r0c0 = _mm256_setzero_pd();
  __m256d r0c1 = _mm256_setzero_pd();
  __m256d r1c0 = _mm256_setzero_pd();
  __m256d r1c1 = _mm256_setzero_pd();
  const size_t n8 = n & ~size_t{7};
  for (size_t i = 0; i < n8; i += 8) {
    const __m256d b0 = _mm256_loadu_pd(b + i);
    const __m256d b1 = _mm256_loadu_pd(b + i + 4);
    r0c0 = _mm256_add_pd(r0c0, _mm256_mul_pd(_mm256_loadu_pd(a0 + i), b0));
    r0c1 = _mm256_add_pd(r0c1, _mm256_mul_pd(_mm256_loadu_pd(a0 + i + 4), b1));
    r1c0 = _mm256_add_pd(r1c0, _mm256_mul_pd(_mm256_loadu_pd(a1 + i), b0));
    r1c1 = _mm256_add_pd(r1c1, _mm256_mul_pd(_mm256_loadu_pd(a1 + i + 4), b1));
  }
  double t0 = 0.0;
  double t1 = 0.0;
  for (size_t i = n8; i < n; ++i) {
    t0 += a0[i] * b[i];
    t1 += a1[i] * b[i];
  }
  *o0 = HorizontalSum2(r0c0, r0c1) + t0;
  *o1 = HorizontalSum2(r1c0, r1c1) + t1;
}

double SumAvx2(const double* x, size_t n) {
  __m256d c0 = _mm256_setzero_pd();
  __m256d c1 = _mm256_setzero_pd();
  __m256d c2 = _mm256_setzero_pd();
  __m256d c3 = _mm256_setzero_pd();
  const size_t n16 = n & ~size_t{15};
  for (size_t i = 0; i < n16; i += 16) {
    c0 = _mm256_add_pd(c0, _mm256_loadu_pd(x + i));
    c1 = _mm256_add_pd(c1, _mm256_loadu_pd(x + i + 4));
    c2 = _mm256_add_pd(c2, _mm256_loadu_pd(x + i + 8));
    c3 = _mm256_add_pd(c3, _mm256_loadu_pd(x + i + 12));
  }
  double tail = 0.0;
  for (size_t i = n16; i < n; ++i) tail += x[i];
  return HorizontalSum(c0, c1, c2, c3) + tail;
}

void AxpyAvx2(double* y, double a, const double* x, size_t n) {
  const __m256d av = _mm256_set1_pd(a);
  const size_t n16 = n & ~size_t{15};
  for (size_t i = 0; i < n16; i += 16) {
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i),
                             _mm256_mul_pd(av, _mm256_loadu_pd(x + i))));
    _mm256_storeu_pd(
        y + i + 4,
        _mm256_add_pd(_mm256_loadu_pd(y + i + 4),
                      _mm256_mul_pd(av, _mm256_loadu_pd(x + i + 4))));
    _mm256_storeu_pd(
        y + i + 8,
        _mm256_add_pd(_mm256_loadu_pd(y + i + 8),
                      _mm256_mul_pd(av, _mm256_loadu_pd(x + i + 8))));
    _mm256_storeu_pd(
        y + i + 12,
        _mm256_add_pd(_mm256_loadu_pd(y + i + 12),
                      _mm256_mul_pd(av, _mm256_loadu_pd(x + i + 12))));
  }
  for (size_t i = n16; i < n; ++i) y[i] += a * x[i];
}

void Axpy2Avx2(double* y, double a0, const double* x0, double a1,
               const double* x1, size_t n) {
  const __m256d v0 = _mm256_set1_pd(a0);
  const __m256d v1 = _mm256_set1_pd(a1);
  const size_t n8 = n & ~size_t{7};
  for (size_t i = 0; i < n8; i += 8) {
    __m256d acc0 = _mm256_loadu_pd(y + i);
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(v0, _mm256_loadu_pd(x0 + i)));
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(v1, _mm256_loadu_pd(x1 + i)));
    _mm256_storeu_pd(y + i, acc0);
    __m256d acc1 = _mm256_loadu_pd(y + i + 4);
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(v0, _mm256_loadu_pd(x0 + i + 4)));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(v1, _mm256_loadu_pd(x1 + i + 4)));
    _mm256_storeu_pd(y + i + 4, acc1);
  }
  for (size_t i = n8; i < n; ++i) {
    y[i] = (y[i] + a0 * x0[i]) + a1 * x1[i];
  }
}

double MulAndSumAvx2(double* y, const double* x, size_t n) {
  __m256d c0 = _mm256_setzero_pd();
  __m256d c1 = _mm256_setzero_pd();
  __m256d c2 = _mm256_setzero_pd();
  __m256d c3 = _mm256_setzero_pd();
  const size_t n16 = n & ~size_t{15};
  for (size_t i = 0; i < n16; i += 16) {
    const __m256d p0 =
        _mm256_mul_pd(_mm256_loadu_pd(y + i), _mm256_loadu_pd(x + i));
    const __m256d p1 =
        _mm256_mul_pd(_mm256_loadu_pd(y + i + 4), _mm256_loadu_pd(x + i + 4));
    const __m256d p2 =
        _mm256_mul_pd(_mm256_loadu_pd(y + i + 8), _mm256_loadu_pd(x + i + 8));
    const __m256d p3 = _mm256_mul_pd(_mm256_loadu_pd(y + i + 12),
                                     _mm256_loadu_pd(x + i + 12));
    _mm256_storeu_pd(y + i, p0);
    _mm256_storeu_pd(y + i + 4, p1);
    _mm256_storeu_pd(y + i + 8, p2);
    _mm256_storeu_pd(y + i + 12, p3);
    c0 = _mm256_add_pd(c0, p0);
    c1 = _mm256_add_pd(c1, p1);
    c2 = _mm256_add_pd(c2, p2);
    c3 = _mm256_add_pd(c3, p3);
  }
  double tail = 0.0;
  for (size_t i = n16; i < n; ++i) {
    y[i] *= x[i];
    tail += y[i];
  }
  return HorizontalSum(c0, c1, c2, c3) + tail;
}

void ScaleAvx2(double* x, double a, size_t n) {
  const __m256d av = _mm256_set1_pd(a);
  const size_t n8 = n & ~size_t{7};
  for (size_t i = 0; i < n8; i += 8) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(av, _mm256_loadu_pd(x + i)));
    _mm256_storeu_pd(x + i + 4, _mm256_mul_pd(av, _mm256_loadu_pd(x + i + 4)));
  }
  for (size_t i = n8; i < n; ++i) x[i] *= a;
}

void WindowCombineAvx2(double* y, size_t n, size_t lag, double background,
                       double height) {
  const __m256d bg = _mm256_set1_pd(background);
  const __m256d h = _mm256_set1_pd(height);
  size_t j = n;
  // Descending 4-wide: step handles indices [j-4, j). In-place safety: the
  // lagged operand ends at j-1-lag < j-4+1 for lag >= 1... more precisely,
  // every index this step stores ([j-4, j)) is strictly above everything a
  // LATER (lower-j) step reads, and the lagged reads of THIS step
  // ([j-4-lag, j-lag)) lie strictly below every index already stored
  // ([j, n)), so no step ever reads a combined value. Needs the lagged
  // block fully in bounds: j-4-lag >= 0.
  while (j >= 4 && j >= lag + 4) {
    const __m256d cur = _mm256_loadu_pd(y + j - 4);
    const __m256d lagged = _mm256_loadu_pd(y + j - 4 - lag);
    _mm256_storeu_pd(
        y + j - 4,
        _mm256_add_pd(bg, _mm256_mul_pd(h, _mm256_sub_pd(cur, lagged))));
    j -= 4;
  }
  while (j-- > 0) {
    const double lagged = j >= lag ? y[j - lag] : 0.0;
    y[j] = background + height * (y[j] - lagged);
  }
}

void LessThanAvx2(const double* u, double threshold, uint8_t* out, size_t n) {
  const __m256d t = _mm256_set1_pd(threshold);
  // Bit b of the movemask is lane b's compare; expand the 4-bit mask to 4
  // bytes through a tiny table.
  alignas(16) static constexpr uint8_t kExpand[16][4] = {
      {0, 0, 0, 0}, {1, 0, 0, 0}, {0, 1, 0, 0}, {1, 1, 0, 0},
      {0, 0, 1, 0}, {1, 0, 1, 0}, {0, 1, 1, 0}, {1, 1, 1, 0},
      {0, 0, 0, 1}, {1, 0, 0, 1}, {0, 1, 0, 1}, {1, 1, 0, 1},
      {0, 0, 1, 1}, {1, 0, 1, 1}, {0, 1, 1, 1}, {1, 1, 1, 1}};
  const size_t n4 = n & ~size_t{3};
  for (size_t i = 0; i < n4; i += 4) {
    const int mask = _mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(u + i), t, _CMP_LT_OQ));
    __builtin_memcpy(out + i, kExpand[mask], 4);
  }
  for (size_t i = n4; i < n; ++i) out[i] = u[i] < threshold ? 1 : 0;
}

void GrrResponseMapAvx2(const double* u, const uint32_t* values, uint32_t* out,
                        size_t n, double p, double inv_rest, uint32_t domain) {
  const __m256d pv = _mm256_set1_pd(p);
  const __m256d inv = _mm256_set1_pd(inv_rest);
  const __m256d others = _mm256_set1_pd(static_cast<double>(domain - 1));
  const __m128i cap = _mm_set1_epi32(static_cast<int>(domain - 2));
  const __m128i one = _mm_set1_epi32(1);
  const size_t n4 = n & ~size_t{3};
  for (size_t i = 0; i < n4; i += 4) {
    const __m256d uu = _mm256_loadu_pd(u + i);
    // Truthful lanes: u < p. The rejected computation below also runs on
    // truthful lanes (t is negative there) but its result is blended away.
    const __m256d keep64 = _mm256_cmp_pd(uu, pv, _CMP_LT_OQ);
    const __m256d t = _mm256_mul_pd(_mm256_sub_pd(uu, pv), inv);
    __m128i r = _mm256_cvttpd_epi32(_mm256_mul_pd(t, others));
    r = _mm_min_epi32(r, cap);  // clamp the u -> 1.0 rounding edge
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
        values + i));
    // Skip-adjust past the truthful value: r >= v  <=>  r + 1.
    const __m128i ge = _mm_cmpgt_epi32(_mm_add_epi32(r, one), v);
    const __m128i adjusted = _mm_sub_epi32(r, ge);  // ge lanes are -1
    // Narrow the 64-bit compare mask to 32-bit lanes for the blend.
    const __m128i keep_lo = _mm256_castsi256_si128(_mm256_castpd_si256(keep64));
    const __m128i keep_hi =
        _mm256_extracti128_si256(_mm256_castpd_si256(keep64), 1);
    const __m128i keep32 = _mm_castps_si128(
        _mm_shuffle_ps(_mm_castsi128_ps(keep_lo), _mm_castsi128_ps(keep_hi),
                       _MM_SHUFFLE(2, 0, 2, 0)));
    const __m128i result = _mm_blendv_epi8(adjusted, v, keep32);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), result);
  }
  const double others_s = static_cast<double>(domain - 1);
  for (size_t i = n4; i < n; ++i) {
    const uint32_t v = values[i];
    if (u[i] < p) {
      out[i] = v;
      continue;
    }
    const double t = (u[i] - p) * inv_rest;
    uint32_t r = static_cast<uint32_t>(t * others_s);
    if (r > domain - 2) r = domain - 2;
    out[i] = r >= v ? r + 1 : r;
  }
}

constexpr KernelTable kAvx2Table = {
    DotAvx2,         Dot2Avx2,          SumAvx2,
    AxpyAvx2,        Axpy2Avx2,         MulAndSumAvx2,
    ScaleAvx2,       WindowCombineAvx2, LessThanAvx2,
    GrrResponseMapAvx2,
};

}  // namespace

const KernelTable* Avx2KernelTable() { return &kAvx2Table; }

}  // namespace numdist::kernels

#else  // !NUMDIST_KERNELS_AVX2

namespace numdist::kernels {
const KernelTable* Avx2KernelTable() { return nullptr; }
}  // namespace numdist::kernels

#endif
