// AVX-512 kernel build. Compiled with -mavx512f/-mavx512bw/-mavx512dq/
// -mavx512vl (and -ffp-contract=off) in this translation unit only.
//
// The bit-exactness contract (kernels.h) pins the 16-stripe reduction
// order, so this build keeps exactly TWO 8-lane accumulator chains: chain A
// holds stripes 0..7, chain B stripes 8..15. Lane j of lo256(A) + hi256(A)
// is s_j + s_{j+4} and lane j of lo256(B) + hi256(B) is s_{j+8} + s_{j+12},
// so adding the two 256-bit halves of each chain reproduces, per lane, the
// AVX2 combine u_j = (s_j + s_{j+4}) + (s_{j+8} + s_{j+12}); the shared
// 128-bit fold then yields (u_0 + u_2) + (u_1 + u_3). Every per-lane add
// sequence matches the scalar and AVX2 builds operation for operation —
// widening to more chains would change the reduction tree and break the
// contract. Multiplies and adds stay separate intrinsics: no FMA.
#include "kernels/kernel_table.h"

#if defined(NUMDIST_KERNELS_AVX512) && \
    (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

namespace numdist::kernels {

namespace {

// Folds the AVX2-shaped combine vector u (lane j = u_j) into
// (u_0 + u_2) + (u_1 + u_3) — identical to the AVX2 epilogue.
inline double Fold256(__m256d u) {
  const __m128d lo = _mm256_castpd256_pd128(u);
  const __m128d hi = _mm256_extractf128_pd(u, 1);
  const __m128d fold = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(fold, _mm_unpackhi_pd(fold, fold)));
}

// Combines the two 8-lane chains (A = stripes 0..7, B = stripes 8..15):
// halves of each chain pair stripes 4 apart, the cross-chain add pairs 8
// apart — u_j = (s_j + s_{j+4}) + (s_{j+8} + s_{j+12}), then the fold.
inline double HorizontalSum512(__m512d ca, __m512d cb) {
  const __m256d a =
      _mm256_add_pd(_mm512_castpd512_pd256(ca), _mm512_extractf64x4_pd(ca, 1));
  const __m256d b =
      _mm256_add_pd(_mm512_castpd512_pd256(cb), _mm512_extractf64x4_pd(cb, 1));
  return Fold256(_mm256_add_pd(a, b));
}

double DotAvx512(const double* a, const double* b, size_t n) {
  __m512d ca = _mm512_setzero_pd();
  __m512d cb = _mm512_setzero_pd();
  const size_t n16 = n & ~size_t{15};
  for (size_t i = 0; i < n16; i += 16) {
    ca = _mm512_add_pd(
        ca, _mm512_mul_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i)));
    cb = _mm512_add_pd(cb, _mm512_mul_pd(_mm512_loadu_pd(a + i + 8),
                                         _mm512_loadu_pd(b + i + 8)));
  }
  double tail = 0.0;
  for (size_t i = n16; i < n; ++i) tail += a[i] * b[i];
  return HorizontalSum512(ca, cb) + tail;
}

// Dot2's 8-stripe per-row order: one chain per row; lo256 + hi256 is the
// AVX2 c0 + c1 (stripes paired 4 apart), then the standard fold.
void Dot2Avx512(const double* a0, const double* a1, const double* b, size_t n,
                double* o0, double* o1) {
  __m512d r0 = _mm512_setzero_pd();
  __m512d r1 = _mm512_setzero_pd();
  const size_t n8 = n & ~size_t{7};
  for (size_t i = 0; i < n8; i += 8) {
    const __m512d bv = _mm512_loadu_pd(b + i);
    r0 = _mm512_add_pd(r0, _mm512_mul_pd(_mm512_loadu_pd(a0 + i), bv));
    r1 = _mm512_add_pd(r1, _mm512_mul_pd(_mm512_loadu_pd(a1 + i), bv));
  }
  double t0 = 0.0;
  double t1 = 0.0;
  for (size_t i = n8; i < n; ++i) {
    t0 += a0[i] * b[i];
    t1 += a1[i] * b[i];
  }
  *o0 = Fold256(_mm256_add_pd(_mm512_castpd512_pd256(r0),
                              _mm512_extractf64x4_pd(r0, 1))) +
        t0;
  *o1 = Fold256(_mm256_add_pd(_mm512_castpd512_pd256(r1),
                              _mm512_extractf64x4_pd(r1, 1))) +
        t1;
}

double SumAvx512(const double* x, size_t n) {
  __m512d ca = _mm512_setzero_pd();
  __m512d cb = _mm512_setzero_pd();
  const size_t n16 = n & ~size_t{15};
  for (size_t i = 0; i < n16; i += 16) {
    ca = _mm512_add_pd(ca, _mm512_loadu_pd(x + i));
    cb = _mm512_add_pd(cb, _mm512_loadu_pd(x + i + 8));
  }
  double tail = 0.0;
  for (size_t i = n16; i < n; ++i) tail += x[i];
  return HorizontalSum512(ca, cb) + tail;
}

void AxpyAvx512(double* y, double a, const double* x, size_t n) {
  const __m512d av = _mm512_set1_pd(a);
  const size_t n16 = n & ~size_t{15};
  for (size_t i = 0; i < n16; i += 16) {
    _mm512_storeu_pd(
        y + i, _mm512_add_pd(_mm512_loadu_pd(y + i),
                             _mm512_mul_pd(av, _mm512_loadu_pd(x + i))));
    _mm512_storeu_pd(
        y + i + 8,
        _mm512_add_pd(_mm512_loadu_pd(y + i + 8),
                      _mm512_mul_pd(av, _mm512_loadu_pd(x + i + 8))));
  }
  for (size_t i = n16; i < n; ++i) y[i] += a * x[i];
}

void Axpy2Avx512(double* y, double a0, const double* x0, double a1,
                 const double* x1, size_t n) {
  const __m512d v0 = _mm512_set1_pd(a0);
  const __m512d v1 = _mm512_set1_pd(a1);
  const size_t n8 = n & ~size_t{7};
  for (size_t i = 0; i < n8; i += 8) {
    __m512d acc = _mm512_loadu_pd(y + i);
    acc = _mm512_add_pd(acc, _mm512_mul_pd(v0, _mm512_loadu_pd(x0 + i)));
    acc = _mm512_add_pd(acc, _mm512_mul_pd(v1, _mm512_loadu_pd(x1 + i)));
    _mm512_storeu_pd(y + i, acc);
  }
  for (size_t i = n8; i < n; ++i) {
    y[i] = (y[i] + a0 * x0[i]) + a1 * x1[i];
  }
}

double MulAndSumAvx512(double* y, const double* x, size_t n) {
  __m512d ca = _mm512_setzero_pd();
  __m512d cb = _mm512_setzero_pd();
  const size_t n16 = n & ~size_t{15};
  for (size_t i = 0; i < n16; i += 16) {
    const __m512d pa =
        _mm512_mul_pd(_mm512_loadu_pd(y + i), _mm512_loadu_pd(x + i));
    const __m512d pb =
        _mm512_mul_pd(_mm512_loadu_pd(y + i + 8), _mm512_loadu_pd(x + i + 8));
    _mm512_storeu_pd(y + i, pa);
    _mm512_storeu_pd(y + i + 8, pb);
    ca = _mm512_add_pd(ca, pa);
    cb = _mm512_add_pd(cb, pb);
  }
  double tail = 0.0;
  for (size_t i = n16; i < n; ++i) {
    y[i] *= x[i];
    tail += y[i];
  }
  return HorizontalSum512(ca, cb) + tail;
}

void ScaleAvx512(double* x, double a, size_t n) {
  const __m512d av = _mm512_set1_pd(a);
  const size_t n8 = n & ~size_t{7};
  for (size_t i = 0; i < n8; i += 8) {
    _mm512_storeu_pd(x + i, _mm512_mul_pd(av, _mm512_loadu_pd(x + i)));
  }
  for (size_t i = n8; i < n; ++i) x[i] *= a;
}

void WindowCombineAvx512(double* y, size_t n, size_t lag, double background,
                         double height) {
  const __m512d bg = _mm512_set1_pd(background);
  const __m512d h = _mm512_set1_pd(height);
  size_t j = n;
  // Descending 8-wide; same in-place argument as the AVX2 build: each step
  // stores [j-8, j), every later step reads strictly below that, and this
  // step's lagged reads [j-8-lag, j-lag) lie strictly below every index
  // already stored ([j, n)). Needs the lagged block in bounds: j-8-lag >= 0.
  while (j >= 8 && j >= lag + 8) {
    const __m512d cur = _mm512_loadu_pd(y + j - 8);
    const __m512d lagged = _mm512_loadu_pd(y + j - 8 - lag);
    _mm512_storeu_pd(
        y + j - 8,
        _mm512_add_pd(bg, _mm512_mul_pd(h, _mm512_sub_pd(cur, lagged))));
    j -= 8;
  }
  while (j-- > 0) {
    const double lagged = j >= lag ? y[j - lag] : 0.0;
    y[j] = background + height * (y[j] - lagged);
  }
}

void LessThanAvx512(const double* u, double threshold, uint8_t* out,
                    size_t n) {
  const __m512d t = _mm512_set1_pd(threshold);
  const size_t n8 = n & ~size_t{7};
  for (size_t i = 0; i < n8; i += 8) {
    const __mmask8 m =
        _mm512_cmp_pd_mask(_mm512_loadu_pd(u + i), t, _CMP_LT_OQ);
    // Mask bit b set -> byte b = 1; masked-zero set1 expands it directly.
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + i),
                     _mm_maskz_set1_epi8(m, 1));
  }
  for (size_t i = n8; i < n; ++i) out[i] = u[i] < threshold ? 1 : 0;
}

void GrrResponseMapAvx512(const double* u, const uint32_t* values,
                          uint32_t* out, size_t n, double p, double inv_rest,
                          uint32_t domain) {
  const __m512d pv = _mm512_set1_pd(p);
  const __m512d inv = _mm512_set1_pd(inv_rest);
  const __m512d others = _mm512_set1_pd(static_cast<double>(domain - 1));
  const __m256i cap = _mm256_set1_epi32(static_cast<int>(domain - 2));
  const __m256i one = _mm256_set1_epi32(1);
  const size_t n8 = n & ~size_t{7};
  for (size_t i = 0; i < n8; i += 8) {
    const __m512d uu = _mm512_loadu_pd(u + i);
    // Truthful lanes: u < p. The rejected computation also runs on truthful
    // lanes (t is negative there) but its result is blended away.
    const __mmask8 keep = _mm512_cmp_pd_mask(uu, pv, _CMP_LT_OQ);
    const __m512d t = _mm512_mul_pd(_mm512_sub_pd(uu, pv), inv);
    __m256i r = _mm512_cvttpd_epi32(_mm512_mul_pd(t, others));
    r = _mm256_min_epi32(r, cap);  // clamp the u -> 1.0 rounding edge
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    // Skip-adjust past the truthful value: r >= v  <=>  r + 1 > v.
    const __m256i ge = _mm256_cmpgt_epi32(_mm256_add_epi32(r, one), v);
    const __m256i adjusted = _mm256_sub_epi32(r, ge);  // ge lanes are -1
    const __m256i result = _mm256_mask_blend_epi32(keep, adjusted, v);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), result);
  }
  const double others_s = static_cast<double>(domain - 1);
  for (size_t i = n8; i < n; ++i) {
    const uint32_t v = values[i];
    if (u[i] < p) {
      out[i] = v;
      continue;
    }
    const double t = (u[i] - p) * inv_rest;
    uint32_t r = static_cast<uint32_t>(t * others_s);
    if (r > domain - 2) r = domain - 2;
    out[i] = r >= v ? r + 1 : r;
  }
}

constexpr KernelTable kAvx512Table = {
    DotAvx512,         Dot2Avx512,          SumAvx512,
    AxpyAvx512,        Axpy2Avx512,         MulAndSumAvx512,
    ScaleAvx512,       WindowCombineAvx512, LessThanAvx512,
    GrrResponseMapAvx512,
};

}  // namespace

const KernelTable* Avx512KernelTable() { return &kAvx512Table; }

}  // namespace numdist::kernels

#else  // !NUMDIST_KERNELS_AVX512

namespace numdist::kernels {
const KernelTable* Avx512KernelTable() { return nullptr; }
}  // namespace numdist::kernels

#endif
