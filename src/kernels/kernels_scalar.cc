// Portable scalar kernel build. Mirrors the AVX2 build operation-for-
// operation: reductions keep 16 striped accumulators combined in the exact
// tree order the vector horizontal add produces, elementwise kernels
// evaluate the same per-element expression. Compiled with
// -ffp-contract=off so the compiler cannot fuse a multiply-add here that
// the explicit mul/add intrinsics on the AVX2 side would keep separate —
// that is what makes the two builds bit-exact (kernels.h contract).
#include "kernels/kernel_table.h"

namespace numdist::kernels {

namespace {

// Combines 16 striped accumulators exactly like the AVX2 epilogue: the two
// vector adds pairing chains 4 apart, the 128-bit fold pairing lanes 2
// apart, then the final lane pair.
inline double CombineBlocked(const double s[16]) {
  double u[4];
  for (size_t j = 0; j < 4; ++j) {
    u[j] = (s[j] + s[j + 4]) + (s[j + 8] + s[j + 12]);
  }
  return (u[0] + u[2]) + (u[1] + u[3]);
}

double DotScalar(const double* a, const double* b, size_t n) {
  double s[16] = {0};
  const size_t n16 = n & ~size_t{15};
  for (size_t i = 0; i < n16; i += 16) {
    for (size_t l = 0; l < 16; ++l) s[l] += a[i + l] * b[i + l];
  }
  double tail = 0.0;
  for (size_t i = n16; i < n; ++i) tail += a[i] * b[i];
  return CombineBlocked(s) + tail;
}

void Dot2Scalar(const double* a0, const double* a1, const double* b, size_t n,
                double* o0, double* o1) {
  double s0[8] = {0};
  double s1[8] = {0};
  const size_t n8 = n & ~size_t{7};
  for (size_t i = 0; i < n8; i += 8) {
    for (size_t l = 0; l < 8; ++l) {
      s0[l] += a0[i + l] * b[i + l];
      s1[l] += a1[i + l] * b[i + l];
    }
  }
  double t0 = 0.0;
  double t1 = 0.0;
  for (size_t i = n8; i < n; ++i) {
    t0 += a0[i] * b[i];
    t1 += a1[i] * b[i];
  }
  // Per-row 8-stripe combine mirroring the AVX2 epilogue: chains paired 4
  // apart, 128-bit fold 2 apart, final lane pair.
  double u0[4];
  double u1[4];
  for (size_t j = 0; j < 4; ++j) {
    u0[j] = s0[j] + s0[j + 4];
    u1[j] = s1[j] + s1[j + 4];
  }
  *o0 = (u0[0] + u0[2]) + (u0[1] + u0[3]) + t0;
  *o1 = (u1[0] + u1[2]) + (u1[1] + u1[3]) + t1;
}

double SumScalar(const double* x, size_t n) {
  double s[16] = {0};
  const size_t n16 = n & ~size_t{15};
  for (size_t i = 0; i < n16; i += 16) {
    for (size_t l = 0; l < 16; ++l) s[l] += x[i + l];
  }
  double tail = 0.0;
  for (size_t i = n16; i < n; ++i) tail += x[i];
  return CombineBlocked(s) + tail;
}

void AxpyScalar(double* y, double a, const double* x, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void Axpy2Scalar(double* y, double a0, const double* x0, double a1,
                 const double* x1, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    y[i] = (y[i] + a0 * x0[i]) + a1 * x1[i];
  }
}

double MulAndSumScalar(double* y, const double* x, size_t n) {
  double s[16] = {0};
  const size_t n16 = n & ~size_t{15};
  for (size_t i = 0; i < n16; i += 16) {
    for (size_t l = 0; l < 16; ++l) {
      y[i + l] *= x[i + l];
      s[l] += y[i + l];
    }
  }
  double tail = 0.0;
  for (size_t i = n16; i < n; ++i) {
    y[i] *= x[i];
    tail += y[i];
  }
  return CombineBlocked(s) + tail;
}

void ScaleScalar(double* x, double a, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] *= a;
}

void WindowCombineScalar(double* y, size_t n, size_t lag, double background,
                         double height) {
  for (size_t j = n; j-- > 0;) {
    const double lagged = j >= lag ? y[j - lag] : 0.0;
    y[j] = background + height * (y[j] - lagged);
  }
}

void LessThanScalar(const double* u, double threshold, uint8_t* out,
                    size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = u[i] < threshold ? 1 : 0;
}

void GrrResponseMapScalar(const double* u, const uint32_t* values,
                          uint32_t* out, size_t n, double p, double inv_rest,
                          uint32_t domain) {
  const double others = static_cast<double>(domain - 1);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t v = values[i];
    if (u[i] < p) {
      out[i] = v;
      continue;
    }
    const double t = (u[i] - p) * inv_rest;
    uint32_t r = static_cast<uint32_t>(t * others);
    if (r > domain - 2) r = domain - 2;
    out[i] = r >= v ? r + 1 : r;
  }
}

constexpr KernelTable kScalarTable = {
    DotScalar,         Dot2Scalar,          SumScalar,
    AxpyScalar,        Axpy2Scalar,         MulAndSumScalar,
    ScaleScalar,       WindowCombineScalar, LessThanScalar,
    GrrResponseMapScalar,
};

}  // namespace

const KernelTable* ScalarKernelTable() { return &kScalarTable; }

}  // namespace numdist::kernels
