// Runtime-dispatched SIMD numeric kernels for the report/EM hot paths.
//
// Every kernel has three implementations selected once per process: an
// AVX-512 build (own TU, -mavx512{f,bw,dq,vl}), an AVX2 build (own TU,
// -mavx2) and a portable scalar build. All are BIT-EXACT by construction —
// this is the layer's hard contract, enforced by tests/kernels_test.cc:
//
//   * Reductions (Dot, Sum, MulAndSum) use a fixed lane-blocked summation
//     order: 16 independent accumulators striped over the input
//     (accumulator l sums elements 16k+l), combined by the fixed tree
//       u_j = (s_j + s_{j+4}) + (s_{j+8} + s_{j+12}),  j = 0..3
//       result = (u_0 + u_2) + (u_1 + u_3)
//     — exactly the vector-add + horizontal-add tree the AVX2 path (four
//     4-lane chains) produces — plus a sequential scalar tail for n % 16
//     leftovers. The AVX-512 build keeps exactly two 8-lane chains whose
//     256-bit halves recombine into the same tree per lane, and the scalar
//     build performs the same operations on the same values in the same
//     order, so all paths round identically.
//   * Elementwise kernels (Axpy, Scale, WindowCombine, LessThan,
//     GrrResponseMap) are data-parallel IEEE operations with no
//     reassociation; vector and scalar lanes compute the same expression
//     per element. No FMA contraction is used on any path (the kernel
//     TUs are compiled with -ffp-contract=off), so a fused multiply-add
//     can never make one path round differently from another.
//
// Dispatch: resolved on first use. NUMDIST_FORCE_ISA={scalar,avx2,avx512}
// in the environment pins one build (used by CI to diff the tiers; a pinned
// tier the binary/CPU cannot run falls back down the ladder avx512 -> avx2
// -> scalar). The legacy boolean NUMDIST_FORCE_SCALAR is kept as an alias
// for NUMDIST_FORCE_ISA=scalar and is overridden by the new variable when
// both are set. Otherwise the widest available tier wins: AVX-512 when the
// binary carries that TU and the CPU reports avx512{f,bw,dq,vl}, else AVX2,
// else scalar. ForceIsaForTest() overrides the choice in-process so one
// test binary can compare all paths directly.
#pragma once

#include <cstddef>
#include <cstdint>

namespace numdist::kernels {

/// Instruction sets a kernel build can target.
enum class Isa {
  kScalar,  ///< portable blocked scalar build (always available)
  kAvx2,    ///< AVX2 build (x86-64 with the avx2 feature bit)
  kAvx512,  ///< AVX-512 build (x86-64 with avx512f/bw/dq/vl feature bits)
};

/// The ISA the process resolved (env override, CPU detection, compiled-in
/// availability). Stable after the first kernel call unless overridden.
Isa ActiveIsa();

/// Human-readable name ("scalar", "avx2", "avx512") for logs and bench
/// labels.
const char* IsaName(Isa isa);

/// True iff this binary carries the AVX2 kernel build and the CPU supports
/// it (ignores the environment override).
bool Avx2Available();

/// True iff this binary carries the AVX-512 kernel build and the CPU
/// supports avx512f/bw/dq/vl (ignores the environment override).
bool Avx512Available();

/// Test/bench-only: pins dispatch to `isa`. Pinning a tier whose build or
/// CPU support is missing falls back down the ladder (avx512 -> avx2 ->
/// scalar). Not thread-safe against concurrent kernel calls; call before
/// spawning workers.
void ForceIsaForTest(Isa isa);

/// Test/bench-only: undoes ForceIsaForTest and re-resolves from the
/// environment + CPU.
void ResetIsaForTest();

/// Blocked dot product sum_i a[i] * b[i] (fixed-order reduction).
double Dot(const double* a, const double* b, size_t n);

/// Two dot products against one shared right-hand side: *o0 = a0 · b,
/// *o1 = a1 · b, loading b once. Each row reduces over 8 stripes (two
/// 4-lane chains, combined u_j = s_j + s_{j+4}, result (u_0 + u_2) +
/// (u_1 + u_3)) — a FIXED order of its own, mirrored by the scalar build,
/// but intentionally different from Dot's 16-stripe order: Dot2(r0, r1, x)
/// and {Dot(r0, x), Dot(r1, x)} agree only to rounding. The dense EM sweep
/// pairs rows with this to halve its x-vector traffic.
void Dot2(const double* a0, const double* a1, const double* b, size_t n,
          double* o0, double* o1);

/// Blocked sum of x[0..n) (fixed-order reduction).
double Sum(const double* x, size_t n);

/// y[i] += a * x[i] for i in [0, n). Elementwise; no reduction.
void Axpy(double* y, double a, const double* x, size_t n);

/// y[i] = (y[i] + a0 * x0[i]) + a1 * x1[i]: two accumulations in one pass
/// over y, bit-identical to Axpy(y, a0, x0, n) then Axpy(y, a1, x1, n)
/// (same two rounded adds per element, one y load/store instead of two).
void Axpy2(double* y, double a0, const double* x0, double a1,
           const double* x1, size_t n);

/// y[i] *= x[i] for i in [0, n); returns the blocked sum of the products
/// (the EM M-step's multiply-and-total in one pass).
double MulAndSum(double* y, const double* x, size_t n);

/// x[i] *= a for i in [0, n).
void Scale(double* x, double a, size_t n);

/// In-place shifted-window combine over a prefix-sum array, walked from the
/// top index down: y[j] = background + height * (y[j] - (j >= lag ?
/// y_before[j - lag] : 0)), where y_before is the array's prior content.
/// The descending walk makes the update safe in place for any lag >= 1
/// (the lagged operand at index j - lag < j is never overwritten before it
/// is read). This is the vector half of the discrete sliding-window
/// observation model: a sequential prefix pass fills y, this pass turns it
/// into background-plus-box-kernel responses.
void WindowCombine(double* y, size_t n, size_t lag, double background,
                   double height);

/// out[i] = u[i] < threshold ? 1 : 0 (the vectorized Bernoulli compare
/// behind Rng::FillBernoulli and the OUE row encoder).
void LessThan(const double* u, double threshold, uint8_t* out, size_t n);

/// The GRR single-draw response map: for each i, out[i] = values[i] when
/// u[i] < p (report the truth), otherwise the residual uniform u' =
/// (u[i] - p) * inv_rest (in [0, 1)) is mapped onto the domain - 1 other
/// categories: r = min(trunc(u' * (domain - 1)), domain - 2), skip-adjusted
/// past values[i]. Requires domain >= 2 and inv_rest == 1 / (1 - p).
void GrrResponseMap(const double* u, const uint32_t* values, uint32_t* out,
                    size_t n, double p, double inv_rest, uint32_t domain);

}  // namespace numdist::kernels
