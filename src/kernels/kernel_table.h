// Internal: the function table one kernel build fills in. Each build
// (scalar, AVX2, AVX-512) provides one immutable table; dispatch.cc selects
// which table the public entry points call through. Not installed API — only
// the kernels/ translation units include this.
#pragma once

#include <cstddef>
#include <cstdint>

namespace numdist::kernels {

struct KernelTable {
  double (*dot)(const double*, const double*, size_t);
  void (*dot2)(const double*, const double*, const double*, size_t, double*,
               double*);
  double (*sum)(const double*, size_t);
  void (*axpy)(double*, double, const double*, size_t);
  void (*axpy2)(double*, double, const double*, double, const double*,
                size_t);
  double (*mul_and_sum)(double*, const double*, size_t);
  void (*scale)(double*, double, size_t);
  void (*window_combine)(double*, size_t, size_t, double, double);
  void (*less_than)(const double*, double, uint8_t*, size_t);
  void (*grr_response_map)(const double*, const uint32_t*, uint32_t*, size_t,
                           double, double, uint32_t);
};

/// The portable blocked-scalar build (always available).
const KernelTable* ScalarKernelTable();

/// The AVX2 build, or nullptr when this binary was compiled without it.
const KernelTable* Avx2KernelTable();

/// The AVX-512 build, or nullptr when this binary was compiled without it.
const KernelTable* Avx512KernelTable();

}  // namespace numdist::kernels
