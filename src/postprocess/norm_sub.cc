#include "postprocess/norm_sub.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace numdist {

std::vector<double> NormSub(const std::vector<double>& x, double target) {
  assert(target >= 0.0);
  const size_t d = x.size();
  std::vector<double> out(d, 0.0);
  if (d == 0 || target == 0.0) return out;

  // Find delta with sum_i max(0, x_i + delta) == target. With entries sorted
  // descending, the active set is a prefix; scan prefixes until the implied
  // delta keeps the prefix positive.
  std::vector<double> sorted(x);
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  double prefix = 0.0;
  double delta = 0.0;
  for (size_t k = 1; k <= d; ++k) {
    prefix += sorted[k - 1];
    const double candidate = (target - prefix) / static_cast<double>(k);
    // The prefix {0..k-1} stays positive iff sorted[k-1] + candidate > 0;
    // the complement stays clamped iff sorted[k] + candidate <= 0.
    const bool prefix_ok = sorted[k - 1] + candidate > 0.0;
    const bool rest_ok = (k == d) || (sorted[k] + candidate <= 0.0);
    if (prefix_ok && rest_ok) {
      delta = candidate;
      break;
    }
    if (k == d) delta = candidate;  // all active (can only raise everything)
  }
  for (size_t i = 0; i < d; ++i) out[i] = std::max(0.0, x[i] + delta);
  return out;
}

std::vector<double> NormSubIterative(const std::vector<double>& x,
                                     double target) {
  assert(target >= 0.0);
  std::vector<double> cur(x);
  const size_t d = cur.size();
  if (d == 0 || target == 0.0) return std::vector<double>(d, 0.0);
  std::vector<bool> clamped(d, false);
  for (size_t round = 0; round < d + 2; ++round) {
    double sum = 0.0;
    size_t active = 0;
    for (size_t i = 0; i < d; ++i) {
      if (clamped[i]) continue;
      sum += cur[i];
      ++active;
    }
    if (active == 0) break;
    const double delta = (target - sum) / static_cast<double>(active);
    bool newly_clamped = false;
    for (size_t i = 0; i < d; ++i) {
      if (clamped[i]) continue;
      cur[i] += delta;
      if (cur[i] <= 0.0) {
        cur[i] = 0.0;
        clamped[i] = true;
        newly_clamped = true;
      }
    }
    if (!newly_clamped) break;
  }
  for (size_t i = 0; i < d; ++i) cur[i] = std::max(0.0, cur[i]);
  return cur;
}

std::vector<double> NormCut(const std::vector<double>& x, double target) {
  assert(target >= 0.0);
  std::vector<double> out(x.size(), 0.0);
  double positive = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i] > 0.0) {
      out[i] = x[i];
      positive += x[i];
    }
  }
  if (positive <= 0.0) return out;
  const double scale = target / positive;
  for (double& v : out) v *= scale;
  return out;
}

}  // namespace numdist
