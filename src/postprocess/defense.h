// Detection and mitigation baselines against LDP data poisoning (Cao et
// al., "Data Poisoning Attacks to Local Differential Privacy Protocols";
// attacker model in scenario/attack.h).
//
// The detectors are frequency-consistency checks computable from nothing
// but the aggregate the server already holds:
//
//   - sum-to-one: an unbiased frequency-oracle estimate sums to 1 in
//     expectation with O(1/sqrt(n)) noise. Output poisoning that crafts
//     reports instead of perturbing values breaks this — the OUE one-hot
//     attack deflates the sum, the OLH maximal-gain attack inflates it.
//   - negative mass: honest estimates go slightly negative per bucket;
//     a large clamped mass indicates the raw vector was distorted.
//   - spike z-score: a target bucket inflated by concentrated malicious
//     mass stands out against a leave-one-out mean/stddev of the rest.
//     This is the only one of the three that catches GRR output
//     poisoning, whose estimate still sums to exactly 1.
//
// Mitigation is the paper's norm-sub projection (postprocess/norm_sub.h),
// quantified rather than re-invented: scenario checkpoints score both the
// raw and the projected estimate against clean ground truth so the
// residual attack gain after projection is a measured column, not a claim.
//
// This layer depends only on numdist_common; everything here operates on
// plain estimate/count vectors so fo/, core/ and scenario/ can all link it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace numdist {

/// Thresholds for the consistency checks. Defaults are loose enough that
/// honest runs at the scenario engine's report volumes never trip them
/// (asserted by tests/attack_test.cc) while the built-in attacks at
/// fraction >= 0.05 reliably do.
struct DefenseOptions {
  /// Flag when |sum(estimate) - 1| exceeds this.
  double sum_tolerance = 0.05;
  /// Flag when a bucket's leave-one-out z-score exceeds this.
  double spike_z_threshold = 8.0;
};

/// What the detectors saw. All fields are populated on every call; the
/// three *_flag bits apply DefenseOptions thresholds and `flagged` is
/// their disjunction.
struct DefenseReport {
  double sum_deviation = 0.0;   // sum(estimate) - 1 (signed)
  double negative_mass = 0.0;   // -sum over negative entries (>= 0)
  double max_spike_z = 0.0;     // largest leave-one-out z-score
  size_t spike_bucket = 0;      // argmax of the z-scores
  bool sum_flag = false;
  bool spike_flag = false;
  bool flagged = false;
};

/// Runs the consistency checks on a raw (pre-projection) frequency
/// estimate. Errors on an empty vector or non-finite entries — hostile
/// NaN must surface as a typed error, not propagate through comparisons.
Result<DefenseReport> AnalyzeFrequencies(const std::vector<double>& estimate,
                                         const DefenseOptions& options = {});

/// Spike detection on integer output counts (e.g. a merged shard
/// aggregate before reconstruction). Counts always sum to n by
/// construction, so only the spike check is meaningful here; sum_deviation
/// and negative_mass are reported as 0. Errors on empty input, negative
/// counts, or total == 0.
Result<DefenseReport> AnalyzeCounts(const std::vector<int64_t>& counts,
                                    const DefenseOptions& options = {});

/// Overload for unsigned count state (e.g. StreamingAggregator::counts()).
Result<DefenseReport> AnalyzeCounts(const std::vector<uint64_t>& counts,
                                    const DefenseOptions& options = {});

/// Validates `options` (finite, positive thresholds).
Status ValidateDefenseOptions(const DefenseOptions& options);

}  // namespace numdist
