#include "postprocess/norm_variants.h"

#include <algorithm>

#include "postprocess/norm_sub.h"

namespace numdist {

std::vector<double> NormShift(const std::vector<double>& x, double target) {
  std::vector<double> out(x);
  if (out.empty()) return out;
  double sum = 0.0;
  for (double v : out) sum += v;
  const double delta = (target - sum) / static_cast<double>(out.size());
  for (double& v : out) v += delta;
  return out;
}

std::vector<double> BasePos(const std::vector<double>& x) {
  std::vector<double> out(x);
  for (double& v : out) v = std::max(0.0, v);
  return out;
}

std::vector<double> NormMul(const std::vector<double>& x, double target) {
  return NormCut(x, target);
}

}  // namespace numdist
