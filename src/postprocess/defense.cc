#include "postprocess/defense.h"

#include <cmath>
#include <cstdio>

namespace numdist {
namespace {

// Leave-one-out spike scan over a fractional vector. For each bucket the
// mean/stddev exclude the bucket itself, so a single huge spike cannot
// inflate the baseline it is measured against (with d in the hundreds, a
// spike folded into its own stddev suppresses its z-score severely).
void SpikeScan(const std::vector<double>& x, DefenseReport& report) {
  const size_t d = x.size();
  if (d < 3) return;  // no meaningful neighborhood
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double v : x) {
    sum += v;
    sum_sq += v * v;
  }
  const double m = static_cast<double>(d - 1);
  for (size_t i = 0; i < d; ++i) {
    const double mean = (sum - x[i]) / m;
    double var = (sum_sq - x[i] * x[i]) / m - mean * mean;
    if (var < 0.0) var = 0.0;
    // Floor the stddev so a near-uniform tail (tiny variance) does not
    // produce astronomically large z for mild bumps: the floor is the
    // sampling noise of a frequency estimate at this granularity.
    const double sd = std::sqrt(var) + 1e-4;
    const double z = (x[i] - mean) / sd;
    if (z > report.max_spike_z) {
      report.max_spike_z = z;
      report.spike_bucket = i;
    }
  }
}

void ApplyThresholds(const DefenseOptions& options, DefenseReport& report) {
  report.sum_flag = std::fabs(report.sum_deviation) > options.sum_tolerance;
  report.spike_flag = report.max_spike_z > options.spike_z_threshold;
  report.flagged = report.sum_flag || report.spike_flag;
}

}  // namespace

Status ValidateDefenseOptions(const DefenseOptions& options) {
  if (!(options.sum_tolerance > 0.0) || !std::isfinite(options.sum_tolerance)) {
    return Status::InvalidArgument("sum_tolerance must be positive and finite");
  }
  if (!(options.spike_z_threshold > 0.0) ||
      !std::isfinite(options.spike_z_threshold)) {
    return Status::InvalidArgument(
        "spike_z_threshold must be positive and finite");
  }
  return Status::OK();
}

Result<DefenseReport> AnalyzeFrequencies(const std::vector<double>& estimate,
                                         const DefenseOptions& options) {
  NUMDIST_RETURN_NOT_OK(ValidateDefenseOptions(options));
  if (estimate.empty()) {
    return Status::InvalidArgument("AnalyzeFrequencies: empty estimate");
  }
  DefenseReport report;
  double sum = 0.0;
  for (size_t i = 0; i < estimate.size(); ++i) {
    const double v = estimate[i];
    if (!std::isfinite(v)) {
      char msg[96];
      std::snprintf(msg, sizeof(msg),
                    "AnalyzeFrequencies: non-finite estimate at bucket %zu",
                    i);
      return Status::InvalidArgument(msg);
    }
    sum += v;
    if (v < 0.0) report.negative_mass -= v;
  }
  report.sum_deviation = sum - 1.0;
  SpikeScan(estimate, report);
  ApplyThresholds(options, report);
  return report;
}

Result<DefenseReport> AnalyzeCounts(const std::vector<uint64_t>& counts,
                                    const DefenseOptions& options) {
  std::vector<int64_t> signed_counts(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    signed_counts[i] = static_cast<int64_t>(counts[i]);
  }
  return AnalyzeCounts(signed_counts, options);
}

Result<DefenseReport> AnalyzeCounts(const std::vector<int64_t>& counts,
                                    const DefenseOptions& options) {
  NUMDIST_RETURN_NOT_OK(ValidateDefenseOptions(options));
  if (counts.empty()) {
    return Status::InvalidArgument("AnalyzeCounts: empty counts");
  }
  int64_t total = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] < 0) {
      char msg[80];
      std::snprintf(msg, sizeof(msg),
                    "AnalyzeCounts: negative count at bucket %zu", i);
      return Status::InvalidArgument(msg);
    }
    total += counts[i];
  }
  if (total == 0) {
    return Status::InvalidArgument("AnalyzeCounts: all counts are zero");
  }
  std::vector<double> fractions(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    fractions[i] =
        static_cast<double>(counts[i]) / static_cast<double>(total);
  }
  DefenseReport report;  // counts sum to n by construction: no sum check
  SpikeScan(fractions, report);
  ApplyThresholds(options, report);
  return report;
}

}  // namespace numdist
