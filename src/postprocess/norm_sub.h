// Norm-Sub post-processing (paper §4.1, Wang et al. [35]): shifts all
// estimates by a common delta and clamps negatives to zero so the result is
// non-negative and sums to the target. This is exactly the Euclidean
// projection onto the (scaled) probability simplex; we provide both the
// O(d log d) sort-based projection and the paper's fixed-point iteration
// (tests assert they agree).
#pragma once

#include <vector>

namespace numdist {

/// Sort-based Norm-Sub: returns max(0, x_i + delta) with delta chosen so the
/// result sums to `target` (>= 0). If every entry would be clamped
/// (target == 0), returns all zeros. O(d log d).
std::vector<double> NormSub(const std::vector<double>& x, double target = 1.0);

/// The paper's iterative formulation: clamp negatives, redistribute the
/// deficit/surplus uniformly over the remaining positives, repeat.
/// Exposed for tests; semantics identical to NormSub.
std::vector<double> NormSubIterative(const std::vector<double>& x,
                                     double target = 1.0);

/// Norm-Cut variant (baseline post-processing): clamp negatives to zero and
/// rescale positives multiplicatively to hit `target`. Cheaper but biased;
/// used in the post-processing ablation bench.
std::vector<double> NormCut(const std::vector<double>& x, double target = 1.0);

}  // namespace numdist
