// Additional frequency-estimate post-processors from the consistency line
// of work the paper builds on (Wang et al. [35], §7): alternatives to
// Norm-Sub with different bias/variance trade-offs. Used by the ablation
// bench and available to library users who want cheaper cleanups.
#pragma once

#include <vector>

namespace numdist {

/// "Norm": adds a common delta so the sum hits `target`, WITHOUT clamping —
/// the result may stay negative. Unbiased; the MLE under pure Gaussian noise
/// with a known total.
std::vector<double> NormShift(const std::vector<double>& x,
                              double target = 1.0);

/// "Base-Pos": clamps negatives to zero, no renormalization. The result
/// sums to >= the positive mass of x (typically > target under noise).
std::vector<double> BasePos(const std::vector<double>& x);

/// "Norm-Mul": clamps negatives to zero, then rescales multiplicatively to
/// `target` (alias of NormCut semantics, kept under the literature's name).
std::vector<double> NormMul(const std::vector<double>& x, double target = 1.0);

}  // namespace numdist
