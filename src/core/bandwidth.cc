#include "core/bandwidth.h"

#include <cmath>

namespace numdist {

double OptimalBandwidth(double epsilon) {
  // Small-eps guard: numerator ~ eps^2/2 and denominator ~ eps^2, both -> 0;
  // the limit is 1/2 and the floating-point ratio below loses precision for
  // very small eps, so switch to the limit.
  if (epsilon < 1e-4) return 0.5;
  const double e = std::exp(epsilon);
  const double numerator = epsilon * e - e + 1.0;
  const double denominator = 2.0 * e * (e - 1.0 - epsilon);
  return numerator / denominator;
}

double MutualInformationUpperBound(double epsilon, double b) {
  const double e = std::exp(epsilon);
  const double denom = 2.0 * b * e + 1.0;
  return std::log((2.0 * b + 1.0) / denom) + 2.0 * b * epsilon * e / denom;
}

double NumericOptimalBandwidth(double epsilon) {
  // Golden-section search for the maximizer on (0, 1/2].
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double lo = 1e-9;
  double hi = 0.5;
  double x1 = hi - phi * (hi - lo);
  double x2 = lo + phi * (hi - lo);
  double f1 = MutualInformationUpperBound(epsilon, x1);
  double f2 = MutualInformationUpperBound(epsilon, x2);
  for (int iter = 0; iter < 200 && (hi - lo) > 1e-12; ++iter) {
    if (f1 < f2) {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + phi * (hi - lo);
      f2 = MutualInformationUpperBound(epsilon, x2);
    } else {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - phi * (hi - lo);
      f1 = MutualInformationUpperBound(epsilon, x1);
    }
  }
  return 0.5 * (lo + hi);
}

size_t DiscreteOptimalBandwidth(double epsilon, size_t d) {
  return static_cast<size_t>(
      std::floor(OptimalBandwidth(epsilon) * static_cast<double>(d)));
}

}  // namespace numdist
