#include "core/sw_estimator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "common/histogram.h"
#include "core/bandwidth.h"
#include "core/ems.h"
#include "core/transition.h"

namespace numdist {

Result<SwEstimator> SwEstimator::Make(const SwEstimatorOptions& options) {
  if (!(options.epsilon > 0.0) || !std::isfinite(options.epsilon)) {
    return Status::InvalidArgument(
        "SwEstimator: epsilon must be positive and finite");
  }
  if (options.d < 2) {
    return Status::InvalidArgument("SwEstimator: d must be >= 2");
  }
  const size_t d_out = options.d_out == 0 ? options.d : options.d_out;

  Result<SquareWave> sw = SquareWave::Make(options.epsilon, options.b);
  if (!sw.ok()) return sw.status();

  // The discrete mechanism's bandwidth is the continuous one scaled to
  // bucket units (paper §5.4).
  const int64_t db =
      options.b < 0.0
          ? -1
          : static_cast<int64_t>(
                std::floor(options.b * static_cast<double>(options.d)));
  Result<DiscreteSquareWave> dsw =
      DiscreteSquareWave::Make(options.epsilon, options.d,
                               std::max<int64_t>(db, options.b < 0 ? -1 : 0));
  if (!dsw.ok()) return dsw.status();

  // The dense matrix is kept only for validation and diagnostics; EM runs
  // through the analytic sliding-window operator, which reproduces it to
  // ~1e-13 without ever materializing O(d^2) state.
  Matrix transition;
  SlidingWindowObservationModel model =
      options.pipeline == SwEstimatorOptions::Pipeline::kRandomizeBeforeBucketize
          ? SlidingWindowObservationModel::FromContinuous(sw.value(),
                                                          options.d, d_out)
          : SlidingWindowObservationModel::FromDiscrete(dsw.value());
  if (options.pipeline ==
      SwEstimatorOptions::Pipeline::kRandomizeBeforeBucketize) {
    transition = sw->TransitionMatrix(options.d, d_out);
  } else {
    transition = dsw->TransitionMatrix();
  }
  NormalizeColumns(&transition);
  NUMDIST_RETURN_NOT_OK(ValidateTransitionMatrix(transition));

  EmOptions em_options;
  em_options.smoothing = options.post == SwEstimatorOptions::Post::kEms;
  em_options.max_iterations = options.max_iterations;
  em_options.acceleration = options.accelerate_em;
  if (options.tol > 0.0) {
    em_options.tol = options.tol;
  } else {
    // Paper §6.1: tau = 1e-3 * e^eps for EM, 1e-3 for EMS (thresholds on the
    // total log-likelihood improvement).
    em_options.tol = em_options.smoothing
                         ? 1e-3
                         : 1e-3 * std::exp(options.epsilon);
  }

  SwEstimatorOptions resolved = options;
  resolved.d_out = d_out;
  return SwEstimator(resolved, std::move(sw).value(), std::move(dsw).value(),
                     std::move(transition), std::move(model), em_options);
}

SwEstimator::SwEstimator(SwEstimatorOptions options, SquareWave sw,
                         DiscreteSquareWave dsw, Matrix transition,
                         SlidingWindowObservationModel model,
                         EmOptions em_options)
    : options_(options),
      sw_(std::move(sw)),
      dsw_(std::move(dsw)),
      transition_(std::move(transition)),
      model_(std::move(model)),
      em_options_(em_options) {}

double SwEstimator::b() const { return sw_.b(); }

double SwEstimator::PerturbOne(double v, Rng& rng) const {
  assert(v >= 0.0 && v <= 1.0);
  if (options_.pipeline ==
      SwEstimatorOptions::Pipeline::kRandomizeBeforeBucketize) {
    return sw_.Perturb(v, rng);
  }
  const uint32_t bucket = static_cast<uint32_t>(
      std::min<size_t>(static_cast<size_t>(v * static_cast<double>(options_.d)),
                       options_.d - 1));
  return static_cast<double>(dsw_.Perturb(bucket, rng));
}

void SwEstimator::PerturbBatch(std::span<const double> values, Rng& rng,
                               std::vector<double>* out) const {
  out->resize(values.size());
  if (options_.pipeline ==
      SwEstimatorOptions::Pipeline::kRandomizeBeforeBucketize) {
    sw_.PerturbBatch(values, rng, out->data());
    return;
  }
  constexpr size_t kChunk = 512;
  uint32_t buckets[kChunk];
  uint32_t reports[kChunk];
  const double d_scale = static_cast<double>(options_.d);
  size_t i = 0;
  while (i < values.size()) {
    const size_t m = std::min(kChunk, values.size() - i);
    for (size_t k = 0; k < m; ++k) {
      const double v = values[i + k];
      assert(v >= 0.0 && v <= 1.0);
      buckets[k] = static_cast<uint32_t>(
          std::min<size_t>(static_cast<size_t>(v * d_scale), options_.d - 1));
    }
    dsw_.PerturbBatch(std::span<const uint32_t>(buckets, m), rng, reports);
    for (size_t k = 0; k < m; ++k) {
      (*out)[i + k] = static_cast<double>(reports[k]);
    }
    i += m;
  }
}

std::vector<uint64_t> SwEstimator::Aggregate(
    const std::vector<double>& reports) const {
  if (options_.pipeline ==
      SwEstimatorOptions::Pipeline::kRandomizeBeforeBucketize) {
    return sw_.BucketizeReports(reports, options_.d_out);
  }
  std::vector<uint64_t> counts(dsw_.output_domain(), 0);
  for (double r : reports) {
    const size_t j = static_cast<size_t>(r);
    assert(j < counts.size());
    ++counts[j];
  }
  return counts;
}

size_t SwEstimator::OutputBucketOf(double report) const {
  if (options_.pipeline ==
      SwEstimatorOptions::Pipeline::kRandomizeBeforeBucketize) {
    return hist::BucketOf(report, options_.d_out, -sw_.b(), 1.0 + sw_.b());
  }
  const size_t j = static_cast<size_t>(report);
  assert(j < dsw_.output_domain());
  return j;
}

Result<EmResult> SwEstimator::Reconstruct(
    const std::vector<uint64_t>& counts) const {
  return EstimateEm(model_, counts, em_options_);
}

Result<EmResult> SwEstimator::ReconstructWarm(
    const std::vector<uint64_t>& counts, EmCheckpoint* checkpoint) const {
  return EstimateEm(model_, counts, em_options_, checkpoint);
}

Result<EmResult> SwEstimator::ReconstructWeighted(
    const std::vector<double>& counts, EmCheckpoint* checkpoint) const {
  return EstimateEmWeighted(model_, counts, em_options_, checkpoint);
}

Result<std::vector<double>> SwEstimator::EstimateDistribution(
    const std::vector<double>& values, Rng& rng) const {
  if (values.empty()) {
    return Status::InvalidArgument("SwEstimator: no input values");
  }
  for (double v : values) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument(
          "SwEstimator: input values must be finite");
    }
  }
  std::vector<double> reports;
  reports.reserve(values.size());
  for (double v : values) reports.push_back(PerturbOne(v, rng));
  Result<EmResult> em = Reconstruct(Aggregate(reports));
  if (!em.ok()) return em.status();
  return std::move(em).value().estimate;
}

}  // namespace numdist
