// The Square Wave (SW) mechanism (paper §5.2 and §5.4), the paper's primary
// reporting mechanism. Two variants:
//  - SquareWave: continuous input domain [0,1] ("randomize before
//    bucketize"), output domain [-b, 1+b];
//  - DiscreteSquareWave: discrete input domain {0..d-1} ("bucketize before
//    randomize"), output domain {0..d+2b-1}.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/matrix.h"
#include "common/result.h"
#include "common/rng.h"

namespace numdist {

/// \brief Continuous Square Wave mechanism on [0,1] -> [-b, 1+b].
///
/// Given input v, reports a value in [v-b, v+b] with density
/// p = e^eps / (2b e^eps + 1) and anywhere else in [-b, 1+b] with density
/// q = 1 / (2b e^eps + 1). Satisfies eps-LDP (Theorem 5.2); among all
/// General Wave mechanisms it maximizes the Wasserstein distance between
/// output distributions (Theorem 5.3).
class SquareWave {
 public:
  /// Creates the mechanism. Requires epsilon > 0; `b` < 0 selects the
  /// mutual-information-optimal bandwidth b*(eps) (§5.3); otherwise requires
  /// 0 < b <= 1.
  static Result<SquareWave> Make(double epsilon, double b = -1.0);

  /// Randomizes one value (client side). Requires v in [0, 1].
  double Perturb(double v, Rng& rng) const;

  /// Bulk client encode: randomizes values[i] into out[i]. Bit-identical
  /// to a loop of Perturb() calls on the same stream (each report consumes
  /// exactly two uniforms, prefetched pairwise in the same order); the
  /// branchy per-report transform becomes a tight pass over the filled
  /// spans.
  void PerturbBatch(std::span<const double> values, Rng& rng,
                    double* out) const;

  /// Exact output density M_v(out) for input v (p inside the wave, q outside,
  /// 0 outside [-b, 1+b]).
  double Density(double v, double out) const;

  /// Transition matrix M (d_out x d_in): M(j, i) is the probability that the
  /// report falls in output bucket j of [-b, 1+b] given the input is uniform
  /// within input bucket i of [0, 1]. Columns sum to 1 exactly (closed-form
  /// overlap integrals, no quadrature). This is the EM observation model.
  Matrix TransitionMatrix(size_t d_in, size_t d_out) const;

  /// Buckets raw reports into d_out equal bins over [-b, 1+b].
  std::vector<uint64_t> BucketizeReports(const std::vector<double>& reports,
                                         size_t d_out) const;

  double epsilon() const { return epsilon_; }
  double b() const { return b_; }
  /// In-wave density.
  double p() const { return p_; }
  /// Out-of-wave density.
  double q() const { return q_; }

 private:
  SquareWave(double epsilon, double b);

  double epsilon_;
  double b_;
  double p_;
  double q_;
};

/// \brief Discrete Square Wave mechanism on {0..d-1} -> {0..d+2b-1}
/// ("bucketize before randomize", §5.4).
///
/// Output index v~ represents domain position v~ - b; the 2b+1 outputs with
/// |position - v| <= b each have probability p = e^eps / ((2b+1) e^eps + d - 1),
/// the remaining d - 1 outputs probability q = p / e^eps.
class DiscreteSquareWave {
 public:
  /// Creates the mechanism. Requires epsilon > 0, d >= 2.
  /// `b` < 0 selects floor(b*(eps) * d); b == 0 degenerates to GRR.
  static Result<DiscreteSquareWave> Make(double epsilon, size_t d,
                                         int64_t b = -1);

  /// Randomizes one value (client side). Requires v < d.
  uint32_t Perturb(uint32_t v, Rng& rng) const;

  /// Bulk client encode: randomizes values[i] into out[i] with one uniform
  /// draw per report — the wave/background decision, the in-wave offset,
  /// and the out-of-wave category all derive from the same draw. The batch
  /// draw order therefore differs from a Perturb() loop, but the report
  /// channel is the same DSW one (each in-wave output has probability
  /// exactly p up to the 2^-53 grid of one double draw;
  /// conformance-tested).
  void PerturbBatch(std::span<const uint32_t> values, Rng& rng,
                    uint32_t* out) const;

  /// Exact report probability Pr[output == out | input == v].
  double Probability(uint32_t v, uint32_t out) const;

  /// Transition matrix M ((d + 2b) x d): M(j, i) = Pr[output j | input i].
  Matrix TransitionMatrix() const;

  /// Aggregates discrete reports into output-domain counts.
  std::vector<uint64_t> AggregateReports(
      const std::vector<uint32_t>& reports) const;

  double epsilon() const { return epsilon_; }
  size_t d() const { return d_; }
  size_t b() const { return b_; }
  size_t output_domain() const { return d_ + 2 * b_; }
  double p() const { return p_; }
  double q() const { return q_; }

 private:
  DiscreteSquareWave(double epsilon, size_t d, size_t b);

  double epsilon_;
  size_t d_;
  size_t b_;
  double p_;
  double q_;
};

}  // namespace numdist
