#include "core/square_wave.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/histogram.h"
#include "core/bandwidth.h"

namespace numdist {

namespace {

// Second antiderivative of the box indicator 1[|z| <= b]:
//   G(z) = 0            for z <= -b,
//          (z + b)^2/2  for |z| <= b,
//          2 b z        for z >= b.
// Used for the closed-form average wave/bucket overlap integral.
double BoxSecondAntiderivative(double z, double b) {
  if (z <= -b) return 0.0;
  if (z >= b) return 2.0 * b * z;
  const double t = z + b;
  return 0.5 * t * t;
}

// Exact double integral of the box overlap over an output x input rectangle:
//   ∫_{v=a}^{c} ∫_{u=l}^{r} 1[|u - v| <= b] du dv.
double BoxRectangleIntegral(double l, double r, double a, double c, double b) {
  return (BoxSecondAntiderivative(r - a, b) -
          BoxSecondAntiderivative(r - c, b)) -
         (BoxSecondAntiderivative(l - a, b) -
          BoxSecondAntiderivative(l - c, b));
}

}  // namespace

Result<SquareWave> SquareWave::Make(double epsilon, double b) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("SW: epsilon must be positive and finite");
  }
  if (b < 0.0) b = OptimalBandwidth(epsilon);
  if (!(b > 0.0) || b > 1.0) {
    return Status::InvalidArgument("SW: bandwidth b must be in (0, 1]");
  }
  return SquareWave(epsilon, b);
}

SquareWave::SquareWave(double epsilon, double b)
    : epsilon_(epsilon), b_(b) {
  const double e = std::exp(epsilon);
  p_ = e / (2.0 * b * e + 1.0);
  q_ = 1.0 / (2.0 * b * e + 1.0);
}

double SquareWave::Perturb(double v, Rng& rng) const {
  assert(v >= 0.0 && v <= 1.0);
  const double in_wave_mass = 2.0 * b_ * p_;  // + q * 1 == 1 by construction
  if (rng.Bernoulli(in_wave_mass)) {
    return rng.Uniform(v - b_, v + b_);
  }
  // Uniform over [-b, 1+b] \ [v-b, v+b]; the two flat pieces have total
  // length exactly 1: left piece [-b, v-b) has length v.
  const double u = rng.Uniform();
  return (u < v) ? (-b_ + u) : (v + b_ + (u - v));
}

void SquareWave::PerturbBatch(std::span<const double> values, Rng& rng,
                              double* out) const {
  const double in_wave_mass = 2.0 * b_ * p_;
  constexpr size_t kChunk = 256;
  double u[2 * kChunk];
  size_t i = 0;
  while (i < values.size()) {
    const size_t m = std::min(kChunk, values.size() - i);
    // Each report's (decision, position) uniform pair, in Perturb's order.
    rng.FillUniform(u, 2 * m);
    for (size_t k = 0; k < m; ++k) {
      const double v = values[i + k];
      assert(v >= 0.0 && v <= 1.0);
      const double u2 = u[2 * k + 1];
      if (u[2 * k] < in_wave_mass) {
        // Same expression as Uniform(v - b, v + b).
        const double lo = v - b_;
        out[i + k] = lo + ((v + b_) - lo) * u2;
      } else {
        out[i + k] = (u2 < v) ? (-b_ + u2) : (v + b_ + (u2 - v));
      }
    }
    i += m;
  }
}

double SquareWave::Density(double v, double out) const {
  assert(v >= 0.0 && v <= 1.0);
  if (out < -b_ || out > 1.0 + b_) return 0.0;
  return (std::fabs(out - v) <= b_) ? p_ : q_;
}

Matrix SquareWave::TransitionMatrix(size_t d_in, size_t d_out) const {
  assert(d_in >= 1 && d_out >= 1);
  Matrix m(d_out, d_in);
  const double out_lo = -b_;
  const double out_width = (1.0 + 2.0 * b_) / static_cast<double>(d_out);
  const double in_width = 1.0 / static_cast<double>(d_in);
  for (size_t j = 0; j < d_out; ++j) {
    const double l = out_lo + static_cast<double>(j) * out_width;
    const double r = l + out_width;
    for (size_t i = 0; i < d_in; ++i) {
      const double a = static_cast<double>(i) * in_width;
      const double c = a + in_width;
      const double overlap = BoxRectangleIntegral(l, r, a, c, b_) / in_width;
      m(j, i) = q_ * out_width + (p_ - q_) * overlap;
    }
  }
  return m;
}

std::vector<uint64_t> SquareWave::BucketizeReports(
    const std::vector<double>& reports, size_t d_out) const {
  std::vector<uint64_t> counts(d_out, 0);
  for (double r : reports) {
    ++counts[hist::BucketOf(r, d_out, -b_, 1.0 + b_)];
  }
  return counts;
}

Result<DiscreteSquareWave> DiscreteSquareWave::Make(double epsilon, size_t d,
                                                    int64_t b) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("DSW: epsilon must be positive and finite");
  }
  if (d < 2) return Status::InvalidArgument("DSW: d must be >= 2");
  if (b < 0) b = static_cast<int64_t>(DiscreteOptimalBandwidth(epsilon, d));
  if (static_cast<size_t>(b) >= d) {
    return Status::InvalidArgument("DSW: b must be < d");
  }
  return DiscreteSquareWave(epsilon, d, static_cast<size_t>(b));
}

DiscreteSquareWave::DiscreteSquareWave(double epsilon, size_t d, size_t b)
    : epsilon_(epsilon), d_(d), b_(b) {
  const double e = std::exp(epsilon);
  const double denom =
      (2.0 * static_cast<double>(b) + 1.0) * e + static_cast<double>(d) - 1.0;
  p_ = e / denom;
  q_ = 1.0 / denom;
}

uint32_t DiscreteSquareWave::Perturb(uint32_t v, Rng& rng) const {
  assert(v < d_);
  const double in_wave_mass = (2.0 * static_cast<double>(b_) + 1.0) * p_;
  if (rng.Bernoulli(in_wave_mass)) {
    // Output index v~ in [v, v + 2b] <=> |position(v~) - v| <= b.
    return v + static_cast<uint32_t>(rng.UniformInt(2 * b_ + 1));
  }
  // Uniform over the other d - 1 output indices (skip the wave window).
  uint32_t r = static_cast<uint32_t>(rng.UniformInt(d_ - 1));
  return (r >= v) ? r + static_cast<uint32_t>(2 * b_ + 1) : r;
}

void DiscreteSquareWave::PerturbBatch(std::span<const uint32_t> values,
                                      Rng& rng, uint32_t* out) const {
  const uint32_t window = static_cast<uint32_t>(2 * b_ + 1);
  const double in_wave_mass = static_cast<double>(window) * p_;
  const double inv_rest = 1.0 / (1.0 - in_wave_mass);
  const double others = static_cast<double>(d_ - 1);
  constexpr size_t kChunk = 512;
  double u[kChunk];
  size_t i = 0;
  while (i < values.size()) {
    const size_t m = std::min(kChunk, values.size() - i);
    rng.FillUniform(u, m);
    for (size_t k = 0; k < m; ++k) {
      const uint32_t v = values[i + k];
      assert(v < d_);
      if (u[k] < in_wave_mass) {
        // u / p is uniform on [0, 2b + 1): the in-wave offset.
        uint32_t offset = static_cast<uint32_t>(u[k] / p_);
        if (offset > window - 1) offset = window - 1;
        out[i + k] = v + offset;
      } else {
        // Residual uniform -> one of the d - 1 out-of-wave outputs.
        const double t = (u[k] - in_wave_mass) * inv_rest;
        uint32_t r = static_cast<uint32_t>(t * others);
        if (r > d_ - 2) r = static_cast<uint32_t>(d_ - 2);
        out[i + k] = (r >= v) ? r + window : r;
      }
    }
    i += m;
  }
}

double DiscreteSquareWave::Probability(uint32_t v, uint32_t out) const {
  assert(v < d_ && out < output_domain());
  return (out >= v && out <= v + 2 * b_) ? p_ : q_;
}

Matrix DiscreteSquareWave::TransitionMatrix() const {
  const size_t d_out = output_domain();
  Matrix m(d_out, d_);
  for (size_t j = 0; j < d_out; ++j) {
    for (size_t i = 0; i < d_; ++i) {
      m(j, i) = Probability(static_cast<uint32_t>(i),
                            static_cast<uint32_t>(j));
    }
  }
  return m;
}

std::vector<uint64_t> DiscreteSquareWave::AggregateReports(
    const std::vector<uint32_t>& reports) const {
  std::vector<uint64_t> counts(output_domain(), 0);
  for (uint32_t r : reports) {
    assert(r < output_domain());
    ++counts[r];
  }
  return counts;
}

}  // namespace numdist
