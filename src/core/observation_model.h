// Observation-model abstraction for EM/EMS.
//
// EM only needs y = M x and x = M^T z products. Square-Wave-style transition
// matrices have special structure: outside the wave band every entry of a
// column equals the same background value q * bucket_width, so
//   M = background * J + S,       J = all-ones,  S banded.
// Exploiting this turns the O(d_out * d) mat-vec into O(nnz(S) + d), which
// makes EM at d = 2048 several times faster. The dense fallback keeps EM
// usable with arbitrary matrices.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/matrix.h"

namespace numdist {

/// \brief Minimal linear-operator interface consumed by EM.
class ObservationModel {
 public:
  virtual ~ObservationModel() = default;
  /// Output dimension (number of report buckets).
  virtual size_t rows() const = 0;
  /// Input dimension (number of histogram buckets).
  virtual size_t cols() const = 0;
  /// y = M x (y has rows() entries; x has cols() entries).
  virtual void Apply(const std::vector<double>& x,
                     std::vector<double>* y) const = 0;
  /// out = M^T z (out has cols() entries; z has rows() entries).
  virtual void ApplyTranspose(const std::vector<double>& z,
                              std::vector<double>* out) const = 0;
};

/// \brief Dense fallback: wraps a Matrix (not owned copies; holds its own).
class DenseObservationModel final : public ObservationModel {
 public:
  explicit DenseObservationModel(Matrix m) : m_(std::move(m)) {}

  size_t rows() const override { return m_.rows(); }
  size_t cols() const override { return m_.cols(); }
  void Apply(const std::vector<double>& x,
             std::vector<double>* y) const override;
  void ApplyTranspose(const std::vector<double>& z,
                      std::vector<double>* out) const override;

  const Matrix& matrix() const { return m_; }

 private:
  Matrix m_;
};

/// \brief Rank-1 background + banded remainder:
/// M(j, i) = background + band_i[j - band_start_i] for j inside column i's
/// band, and M(j, i) = background outside it.
class BandedObservationModel final : public ObservationModel {
 public:
  /// Decomposes a dense column-stochastic matrix whose off-band entries all
  /// equal `background` (up to `tol`). Entries differing from the background
  /// by more than tol form each column's band (must be contiguous; SW/GW
  /// matrices always are). Falls back to whole-column bands if not.
  static BandedObservationModel FromDense(const Matrix& m, double background,
                                          double tol = 1e-14);

  size_t rows() const override { return rows_; }
  size_t cols() const override { return cols_; }
  void Apply(const std::vector<double>& x,
             std::vector<double>* y) const override;
  void ApplyTranspose(const std::vector<double>& z,
                      std::vector<double>* out) const override;

  /// Total band entries (diagnostic; density = nnz / (rows * cols)).
  size_t BandEntries() const { return band_values_.size(); }

 private:
  BandedObservationModel(size_t rows, size_t cols, double background)
      : rows_(rows), cols_(cols), background_(background) {}

  size_t rows_ = 0;
  size_t cols_ = 0;
  double background_ = 0.0;
  std::vector<size_t> band_start_;   // per column: first in-band row
  std::vector<size_t> band_offset_;  // per column: offset into band_values_
  std::vector<size_t> band_len_;     // per column: band length
  std::vector<double> band_values_;  // concatenated (entry - background)
};

}  // namespace numdist
