// Observation-model abstraction for EM/EMS.
//
// EM only needs y = M x and x = M^T z products. Square-Wave-style transition
// matrices have special structure: outside the wave band every entry of a
// column equals the same background value q * bucket_width, so
//   M = background * J + S,       J = all-ones,  S banded.
// Exploiting this turns the O(d_out * d) mat-vec into O(nnz(S) + d), which
// makes EM at d = 2048 several times faster. S itself is not arbitrary
// either: it is a shifted box kernel of height p - q (a Toeplitz
// convolution), so both products collapse further to O(d + d_out) running
// prefix sums independent of the wave bandwidth — that is the
// SlidingWindowObservationModel, the fastest path and the one SwEstimator
// uses. The dense fallback keeps EM usable with arbitrary matrices.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/matrix.h"
#include "core/square_wave.h"

namespace numdist {

/// Shared E-step epilogue: given the prediction y = M x and the observed
/// counts, fills weights[j] = counts[j] / max(y[j], 1e-300) (0 where
/// counts[j] == 0) and returns the total log-likelihood
/// sum_j counts[j] log max(y[j], 1e-300). One definition used by every
/// EmSweep path so scalar and vector dispatch can never diverge here.
/// Counts are doubles so the mini-batch path can feed exponentially
/// decayed (fractional) counts; integer histograms convert exactly
/// (uint64 -> double is lossless below 2^53), so the converted path is
/// bit-identical to the historical integer one.
double EmWeightsFromPrediction(const std::vector<double>& counts,
                               const std::vector<double>& y,
                               std::vector<double>* weights);

/// \brief Minimal linear-operator interface consumed by EM.
class ObservationModel {
 public:
  virtual ~ObservationModel() = default;
  /// Output dimension (number of report buckets).
  virtual size_t rows() const = 0;
  /// Input dimension (number of histogram buckets).
  virtual size_t cols() const = 0;
  /// y = M x (y has rows() entries; x has cols() entries).
  virtual void Apply(const std::vector<double>& x,
                     std::vector<double>* y) const = 0;
  /// out = M^T z (out has cols() entries; z has rows() entries).
  virtual void ApplyTranspose(const std::vector<double>& z,
                              std::vector<double>* out) const = 0;

  /// One fused EM E-step sweep: y = M x, weights = counts ⊘ y (per
  /// EmWeightsFromPrediction), mtw = M^T weights; returns the
  /// log-likelihood of x. The default is the straightforward three-pass
  /// composition (right for the O(d) structured operators). The dense
  /// model overrides it with a single pass over row pairs: the weight for
  /// output bucket j is pointwise in y_j, so each row can be dotted,
  /// weighted, and folded into mtw while it is still cache-hot — halving
  /// the matrix traffic that bounds dense EM throughput. The override is
  /// the same operator up to rounding (its paired dot uses a different
  /// fixed reduction order than Apply's; both orders are bit-stable under
  /// either dispatch build). All three outputs are resized by the sweep;
  /// passing correctly sized buffers keeps it allocation-free.
  virtual double EmSweep(const std::vector<double>& x,
                         const std::vector<double>& counts,
                         std::vector<double>* y, std::vector<double>* weights,
                         std::vector<double>* mtw) const;
};

/// \brief Dense fallback: wraps a Matrix, either owned (moved or copied
/// in) or explicitly borrowed through the pointer constructor (the
/// caller's matrix must outlive the model; this is what keeps
/// EstimateEm-from-Matrix from copying an O(d^2) operand per
/// reconstruction).
class DenseObservationModel final : public ObservationModel {
 public:
  /// Owning: stores its own copy of the matrix (moved in from rvalues).
  explicit DenseObservationModel(Matrix m)
      : owned_(std::move(m)), m_(owned_) {}
  /// Non-owning view of `*m`, which must outlive the model. The pointer
  /// spelling is deliberate: borrowing is visible at the call site, and
  /// an lvalue Matrix never silently switches from copy to borrow.
  explicit DenseObservationModel(const Matrix* m) : m_(*m) {}

  DenseObservationModel(const DenseObservationModel&) = delete;
  DenseObservationModel& operator=(const DenseObservationModel&) = delete;

  size_t rows() const override { return m_.rows(); }
  size_t cols() const override { return m_.cols(); }
  void Apply(const std::vector<double>& x,
             std::vector<double>* y) const override;
  void ApplyTranspose(const std::vector<double>& z,
                      std::vector<double>* out) const override;
  double EmSweep(const std::vector<double>& x,
                 const std::vector<double>& counts, std::vector<double>* y,
                 std::vector<double>* weights,
                 std::vector<double>* mtw) const override;

  const Matrix& matrix() const { return m_; }

 private:
  Matrix owned_;
  const Matrix& m_;
};

/// \brief Rank-1 background + banded remainder:
/// M(j, i) = background + band_i[j - band_start_i] for j inside column i's
/// band, and M(j, i) = background outside it.
class BandedObservationModel final : public ObservationModel {
 public:
  /// Decomposes a dense column-stochastic matrix whose off-band entries all
  /// equal `background` (up to `tol`). Entries differing from the background
  /// by more than tol form each column's band (must be contiguous; SW/GW
  /// matrices always are). Falls back to whole-column bands if not.
  static BandedObservationModel FromDense(const Matrix& m, double background,
                                          double tol = 1e-14);

  size_t rows() const override { return rows_; }
  size_t cols() const override { return cols_; }
  void Apply(const std::vector<double>& x,
             std::vector<double>* y) const override;
  void ApplyTranspose(const std::vector<double>& z,
                      std::vector<double>* out) const override;

  /// Total band entries (diagnostic; density = nnz / (rows * cols)).
  size_t BandEntries() const { return band_values_.size(); }

 private:
  BandedObservationModel(size_t rows, size_t cols, double background)
      : rows_(rows), cols_(cols), background_(background) {}

  size_t rows_ = 0;
  size_t cols_ = 0;
  double background_ = 0.0;
  std::vector<size_t> band_start_;   // per column: first in-band row
  std::vector<size_t> band_offset_;  // per column: offset into band_values_
  std::vector<size_t> band_len_;     // per column: band length
  std::vector<double> band_values_;  // concatenated (entry - background)
};

/// \brief Analytic SW/DSW transition operator: constant background q plus a
/// shifted box kernel of height p - q (paper §4-5).
///
/// The dense transition matrix is never materialized. Both products run in
/// O(d + d_out) time and O(1) scratch, independent of the wave bandwidth:
///  - discrete pipeline: M(j, i) = q + (p - q) [i <= j <= i + 2b], so
///    y_j = q sum(x) + (p - q) * (sliding window sum over x) via two running
///    prefix accumulators;
///  - continuous pipeline: M(j, i) = q w_out + (p - q) / w_in * overlap(j, i)
///    where overlap is the exact box/rectangle double integral. Summing
///    columns against x turns the overlap sum into interval integrals of the
///    piecewise-linear CDF of x, evaluated by two monotone cursors (the
///    boundary columns come out in closed form — no special-casing).
///
/// Agrees with the dense TransitionMatrix() operator to ~1e-13 (fp
/// regrouping only). Stateless apart from parameters: concurrent Apply
/// calls from reconstruction threads are safe.
class SlidingWindowObservationModel final : public ObservationModel {
 public:
  /// Operator for SquareWave::TransitionMatrix(d_in, d_out) (the
  /// randomize-before-bucketize pipeline).
  static SlidingWindowObservationModel FromContinuous(const SquareWave& sw,
                                                      size_t d_in,
                                                      size_t d_out);
  /// Operator for DiscreteSquareWave::TransitionMatrix() (the
  /// bucketize-before-randomize pipeline).
  static SlidingWindowObservationModel FromDiscrete(
      const DiscreteSquareWave& dsw);

  size_t rows() const override { return rows_; }
  size_t cols() const override { return cols_; }
  void Apply(const std::vector<double>& x,
             std::vector<double>* y) const override;
  void ApplyTranspose(const std::vector<double>& z,
                      std::vector<double>* out) const override;

 private:
  SlidingWindowObservationModel() = default;

  bool discrete_ = false;
  size_t rows_ = 0;
  size_t cols_ = 0;
  double p_ = 0.0;
  double q_ = 0.0;
  // Continuous parameters.
  double b_ = 0.0;      // wave half-width
  double w_in_ = 0.0;   // input bucket width (1 / d)
  double w_out_ = 0.0;  // output bucket width ((1 + 2b) / d_out)
  // Discrete parameter: wave half-width in buckets.
  size_t db_ = 0;
};

}  // namespace numdist
