#include "core/observation_model.h"

#include <cassert>
#include <cmath>

namespace numdist {

void DenseObservationModel::Apply(const std::vector<double>& x,
                                  std::vector<double>* y) const {
  *y = m_.Multiply(x);
}

void DenseObservationModel::ApplyTranspose(const std::vector<double>& z,
                                           std::vector<double>* out) const {
  *out = m_.TransposeMultiply(z);
}

BandedObservationModel BandedObservationModel::FromDense(const Matrix& m,
                                                         double background,
                                                         double tol) {
  BandedObservationModel model(m.rows(), m.cols(), background);
  model.band_start_.resize(m.cols());
  model.band_offset_.resize(m.cols());
  model.band_len_.resize(m.cols());
  for (size_t i = 0; i < m.cols(); ++i) {
    size_t first = m.rows();
    size_t last = 0;  // exclusive
    for (size_t j = 0; j < m.rows(); ++j) {
      if (std::fabs(m(j, i) - background) > tol) {
        if (first == m.rows()) first = j;
        last = j + 1;
      }
    }
    if (first == m.rows()) {  // column is pure background
      first = 0;
      last = 0;
    }
    model.band_start_[i] = first;
    model.band_offset_[i] = model.band_values_.size();
    model.band_len_[i] = last - first;
    for (size_t j = first; j < last; ++j) {
      model.band_values_.push_back(m(j, i) - background);
    }
  }
  return model;
}

void BandedObservationModel::Apply(const std::vector<double>& x,
                                   std::vector<double>* y) const {
  assert(x.size() == cols_);
  double total = 0.0;
  for (double v : x) total += v;
  y->assign(rows_, background_ * total);
  for (size_t i = 0; i < cols_; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    const double* band = band_values_.data() + band_offset_[i];
    double* dst = y->data() + band_start_[i];
    const size_t len = band_len_[i];
    for (size_t k = 0; k < len; ++k) dst[k] += band[k] * xi;
  }
}

void BandedObservationModel::ApplyTranspose(const std::vector<double>& z,
                                            std::vector<double>* out) const {
  assert(z.size() == rows_);
  double total = 0.0;
  for (double v : z) total += v;
  out->assign(cols_, background_ * total);
  for (size_t i = 0; i < cols_; ++i) {
    const double* band = band_values_.data() + band_offset_[i];
    const double* src = z.data() + band_start_[i];
    const size_t len = band_len_[i];
    double acc = 0.0;
    for (size_t k = 0; k < len; ++k) acc += band[k] * src[k];
    (*out)[i] += acc;
  }
}

}  // namespace numdist
