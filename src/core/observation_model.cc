#include "core/observation_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "kernels/kernels.h"

namespace numdist {

double EmWeightsFromPrediction(const std::vector<double>& counts,
                               const std::vector<double>& y,
                               std::vector<double>* weights) {
  const size_t d_out = y.size();
  assert(counts.size() == d_out);
  weights->resize(d_out);
  double ll = 0.0;
  for (size_t j = 0; j < d_out; ++j) {
    if (counts[j] == 0.0) {
      (*weights)[j] = 0.0;
      continue;
    }
    // y_j > 0 whenever x has support reaching bucket j; with the SW model
    // every output bucket is reachable (q > 0), so this guard only trips
    // on degenerate custom matrices.
    const double yj = std::max(y[j], 1e-300);
    (*weights)[j] = counts[j] / yj;
    ll += counts[j] * std::log(yj);
  }
  return ll;
}

double ObservationModel::EmSweep(const std::vector<double>& x,
                                 const std::vector<double>& counts,
                                 std::vector<double>* y,
                                 std::vector<double>* weights,
                                 std::vector<double>* mtw) const {
  Apply(x, y);
  const double ll = EmWeightsFromPrediction(counts, *y, weights);
  ApplyTranspose(*weights, mtw);
  return ll;
}

void DenseObservationModel::Apply(const std::vector<double>& x,
                                  std::vector<double>* y) const {
  m_.MultiplyInto(x, y);
}

void DenseObservationModel::ApplyTranspose(const std::vector<double>& z,
                                           std::vector<double>* out) const {
  m_.TransposeMultiplyInto(z, out);
}

namespace {

// One row's E-step epilogue: same formula as EmWeightsFromPrediction,
// applied pointwise (weight 0 when the bucket saw no reports).
inline double RowWeight(double count, double yj_raw, double* ll) {
  if (count == 0.0) return 0.0;
  const double yj = std::max(yj_raw, 1e-300);
  *ll += count * std::log(yj);
  return count / yj;
}

}  // namespace

double DenseObservationModel::EmSweep(const std::vector<double>& x,
                                      const std::vector<double>& counts,
                                      std::vector<double>* y,
                                      std::vector<double>* weights,
                                      std::vector<double>* mtw) const {
  const size_t d_out = m_.rows();
  const size_t d = m_.cols();
  assert(x.size() == d && counts.size() == d_out);
  y->resize(d_out);
  weights->resize(d_out);
  mtw->assign(d, 0.0);
  // Single sweep over row pairs: the weight for bucket j depends on y_j
  // alone, so each row can be dotted, weighted, and folded into M^T w
  // while still cache-hot. Dense EM is bound by matrix bandwidth; this
  // touches the matrix once per iteration instead of twice (Apply +
  // ApplyTranspose stream it separately), and pairing rows halves the
  // x-vector load traffic on top. Same operator to rounding as the default
  // three-pass composition (Dot2's per-row reduction order differs from
  // Dot's — see kernels.h), identical under scalar and AVX2 dispatch.
  double ll = 0.0;
  size_t j = 0;
  for (; j + 2 <= d_out; j += 2) {
    const double* row0 = m_.row(j);
    const double* row1 = m_.row(j + 1);
    double y0 = 0.0;
    double y1 = 0.0;
    kernels::Dot2(row0, row1, x.data(), d, &y0, &y1);
    (*y)[j] = y0;
    (*y)[j + 1] = y1;
    const double w0 = RowWeight(counts[j], y0, &ll);
    const double w1 = RowWeight(counts[j + 1], y1, &ll);
    (*weights)[j] = w0;
    (*weights)[j + 1] = w1;
    if (w0 != 0.0 && w1 != 0.0) {
      kernels::Axpy2(mtw->data(), w0, row0, w1, row1, d);
    } else if (w0 != 0.0) {
      kernels::Axpy(mtw->data(), w0, row0, d);
    } else if (w1 != 0.0) {
      kernels::Axpy(mtw->data(), w1, row1, d);
    }
  }
  if (j < d_out) {
    const double* row = m_.row(j);
    const double yj = kernels::Dot(row, x.data(), d);
    (*y)[j] = yj;
    const double w = RowWeight(counts[j], yj, &ll);
    (*weights)[j] = w;
    if (w != 0.0) kernels::Axpy(mtw->data(), w, row, d);
  }
  return ll;
}

BandedObservationModel BandedObservationModel::FromDense(const Matrix& m,
                                                         double background,
                                                         double tol) {
  BandedObservationModel model(m.rows(), m.cols(), background);
  model.band_start_.resize(m.cols());
  model.band_offset_.resize(m.cols());
  model.band_len_.resize(m.cols());
  for (size_t i = 0; i < m.cols(); ++i) {
    size_t first = m.rows();
    size_t last = 0;  // exclusive
    for (size_t j = 0; j < m.rows(); ++j) {
      if (std::fabs(m(j, i) - background) > tol) {
        if (first == m.rows()) first = j;
        last = j + 1;
      }
    }
    if (first == m.rows()) {  // column is pure background
      first = 0;
      last = 0;
    }
    model.band_start_[i] = first;
    model.band_offset_[i] = model.band_values_.size();
    model.band_len_[i] = last - first;
    for (size_t j = first; j < last; ++j) {
      model.band_values_.push_back(m(j, i) - background);
    }
  }
  return model;
}

void BandedObservationModel::Apply(const std::vector<double>& x,
                                   std::vector<double>* y) const {
  assert(x.size() == cols_);
  const double total = kernels::Sum(x.data(), x.size());
  y->assign(rows_, background_ * total);
  for (size_t i = 0; i < cols_; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    kernels::Axpy(y->data() + band_start_[i], xi,
                  band_values_.data() + band_offset_[i], band_len_[i]);
  }
}

void BandedObservationModel::ApplyTranspose(const std::vector<double>& z,
                                            std::vector<double>* out) const {
  assert(z.size() == rows_);
  const double total = kernels::Sum(z.data(), z.size());
  out->assign(cols_, background_ * total);
  for (size_t i = 0; i < cols_; ++i) {
    (*out)[i] += kernels::Dot(band_values_.data() + band_offset_[i],
                              z.data() + band_start_[i], band_len_[i]);
  }
}

namespace {

// Monotone cursor over the step density X(v) = h[i] on
// [lo + i w, lo + (i+1) w), zero outside. Advance(t) integrates the CDF
// F(t) = int_lo^t X over [previous position, t] in closed form (F is
// piecewise linear, so the interval integral is piecewise quadratic) and
// moves the cursor; queries must be non-decreasing. The first Advance
// positions the cursor (its return value is discarded by the caller).
// Each full left-to-right sweep costs O(n + #queries) in total.
class PrefixIntegralCursor {
 public:
  PrefixIntegralCursor(const double* h, size_t n, double lo, double w)
      : h_(h), n_(n), lo_(lo), w_(w), t_(lo) {}

  double Advance(double t) {
    if (t <= t_) return 0.0;  // query left of lo, where F == 0
    double acc = 0.0;
    for (;;) {
      const bool inside = idx_ < n_;
      const double h = inside ? h_[idx_] : 0.0;
      const double next = inside
                              ? lo_ + static_cast<double>(idx_ + 1) * w_
                              : std::numeric_limits<double>::infinity();
      const double stop = t < next ? t : next;
      const double dt = stop - t_;
      acc += (f_ + 0.5 * h * dt) * dt;
      f_ += h * dt;
      t_ = stop;
      if (t <= next) return acc;
      ++idx_;
    }
  }

 private:
  const double* h_;
  size_t n_;
  double lo_;
  double w_;
  double t_;       // current position (>= lo)
  double f_ = 0.0; // F(t_)
  size_t idx_ = 0; // bucket containing t_ (n_ once past the support)
};

}  // namespace

SlidingWindowObservationModel SlidingWindowObservationModel::FromContinuous(
    const SquareWave& sw, size_t d_in, size_t d_out) {
  assert(d_in >= 1 && d_out >= 1);
  SlidingWindowObservationModel m;
  m.discrete_ = false;
  m.rows_ = d_out;
  m.cols_ = d_in;
  m.p_ = sw.p();
  m.q_ = sw.q();
  m.b_ = sw.b();
  m.w_in_ = 1.0 / static_cast<double>(d_in);
  m.w_out_ = (1.0 + 2.0 * sw.b()) / static_cast<double>(d_out);
  return m;
}

SlidingWindowObservationModel SlidingWindowObservationModel::FromDiscrete(
    const DiscreteSquareWave& dsw) {
  SlidingWindowObservationModel m;
  m.discrete_ = true;
  m.rows_ = dsw.output_domain();
  m.cols_ = dsw.d();
  m.p_ = dsw.p();
  m.q_ = dsw.q();
  m.db_ = dsw.b();
  return m;
}

void SlidingWindowObservationModel::Apply(const std::vector<double>& x,
                                          std::vector<double>* y) const {
  assert(x.size() == cols_);
  const double total = kernels::Sum(x.data(), x.size());
  y->resize(rows_);

  if (discrete_) {
    // y_j = q sum(x) + (p - q) sum_{i in [j - 2b, j]} x_i. Two passes: a
    // sequential prefix fill P(min(j, d-1)) into y itself, then the
    // dispatched descending window combine y_j = background + height *
    // (P(min(j, d-1)) - P(j - 2b - 1)) — same additions in the same order
    // as the historical running-cursor loop, but the combine vectorizes.
    const double background = q_ * total;
    const double height = p_ - q_;
    const size_t lag = 2 * db_ + 1;
    double prefix = 0.0;
    size_t add = 0;
    for (size_t j = 0; j < rows_; ++j) {
      while (add <= j && add < cols_) prefix += x[add++];
      (*y)[j] = prefix;
    }
    kernels::WindowCombine(y->data(), rows_, lag, background, height);
    return;
  }

  // Continuous: with X(v) the step density of mass x_i on input bucket i and
  // F its CDF,
  //   sum_i overlap(j, i) x_i = int_{l_j}^{r_j} [F(u + b) - F(u - b)] du,
  // i.e. the difference of two interval integrals of F at the shifted output
  // bucket edges — two monotone cursor sweeps.
  const double background = q_ * w_out_ * total;
  const double scale = (p_ - q_) / w_in_;
  PrefixIntegralCursor plus(x.data(), cols_, 0.0, w_in_);
  PrefixIntegralCursor minus(x.data(), cols_, 0.0, w_in_);
  const double out_lo = -b_;
  plus.Advance(out_lo + b_);
  minus.Advance(out_lo - b_);
  for (size_t j = 0; j < rows_; ++j) {
    const double r = out_lo + static_cast<double>(j + 1) * w_out_;
    const double ip = plus.Advance(r + b_);
    const double im = minus.Advance(r - b_);
    (*y)[j] = background + scale * (ip - im);
  }
}

void SlidingWindowObservationModel::ApplyTranspose(
    const std::vector<double>& z, std::vector<double>* out) const {
  assert(z.size() == rows_);
  const double total = kernels::Sum(z.data(), z.size());
  out->resize(cols_);

  if (discrete_) {
    // out_i = q sum(z) + (p - q) sum_{j in [i, i + 2b]} z_j. Same two-pass
    // shape as Apply — prefix fill P(min(i + 2b, rows - 1)) into out, then
    // the descending combine subtracting P(i - 1) = out_prefill[i - lag].
    // The combine's zero-lag head (i < lag, where i - lag underflows) is
    // wrong for the transpose, whose window clips at the TOP, not at 0:
    // the true subtrahend there is P(i - 1), not 0. Rebuilt below with the
    // same fold order, overwriting only those head entries.
    const double background = q_ * total;
    const double height = p_ - q_;
    const size_t window = 2 * db_;
    const size_t lag = window + 1;
    double prefix = 0.0;
    size_t add = 0;
    for (size_t i = 0; i < cols_; ++i) {
      while (add <= i + window && add < rows_) prefix += z[add++];
      (*out)[i] = prefix;
    }
    kernels::WindowCombine(out->data(), cols_, lag, background, height);
    const size_t head = std::min(lag, cols_);
    double p_hi = 0.0;  // P(min(i + 2b, rows - 1))
    double p_lo = 0.0;  // P(i - 1)
    size_t hi = 0;
    for (size_t i = 0; i < head; ++i) {
      while (hi <= i + window && hi < rows_) p_hi += z[hi++];
      (*out)[i] = background + height * (p_hi - p_lo);
      p_lo += z[i];
    }
    return;
  }

  // The overlap integral is symmetric in the two rectangles, so the same
  // cursor construction applies with the roles swapped: Z is the step
  // density of mass z_j on output bucket j of [-b, 1 + b], H its CDF, and
  //   sum_j overlap(j, i) z_j = int_{a_i}^{c_i} [H(v + b) - H(v - b)] dv.
  const double background = q_ * w_out_ * total;
  const double scale = (p_ - q_) / w_in_;
  PrefixIntegralCursor plus(z.data(), rows_, -b_, w_out_);
  PrefixIntegralCursor minus(z.data(), rows_, -b_, w_out_);
  plus.Advance(0.0 + b_);
  minus.Advance(0.0 - b_);
  for (size_t i = 0; i < cols_; ++i) {
    const double c = static_cast<double>(i + 1) * w_in_;
    const double hp = plus.Advance(c + b_);
    const double hm = minus.Advance(c - b_);
    (*out)[i] = background + scale * (hp - hm);
  }
}

}  // namespace numdist
