#include "core/observation_model.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace numdist {

void DenseObservationModel::Apply(const std::vector<double>& x,
                                  std::vector<double>* y) const {
  m_.MultiplyInto(x, y);
}

void DenseObservationModel::ApplyTranspose(const std::vector<double>& z,
                                           std::vector<double>* out) const {
  m_.TransposeMultiplyInto(z, out);
}

BandedObservationModel BandedObservationModel::FromDense(const Matrix& m,
                                                         double background,
                                                         double tol) {
  BandedObservationModel model(m.rows(), m.cols(), background);
  model.band_start_.resize(m.cols());
  model.band_offset_.resize(m.cols());
  model.band_len_.resize(m.cols());
  for (size_t i = 0; i < m.cols(); ++i) {
    size_t first = m.rows();
    size_t last = 0;  // exclusive
    for (size_t j = 0; j < m.rows(); ++j) {
      if (std::fabs(m(j, i) - background) > tol) {
        if (first == m.rows()) first = j;
        last = j + 1;
      }
    }
    if (first == m.rows()) {  // column is pure background
      first = 0;
      last = 0;
    }
    model.band_start_[i] = first;
    model.band_offset_[i] = model.band_values_.size();
    model.band_len_[i] = last - first;
    for (size_t j = first; j < last; ++j) {
      model.band_values_.push_back(m(j, i) - background);
    }
  }
  return model;
}

void BandedObservationModel::Apply(const std::vector<double>& x,
                                   std::vector<double>* y) const {
  assert(x.size() == cols_);
  double total = 0.0;
  for (double v : x) total += v;
  y->assign(rows_, background_ * total);
  for (size_t i = 0; i < cols_; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    const double* band = band_values_.data() + band_offset_[i];
    double* dst = y->data() + band_start_[i];
    const size_t len = band_len_[i];
    for (size_t k = 0; k < len; ++k) dst[k] += band[k] * xi;
  }
}

void BandedObservationModel::ApplyTranspose(const std::vector<double>& z,
                                            std::vector<double>* out) const {
  assert(z.size() == rows_);
  double total = 0.0;
  for (double v : z) total += v;
  out->assign(cols_, background_ * total);
  for (size_t i = 0; i < cols_; ++i) {
    const double* band = band_values_.data() + band_offset_[i];
    const double* src = z.data() + band_start_[i];
    const size_t len = band_len_[i];
    double acc = 0.0;
    for (size_t k = 0; k < len; ++k) acc += band[k] * src[k];
    (*out)[i] += acc;
  }
}

namespace {

// Monotone cursor over the step density X(v) = h[i] on
// [lo + i w, lo + (i+1) w), zero outside. Advance(t) integrates the CDF
// F(t) = int_lo^t X over [previous position, t] in closed form (F is
// piecewise linear, so the interval integral is piecewise quadratic) and
// moves the cursor; queries must be non-decreasing. The first Advance
// positions the cursor (its return value is discarded by the caller).
// Each full left-to-right sweep costs O(n + #queries) in total.
class PrefixIntegralCursor {
 public:
  PrefixIntegralCursor(const double* h, size_t n, double lo, double w)
      : h_(h), n_(n), lo_(lo), w_(w), t_(lo) {}

  double Advance(double t) {
    if (t <= t_) return 0.0;  // query left of lo, where F == 0
    double acc = 0.0;
    for (;;) {
      const bool inside = idx_ < n_;
      const double h = inside ? h_[idx_] : 0.0;
      const double next = inside
                              ? lo_ + static_cast<double>(idx_ + 1) * w_
                              : std::numeric_limits<double>::infinity();
      const double stop = t < next ? t : next;
      const double dt = stop - t_;
      acc += (f_ + 0.5 * h * dt) * dt;
      f_ += h * dt;
      t_ = stop;
      if (t <= next) return acc;
      ++idx_;
    }
  }

 private:
  const double* h_;
  size_t n_;
  double lo_;
  double w_;
  double t_;       // current position (>= lo)
  double f_ = 0.0; // F(t_)
  size_t idx_ = 0; // bucket containing t_ (n_ once past the support)
};

}  // namespace

SlidingWindowObservationModel SlidingWindowObservationModel::FromContinuous(
    const SquareWave& sw, size_t d_in, size_t d_out) {
  assert(d_in >= 1 && d_out >= 1);
  SlidingWindowObservationModel m;
  m.discrete_ = false;
  m.rows_ = d_out;
  m.cols_ = d_in;
  m.p_ = sw.p();
  m.q_ = sw.q();
  m.b_ = sw.b();
  m.w_in_ = 1.0 / static_cast<double>(d_in);
  m.w_out_ = (1.0 + 2.0 * sw.b()) / static_cast<double>(d_out);
  return m;
}

SlidingWindowObservationModel SlidingWindowObservationModel::FromDiscrete(
    const DiscreteSquareWave& dsw) {
  SlidingWindowObservationModel m;
  m.discrete_ = true;
  m.rows_ = dsw.output_domain();
  m.cols_ = dsw.d();
  m.p_ = dsw.p();
  m.q_ = dsw.q();
  m.db_ = dsw.b();
  return m;
}

void SlidingWindowObservationModel::Apply(const std::vector<double>& x,
                                          std::vector<double>* y) const {
  assert(x.size() == cols_);
  double total = 0.0;
  for (double v : x) total += v;
  y->resize(rows_);

  if (discrete_) {
    // y_j = q sum(x) + (p - q) sum_{i in [j - 2b, j]} x_i. The window sum is
    // the difference of two prefix accumulators that each sweep x once.
    const double background = q_ * total;
    const double height = p_ - q_;
    double sum_add = 0.0;  // sum of x[0 .. min(j, d-1)]
    double sum_sub = 0.0;  // sum of x[0 .. j - 2b - 1]
    size_t add = 0;
    size_t sub = 0;
    const size_t window = 2 * db_;
    for (size_t j = 0; j < rows_; ++j) {
      while (add <= j && add < cols_) sum_add += x[add++];
      while (j >= window + 1 && sub + window + 1 <= j && sub < cols_) {
        sum_sub += x[sub++];
      }
      (*y)[j] = background + height * (sum_add - sum_sub);
    }
    return;
  }

  // Continuous: with X(v) the step density of mass x_i on input bucket i and
  // F its CDF,
  //   sum_i overlap(j, i) x_i = int_{l_j}^{r_j} [F(u + b) - F(u - b)] du,
  // i.e. the difference of two interval integrals of F at the shifted output
  // bucket edges — two monotone cursor sweeps.
  const double background = q_ * w_out_ * total;
  const double scale = (p_ - q_) / w_in_;
  PrefixIntegralCursor plus(x.data(), cols_, 0.0, w_in_);
  PrefixIntegralCursor minus(x.data(), cols_, 0.0, w_in_);
  const double out_lo = -b_;
  plus.Advance(out_lo + b_);
  minus.Advance(out_lo - b_);
  for (size_t j = 0; j < rows_; ++j) {
    const double r = out_lo + static_cast<double>(j + 1) * w_out_;
    const double ip = plus.Advance(r + b_);
    const double im = minus.Advance(r - b_);
    (*y)[j] = background + scale * (ip - im);
  }
}

void SlidingWindowObservationModel::ApplyTranspose(
    const std::vector<double>& z, std::vector<double>* out) const {
  assert(z.size() == rows_);
  double total = 0.0;
  for (double v : z) total += v;
  out->resize(cols_);

  if (discrete_) {
    // out_i = q sum(z) + (p - q) sum_{j in [i, i + 2b]} z_j.
    const double background = q_ * total;
    const double height = p_ - q_;
    double sum_add = 0.0;  // sum of z[0 .. min(i + 2b, rows - 1)]
    double sum_sub = 0.0;  // sum of z[0 .. i - 1]
    size_t add = 0;
    size_t sub = 0;
    const size_t window = 2 * db_;
    for (size_t i = 0; i < cols_; ++i) {
      while (add <= i + window && add < rows_) sum_add += z[add++];
      while (sub < i) sum_sub += z[sub++];
      (*out)[i] = background + height * (sum_add - sum_sub);
    }
    return;
  }

  // The overlap integral is symmetric in the two rectangles, so the same
  // cursor construction applies with the roles swapped: Z is the step
  // density of mass z_j on output bucket j of [-b, 1 + b], H its CDF, and
  //   sum_j overlap(j, i) z_j = int_{a_i}^{c_i} [H(v + b) - H(v - b)] dv.
  const double background = q_ * w_out_ * total;
  const double scale = (p_ - q_) / w_in_;
  PrefixIntegralCursor plus(z.data(), rows_, -b_, w_out_);
  PrefixIntegralCursor minus(z.data(), rows_, -b_, w_out_);
  plus.Advance(0.0 + b_);
  minus.Advance(0.0 - b_);
  for (size_t i = 0; i < cols_; ++i) {
    const double c = static_cast<double>(i + 1) * w_in_;
    const double hp = plus.Advance(c + b_);
    const double hm = minus.Advance(c - b_);
    (*out)[i] = background + scale * (hp - hm);
  }
}

}  // namespace numdist
