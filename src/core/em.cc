#include "core/em.h"

#include <cmath>
#include <limits>

#include "common/histogram.h"

namespace numdist {

void BinomialSmooth(std::vector<double>* x) {
  const size_t d = x->size();
  if (d < 3) return;
  std::vector<double>& v = *x;
  double prev = v[0];
  const double first = (2.0 * v[0] + v[1]) / 3.0;
  for (size_t i = 1; i + 1 < d; ++i) {
    const double cur = v[i];
    v[i] = 0.25 * prev + 0.5 * cur + 0.25 * v[i + 1];
    prev = cur;
  }
  v[d - 1] = (prev + 2.0 * v[d - 1]) / 3.0;
  v[0] = first;
  hist::Normalize(x);
}

Result<EmResult> EstimateEm(const ObservationModel& model,
                            const std::vector<uint64_t>& counts,
                            const EmOptions& opts) {
  const size_t d_out = model.rows();
  const size_t d = model.cols();
  if (d == 0 || d_out == 0) {
    return Status::InvalidArgument("EM: empty observation model");
  }
  if (counts.size() != d_out) {
    return Status::InvalidArgument("EM: counts size != model rows");
  }
  double n = 0.0;
  for (uint64_t c : counts) n += static_cast<double>(c);
  if (n <= 0.0) {
    return Status::InvalidArgument("EM: no observations");
  }
  if (!(opts.tol >= 0.0)) {
    return Status::InvalidArgument("EM: tol must be >= 0");
  }

  EmResult result;
  result.estimate.assign(d, 1.0 / static_cast<double>(d));
  std::vector<double>& x = result.estimate;
  std::vector<double> y(d_out, 0.0);
  std::vector<double> weights(d_out, 0.0);
  std::vector<double> p(d, 0.0);

  double prev_ll = -std::numeric_limits<double>::infinity();
  for (size_t iter = 1; iter <= opts.max_iterations; ++iter) {
    // y = M x: predicted output distribution under the current estimate.
    model.Apply(x, &y);

    // Total log-likelihood and the E-step weights n_j / y_j.
    double ll = 0.0;
    for (size_t j = 0; j < d_out; ++j) {
      if (counts[j] == 0) {
        weights[j] = 0.0;
        continue;
      }
      // y_j > 0 whenever x has support reaching bucket j; with the SW model
      // every output bucket is reachable (q > 0), so this guard only trips
      // on degenerate custom matrices.
      const double yj = std::max(y[j], 1e-300);
      weights[j] = static_cast<double>(counts[j]) / yj;
      ll += static_cast<double>(counts[j]) * std::log(yj);
    }

    // Combined E+M step: x_i <- x_i * (M^T w)_i, renormalized.
    model.ApplyTranspose(weights, &p);
    double total = 0.0;
    for (size_t i = 0; i < d; ++i) {
      p[i] *= x[i];
      total += p[i];
    }
    if (total <= 0.0) {
      return Status::Internal("EM: estimate collapsed to zero mass");
    }
    for (size_t i = 0; i < d; ++i) x[i] = p[i] / total;

    if (opts.smoothing) BinomialSmooth(&x);

    result.iterations = iter;
    result.log_likelihood = ll;
    if (iter >= opts.min_iterations && ll - prev_ll < opts.tol &&
        std::isfinite(prev_ll)) {
      result.converged = true;
      break;
    }
    prev_ll = ll;
  }
  return result;
}

Result<EmResult> EstimateEm(const Matrix& m,
                            const std::vector<uint64_t>& counts,
                            const EmOptions& opts) {
  const DenseObservationModel model(m);
  return EstimateEm(model, counts, opts);
}

}  // namespace numdist
