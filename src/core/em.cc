#include "core/em.h"

#include <cmath>
#include <limits>

#include "common/histogram.h"
#include "kernels/kernels.h"

namespace numdist {

void BinomialSmooth(std::vector<double>* x) {
  const size_t d = x->size();
  if (d < 3) return;
  std::vector<double>& v = *x;
  double prev = v[0];
  const double first = (2.0 * v[0] + v[1]) / 3.0;
  for (size_t i = 1; i + 1 < d; ++i) {
    const double cur = v[i];
    v[i] = 0.25 * prev + 0.5 * cur + 0.25 * v[i + 1];
    prev = cur;
  }
  v[d - 1] = (prev + 2.0 * v[d - 1]) / 3.0;
  v[0] = first;
  hist::Normalize(x);
}

namespace {

// One combined E+M(+S) map shared by the plain and accelerated iterations.
// Holds the per-run workspaces so the hot loop performs no heap allocations:
// every vector is sized once here and reused across iterations.
class EmStepper {
 public:
  EmStepper(const ObservationModel& model, const std::vector<double>& counts,
            bool smoothing)
      : model_(model),
        counts_(counts),
        smoothing_(smoothing),
        y_(model.rows(), 0.0),
        weights_(model.rows(), 0.0),
        weights_spare_(model.rows(), 0.0) {}

  // E half: y = M x, fills the weights n_j / y_j, returns the total
  // log-likelihood of x. (SQUAREM needs the halves separately; the plain
  // loop goes through Step's fused sweep, which computes the same values.)
  double Predict(const std::vector<double>& x) {
    model_.Apply(x, &y_);
    return EmWeightsFromPrediction(counts_, y_, &weights_);
  }

  // M half on the weights from the latest Predict: next = normalized
  // x ⊙ (M^T w), smoothed if configured. next != &x.
  Status Finish(const std::vector<double>& x, std::vector<double>* next) {
    model_.ApplyTranspose(weights_, next);
    return NormalizeAndSmooth(x, next);
  }

  // Full map x -> *next; *ll receives the log-likelihood of x. Runs the
  // model's fused E-step sweep (one matrix pass on the dense model).
  Status Step(const std::vector<double>& x, std::vector<double>* next,
              double* ll) {
    *ll = model_.EmSweep(x, counts_, &y_, &weights_, next);
    return NormalizeAndSmooth(x, next);
  }

  // Swaps the live weights with the spare buffer, letting the accelerated
  // loop keep the predictions of two candidate iterates at once (the
  // swapped-in contents are garbage until the next Predict overwrites them).
  void StashWeights() { std::swap(weights_, weights_spare_); }

 private:
  // Shared M-step tail: next = normalized x ⊙ next (+ optional smoothing).
  // The multiply-and-total and the normalization run through the
  // dispatched kernels.
  Status NormalizeAndSmooth(const std::vector<double>& x,
                            std::vector<double>* next) {
    const double total = kernels::MulAndSum(next->data(), x.data(), x.size());
    if (total <= 0.0) {
      return Status::Internal("EM: estimate collapsed to zero mass");
    }
    kernels::Scale(next->data(), 1.0 / total, next->size());
    if (smoothing_) BinomialSmooth(next);
    return Status::OK();
  }

  const ObservationModel& model_;
  const std::vector<double>& counts_;
  bool smoothing_;
  std::vector<double> y_;
  std::vector<double> weights_;
  std::vector<double> weights_spare_;
};

// Fills the starting iterate: uniform (cold), or the checkpointed fixed
// point floored at 1e-12 / d and renormalized (warm). The floor keeps a
// coordinate that a previous run drove to an exact zero — an absorbing
// state of the multiplicative update — able to recover mass after the
// snapshot grows; the renormalization makes the warm iterate a proper
// distribution regardless of accumulated rounding. Deterministic: the
// warm iterate is a pure function of the checkpoint.
void InitIterate(size_t d, const std::vector<double>* warm,
                 std::vector<double>* x) {
  if (warm == nullptr || warm->size() != d) {
    x->assign(d, 1.0 / static_cast<double>(d));
    return;
  }
  const double floor = 1e-12 / static_cast<double>(d);
  x->resize(d);
  double total = 0.0;
  for (size_t i = 0; i < d; ++i) {
    const double v = (*warm)[i];
    (*x)[i] = (std::isfinite(v) && v > floor) ? v : floor;
    total += (*x)[i];
  }
  kernels::Scale(x->data(), 1.0 / total, d);
}

// Classic fixed-point iteration (paper Algorithm 1). Same structure as the
// historical loop; the arithmetic now runs through the dispatched kernels
// (fused E-step sweep + blocked reductions), whose fixed operation order
// is identical under scalar and vector dispatch.
Result<EmResult> RunPlainEm(EmStepper& stepper, size_t d,
                            const EmOptions& opts,
                            const std::vector<double>* warm) {
  EmResult result;
  InitIterate(d, warm, &result.estimate);
  std::vector<double> next(d, 0.0);

  double prev_ll = -std::numeric_limits<double>::infinity();
  for (size_t iter = 1; iter <= opts.max_iterations; ++iter) {
    double ll = 0.0;
    NUMDIST_RETURN_NOT_OK(stepper.Step(result.estimate, &next, &ll));
    std::swap(result.estimate, next);

    result.iterations = iter;
    result.log_likelihood = ll;
    if (iter >= opts.min_iterations && ll - prev_ll < opts.tol &&
        std::isfinite(prev_ll)) {
      result.converged = true;
      break;
    }
    prev_ll = ll;
  }
  return result;
}

// SQUAREM acceleration (Varadhan & Roland 2008, scheme S3): from the
// current iterate x take two base steps x1 = F(x), x2 = F(x1), extrapolate
//   x' = x - 2a r + a^2 v,  r = x1 - x,  v = x2 - 2 x1 + x,
//   a = -||r|| / ||v||  (clamped to <= -1; a = -1 degenerates to x2),
// clamp x' back onto the simplex, and accept the stabilization step F(x')
// only when LL(x') >= LL(x2) — otherwise fall back to the plain step x2, so
// the log-likelihood ascent property of EM is preserved. `iterations`
// counts applications of the E+M map, comparable with the plain loop.
Result<EmResult> RunSquaremEm(EmStepper& stepper, size_t d,
                              const EmOptions& opts,
                              const std::vector<double>* warm) {
  EmResult result;
  InitIterate(d, warm, &result.estimate);
  std::vector<double>& x = result.estimate;
  std::vector<double> x1(d, 0.0);
  std::vector<double> x2(d, 0.0);
  std::vector<double> xacc(d, 0.0);

  size_t iter = 0;
  double prev_ll = -std::numeric_limits<double>::infinity();
  // Each cycle applies the map 3 times (two base steps + one step from the
  // safeguard branch); never start a cycle that would overshoot the cap.
  while (iter + 3 <= opts.max_iterations) {
    double ll0 = 0.0;
    double ll1 = 0.0;
    NUMDIST_RETURN_NOT_OK(stepper.Step(x, &x1, &ll0));
    NUMDIST_RETURN_NOT_OK(stepper.Step(x1, &x2, &ll1));
    iter += 2;
    result.iterations = iter;
    result.log_likelihood = ll1;
    if (iter >= opts.min_iterations && ll1 - ll0 < opts.tol) {
      std::swap(x, x2);  // keep the furthest computed iterate
      result.converged = true;
      return result;
    }

    // Squared-iterative steplength from the two base steps.
    double rr = 0.0;
    double vv = 0.0;
    for (size_t i = 0; i < d; ++i) {
      const double r = x1[i] - x[i];
      const double v = (x2[i] - x1[i]) - r;
      rr += r * r;
      vv += v * v;
    }
    double alpha = vv > 0.0 ? -std::sqrt(rr / vv) : -1.0;
    if (alpha > -1.0) alpha = -1.0;

    // Extrapolate and project back onto the simplex.
    double total = 0.0;
    for (size_t i = 0; i < d; ++i) {
      const double r = x1[i] - x[i];
      const double v = (x2[i] - x1[i]) - r;
      const double e = x[i] - 2.0 * alpha * r + alpha * alpha * v;
      xacc[i] = e > 0.0 ? e : 0.0;
      total += xacc[i];
    }
    if (total > 0.0) {
      for (size_t i = 0; i < d; ++i) xacc[i] /= total;
    } else {
      xacc = x2;  // degenerate extrapolation: plain step
    }

    // Monotonicity safeguard: keep whichever of {extrapolated, plain}
    // candidate is more likely, then advance one map application from it.
    // Both candidates are predicted up front (stashing the extrapolated
    // weights around the x2 prediction), so the rejected branch's E half is
    // never wasted — it simply becomes the next step's prediction.
    const double llacc = stepper.Predict(xacc);
    stepper.StashWeights();  // save xacc's weights
    const double ll2 = stepper.Predict(x2);
    const bool accept = llacc >= ll2;
    if (accept) stepper.StashWeights();  // restore xacc's weights
    NUMDIST_RETURN_NOT_OK(stepper.Finish(accept ? xacc : x2, &x1));
    std::swap(x, x1);
    iter += 1;
    result.iterations = iter;
    result.log_likelihood = accept ? llacc : ll2;
    prev_ll = result.log_likelihood;
  }

  // Finish any remaining budget (cap not a multiple of the cycle length,
  // or a cap below one full cycle) with plain steps so the accelerated
  // path honors max_iterations exactly, like the classic loop.
  while (iter < opts.max_iterations) {
    double ll = 0.0;
    NUMDIST_RETURN_NOT_OK(stepper.Step(x, &x1, &ll));
    std::swap(x, x1);
    iter += 1;
    result.iterations = iter;
    result.log_likelihood = ll;
    if (iter >= opts.min_iterations && ll - prev_ll < opts.tol &&
        std::isfinite(prev_ll)) {
      result.converged = true;
      break;
    }
    prev_ll = ll;
  }
  return result;
}

// Shared core once the counts are validated doubles. `warm` may alias
// checkpoint->estimate; the run loops copy it into the iterate up front.
Result<EmResult> RunValidated(const ObservationModel& model,
                              const std::vector<double>& counts,
                              const EmOptions& opts,
                              EmCheckpoint* checkpoint) {
  const std::vector<double>* warm =
      (checkpoint != nullptr && checkpoint->warm()) ? &checkpoint->estimate
                                                    : nullptr;
  EmStepper stepper(model, counts, opts.smoothing);
  Result<EmResult> run = opts.acceleration
                             ? RunSquaremEm(stepper, model.cols(), opts, warm)
                             : RunPlainEm(stepper, model.cols(), opts, warm);
  if (run.ok() && checkpoint != nullptr) {
    checkpoint->estimate = run.value().estimate;
    checkpoint->total_iterations += run.value().iterations;
    checkpoint->runs += 1;
    checkpoint->log_likelihood = run.value().log_likelihood;
  }
  return run;
}

}  // namespace

Result<EmResult> EstimateEmWeighted(const ObservationModel& model,
                                    const std::vector<double>& counts,
                                    const EmOptions& opts,
                                    EmCheckpoint* checkpoint) {
  const size_t d_out = model.rows();
  const size_t d = model.cols();
  if (d == 0 || d_out == 0) {
    return Status::InvalidArgument("EM: empty observation model");
  }
  if (counts.size() != d_out) {
    return Status::InvalidArgument("EM: counts size != model rows");
  }
  double n = 0.0;
  for (double c : counts) {
    if (!std::isfinite(c) || c < 0.0) {
      return Status::InvalidArgument("EM: counts must be finite and >= 0");
    }
    n += c;
  }
  if (n <= 0.0) {
    return Status::InvalidArgument("EM: no observations");
  }
  if (!(opts.tol >= 0.0)) {
    return Status::InvalidArgument("EM: tol must be >= 0");
  }
  return RunValidated(model, counts, opts, checkpoint);
}

Result<EmResult> EstimateEm(const ObservationModel& model,
                            const std::vector<uint64_t>& counts,
                            const EmOptions& opts, EmCheckpoint* checkpoint) {
  // One exact uint64 -> double conversion per call; every count the system
  // produces is far below 2^53, so the converted run is bit-identical to
  // the historical integer path.
  std::vector<double> weighted(counts.size());
  for (size_t j = 0; j < counts.size(); ++j) {
    weighted[j] = static_cast<double>(counts[j]);
  }
  return EstimateEmWeighted(model, weighted, opts, checkpoint);
}

Result<EmResult> EstimateEm(const Matrix& m,
                            const std::vector<uint64_t>& counts,
                            const EmOptions& opts, EmCheckpoint* checkpoint) {
  const DenseObservationModel model(&m);  // borrowed; m outlives the call
  return EstimateEm(model, counts, opts, checkpoint);
}

}  // namespace numdist
