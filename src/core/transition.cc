#include "core/transition.h"

#include <cmath>
#include <string>

namespace numdist {

Status ValidateTransitionMatrix(const Matrix& m, double tol) {
  for (size_t j = 0; j < m.cols(); ++j) {
    double sum = 0.0;
    for (size_t i = 0; i < m.rows(); ++i) {
      const double e = m(i, j);
      if (std::isnan(e) || e < -tol || e > 1.0 + tol) {
        return Status::Internal("transition entry out of [0,1] at (" +
                                std::to_string(i) + "," + std::to_string(j) +
                                ")");
      }
      sum += e;
    }
    if (std::fabs(sum - 1.0) > tol) {
      return Status::Internal("transition column " + std::to_string(j) +
                              " sums to " + std::to_string(sum));
    }
  }
  return Status::OK();
}

void NormalizeColumns(Matrix* m) {
  for (size_t j = 0; j < m->cols(); ++j) {
    double sum = 0.0;
    for (size_t i = 0; i < m->rows(); ++i) sum += (*m)(i, j);
    if (sum <= 0.0) continue;
    const double inv = 1.0 / sum;
    for (size_t i = 0; i < m->rows(); ++i) (*m)(i, j) *= inv;
  }
}

std::vector<double> NormalizeCounts(const std::vector<uint64_t>& counts) {
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  std::vector<double> freq(counts.size(), 0.0);
  if (total == 0) return freq;
  const double inv = 1.0 / static_cast<double>(total);
  for (size_t i = 0; i < counts.size(); ++i) {
    freq[i] = static_cast<double>(counts[i]) * inv;
  }
  return freq;
}

}  // namespace numdist
