#include "core/wave.h"

#include <cassert>
#include <cmath>
#include <utility>

#include "common/histogram.h"
#include "core/bandwidth.h"

namespace numdist {

Result<GeneralWave> GeneralWave::Make(double epsilon, double b,
                                      double top_ratio) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("GW: epsilon must be positive and finite");
  }
  if (b < 0.0) b = OptimalBandwidth(epsilon);
  if (!(b > 0.0) || b > 1.0) {
    return Status::InvalidArgument("GW: bandwidth b must be in (0, 1]");
  }
  if (top_ratio < 0.0 || top_ratio >= 1.0) {
    return Status::InvalidArgument(
        "GW: top_ratio must be in [0, 1); use SquareWave for ratio 1");
  }

  const double e = std::exp(epsilon);
  // Minimal q subject to the GW constraints with plateau at e^eps q:
  // flat area q(1+2b) plus bump area (e^eps q - q) * b (1 + r) must be 1.
  const double q =
      1.0 / (1.0 + 2.0 * b + (e - 1.0) * b * (1.0 + top_ratio));
  const double peak = e * q;

  std::vector<double> xs;
  std::vector<double> ys;
  std::vector<double> bump_xs;
  std::vector<double> bump_ys;
  if (top_ratio > 0.0) {
    xs = {-(1.0 + b), -b, -top_ratio * b, top_ratio * b, b, 1.0 + b};
    ys = {q, q, peak, peak, q, q};
    bump_xs = {-b, -top_ratio * b, top_ratio * b, b};
    bump_ys = {0.0, peak - q, peak - q, 0.0};
  } else {
    xs = {-(1.0 + b), -b, 0.0, b, 1.0 + b};
    ys = {q, q, peak, q, q};
    bump_xs = {-b, 0.0, b};
    bump_ys = {0.0, peak - q, 0.0};
  }
  Result<PiecewiseLinear> wave = PiecewiseLinear::Make(std::move(xs),
                                                       std::move(ys));
  if (!wave.ok()) return wave.status();
  Result<PiecewiseLinear> bump = PiecewiseLinear::Make(std::move(bump_xs),
                                                       std::move(bump_ys));
  if (!bump.ok()) return bump.status();
  return GeneralWave(epsilon, b, top_ratio, std::move(wave).value(),
                     std::move(bump).value());
}

GeneralWave::GeneralWave(double epsilon, double b, double top_ratio,
                         PiecewiseLinear wave, PiecewiseLinear bump)
    : epsilon_(epsilon),
      b_(b),
      top_ratio_(top_ratio),
      wave_(std::move(wave)),
      bump_(std::move(bump)) {
  const double e = std::exp(epsilon);
  q_ = 1.0 / (1.0 + 2.0 * b + (e - 1.0) * b * (1.0 + top_ratio));
  peak_ = e * q_;
}

double GeneralWave::Perturb(double v, Rng& rng) const {
  assert(v >= 0.0 && v <= 1.0);
  // Decompose the output density into a flat U[-b, 1+b] component of mass
  // q (1+2b) and the centered bump (W - q) of mass 1 - q (1+2b).
  const double flat_mass = q_ * (1.0 + 2.0 * b_);
  if (rng.Bernoulli(flat_mass)) {
    return rng.Uniform(-b_, 1.0 + b_);
  }
  return v + bump_.SampleDensity(-b_, b_, rng);
}

double GeneralWave::Density(double v, double out) const {
  assert(v >= 0.0 && v <= 1.0);
  if (out < -b_ || out > 1.0 + b_) return 0.0;
  return wave_.Evaluate(out - v);
}

Matrix GeneralWave::TransitionMatrix(size_t d_in, size_t d_out) const {
  assert(d_in >= 1 && d_out >= 1);
  Matrix m(d_out, d_in);
  const double out_lo = -b_;
  const double out_width = (1.0 + 2.0 * b_) / static_cast<double>(d_out);
  const double in_width = 1.0 / static_cast<double>(d_in);
  for (size_t j = 0; j < d_out; ++j) {
    const double l = out_lo + static_cast<double>(j) * out_width;
    const double r = l + out_width;
    for (size_t i = 0; i < d_in; ++i) {
      const double a = static_cast<double>(i) * in_width;
      const double c = a + in_width;
      m(j, i) = wave_.RectangleConvolutionIntegral(l, r, a, c) / in_width;
    }
  }
  return m;
}

std::vector<uint64_t> GeneralWave::BucketizeReports(
    const std::vector<double>& reports, size_t d_out) const {
  std::vector<uint64_t> counts(d_out, 0);
  for (double r : reports) {
    ++counts[hist::BucketOf(r, d_out, -b_, 1.0 + b_)];
  }
  return counts;
}

}  // namespace numdist
