// Transition-matrix validation and shared observation-model helpers used by
// the EM/EMS reconstruction path.
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "common/status.h"

namespace numdist {

/// Checks that `m` is a valid column-stochastic observation model: all
/// entries in [0, 1+tol] and every column sums to 1 within `tol`.
Status ValidateTransitionMatrix(const Matrix& m, double tol = 1e-8);

/// Rescales every column of `m` to sum exactly to 1 (defensive cleanup after
/// floating-point accumulation; no-op for already-stochastic matrices).
void NormalizeColumns(Matrix* m);

/// Normalizes integer observation counts into frequencies.
std::vector<double> NormalizeCounts(const std::vector<uint64_t>& counts);

}  // namespace numdist
