// Bandwidth selection for the Square Wave mechanism (paper §5.3).
//
// b is chosen to maximize an upper bound on the mutual information between
// the private input and the randomized report; the closed form is
//   b*(eps) = (eps e^eps - e^eps + 1) / (2 e^eps (e^eps - 1 - eps)).
#pragma once

#include <cstddef>

namespace numdist {

/// Closed-form mutual-information-optimal bandwidth b*(eps).
/// Monotone non-increasing in eps; b* -> 1/2 as eps -> 0, -> 0 as eps -> inf.
/// Requires eps > 0 (eps <= 0 returns the eps->0 limit 0.5).
double OptimalBandwidth(double epsilon);

/// The maximized objective from §5.3:
///   MI_bound(eps, b) = log((2b+1)/(2b e^eps + 1)) + 2 b eps e^eps/(2b e^eps + 1).
/// (The upper bound of I(V, V~) up to the constant h(U) terms; see paper.)
double MutualInformationUpperBound(double epsilon, double b);

/// Maximizes MutualInformationUpperBound over b in (0, 1/2] numerically
/// (golden-section search). Exists to validate the closed form; tests assert
/// it agrees with OptimalBandwidth to ~1e-6.
double NumericOptimalBandwidth(double epsilon);

/// Discrete-domain bandwidth (paper §5.4): floor(b*(eps) * d) buckets.
size_t DiscreteOptimalBandwidth(double epsilon, size_t d);

}  // namespace numdist
