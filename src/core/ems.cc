#include "core/ems.h"

#include <algorithm>

#include "common/histogram.h"
#include "core/transition.h"

namespace numdist {

Result<EmResult> EstimateEms(const Matrix& m,
                             const std::vector<uint64_t>& counts,
                             EmOptions opts) {
  opts.smoothing = true;
  return EstimateEm(m, counts, opts);
}

std::vector<double> SmoothingOnlyEstimate(const std::vector<uint64_t>& counts,
                                          size_t d, size_t passes) {
  // Resample the observed output-domain frequencies onto the d input buckets
  // by exact proportional binning — each output bucket's mass is split
  // across every input bucket it overlaps, weighted by overlap length (not
  // point-assigned to the bucket under its center) — then smooth.
  std::vector<double> obs = NormalizeCounts(counts);
  std::vector<double> x(d, 0.0);
  const size_t d_out = obs.size();
  const double scale =
      static_cast<double>(d) / static_cast<double>(d_out);
  for (size_t j = 0; j < d_out; ++j) {
    if (obs[j] == 0.0) continue;
    // Output bucket j covers [j, j + 1) / d_out, i.e. input-grid interval
    // [lo, hi) of length `scale`.
    const double lo = static_cast<double>(j) * scale;
    const double hi = lo + scale;
    size_t i = std::min(static_cast<size_t>(lo), d - 1);
    const double inv_len = 1.0 / scale;
    for (; i < d; ++i) {
      const double left = std::max(lo, static_cast<double>(i));
      const double right = std::min(hi, static_cast<double>(i + 1));
      if (right <= left) break;
      x[i] += obs[j] * (right - left) * inv_len;
    }
  }
  hist::Normalize(&x);
  for (size_t pass = 0; pass < passes; ++pass) BinomialSmooth(&x);
  return x;
}

}  // namespace numdist
