#include "core/ems.h"

#include "common/histogram.h"
#include "core/transition.h"

namespace numdist {

Result<EmResult> EstimateEms(const Matrix& m,
                             const std::vector<uint64_t>& counts,
                             EmOptions opts) {
  opts.smoothing = true;
  return EstimateEm(m, counts, opts);
}

std::vector<double> SmoothingOnlyEstimate(const std::vector<uint64_t>& counts,
                                          size_t d, size_t passes) {
  // Resample the observed output-domain frequencies onto the d input buckets
  // by simple proportional binning, then smooth.
  std::vector<double> obs = NormalizeCounts(counts);
  std::vector<double> x(d, 0.0);
  const size_t d_out = obs.size();
  for (size_t j = 0; j < d_out; ++j) {
    // Map output bucket j onto the input grid position proportionally.
    const double pos = (static_cast<double>(j) + 0.5) /
                       static_cast<double>(d_out) * static_cast<double>(d);
    size_t i = static_cast<size_t>(pos);
    if (i >= d) i = d - 1;
    x[i] += obs[j];
  }
  hist::Normalize(&x);
  for (size_t pass = 0; pass < passes; ++pass) BinomialSmooth(&x);
  return x;
}

}  // namespace numdist
