// Expectation-Maximization reconstruction on aggregated reports
// (paper §5.5, Algorithm 1, Appendix A).
//
// Given the observation model M (column-stochastic, d_out x d) and the
// histogram of perturbed reports n_j, EM iterates
//   P_i   = x_i * sum_j n_j M(j,i) / (M x)_j        (E step)
//   x_i   = P_i / sum_k P_k                          (M step)
// which converges to the MLE of the input distribution because the
// log-likelihood L(x) = sum_j n_j log (M x)_j is concave (Theorem 5.6).
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "common/result.h"
#include "core/observation_model.h"

namespace numdist {

/// Options controlling the EM / EMS iteration.
struct EmOptions {
  /// Stop when the total log-likelihood L(x) = sum_j n_j log (M x)_j improves
  /// by less than this between iterations. The paper (§6.1) uses
  /// 1e-3 * e^eps for plain EM and 1e-3 for EMS; SwEstimator applies those
  /// defaults.
  double tol = 1e-3;
  /// Hard iteration cap (EM on noisy data can plateau extremely slowly).
  size_t max_iterations = 10000;
  /// Run at least this many iterations before testing convergence.
  size_t min_iterations = 5;
  /// Apply the binomial smoothing step after each M step (EMS, §5.5).
  bool smoothing = false;
  /// SQUAREM-style acceleration (Varadhan & Roland 2008): extrapolate
  /// through pairs of E+M steps with the squared-iterative steplength and
  /// fall back to the plain step whenever the extrapolated point lowers the
  /// log-likelihood. Converges to the same fixed point in typically 3-5x
  /// fewer iterations. Off by default so fixed-seed metric trajectories
  /// stay bit-identical to the classic iteration.
  bool acceleration = false;
};

/// Outcome of an EM / EMS run.
struct EmResult {
  /// Reconstructed input distribution (size d, non-negative, sums to 1).
  std::vector<double> estimate;
  /// Iterations performed.
  size_t iterations = 0;
  /// Final total log-likelihood sum_j n_j log (M x)_j.
  double log_likelihood = 0.0;
  /// False iff the iteration cap was hit before the tolerance.
  bool converged = false;
};

/// Resumable EM state for incremental reconstruction over rolling
/// snapshots: when a snapshot advances by Δ reports, restarting the
/// iteration from the previous fixed point instead of uniform converges in
/// a small fraction of the cold iterations (the likelihood surface barely
/// moved). Pass a checkpoint to EstimateEm / EstimateEmWeighted: an empty
/// checkpoint leaves the first run cold; afterwards `estimate` holds the
/// latest fixed point and the bookkeeping fields accumulate the total
/// iteration budget spent across the whole snapshot sequence.
struct EmCheckpoint {
  /// Latest fixed point (size d). Empty => the next run starts cold
  /// (uniform). Warm starts floor each entry at 1e-12 / d before
  /// renormalizing, so a coordinate driven to an absorbing exact zero by a
  /// previous run can still recover mass.
  std::vector<double> estimate;
  /// E+M map applications accumulated across all runs through this
  /// checkpoint (the incremental path's total iteration budget).
  size_t total_iterations = 0;
  /// Runs accumulated through this checkpoint.
  size_t runs = 0;
  /// Final log-likelihood of the latest run (of its own counts).
  double log_likelihood = 0.0;
  /// True when the next run will start from `estimate` instead of uniform.
  bool warm() const { return !estimate.empty(); }
  /// Back to a cold start, keeping nothing.
  void Reset() {
    estimate.clear();
    total_iterations = 0;
    runs = 0;
    log_likelihood = 0.0;
  }
};

/// Runs EM (or EMS if opts.smoothing) for observation model `m` and observed
/// output-bucket counts `counts` (counts.size() == m.rows()). Errors on
/// dimension mismatch, empty input, or an all-zero count vector. A non-null
/// `checkpoint` warm-starts the iteration from its stored fixed point (when
/// it has one of the right size) and is updated with the run's outcome.
Result<EmResult> EstimateEm(const Matrix& m,
                            const std::vector<uint64_t>& counts,
                            const EmOptions& opts = EmOptions(),
                            EmCheckpoint* checkpoint = nullptr);

/// Operator-based variant: same algorithm, but the observation model is an
/// abstract linear operator (use SlidingWindowObservationModel for SW/DSW
/// models — O(d) per product instead of O(d^2); see observation_model.h).
/// The iteration loop performs no heap allocations: all workspaces are
/// sized once up front.
Result<EmResult> EstimateEm(const ObservationModel& model,
                            const std::vector<uint64_t>& counts,
                            const EmOptions& opts = EmOptions(),
                            EmCheckpoint* checkpoint = nullptr);

/// Weighted-counts variant for the mini-batch / forgetting path: `counts`
/// are non-negative reals (exponentially decayed histograms are fractional).
/// Integer histograms fed through this overload reconstruct bit-identically
/// to the uint64 overloads (the conversion is exact). Errors additionally on
/// negative or non-finite counts.
Result<EmResult> EstimateEmWeighted(const ObservationModel& model,
                                    const std::vector<double>& counts,
                                    const EmOptions& opts = EmOptions(),
                                    EmCheckpoint* checkpoint = nullptr);

/// One in-place binomial smoothing pass (the EMS "S step"): interior buckets
/// get weights (1/4, 1/2, 1/4), edges the truncated renormalized kernel
/// (2/3, 1/3); the vector is renormalized to sum 1 afterwards. Exposed for
/// tests and for the smoothing-only ablation.
void BinomialSmooth(std::vector<double>* x);

}  // namespace numdist
