// The General Wave (GW) mechanism family (paper §5.1): output density is a
// shifted wave W(out - v) with W == q outside [-b, b] and q <= W <= e^eps q
// inside. This implementation covers all symmetric piecewise-linear waves —
// triangle (top_ratio = 0) through trapezoids (0 < top_ratio < 1). The
// square wave (top_ratio = 1, a discontinuous density) has its own exact
// implementation in square_wave.h; together they cover the shape study of
// §6.4 / Figure 5.
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "common/piecewise_linear.h"
#include "common/result.h"
#include "common/rng.h"

namespace numdist {

/// \brief Trapezoid/triangle General Wave mechanism on [0,1] -> [-b, 1+b].
///
/// For a given top/bottom ratio r, the wave rises linearly from q at |z| = b
/// to the plateau e^eps q over |z| <= r b. The baseline
/// q = 1 / (1 + 2b + (e^eps - 1) b (1 + r)) makes the density integrate to 1;
/// as r -> 1 this converges to the Square Wave's q = 1/(2b e^eps + 1).
class GeneralWave {
 public:
  /// Creates the mechanism. Requires epsilon > 0, 0 < b <= 1 (b < 0 selects
  /// the SW-optimal b*(eps)), and 0 <= top_ratio < 1.
  static Result<GeneralWave> Make(double epsilon, double b, double top_ratio);

  /// Randomizes one value (client side). Requires v in [0, 1].
  double Perturb(double v, Rng& rng) const;

  /// Exact output density M_v(out) (0 outside [-b, 1+b]).
  double Density(double v, double out) const;

  /// Transition matrix M (d_out x d_in), columns summing to 1; exact via the
  /// wave's second antiderivative. This is the EM observation model.
  Matrix TransitionMatrix(size_t d_in, size_t d_out) const;

  /// Buckets raw reports into d_out equal bins over [-b, 1+b].
  std::vector<uint64_t> BucketizeReports(const std::vector<double>& reports,
                                         size_t d_out) const;

  double epsilon() const { return epsilon_; }
  double b() const { return b_; }
  double top_ratio() const { return top_ratio_; }
  /// Baseline (far-region) density.
  double q() const { return q_; }
  /// Plateau density (= e^eps q).
  double peak() const { return peak_; }
  /// The wave function W over [-(1+b), 1+b] (exposed for tests).
  const PiecewiseLinear& wave() const { return wave_; }

 private:
  GeneralWave(double epsilon, double b, double top_ratio, PiecewiseLinear wave,
              PiecewiseLinear bump);

  double epsilon_;
  double b_;
  double top_ratio_;
  double q_;
  double peak_;
  PiecewiseLinear wave_;  // W(z) over [-(1+b), 1+b]
  PiecewiseLinear bump_;  // W(z) - q over [-b, b], the non-flat part
};

}  // namespace numdist
