// Expectation Maximization with Smoothing (EMS), the paper's recommended
// post-processing (§5.5): plain EM plus a binomial smoothing step after each
// M step. Smoothing is equivalent to a regularizer penalizing spiky
// estimates (Nychka 1990), which keeps EM from fitting the LDP noise — this
// is what makes the stopping condition insensitive to tuning.
#pragma once

#include <cstdint>
#include <vector>

#include "core/em.h"

namespace numdist {

/// Runs EMS: forces opts.smoothing = true (tol defaults to 1e-3 as in §6.1).
Result<EmResult> EstimateEms(const Matrix& m,
                             const std::vector<uint64_t>& counts,
                             EmOptions opts = EmOptions());

/// Ablation helper: no EM at all — de-noises by repeated smoothing of the
/// raw observed frequencies truncated to the input domain. Used by the
/// post-processing ablation bench to show EM is load-bearing.
std::vector<double> SmoothingOnlyEstimate(const std::vector<uint64_t>& counts,
                                          size_t d, size_t passes = 16);

}  // namespace numdist
