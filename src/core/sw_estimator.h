// End-to-end Square Wave distribution estimator — the library's primary
// public API. Wires together: SW reporting (continuous R-B or discrete B-R),
// report bucketization, the exact transition matrix, and EM/EMS
// reconstruction (paper §5).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/matrix.h"
#include "common/result.h"
#include "common/rng.h"
#include "core/em.h"
#include "core/observation_model.h"
#include "core/square_wave.h"

namespace numdist {

/// Configuration of the end-to-end SW estimator.
struct SwEstimatorOptions {
  /// Privacy budget (> 0).
  double epsilon = 1.0;
  /// Number of input histogram buckets.
  size_t d = 1024;
  /// Number of output (report) buckets; 0 means equal to d (paper default).
  size_t d_out = 0;
  /// Wave half-width; < 0 selects the mutual-information-optimal b*(eps).
  double b = -1.0;
  /// Post-processing: EMS (recommended) or plain EM.
  enum class Post { kEms, kEm } post = Post::kEms;
  /// Report pipeline: continuous "randomize before bucketize" (paper's
  /// experimental default) or discrete "bucketize before randomize".
  enum class Pipeline { kRandomizeBeforeBucketize, kBucketizeBeforeRandomize }
      pipeline = Pipeline::kRandomizeBeforeBucketize;
  /// EM iteration controls. `tol` <= 0 selects the paper defaults
  /// (1e-3 for EMS, 1e-3 * e^eps for EM).
  double tol = -1.0;
  size_t max_iterations = 10000;
  /// SQUAREM-accelerated reconstruction (see EmOptions::acceleration).
  /// Off by default: the plain iteration keeps fixed-seed metrics
  /// bit-identical across releases.
  bool accelerate_em = false;
};

/// \brief One-stop SW + EM/EMS distribution estimator.
///
/// Typical usage (aggregator side owns the estimator; each client calls
/// PerturbOne with its own value and sends the report):
/// \code
///   auto est = SwEstimator::Make({.epsilon = 1.0, .d = 256}).ValueOrDie();
///   std::vector<double> reports;  // collected from clients
///   for (double v : private_values) reports.push_back(est.PerturbOne(v, rng));
///   auto dist = est.Reconstruct(est.Aggregate(reports)).ValueOrDie();
/// \endcode
class SwEstimator {
 public:
  /// Validates options and builds the estimator (transition matrix included).
  static Result<SwEstimator> Make(const SwEstimatorOptions& options);

  /// Client-side report for one private value v in [0, 1]. For the
  /// continuous pipeline the report is a real in [-b, 1+b]; for the discrete
  /// pipeline it is an output bucket index (stored in the double).
  double PerturbOne(double v, Rng& rng) const;

  /// Bulk client encode: perturbs values[i] into (*out)[i] (resized to
  /// values.size()). The continuous pipeline is bit-identical to a
  /// PerturbOne loop on the same stream (SquareWave::PerturbBatch); the
  /// discrete pipeline uses the single-draw bulk path
  /// (DiscreteSquareWave::PerturbBatch), whose draw order differs from the
  /// per-value loop while the report channel is unchanged.
  void PerturbBatch(std::span<const double> values, Rng& rng,
                    std::vector<double>* out) const;

  /// Server-side: histogram of raw reports over the output buckets.
  std::vector<uint64_t> Aggregate(const std::vector<double>& reports) const;

  /// Server-side: output bucket index of a single report — the O(1)
  /// per-report primitive behind Aggregate, used by streaming ingestion
  /// (eval/streaming.h) so one report never allocates a histogram.
  size_t OutputBucketOf(double report) const;

  /// Server-side: reconstructs the d-bucket input distribution from
  /// aggregated output counts via EM or EMS.
  Result<EmResult> Reconstruct(const std::vector<uint64_t>& counts) const;

  /// Incremental variant: identical to Reconstruct but resumable — a
  /// non-null checkpoint warm-starts EM from the previous fixed point and
  /// accumulates the iteration budget across a rolling snapshot sequence
  /// (see EmCheckpoint). With an empty checkpoint the first run is cold and
  /// bit-identical to Reconstruct.
  Result<EmResult> ReconstructWarm(const std::vector<uint64_t>& counts,
                                   EmCheckpoint* checkpoint) const;

  /// Mini-batch variant over real-valued (e.g. exponentially decayed)
  /// counts; see EstimateEmWeighted. Used by IncrementalReconstructor's
  /// forgetting mode.
  Result<EmResult> ReconstructWeighted(const std::vector<double>& counts,
                                       EmCheckpoint* checkpoint) const;

  /// Convenience one-shot pipeline: perturb every value, aggregate,
  /// reconstruct. Returns the reconstructed distribution.
  Result<std::vector<double>> EstimateDistribution(
      const std::vector<double>& values, Rng& rng) const;

  /// The dense observation matrix (d_out' x d). Kept for validation, tests
  /// and diagnostics only — reconstruction runs through the O(d) analytic
  /// operator returned by model().
  const Matrix& transition() const { return transition_; }
  /// The analytic sliding-window operator EM actually iterates with.
  const ObservationModel& model() const { return model_; }
  const SwEstimatorOptions& options() const { return options_; }
  /// The resolved EM iteration controls (paper-default tolerances applied).
  /// IncrementalReconstructor budgets its per-update runs from these.
  const EmOptions& em_options() const { return em_options_; }
  /// Resolved wave half-width (continuous scale).
  double b() const;
  /// Number of output buckets actually used.
  size_t output_buckets() const { return transition_.rows(); }

 private:
  SwEstimator(SwEstimatorOptions options, SquareWave sw,
              DiscreteSquareWave dsw, Matrix transition,
              SlidingWindowObservationModel model, EmOptions em_options);

  SwEstimatorOptions options_;
  SquareWave sw_;           // used by the continuous pipeline
  DiscreteSquareWave dsw_;  // used by the discrete pipeline
  Matrix transition_;
  // Analytic q-background + box-kernel view of the transition used by EM:
  // O(d + d_out) per product, bandwidth-independent, never materialized
  // (see observation_model.h).
  SlidingWindowObservationModel model_;
  EmOptions em_options_;
};

}  // namespace numdist
