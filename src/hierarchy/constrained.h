// Constrained inference over hierarchy estimates (Hay et al., PVLDB 2010) —
// used both as HH's post-processing and as the exact Euclidean projection
// Pi_C onto the consistency subspace {x : parent == sum of children} inside
// HH-ADMM (paper §4.2, §4.3, Appendix B).
//
// Two passes, both O(number of nodes):
//  1. bottom-up: replace each internal estimate by the inverse-variance
//     weighted average of itself and its children's combined estimate;
//  2. top-down: redistribute each parent/children mismatch equally among the
//     children (mean consistency).
// For i.i.d. unit-variance noise this yields exactly the least-squares
// consistent tree, i.e. the orthogonal projection (verified against a
// brute-force KKT solve in tests).
#pragma once

#include <vector>

#include "hierarchy/tree.h"

namespace numdist {

/// Returns the L2-closest consistent node vector to `node_values`
/// (flattened, size tree.NumNodes()). If `fix_root` is true the root is
/// additionally pinned to `root_value` (HH knows the total is exactly 1).
std::vector<double> ConstrainedInference(const HierarchyTree& tree,
                                         const std::vector<double>& node_values,
                                         bool fix_root = false,
                                         double root_value = 1.0);

/// Brute-force reference: solves the projection KKT system by dense Gaussian
/// elimination. O(NumNodes^3) — only for tests on small trees.
std::vector<double> ConstrainedInferenceBruteForce(
    const HierarchyTree& tree, const std::vector<double>& node_values,
    bool fix_root = false, double root_value = 1.0);

/// Max over internal nodes of |value(node) - sum(values of children)|:
/// zero (up to FP) iff the vector is hierarchy-consistent.
double ConsistencyResidual(const HierarchyTree& tree,
                           const std::vector<double>& node_values);

}  // namespace numdist
