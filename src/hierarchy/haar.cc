#include "hierarchy/haar.h"

#include <cassert>
#include <utility>

namespace numdist {

Result<HaarHrrProtocol> HaarHrrProtocol::Make(double epsilon, size_t d) {
  Result<HierarchyTree> tree = HierarchyTree::Make(d, 2);
  if (!tree.ok()) return tree.status();
  std::vector<Hrr> hrrs;
  hrrs.reserve(tree->height());
  for (size_t t = 0; t < tree->height(); ++t) {
    // Items at internal level t: (node index, sign) -> 2 * 2^t values.
    Result<Hrr> hrr = Hrr::Make(epsilon, 2 * tree->LevelSize(t));
    if (!hrr.ok()) return hrr.status();
    hrrs.push_back(std::move(hrr).value());
  }
  return HaarHrrProtocol(epsilon, std::move(tree).value(), std::move(hrrs));
}

HaarHrrProtocol::HaarHrrProtocol(double epsilon, HierarchyTree tree,
                                 std::vector<Hrr> hrrs)
    : epsilon_(epsilon),
      tree_(std::move(tree)),
      level_hrrs_(std::move(hrrs)) {}

std::vector<double> HaarHrrProtocol::CollectNodeEstimates(
    const std::vector<uint32_t>& leaf_values, Rng& rng) const {
  std::vector<HaarReport> reports;
  PerturbBatch(leaf_values, rng, &reports);
  std::vector<FoSketch> sketches = MakeSketches();
  for (const HaarReport& report : reports) {
    const Status st = Absorb(report, &sketches);
    assert(st.ok());
    (void)st;
  }
  return NodeEstimatesFromSketches(sketches);
}

void HaarHrrProtocol::PerturbBatch(std::span<const uint32_t> leaf_values,
                                   Rng& rng,
                                   std::vector<HaarReport>* out) const {
  const size_t h = tree_.height();
  out->reserve(out->size() + leaf_values.size());
  // Population division over the h internal levels; each user reports the
  // (ancestor node, half) pair at their level through HRR.
  for (uint32_t leaf : leaf_values) {
    assert(leaf < tree_.d());
    const size_t t = rng.UniformInt(h);
    const size_t node = tree_.AncestorAt(leaf, t);
    // Sign: +1 (item 2*node) if the value lies in the left half of the
    // node's span, -1 (item 2*node+1) otherwise.
    const size_t child = tree_.AncestorAt(leaf, t + 1);
    const uint32_t item =
        static_cast<uint32_t>(2 * node + ((child % 2 == 0) ? 0 : 1));
    out->push_back(HaarReport{static_cast<uint32_t>(t),
                              level_hrrs_[t].Perturb(item, rng)});
  }
}

std::vector<FoSketch> HaarHrrProtocol::MakeSketches() const {
  std::vector<FoSketch> sketches;
  sketches.reserve(level_hrrs_.size());
  for (const Hrr& hrr : level_hrrs_) sketches.push_back(hrr.MakeSketch());
  return sketches;
}

Status HaarHrrProtocol::ValidateReport(const HaarReport& report) const {
  if (report.level >= tree_.height()) {
    return Status::InvalidArgument("HaarHRR: report level out of range");
  }
  // Untrusted clients: a non-±1 bit or out-of-order column would silently
  // bias the correlation sums.
  if (report.report.bit != 1 && report.report.bit != -1) {
    return Status::InvalidArgument("HaarHRR: report bit must be +-1");
  }
  if (report.report.col >= level_hrrs_[report.level].order()) {
    return Status::InvalidArgument("HaarHRR: report column out of range");
  }
  return Status::OK();
}

Status HaarHrrProtocol::Absorb(const HaarReport& report,
                               std::vector<FoSketch>* sketches) const {
  NUMDIST_RETURN_NOT_OK(ValidateReport(report));
  level_hrrs_[report.level].Absorb(report.report, &(*sketches)[report.level]);
  return Status::OK();
}

std::vector<double> HaarHrrProtocol::NodeEstimatesFromSketches(
    const std::vector<FoSketch>& sketches) const {
  const size_t h = tree_.height();
  assert(sketches.size() == h);

  // Per-level signed differences delta_a = F(a,left) - F(a,right).
  std::vector<std::vector<double>> delta(h);
  for (size_t t = 0; t < h; ++t) {
    const std::vector<double> freq =
        level_hrrs_[t].EstimateFromSketch(sketches[t]);
    delta[t].resize(tree_.LevelSize(t));
    for (size_t a = 0; a < tree_.LevelSize(t); ++a) {
      delta[t][a] = freq[2 * a] - freq[2 * a + 1];
    }
  }

  // Haar synthesis, top-down.
  std::vector<double> nodes(tree_.NumNodes(), 0.0);
  nodes[0] = 1.0;
  for (size_t t = 0; t < h; ++t) {
    const size_t off = tree_.LevelOffset(t);
    const size_t child_off = tree_.LevelOffset(t + 1);
    for (size_t a = 0; a < tree_.LevelSize(t); ++a) {
      const double fa = nodes[off + a];
      const double da = delta[t][a];
      nodes[child_off + 2 * a] = 0.5 * (fa + da);
      nodes[child_off + 2 * a + 1] = 0.5 * (fa - da);
    }
  }
  return nodes;
}

}  // namespace numdist
