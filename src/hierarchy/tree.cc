#include "hierarchy/tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace numdist {

Result<HierarchyTree> HierarchyTree::Make(size_t d, size_t beta) {
  if (beta < 2) {
    return Status::InvalidArgument("HierarchyTree: beta must be >= 2");
  }
  if (d < beta) {
    return Status::InvalidArgument("HierarchyTree: d must be >= beta");
  }
  size_t height = 0;
  size_t power = 1;
  while (power < d) {
    power *= beta;
    ++height;
    if (height > 63) break;
  }
  if (power != d) {
    return Status::InvalidArgument(
        "HierarchyTree: d must be an exact power of beta");
  }
  return HierarchyTree(d, beta, height);
}

HierarchyTree::HierarchyTree(size_t d, size_t beta, size_t height)
    : d_(d), beta_(beta), height_(height) {
  level_sizes_.resize(height_ + 1);
  level_offsets_.resize(height_ + 1);
  size_t size = 1;
  size_t offset = 0;
  for (size_t level = 0; level <= height_; ++level) {
    level_sizes_[level] = size;
    level_offsets_[level] = offset;
    offset += size;
    size *= beta_;
  }
  num_nodes_ = offset;
}

size_t HierarchyTree::AncestorAt(size_t leaf, size_t level) const {
  assert(leaf < d_ && level <= height_);
  size_t span = d_;
  for (size_t l = 0; l < level; ++l) span /= beta_;
  return leaf / span;
}

std::pair<size_t, size_t> HierarchyTree::LeafSpan(size_t level,
                                                  size_t idx) const {
  assert(level <= height_ && idx < level_sizes_[level]);
  size_t span = d_;
  for (size_t l = 0; l < level; ++l) span /= beta_;
  return {idx * span, (idx + 1) * span};
}

void HierarchyTree::DecomposeInto(size_t level, size_t idx, size_t lo,
                                  size_t hi,
                                  std::vector<TreeNode>* out) const {
  const auto [s, e] = LeafSpan(level, idx);
  if (s >= hi || e <= lo) return;         // disjoint
  if (lo <= s && e <= hi) {               // fully covered: canonical node
    out->push_back({level, idx});
    return;
  }
  assert(level < height_);                // leaves are never partial
  for (size_t c = 0; c < beta_; ++c) {
    DecomposeInto(level + 1, idx * beta_ + c, lo, hi, out);
  }
}

std::vector<TreeNode> HierarchyTree::DecomposeRange(size_t leaf_lo,
                                                    size_t leaf_hi) const {
  assert(leaf_lo <= leaf_hi && leaf_hi <= d_);
  std::vector<TreeNode> out;
  if (leaf_lo == leaf_hi) return out;
  DecomposeInto(0, 0, leaf_lo, leaf_hi, &out);
  return out;
}

double TreeRangeQuery(const HierarchyTree& tree,
                      const std::vector<double>& nodes, size_t leaf_lo,
                      size_t leaf_hi) {
  assert(nodes.size() == tree.NumNodes());
  double acc = 0.0;
  for (const TreeNode& node : tree.DecomposeRange(leaf_lo, leaf_hi)) {
    acc += nodes[tree.FlatIndex(node.level, node.index)];
  }
  return acc;
}

double TreeRangeQueryContinuous(const HierarchyTree& tree,
                                const std::vector<double>& nodes, double lo,
                                double hi) {
  assert(nodes.size() == tree.NumNodes());
  const double d = static_cast<double>(tree.d());
  double pos_lo = std::max(0.0, lo) * d;
  double pos_hi = std::min(1.0, hi) * d;
  if (pos_hi <= pos_lo) return 0.0;

  const size_t leaf_off = tree.LevelOffset(tree.height());
  const auto leaf_value = [&](size_t i) { return nodes[leaf_off + i]; };

  size_t full_lo = static_cast<size_t>(std::ceil(pos_lo));
  size_t full_hi = static_cast<size_t>(std::floor(pos_hi));
  if (full_lo >= full_hi) {
    // Entire range within one leaf (or a leaf boundary pair).
    const size_t leaf =
        std::min(static_cast<size_t>(pos_lo), tree.d() - 1);
    const size_t leaf2 =
        std::min(static_cast<size_t>(pos_hi), tree.d() - 1);
    if (leaf == leaf2) return (pos_hi - pos_lo) * leaf_value(leaf);
    // Range straddles a boundary but covers no full leaf.
    return (static_cast<double>(leaf + 1) - pos_lo) * leaf_value(leaf) +
           (pos_hi - static_cast<double>(leaf2)) * leaf_value(leaf2);
  }
  double acc = TreeRangeQuery(tree, nodes, full_lo, full_hi);
  if (pos_lo < static_cast<double>(full_lo)) {
    acc += (static_cast<double>(full_lo) - pos_lo) * leaf_value(full_lo - 1);
  }
  if (pos_hi > static_cast<double>(full_hi) && full_hi < tree.d()) {
    acc += (pos_hi - static_cast<double>(full_hi)) * leaf_value(full_hi);
  }
  return acc;
}

}  // namespace numdist
