#include "hierarchy/hh.h"

#include <cassert>
#include <utility>

namespace numdist {

Result<HhProtocol> HhProtocol::Make(double epsilon, size_t d, size_t beta,
                                    HhBudgetStrategy strategy) {
  Result<HierarchyTree> tree = HierarchyTree::Make(d, beta);
  if (!tree.ok()) return tree.status();
  // Divide-budget spends eps/h on each of the h levels (sequential
  // composition across the levels one report touches).
  const double level_epsilon =
      strategy == HhBudgetStrategy::kDividePopulation
          ? epsilon
          : epsilon / static_cast<double>(tree->height());
  std::vector<AdaptiveFo> level_fos;
  level_fos.reserve(tree->height());
  for (size_t level = 1; level <= tree->height(); ++level) {
    Result<AdaptiveFo> fo =
        AdaptiveFo::Make(level_epsilon, tree->LevelSize(level));
    if (!fo.ok()) return fo.status();
    level_fos.push_back(std::move(fo).value());
  }
  return HhProtocol(epsilon, strategy, std::move(tree).value(),
                    std::move(level_fos));
}

HhProtocol::HhProtocol(double epsilon, HhBudgetStrategy strategy,
                       HierarchyTree tree, std::vector<AdaptiveFo> level_fos)
    : epsilon_(epsilon),
      strategy_(strategy),
      tree_(std::move(tree)),
      level_fos_(std::move(level_fos)) {}

double HhProtocol::per_report_epsilon() const {
  return strategy_ == HhBudgetStrategy::kDividePopulation
             ? epsilon_
             : epsilon_ / static_cast<double>(tree_.height());
}

std::vector<double> HhProtocol::CollectNodeEstimates(
    const std::vector<uint32_t>& leaf_values, Rng& rng) const {
  std::vector<HhReport> reports;
  PerturbBatch(leaf_values, rng, &reports);
  std::vector<FoSketch> sketches = MakeSketches();
  for (const HhReport& report : reports) {
    const Status st = Absorb(report, &sketches);
    assert(st.ok());
    (void)st;
  }
  return NodeEstimatesFromSketches(sketches);
}

void HhProtocol::PerturbBatch(std::span<const uint32_t> leaf_values, Rng& rng,
                              std::vector<HhReport>* out) const {
  const size_t h = tree_.height();
  if (strategy_ == HhBudgetStrategy::kDividePopulation) {
    // Each user contributes to exactly one level with the full budget (the
    // right trade-off in the local setting, §4.2).
    out->reserve(out->size() + leaf_values.size());
    for (uint32_t leaf : leaf_values) {
      assert(leaf < tree_.d());
      const size_t level = 1 + rng.UniformInt(h);
      const uint32_t ancestor =
          static_cast<uint32_t>(tree_.AncestorAt(leaf, level));
      out->push_back(HhReport{static_cast<uint32_t>(level),
                              level_fos_[level - 1].Perturb(ancestor, rng)});
    }
  } else {
    // Every user reports every level with budget eps/h.
    out->reserve(out->size() + leaf_values.size() * h);
    for (uint32_t leaf : leaf_values) {
      assert(leaf < tree_.d());
      for (size_t level = 1; level <= h; ++level) {
        const uint32_t ancestor =
            static_cast<uint32_t>(tree_.AncestorAt(leaf, level));
        out->push_back(HhReport{static_cast<uint32_t>(level),
                                level_fos_[level - 1].Perturb(ancestor, rng)});
      }
    }
  }
}

std::vector<FoSketch> HhProtocol::MakeSketches() const {
  std::vector<FoSketch> sketches;
  sketches.reserve(level_fos_.size());
  for (const AdaptiveFo& fo : level_fos_) sketches.push_back(fo.MakeSketch());
  return sketches;
}

Status HhProtocol::ValidateReport(const HhReport& report) const {
  if (report.level < 1 || report.level > tree_.height()) {
    return Status::InvalidArgument("HH: report level out of range");
  }
  const AdaptiveFo& fo = level_fos_[report.level - 1];
  // Reports come from untrusted clients: never index out of bounds on a
  // bad GRR category. (OLH hashes are compared, never indexed.)
  if (fo.uses_grr() && report.report.value >= fo.domain()) {
    return Status::InvalidArgument("HH: report out of level domain");
  }
  return Status::OK();
}

Status HhProtocol::Absorb(const HhReport& report,
                          std::vector<FoSketch>* sketches) const {
  NUMDIST_RETURN_NOT_OK(ValidateReport(report));
  level_fos_[report.level - 1].Absorb(report.report,
                                      &(*sketches)[report.level - 1]);
  return Status::OK();
}

std::vector<double> HhProtocol::NodeEstimatesFromSketches(
    const std::vector<FoSketch>& sketches) const {
  assert(sketches.size() == level_fos_.size());
  std::vector<double> nodes(tree_.NumNodes(), 0.0);
  nodes[0] = 1.0;  // the total count is public in LDP
  for (size_t level = 1; level <= tree_.height(); ++level) {
    const std::vector<double> est =
        level_fos_[level - 1].EstimateFromSketch(sketches[level - 1]);
    const size_t off = tree_.LevelOffset(level);
    for (size_t i = 0; i < est.size(); ++i) nodes[off + i] = est[i];
  }
  return nodes;
}

}  // namespace numdist
