#include "hierarchy/hh.h"

#include <cassert>
#include <utility>

namespace numdist {

Result<HhProtocol> HhProtocol::Make(double epsilon, size_t d, size_t beta,
                                    HhBudgetStrategy strategy) {
  Result<HierarchyTree> tree = HierarchyTree::Make(d, beta);
  if (!tree.ok()) return tree.status();
  // Divide-budget spends eps/h on each of the h levels (sequential
  // composition across the levels one report touches).
  const double level_epsilon =
      strategy == HhBudgetStrategy::kDividePopulation
          ? epsilon
          : epsilon / static_cast<double>(tree->height());
  std::vector<AdaptiveFo> level_fos;
  level_fos.reserve(tree->height());
  for (size_t level = 1; level <= tree->height(); ++level) {
    Result<AdaptiveFo> fo =
        AdaptiveFo::Make(level_epsilon, tree->LevelSize(level));
    if (!fo.ok()) return fo.status();
    level_fos.push_back(std::move(fo).value());
  }
  return HhProtocol(epsilon, strategy, std::move(tree).value(),
                    std::move(level_fos));
}

HhProtocol::HhProtocol(double epsilon, HhBudgetStrategy strategy,
                       HierarchyTree tree, std::vector<AdaptiveFo> level_fos)
    : epsilon_(epsilon),
      strategy_(strategy),
      tree_(std::move(tree)),
      level_fos_(std::move(level_fos)) {}

double HhProtocol::per_report_epsilon() const {
  return strategy_ == HhBudgetStrategy::kDividePopulation
             ? epsilon_
             : epsilon_ / static_cast<double>(tree_.height());
}

std::vector<double> HhProtocol::CollectNodeEstimates(
    const std::vector<uint32_t>& leaf_values, Rng& rng) const {
  const size_t h = tree_.height();
  std::vector<std::vector<uint32_t>> per_level(h);
  if (strategy_ == HhBudgetStrategy::kDividePopulation) {
    // Each user contributes to exactly one level with the full budget (the
    // right trade-off in the local setting, §4.2).
    for (uint32_t leaf : leaf_values) {
      assert(leaf < tree_.d());
      const size_t level = 1 + rng.UniformInt(h);
      per_level[level - 1].push_back(
          static_cast<uint32_t>(tree_.AncestorAt(leaf, level)));
    }
  } else {
    // Every user reports every level with budget eps/h.
    for (uint32_t leaf : leaf_values) {
      assert(leaf < tree_.d());
      for (size_t level = 1; level <= h; ++level) {
        per_level[level - 1].push_back(
            static_cast<uint32_t>(tree_.AncestorAt(leaf, level)));
      }
    }
  }

  std::vector<double> nodes(tree_.NumNodes(), 0.0);
  nodes[0] = 1.0;  // the total count is public in LDP
  for (size_t level = 1; level <= h; ++level) {
    const std::vector<double> est =
        level_fos_[level - 1].Run(per_level[level - 1], rng);
    const size_t off = tree_.LevelOffset(level);
    for (size_t i = 0; i < est.size(); ++i) nodes[off + i] = est[i];
  }
  return nodes;
}

}  // namespace numdist
