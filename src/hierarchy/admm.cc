#include "hierarchy/admm.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "hierarchy/constrained.h"
#include "postprocess/norm_sub.h"

namespace numdist {

namespace {

// Pi_N+: per-level Norm-Sub. Every level of a consistent normalized tree
// sums to 1, so each level is independently projected onto its simplex.
std::vector<double> ProjectLevelsSimplex(const HierarchyTree& tree,
                                         const std::vector<double>& x) {
  std::vector<double> out(x.size());
  for (size_t level = 0; level < tree.num_levels(); ++level) {
    const size_t off = tree.LevelOffset(level);
    const size_t size = tree.LevelSize(level);
    const std::vector<double> level_vals(x.begin() + off,
                                         x.begin() + off + size);
    const std::vector<double> projected = NormSub(level_vals, 1.0);
    for (size_t i = 0; i < size; ++i) out[off + i] = projected[i];
  }
  return out;
}

}  // namespace

Result<AdmmResult> HhAdmm(const HierarchyTree& tree,
                          const std::vector<double>& noisy_nodes,
                          const AdmmOptions& options) {
  if (noisy_nodes.size() != tree.NumNodes()) {
    return Status::InvalidArgument(
        "HhAdmm: node vector size != tree.NumNodes()");
  }
  if (options.max_iterations == 0) {
    return Status::InvalidArgument("HhAdmm: max_iterations must be > 0");
  }
  for (double v : noisy_nodes) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("HhAdmm: noisy nodes must be finite");
    }
  }
  const size_t n = noisy_nodes.size();
  const std::vector<double>& xt = noisy_nodes;  // x~ in the paper

  std::vector<double> x = xt;  // x^
  std::vector<double> y(n, 0.0), z(n, 0.0), w(n, 0.0);
  std::vector<double> mu(n, 0.0), nu(n, 0.0), eta(n, 0.0);
  std::vector<double> tmp(n, 0.0);

  AdmmResult result;
  for (size_t iter = 1; iter <= options.max_iterations; ++iter) {
    // y-update: argmin 1/2||y||^2 + 1/2||x - x~ - y + mu||^2.
    for (size_t i = 0; i < n; ++i) y[i] = 0.5 * (x[i] - xt[i] + mu[i]);

    // z-update: project (x + nu) onto the consistency subspace.
    for (size_t i = 0; i < n; ++i) tmp[i] = x[i] + nu[i];
    z = ConstrainedInference(tree, tmp, /*fix_root=*/false);

    // w-update: project (x + eta) onto per-level simplexes.
    for (size_t i = 0; i < n; ++i) tmp[i] = x[i] + eta[i];
    w = ProjectLevelsSimplex(tree, tmp);

    // x-update: average of the three quadratic targets.
    for (size_t i = 0; i < n; ++i) {
      x[i] = ((y[i] + xt[i] - mu[i]) + (z[i] - nu[i]) + (w[i] - eta[i])) / 3.0;
    }

    // Dual updates.
    double r_primal = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double ry = x[i] - xt[i] - y[i];
      const double rz = x[i] - z[i];
      const double rw = x[i] - w[i];
      mu[i] += ry;
      nu[i] += rz;
      eta[i] += rw;
      r_primal = std::max({r_primal, std::fabs(rz), std::fabs(rw)});
    }

    result.iterations = iter;
    if (r_primal < options.tol) {
      result.converged = true;
      break;
    }
  }

  // Final cleanup: per-level simplex projection guarantees the output is a
  // valid (non-negative, normalized) tree; consistency holds to ADMM tol.
  result.node_values = ProjectLevelsSimplex(tree, x);
  const size_t leaf_off = tree.LevelOffset(tree.height());
  result.distribution.assign(result.node_values.begin() + leaf_off,
                             result.node_values.end());
  return result;
}

}  // namespace numdist
