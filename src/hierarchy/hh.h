// Hierarchical Histogram under LDP (paper §4.2; Kulkarni et al. [18]).
//
// Population division: each user is assigned one tree level 1..h uniformly
// at random, reports the ancestor of their value at that level through the
// variance-adaptive frequency oracle for that level's domain (GRR for small
// levels, OLH for large ones), and the aggregator assembles per-level
// frequency estimates into a flattened node vector (root pinned to 1, since
// LDP hides values, not participation).
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "fo/adaptive.h"
#include "hierarchy/tree.h"

namespace numdist {

/// How the privacy budget is allocated across tree levels (§4.2).
enum class HhBudgetStrategy {
  /// Each user reports a single uniformly-chosen level with the full budget.
  /// Better under LDP (the paper's choice): noise dominates sampling error.
  kDividePopulation,
  /// Every user reports every level with budget eps/h (sequential
  /// composition). Better in the centralized setting; implemented to
  /// demonstrate the §4.2 comparison under LDP.
  kDivideBudget,
};

/// \brief The HH collection protocol: per-level adaptive FO over disjoint
/// user groups (or over the whole population with a split budget).
class HhProtocol {
 public:
  /// Creates the protocol. Requires epsilon > 0, beta >= 2, d = beta^h.
  /// The paper's experiments use beta = 4 (the LDP-optimal fan-out is ~4-5).
  static Result<HhProtocol> Make(
      double epsilon, size_t d, size_t beta = 4,
      HhBudgetStrategy strategy = HhBudgetStrategy::kDividePopulation);

  /// Runs collection: assigns each user a uniform level, perturbs their
  /// ancestor, estimates each level's frequencies. Returns the flattened
  /// node vector (level 0 == 1 exactly; estimates may be negative).
  /// `leaf_values` are histogram bucket indices in {0..d-1}.
  std::vector<double> CollectNodeEstimates(
      const std::vector<uint32_t>& leaf_values, Rng& rng) const;

  const HierarchyTree& tree() const { return tree_; }
  double epsilon() const { return epsilon_; }
  HhBudgetStrategy strategy() const { return strategy_; }
  /// Budget spent per report: eps (divide-population) or eps/h (divide-budget).
  double per_report_epsilon() const;

 private:
  HhProtocol(double epsilon, HhBudgetStrategy strategy, HierarchyTree tree,
             std::vector<AdaptiveFo> level_fos);

  double epsilon_;
  HhBudgetStrategy strategy_;
  HierarchyTree tree_;
  std::vector<AdaptiveFo> level_fos_;  // index 0 -> tree level 1, etc.
};

}  // namespace numdist
