// Hierarchical Histogram under LDP (paper §4.2; Kulkarni et al. [18]).
//
// Population division: each user is assigned one tree level 1..h uniformly
// at random, reports the ancestor of their value at that level through the
// variance-adaptive frequency oracle for that level's domain (GRR for small
// levels, OLH for large ones), and the aggregator assembles per-level
// frequency estimates into a flattened node vector (root pinned to 1, since
// LDP hides values, not participation).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "fo/adaptive.h"
#include "fo/sketch.h"
#include "hierarchy/tree.h"

namespace numdist {

/// How the privacy budget is allocated across tree levels (§4.2).
enum class HhBudgetStrategy {
  /// Each user reports a single uniformly-chosen level with the full budget.
  /// Better under LDP (the paper's choice): noise dominates sampling error.
  kDividePopulation,
  /// Every user reports every level with budget eps/h (sequential
  /// composition). Better in the centralized setting; implemented to
  /// demonstrate the §4.2 comparison under LDP.
  kDivideBudget,
};

/// One HH wire report: which tree level the user was assigned, plus the
/// perturbed ancestor report for that level's frequency oracle.
struct HhReport {
  uint32_t level;  ///< 1..height
  FoReport report;
};

/// \brief The HH collection protocol: per-level adaptive FO over disjoint
/// user groups (or over the whole population with a split budget).
class HhProtocol {
 public:
  /// Creates the protocol. Requires epsilon > 0, beta >= 2, d = beta^h.
  /// The paper's experiments use beta = 4 (the LDP-optimal fan-out is ~4-5).
  static Result<HhProtocol> Make(
      double epsilon, size_t d, size_t beta = 4,
      HhBudgetStrategy strategy = HhBudgetStrategy::kDividePopulation);

  /// Runs collection: assigns each user a uniform level, perturbs their
  /// ancestor, estimates each level's frequencies. Returns the flattened
  /// node vector (level 0 == 1 exactly; estimates may be negative).
  /// `leaf_values` are histogram bucket indices in {0..d-1}.
  std::vector<double> CollectNodeEstimates(
      const std::vector<uint32_t>& leaf_values, Rng& rng) const;

  /// Client side, batched: encodes + perturbs every leaf value, appending
  /// the wire reports to `*out`. Divide-population emits one report per
  /// user at a uniformly drawn level; divide-budget emits one per level.
  void PerturbBatch(std::span<const uint32_t> leaf_values, Rng& rng,
                    std::vector<HhReport>* out) const;

  /// Server side: empty per-level aggregation state (index 0 -> level 1).
  std::vector<FoSketch> MakeSketches() const;

  /// Rejects reports from untrusted clients that don't fit this protocol:
  /// bad level, or a GRR category outside the level's domain.
  Status ValidateReport(const HhReport& report) const;

  /// Folds one wire report into the matching level sketch. The report must
  /// pass ValidateReport.
  Status Absorb(const HhReport& report, std::vector<FoSketch>* sketches) const;

  /// Per-level frequency estimates assembled into the flattened node vector
  /// (root pinned to 1). Identical to CollectNodeEstimates over the same
  /// reports in any order.
  std::vector<double> NodeEstimatesFromSketches(
      const std::vector<FoSketch>& sketches) const;

  const HierarchyTree& tree() const { return tree_; }
  double epsilon() const { return epsilon_; }
  HhBudgetStrategy strategy() const { return strategy_; }
  /// Budget spent per report: eps (divide-population) or eps/h (divide-budget).
  double per_report_epsilon() const;

 private:
  HhProtocol(double epsilon, HhBudgetStrategy strategy, HierarchyTree tree,
             std::vector<AdaptiveFo> level_fos);

  double epsilon_;
  HhBudgetStrategy strategy_;
  HierarchyTree tree_;
  std::vector<AdaptiveFo> level_fos_;  // index 0 -> tree level 1, etc.
};

}  // namespace numdist
