#include "hierarchy/constrained.h"

#include <cassert>
#include <cmath>

#include "common/matrix.h"

namespace numdist {

std::vector<double> ConstrainedInference(const HierarchyTree& tree,
                                         const std::vector<double>& node_values,
                                         bool fix_root, double root_value) {
  assert(node_values.size() == tree.NumNodes());
  const size_t beta = tree.beta();
  const size_t h = tree.height();
  std::vector<double> z = node_values;

  // Pass 1 (bottom-up): z_v = w * x~_v + (1 - w) * sum(children z), with w
  // the inverse-variance weight. Unit leaf variance; level variance V
  // satisfies V_level = beta * V_child / (1 + beta * V_child).
  double v_child = 1.0;  // variance of z at the level below the current one
  for (size_t level = h; level-- > 0;) {
    const double bv = static_cast<double>(beta) * v_child;
    const double w = bv / (1.0 + bv);
    const size_t off = tree.LevelOffset(level);
    const size_t child_off = tree.LevelOffset(level + 1);
    for (size_t i = 0; i < tree.LevelSize(level); ++i) {
      double child_sum = 0.0;
      for (size_t c = 0; c < beta; ++c) {
        child_sum += z[child_off + i * beta + c];
      }
      z[off + i] = w * z[off + i] + (1.0 - w) * child_sum;
    }
    v_child = w;  // combined variance at this level equals the weight
  }

  // Pass 2 (top-down): mean consistency.
  std::vector<double> out = z;
  if (fix_root) out[0] = root_value;
  for (size_t level = 0; level < h; ++level) {
    const size_t off = tree.LevelOffset(level);
    const size_t child_off = tree.LevelOffset(level + 1);
    for (size_t i = 0; i < tree.LevelSize(level); ++i) {
      double child_sum = 0.0;
      for (size_t c = 0; c < beta; ++c) {
        child_sum += z[child_off + i * beta + c];
      }
      const double adjust =
          (out[off + i] - child_sum) / static_cast<double>(beta);
      for (size_t c = 0; c < beta; ++c) {
        const size_t ci = child_off + i * beta + c;
        out[ci] = z[ci] + adjust;
      }
    }
  }
  return out;
}

std::vector<double> ConstrainedInferenceBruteForce(
    const HierarchyTree& tree, const std::vector<double>& node_values,
    bool fix_root, double root_value) {
  assert(node_values.size() == tree.NumNodes());
  const size_t n = tree.NumNodes();
  const size_t beta = tree.beta();
  // Constraints: one per internal node (parent - sum children = 0), plus
  // optionally root = root_value.
  size_t num_internal = 0;
  for (size_t level = 0; level < tree.height(); ++level) {
    num_internal += tree.LevelSize(level);
  }
  const size_t m = num_internal + (fix_root ? 1 : 0);

  // KKT system for min ||x - v||^2 s.t. A x = b:
  //   [ I  A^T ] [x]   [v]
  //   [ A   0  ] [l] = [b]
  const size_t dim = n + m;
  Matrix kkt(dim, dim, 0.0);
  std::vector<double> rhs(dim, 0.0);
  for (size_t i = 0; i < n; ++i) {
    kkt(i, i) = 1.0;
    rhs[i] = node_values[i];
  }
  size_t row = 0;
  for (size_t level = 0; level < tree.height(); ++level) {
    for (size_t i = 0; i < tree.LevelSize(level); ++i) {
      const size_t parent = tree.FlatIndex(level, i);
      kkt(n + row, parent) = 1.0;
      kkt(parent, n + row) = 1.0;
      for (size_t c = 0; c < beta; ++c) {
        const size_t child = tree.FlatIndex(level + 1, i * beta + c);
        kkt(n + row, child) = -1.0;
        kkt(child, n + row) = -1.0;
      }
      rhs[n + row] = 0.0;
      ++row;
    }
  }
  if (fix_root) {
    kkt(n + row, 0) = 1.0;
    kkt(0, n + row) = 1.0;
    rhs[n + row] = root_value;
  }
  const bool solved = Matrix::SolveInPlace(kkt, rhs);
  assert(solved);
  (void)solved;
  return std::vector<double>(rhs.begin(), rhs.begin() + n);
}

double ConsistencyResidual(const HierarchyTree& tree,
                           const std::vector<double>& node_values) {
  assert(node_values.size() == tree.NumNodes());
  double worst = 0.0;
  const size_t beta = tree.beta();
  for (size_t level = 0; level < tree.height(); ++level) {
    const size_t off = tree.LevelOffset(level);
    const size_t child_off = tree.LevelOffset(level + 1);
    for (size_t i = 0; i < tree.LevelSize(level); ++i) {
      double child_sum = 0.0;
      for (size_t c = 0; c < beta; ++c) {
        child_sum += node_values[child_off + i * beta + c];
      }
      worst = std::max(worst, std::fabs(node_values[off + i] - child_sum));
    }
  }
  return worst;
}

}  // namespace numdist
