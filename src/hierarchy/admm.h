// HH-ADMM post-processing (paper §4.3, Algorithm 2, Appendix B): given the
// noisy hierarchy estimates x~, find the closest vector satisfying
//   (i)  hierarchy consistency (parent == sum of children),
//   (ii) non-negativity,
//   (iii) per-level normalization (each level sums to 1; the total user
//        count is public under LDP),
// by ADMM with scaled dual variables and penalty rho = 1:
//   y <- (x^ - x~ + mu) / 2
//   z <- Pi_C(x^ + nu)          (constrained inference, constrained.h)
//   w <- Pi_N+(x^ + eta)        (per-level Norm-Sub, norm_sub.h)
//   x^ <- ((y + x~ - mu) + (z - nu) + (w - eta)) / 3
//   mu += x^ - x~ - y;  nu += x^ - z;  eta += x^ - w.
#pragma once

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "hierarchy/tree.h"

namespace numdist {

/// ADMM iteration controls.
struct AdmmOptions {
  /// Iteration cap.
  size_t max_iterations = 300;
  /// Stop when all primal residuals fall below this (infinity norm).
  double tol = 1e-7;
};

/// Outcome of an HH-ADMM run.
struct AdmmResult {
  /// Post-processed node vector: per-level non-negative & normalized
  /// (final Pi_N+ applied), consistency satisfied up to the ADMM tolerance.
  std::vector<double> node_values;
  /// The leaf level as a valid probability distribution (size tree.d()).
  std::vector<double> distribution;
  size_t iterations = 0;
  bool converged = false;
};

/// Runs HH-ADMM on the flattened noisy estimates (size tree.NumNodes()).
Result<AdmmResult> HhAdmm(const HierarchyTree& tree,
                          const std::vector<double>& noisy_nodes,
                          const AdmmOptions& options = AdmmOptions());

}  // namespace numdist
