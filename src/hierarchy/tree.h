// Complete beta-ary hierarchy over a discrete ordered domain of d = beta^h
// leaves — the substrate for HH, HaarHRR and HH-ADMM (paper §4.2, §4.3).
//
// Levels are numbered 0 (root) .. h (leaves); node (level, idx) covers the
// leaf span [idx * beta^(h-level), (idx+1) * beta^(h-level)). Node estimates
// live in a single flattened vector with levels concatenated in order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"

namespace numdist {

/// Identifies one node: (level, index within level).
struct TreeNode {
  size_t level;
  size_t index;
  bool operator==(const TreeNode& other) const {
    return level == other.level && index == other.index;
  }
};

/// \brief Shape and index arithmetic of a complete beta-ary tree.
class HierarchyTree {
 public:
  /// Creates a tree. Requires beta >= 2 and d an exact power of beta with
  /// at least one internal level (d >= beta).
  static Result<HierarchyTree> Make(size_t d, size_t beta);

  /// Number of leaves (the histogram granularity).
  size_t d() const { return d_; }
  /// Branching factor.
  size_t beta() const { return beta_; }
  /// Tree height h (leaves live at level h; d == beta^h).
  size_t height() const { return height_; }
  /// Number of levels (h + 1, including the root level).
  size_t num_levels() const { return height_ + 1; }
  /// Number of nodes at `level` (beta^level).
  size_t LevelSize(size_t level) const { return level_sizes_[level]; }
  /// Offset of `level`'s first node in the flattened vector.
  size_t LevelOffset(size_t level) const { return level_offsets_[level]; }
  /// Total node count across all levels.
  size_t NumNodes() const { return num_nodes_; }
  /// Flattened position of node (level, idx).
  size_t FlatIndex(size_t level, size_t idx) const {
    return level_offsets_[level] + idx;
  }
  /// Index (within `level`) of the ancestor of `leaf` at `level`.
  size_t AncestorAt(size_t leaf, size_t level) const;
  /// Leaf span [lo, hi) covered by node (level, idx).
  std::pair<size_t, size_t> LeafSpan(size_t level, size_t idx) const;

  /// Canonical decomposition: a minimal set of nodes whose leaf spans
  /// partition [leaf_lo, leaf_hi). At most beta * h + ... nodes; O(beta h).
  std::vector<TreeNode> DecomposeRange(size_t leaf_lo, size_t leaf_hi) const;

 private:
  HierarchyTree(size_t d, size_t beta, size_t height);

  void DecomposeInto(size_t level, size_t idx, size_t lo, size_t hi,
                     std::vector<TreeNode>* out) const;

  size_t d_;
  size_t beta_;
  size_t height_;
  size_t num_nodes_;
  std::vector<size_t> level_sizes_;
  std::vector<size_t> level_offsets_;
};

/// Sum of node estimates over the canonical decomposition of
/// [leaf_lo, leaf_hi) — the hierarchy answer to a range query.
/// `nodes` is the flattened estimate vector.
double TreeRangeQuery(const HierarchyTree& tree,
                      const std::vector<double>& nodes, size_t leaf_lo,
                      size_t leaf_hi);

/// Continuous-endpoint range query over [lo, hi] in [0, 1]: canonical-node
/// sum over fully covered leaves plus linear interpolation within the two
/// partial edge leaves (mass assumed uniform within a leaf).
double TreeRangeQueryContinuous(const HierarchyTree& tree,
                                const std::vector<double>& nodes, double lo,
                                double hi);

}  // namespace numdist
