// HaarHRR: range-query estimation via the Discrete Haar Transform with
// Hadamard Randomized Response as the frequency oracle (paper §4.2;
// Kulkarni et al. [18]).
//
// Binary tree over d = 2^h leaves. Each user's value induces, at every
// internal level, exactly one nonzero Haar coefficient contribution: +-1 at
// the ancestor node (sign = which half of the node's span the value lies
// in). Users are split uniformly over the h internal levels and report
// their (node, sign) pair through HRR. The aggregator estimates each node's
// signed difference delta_a = F_left - F_right and synthesizes node
// frequencies top-down:
//   F_root = 1,  F_left = (F_a + delta_a)/2,  F_right = (F_a - delta_a)/2,
// which is exactly the inverse Haar transform of the estimated coefficients.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "fo/hrr.h"
#include "hierarchy/tree.h"

namespace numdist {

/// \brief The HaarHRR collection + reconstruction protocol.
class HaarHrrProtocol {
 public:
  /// Creates the protocol. Requires epsilon > 0 and d a power of two >= 2.
  static Result<HaarHrrProtocol> Make(double epsilon, size_t d);

  /// Runs collection and Haar synthesis. Returns the flattened node
  /// frequency vector over the binary tree (levels 0..h); entries can be
  /// negative — HaarHRR is used for range queries only, like HH.
  std::vector<double> CollectNodeEstimates(
      const std::vector<uint32_t>& leaf_values, Rng& rng) const;

  const HierarchyTree& tree() const { return tree_; }
  double epsilon() const { return epsilon_; }

 private:
  HaarHrrProtocol(double epsilon, HierarchyTree tree, std::vector<Hrr> hrrs);

  double epsilon_;
  HierarchyTree tree_;
  std::vector<Hrr> level_hrrs_;  // index t: internal level t, domain 2^(t+1)
};

}  // namespace numdist
