// HaarHRR: range-query estimation via the Discrete Haar Transform with
// Hadamard Randomized Response as the frequency oracle (paper §4.2;
// Kulkarni et al. [18]).
//
// Binary tree over d = 2^h leaves. Each user's value induces, at every
// internal level, exactly one nonzero Haar coefficient contribution: +-1 at
// the ancestor node (sign = which half of the node's span the value lies
// in). Users are split uniformly over the h internal levels and report
// their (node, sign) pair through HRR. The aggregator estimates each node's
// signed difference delta_a = F_left - F_right and synthesizes node
// frequencies top-down:
//   F_root = 1,  F_left = (F_a + delta_a)/2,  F_right = (F_a - delta_a)/2,
// which is exactly the inverse Haar transform of the estimated coefficients.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "fo/hrr.h"
#include "fo/sketch.h"
#include "hierarchy/tree.h"

namespace numdist {

/// One HaarHRR wire report: the internal tree level the user was assigned
/// and the HRR report for their (ancestor node, half) item at that level.
struct HaarReport {
  uint32_t level;  ///< internal level t in 0..height-1
  HrrReport report;
};

/// \brief The HaarHRR collection + reconstruction protocol.
class HaarHrrProtocol {
 public:
  /// Creates the protocol. Requires epsilon > 0 and d a power of two >= 2.
  static Result<HaarHrrProtocol> Make(double epsilon, size_t d);

  /// Runs collection and Haar synthesis. Returns the flattened node
  /// frequency vector over the binary tree (levels 0..h); entries can be
  /// negative — HaarHRR is used for range queries only, like HH.
  std::vector<double> CollectNodeEstimates(
      const std::vector<uint32_t>& leaf_values, Rng& rng) const;

  /// Client side, batched: assigns each user a uniform internal level and
  /// appends their perturbed (node, sign) report to `*out`.
  void PerturbBatch(std::span<const uint32_t> leaf_values, Rng& rng,
                    std::vector<HaarReport>* out) const;

  /// Server side: empty per-internal-level aggregation state.
  std::vector<FoSketch> MakeSketches() const;

  /// Rejects reports from untrusted clients that don't fit this protocol:
  /// bad level, a non-±1 bit, or a column outside the level's Hadamard
  /// order.
  Status ValidateReport(const HaarReport& report) const;

  /// Folds one wire report into the matching level sketch. The report must
  /// pass ValidateReport.
  Status Absorb(const HaarReport& report,
                std::vector<FoSketch>* sketches) const;

  /// Per-level signed differences + top-down Haar synthesis. Identical to
  /// CollectNodeEstimates over the same reports in any order.
  std::vector<double> NodeEstimatesFromSketches(
      const std::vector<FoSketch>& sketches) const;

  const HierarchyTree& tree() const { return tree_; }
  double epsilon() const { return epsilon_; }

 private:
  HaarHrrProtocol(double epsilon, HierarchyTree tree, std::vector<Hrr> hrrs);

  double epsilon_;
  HierarchyTree tree_;
  std::vector<Hrr> level_hrrs_;  // index t: internal level t, domain 2^(t+1)
};

}  // namespace numdist
