// Level-triggered epoll reactor: the single readiness multiplexer behind
// the collector server and the multiplexed client. One epoll instance,
// opaque per-fd tags, and a signal-safe Wake() (an eventfd registered
// alongside the sockets) so a SIGTERM handler or another thread can
// interrupt a blocked Wait without races.
//
// Level-triggered on purpose: a handler that reads PART of a socket's
// backlog (the server caps per-round reads for fairness and pauses
// sessions for backpressure) is re-notified on the next Wait instead of
// needing edge-triggered drain loops. Un-registering a paused fd's
// interest (Mod with events=0) is exactly how backpressure pauses reads.
#pragma once

#include <cstdint>
#include <span>

#include "common/result.h"
#include "net/socket.h"

namespace numdist::net {

/// \brief epoll wrapper with an integrated wakeup channel.
class Reactor {
 public:
  /// One readiness notification. `tag` is the pointer registered with
  /// Add(); a null tag is the wakeup channel (Wake was called).
  struct Event {
    void* tag = nullptr;
    uint32_t events = 0;  ///< EPOLLIN / EPOLLOUT / EPOLLHUP / EPOLLERR bits.
  };

  static Result<Reactor> Make();

  Reactor(Reactor&&) = default;
  Reactor& operator=(Reactor&&) = default;

  /// Registers `fd` for `events` (EPOLLIN/EPOLLOUT bits), reported with
  /// `tag`. A tag of nullptr is reserved for the wakeup channel.
  Status Add(int fd, uint32_t events, void* tag);
  /// Changes a registered fd's interest set (0 = keep registered, report
  /// nothing — a paused session).
  Status Mod(int fd, uint32_t events, void* tag);
  /// Unregisters a fd.
  Status Del(int fd);

  /// Blocks up to `timeout_ms` (-1 = forever) and fills `out` with ready
  /// events; returns how many. EINTR retries internally; a Wake() call
  /// shows up as one event with a null tag (its eventfd is drained before
  /// returning, so wakes never accumulate).
  Result<size_t> Wait(std::span<Event> out, int timeout_ms);

  /// Interrupts a concurrent (or the next) Wait. Async-signal-safe: one
  /// eventfd write, no locks — callable straight from a SIGTERM handler.
  void Wake();

 private:
  Reactor(Fd epoll_fd, Fd wake_fd)
      : epoll_fd_(std::move(epoll_fd)), wake_fd_(std::move(wake_fd)) {}

  Fd epoll_fd_;
  Fd wake_fd_;
};

}  // namespace numdist::net
