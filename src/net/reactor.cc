#include "net/reactor.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace numdist::net {

namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string("net: ") + what + " failed (" +
                          std::strerror(errno) + ")");
}

}  // namespace

Result<Reactor> Reactor::Make() {
  Fd epoll_fd(epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_fd.valid()) return Errno("epoll_create1");
  Fd wake_fd(eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
  if (!wake_fd.valid()) return Errno("eventfd");
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.ptr = nullptr;  // the reserved wakeup tag
  if (epoll_ctl(epoll_fd.get(), EPOLL_CTL_ADD, wake_fd.get(), &ev) < 0) {
    return Errno("epoll_ctl(wakeup)");
  }
  return Reactor(std::move(epoll_fd), std::move(wake_fd));
}

Status Reactor::Add(int fd, uint32_t events, void* tag) {
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.ptr = tag;
  if (epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) < 0) {
    return Errno("epoll_ctl(add)");
  }
  return Status::OK();
}

Status Reactor::Mod(int fd, uint32_t events, void* tag) {
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.ptr = tag;
  if (epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &ev) < 0) {
    return Errno("epoll_ctl(mod)");
  }
  return Status::OK();
}

Status Reactor::Del(int fd) {
  if (epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr) < 0) {
    return Errno("epoll_ctl(del)");
  }
  return Status::OK();
}

Result<size_t> Reactor::Wait(std::span<Event> out, int timeout_ms) {
  if (out.empty()) {
    return Status::InvalidArgument("net: Wait needs a non-empty event span");
  }
  // epoll_event and Reactor::Event differ in layout; a small fixed stack
  // batch keeps the translation allocation-free.
  epoll_event raw[256];
  const int capacity =
      static_cast<int>(std::min(out.size(), sizeof(raw) / sizeof(raw[0])));
  int n;
  do {
    n = epoll_wait(epoll_fd_.get(), raw, capacity, timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return Errno("epoll_wait");
  size_t filled = 0;
  for (int i = 0; i < n; ++i) {
    if (raw[i].data.ptr == nullptr) {
      uint64_t drained;
      // Collapse any number of Wake() calls into one notification.
      while (read(wake_fd_.get(), &drained, sizeof(drained)) > 0) {
      }
    }
    out[filled].tag = raw[i].data.ptr;
    out[filled].events = raw[i].events;
    ++filled;
  }
  return filled;
}

void Reactor::Wake() {
  const uint64_t one = 1;
  // Async-signal-safe by construction: a single write(2). A full eventfd
  // counter (EAGAIN) already guarantees a pending wake; dropping the
  // write is correct.
  [[maybe_unused]] const ssize_t rc =
      write(wake_fd_.get(), &one, sizeof(one));
}

}  // namespace numdist::net
