#include "net/server.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>
#include <utility>

#include "common/executor.h"

namespace numdist::net {

namespace {

using Clock = std::chrono::steady_clock;

Status Errno(const char* what) {
  return Status::Internal(std::string("net: ") + what + " failed (" +
                          std::strerror(errno) + ")");
}

// Common first base of everything registered with the reactor, so an
// event's void* tag can be classified before downcasting.
struct IoHandle {
  explicit IoHandle(bool listener) : is_listener(listener) {}
  const bool is_listener;
};

}  // namespace

struct CollectorServer::Listener : IoHandle {
  Listener() : IoHandle(true) {}
  Fd fd;
  Endpoint endpoint;
};

struct CollectorServer::Connection : IoHandle {
  explicit Connection(size_t max_frame_bytes)
      : IoHandle(false), decoder(max_frame_bytes) {}
  Fd fd;
  serve::FrameDecoder decoder;
  /// Bytes of decoded frames queued but not yet absorbed (backpressure).
  size_t inflight_bytes = 0;
  bool paused = false;
  bool closed = false;
  /// Queued outbound bytes (ack frames) not yet accepted by the kernel.
  std::string out_buf;
  size_t out_off = 0;
  /// EPOLLOUT armed: the last flush hit a full socket buffer.
  bool want_write = false;
};

struct CollectorServer::PendingFrame {
  Connection* conn;
  std::string frame;
  Clock::time_point decoded_at;
};

Result<std::unique_ptr<CollectorServer>> CollectorServer::Make(
    const wire::MethodSpec& spec, ServerOptions options) {
  NUMDIST_ASSIGN_OR_RETURN(serve::CollectorSession main,
                           serve::CollectorSession::Make(spec));
  NUMDIST_ASSIGN_OR_RETURN(Reactor reactor, Reactor::Make());
  std::unique_ptr<CollectorServer> server(
      new CollectorServer(std::move(main), std::move(reactor), options));
  if (options.estimate_every_frames > 0 || options.estimate_every_ms > 0) {
    if (spec.method != wire::MethodId::kSwEms &&
        spec.method != wire::MethodId::kSwEm) {
      return Status::InvalidArgument(
          "net: live estimation supports SW methods only");
    }
    // Same spec -> estimator mapping the SW protocol uses, so the
    // estimator's output buckets match the accumulator's count layout.
    SwEstimatorOptions est_options;
    est_options.epsilon = spec.epsilon;
    est_options.d = spec.d;
    est_options.post = spec.method == wire::MethodId::kSwEms
                           ? SwEstimatorOptions::Post::kEms
                           : SwEstimatorOptions::Post::kEm;
    NUMDIST_ASSIGN_OR_RETURN(SwEstimator est, SwEstimator::Make(est_options));
    server->live_estimator_ =
        std::make_shared<const SwEstimator>(std::move(est));
    IncrementalOptions inc_options;
    inc_options.mode = options.estimate_half_life > 0.0
                           ? IncrementalOptions::Mode::kMiniBatch
                           : IncrementalOptions::Mode::kWarm;
    inc_options.half_life = options.estimate_half_life;
    inc_options.max_iterations_per_update = options.estimate_max_iterations;
    NUMDIST_ASSIGN_OR_RETURN(
        IncrementalReconstructor inc,
        IncrementalReconstructor::Make(server->live_estimator_, inc_options));
    server->inc_ =
        std::make_unique<IncrementalReconstructor>(std::move(inc));
  }
  // One sub-aggregate per executor slot, created up front so absorption
  // can never fail on allocation mid-serve. ParallelFor's slot ids are
  // always below slots().
  const size_t slots = Executor::Shared().slots();
  server->sub_sessions_.reserve(slots);
  for (size_t s = 0; s < slots; ++s) {
    NUMDIST_ASSIGN_OR_RETURN(serve::CollectorSession sub,
                             serve::CollectorSession::Make(spec));
    // Every slot shares the main session's ledger: tenant budgets cap
    // the process-global spend no matter which slot absorbs a frame.
    sub.set_ledger(server->main_.ledger());
    server->sub_sessions_.push_back(std::move(sub));
  }
  // Every slot also shares the main session's dedup window, so a re-sent
  // sequenced frame is recognized no matter which slot claims it.
  for (serve::CollectorSession& sub : server->sub_sessions_) {
    sub.set_sequence_tracker(server->main_.sequence_tracker());
  }
  if (!options.wal_path.empty()) {
    // Crash recovery happens here, before the first listener exists:
    // the log's clean prefix replays into the main session (sub-sessions
    // start empty either way), then the writer truncates any torn tail
    // and appends from the recovered offset.
    serve::CollectorSession* main = &server->main_;
    serve::WalConsumer consumer;
    consumer.on_frame = [main](std::string_view frame) {
      return main->HandleFrame(frame);
    };
    consumer.on_checkpoint = [main](const std::vector<std::string>& sketches) {
      return main->ResetToSketches(sketches);
    };
    consumer.on_seq_checkpoint =
        [main](const std::vector<serve::WalSeqEntry>& entries) {
          main->sequence_tracker()->Restore(entries);
          return Status::OK();
        };
    NUMDIST_ASSIGN_OR_RETURN(
        serve::WalLog log,
        serve::WalLog::Open(options.wal_path, options.wal, consumer));
    server->wal_ = std::make_unique<serve::WalLog>(std::move(log));
    server->wal_recovery_ = server->wal_->recovery();
  }
  if (!options.replicate_to.empty()) {
    NUMDIST_ASSIGN_OR_RETURN(const Endpoint replica,
                             ParseEndpoint(options.replicate_to));
    NUMDIST_ASSIGN_OR_RETURN(server->replica_fd_, Dial(replica));
    if (server->wal_recovery_.frames > 0 ||
        server->wal_recovery_.checkpoints > 0) {
      // State recovered from the WAL predates this replication link; sync
      // it as sketch frames before the first live frame. (The dedup
      // window travels only through live sequenced frames — a standby
      // attached after a recovery dedups from the first synced frame on.)
      NUMDIST_ASSIGN_OR_RETURN(const std::vector<std::string> sketches,
                               server->main_.EncodeSketches());
      for (const std::string& sketch : sketches) {
        NUMDIST_RETURN_NOT_OK(server->ForwardToReplica(sketch));
      }
    }
  }
  return server;
}

void CollectorServer::SetTenantBudget(uint32_t tenant,
                                      serve::TenantBudget budget) {
  main_.SetTenantBudget(tenant, budget);
}

CollectorServer::~CollectorServer() = default;

CollectorServer::CollectorServer(serve::CollectorSession main,
                                 Reactor reactor, ServerOptions options)
    : main_(std::move(main)),
      reactor_(std::move(reactor)),
      options_(options) {}

Result<Endpoint> CollectorServer::AddListener(const Endpoint& endpoint) {
  auto listener = std::make_unique<Listener>();
  NUMDIST_ASSIGN_OR_RETURN(listener->fd, ListenOn(endpoint));
  NUMDIST_ASSIGN_OR_RETURN(listener->endpoint,
                           LocalEndpoint(listener->fd.get(), endpoint.kind));
  NUMDIST_RETURN_NOT_OK(reactor_.Add(listener->fd.get(), EPOLLIN,
                                     static_cast<IoHandle*>(listener.get())));
  const Endpoint bound = listener->endpoint;
  listeners_.push_back(std::move(listener));
  return bound;
}

void CollectorServer::RequestDrain() {
  drain_requested_.store(true, std::memory_order_release);
  reactor_.Wake();
}

void CollectorServer::EnterDrain(bool cut_connections) {
  if (draining_) return;
  draining_ = true;
  for (auto& listener : listeners_) {
    if (!listener->fd.valid()) continue;
    // Clients that completed their TCP handshake before the drain are in
    // the accept backlog and must still be served to EOF — a SIGTERM
    // racing a fresh connection would otherwise silently drop its frames.
    if (!cut_connections) (void)HandleAccept(listener.get());
    (void)reactor_.Del(listener->fd.get());
    listener->fd.reset();
    if (listener->endpoint.kind == Endpoint::Kind::kUnix) {
      ::unlink(listener->endpoint.path.c_str());
    }
  }
  if (cut_connections) {
    // The scripted stop (`expect_frames` reached): everything the server
    // was waiting for has arrived; remaining connections are cut and any
    // partially received frame is dropped.
    for (auto& conn : connections_) CloseConnection(conn.get());
  }
}

Status CollectorServer::HandleAccept(Listener* listener) {
  for (;;) {
    const int cfd = accept4(listener->fd.get(), nullptr, nullptr,
                            SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (cfd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::OK();
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return Errno("accept4");
    }
    auto conn = std::make_unique<Connection>(options_.max_frame_bytes);
    conn->fd.reset(cfd);
    const Status added =
        reactor_.Add(cfd, EPOLLIN, static_cast<IoHandle*>(conn.get()));
    if (!added.ok()) return added;
    ++stats_.connections_accepted;
    connections_.push_back(std::move(conn));
  }
}

void CollectorServer::HandleReadable(Connection* conn) {
  if (conn->closed || conn->paused) return;
  char buf[64 * 1024];
  size_t budget = options_.read_chunk;
  while (budget > 0) {
    const size_t want = std::min(sizeof(buf), budget);
    const ssize_t got = read(conn->fd.get(), buf, want);
    if (got < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      FailConnection(conn, Errno("read"));
      return;
    }
    if (got == 0) {
      // Peer finished. A clean frame boundary is a completed stream; a
      // mid-frame cut is the typed error, and costs only this connection.
      const Status end = conn->decoder.AtEnd();
      if (end.ok()) {
        CloseConnection(conn);
      } else {
        FailConnection(conn, end);
      }
      return;
    }
    budget -= static_cast<size_t>(got);
    stats_.bytes_received += static_cast<uint64_t>(got);
    const Status fed =
        conn->decoder.Feed(std::string_view(buf, static_cast<size_t>(got)));
    if (!fed.ok()) {
      FailConnection(conn, fed);
      return;
    }
    std::string frame;
    while (conn->decoder.Next(&frame)) {
      conn->inflight_bytes += frame.size();
      pending_bytes_ += frame.size();
      pending_.push_back({conn, std::move(frame),
                          options_.record_latency ? Clock::now()
                                                  : Clock::time_point()});
    }
    if (got < static_cast<ssize_t>(want)) break;  // socket drained
  }
  if (!conn->paused && conn->inflight_bytes > options_.pause_bytes) {
    // Backpressure: drop read interest (level-triggered, so nothing is
    // lost) until the absorb stage catches up; the kernel buffer then
    // flow-controls the sender.
    conn->paused = true;
    ++stats_.pauses;
    UpdateInterest(conn);
  }
}

void CollectorServer::UpdateInterest(Connection* conn) {
  if (conn->closed) return;
  const uint32_t events = (conn->paused ? 0u : static_cast<uint32_t>(EPOLLIN)) |
                          (conn->want_write ? static_cast<uint32_t>(EPOLLOUT)
                                            : 0u);
  if (!reactor_.Mod(conn->fd.get(), events, static_cast<IoHandle*>(conn))
           .ok()) {
    // Un-pausing a dead fd etc.; surfaced by the next read/write instead.
    conn->paused = false;
  }
}

void CollectorServer::FlushConn(Connection* conn) {
  if (conn->closed) return;
  const bool wanted_write = conn->want_write;
  while (conn->out_off < conn->out_buf.size()) {
    const ssize_t wrote =
        send(conn->fd.get(), conn->out_buf.data() + conn->out_off,
             conn->out_buf.size() - conn->out_off, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!conn->want_write) {
          conn->want_write = true;
          UpdateInterest(conn);
        }
        return;
      }
      // A peer that vanished before reading its acks: the frames are
      // absorbed and durable; only the notification is lost (the client's
      // retry path handles it). Not a frame error — close quietly.
      CloseConnection(conn);
      return;
    }
    conn->out_off += static_cast<size_t>(wrote);
  }
  conn->out_buf.clear();
  conn->out_off = 0;
  if (wanted_write) {
    conn->want_write = false;
    UpdateInterest(conn);
  }
}

void CollectorServer::QueueAck(Connection* conn, const wire::FrameSeq& seq) {
  if (conn->closed) return;
  std::string ack;
  if (!wire::EncodeAckFrame(seq, &ack).ok()) return;  // seq 0 never queues
  serve::AppendFramePrefix(ack.size(), &conn->out_buf);
  conn->out_buf.append(ack);
  ++stats_.acks_queued;
}

Status CollectorServer::ForwardToReplica(std::string_view frame) {
  // The standby acks the sequenced frames we forward (it cannot tell a
  // primary from a client). Drain and discard before writing so its send
  // buffer never fills up and deadlocks both collectors.
  char scratch[4096];
  for (;;) {
    const ssize_t got = recv(replica_fd_.get(), scratch, sizeof(scratch),
                             MSG_DONTWAIT);
    if (got > 0) continue;
    if (got < 0 && errno == EINTR) continue;
    if (got == 0) {
      return Status::Internal(
          "net: standby closed the replication stream mid-serve");
    }
    break;  // EAGAIN: nothing buffered
  }
  std::string framed;
  framed.reserve(sizeof(uint32_t) + frame.size());
  serve::AppendFramePrefix(frame.size(), &framed);
  framed.append(frame);
  NUMDIST_RETURN_NOT_OK(WriteAll(replica_fd_.get(), framed));
  ++stats_.frames_replicated;
  return Status::OK();
}

void CollectorServer::AbsorbPending() {
  if (pending_.empty()) return;
  const size_t n = pending_.size();
  std::vector<Status> statuses(n);
  std::vector<serve::FrameOutcome> outcomes(n);
  Executor::Shared().ParallelFor(
      n, options_.max_parallelism, [&](size_t task, size_t slot) {
        statuses[task] = sub_sessions_[slot].HandleFrame(pending_[task].frame,
                                                         &outcomes[task]);
      });
  const Clock::time_point done = Clock::now();
  for (size_t i = 0; i < n; ++i) {
    PendingFrame& pf = pending_[i];
    pf.conn->inflight_bytes -= pf.frame.size();
    if (statuses[i].ok()) {
      if (outcomes[i].duplicate) {
        ++stats_.duplicates;
      } else {
        ++stats_.frames_absorbed;
      }
      if (options_.record_latency && !outcomes[i].duplicate) {
        stats_.latency_ns.push_back(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                done - pf.decoded_at)
                .count()));
      }
    } else {
      FailConnection(pf.conn, statuses[i]);
    }
    if (pf.conn->paused && !pf.conn->closed &&
        pf.conn->inflight_bytes <= options_.pause_bytes / 2) {
      pf.conn->paused = false;
      UpdateInterest(pf.conn);
    }
  }
  // Durability gate for the acks below: an ack a client ever sees refers
  // to a frame that is both locally durable (when a WAL is attached) and
  // on the standby (when replicating). A mid-batch failure truncates the
  // durable prefix at the failing frame — everything from there on is
  // neither forwarded nor acked, so the client retransmits it after the
  // restarted collector replays a log that does not contain it. Acking
  // past the failure would retire frames recovery cannot reproduce.
  size_t durable = n;
  if (wal_ != nullptr) {
    if (!wal_status_.ok()) {
      durable = 0;
    } else {
      // Accepted frames hit the log in batch (= absorption) order, which
      // is the order recovery replays them in. Absorption itself is
      // order-independent (exact commutative merges), so the replayed
      // aggregate is byte-identical regardless of batching. Duplicates
      // never reach the log — replay would double-claim their ids.
      for (size_t i = 0; i < n; ++i) {
        if (!statuses[i].ok() || outcomes[i].duplicate) continue;
        const Status appended = wal_->AppendFrame(pending_[i].frame);
        if (!appended.ok()) {
          wal_status_ = appended;
          durable = i;
          break;
        }
        ++wal_frames_since_checkpoint_;
      }
    }
  }
  if (replica_fd_.valid()) {
    if (!replica_status_.ok()) {
      durable = 0;
    } else {
      // Replication covers only the locally durable prefix: a frame the
      // WAL rejected must not reach the standby either, or a failover
      // would serve state the acknowledged stream never contained.
      for (size_t i = 0; i < durable; ++i) {
        if (!statuses[i].ok() || outcomes[i].duplicate) continue;
        const Status forwarded = ForwardToReplica(pending_[i].frame);
        if (!forwarded.ok()) {
          replica_status_ = forwarded;
          durable = i;
          break;
        }
      }
    }
  }
  if (options_.send_acks) {
    for (size_t i = 0; i < durable; ++i) {
      if (!statuses[i].ok() || !outcomes[i].has_seq) continue;
      QueueAck(pending_[i].conn, outcomes[i].seq);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    Connection* conn = pending_[i].conn;
    if (!conn->out_buf.empty()) FlushConn(conn);
  }
  pending_.clear();
  pending_bytes_ = 0;
}

Status CollectorServer::MaybeCheckpointWal() {
  if (wal_ == nullptr || options_.wal.checkpoint_every_frames == 0 ||
      wal_frames_since_checkpoint_ < options_.wal.checkpoint_every_frames) {
    return Status::OK();
  }
  // Checkpoint = the merged live state (main + every slot), gathered
  // into a scratch session so the serving accumulators stay untouched.
  // Merges are exact integers, so the checkpointed state is independent
  // of slot assignment and merge order.
  NUMDIST_ASSIGN_OR_RETURN(serve::CollectorSession scratch,
                           serve::CollectorSession::Make(spec()));
  NUMDIST_RETURN_NOT_OK(scratch.AbsorbSession(main_));
  for (const serve::CollectorSession& sub : sub_sessions_) {
    NUMDIST_RETURN_NOT_OK(scratch.AbsorbSession(sub));
  }
  NUMDIST_ASSIGN_OR_RETURN(const std::vector<std::string> sketches,
                           scratch.EncodeSketches());
  // The dedup window rides along in the checkpoint: after a crash the
  // recovered collector still refuses the retransmits it already acked.
  NUMDIST_RETURN_NOT_OK(
      wal_->Compact(sketches, main_.sequence_tracker()->Export()));
  wal_frames_since_checkpoint_ = 0;
  return Status::OK();
}

void CollectorServer::FailConnection(Connection* conn, const Status& error) {
  ++stats_.connection_errors;
  if (stats_.first_error.ok()) stats_.first_error = error;
  CloseConnection(conn);
}

void CollectorServer::CloseConnection(Connection* conn) {
  if (conn->closed) return;
  (void)reactor_.Del(conn->fd.get());
  conn->fd.reset();
  conn->closed = true;
  conn->paused = false;
  conn->want_write = false;
  conn->out_buf.clear();
  conn->out_off = 0;
  if (options_.drain_on_disconnect && !draining_ &&
      stats_.connections_accepted > 0) {
    bool any_open = false;
    for (const auto& c : connections_) {
      if (!c->closed) {
        any_open = true;
        break;
      }
    }
    if (!any_open) EnterDrain(/*cut_connections=*/false);
  }
}

void CollectorServer::ReapClosed() {
  // A closed connection may still be referenced by queued frames; it is
  // destroyed only once its in-flight bytes are absorbed.
  std::erase_if(connections_, [](const std::unique_ptr<Connection>& conn) {
    return conn->closed && conn->inflight_bytes == 0;
  });
}

int CollectorServer::WaitTimeoutMs() const {
  if (inc_ == nullptr || options_.estimate_every_ms <= 0) return -1;
  const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                             next_estimate_at_ - Clock::now())
                             .count();
  if (remaining <= 0) return 0;
  return static_cast<int>(
      std::min<long long>(remaining, std::numeric_limits<int>::max()));
}

void CollectorServer::MaybeEstimate() {
  if (inc_ == nullptr) return;
  bool due = false;
  if (options_.estimate_every_frames > 0 &&
      stats_.frames_absorbed >=
          last_estimate_frames_ + options_.estimate_every_frames) {
    due = true;
  }
  if (options_.estimate_every_ms > 0 && Clock::now() >= next_estimate_at_) {
    due = true;
    // Next deadline from now, not from the missed slot: a long EM tick
    // must not cause a burst of catch-up ticks.
    next_estimate_at_ =
        Clock::now() + std::chrono::milliseconds(options_.estimate_every_ms);
  }
  if (!due) return;
  last_estimate_frames_ = stats_.frames_absorbed;

  // Sum the exact per-bucket counts across the main and per-slot
  // accumulators. Read-only: the aggregate the final sketch is encoded
  // from is never touched, so the live path cannot perturb it.
  const size_t buckets = live_estimator_->output_buckets();
  estimate_totals_.assign(buckets, 0);
  uint64_t reports = 0;
  const auto add_counts = [&](const serve::CollectorSession& session) {
    const AccumulatorState state = session.ExportState();
    reports += state.num_reports;
    if (state.tables.empty()) return;
    const std::vector<int64_t>& counts = state.tables[0].counts;
    for (size_t j = 0; j < buckets && j < counts.size(); ++j) {
      estimate_totals_[j] += static_cast<uint64_t>(counts[j]);
    }
  };
  add_counts(main_);
  for (const serve::CollectorSession& sub : sub_sessions_) add_counts(sub);
  if (reports == 0) return;  // nothing ingested yet; tick again later

  const Result<EmResult> run =
      inc_->UpdateFromTotals(estimate_totals_, reports);
  if (!run.ok()) {
    if (stats_.first_error.ok()) stats_.first_error = run.status();
    return;
  }
  ++stats_.estimate_ticks;
  if (options_.estimate_sink) {
    options_.estimate_sink(EstimateTick{.tick = stats_.estimate_ticks,
                                        .reports = reports,
                                        .frames = stats_.frames_absorbed,
                                        .em = run.value(),
                                        .checkpoint = inc_->checkpoint(),
                                        .totals = estimate_totals_});
  }
}

Status CollectorServer::Run() {
  std::vector<Reactor::Event> events(512);
  if (inc_ != nullptr && options_.estimate_every_ms > 0) {
    next_estimate_at_ =
        Clock::now() + std::chrono::milliseconds(options_.estimate_every_ms);
  }
  for (;;) {
    if (drain_requested_.load(std::memory_order_acquire)) {
      EnterDrain(/*cut_connections=*/false);
    }
    ReapClosed();
    if (draining_ && connections_.empty() && pending_.empty()) break;
    NUMDIST_ASSIGN_OR_RETURN(const size_t n,
                             reactor_.Wait(events, WaitTimeoutMs()));
    for (size_t i = 0; i < n; ++i) {
      void* tag = events[i].tag;
      if (tag == nullptr) continue;  // wakeup; the flag check above acts
      auto* handle = static_cast<IoHandle*>(tag);
      if (handle->is_listener) {
        NUMDIST_RETURN_NOT_OK(HandleAccept(static_cast<Listener*>(handle)));
      } else {
        auto* conn = static_cast<Connection*>(handle);
        if ((events[i].events & EPOLLOUT) != 0) FlushConn(conn);
        if ((events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
          HandleReadable(conn);
        }
      }
    }
    AbsorbPending();
    if (!wal_status_.ok()) return wal_status_;
    if (!replica_status_.ok()) return replica_status_;
    NUMDIST_RETURN_NOT_OK(MaybeCheckpointWal());
    MaybeEstimate();
    if (options_.expect_frames > 0 &&
        stats_.frames_absorbed >= options_.expect_frames) {
      EnterDrain(/*cut_connections=*/true);
    }
  }
  NUMDIST_RETURN_NOT_OK(MergeSubSessions());
  if (wal_ != nullptr) {
    // Clean drain: compact down to one checkpoint of the final state, so
    // a restart replays a single record instead of the whole stream.
    NUMDIST_ASSIGN_OR_RETURN(const std::vector<std::string> sketches,
                             main_.EncodeSketches());
    NUMDIST_RETURN_NOT_OK(
        wal_->Compact(sketches, main_.sequence_tracker()->Export()));
    wal_frames_since_checkpoint_ = 0;
  }
  // A clean shutdown ends the replication stream with an orderly EOF, which
  // the standby reads as "primary finished" rather than a failure.
  if (replica_fd_.valid()) replica_fd_.reset();
  return Status::OK();
}

Status CollectorServer::MergeSubSessions() {
  if (merged_) return Status::OK();
  for (const serve::CollectorSession& sub : sub_sessions_) {
    if (sub.num_reports() == 0) continue;
    // AbsorbSession (not a sketch-frame round trip): per-tenant merges
    // without re-charging the shared ledger — those reports were charged
    // when their frames were first absorbed.
    NUMDIST_RETURN_NOT_OK(main_.AbsorbSession(sub));
  }
  merged_ = true;
  return Status::OK();
}

uint64_t CollectorServer::num_reports() const {
  uint64_t total = main_.num_reports();
  if (!merged_) {
    for (const serve::CollectorSession& sub : sub_sessions_) {
      total += sub.num_reports();
    }
  }
  return total;
}

Result<std::string> CollectorServer::EncodeSketch() const {
  if (!merged_) {
    return Status::FailedPrecondition(
        "net: EncodeSketch before Run completed (sub-aggregates unmerged)");
  }
  return main_.EncodeSketch();
}

Result<MethodOutput> CollectorServer::Reconstruct() const {
  if (!merged_) {
    return Status::FailedPrecondition(
        "net: Reconstruct before Run completed (sub-aggregates unmerged)");
  }
  return main_.Reconstruct();
}

}  // namespace numdist::net
