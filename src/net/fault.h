// Deterministic network fault injection at the socket-write boundary.
//
// A FaultPlan is a seeded script of byte-offset-addressed faults, keyed by
// connection attempt: "on attempt 0, RST the connection after 1 337 bytes;
// on attempt 1, split the write crossing byte 4 096 and delay 5 ms". The
// plan is pure data — building one touches no sockets — so the SAME plan
// can drive an in-process test (tests/fault_test.cc), a client process
// (report_client --fault-resets), and a bench series (net_throughput
// --faults), and every run replays the identical fault sequence.
//
// Faults are injected on the SENDING side, where byte offsets are exact:
// a receiver cannot know which syscall boundaries the sender used, but the
// sender controls them completely. The receiving collector is the system
// under test and runs unmodified.
//
// Fault taxonomy (FaultKind):
//   kDelay       sleep `param` ms when the stream crosses `at_byte`
//   kShortWrite  force a syscall boundary at `at_byte` (the write crossing
//                it is split there), then delay `param` ms so the receiver
//                observes the partial frame
//   kDrop        silently discard `param` bytes starting at `at_byte` —
//                the receiver sees a desynchronized stream (CRC/magic
//                errors are its problem to diagnose)
//   kTruncate    shut down writing at `at_byte`: the receiver sees a clean
//                FIN mid-frame (the torn-tail taxonomy's bread and butter)
//   kReset       hard-close with SO_LINGER{0} at `at_byte`: the receiver
//                sees ECONNRESET, the client's retry path sees a typed
//                injected-fault error
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "net/socket.h"

namespace numdist::net {

enum class FaultKind : uint8_t {
  kDelay = 0,
  kShortWrite = 1,
  kDrop = 2,
  kTruncate = 3,
  kReset = 4,
};

struct FaultEvent {
  FaultKind kind = FaultKind::kDelay;
  /// Cumulative sent-byte offset (per attempt) the fault triggers at.
  uint64_t at_byte = 0;
  /// kDelay/kShortWrite: milliseconds; kDrop: bytes to discard.
  uint64_t param = 0;
};

/// \brief A per-attempt script of injected faults (pure data, reusable).
class FaultPlan {
 public:
  FaultPlan() = default;

  /// `count` connection resets at Rng(seed)-drawn offsets in
  /// [1, max_byte): attempt k < count resets, attempt `count` onward is
  /// clean — the shape the retry-through-resets tests want.
  static FaultPlan Resets(uint64_t seed, uint32_t count, uint64_t max_byte);

  /// A mixed diet for soak/bench runs: `faulty_attempts` attempts each get
  /// one Rng(seed)-drawn fault (kind and offset both seeded); later
  /// attempts are clean.
  static FaultPlan FromSeed(uint64_t seed, uint32_t faulty_attempts,
                            uint64_t max_byte);

  void Add(uint32_t attempt, FaultEvent event);

  /// The faults scripted for one attempt, sorted by at_byte (empty for
  /// attempts with no script — i.e. clean attempts).
  std::vector<FaultEvent> Events(uint32_t attempt) const;

  bool empty() const { return events_.empty(); }

 private:
  std::map<uint32_t, std::vector<FaultEvent>> events_;
};

/// True for the typed errors FaultyWriter returns on a scripted
/// reset/truncate — retry layers treat exactly these as transient.
bool IsInjectedFault(const Status& status);

/// \brief Applies one attempt's FaultEvents to writes on a socket fd.
///
/// Wraps (but does not own) `*fd`; Write() sends clean spans with plain
/// send(2) loops and fires each scripted event as the cumulative offset
/// crosses its at_byte. A kReset/kTruncate event closes or shuts down the
/// fd and returns the typed injected-fault error; the caller reconnects
/// and constructs a fresh FaultyWriter for the next attempt.
class FaultyWriter {
 public:
  /// `plan` may be null (every write is clean). `attempt` selects the
  /// plan's script; offsets restart at 0 for each writer.
  FaultyWriter(Fd* fd, const FaultPlan* plan, uint32_t attempt);

  /// Writes `bytes`, applying any scripted faults the span crosses.
  Status Write(std::string_view bytes);

  /// Bytes offered so far (including dropped bytes — the plan's offsets
  /// address the logical stream, not the wire).
  uint64_t offset() const { return offset_; }
  /// Scripted events fired so far by this writer.
  uint64_t injected() const { return injected_; }

 private:
  Status WriteClean(std::string_view bytes);

  Fd* fd_;
  std::vector<FaultEvent> events_;  // sorted; next_event_ indexes into it
  size_t next_event_ = 0;
  uint64_t offset_ = 0;
  uint64_t injected_ = 0;
  /// Bytes of an in-progress kDrop still to discard (a drop region can
  /// span multiple Write calls).
  uint64_t drop_remaining_ = 0;
};

/// Hard TCP reset: SO_LINGER{on, 0s} then close — the peer gets RST, not
/// FIN, and any unsent data is discarded. The fd is invalid afterwards.
void HardResetAndClose(Fd* fd);

/// Seeded Fisher–Yates shuffle of a frame batch — the "reorder across
/// connections" fault, applied before frames are assigned to sockets.
/// Rng(seed) makes the permutation a pure function of the seed.
void ReorderFrames(std::span<std::string> frames, uint64_t seed);

}  // namespace numdist::net
